// Command hyperap-coord runs the cluster coordinator: a stateless HTTP
// front end that routes POST /v1/run and /v1/compile over a
// consistent-hash ring of hyperap-serve workers, keyed by program
// fingerprint so each worker's compiled-program cache and micro-batching
// coalescer stay hot for the programs it owns.
//
// Usage:
//
//	hyperap-coord -workers http://10.0.0.1:8763,http://10.0.0.2:8763,http://10.0.0.3:8763
//	curl -s localhost:8764/v1/run -d '{"source":"...","inputs":[[3,4]]}'
//	curl -s localhost:8764/cluster   # membership, ring shares, store fetch rate
//
// Membership is probe-driven: every worker's /readyz is polled on
// -probe-interval; a degraded worker (spare rows or PEs consumed) keeps
// serving at a ring weight scaled by its healthy-PE fraction, and a
// worker that fails -fail-after consecutive probes is evicted and its
// ring ranges reassigned. Independent of the probes, a forward that hits
// a connection error, timeout, 429 or 5xx fails over to the next ring
// replica (at most -attempts distinct workers); responses are fully
// buffered before relay, so a worker dying mid-response becomes a
// failover, never a corrupt client stream. SIGINT/SIGTERM drains:
// new requests get 503 + jittered Retry-After while in-flight forwards
// finish.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registered on the default mux, served at -debug-addr only
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hyperap/internal/buildinfo"
	"hyperap/internal/cluster"
)

func main() {
	addr := flag.String("addr", ":8764", "listen address")
	workers := flag.String("workers", "", "comma-separated worker base URLs (required)")
	attempts := flag.Int("attempts", 3, "max distinct ring replicas tried per request")
	timeout := flag.Duration("timeout", 60*time.Second, "end-to-end per-request budget across failovers")
	attemptTimeout := flag.Duration("attempt-timeout", 20*time.Second, "budget for a single worker forward")
	probeInterval := flag.Duration("probe-interval", 500*time.Millisecond, "worker /readyz probe period")
	probeTimeout := flag.Duration("probe-timeout", 2*time.Second, "one probe's round-trip budget")
	failAfter := flag.Int("fail-after", 3, "consecutive probe failures before a worker is evicted from the ring")
	vnodes := flag.Int("vnodes", 0, "ring positions per full-weight worker (0 = default 128)")
	retryBudget := flag.Int("retry-budget", 0, "total worker forwards per request across failovers, Retry-After retries and hedges (0 = attempts+1)")
	hedge := flag.Bool("hedge", false, "hedge idempotent /v1/run requests: fire a second attempt at the next replica when the owner is slow")
	hedgeDelay := flag.Duration("hedge-delay", 0, "hedge stagger (0 = derive from live p95 forward latency)")
	breakerOpenTimeout := flag.Duration("breaker-open-timeout", 0, "how long an open per-worker circuit breaker waits before a half-open trial (0 = default 2s)")
	breakerConsecutive := flag.Int("breaker-consecutive", 0, "consecutive forward failures that open a worker's breaker (0 = default 5)")
	breakerRate := flag.Float64("breaker-rate", 0, "failure-rate over the recent-outcome window that opens a breaker (0 = default 0.5)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long to wait for in-flight forwards on shutdown")
	logFormat := flag.String("log-format", "text", "request log format: text or json")
	debugAddr := flag.String("debug-addr", "", "optional address for net/http/pprof (e.g. localhost:6061; empty = disabled)")
	traceSample := flag.Float64("trace-sample", 0, "fraction of requests without a Traceparent sampled into distributed traces (0..1)")
	traceBuffer := flag.Int("trace-buffer", 0, "in-memory span ring capacity behind GET /v1/trace/{id} (0 = default 8192)")
	version := flag.Bool("version", false, "print build version and exit")
	flag.Parse()

	if *version {
		fmt.Println("hyperap-coord " + buildinfo.Get().String())
		return
	}

	var logger *slog.Logger
	switch *logFormat {
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	case "text":
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	default:
		log.Fatalf("hyperap-coord: -log-format %q (want text or json)", *logFormat)
	}

	var urls []string
	for _, w := range strings.Split(*workers, ",") {
		if w = strings.TrimSpace(w); w != "" {
			urls = append(urls, strings.TrimRight(w, "/"))
		}
	}
	if len(urls) == 0 {
		log.Fatal("hyperap-coord: -workers is required (comma-separated base URLs)")
	}

	coord := cluster.New(cluster.Config{
		Workers:            urls,
		Attempts:           *attempts,
		RequestTimeout:     *timeout,
		AttemptTimeout:     *attemptTimeout,
		ProbeInterval:      *probeInterval,
		ProbeTimeout:       *probeTimeout,
		FailAfter:          *failAfter,
		Vnodes:             *vnodes,
		RetryBudget:        *retryBudget,
		Hedge:              *hedge,
		HedgeDelay:         *hedgeDelay,
		BreakerOpenTimeout: *breakerOpenTimeout,
		BreakerConsecutive: *breakerConsecutive,
		BreakerFailureRate: *breakerRate,
		Logger:             logger,
		TraceSampleRate:    *traceSample,
		TraceBufferSpans:   *traceBuffer,
	})
	hs := &http.Server{Addr: *addr, Handler: coord}

	// The coordinator serves its own mux, so the pprof routes registered
	// on http.DefaultServeMux are only reachable through the separate
	// debug listener — never on the public address.
	if *debugAddr != "" {
		go func() {
			logger.Info("pprof listening", slog.String("addr", *debugAddr))
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				logger.Error("pprof listener failed", slog.String("error", err.Error()))
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	log.Printf("hyperap-coord %s listening on %s, %d workers", buildinfo.Get().String(), *addr, len(urls))

	select {
	case err := <-errCh:
		log.Fatalf("hyperap-coord: %v", err)
	case <-ctx.Done():
	}
	log.Printf("hyperap-coord: draining (up to %v)...", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := coord.Drain(dctx); err != nil {
		log.Printf("hyperap-coord: %v", err)
	}
	hs.Shutdown(dctx)
	fmt.Println("hyperap-coord: drained")
}
