// Command hyperap-asm disassembles a binary Hyper-AP program (the Table I
// instruction encoding produced by `hyperap-compile -bin`) back into a
// readable listing with cycle accounting.
//
// Usage:
//
//	hyperap-asm program.bin
//	hyperap-compile -bin p.bin p.hap && hyperap-asm p.bin
package main

import (
	"flag"
	"fmt"
	"os"

	"hyperap/internal/isa"
)

func main() {
	cmosFlag := flag.Bool("cmos", false, "report cycles with the CMOS write latency")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hyperap-asm [flags] program.bin")
		os.Exit(2)
	}
	buf, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := isa.DecodeProgram(buf)
	if err != nil {
		fatal(err)
	}
	cp := isa.DefaultCycleParams()
	if *cmosFlag {
		cp.TCAMBitWriteCycles = 1
	}
	var cycle int64
	for pc, in := range prog {
		fmt.Printf("%5d  [t=%6d]  %s\n", pc, cycle, in)
		cycle += int64(in.Cycles(cp))
	}
	fmt.Printf("\n%d instructions, %d bytes, %d cycles\n", len(prog), prog.TotalBytes(), cycle)
	fmt.Printf("searches: %d   writes: %d   setkeys: %d\n",
		prog.CountOp(isa.OpSearch), prog.CountOp(isa.OpWrite), prog.CountOp(isa.OpSetKey))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hyperap-asm:", err)
	os.Exit(1)
}
