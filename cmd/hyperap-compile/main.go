// Command hyperap-compile compiles a program in the Hyper-AP C-like
// language and prints the generated instruction stream, the compilation
// statistics and (optionally) the binary encoding.
//
// Usage:
//
//	hyperap-compile [flags] program.hap
//
// Flags:
//
//	-traditional   target the traditional AP execution model
//	-cmos          target the CMOS TCAM technology
//	-k N           lookup-table input limit (2..12, default 12)
//	-bin file      also write the Table I binary encoding to a file
//	-q             print statistics only (no disassembly)
//	-trace-json f  write a Chrome trace-event JSON of a dry traced pass
//	               (one full-occupancy PE on zero inputs) for Perfetto
package main

import (
	"flag"
	"fmt"
	"os"

	"hyperap/internal/compile"
	"hyperap/internal/isa"
	"hyperap/internal/lut"
	"hyperap/internal/obs"
	"hyperap/internal/tech"
)

func main() {
	traditional := flag.Bool("traditional", false, "target the traditional AP execution model")
	cmos := flag.Bool("cmos", false, "target the CMOS TCAM technology")
	k := flag.Int("k", lut.MaxInputs, "lookup-table input limit (2..12)")
	binOut := flag.String("bin", "", "write the binary instruction encoding to this file")
	quiet := flag.Bool("q", false, "print statistics only")
	luts := flag.Bool("luts", false, "print a lookup-table size histogram")
	traceJSON := flag.String("trace-json", "", "write a Chrome/Perfetto trace of a dry traced pass to this file")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hyperap-compile [flags] program.hap")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	tgt := compile.HyperTarget()
	if *cmos {
		tgt.Tech = tech.CMOS()
	}
	if *traditional {
		tgt = compile.TraditionalTarget(tgt.Tech)
	}
	tgt.K = *k

	ex, err := compile.CompileSource(string(src), tgt)
	if err != nil {
		fatal(err)
	}

	if !*quiet {
		fmt.Print(ex.Prog.String())
		fmt.Println()
	}
	s := ex.Stats
	fmt.Printf("target:        %s %s (alpha=%.0f)\n", tgt.Tech.Name, modeName(tgt), tgt.Tech.Alpha())
	fmt.Printf("searches:      %d\n", s.Searches)
	fmt.Printf("writes:        %d (%d encoded pairs)\n", s.Writes, s.EncodedWrites)
	fmt.Printf("lookup tables: %d (%d patterns total)\n", s.LUTs, s.Patterns)
	fmt.Printf("cycles:        %d (%.1f ns at %s)\n", s.Cycles, ex.LatencyNS(), tgt.Tech.Name)
	fmt.Printf("columns used:  %d of %d\n", s.PeakColumns, tgt.WordBits)
	fmt.Printf("program size:  %d bytes\n", ex.Prog.TotalBytes())

	if *luts {
		hist := map[int]int{}
		pats := map[int]int{}
		for _, l := range ex.LUTs {
			hist[l.Inputs]++
			pats[l.Inputs] += l.Patterns
		}
		fmt.Println("lookup tables by input count:")
		for k := 1; k <= 12; k++ {
			if hist[k] > 0 {
				fmt.Printf("  %2d inputs: %4d tables, %5d patterns\n", k, hist[k], pats[k])
			}
		}
	}
	if *binOut != "" {
		if err := os.WriteFile(*binOut, isa.EncodeProgram(ex.Prog), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("binary:        %s\n", *binOut)
	}
	if *traceJSON != "" {
		if err := writeDryTrace(ex, tgt, flag.Arg(0), *traceJSON); err != nil {
			fatal(err)
		}
		fmt.Printf("trace:         %s (load at ui.perfetto.dev)\n", *traceJSON)
	}
}

// writeDryTrace executes the program once on a single full-occupancy PE
// over zero inputs with tracing on — the compile-time analogue of
// EnergyPerPE — and exports the Chrome trace-event JSON.
func writeDryTrace(ex *compile.Executable, tgt compile.Target, name, path string) error {
	chip := ex.NewChip(tech.PERows)
	chip.Tracing = true
	pe := chip.PE(0)
	zero := make([]uint64, len(ex.Inputs))
	for r := 0; r < tech.PERows; r++ {
		if err := ex.Load(pe, r, zero); err != nil {
			return err
		}
	}
	if err := chip.Execute(ex.Prog); err != nil {
		return err
	}
	b, err := obs.ChromeTrace(chip.TraceEvents(), obs.TraceMeta{
		Program:       name,
		CyclePeriodNS: tgt.Tech.CyclePeriodNS(),
	})
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

func modeName(t compile.Target) string {
	if t.Mode == lut.ModeTraditional {
		return "traditional-AP"
	}
	return "Hyper-AP"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hyperap-compile:", err)
	os.Exit(1)
}
