// Command hyperap-faults runs a Monte Carlo fault-injection campaign
// over the Hyper-AP simulator: it sweeps stuck-at defect rate ×
// endurance budget over an example kernel, executes every trial twice —
// with spare-row/spare-PE repair enabled and disabled — and reports the
// wrong-result rate, the reported-error rate and the fault/repair
// counters for each cell of the sweep. Because the fault model is
// seed-deterministic, a campaign is exactly reproducible: same flags,
// same defect maps, same numbers.
//
// Usage:
//
//	hyperap-faults -kernel add -rates 1e-4,1e-3,1e-2 -trials 5
//	hyperap-faults -kernel mac -endurance 0,48 -spare-rows 4 -json campaign.json
//
// The three outcome classes per slot are disjoint:
//
//   - ok: the simulated output equals the golden DFG reference
//   - wrong: the run completed but at least one output bit differs
//     (a silent error — the failure mode repair exists to prevent)
//   - error: the run failed with a typed FaultError (detected and
//     reported, never silently wrong)
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"hyperap/internal/arch"
	"hyperap/internal/bits"
	"hyperap/internal/compile"
	"hyperap/internal/tcam"
)

// kernels are the built-in campaign workloads. mac is the write-heavy
// one: the multiply's intermediate columns take far more programming
// pulses per pass, which is what an endurance sweep wants to stress.
var kernels = map[string]string{
	"add": `unsigned int(6) main(unsigned int(5) a, unsigned int(5) b) { return a + b; }`,
	"mul": `unsigned int(8) main(unsigned int(4) a, unsigned int(4) b) { return a * b; }`,
	"mac": `unsigned int(9) main(unsigned int(4) a, unsigned int(4) b, unsigned int(8) c) { return a * b + c; }`,
}

// cell is one point of the sweep: a fault configuration crossed with a
// repair mode, aggregated over all trials.
type cell struct {
	StuckAtRate float64 `json:"stuckAtRate"`
	Endurance   uint32  `json:"endurance"`
	Repair      bool    `json:"repair"`

	Trials     int   `json:"trials"`
	Slots      int   `json:"slots"`      // total slots attempted
	WrongSlots int   `json:"wrongSlots"` // silent wrong results
	ErrorRuns  int   `json:"errorRuns"`  // trials failed with a FaultError
	OKSlots    int   `json:"okSlots"`    // slots verified against the reference
	Detected   int64 `json:"detected"`   // write-verify mismatches
	Repairs    int   `json:"repairs"`    // rows remapped to spares
	Retries    int64 `json:"retries"`    // shards replayed on spare PEs
	Upsets     int64 `json:"upsets"`     // transient match-line flips
	StuckCells int   `json:"stuckCells"` // defective cells across trial chips
}

type campaign struct {
	Kernel    string  `json:"kernel"`
	Seed      int64   `json:"seed"`
	SlotsPer  int     `json:"slotsPerTrial"`
	SpareRows int     `json:"spareRows"`
	SparePEs  int     `json:"sparePEs"`
	UpsetRate float64 `json:"upsetRate"`
	Cells     []cell  `json:"cells"`
}

func main() {
	kernel := flag.String("kernel", "add", "built-in kernel (add, mul, mac) or path to a .hap source file")
	rates := flag.String("rates", "5e-4,2e-3,8e-3", "comma-separated stuck-at defect rates to sweep")
	endurance := flag.String("endurance", "0", "comma-separated endurance budgets to sweep (0 = unlimited)")
	trials := flag.Int("trials", 5, "trials per sweep cell (each gets its own derived seed)")
	seed := flag.Int64("seed", 1, "campaign seed: drives input generation and every trial's defect map")
	slots := flag.Int("slots", 64, "SIMD slots per trial")
	spareRows := flag.Int("spare-rows", 8, "spare word rows per TCAM array (repair mode)")
	sparePEs := flag.Int("spare-pes", 1, "spare PEs per chip (repair mode)")
	upsetRate := flag.Float64("upset-rate", 0, "transient match-upset probability (reported, never repairable)")
	jsonOut := flag.String("json", "", "also write the campaign report as JSON to this file")
	flag.Parse()

	src, ok := kernels[*kernel]
	if !ok {
		raw, err := os.ReadFile(*kernel)
		if err != nil {
			log.Fatalf("hyperap-faults: -kernel %q is neither built-in (%s) nor readable: %v",
				*kernel, strings.Join(kernelNames(), ", "), err)
		}
		src = string(raw)
	}
	ex, err := compile.CompileSource(src, compile.HyperTarget())
	if err != nil {
		log.Fatalf("hyperap-faults: compile: %v", err)
	}

	rateList := parseFloats(*rates)
	endList := parseUints(*endurance)
	inputs := randomInputs(ex, *slots, *seed)
	want := make([][]uint64, len(inputs))
	for i, vals := range inputs {
		want[i] = ex.Reference(vals)
	}

	rep := campaign{
		Kernel: *kernel, Seed: *seed, SlotsPer: *slots,
		SpareRows: *spareRows, SparePEs: *sparePEs, UpsetRate: *upsetRate,
	}
	for _, rate := range rateList {
		for _, end := range endList {
			for _, repair := range []bool{true, false} {
				c := cell{StuckAtRate: rate, Endurance: end, Repair: repair}
				for trial := 0; trial < *trials; trial++ {
					fc := tcam.FaultConfig{
						// Decorrelate trials, keep both repair modes of the
						// same trial on the identical defect map so the
						// comparison is paired.
						Seed:               *seed + int64(trial)*1_000_003,
						StuckAtRate:        rate,
						EnduranceBudget:    end,
						TransientUpsetRate: *upsetRate,
						DisableRepair:      !repair,
					}
					spares := 0
					if repair {
						fc.SpareRows = *spareRows
						spares = *sparePEs
					}
					runTrial(&c, ex, inputs, want, fc, spares)
				}
				rep.Cells = append(rep.Cells, c)
			}
		}
	}

	printTable(rep)
	if *jsonOut != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatalf("hyperap-faults: %v", err)
		}
		if err := os.WriteFile(*jsonOut, append(buf, '\n'), 0o644); err != nil {
			log.Fatalf("hyperap-faults: %v", err)
		}
		fmt.Printf("\nwrote %s\n", *jsonOut)
	}
}

// runTrial executes one fault-injected batch and folds the outcome into
// the sweep cell.
func runTrial(c *cell, ex *compile.Executable, inputs, want [][]uint64, fc tcam.FaultConfig, sparePEs int) {
	c.Trials++
	c.Slots += len(inputs)
	outs, chip, err := ex.RunBatch(inputs,
		compile.WithFaults(fc), compile.WithSparePEs(sparePEs))
	if err != nil {
		var afe *arch.FaultError
		var tfe *tcam.FaultError
		if errors.As(err, &afe) || errors.As(err, &tfe) {
			c.ErrorRuns++
			return
		}
		log.Fatalf("hyperap-faults: unexpected non-fault error: %v", err)
	}
	r := chip.Report()
	c.Detected += r.Faults.Detected
	c.Repairs += r.Faults.Repairs
	c.Retries += r.Retries
	c.Upsets += r.Faults.TransientUpsets
	c.StuckCells += r.Faults.StuckCells
	for i := range outs {
		wrong := false
		for j := range want[i] {
			if outs[i][j] != want[i][j] {
				wrong = true
				break
			}
		}
		if wrong {
			c.WrongSlots++
		} else {
			c.OKSlots++
		}
	}
}

func printTable(rep campaign) {
	fmt.Printf("fault campaign: kernel=%s slots=%d seed=%d spare-rows=%d spare-pes=%d\n\n",
		rep.Kernel, rep.SlotsPer, rep.Seed, rep.SpareRows, rep.SparePEs)
	fmt.Printf("%-10s %-10s %-8s %8s %8s %10s %9s %8s %8s %8s\n",
		"stuck-rate", "endurance", "repair", "trials", "errors", "wrong", "wrong%", "detected", "repairs", "retries")
	for _, c := range rep.Cells {
		completed := c.OKSlots + c.WrongSlots
		wrongPct := 0.0
		if completed > 0 {
			wrongPct = 100 * float64(c.WrongSlots) / float64(completed)
		}
		fmt.Printf("%-10.2g %-10d %-8v %8d %8d %10d %8.2f%% %8d %8d %8d\n",
			c.StuckAtRate, c.Endurance, c.Repair, c.Trials, c.ErrorRuns,
			c.WrongSlots, wrongPct, c.Detected, c.Repairs, c.Retries)
	}
	fmt.Println("\nerrors = runs that failed loudly with a FaultError (reported, not silent)")
	fmt.Println("wrong  = slots whose completed outputs differ from the golden reference (silent)")
}

func kernelNames() []string {
	names := make([]string, 0, len(kernels))
	for n := range kernels {
		names = append(names, n)
	}
	return names
}

func parseFloats(s string) []float64 {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			log.Fatalf("hyperap-faults: bad rate %q: %v", f, err)
		}
		out = append(out, v)
	}
	return out
}

func parseUints(s string) []uint32 {
	var out []uint32
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(f), 10, 32)
		if err != nil {
			log.Fatalf("hyperap-faults: bad endurance %q: %v", f, err)
		}
		out = append(out, uint32(v))
	}
	return out
}

// randomInputs draws one deterministic input batch for the whole
// campaign (faults vary per trial; data does not, so outcome changes
// are attributable to the fault model alone).
func randomInputs(ex *compile.Executable, slots int, seed int64) [][]uint64 {
	rng := rand.New(rand.NewSource(seed))
	widths := ex.InputWidths()
	out := make([][]uint64, slots)
	for i := range out {
		vals := make([]uint64, len(widths))
		for j, w := range widths {
			vals[j] = rng.Uint64() & bits.Mask(w)
		}
		out[i] = vals
	}
	return out
}
