// Command hyperap-serve runs the batching compile-and-execute service:
// a long-lived HTTP/JSON front end over the Hyper-AP simulator with a
// content-hashed LRU program cache, a micro-batching coalescer that
// packs small run requests into full 256-slot PE shards, queue-depth
// backpressure and expvar metrics.
//
// Usage:
//
//	hyperap-serve -addr :8763
//	curl -s localhost:8763/v1/compile -d '{"source":"unsigned int(6) main(unsigned int(5) a, unsigned int(5) b){ return a + b; }"}'
//	curl -s localhost:8763/v1/run -d '{"program":"sha256:...","inputs":[[3,4],[31,31]]}'
//
// SIGINT/SIGTERM drains gracefully: new runs get 503 while admitted work
// finishes, then the listener closes. The drain log line reports the
// queued-slot count and the oldest in-flight request's age.
//
// With -state-dir set, state survives restarts: compiled programs are
// written through to a content-addressed on-disk store (compile once
// per fingerprint, ever) and lifetime chip state — wear counters,
// burned spare rows, remaps, PE health — is checkpointed periodically
// (-snapshot-interval) and on drain, so a node that died degraded
// comes back degraded.
//
// Observability: every request is logged through log/slog (-log-format
// text|json) with its request ID and per-phase durations; /metrics
// carries p50/p95/p99 latency histograms; -debug-addr serves
// net/http/pprof on a separate private listener.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registered on the default mux, served at -debug-addr only
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hyperap/internal/buildinfo"
	"hyperap/internal/serve"
	"hyperap/internal/tcam"
)

func main() {
	addr := flag.String("addr", ":8763", "listen address")
	debugAddr := flag.String("debug-addr", "", "optional address for net/http/pprof (e.g. localhost:6060; empty = disabled)")
	logFormat := flag.String("log-format", "text", "request log format: text or json")
	window := flag.Duration("window", time.Millisecond, "coalescing window: how long a run may wait to share a pass")
	flushSlots := flag.Int("flush-slots", 0, "flush a pending pass at this many slots (0 = one full PE shard)")
	maxPrograms := flag.Int("max-programs", 0, "LRU program-cache capacity (0 = default 64)")
	queueSlots := flag.Int("queue-slots", 0, "max slots admitted and not yet completed before 429 (0 = default)")
	workers := flag.Int("workers", 0, "concurrent RunBatch passes (0 = GOMAXPROCS)")
	parallel := flag.Int("parallel", 0, "per-pass shard worker pool, as hyperap-run -parallel (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request deadline")
	deadlineGrace := flag.Duration("deadline-grace", 0, "clock-skew allowance added to a propagated X-Hyperap-Deadline header before it shortens the local deadline")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long to wait for in-flight work on shutdown")
	faultRate := flag.Float64("fault-rate", 0, "per-cell stuck-at defect probability (0 = fault-free)")
	faultSeed := flag.Int64("fault-seed", 1, "seed for the deterministic fault model")
	faultEndurance := flag.Uint("fault-endurance", 0, "per-cell programming-pulse budget; 0 = unlimited")
	faultUpsetRate := flag.Float64("fault-upset-rate", 0, "per-row per-search transient match-upset probability")
	spareRows := flag.Int("spare-rows", 0, "spare word rows per TCAM array for write-verify repair")
	sparePEs := flag.Int("spare-pes", 0, "spare PEs per pass chip for shard replay after a PE failure")
	noRepair := flag.Bool("fault-no-repair", false, "detect faults but do not repair (write-verify errors fail the run)")
	stateDir := flag.String("state-dir", "", "directory for durable state: on-disk program store + chip-state checkpoints (empty = no persistence)")
	snapshotInterval := flag.Duration("snapshot-interval", 0, "period between chip-state checkpoints when -state-dir is set (0 = default 30s, negative = drain-time only)")
	peers := flag.String("peers", "", "comma-separated sibling worker base URLs: program-store misses fetch the compiled record from a peer before recompiling")
	traceSample := flag.Float64("trace-sample", 0, "fraction of requests without a Traceparent sampled into distributed traces (0..1)")
	traceBuffer := flag.Int("trace-buffer", 0, "in-memory span ring capacity behind GET /v1/trace/{id} (0 = default 8192)")
	version := flag.Bool("version", false, "print build version and exit")
	flag.Parse()

	if *version {
		fmt.Println("hyperap-serve " + buildinfo.Get().String())
		return
	}

	var peerURLs []string
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peerURLs = append(peerURLs, strings.TrimRight(p, "/"))
		}
	}

	var logger *slog.Logger
	switch *logFormat {
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	case "text":
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	default:
		log.Fatalf("hyperap-serve: -log-format %q (want text or json)", *logFormat)
	}

	srv := serve.New(serve.Config{
		MaxPrograms:    *maxPrograms,
		CoalesceWindow: *window,
		FlushSlots:     *flushSlots,
		MaxQueueSlots:  *queueSlots,
		Workers:        *workers,
		RequestTimeout: *timeout,
		DeadlineGrace:  *deadlineGrace,
		Parallelism:    *parallel,
		Logger:         logger,
		Faults: tcam.FaultConfig{
			Seed:               *faultSeed,
			StuckAtRate:        *faultRate,
			EnduranceBudget:    uint32(*faultEndurance),
			TransientUpsetRate: *faultUpsetRate,
			SpareRows:          *spareRows,
			DisableRepair:      *noRepair,
		},
		SparePEs:         *sparePEs,
		StateDir:         *stateDir,
		SnapshotInterval: *snapshotInterval,
		Peers:            peerURLs,
		TraceSampleRate:  *traceSample,
		TraceBufferSpans: *traceBuffer,
	})
	hs := &http.Server{Addr: *addr, Handler: srv}

	// The main server uses its own handler, so the pprof routes pprof
	// registered on http.DefaultServeMux are only reachable through the
	// separate debug listener — never on the public address.
	if *debugAddr != "" {
		go func() {
			logger.Info("pprof listening", slog.String("addr", *debugAddr))
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				logger.Error("pprof listener failed", slog.String("error", err.Error()))
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	log.Printf("hyperap-serve listening on %s (window %v)", *addr, *window)

	select {
	case err := <-errCh:
		log.Fatalf("hyperap-serve: %v", err)
	case <-ctx.Done():
	}
	log.Printf("hyperap-serve: draining (up to %v)...", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		log.Printf("hyperap-serve: %v", err)
	}
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("hyperap-serve: shutdown: %v", err)
	}
	fmt.Println("hyperap-serve: drained")
}
