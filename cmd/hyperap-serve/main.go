// Command hyperap-serve runs the batching compile-and-execute service:
// a long-lived HTTP/JSON front end over the Hyper-AP simulator with a
// content-hashed LRU program cache, a micro-batching coalescer that
// packs small run requests into full 256-slot PE shards, queue-depth
// backpressure and expvar metrics.
//
// Usage:
//
//	hyperap-serve -addr :8763
//	curl -s localhost:8763/v1/compile -d '{"source":"unsigned int(6) main(unsigned int(5) a, unsigned int(5) b){ return a + b; }"}'
//	curl -s localhost:8763/v1/run -d '{"program":"sha256:...","inputs":[[3,4],[31,31]]}'
//
// SIGINT/SIGTERM drains gracefully: new runs get 503 while admitted work
// finishes, then the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hyperap/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8763", "listen address")
	window := flag.Duration("window", time.Millisecond, "coalescing window: how long a run may wait to share a pass")
	flushSlots := flag.Int("flush-slots", 0, "flush a pending pass at this many slots (0 = one full PE shard)")
	maxPrograms := flag.Int("max-programs", 0, "LRU program-cache capacity (0 = default 64)")
	queueSlots := flag.Int("queue-slots", 0, "max slots admitted and not yet completed before 429 (0 = default)")
	workers := flag.Int("workers", 0, "concurrent RunBatch passes (0 = GOMAXPROCS)")
	parallel := flag.Int("parallel", 0, "per-pass shard worker pool, as hyperap-run -parallel (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request deadline")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long to wait for in-flight work on shutdown")
	flag.Parse()

	srv := serve.New(serve.Config{
		MaxPrograms:    *maxPrograms,
		CoalesceWindow: *window,
		FlushSlots:     *flushSlots,
		MaxQueueSlots:  *queueSlots,
		Workers:        *workers,
		RequestTimeout: *timeout,
		Parallelism:    *parallel,
	})
	hs := &http.Server{Addr: *addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	log.Printf("hyperap-serve listening on %s (window %v)", *addr, *window)

	select {
	case err := <-errCh:
		log.Fatalf("hyperap-serve: %v", err)
	case <-ctx.Done():
	}
	log.Printf("hyperap-serve: draining (up to %v)...", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		log.Printf("hyperap-serve: %v", err)
	}
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("hyperap-serve: shutdown: %v", err)
	}
	fmt.Println("hyperap-serve: drained")
}
