// Command hyperap-run compiles a program and executes it on the
// simulated Hyper-AP hardware for input values supplied on the command
// line or as CSV lines on stdin (one SIMD slot per line). Batches larger
// than the 256 rows of one PE are sharded across a multi-PE chip and
// executed concurrently (see -parallel).
//
// Usage:
//
//	hyperap-run program.hap 3,4 31,31
//	echo "3,4" | hyperap-run program.hap
//	hyperap-run -json program.hap 3,4   # the hyperap-serve /v1/run encoding
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hyperap/internal/compile"
	"hyperap/internal/obs"
	"hyperap/internal/serve"
	"hyperap/internal/tech"
)

func main() {
	cmos := flag.Bool("cmos", false, "target the CMOS TCAM technology")
	verify := flag.Bool("verify", true, "cross-check the simulator against the reference evaluator")
	trace := flag.Bool("trace", false, "print one line per executed instruction per PE with the tag population")
	traceJSON := flag.String("trace-json", "", "write a Chrome/Perfetto trace of the run to this file (open at ui.perfetto.dev)")
	parallel := flag.Int("parallel", 0, "worker pool size for sharded batches (0 = GOMAXPROCS)")
	jsonOut := flag.Bool("json", false, "emit outputs and the run report as JSON (the hyperap-serve /v1/run encoding)")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: hyperap-run [flags] program.hap [inputs...]")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	tgt := compile.HyperTarget()
	if *cmos {
		tgt.Tech = tech.CMOS()
	}
	ex, err := compile.CompileSource(string(src), tgt)
	if err != nil {
		fatal(err)
	}

	var lines []string
	if flag.NArg() > 1 {
		lines = flag.Args()[1:]
	} else {
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			if s := strings.TrimSpace(sc.Text()); s != "" {
				lines = append(lines, s)
			}
		}
	}
	if len(lines) == 0 {
		fatal(fmt.Errorf("no input slots given"))
	}
	var inputs [][]uint64
	for _, ln := range lines {
		fields := strings.Split(ln, ",")
		if len(fields) != len(ex.Inputs) {
			fatal(fmt.Errorf("slot %q has %d values; program takes %d (%s)",
				ln, len(fields), len(ex.Inputs), inputList(ex)))
		}
		vals := make([]uint64, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseUint(strings.TrimSpace(f), 0, 64)
			if err != nil {
				fatal(fmt.Errorf("slot %q: %v", ln, err))
			}
			vals[i] = v
		}
		inputs = append(inputs, vals)
	}

	if *verify {
		if err := ex.CheckAgainstReference(inputs); err != nil {
			fatal(fmt.Errorf("simulator/reference mismatch: %v", err))
		}
	}
	// Tracing rides the ordinary sharded batch path: per-subarray trace
	// ledgers make it parallel-safe, so any batch size works (the stream
	// is merged and stable-sorted by (Seq, PE)).
	opts := []compile.RunOption{compile.WithParallelism(*parallel)}
	if *trace || *traceJSON != "" {
		opts = append(opts, compile.WithTrace())
	}
	outs, chip, err := ex.RunBatch(inputs, opts...)
	if err != nil {
		fatal(err)
	}
	if *trace {
		for _, ev := range chip.TraceEvents() {
			if ev.PE < 0 {
				fmt.Printf("trace chip   %4d  +%2dcy  %s\n", ev.PC, ev.Cycles, ev.Instr)
				continue
			}
			fmt.Printf("trace pe%-4d %4d  +%2dcy  tags=%-3d  %s\n", ev.PE, ev.PC, ev.Cycles, ev.TaggedRows, ev.Instr)
		}
	}
	if *traceJSON != "" {
		b, err := obs.ChromeTrace(chip.TraceEvents(), obs.TraceMeta{
			Program:       flag.Arg(0),
			CyclePeriodNS: tgt.Tech.CyclePeriodNS(),
		})
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*traceJSON, b, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "hyperap-run: wrote %d trace events to %s\n", len(chip.TraceEvents()), *traceJSON)
	}
	if *jsonOut {
		// The same wire encoding a hyperap-serve /v1/run response uses,
		// so downstream tooling can consume either interchangeably.
		r := chip.Report()
		resp := serve.RunResponse{
			Program:     compile.Fingerprint(string(src), tgt),
			OutputNames: outputList(ex),
			Outputs:     outs,
			Report: &serve.Report{
				PEs:           chip.NumPEs(),
				Cycles:        r.Cycles,
				EnergyJ:       r.Energy.TotalJ(),
				MaxCellWrites: r.MaxCellWrites,
				BatchSlots:    len(outs),
				BatchRequests: 1,
			},
		}
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(resp); err != nil {
			fatal(err)
		}
		return
	}
	for r, o := range outs {
		parts := make([]string, len(o))
		for i, v := range o {
			parts[i] = fmt.Sprintf("%s=%d", ex.Outputs[i].Name, v)
		}
		fmt.Printf("slot %d: %s\n", r, strings.Join(parts, " "))
	}
	fmt.Printf("(%d slots on %d PE(s), %d searches, %d writes, %.1f ns per pass)\n",
		len(outs), chip.NumPEs(), ex.Stats.Searches, ex.Stats.Writes, ex.LatencyNS())
}

func outputList(ex *compile.Executable) []string {
	names := make([]string, len(ex.Outputs))
	for i, c := range ex.Outputs {
		names[i] = fmt.Sprintf("%s:%d", c.Name, c.Width)
	}
	return names
}

func inputList(ex *compile.Executable) string {
	names := make([]string, len(ex.Inputs))
	for i, c := range ex.Inputs {
		names[i] = fmt.Sprintf("%s:%d", c.Name, c.Width)
	}
	return strings.Join(names, ",")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hyperap-run:", err)
	os.Exit(1)
}
