// Command hyperap-chaos runs the deterministic chaos campaign
// (DESIGN.md §15): for each seed it stands up a real multi-worker
// cluster with a fault-injecting proxy in front of every worker, drives
// verifiable load through the coordinator, and holds the resilience
// layers to the acceptance bar — zero wrong results, zero requests
// outliving their propagated deadline plus grace, and at least one full
// circuit-breaker open→half-open→closed recovery observed.
//
// Usage:
//
//	hyperap-chaos -seeds 1,2,3,4,5 -json chaos-report.json
//	CHAOS_SEED=17 hyperap-chaos        # reproduce one failing seed exactly
//
// Every fault is drawn from a pure function of (seed, worker, request
// index), so a failing seed replays bit-for-bit.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"strconv"
	"strings"
	"time"

	"hyperap/internal/buildinfo"
	"hyperap/internal/chaos"
)

func main() {
	seedsFlag := flag.String("seeds", "1,2,3,4,5", "comma-separated campaign seeds (CHAOS_SEED env overrides with a single seed)")
	workers := flag.Int("workers", 3, "workers per cluster")
	requests := flag.Int("requests", 120, "requests per seed")
	concurrency := flag.Int("concurrency", 4, "client goroutines")
	programs := flag.Int("programs", 4, "distinct programs cycled through")
	hedge := flag.Bool("hedge", true, "enable hedged requests on the coordinator under test")
	timeout := flag.Duration("timeout", 8*time.Second, "coordinator end-to-end request budget")
	attemptTimeout := flag.Duration("attempt-timeout", time.Second, "single worker-forward budget")
	grace := flag.Duration("grace", 2*time.Second, "patience past the budget before a request counts as hung")
	jsonPath := flag.String("json", "", "write the campaign report to this file (e.g. chaos-report.json)")
	version := flag.Bool("version", false, "print build version and exit")
	flag.Parse()

	if *version {
		fmt.Println("hyperap-chaos " + buildinfo.Get().String())
		return
	}

	seeds, err := parseSeeds(*seedsFlag)
	if err != nil {
		log.Fatalf("hyperap-chaos: %v", err)
	}
	if env := os.Getenv("CHAOS_SEED"); env != "" {
		n, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			log.Fatalf("hyperap-chaos: CHAOS_SEED=%q: %v", env, err)
		}
		seeds = []int64{n}
		log.Printf("hyperap-chaos: CHAOS_SEED=%d overrides -seeds", n)
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	start := time.Now()
	rep, err := chaos.RunCampaign(chaos.CampaignConfig{
		Seeds:          seeds,
		Workers:        *workers,
		Requests:       *requests,
		Concurrency:    *concurrency,
		Programs:       *programs,
		Hedge:          *hedge,
		RequestTimeout: *timeout,
		AttemptTimeout: *attemptTimeout,
		HungGrace:      *grace,
		Logger:         logger,
	})
	if err != nil {
		log.Fatalf("hyperap-chaos: %v", err)
	}

	for _, s := range rep.Seeds {
		fmt.Printf("seed %-4d  ok=%-4d wrong=%-3d hung=%-3d rejected=%-3d faults=%-3d trips=%-2d cycles=%-2d hedges=%-3d p99=%.1fms  (%.1fs)\n",
			s.Seed, s.OK, s.Wrong, s.Hung, s.Rejected, faultTotal(s.Faults),
			s.BreakerTrips, s.BreakerCycles, s.Hedges, s.P99NS/1e6, float64(s.ElapsedMS)/1e3)
	}
	fmt.Printf("campaign: %d seeds, %d requests in %.1fs — wrong=%d hung=%d breakerCycleSeen=%v\n",
		len(rep.Seeds), rep.Requests, time.Since(start).Seconds(), rep.Wrong, rep.Hung, rep.CycleSeen)

	if *jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatalf("hyperap-chaos: marshal report: %v", err)
		}
		if err := os.WriteFile(*jsonPath, append(buf, '\n'), 0o644); err != nil {
			log.Fatalf("hyperap-chaos: %v", err)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}

	if !rep.Passed() {
		for _, s := range rep.Seeds {
			if s.Wrong > 0 || s.Hung > 0 {
				fmt.Printf("reproduce: CHAOS_SEED=%d go run ./cmd/hyperap-chaos\n", s.Seed)
			}
		}
		if !rep.CycleSeen {
			fmt.Println("FAIL: no breaker open→half-open→closed cycle observed")
		}
		os.Exit(1)
	}
	fmt.Println("PASS")
}

func parseSeeds(s string) ([]int64, error) {
	var out []int64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.ParseInt(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: %w", part, err)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no seeds in %q", s)
	}
	return out, nil
}

func faultTotal(m map[string]int64) int64 {
	var t int64
	for _, v := range m {
		t += v
	}
	return t
}
