// Command hyperap-bench regenerates the paper's evaluation: every table
// and figure of §VI plus the extra ablations (DESIGN.md §3).
//
// Usage:
//
//	hyperap-bench                 # everything except the heavy figures
//	hyperap-bench -all            # everything (32-bit div/exp compile for ~1 min)
//	hyperap-bench -exp fig15      # one experiment
//	hyperap-bench -list           # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hyperap/internal/bench"
)

func main() {
	expID := flag.String("exp", "", "run a single experiment by id")
	all := flag.Bool("all", false, "include the heavy experiments (32-bit op suite, kernels)")
	list := flag.Bool("list", false, "list experiment ids")
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			heavy := ""
			if e.Heavy {
				heavy = " (heavy)"
			}
			fmt.Printf("%s%s\n", e.ID, heavy)
		}
		return
	}
	if *expID != "" {
		e, err := bench.ByID(*expID)
		if err != nil {
			fatal(err)
		}
		run(e)
		return
	}
	seen := map[string]bool{}
	for _, e := range bench.Experiments() {
		if seen[e.ID] {
			continue
		}
		seen[e.ID] = true
		if e.Heavy && !*all {
			fmt.Printf("== %s: skipped (heavy; use -all or -exp %s) ==\n\n", e.ID, e.ID)
			continue
		}
		run(e)
	}
}

func run(e bench.Experiment) {
	start := time.Now()
	tbl, err := e.Run()
	if err != nil {
		fatal(fmt.Errorf("%s: %w", e.ID, err))
	}
	tbl.Render(os.Stdout)
	fmt.Printf("  (%s in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hyperap-bench:", err)
	os.Exit(1)
}
