// Command hyperap-bench regenerates the paper's evaluation: every table
// and figure of §VI plus the extra ablations (DESIGN.md §3).
//
// Usage:
//
//	hyperap-bench                 # everything except the heavy figures
//	hyperap-bench -all            # everything (32-bit div/exp compile for ~1 min)
//	hyperap-bench -exp fig15      # one experiment
//	hyperap-bench -list           # list experiment ids
//	hyperap-bench -perf-json BENCH_6.json -pr 6   # perf trajectory snapshot
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"hyperap/internal/bench"
)

func main() {
	expID := flag.String("exp", "", "run a single experiment by id")
	all := flag.Bool("all", false, "include the heavy experiments (32-bit op suite, kernels)")
	list := flag.Bool("list", false, "list experiment ids")
	perfJSON := flag.String("perf-json", "", "measure the perf snapshot and write it to this file ('-' for stdout)")
	pr := flag.Int("pr", 6, "PR number recorded in the perf snapshot")
	flag.Parse()

	if *perfJSON != "" {
		rep, err := bench.PerfJSON(*pr)
		if err != nil {
			fatal(err)
		}
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		buf = append(buf, '\n')
		if *perfJSON == "-" {
			os.Stdout.Write(buf)
		} else if err := os.WriteFile(*perfJSON, buf, 0o644); err != nil {
			fatal(err)
		}
		for _, k := range rep.Kernels {
			fmt.Fprintf(os.Stderr, "%s pes=%d: %.0f ns/slot bit-plane, %.0f ns/slot scalar (%.1fx)\n",
				k.Name, k.PEs, k.BitplaneNsPerSlot, k.ScalarNsPerSlot, k.Speedup)
		}
		fmt.Fprintf(os.Stderr, "serve: %d requests, p99 %.2f ms\n", rep.Serve.Requests, rep.Serve.P99Ms)
		fmt.Fprintf(os.Stderr, "startup: cold %.1f ms, warm %.1f ms to first 200 (%.1fx)\n",
			rep.Startup.ColdMs, rep.Startup.WarmMs, rep.Startup.Speedup)
		return
	}

	if *list {
		for _, e := range bench.Experiments() {
			heavy := ""
			if e.Heavy {
				heavy = " (heavy)"
			}
			fmt.Printf("%s%s\n", e.ID, heavy)
		}
		return
	}
	if *expID != "" {
		e, err := bench.ByID(*expID)
		if err != nil {
			fatal(err)
		}
		run(e)
		return
	}
	seen := map[string]bool{}
	for _, e := range bench.Experiments() {
		if seen[e.ID] {
			continue
		}
		seen[e.ID] = true
		if e.Heavy && !*all {
			fmt.Printf("== %s: skipped (heavy; use -all or -exp %s) ==\n\n", e.ID, e.ID)
			continue
		}
		run(e)
	}
}

func run(e bench.Experiment) {
	start := time.Now()
	tbl, err := e.Run()
	if err != nil {
		fatal(fmt.Errorf("%s: %w", e.ID, err))
	}
	tbl.Render(os.Stdout)
	fmt.Printf("  (%s in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hyperap-bench:", err)
	os.Exit(1)
}
