package hyperap_test

import (
	"fmt"
	"log"

	"hyperap"
)

// ExampleCompile compiles the paper's Fig. 8 program and runs it
// word-parallel, one data element per SIMD slot.
func ExampleCompile() {
	ex, err := hyperap.Compile(`
		unsigned int(6) main(unsigned int(5) a, unsigned int(5) b) {
			unsigned int(6) c;
			c = a + b;
			return c;
		}`)
	if err != nil {
		log.Fatal(err)
	}
	out, err := ex.Run([][]uint64{{3, 4}, {31, 31}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out[0][0], out[1][0])
	// Output: 7 62
}

// ExampleNewAssociativeMemory searches a small ternary CAM: one search
// operation compares the query against every stored word in parallel.
func ExampleNewAssociativeMemory() {
	am, err := hyperap.NewAssociativeMemory(4, 8)
	if err != nil {
		log.Fatal(err)
	}
	for i, w := range []uint64{0x5A, 0x3C, 0x5A, 0x00} {
		am.Store(i, w)
	}
	am.Search(0x5A, 0xFF)
	fmt.Println(am.Count(), am.Matches())
	// Output: 2 [0 2]
}

// ExampleExecutable_Report shows the execution report: cycle-accurate
// latency, chip-level energy, and RRAM endurance exposure.
func ExampleExecutable_Report() {
	ex, err := hyperap.Compile(`unsigned int(5) main(unsigned int(4) a, unsigned int(4) b){ return a + b; }`)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := ex.Report([][]uint64{{7, 8}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep.Outputs[0][0], rep.Cycles > 0, rep.EnergyJ > 0, rep.MaxCellWrites > 0)
	// Output: 15 true true true
}
