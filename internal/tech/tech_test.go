package tech

import (
	"math"
	"testing"
)

func TestAlphaRatios(t *testing.T) {
	// §VI-E: Twrite/Tsearch = 10 for RRAM, 1 for CMOS.
	if a := RRAM().Alpha(); a != 10 {
		t.Errorf("RRAM alpha = %v, want 10", a)
	}
	if a := CMOS().Alpha(); a != 1 {
		t.Errorf("CMOS alpha = %v, want 1", a)
	}
}

func TestTableIIHyperAP(t *testing.T) {
	c := HyperAPChip()
	if c.SIMDSlots != 33_554_432 {
		t.Errorf("SIMD slots = %d, want 33554432 (Table II)", c.SIMDSlots)
	}
	if c.FreqHz != 1e9 {
		t.Errorf("frequency = %v, want 1 GHz", c.FreqHz)
	}
	if c.AreaMM2 != 452 || c.TDPWatts != 335 {
		t.Errorf("area/TDP = %v/%v, want 452/335", c.AreaMM2, c.TDPWatts)
	}
	if c.MemoryBytes != 1<<30 {
		t.Errorf("memory = %d, want 1 GiB", c.MemoryBytes)
	}
	if c.PEs() != 131_072 {
		t.Errorf("PEs = %d, want 131072 (17-bit PE address space)", c.PEs())
	}
	// 1 GB = slots × 256 bits: the memory capacity and slot count of
	// Table II are consistent.
	if c.SIMDSlots*PEBits/8 != c.MemoryBytes {
		t.Error("slot count inconsistent with memory capacity")
	}
}

func TestThroughputMatchesPaperFormula(t *testing.T) {
	// Fig. 15 consistency: 33.5 M slots at 592 ns per 32-bit add is
	// 56.7 TOPS ("56680" in the figure).
	c := HyperAPChip()
	gops := c.Throughput(592, 1)
	if math.Abs(gops-56680) > 60 {
		t.Errorf("throughput at 592 ns = %.0f GOPS, want ≈56680", gops)
	}
	// Area efficiency 56680/452 ≈ 126 GOPS/mm².
	if ae := c.AreaEfficiency(gops); math.Abs(ae-125.4) > 1 {
		t.Errorf("area efficiency = %.1f, want ≈125.4", ae)
	}
	if c.Throughput(0, 1) != 0 {
		t.Error("zero latency should give zero throughput")
	}
}

func TestEfficiencyHelpers(t *testing.T) {
	if PowerEfficiency(100, 50) != 2 {
		t.Error("PowerEfficiency wrong")
	}
	if PowerEfficiency(100, 0) != 0 {
		t.Error("PowerEfficiency must guard zero watts")
	}
	c := Chip{AreaMM2: 0}
	if c.AreaEfficiency(10) != 0 {
		t.Error("AreaEfficiency must guard zero area")
	}
}

func TestLatencyNS(t *testing.T) {
	r := RRAM()
	if r.CyclePeriodNS() != 1 {
		t.Errorf("period = %v ns, want 1", r.CyclePeriodNS())
	}
	if r.LatencyNS(592) != 592 {
		t.Errorf("LatencyNS(592) = %v", r.LatencyNS(592))
	}
}

func TestCMOSChipSmaller(t *testing.T) {
	if CMOSHyperAPChip().SIMDSlots >= HyperAPChip().SIMDSlots {
		t.Error("CMOS TCAM density must yield fewer slots (§VI-E)")
	}
	if CMOS().PEAreaUM2 <= RRAM().PEAreaUM2 {
		t.Error("CMOS PE must be larger than stacked-RRAM PE")
	}
}

func TestEnergyLedger(t *testing.T) {
	l := EnergyLedger{SearchJ: 1, WriteJ: 2, ControlJ: 3, MoveJ: 4, ReductionJ: 5, HalfSelectJ: 6}
	if l.TotalJ() != 21 {
		t.Errorf("TotalJ = %v", l.TotalJ())
	}
	var acc EnergyLedger
	acc.Add(l)
	acc.Add(l)
	if acc.TotalJ() != 42 {
		t.Errorf("Add wrong: %v", acc.TotalJ())
	}
	s := l.Scale(2)
	if s.SearchJ != 2 || s.HalfSelectJ != 12 || s.TotalJ() != 42 {
		t.Errorf("Scale wrong: %+v", s)
	}
}
