// Package tech holds the technology models of the evaluation (§VI-A.3):
// the RRAM and CMOS TCAM timing/energy constants that the paper extracts
// from HSPICE simulation and its custom physical design, and the chip
// configurations of Table II. Everything above this package (the
// micro-architecture simulator and the benchmark harness) converts
// operation counts into nanoseconds, joules and efficiency metrics through
// these constants.
//
// Substitution note (DESIGN.md §4): we cannot run HSPICE; the constants
// below are the paper's published figures where given (frequency, cycle
// counts, PE area, chip area, TDP, SIMD slots) and documented calibrations
// where the paper reports only derived quantities (per-event energies are
// fitted so that chip-level power lands in the paper's reported range).
package tech

// Tech describes one TCAM implementation technology.
type Tech struct {
	Name   string
	FreqHz float64

	// SearchCycles is the latency of one search operation.
	SearchCycles int
	// TCAMBitWriteCycles is the latency of programming one TCAM bit with
	// the separated (parallel two-cell) array design. The monolithic
	// design doubles it. RRAM: 10 cycles (SET/RESET pulse at 1 GHz);
	// CMOS: 1 cycle, giving the paper's Twrite/Tsearch ratios of 10 vs 1
	// (§VI-E).
	TCAMBitWriteCycles int

	// Per-event energies (joules). Calibrated, see the package comment.
	ESearchPerDrivenCellJ float64 // ML discharge + SL drive, per driven cell per row
	ESearchSAJ            float64 // sense amplifier, per row per search
	EWritePerCellJ        float64 // one RRAM/SRAM cell programming pulse
	EHalfSelectJ          float64 // V/3 sneak leakage, per half-selected cell
	EInstrJ               float64 // instruction decode/dispatch, per instruction per subarray controller
	EMovRJ                float64 // inter-PE register move, per PE
	EReductionJ           float64 // adder tree / priority encoder, per PE

	// PEAreaUM2 is the area of one PE. For RRAM the crossbars stack on
	// top of the CMOS periphery, so the PE area is the periphery area
	// (Fig. 14: 53.12 µm × 49.72 µm at 32 nm). CMOS TCAM cannot stack,
	// which is why the CMOS AP has far fewer SIMD slots for the same die
	// (§VI-E).
	PEAreaUM2 float64
}

// RRAM returns the RRAM TCAM technology of the main evaluation.
func RRAM() Tech {
	return Tech{
		Name:                  "RRAM",
		FreqHz:                1e9,
		SearchCycles:          1,
		TCAMBitWriteCycles:    10,
		ESearchPerDrivenCellJ: 5e-15,
		ESearchSAJ:            15e-15,
		EWritePerCellJ:        75e-15,
		EHalfSelectJ:          0.02e-15,
		EInstrJ:               2e-12,
		EMovRJ:                25e-12,
		EReductionJ:           60e-12,
		PEAreaUM2:             53.12 * 49.72,
	}
}

// CMOS returns the CMOS TCAM technology used in the Fig. 19 comparison:
// symmetric search/write latency but much lower storage density.
func CMOS() Tech {
	return Tech{
		Name:                  "CMOS",
		FreqHz:                1e9,
		SearchCycles:          1,
		TCAMBitWriteCycles:    1,
		ESearchPerDrivenCellJ: 3e-15,
		ESearchSAJ:            10e-15,
		EWritePerCellJ:        5e-15,
		EHalfSelectJ:          0,
		EInstrJ:               2e-12,
		EMovRJ:                25e-12,
		EReductionJ:           60e-12,
		// A 16T CMOS TCAM bit cell plus margin is ~64× the footprint of
		// the stacked 1D1R pair, so the same periphery area buys far
		// fewer slots.
		PEAreaUM2: 53.12 * 49.72 * 8,
	}
}

// Alpha returns the write/search latency ratio used as the α weight in the
// lookup-table-generation cost function (Eq. 2): 10 for RRAM, 1 for CMOS.
func (t Tech) Alpha() float64 {
	return float64(t.TCAMBitWriteCycles) / float64(t.SearchCycles)
}

// CyclePeriodNS returns the clock period in nanoseconds.
func (t Tech) CyclePeriodNS() float64 { return 1e9 / t.FreqHz }

// LatencyNS converts a cycle count into nanoseconds.
func (t Tech) LatencyNS(cycles int64) float64 { return float64(cycles) * t.CyclePeriodNS() }

// Chip is one row of Table II.
type Chip struct {
	Name        string
	SIMDSlots   int64
	FreqHz      float64
	AreaMM2     float64
	TDPWatts    float64
	MemoryBytes int64
	Tech        Tech
}

// PERows is the number of word rows (SIMD slots) in one PE: the TCAM array
// stores 256 256-bit words (§IV-B).
const PERows = 256

// PEBits is the number of TCAM bit columns per word.
const PEBits = 256

// HyperAPChip returns the Hyper-AP column of Table II: 33,554,432 SIMD
// slots (131,072 PEs × 256 rows), 1 GHz, 452 mm², 335 W TDP, 1 GB of RRAM
// (33.5 M words × 32 B).
func HyperAPChip() Chip {
	return Chip{
		Name:        "Hyper-AP",
		SIMDSlots:   33_554_432,
		FreqHz:      1e9,
		AreaMM2:     452,
		TDPWatts:    335,
		MemoryBytes: 1 << 30,
		Tech:        RRAM(),
	}
}

// CMOSHyperAPChip returns the CMOS-based Hyper-AP configuration of the
// Fig. 19 study: same die area but ~64× fewer slots because CMOS TCAM
// cannot be stacked above the logic.
func CMOSHyperAPChip() Chip {
	return Chip{
		Name:        "CMOS-Hyper-AP",
		SIMDSlots:   524_288,
		FreqHz:      1e9,
		AreaMM2:     452,
		TDPWatts:    300,
		MemoryBytes: 16 << 20,
		Tech:        CMOS(),
	}
}

// PEs returns the number of processing elements on the chip.
func (c Chip) PEs() int64 { return c.SIMDSlots / PERows }

// Throughput computes GOPS for an operation with the given per-slot
// latency, assuming every SIMD slot performs opsPerPass operations per
// pass (Fig. 15's metric: slots / latency).
func (c Chip) Throughput(latencyNS float64, opsPerPass float64) float64 {
	if latencyNS <= 0 {
		return 0
	}
	return float64(c.SIMDSlots) * opsPerPass / latencyNS // ops/ns = GOPS
}

// PowerEfficiency returns GOPS/W given throughput and average power.
func PowerEfficiency(gops, watts float64) float64 {
	if watts <= 0 {
		return 0
	}
	return gops / watts
}

// AreaEfficiency returns GOPS/mm².
func (c Chip) AreaEfficiency(gops float64) float64 {
	if c.AreaMM2 <= 0 {
		return 0
	}
	return gops / c.AreaMM2
}

// EnergyLedger accumulates the energy of a program execution, split by
// mechanism so the harness can report breakdowns.
type EnergyLedger struct {
	SearchJ     float64
	WriteJ      float64
	ControlJ    float64
	MoveJ       float64
	ReductionJ  float64
	HalfSelectJ float64
}

// TotalJ sums all mechanisms.
func (l EnergyLedger) TotalJ() float64 {
	return l.SearchJ + l.WriteJ + l.ControlJ + l.MoveJ + l.ReductionJ + l.HalfSelectJ
}

// Add accumulates another ledger.
func (l *EnergyLedger) Add(o EnergyLedger) {
	l.SearchJ += o.SearchJ
	l.WriteJ += o.WriteJ
	l.ControlJ += o.ControlJ
	l.MoveJ += o.MoveJ
	l.ReductionJ += o.ReductionJ
	l.HalfSelectJ += o.HalfSelectJ
}

// Scale multiplies every mechanism by f (used to extrapolate a small
// simulated array to the full chip).
func (l EnergyLedger) Scale(f float64) EnergyLedger {
	return EnergyLedger{
		SearchJ:     l.SearchJ * f,
		WriteJ:      l.WriteJ * f,
		ControlJ:    l.ControlJ * f,
		MoveJ:       l.MoveJ * f,
		ReductionJ:  l.ReductionJ * f,
		HalfSelectJ: l.HalfSelectJ * f,
	}
}
