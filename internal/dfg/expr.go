package dfg

import (
	"fmt"
	stdbits "math/bits"

	"hyperap/internal/lang"
)

func (e *exec) evalExpr(x lang.Expr) (*val, error) {
	switch ex := x.(type) {
	case *lang.IntLit:
		w := stdbits.Len64(ex.Value)
		if w == 0 {
			w = 1
		}
		return scalarVal(e.b.constNode(ex.Value, w, false), uintType(w)), nil
	case *lang.BoolLit:
		v := uint64(0)
		if ex.Value {
			v = 1
		}
		return scalarVal(e.b.constNode(v, 1, false), boolType()), nil
	case *lang.Ident:
		v, ok := e.lookup(ex.Name)
		if !ok {
			return nil, fmt.Errorf("line %d: %s not declared", ex.Line, ex.Name)
		}
		if v.arrayLen > 0 {
			return v.clone(), nil // whole-array value (for aggregate copies)
		}
		return v.clone(), nil
	case *lang.Member, *lang.Index:
		root, off, n, et, err := e.lvalueSlot(ex)
		if err != nil {
			return nil, err
		}
		out := &val{typ: et, comps: append([]int(nil), root.comps[off:off+n]...)}
		out.compTypes = e.b.componentScalarTypes(et)
		if n > len(out.compTypes) { // array-typed member
			out.arrayLen = n / len(out.compTypes)
			full := make([]lang.Type, 0, n)
			for i := 0; i < out.arrayLen; i++ {
				full = append(full, out.compTypes...)
			}
			out.compTypes = full
		}
		return out, nil
	case *lang.Unary:
		return e.evalUnary(ex)
	case *lang.Binary:
		return e.evalBinary(ex)
	case *lang.Call:
		return e.evalCall(ex)
	}
	return nil, fmt.Errorf("dfg: unknown expression %T", x)
}

func (e *exec) scalarOperand(x lang.Expr) (*val, error) {
	v, err := e.evalExpr(x)
	if err != nil {
		return nil, err
	}
	if !v.scalar() {
		return nil, fmt.Errorf("line %d: expected a scalar operand", lang.ExprLine(x))
	}
	return v, nil
}

func (e *exec) evalUnary(u *lang.Unary) (*val, error) {
	v, err := e.scalarOperand(u.X)
	if err != nil {
		return nil, err
	}
	t := v.typ
	switch u.Op {
	case "-":
		if t.Kind == lang.TypeBool {
			return nil, fmt.Errorf("line %d: cannot negate bool", u.Line)
		}
		w := t.Bits + 1
		if w > 64 {
			w = 64
		}
		id := e.b.newNode(&Node{Op: OpNeg, Width: w, Signed: true, Args: []int{v.comps[0]}})
		return scalarVal(id, intType(w)), nil
	case "~":
		if t.Kind == lang.TypeBool {
			return nil, fmt.Errorf("line %d: use ! on bool", u.Line)
		}
		id := e.b.newNode(&Node{Op: OpNot, Width: t.Bits, Signed: t.Signed(), Args: []int{v.comps[0]}})
		return scalarVal(id, t), nil
	case "!":
		if t.Kind != lang.TypeBool {
			return nil, fmt.Errorf("line %d: ! requires bool, got %v", u.Line, t)
		}
		id := e.b.newNode(&Node{Op: OpLNot, Width: 1, Args: []int{v.comps[0]}})
		return scalarVal(id, boolType()), nil
	}
	return nil, fmt.Errorf("line %d: unknown unary operator %s", u.Line, u.Op)
}

func (e *exec) evalBinary(bn *lang.Binary) (*val, error) {
	l, err := e.scalarOperand(bn.L)
	if err != nil {
		return nil, err
	}
	r, err := e.scalarOperand(bn.R)
	if err != nil {
		return nil, err
	}
	lt, rt := l.typ, r.typ
	isBoolOp := bn.Op == "&&" || bn.Op == "||"
	if isBoolOp {
		if lt.Kind != lang.TypeBool || rt.Kind != lang.TypeBool {
			return nil, fmt.Errorf("line %d: %s requires bool operands", bn.Line, bn.Op)
		}
		op := OpLAnd
		if bn.Op == "||" {
			op = OpLOr
		}
		id := e.b.newNode(&Node{Op: op, Width: 1, Args: []int{l.comps[0], r.comps[0]}})
		return scalarVal(id, boolType()), nil
	}
	if lt.Kind == lang.TypeBool || rt.Kind == lang.TypeBool {
		// Only == and != are defined between bools.
		if (bn.Op == "==" || bn.Op == "!=") && lt.Kind == rt.Kind {
			op := OpEq
			if bn.Op == "!=" {
				op = OpNe
			}
			id := e.b.newNode(&Node{Op: op, Width: 1, Args: []int{l.comps[0], r.comps[0]}})
			return scalarVal(id, boolType()), nil
		}
		return nil, fmt.Errorf("line %d: operator %s not defined for bool", bn.Line, bn.Op)
	}

	signed := lt.Signed() || rt.Signed()
	ct := commonType(lt, rt)
	grow := func(w int) int {
		if w > 64 {
			return 64
		}
		return w
	}
	mk := func(op OpKind, w int, sgn bool, argSigned bool, a, b int) (*val, error) {
		id := e.b.newNode(&Node{Op: op, Width: w, Signed: sgn, ArgSigned: argSigned, Args: []int{a, b}})
		t := uintType(w)
		if sgn {
			t = intType(w)
		}
		return scalarVal(id, t), nil
	}
	boolRes := func(op OpKind, argSigned bool, a, b int) (*val, error) {
		id := e.b.newNode(&Node{Op: op, Width: 1, ArgSigned: argSigned, Args: []int{a, b}})
		return scalarVal(id, boolType()), nil
	}

	switch bn.Op {
	case "+":
		return mk(OpAdd, grow(ct.Bits+1), signed, false, l.comps[0], r.comps[0])
	case "-":
		// Subtraction can go negative for unsigned operands too, so the
		// natural-width result is signed with one growth bit.
		return mk(OpSub, grow(ct.Bits+1), true, false, l.comps[0], r.comps[0])
	case "*":
		return mk(OpMul, grow(lt.Bits+rt.Bits), signed, false, l.comps[0], r.comps[0])
	case "/":
		if signed {
			return e.signedDivMod(l, r, true)
		}
		return mk(OpDiv, lt.Bits, false, false, l.comps[0], r.comps[0])
	case "%":
		if signed {
			return e.signedDivMod(l, r, false)
		}
		return mk(OpMod, rt.Bits, false, false, l.comps[0], r.comps[0])
	case "<<":
		if c, ok := e.b.isConst(r.comps[0]); ok {
			w := grow(lt.Bits + int(c))
			if lt.Bits+int(c) > 64 {
				return nil, fmt.Errorf("line %d: shift widens value beyond 64 bits", bn.Line)
			}
			id := e.b.newNode(&Node{Op: OpShlC, Width: w, Signed: lt.Signed(), Const: c, Args: []int{l.comps[0]}})
			return scalarVal(id, scalarType(w, lt.Signed())), nil
		}
		return mk(OpShlV, lt.Bits, lt.Signed(), false, l.comps[0], r.comps[0])
	case ">>":
		if c, ok := e.b.isConst(r.comps[0]); ok {
			id := e.b.newNode(&Node{Op: OpShrC, Width: lt.Bits, Signed: lt.Signed(), ArgSigned: lt.Signed(), Const: c, Args: []int{l.comps[0]}})
			return scalarVal(id, lt), nil
		}
		return mk(OpShrV, lt.Bits, lt.Signed(), lt.Signed(), l.comps[0], r.comps[0])
	case "&", "|", "^":
		ops := map[string]OpKind{"&": OpAnd, "|": OpOr, "^": OpXor}
		return mk(ops[bn.Op], ct.Bits, signed, false, l.comps[0], r.comps[0])
	case "==", "!=":
		// Normalise both sides to the common type so raw comparison is
		// exact.
		ln := e.b.resize(l, ct)
		rn := e.b.resize(r, ct)
		op := OpEq
		if bn.Op == "!=" {
			op = OpNe
		}
		return boolRes(op, false, ln.comps[0], rn.comps[0])
	case "<":
		return boolRes(OpLt, signed, l.comps[0], r.comps[0])
	case "<=":
		return boolRes(OpLe, signed, l.comps[0], r.comps[0])
	case ">":
		return boolRes(OpLt, signed, r.comps[0], l.comps[0])
	case ">=":
		return boolRes(OpLe, signed, r.comps[0], l.comps[0])
	}
	return nil, fmt.Errorf("line %d: unknown operator %s", bn.Line, bn.Op)
}

// signedDivMod desugars signed division/modulo into magnitude arithmetic
// with C semantics (truncation toward zero; the remainder takes the
// dividend's sign). The RTL library's restoring divider is unsigned, so
// this is how the "expert-provided" library of §V-B.3 would implement the
// signed overloads.
func (e *exec) signedDivMod(l, r *val, wantQuot bool) (*val, error) {
	b := e.b
	abs := func(v *val) (int, int) { // returns (absNode, negFlagNode)
		t := v.compTypes[0]
		if !t.Signed() {
			return v.comps[0], b.constNode(0, 1, false)
		}
		zero := b.constNode(0, t.Bits, true)
		neg := b.newNode(&Node{Op: OpLt, Width: 1, ArgSigned: true, Args: []int{v.comps[0], zero}})
		negV := b.newNode(&Node{Op: OpNeg, Width: t.Bits, Signed: true, Args: []int{v.comps[0]}})
		mag := b.newNode(&Node{Op: OpMux, Width: t.Bits, Args: []int{neg, negV, v.comps[0]}})
		return mag, neg
	}
	la, lneg := abs(l)
	ra, rneg := abs(r)
	wl, wr := l.compTypes[0].Bits, r.compTypes[0].Bits
	var magnitude int
	var w int
	if wantQuot {
		w = wl
		magnitude = b.newNode(&Node{Op: OpDiv, Width: w, Args: []int{la, ra}})
	} else {
		w = wr
		magnitude = b.newNode(&Node{Op: OpMod, Width: w, Args: []int{la, ra}})
	}
	// Result sign: quotient is negative when operand signs differ;
	// remainder follows the dividend.
	var negOut int
	if wantQuot {
		negOut = b.newNode(&Node{Op: OpXor, Width: 1, Args: []int{lneg, rneg}})
	} else {
		negOut = lneg
	}
	ow := w + 1
	if ow > 64 {
		ow = 64
	}
	negV := b.newNode(&Node{Op: OpNeg, Width: ow, Signed: true, Args: []int{magnitude}})
	posV := b.newNode(&Node{Op: OpResize, Width: ow, Signed: true, Args: []int{magnitude}})
	id := b.newNode(&Node{Op: OpMux, Width: ow, Signed: true, Args: []int{negOut, negV, posV}})
	return scalarVal(id, intType(ow)), nil
}

func scalarType(w int, signed bool) lang.Type {
	if signed {
		return intType(w)
	}
	return uintType(w)
}

func (e *exec) evalCall(c *lang.Call) (*val, error) {
	// Intrinsics first (the paper's expert-provided RTL library entries
	// for iterative methods, §VI-C).
	switch c.Name {
	case "sqrt", "exp", "abs":
		if len(c.Args) != 1 {
			return nil, fmt.Errorf("line %d: %s takes one argument", c.Line, c.Name)
		}
		v, err := e.scalarOperand(c.Args[0])
		if err != nil {
			return nil, err
		}
		switch c.Name {
		case "sqrt":
			if v.typ.Signed() || v.typ.Kind == lang.TypeBool {
				return nil, fmt.Errorf("line %d: sqrt requires an unsigned operand", c.Line)
			}
			w := (v.typ.Bits + 1) / 2
			id := e.b.newNode(&Node{Op: OpSqrt, Width: w, Args: []int{v.comps[0]}})
			return scalarVal(id, uintType(w)), nil
		case "exp":
			if v.typ.Signed() || v.typ.Kind == lang.TypeBool {
				return nil, fmt.Errorf("line %d: exp requires an unsigned Q16.16 operand", c.Line)
			}
			w := v.typ.Bits
			if w < 18 {
				w = 18
			}
			id := e.b.newNode(&Node{Op: OpExp, Width: w, Args: []int{v.comps[0]}})
			return scalarVal(id, uintType(w)), nil
		default: // abs
			if !v.typ.Signed() {
				return v, nil
			}
			zero := scalarVal(e.b.constNode(0, v.typ.Bits, true), v.typ)
			neg := e.b.newNode(&Node{Op: OpNeg, Width: v.typ.Bits, Signed: true, Args: []int{v.comps[0]}})
			lt := e.b.newNode(&Node{Op: OpLt, Width: 1, ArgSigned: true, Args: []int{v.comps[0], zero.comps[0]}})
			id := e.b.newNode(&Node{Op: OpMux, Width: v.typ.Bits, Args: []int{lt, neg, v.comps[0]}})
			return scalarVal(id, uintType(v.typ.Bits)), nil
		}
	case "min", "max":
		if len(c.Args) != 2 {
			return nil, fmt.Errorf("line %d: %s takes two arguments", c.Line, c.Name)
		}
		a, err := e.scalarOperand(c.Args[0])
		if err != nil {
			return nil, err
		}
		bv, err := e.scalarOperand(c.Args[1])
		if err != nil {
			return nil, err
		}
		signed := a.typ.Signed() || bv.typ.Signed()
		ct := commonType(a.typ, bv.typ)
		an := e.b.resize(a, ct)
		bn := e.b.resize(bv, ct)
		lt := e.b.newNode(&Node{Op: OpLt, Width: 1, ArgSigned: signed, Args: []int{an.comps[0], bn.comps[0]}})
		t, f := an.comps[0], bn.comps[0]
		if c.Name == "max" {
			t, f = f, t
		}
		id := e.b.newNode(&Node{Op: OpMux, Width: ct.Bits, Signed: ct.Signed(), Args: []int{lt, t, f}})
		return scalarVal(id, ct), nil
	}

	// User function: inline.
	fn, ok := e.b.prog.Funcs[c.Name]
	if !ok {
		return nil, fmt.Errorf("line %d: function %s not defined", c.Line, c.Name)
	}
	if len(c.Args) != len(fn.Params) {
		return nil, fmt.Errorf("line %d: %s takes %d arguments, got %d", c.Line, c.Name, len(fn.Params), len(c.Args))
	}
	if e.depth >= maxInlineDepth {
		return nil, fmt.Errorf("line %d: call depth exceeds %d (recursion is not supported)", c.Line, maxInlineDepth)
	}
	callee := &exec{b: e.b, depth: e.depth + 1}
	callee.pushScope()
	for i, p := range fn.Params {
		av, err := e.evalExpr(c.Args[i])
		if err != nil {
			return nil, err
		}
		cv, err := e.b.coerce(av, p.Type, c.Line)
		if err != nil {
			return nil, err
		}
		bound := cv.clone()
		bound.typ = p.Type
		callee.declare(p.Name, bound)
	}
	ret, err := callee.runBlock(fn.Body)
	if err != nil {
		return nil, err
	}
	if ret == nil {
		return nil, fmt.Errorf("line %d: function %s did not return", c.Line, c.Name)
	}
	return e.b.coerce(ret, fn.Ret, c.Line)
}
