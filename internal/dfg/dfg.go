// Package dfg implements the dataflow-graph stage of the compilation
// framework (paper §V-B.1-2): programs in the C-like language are lowered
// into a graph of multi-bit operations by a symbolic executor that unrolls
// loops (whose bounds must be compile-time constants, §V-A constraint 1),
// inlines function calls, executes both branches of conditionals and
// merges them with multiplexers (Fig. 13b), and constant-folds
// aggressively so that immediate operands propagate into the lookup
// tables (the operand-embedding optimisation of Fig. 12b).
//
// The package also provides the reference evaluator used to verify
// compiled programs end-to-end, and the DFG clustering step with the
// cost function of Eq. 1 (Fig. 10).
package dfg

import (
	"fmt"
	stdbits "math/bits"

	"hyperap/internal/bits"
)

// OpKind is a dataflow operation.
type OpKind int

// Operation kinds.
const (
	OpInput OpKind = iota
	OpConst
	OpAdd
	OpSub
	OpMul
	OpDiv // unsigned
	OpMod // unsigned
	OpShlC
	OpShrC
	OpShlV
	OpShrV
	OpAnd
	OpOr
	OpXor
	OpNot
	OpNeg
	OpEq
	OpNe
	OpLt // unsigned or signed per Signed flag of the node
	OpLe
	OpLAnd
	OpLOr
	OpLNot
	OpMux // args: sel, then, else
	OpResize
	OpSqrt
	OpExp
)

var opNames = map[OpKind]string{
	OpInput: "input", OpConst: "const", OpAdd: "add", OpSub: "sub",
	OpMul: "mul", OpDiv: "div", OpMod: "mod", OpShlC: "shl", OpShrC: "shr",
	OpShlV: "shlv", OpShrV: "shrv", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpNot: "not", OpNeg: "neg", OpEq: "eq", OpNe: "ne", OpLt: "lt",
	OpLe: "le", OpLAnd: "land", OpLOr: "lor", OpLNot: "lnot", OpMux: "mux",
	OpResize: "resize", OpSqrt: "sqrt", OpExp: "exp",
}

func (k OpKind) String() string {
	if s, ok := opNames[k]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// Node is one dataflow operation producing a Width-bit value.
type Node struct {
	ID     int
	Op     OpKind
	Width  int
	Signed bool // result interpreted as two's complement
	Args   []int

	// OpConst: the value; OpShlC/OpShrC: the shift amount.
	Const uint64
	// OpShrC/OpResize: whether the *operand* is sign-extended.
	ArgSigned bool
	// OpInput: parameter index and name.
	InputIdx int
	Name     string
}

// Graph is a dataflow graph. Node IDs are dense and topologically ordered
// (arguments always precede users).
type Graph struct {
	Nodes   []*Node
	Inputs  []int // node IDs of OpInput nodes, in parameter order
	Outputs []int // node IDs of the (flattened) return value
	// OutputNames labels each output component (for listings).
	OutputNames []string
	// OutputSigned records the signedness of each output component.
	OutputSigned []bool
}

func (g *Graph) add(n *Node) int {
	n.ID = len(g.Nodes)
	g.Nodes = append(g.Nodes, n)
	return n.ID
}

// NumOps returns the number of non-input, non-const nodes.
func (g *Graph) NumOps() int {
	c := 0
	for _, n := range g.Nodes {
		if n.Op != OpInput && n.Op != OpConst {
			c++
		}
	}
	return c
}

// maskW masks v to width w.
func maskW(v uint64, w int) uint64 { return v & bits.Mask(w) }

// signedVal interprets v (width w) as two's complement.
func signedVal(v uint64, w int) int64 { return bits.SignExtend(v, w) }

// EvalNode computes one node's value given its argument values. It is the
// single source of truth for the language's semantics; the RTL netlists
// are tested against it bit for bit.
func EvalNode(n *Node, args []uint64, argNodes []*Node) uint64 {
	w := n.Width
	ext := func(i int) uint64 {
		// Extend argument i to the result width using the argument's own
		// signedness.
		a := argNodes[i]
		if a.Signed {
			return maskW(uint64(bits.SignExtend(args[i], a.Width)), w)
		}
		return maskW(args[i], w)
	}
	b2u := func(b bool) uint64 {
		if b {
			return 1
		}
		return 0
	}
	switch n.Op {
	case OpConst:
		return maskW(n.Const, w)
	case OpAdd:
		return maskW(ext(0)+ext(1), w)
	case OpSub:
		return maskW(ext(0)-ext(1), w)
	case OpMul:
		return maskW(ext(0)*ext(1), w)
	case OpDiv:
		if args[1] == 0 {
			return bits.Mask(w) // hardware convention, see rtl.UDiv
		}
		return maskW(args[0]/args[1], w)
	case OpMod:
		if args[1] == 0 {
			return maskW(args[0], w)
		}
		return maskW(args[0]%args[1], w)
	case OpShlC:
		return maskW(args[0]<<uint(n.Const), w)
	case OpShrC:
		if n.ArgSigned {
			return maskW(uint64(signedVal(args[0], argNodes[0].Width)>>uint(n.Const)), w)
		}
		return maskW(args[0]>>uint(n.Const), w)
	case OpShlV:
		sh := args[1]
		if sh >= 64 {
			return 0
		}
		return maskW(args[0]<<sh, w)
	case OpShrV:
		sh := args[1]
		if n.ArgSigned {
			s := signedVal(args[0], argNodes[0].Width)
			if sh >= 64 {
				sh = 63
			}
			return maskW(uint64(s>>sh), w)
		}
		if sh >= 64 {
			return 0
		}
		return maskW(args[0]>>sh, w)
	case OpAnd:
		return maskW(ext(0)&ext(1), w)
	case OpOr:
		return maskW(ext(0)|ext(1), w)
	case OpXor:
		return maskW(ext(0)^ext(1), w)
	case OpNot:
		return maskW(^args[0], w)
	case OpNeg:
		return maskW(-ext(0), w)
	case OpEq:
		return b2u(args[0] == args[1])
	case OpNe:
		return b2u(args[0] != args[1])
	case OpLt:
		if n.ArgSigned {
			return b2u(signedVal(args[0], argNodes[0].Width) < signedVal(args[1], argNodes[1].Width))
		}
		return b2u(args[0] < args[1])
	case OpLe:
		if n.ArgSigned {
			return b2u(signedVal(args[0], argNodes[0].Width) <= signedVal(args[1], argNodes[1].Width))
		}
		return b2u(args[0] <= args[1])
	case OpLAnd:
		return b2u(args[0] != 0 && args[1] != 0)
	case OpLOr:
		return b2u(args[0] != 0 || args[1] != 0)
	case OpLNot:
		return b2u(args[0] == 0)
	case OpMux:
		if args[0] != 0 {
			return ext(1)
		}
		return ext(2)
	case OpResize:
		if n.ArgSigned {
			return maskW(uint64(signedVal(args[0], argNodes[0].Width)), w)
		}
		return maskW(args[0], w)
	case OpSqrt:
		v := args[0]
		var r uint64
		for bitI := (argNodes[0].Width + 1) / 2; bitI >= 0; bitI-- {
			t := r | 1<<uint(bitI)
			if hi, lo := stdbits.Mul64(t, t); hi == 0 && lo <= v {
				r = t
			}
		}
		return maskW(r, w)
	case OpExp:
		return maskW(expFixedRef(args[0], argNodes[0].Width), w)
	}
	panic(fmt.Sprintf("dfg: cannot evaluate %v", n.Op))
}

// expFixedRef mirrors rtl.Exp exactly (Q16.16 shift-and-add) so the
// reference evaluator and the netlist agree bit for bit.
func expFixedRef(x uint64, wIn int) uint64 {
	w := wIn
	if w < 18 {
		w = 18
	}
	mask := bits.Mask(w)
	y := uint64(1<<16) & mask
	rem := x & mask
	lnTab := []uint64{45426, 26573, 14624, 7719, 3973, 2017, 1016, 510,
		256, 128, 64, 32, 16, 8, 4, 2, 1}
	intBits := w - 16
	for i := 0; i < intBits; i++ {
		if rem >= lnTab[0] {
			rem -= lnTab[0]
			y = y << 1 & mask
		}
	}
	for k := 1; k <= 16; k++ {
		if rem >= lnTab[k] {
			rem -= lnTab[k]
			y = (y + y>>uint(k)) & mask
		}
	}
	return y
}

// Eval runs the whole graph on one input assignment (values in parameter
// order, already truncated to the declared widths) and returns the output
// component values.
func (g *Graph) Eval(inputs []uint64) []uint64 {
	if len(inputs) != len(g.Inputs) {
		panic(fmt.Sprintf("dfg: %d inputs for %d parameters", len(inputs), len(g.Inputs)))
	}
	vals := make([]uint64, len(g.Nodes))
	for _, n := range g.Nodes {
		if n.Op == OpInput {
			vals[n.ID] = maskW(inputs[n.InputIdx], n.Width)
			continue
		}
		args := make([]uint64, len(n.Args))
		argNodes := make([]*Node, len(n.Args))
		for i, a := range n.Args {
			args[i] = vals[a]
			argNodes[i] = g.Nodes[a]
		}
		vals[n.ID] = EvalNode(n, args, argNodes)
	}
	out := make([]uint64, len(g.Outputs))
	for i, o := range g.Outputs {
		out[i] = vals[o]
	}
	return out
}

// String dumps the graph for debugging.
func (g *Graph) String() string {
	s := ""
	for _, n := range g.Nodes {
		s += fmt.Sprintf("n%d = %v w%d %v", n.ID, n.Op, n.Width, n.Args)
		if n.Op == OpConst {
			s += fmt.Sprintf(" #%d", n.Const)
		}
		if n.Op == OpInput {
			s += " " + n.Name
		}
		s += "\n"
	}
	s += fmt.Sprintf("outputs: %v\n", g.Outputs)
	return s
}
