package dfg

import (
	"fmt"

	"hyperap/internal/bits"
	"hyperap/internal/lang"
)

// maxUnrollIterations bounds loop unrolling so a runaway loop becomes a
// compile error instead of a hang.
const maxUnrollIterations = 1 << 16

// maxInlineDepth bounds function inlining (the language has no recursion).
const maxInlineDepth = 64

// Build lowers one function of a parsed program (usually "main") into a
// dataflow graph.
func Build(prog *lang.Program, fnName string) (*Graph, error) {
	fn, ok := prog.Funcs[fnName]
	if !ok {
		return nil, fmt.Errorf("dfg: function %q not defined", fnName)
	}
	b := &builder{prog: prog, g: &Graph{}, consts: map[constKey]int{}}
	e := &exec{b: b}
	e.pushScope()
	inputIdx := 0
	for _, p := range fn.Params {
		v, err := b.inputValue(p.Type, p.Name, &inputIdx)
		if err != nil {
			return nil, err
		}
		e.declare(p.Name, v)
	}
	ret, err := e.runBlock(fn.Body)
	if err != nil {
		return nil, err
	}
	if ret == nil {
		return nil, fmt.Errorf("dfg: function %s does not return", fnName)
	}
	// Coerce the result to the declared return type, component-wise.
	retV, err := b.coerce(ret, fn.Ret, fn.Line)
	if err != nil {
		return nil, err
	}
	names := b.componentNames(fn.Ret, "ret")
	sign := b.componentSigns(fn.Ret)
	for i, c := range retV.comps {
		b.g.Outputs = append(b.g.Outputs, c)
		b.g.OutputNames = append(b.g.OutputNames, names[i])
		b.g.OutputSigned = append(b.g.OutputSigned, sign[i])
	}
	return b.g, nil
}

// BuildSource parses source text and builds its main function.
func BuildSource(src string) (*Graph, error) {
	prog, err := lang.Parse(src)
	if err != nil {
		return nil, err
	}
	return Build(prog, "main")
}

type constKey struct {
	v      uint64
	w      int
	signed bool
}

type builder struct {
	prog   *lang.Program
	g      *Graph
	consts map[constKey]int
}

// val is a flattened value: scalars have one component, arrays and
// structs several. compTypes holds the scalar type of each component.
type val struct {
	typ       lang.Type
	arrayLen  int
	comps     []int
	compTypes []lang.Type
}

func (v *val) scalar() bool { return v.arrayLen == 0 && v.typ.Kind != lang.TypeStruct }

func (v *val) clone() *val {
	return &val{
		typ:       v.typ,
		arrayLen:  v.arrayLen,
		comps:     append([]int(nil), v.comps...),
		compTypes: append([]lang.Type(nil), v.compTypes...),
	}
}

// scalarType of a DFG node id, for expression values.
func scalarVal(node int, t lang.Type) *val {
	return &val{typ: t, comps: []int{node}, compTypes: []lang.Type{t}}
}

func (b *builder) structDef(name string, line int) (*lang.StructDef, error) {
	sd, ok := b.prog.Structs[name]
	if !ok {
		return nil, fmt.Errorf("line %d: struct %s not defined", line, name)
	}
	return sd, nil
}

// componentScalarTypes flattens a type into its scalar component types.
func (b *builder) componentScalarTypes(t lang.Type) []lang.Type {
	if t.Kind != lang.TypeStruct {
		return []lang.Type{t}
	}
	sd := b.prog.Structs[t.Name]
	var out []lang.Type
	for _, f := range sd.Fields {
		n := 1
		if f.ArrayLen > 0 {
			n = f.ArrayLen
		}
		for i := 0; i < n; i++ {
			out = append(out, b.componentScalarTypes(f.Type)...)
		}
	}
	return out
}

func (b *builder) componentNames(t lang.Type, prefix string) []string {
	if t.Kind != lang.TypeStruct {
		return []string{prefix}
	}
	sd := b.prog.Structs[t.Name]
	var out []string
	for _, f := range sd.Fields {
		if f.ArrayLen > 0 {
			for i := 0; i < f.ArrayLen; i++ {
				out = append(out, b.componentNames(f.Type, fmt.Sprintf("%s.%s[%d]", prefix, f.Name, i))...)
			}
		} else {
			out = append(out, b.componentNames(f.Type, prefix+"."+f.Name)...)
		}
	}
	return out
}

func (b *builder) componentSigns(t lang.Type) []bool {
	types := b.componentScalarTypes(t)
	out := make([]bool, len(types))
	for i, ct := range types {
		out[i] = ct.Signed()
	}
	return out
}

// inputValue creates OpInput nodes for one (possibly aggregate) parameter.
func (b *builder) inputValue(t lang.Type, name string, inputIdx *int) (*val, error) {
	if t.Kind == lang.TypeStruct {
		if _, err := b.structDef(t.Name, 0); err != nil {
			return nil, err
		}
	}
	compTypes := b.componentScalarTypes(t)
	names := b.componentNames(t, name)
	v := &val{typ: t, compTypes: compTypes}
	for i, ct := range compTypes {
		id := b.g.add(&Node{Op: OpInput, Width: ct.Bits, Signed: ct.Signed(), InputIdx: *inputIdx, Name: names[i]})
		b.g.Inputs = append(b.g.Inputs, id)
		*inputIdx++
		v.comps = append(v.comps, id)
	}
	return v, nil
}

// constNode interns a constant.
func (b *builder) constNode(v uint64, w int, signed bool) int {
	v &= bits.Mask(w)
	k := constKey{v, w, signed}
	if id, ok := b.consts[k]; ok {
		return id
	}
	id := b.g.add(&Node{Op: OpConst, Width: w, Signed: signed, Const: v})
	b.consts[k] = id
	return id
}

// newNode appends an operation node, constant-folding when every argument
// is constant (this is what carries immediate operands into the lookup
// tables, Fig. 12b).
func (b *builder) newNode(n *Node) int {
	allConst := len(n.Args) > 0
	for _, a := range n.Args {
		if b.g.Nodes[a].Op != OpConst {
			allConst = false
			break
		}
	}
	if allConst {
		args := make([]uint64, len(n.Args))
		argNodes := make([]*Node, len(n.Args))
		for i, a := range n.Args {
			args[i] = b.g.Nodes[a].Const
			argNodes[i] = b.g.Nodes[a]
		}
		return b.constNode(EvalNode(n, args, argNodes), n.Width, n.Signed)
	}
	return b.g.add(n)
}

// isConst reports whether a node is a constant and returns its value.
func (b *builder) isConst(id int) (uint64, bool) {
	n := b.g.Nodes[id]
	if n.Op == OpConst {
		return n.Const, true
	}
	return 0, false
}

func boolType() lang.Type { return lang.Type{Kind: lang.TypeBool, Bits: 1} }

func uintType(w int) lang.Type { return lang.Type{Kind: lang.TypeUInt, Bits: w} }

func intType(w int) lang.Type { return lang.Type{Kind: lang.TypeInt, Bits: w} }

// commonType returns the smallest integer type able to hold both operand
// types' value ranges.
func commonType(a, c lang.Type) lang.Type {
	if a.Kind == lang.TypeBool && c.Kind == lang.TypeBool {
		return boolType()
	}
	signed := a.Signed() || c.Signed()
	wa, wc := a.Bits, c.Bits
	if signed && !a.Signed() {
		wa++
	}
	if signed && !c.Signed() {
		wc++
	}
	w := wa
	if wc > w {
		w = wc
	}
	if w > 64 {
		w = 64
	}
	if signed {
		return intType(w)
	}
	return uintType(w)
}

// resize coerces a scalar value to a target scalar type (truncation or
// source-signedness extension). A no-op when the representation already
// matches.
func (b *builder) resize(v *val, t lang.Type) *val {
	cur := v.compTypes[0]
	if cur.Bits == t.Bits && cur.Signed() == t.Signed() && (cur.Kind == lang.TypeBool) == (t.Kind == lang.TypeBool) {
		out := scalarVal(v.comps[0], t)
		return out
	}
	id := b.newNode(&Node{Op: OpResize, Width: t.Bits, Signed: t.Signed(), ArgSigned: cur.Signed(), Args: []int{v.comps[0]}})
	return scalarVal(id, t)
}

// coerce adapts a value to a declared type: scalars resize; aggregates
// must match exactly.
func (b *builder) coerce(v *val, t lang.Type, line int) (*val, error) {
	if t.Kind == lang.TypeStruct || v.typ.Kind == lang.TypeStruct {
		if v.typ.Kind != lang.TypeStruct || t.Kind != lang.TypeStruct || v.typ.Name != t.Name {
			return nil, fmt.Errorf("line %d: cannot assign %v to %v", line, v.typ, t)
		}
		return v, nil
	}
	if v.arrayLen != 0 {
		return nil, fmt.Errorf("line %d: cannot assign an array value", line)
	}
	if t.Kind == lang.TypeBool && v.typ.Kind != lang.TypeBool {
		return nil, fmt.Errorf("line %d: cannot assign %v to bool", line, v.typ)
	}
	return b.resize(v, t), nil
}
