package dfg

import (
	"math/rand"
	"strings"
	"testing"

	"hyperap/internal/bits"
)

// build compiles source and fails the test on error.
func build(t *testing.T, src string) *Graph {
	t.Helper()
	g, err := BuildSource(src)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return g
}

// TestFig8Program builds the exact program of Fig. 8.
func TestFig8Program(t *testing.T) {
	g := build(t, `
		// A program that adds two 5-bit variables (Fig. 8).
		unsigned int(6) main(unsigned int(5) a, unsigned int(5) b) {
			unsigned int(6) c;
			c = a + b;
			return c;
		}`)
	if len(g.Inputs) != 2 || len(g.Outputs) != 1 {
		t.Fatalf("inputs/outputs = %d/%d", len(g.Inputs), len(g.Outputs))
	}
	for a := uint64(0); a < 32; a++ {
		for b := uint64(0); b < 32; b++ {
			out := g.Eval([]uint64{a, b})
			if out[0] != (a+b)&63 {
				t.Fatalf("%d+%d = %d", a, b, out[0])
			}
		}
	}
}

func TestArithmeticSemantics(t *testing.T) {
	cases := []struct {
		name string
		src  string
		ref  func(a, b uint64) uint64
	}{
		{"add", `unsigned int(9) main(unsigned int(8) a, unsigned int(8) b){ return a + b; }`,
			func(a, b uint64) uint64 { return (a + b) & 0x1FF }},
		{"sub-wraps-signed", `int(9) main(unsigned int(8) a, unsigned int(8) b){ return a - b; }`,
			func(a, b uint64) uint64 { return (a - b) & 0x1FF }},
		{"mul", `unsigned int(16) main(unsigned int(8) a, unsigned int(8) b){ return a * b; }`,
			func(a, b uint64) uint64 { return a * b }},
		{"div", `unsigned int(8) main(unsigned int(8) a, unsigned int(8) b){ return a / b; }`,
			func(a, b uint64) uint64 {
				if b == 0 {
					return 0xFF
				}
				return a / b
			}},
		{"mod", `unsigned int(8) main(unsigned int(8) a, unsigned int(8) b){ return a % b; }`,
			func(a, b uint64) uint64 {
				if b == 0 {
					return a
				}
				return a % b
			}},
		{"xor-and-or", `unsigned int(8) main(unsigned int(8) a, unsigned int(8) b){ return (a ^ b) | (a & b); }`,
			func(a, b uint64) uint64 { return (a ^ b) | (a & b) }},
		{"shifts", `unsigned int(10) main(unsigned int(8) a, unsigned int(8) b){ return (a << 2) >> 1; }`,
			func(a, b uint64) uint64 { return a << 2 >> 1 }},
		{"varshift", `unsigned int(8) main(unsigned int(8) a, unsigned int(3) b){ return a >> b; }`,
			func(a, b uint64) uint64 { return a >> (b & 7) }},
	}
	rng := rand.New(rand.NewSource(20))
	for _, c := range cases {
		g := build(t, c.src)
		for i := 0; i < 200; i++ {
			a, b := rng.Uint64()&0xFF, rng.Uint64()&0xFF
			got := g.Eval([]uint64{a, b})[0]
			if got != c.ref(a, b) {
				t.Errorf("%s(%d,%d) = %d, want %d", c.name, a, b, got, c.ref(a, b))
			}
		}
	}
}

func TestSignedComparisonsAndNeg(t *testing.T) {
	g := build(t, `
		bool main(int(8) a, int(8) b) {
			return -a < b;
		}`)
	for i := 0; i < 256; i++ {
		for j := 0; j < 256; j++ {
			sa, sb := bits.SignExtend(uint64(i), 8), bits.SignExtend(uint64(j), 8)
			got := g.Eval([]uint64{uint64(i), uint64(j)})[0]
			want := uint64(0)
			if -sa < sb {
				want = 1
			}
			if got != want {
				t.Fatalf("-%d < %d: got %d", sa, sb, got)
			}
		}
	}
}

func TestConditionalBothBranches(t *testing.T) {
	// Fig. 13b: data-dependent conditional becomes a mux merge.
	g := build(t, `
		unsigned int(8) main(unsigned int(8) a, bool p) {
			unsigned int(8) b;
			if (p == true) {
				b = a + 1;
			} else {
				b = a - 1;
			}
			return b;
		}`)
	for a := uint64(0); a < 256; a++ {
		if got := g.Eval([]uint64{a, 1})[0]; got != (a+1)&0xFF {
			t.Fatalf("then branch: %d", got)
		}
		if got := g.Eval([]uint64{a, 0})[0]; got != (a-1)&0xFF {
			t.Fatalf("else branch: %d", got)
		}
	}
}

func TestLoopUnrollingAndConstFold(t *testing.T) {
	g := build(t, `
		unsigned int(16) main(unsigned int(8) a) {
			unsigned int(16) acc;
			acc = 0;
			for (unsigned int(8) i = 0; i < 5; i = i + 1) {
				acc = acc + a;
			}
			return acc;
		}`)
	for a := uint64(0); a < 256; a += 17 {
		if got := g.Eval([]uint64{a})[0]; got != 5*a {
			t.Fatalf("5*%d = %d", a, got)
		}
	}
}

func TestLoopCounterUsableAsShift(t *testing.T) {
	// The unrolled loop counter is a compile-time constant, so it can be
	// used where constants are required (shift amounts, array indices).
	g := build(t, `
		unsigned int(16) main(unsigned int(4) a) {
			unsigned int(16) acc = 0;
			for (unsigned int(4) i = 0; i < 3; i = i + 1) {
				acc = acc + (a << i);
			}
			return acc;
		}`)
	for a := uint64(0); a < 16; a++ {
		want := a + a<<1 + a<<2
		if got := g.Eval([]uint64{a})[0]; got != want {
			t.Fatalf("acc(%d) = %d, want %d", a, got, want)
		}
	}
}

func TestFunctionInlining(t *testing.T) {
	g := build(t, `
		unsigned int(9) add8(unsigned int(8) x, unsigned int(8) y) {
			return x + y;
		}
		unsigned int(10) main(unsigned int(8) a, unsigned int(8) b) {
			return add8(a, b) + add8(b, a);
		}`)
	for i := 0; i < 50; i++ {
		a, b := uint64(i*5%256), uint64(i*11%256)
		if got := g.Eval([]uint64{a, b})[0]; got != 2*(a+b) {
			t.Fatalf("got %d", got)
		}
	}
}

func TestStructsAndArrays(t *testing.T) {
	g := build(t, `
		struct Pt {
			unsigned int(8) x;
			unsigned int(8) y;
		}
		unsigned int(18) main(struct Pt p, unsigned int(8) k) {
			unsigned int(8) w[3];
			w[0] = p.x;
			w[1] = p.y;
			w[2] = k;
			unsigned int(18) acc = 0;
			for (unsigned int(2) i = 0; i < 3; i = i + 1) {
				acc = acc + w[i] * w[i];
			}
			return acc;
		}`)
	ref := func(x, y, k uint64) uint64 { return x*x + y*y + k*k }
	for i := 0; i < 40; i++ {
		x, y, k := uint64(i*7%256), uint64(i*13%256), uint64(i*29%256)
		if got := g.Eval([]uint64{x, y, k})[0]; got != ref(x, y, k) {
			t.Fatalf("got %d want %d", got, ref(x, y, k))
		}
	}
}

func TestIntrinsics(t *testing.T) {
	g := build(t, `
		unsigned int(8) main(unsigned int(16) a, int(8) s) {
			unsigned int(8) r;
			r = sqrt(a);
			return min(r, abs(s));
		}`)
	for i := 0; i < 100; i++ {
		a := uint64(i * 655 % 65536)
		s := uint64(i * 37 % 256)
		root := uint64(0)
		for root*root <= a {
			root++
		}
		root--
		sv := bits.SignExtend(s, 8)
		av := uint64(sv)
		if sv < 0 {
			av = uint64(-sv)
		}
		av &= 0xFF
		want := root
		if av < want {
			want = av
		}
		if got := g.Eval([]uint64{a, s})[0]; got != want&0xFF {
			t.Fatalf("min(sqrt(%d),abs(%d)) = %d, want %d", a, sv, got, want)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"undeclared", `unsigned int(4) main(){ return x; }`, "not declared"},
		{"no-return", `unsigned int(4) main(unsigned int(4) a){ a = a; }`, "does not return"},
		{"dyn-loop", `unsigned int(4) main(unsigned int(4) a){
			unsigned int(4) s = 0;
			for (unsigned int(4) i = 0; i < a; i = i + 1) { s = s + 1; }
			return s; }`, "compile-time constant"},
		{"dyn-index", `unsigned int(4) main(unsigned int(2) a){
			unsigned int(4) w[4];
			w[0] = 1;
			return w[a]; }`, "compile-time constant"},
		{"ret-in-branch", `unsigned int(4) main(unsigned int(4) a){
			if (a == 1) { return 1; }
			return 0; }`, "data-dependent conditional"},
		{"bool-cond", `unsigned int(4) main(unsigned int(4) a){
			if (a) { a = 1; }
			return a; }`, "must be bool"},
		{"redeclare", `unsigned int(4) main(unsigned int(4) a){
			unsigned int(4) b;
			unsigned int(4) b;
			return b; }`, "redeclared"},
		{"oob-index", `unsigned int(4) main(unsigned int(4) a){
			unsigned int(4) w[2];
			w[5] = a;
			return a; }`, "out of bounds"},
		{"bad-call", `unsigned int(4) main(unsigned int(4) a){ return foo(a); }`, "not defined"},
		{"recursion", `unsigned int(4) f(unsigned int(4) a){ return f(a); }
			unsigned int(4) main(unsigned int(4) a){ return f(a); }`, "recursion"},
		{"unknown-struct", `unsigned int(4) main(struct Foo a){ return 0; }`, "not defined"},
	}
	for _, c := range cases {
		_, err := BuildSource(c.src)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantErr)
		}
	}
}

// TestSignedDivMod checks the signed division/modulo desugaring against
// Go's semantics (both truncate toward zero; the remainder takes the
// dividend's sign).
func TestSignedDivMod(t *testing.T) {
	div := build(t, `int(9) main(int(8) a, int(8) b){ return a / b; }`)
	mod := build(t, `int(9) main(int(8) a, int(8) b){ return a % b; }`)
	for i := 0; i < 256; i += 3 {
		for j := 0; j < 256; j += 5 {
			sa, sb := bits.SignExtend(uint64(i), 8), bits.SignExtend(uint64(j), 8)
			if sb == 0 {
				continue // division-by-zero keeps the unsigned convention
			}
			wantQ := uint64(sa/sb) & 0x1FF
			wantR := uint64(sa%sb) & 0x1FF
			if got := div.Eval([]uint64{uint64(i), uint64(j)})[0]; got != wantQ {
				t.Fatalf("%d / %d = %d (signed 9-bit), want %d", sa, sb, got, wantQ)
			}
			if got := mod.Eval([]uint64{uint64(i), uint64(j)})[0]; got != wantR {
				t.Fatalf("%d %% %d = %d, want %d", sa, sb, got, wantR)
			}
		}
	}
}

func TestStaticIfFoldsAway(t *testing.T) {
	g := build(t, `
		unsigned int(8) main(unsigned int(8) a) {
			unsigned int(8) b = 0;
			if (3 < 5) { b = a; } else { b = a + 1; }
			return b;
		}`)
	for _, n := range g.Nodes {
		if n.Op == OpMux {
			t.Fatal("statically-true conditional should not emit a mux")
		}
	}
}

func TestOperandEmbeddingConstFold(t *testing.T) {
	// Fig. 12b: immediate operands fold into the graph: b = 2; c = a + b
	// must not contain the constant as a runtime addition chain.
	g := build(t, `
		unsigned int(3) main(unsigned int(2) a) {
			unsigned int(2) b;
			b = 2;
			unsigned int(3) c;
			c = a + b;
			return c;
		}`)
	for a := uint64(0); a < 4; a++ {
		if got := g.Eval([]uint64{a})[0]; got != (a+2)&7 {
			t.Fatalf("a+2 = %d", got)
		}
	}
}

func TestClusteringSingleChain(t *testing.T) {
	g := build(t, `
		unsigned int(16) main(unsigned int(8) a, unsigned int(8) b) {
			return (a + b) * (a - b);
		}`)
	c := Cluster(g, 100)
	if c.NumClusters != 1 {
		t.Errorf("chain should fit one cluster, got %d", c.NumClusters)
	}
	if c.CutEdges != 0 {
		t.Errorf("single cluster must have no cut edges, got %d", c.CutEdges)
	}
}

func TestClusteringRespectsLimitAndCountsCuts(t *testing.T) {
	g := build(t, `
		unsigned int(20) main(unsigned int(8) a, unsigned int(8) b) {
			unsigned int(16) x = a * b;
			unsigned int(16) y = a * a;
			unsigned int(16) z = b * b;
			return x + y + z;
		}`)
	c := Cluster(g, 1)
	if c.NumClusters < 3 {
		t.Errorf("limit 1 should force many clusters, got %d", c.NumClusters)
	}
	if c.CutEdges == 0 {
		t.Error("split graph must have cut edges")
	}
	// A generous limit keeps everything together.
	c2 := Cluster(g, 1000)
	if c2.CutEdges != 0 {
		t.Errorf("unlimited clustering should have 0 cuts, got %d", c2.CutEdges)
	}
	if c2.Cost > c.Cost {
		t.Error("Eq. 1 cost should not increase with a larger cluster budget")
	}
}

func TestExpEvalReference(t *testing.T) {
	g := build(t, `
		unsigned int(32) main(unsigned int(32) a) {
			return exp(a);
		}`)
	// exp(1.0) in Q16.16 ≈ e * 65536 = 178145; shift-add converges within
	// ~0.2%.
	got := g.Eval([]uint64{65536})[0]
	if got < 177800 || got > 178500 {
		t.Errorf("exp(1.0) = %d, want ≈178145", got)
	}
}

func TestGraphString(t *testing.T) {
	g := build(t, `unsigned int(2) main(unsigned int(1) a){ return a + 1; }`)
	if s := g.String(); !strings.Contains(s, "add") {
		t.Errorf("String: %s", s)
	}
}
