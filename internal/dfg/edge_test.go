package dfg

import (
	"strings"
	"testing"

	"hyperap/internal/bits"
)

// TestVariableShiftLeft covers the barrel-shifter path.
func TestVariableShiftLeft(t *testing.T) {
	g := build(t, `unsigned int(8) main(unsigned int(8) a, unsigned int(3) s){ return a << s; }`)
	for a := uint64(0); a < 256; a += 5 {
		for s := uint64(0); s < 8; s++ {
			if got := g.Eval([]uint64{a, s})[0]; got != (a<<s)&0xFF {
				t.Fatalf("%d<<%d = %d", a, s, got)
			}
		}
	}
}

// TestSignedVariableShiftRight covers arithmetic variable shifts.
func TestSignedVariableShiftRight(t *testing.T) {
	g := build(t, `int(8) main(int(8) a, unsigned int(3) s){ return a >> s; }`)
	for a := 0; a < 256; a += 3 {
		for s := uint64(0); s < 8; s++ {
			sa := bits.SignExtend(uint64(a), 8)
			want := uint64(sa>>s) & 0xFF
			if got := g.Eval([]uint64{uint64(a), s})[0]; got != want {
				t.Fatalf("%d>>%d = %d, want %d", sa, s, got, want)
			}
		}
	}
}

// TestBoolOperators covers &&, ||, !, and bool equality.
func TestBoolOperators(t *testing.T) {
	g := build(t, `
		bool main(bool p, bool q, unsigned int(4) a) {
			bool r;
			r = (p && !q) || (q && a > 7);
			return r == true;
		}`)
	for v := 0; v < 64; v++ {
		p, q, a := v&1 == 1, v&2 == 2, uint64(v>>2)
		want := uint64(0)
		if (p && !q) || (q && a > 7) {
			want = 1
		}
		in := []uint64{0, 0, a}
		if p {
			in[0] = 1
		}
		if q {
			in[1] = 1
		}
		if got := g.Eval(in)[0]; got != want {
			t.Fatalf("p=%v q=%v a=%d: got %d", p, q, a, got)
		}
	}
}

// TestNestedStructs covers struct-in-struct flattening.
func TestNestedStructs(t *testing.T) {
	g := build(t, `
		struct Inner {
			unsigned int(4) x;
			unsigned int(4) y;
		}
		struct Outer {
			struct Inner a;
			struct Inner b;
		}
		unsigned int(6) main(struct Outer o) {
			struct Inner t;
			t = o.b;
			return o.a.x + t.y;
		}`)
	// Inputs flatten to a.x, a.y, b.x, b.y.
	if len(g.Inputs) != 4 {
		t.Fatalf("inputs = %d, want 4", len(g.Inputs))
	}
	if got := g.Eval([]uint64{3, 9, 5, 12})[0]; got != 15 {
		t.Fatalf("o.a.x + o.b.y = %d, want 15", got)
	}
}

// TestStructFieldArrayAssign covers writing into a struct's array field.
func TestStructFieldArrayAssign(t *testing.T) {
	g := build(t, `
		struct S {
			unsigned int(4) w[3];
		}
		unsigned int(6) main(struct S s, unsigned int(4) v) {
			s.w[1] = v;
			return s.w[0] + s.w[1] + s.w[2];
		}`)
	if got := g.Eval([]uint64{1, 2, 3, 9})[0]; got != 1+9+3 {
		t.Fatalf("sum = %d", got)
	}
}

// TestWholeArrayCopyRejected: arrays are not assignable as a whole to a
// differently-shaped target.
func TestShapeErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`struct A { bool x; }
		  struct B { bool x; }
		  bool main(struct A a){ struct B b; b = a; return b.x; }`, "cannot assign"},
		{`bool main(unsigned int(4) a){ unsigned int(4) w[2]; w[0] = 1; return a == w; }`, "scalar"},
		{`bool main(unsigned int(4) a){ bool b; b = a; return b; }`, "bool"},
		{`unsigned int(4) main(unsigned int(4) a){ return a.x; }`, "non-struct"},
		{`unsigned int(4) main(unsigned int(4) a){ return a[0]; }`, "non-array"},
		{`struct S { unsigned int(4) x; }
		  unsigned int(4) main(struct S s){ return s.nope; }`, "no field"},
		{`unsigned int(4) main(bool b){ return -b; }`, "negate bool"},
		{`unsigned int(4) main(bool b){ return ~b; }`, "use !"},
		{`bool main(unsigned int(4) a){ return !a; }`, "requires bool"},
		{`bool main(unsigned int(4) a, bool b){ return a && b; }`, "requires bool"},
		{`bool main(unsigned int(4) a, bool b){ return a < b; }`, "not defined for bool"},
		{`unsigned int(4) main(unsigned int(4) a){ return sqrt(a, a); }`, "one argument"},
		{`unsigned int(4) main(int(4) a){ return sqrt(a); }`, "unsigned"},
		{`unsigned int(4) main(unsigned int(4) a){ return min(a); }`, "two arguments"},
		{`unsigned int(4) main(unsigned int(4) a){ return a << 62; }`, "beyond 64"},
		{`bool f(bool p){ return p; }
		  bool main(bool p){ return f(p, p); }`, "takes 1 arguments"},
		{`unsigned int(4) f(unsigned int(4) a){ a = a; }
		  unsigned int(4) main(unsigned int(4) a){ return f(a); }`, "did not return"},
	}
	for i, c := range cases {
		_, err := BuildSource(c.src)
		if err == nil {
			t.Errorf("case %d: expected error containing %q", i, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("case %d: error %q missing %q", i, err, c.want)
		}
	}
}

// TestLoopWithReturnInside: a return inside a statically-iterating loop
// terminates unrolling.
func TestLoopWithReturn(t *testing.T) {
	g := build(t, `
		unsigned int(8) main(unsigned int(8) a) {
			for (unsigned int(4) i = 0; i < 10; i = i + 1) {
				return a + 1;
			}
			return 0;
		}`)
	if got := g.Eval([]uint64{41})[0]; got != 42 {
		t.Fatalf("got %d", got)
	}
}

// TestMaxMinSignedMixed covers min/max over mixed signedness.
func TestMaxMinSignedMixed(t *testing.T) {
	g := build(t, `int(9) main(int(8) a, unsigned int(8) b){ return max(a, b); }`)
	for i := 0; i < 256; i += 7 {
		for j := 0; j < 256; j += 11 {
			sa := bits.SignExtend(uint64(i), 8)
			want := sa
			if int64(j) > sa {
				want = int64(j)
			}
			if got := g.Eval([]uint64{uint64(i), uint64(j)})[0]; got != uint64(want)&0x1FF {
				t.Fatalf("max(%d,%d) = %d, want %d", sa, j, got, uint64(want)&0x1FF)
			}
		}
	}
}

// TestEvalNodePanicsOnUnknown guards the evaluator's exhaustiveness.
func TestEvalNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EvalNode(&Node{Op: OpKind(99), Width: 4}, nil, nil)
}
