package dfg

import (
	"fmt"

	"hyperap/internal/lang"
)

// exec is the symbolic executor: it interprets the AST, producing DFG
// nodes for data-dependent values and folding compile-time-constant ones
// (loop counters, immediates).
type exec struct {
	b      *builder
	scopes []map[string]*val
	depth  int
}

func (e *exec) pushScope() { e.scopes = append(e.scopes, map[string]*val{}) }
func (e *exec) popScope()  { e.scopes = e.scopes[:len(e.scopes)-1] }

func (e *exec) declare(name string, v *val) { e.scopes[len(e.scopes)-1][name] = v }

func (e *exec) lookup(name string) (*val, bool) {
	for i := len(e.scopes) - 1; i >= 0; i-- {
		if v, ok := e.scopes[i][name]; ok {
			return v, true
		}
	}
	return nil, false
}

// snapshot deep-copies the variable environment for branch execution.
func (e *exec) snapshot() []map[string]*val {
	out := make([]map[string]*val, len(e.scopes))
	for i, sc := range e.scopes {
		m := make(map[string]*val, len(sc))
		for k, v := range sc {
			m[k] = v.clone()
		}
		out[i] = m
	}
	return out
}

// runBlock executes a block in a fresh scope. A non-nil return value
// means a return statement executed.
func (e *exec) runBlock(blk *lang.Block) (*val, error) {
	e.pushScope()
	defer e.popScope()
	for _, s := range blk.Stmts {
		ret, err := e.runStmt(s)
		if err != nil || ret != nil {
			return ret, err
		}
	}
	return nil, nil
}

func (e *exec) runStmt(s lang.Stmt) (*val, error) {
	switch st := s.(type) {
	case *lang.Block:
		return e.runBlock(st)
	case *lang.Decl:
		return nil, e.runDecl(st)
	case *lang.Assign:
		return nil, e.runAssign(st)
	case *lang.Return:
		v, err := e.evalExpr(st.Value)
		if err != nil {
			return nil, err
		}
		return v, nil
	case *lang.If:
		return e.runIf(st)
	case *lang.For:
		return e.runFor(st)
	}
	return nil, fmt.Errorf("dfg: unknown statement %T", s)
}

func (e *exec) runDecl(d *lang.Decl) error {
	if _, dup := e.scopes[len(e.scopes)-1][d.Name]; dup {
		return fmt.Errorf("line %d: %s redeclared in this scope", d.Line, d.Name)
	}
	t := d.Type
	if t.Kind == lang.TypeStruct {
		if _, err := e.b.structDef(t.Name, d.Line); err != nil {
			return err
		}
	}
	compTypes := e.b.componentScalarTypes(t)
	n := 1
	if d.ArrayLen > 0 {
		n = d.ArrayLen
	}
	v := &val{typ: t, arrayLen: d.ArrayLen}
	for i := 0; i < n; i++ {
		for _, ct := range compTypes {
			v.comps = append(v.comps, e.b.constNode(0, ct.Bits, ct.Signed()))
			v.compTypes = append(v.compTypes, ct)
		}
	}
	if d.Init != nil {
		iv, err := e.evalExpr(d.Init)
		if err != nil {
			return err
		}
		cv, err := e.b.coerce(iv, t, d.Line)
		if err != nil {
			return err
		}
		v.comps = append([]int(nil), cv.comps...)
	}
	e.declare(d.Name, v)
	return nil
}

// lvalueSlot resolves an l-value to the variable holding it plus the
// component range [off, off+n) being assigned and the element type.
func (e *exec) lvalueSlot(target lang.Expr) (root *val, off, n int, elemType lang.Type, err error) {
	switch t := target.(type) {
	case *lang.Ident:
		v, ok := e.lookup(t.Name)
		if !ok {
			return nil, 0, 0, lang.Type{}, fmt.Errorf("line %d: %s not declared", t.Line, t.Name)
		}
		return v, 0, len(v.comps), v.typ, nil
	case *lang.Index:
		root, off, n, et, err := e.lvalueSlot(t.X)
		if err != nil {
			return nil, 0, 0, lang.Type{}, err
		}
		// Indexing requires the slot to be an array of the element type.
		var arrayLen int
		switch x := t.X.(type) {
		case *lang.Ident:
			v, _ := e.lookup(x.Name)
			arrayLen = v.arrayLen
		case *lang.Member:
			// Array length comes from the struct field; lvalueSlot on the
			// member already reduced n to the whole field.
			arrayLen = n / len(e.b.componentScalarTypes(et))
		default:
			return nil, 0, 0, lang.Type{}, fmt.Errorf("line %d: unsupported l-value", lang.ExprLine(t))
		}
		if arrayLen == 0 {
			return nil, 0, 0, lang.Type{}, fmt.Errorf("line %d: indexing a non-array", lang.ExprLine(t))
		}
		idx, err2 := e.constIndex(t.IndexExpr, arrayLen)
		if err2 != nil {
			return nil, 0, 0, lang.Type{}, err2
		}
		per := len(e.b.componentScalarTypes(et))
		return root, off + idx*per, per, et, nil
	case *lang.Member:
		root, off, _, et, err := e.lvalueSlot(t.X)
		if err != nil {
			return nil, 0, 0, lang.Type{}, err
		}
		if et.Kind != lang.TypeStruct {
			return nil, 0, 0, lang.Type{}, fmt.Errorf("line %d: member access on non-struct %v", t.Line, et)
		}
		sd, err := e.b.structDef(et.Name, t.Line)
		if err != nil {
			return nil, 0, 0, lang.Type{}, err
		}
		fOff := off
		for _, f := range sd.Fields {
			per := len(e.b.componentScalarTypes(f.Type))
			cnt := per
			if f.ArrayLen > 0 {
				cnt = per * f.ArrayLen
			}
			if f.Name == t.Field {
				return root, fOff, cnt, f.Type, nil
			}
			fOff += cnt
		}
		return nil, 0, 0, lang.Type{}, fmt.Errorf("line %d: struct %s has no field %s", t.Line, et.Name, t.Field)
	}
	return nil, 0, 0, lang.Type{}, fmt.Errorf("line %d: invalid assignment target", lang.ExprLine(target))
}

// constIndex evaluates an array index, which must fold to a compile-time
// constant (§V-A: no pointer chasing / dynamic layout).
func (e *exec) constIndex(idx lang.Expr, arrayLen int) (int, error) {
	v, err := e.evalExpr(idx)
	if err != nil {
		return 0, err
	}
	if !v.scalar() {
		return 0, fmt.Errorf("line %d: array index must be scalar", lang.ExprLine(idx))
	}
	c, ok := e.b.isConst(v.comps[0])
	if !ok {
		return 0, fmt.Errorf("line %d: array index must be a compile-time constant", lang.ExprLine(idx))
	}
	if int(c) >= arrayLen {
		return 0, fmt.Errorf("line %d: index %d out of bounds (array length %d)", lang.ExprLine(idx), c, arrayLen)
	}
	return int(c), nil
}

func (e *exec) runAssign(a *lang.Assign) error {
	root, off, n, et, err := e.lvalueSlot(a.Target)
	if err != nil {
		return err
	}
	rhs, err := e.evalExpr(a.Value)
	if err != nil {
		return err
	}
	if et.Kind == lang.TypeStruct || (n > 1 && et.Kind != lang.TypeStruct) {
		// Whole-aggregate assignment: types and shapes must match.
		if et.Kind == lang.TypeStruct && (rhs.typ.Kind != lang.TypeStruct || rhs.typ.Name != et.Name) {
			return fmt.Errorf("line %d: cannot assign %v to %v", a.Line, rhs.typ, et)
		}
		if len(rhs.comps) != n {
			return fmt.Errorf("line %d: aggregate shape mismatch (%d vs %d components)", a.Line, len(rhs.comps), n)
		}
		copy(root.comps[off:off+n], rhs.comps)
		return nil
	}
	cv, err := e.b.coerce(rhs, et, a.Line)
	if err != nil {
		return err
	}
	root.comps[off] = cv.comps[0]
	return nil
}

func (e *exec) runIf(st *lang.If) (*val, error) {
	cond, err := e.evalExpr(st.Cond)
	if err != nil {
		return nil, err
	}
	if !cond.scalar() || cond.typ.Kind != lang.TypeBool {
		return nil, fmt.Errorf("line %d: if condition must be bool, got %v", st.Line, cond.typ)
	}
	if c, ok := e.b.isConst(cond.comps[0]); ok {
		// Statically resolved branch.
		if c != 0 {
			return e.runStmt(st.Then)
		}
		if st.Else != nil {
			return e.runStmt(st.Else)
		}
		return nil, nil
	}
	// Data-dependent: execute both branches and merge with multiplexers
	// (Fig. 13b). Returns inside such branches cannot be merged.
	base := e.snapshot()
	retT, err := e.runStmt(st.Then)
	if err != nil {
		return nil, err
	}
	thenScopes := e.scopes
	e.scopes = base
	var retF *val
	if st.Else != nil {
		retF, err = e.runStmt(st.Else)
		if err != nil {
			return nil, err
		}
	}
	if retT != nil || retF != nil {
		return nil, fmt.Errorf("line %d: return inside a data-dependent conditional is not supported; assign to a result variable instead", st.Line)
	}
	// Merge: for every variable whose components differ, insert a mux.
	sel := cond.comps[0]
	for i := range e.scopes {
		for name, fv := range e.scopes[i] {
			tv, ok := thenScopes[i][name]
			if !ok {
				continue
			}
			for c := range fv.comps {
				if tv.comps[c] != fv.comps[c] {
					ct := fv.compTypes[c]
					fv.comps[c] = e.b.newNode(&Node{
						Op: OpMux, Width: ct.Bits, Signed: ct.Signed(),
						Args: []int{sel, tv.comps[c], fv.comps[c]},
					})
				}
			}
		}
	}
	return nil, nil
}

func (e *exec) runFor(st *lang.For) (*val, error) {
	e.pushScope()
	defer e.popScope()
	if _, err := e.runStmt(st.Init); err != nil {
		return nil, err
	}
	for iter := 0; ; iter++ {
		if iter >= maxUnrollIterations {
			return nil, fmt.Errorf("line %d: loop exceeds %d unrolled iterations", st.Line, maxUnrollIterations)
		}
		cond, err := e.evalExpr(st.Cond)
		if err != nil {
			return nil, err
		}
		if !cond.scalar() || cond.typ.Kind != lang.TypeBool {
			return nil, fmt.Errorf("line %d: loop condition must be bool", st.Line)
		}
		c, ok := e.b.isConst(cond.comps[0])
		if !ok {
			return nil, fmt.Errorf("line %d: loop bound must be a compile-time constant so the loop can be unrolled (§V-A)", st.Line)
		}
		if c == 0 {
			return nil, nil
		}
		ret, err := e.runStmt(st.Body)
		if err != nil || ret != nil {
			return ret, err
		}
		if _, err := e.runStmt(st.Post); err != nil {
			return nil, err
		}
	}
}
