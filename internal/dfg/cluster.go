package dfg

// Clustering assigns DFG nodes to clusters; the computation of one cluster
// runs in one SIMD slot, and inter-cluster edges become data copies
// between slots (paper Fig. 10). The goal of the clustering step is to
// minimise those copies, which are expensive on RRAM-based AP because of
// the long write latency (§V-B.2).
type Clustering struct {
	Assign      []int // node ID → cluster index (-1 for const nodes)
	NumClusters int
	// CutEdges counts distinct (producer cluster, consumer cluster, node)
	// crossings: the number of values that must be copied between slots.
	CutEdges int
	// Cost is the Eq. 1 cost of the final (output-side) clusters:
	// Cost0[i] = Σ Cost0[input clusters] + N_input_edges.
	Cost float64
}

// Cluster partitions the graph with the adapted heuristic of [42]: nodes
// are visited in topological order and merged into the predecessor
// cluster that minimises the Eq. 1 cost, subject to a cluster size limit
// (the SIMD slot's column capacity stands in for the "number of inputs"
// limit of the FPGA clustering algorithm).
func Cluster(g *Graph, maxOpsPerCluster int) *Clustering {
	if maxOpsPerCluster < 1 {
		maxOpsPerCluster = 1
	}
	c := &Clustering{Assign: make([]int, len(g.Nodes))}
	for i := range c.Assign {
		c.Assign[i] = -1
	}
	size := []int{}     // ops per cluster
	cost := []float64{} // running Eq. 1 cost per cluster
	inputs := []map[int]bool{}

	newCluster := func() int {
		size = append(size, 0)
		cost = append(cost, 0)
		inputs = append(inputs, map[int]bool{})
		return len(size) - 1
	}

	// copied reports whether an argument node's value would have to be
	// copied between SIMD slots: constants are embedded in lookup tables
	// and primary inputs are laid out into whichever slot needs them at
	// load time, so only operation results count.
	copied := func(id int) bool {
		op := g.Nodes[id].Op
		return op != OpConst && op != OpInput
	}

	for _, n := range g.Nodes {
		if n.Op == OpConst || n.Op == OpInput {
			continue
		}
		// Candidate clusters: the argument producers' clusters first (a
		// merge there removes an edge), then any cluster with room.
		cands := map[int]bool{}
		for _, a := range n.Args {
			if ca := c.Assign[a]; ca >= 0 && size[ca] < maxOpsPerCluster {
				cands[ca] = true
			}
		}
		if len(cands) == 0 {
			for ci := range size {
				if size[ci] < maxOpsPerCluster {
					cands[ci] = true
				}
			}
		}
		best, bestCost := -1, 0.0
		for ca := range cands {
			// Eq. 1: added cost is the number of new input edges this
			// node brings into cluster ca.
			newEdges := 0
			for _, b := range n.Args {
				if copied(b) && c.Assign[b] != ca && !inputs[ca][b] {
					newEdges++
				}
			}
			cand := cost[ca] + float64(newEdges)
			if best < 0 || cand < bestCost || (cand == bestCost && ca < best) {
				best, bestCost = ca, cand
			}
		}
		if best < 0 {
			best = newCluster()
			newEdges := 0
			for _, a := range n.Args {
				if copied(a) {
					newEdges++
				}
			}
			bestCost = float64(newEdges)
		}
		c.Assign[n.ID] = best
		size[best]++
		cost[best] = bestCost
		for _, a := range n.Args {
			if copied(a) && c.Assign[a] != best {
				inputs[best][a] = true
			}
		}
	}
	c.NumClusters = len(size)
	// Count cut edges: values produced in one cluster and consumed in
	// another (each distinct (value, consumer cluster) pair is one copy).
	type cut struct{ node, cluster int }
	cuts := map[cut]bool{}
	for _, n := range g.Nodes {
		if c.Assign[n.ID] < 0 {
			continue
		}
		for _, a := range n.Args {
			if g.Nodes[a].Op == OpConst || g.Nodes[a].Op == OpInput {
				continue
			}
			ca := c.Assign[a]
			if ca >= 0 && ca != c.Assign[n.ID] {
				cuts[cut{a, c.Assign[n.ID]}] = true
			}
		}
	}
	c.CutEdges = len(cuts)
	for _, o := range g.Outputs {
		if cl := c.Assign[o]; cl >= 0 {
			c.Cost += cost[cl]
		}
	}
	return c
}
