package encoding

import (
	"fmt"
	"sort"
)

// Var describes one search variable: an encoded bit pair (arity 4) or a
// single non-encoded bit (arity 2).
type Var struct {
	Arity int
}

// Pair and Single are the two variable kinds.
var (
	Pair   = Var{Arity: 4}
	Single = Var{Arity: 2}
)

// Point is one assignment of values to all variables (a lookup-table input
// pattern after pairing).
type Point []PairValue

// Box is a multi-pattern search: the Cartesian product of one subset per
// variable. A single Hyper-AP search operation matches exactly the points
// of one box (Single-Search-Multi-Pattern).
type Box []Subset

// Contains reports whether the point lies inside the box.
func (b Box) Contains(p Point) bool {
	for i, s := range b {
		if !s.Has(p[i]) {
			return false
		}
	}
	return true
}

// PointCount returns the number of input patterns the box matches.
func (b Box) PointCount() int {
	n := 1
	for _, s := range b {
		n *= s.Count()
	}
	return n
}

// String renders the box as per-variable subsets, e.g. "{01,10}x{1}".
func (b Box) String() string {
	out := ""
	for i, s := range b {
		if i > 0 {
			out += "x"
		}
		out += fmt.Sprintf("%04b", uint8(s))
	}
	return out
}

// Space is the mixed-radix input space of a lookup table after pairing.
type Space struct {
	Vars    []Var
	strides []int
	size    int
}

// NewSpace builds the space for the given variables. The total size
// (product of arities) must stay small; the compiler's 12-input limit
// bounds it at 4096.
func NewSpace(vars []Var) *Space {
	s := &Space{Vars: vars, strides: make([]int, len(vars)), size: 1}
	for i, v := range vars {
		if v.Arity != 2 && v.Arity != 4 {
			panic(fmt.Sprintf("encoding: unsupported arity %d", v.Arity))
		}
		s.strides[i] = s.size
		s.size *= v.Arity
	}
	return s
}

// Size returns the number of points in the space.
func (s *Space) Size() int { return s.size }

// Index converts a point to its dense table index.
func (s *Space) Index(p Point) int {
	if len(p) != len(s.Vars) {
		panic("encoding: point dimension mismatch")
	}
	idx := 0
	for i, v := range p {
		if int(v) >= s.Vars[i].Arity {
			panic(fmt.Sprintf("encoding: value %d exceeds arity %d", v, s.Vars[i].Arity))
		}
		idx += int(v) * s.strides[i]
	}
	return idx
}

// Coords fills p with the coordinates of table index idx.
func (s *Space) Coords(idx int, p Point) {
	for i, v := range s.Vars {
		p[i] = PairValue(idx / s.strides[i] % v.Arity)
	}
}

// Table values: a point is in the off-set, on-set or don't-care set.
const (
	Off uint8 = iota
	On
	DC
)

// MintermCount returns the number of on-set points — the number of search
// operations a *traditional* AP needs for this table
// (Single-Search-Single-Pattern), and hence also its write count
// (Single-Search-Single-Write).
func MintermCount(val []uint8) int {
	n := 0
	for _, v := range val {
		if v == On {
			n++
		}
	}
	return n
}

// boxPointsValid reports whether every point of the box avoids the
// off-set, restricted to var i taking only the values in probe (used for
// incremental expansion checks; pass the full subset to check the whole
// box).
func (s *Space) boxPointsValid(b Box, val []uint8, i int, probe Subset) bool {
	var rec func(d, idx int) bool
	rec = func(d, idx int) bool {
		if d == len(b) {
			return val[idx] != Off
		}
		set := b[d]
		if d == i {
			set = probe
		}
		for v := PairValue(0); int(v) < s.Vars[d].Arity; v++ {
			if !set.Has(v) {
				continue
			}
			if !rec(d+1, idx+int(v)*s.strides[d]) {
				return false
			}
		}
		return true
	}
	return rec(0, 0)
}

// grow expands a box seeded at point p until no single value can be added
// without touching the off-set. Among valid additions it prefers the one
// covering the most currently-uncovered on-set points, which steers the
// greedy cover toward large useful boxes.
func (s *Space) grow(seed Point, val []uint8, covered []bool) Box {
	b := make(Box, len(seed))
	for i, v := range seed {
		b[i] = 1 << v
	}
	for {
		bestVar, bestVal, bestGain := -1, PairValue(0), -1
		for i := range b {
			for v := PairValue(0); int(v) < s.Vars[i].Arity; v++ {
				if b[i].Has(v) {
					continue
				}
				if !s.boxPointsValid(b, val, i, 1<<v) {
					continue
				}
				gain := s.uncoveredGain(b, val, covered, i, v)
				if gain > bestGain {
					bestVar, bestVal, bestGain = i, v, gain
				}
			}
		}
		if bestVar < 0 {
			return b
		}
		b[bestVar] |= 1 << bestVal
	}
}

// uncoveredGain counts the uncovered on-set points the box would newly
// reach if value v were added to var i.
func (s *Space) uncoveredGain(b Box, val []uint8, covered []bool, i int, v PairValue) int {
	gain := 0
	var rec func(d, idx int)
	rec = func(d, idx int) {
		if d == len(b) {
			if val[idx] == On && !covered[idx] {
				gain++
			}
			return
		}
		set := b[d]
		if d == i {
			set = 1 << v
		}
		for w := PairValue(0); int(w) < s.Vars[d].Arity; w++ {
			if set.Has(w) {
				rec(d+1, idx+int(w)*s.strides[d])
			}
		}
	}
	rec(0, 0)
	return gain
}

// markCovered flags every on-set point inside the box as covered and
// returns how many were newly covered.
func (s *Space) markCovered(b Box, val []uint8, covered []bool) int {
	n := 0
	var rec func(d, idx int)
	rec = func(d, idx int) {
		if d == len(b) {
			if val[idx] == On && !covered[idx] {
				covered[idx] = true
				n++
			}
			return
		}
		for v := PairValue(0); int(v) < s.Vars[d].Arity; v++ {
			if b[d].Has(v) {
				rec(d+1, idx+int(v)*s.strides[d])
			}
		}
	}
	rec(0, 0)
	return n
}

// Minimize computes a small set of boxes covering every on-set point while
// avoiding every off-set point (don't-cares may be absorbed freely). One
// box = one Hyper-AP search operation, so len(result) is the table's
// search count. The greedy expand-and-cover heuristic mirrors the role of
// the Espresso expand step; a final reverse pass removes redundant boxes.
func Minimize(sp *Space, val []uint8) []Box {
	if len(val) != sp.size {
		panic("encoding: table size mismatch")
	}
	covered := make([]bool, sp.size)
	var boxes []Box
	p := make(Point, len(sp.Vars))
	for idx := 0; idx < sp.size; idx++ {
		if val[idx] != On || covered[idx] {
			continue
		}
		sp.Coords(idx, p)
		b := sp.grow(p, val, covered)
		sp.markCovered(b, val, covered)
		boxes = append(boxes, b)
	}
	return pruneRedundant(sp, val, boxes)
}

// pruneRedundant removes boxes whose on-set points are all covered by the
// remaining boxes, scanning from the smallest box up.
func pruneRedundant(sp *Space, val []uint8, boxes []Box) []Box {
	if len(boxes) <= 1 {
		return boxes
	}
	order := make([]int, len(boxes))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return boxes[order[a]].PointCount() < boxes[order[b]].PointCount()
	})
	keep := make([]bool, len(boxes))
	for i := range keep {
		keep[i] = true
	}
	count := make([]int, sp.size) // how many kept boxes cover each on point
	p := make(Point, len(sp.Vars))
	for idx := 0; idx < sp.size; idx++ {
		if val[idx] != On {
			continue
		}
		sp.Coords(idx, p)
		for _, b := range boxes {
			if b.Contains(p) {
				count[idx]++
			}
		}
	}
	for _, bi := range order {
		redundant := true
		for idx := 0; idx < sp.size && redundant; idx++ {
			if val[idx] != On {
				continue
			}
			sp.Coords(idx, p)
			if boxes[bi].Contains(p) && count[idx] == 1 {
				redundant = false
			}
		}
		if !redundant {
			continue
		}
		keep[bi] = false
		for idx := 0; idx < sp.size; idx++ {
			if val[idx] != On {
				continue
			}
			sp.Coords(idx, p)
			if boxes[bi].Contains(p) {
				count[idx]--
			}
		}
	}
	var out []Box
	for i, b := range boxes {
		if keep[i] {
			out = append(out, b)
		}
	}
	return out
}

// MinimizeExact searches for a provably minimal cover with at most
// maxBoxes boxes by iterative deepening over the maximal boxes of each
// uncovered point. It is exponential and intended for small tables
// (tests, tiny LUTs); ok is false if no cover within maxBoxes exists.
func MinimizeExact(sp *Space, val []uint8, maxBoxes int) (cover []Box, ok bool) {
	var onIdx []int
	for idx, v := range val {
		if v == On {
			onIdx = append(onIdx, idx)
		}
	}
	if len(onIdx) == 0 {
		return nil, true
	}
	maximal := make(map[int][]Box)
	for k := 1; k <= maxBoxes; k++ {
		if c, found := sp.exactRec(val, onIdx, maximal, nil, k); found {
			return c, true
		}
	}
	return nil, false
}

// maximalBoxes enumerates all maximal valid boxes containing the point at
// table index idx, memoised in cache.
func (sp *Space) maximalBoxes(val []uint8, idx int, cache map[int][]Box) []Box {
	if bs, ok := cache[idx]; ok {
		return bs
	}
	p := make(Point, len(sp.Vars))
	sp.Coords(idx, p)
	seed := make(Box, len(p))
	for i, v := range p {
		seed[i] = 1 << v
	}
	seen := map[string]bool{}
	var out []Box
	var dfs func(b Box)
	dfs = func(b Box) {
		grew := false
		for i := range b {
			for v := PairValue(0); int(v) < sp.Vars[i].Arity; v++ {
				if b[i].Has(v) {
					continue
				}
				if !sp.boxPointsValid(b, val, i, 1<<v) {
					continue
				}
				grew = true
				nb := make(Box, len(b))
				copy(nb, b)
				nb[i] |= 1 << v
				key := nb.String()
				if !seen[key] {
					seen[key] = true
					dfs(nb)
				}
			}
		}
		if !grew {
			key := b.String()
			if !seen["max:"+key] {
				seen["max:"+key] = true
				out = append(out, b)
			}
		}
	}
	dfs(seed)
	cache[idx] = out
	return out
}

func (sp *Space) exactRec(val []uint8, onIdx []int, cache map[int][]Box, chosen []Box, budget int) ([]Box, bool) {
	// Find the first uncovered on-set point.
	p := make(Point, len(sp.Vars))
	first := -1
	for _, idx := range onIdx {
		sp.Coords(idx, p)
		cov := false
		for _, b := range chosen {
			if b.Contains(p) {
				cov = true
				break
			}
		}
		if !cov {
			first = idx
			break
		}
	}
	if first < 0 {
		out := make([]Box, len(chosen))
		copy(out, chosen)
		return out, true
	}
	if budget == 0 {
		return nil, false
	}
	for _, b := range sp.maximalBoxes(val, first, cache) {
		if c, ok := sp.exactRec(val, onIdx, cache, append(chosen, b), budget-1); ok {
			return c, true
		}
	}
	return nil, false
}
