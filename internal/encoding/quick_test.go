package encoding

import (
	"testing"
	"testing/quick"

	"hyperap/internal/bits"
)

// TestQuickPairKeySoundness: for every random key pair and pair value,
// membership in PairKeyMatches agrees with the cell-level match of the
// encoded word — the defining property of the extended search keys.
func TestQuickPairKeySoundness(t *testing.T) {
	f := func(k1r, k0r, vr uint8) bool {
		k1 := bits.Key(k1r % 4)
		k0 := bits.Key(k0r % 4)
		v := PairValue(vr % 4)
		hi, lo := EncodePairValue(v)
		cellMatch := k1.Match(hi) && k0.Match(lo)
		return PairKeyMatches(k1, k0).Has(v) == cellMatch
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickKeyForSubsetRoundTrip: KeyForPairSubset inverts PairKeyMatches
// on every non-empty subset.
func TestQuickKeyForSubsetRoundTrip(t *testing.T) {
	f := func(sr uint8) bool {
		s := Subset(sr & 0xF)
		k1, k0, ok := KeyForPairSubset(s)
		if s == 0 {
			return !ok
		}
		return ok && PairKeyMatches(k1, k0) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickEncodeDecodeRoundTrip: the Fig. 5a code is a bijection on pair
// values.
func TestQuickEncodeDecodeRoundTrip(t *testing.T) {
	f := func(vr uint8) bool {
		v := PairValue(vr % 4)
		hi, lo := EncodePairValue(v)
		back, ok := DecodePair(hi, lo)
		return ok && back == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickBoxContains: box membership is exactly the conjunction of
// per-variable subset membership.
func TestQuickBoxContains(t *testing.T) {
	f := func(s0r, s1r, v0r, v1r uint8) bool {
		b := Box{Subset(s0r&0xF) | 1, Subset(s1r&0x3) | 1} // non-empty
		p := Point{PairValue(v0r % 4), PairValue(v1r % 2)}
		want := b[0].Has(p[0]) && b[1].Has(p[1])
		return b.Contains(p) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickSubsetCount: Count matches a bit-counting loop.
func TestQuickSubsetCount(t *testing.T) {
	f := func(sr uint8) bool {
		s := Subset(sr)
		n := 0
		for v := PairValue(0); v < 8; v++ {
			if s.Has(v) {
				n++
			}
		}
		return s.Count() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
