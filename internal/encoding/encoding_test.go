package encoding

import (
	"math/rand"
	"testing"

	"hyperap/internal/bits"
)

func TestEncodePairFig5a(t *testing.T) {
	// Fig. 5a: 00→X0, 01→X1, 10→0X, 11→1X.
	cases := []struct {
		v      PairValue
		hi, lo bits.State
	}{
		{0, bits.SX, bits.S0},
		{1, bits.SX, bits.S1},
		{2, bits.S0, bits.SX},
		{3, bits.S1, bits.SX},
	}
	for _, c := range cases {
		hi, lo := EncodePairValue(c.v)
		if hi != c.hi || lo != c.lo {
			t.Errorf("encode %02b = %v%v, want %v%v", c.v, hi, lo, c.hi, c.lo)
		}
		v, ok := DecodePair(hi, lo)
		if !ok || v != c.v {
			t.Errorf("decode %v%v = %v,%v", hi, lo, v, ok)
		}
	}
	if _, ok := DecodePair(bits.SX, bits.SX); ok {
		t.Error("erased XX must not decode")
	}
	if _, ok := DecodePair(bits.S0, bits.S0); ok {
		t.Error("00 is outside the code")
	}
}

func TestOriginalSearchKeysFig5b(t *testing.T) {
	// Fig. 5b: the original two-bit-encoding keys match single patterns.
	cases := []struct {
		key  string
		want Subset
	}{
		{"Z0", 1 << 0}, // matches original 00
		{"Z1", 1 << 1},
		{"0Z", 1 << 2},
		{"1Z", 1 << 3},
	}
	for _, c := range cases {
		ks, err := bits.ParseKeys(c.key)
		if err != nil {
			t.Fatal(err)
		}
		if got := PairKeyMatches(ks[0], ks[1]); got != c.want {
			t.Errorf("key %s matches %04b, want %04b", c.key, got, c.want)
		}
	}
}

func TestExtendedSearchKeysFig5c(t *testing.T) {
	// Fig. 5c: Hyper-AP's additional keys match multiple patterns in one
	// search. Subset bit v is original pair value v (v = 2*b1 + b0).
	cases := []struct {
		key  string
		want Subset
	}{
		{"00", 0b0101}, // matches 00, 10
		{"01", 0b0110}, // matches 01, 10
		{"10", 0b1001}, // matches 00, 11
		{"11", 0b1010}, // matches 01, 11
		{"0-", 0b0111}, // matches 00, 01, 10
		{"1-", 0b1011}, // matches 00, 01, 11
		{"-0", 0b1101}, // matches 00, 10, 11
		{"-1", 0b1110}, // matches 01, 10, 11
		{"--", 0b1111},
		{"Z-", 0b0011}, // matches 00, 01
		{"-Z", 0b1100}, // matches 10, 11
	}
	for _, c := range cases {
		ks, err := bits.ParseKeys(c.key)
		if err != nil {
			t.Fatal(err)
		}
		if got := PairKeyMatches(ks[0], ks[1]); got != c.want {
			t.Errorf("key %s matches %04b, want %04b", c.key, got, c.want)
		}
	}
}

// TestAllSubsetsAchievable proves the central enabling property of the
// Hyper-AP execution model: every non-empty subset of the four pair
// values can be matched by a single search key.
func TestAllSubsetsAchievable(t *testing.T) {
	for s := Subset(1); s <= 0xF; s++ {
		k1, k0, ok := KeyForPairSubset(s)
		if !ok {
			t.Errorf("subset %04b has no key", s)
			continue
		}
		if got := PairKeyMatches(k1, k0); got != s {
			t.Errorf("subset %04b: key %s matches %04b", s, PairKeyString(k1, k0), got)
		}
	}
	if _, _, ok := KeyForPairSubset(0); ok {
		t.Error("empty subset must not be achievable")
	}
}

func TestKeyForSingleSubset(t *testing.T) {
	if k, ok := KeyForSingleSubset(0b01); !ok || k != bits.K0 {
		t.Error("subset {0} should map to key 0")
	}
	if k, ok := KeyForSingleSubset(0b10); !ok || k != bits.K1 {
		t.Error("subset {1} should map to key 1")
	}
	if k, ok := KeyForSingleSubset(0b11); !ok || k != bits.KDC {
		t.Error("subset {0,1} should map to masked")
	}
	if _, ok := KeyForSingleSubset(0); ok {
		t.Error("empty subset must fail")
	}
}

func TestDriveCost(t *testing.T) {
	if DriveCost(bits.K0) != 1 || DriveCost(bits.K1) != 1 || DriveCost(bits.KZ) != 2 || DriveCost(bits.KDC) != 0 {
		t.Error("DriveCost wrong")
	}
}

func TestSubsetHelpers(t *testing.T) {
	if FullSubset(4) != 0xF || FullSubset(2) != 0x3 {
		t.Error("FullSubset wrong")
	}
	s := Subset(0b1010)
	if !s.Has(1) || !s.Has(3) || s.Has(0) || s.Count() != 2 {
		t.Error("Subset Has/Count wrong")
	}
}

// buildTable constructs a dense table from on-set points; everything else
// is Off unless listed in dc.
func buildTable(sp *Space, onset, dc []Point) []uint8 {
	val := make([]uint8, sp.Size())
	for _, p := range onset {
		val[sp.Index(p)] = On
	}
	for _, p := range dc {
		val[sp.Index(p)] = DC
	}
	return val
}

// TestFullAdderCover reproduces the 1-bit-addition search counts of
// Fig. 5d: with A,B paired and Cin unencoded, Sum needs 2 searches and
// Cout needs 2 searches (6 total operations with the 2 writes).
func TestFullAdderCover(t *testing.T) {
	sp := NewSpace([]Var{Pair, Single})
	sum := buildTable(sp, []Point{{1, 0}, {2, 0}, {0, 1}, {3, 1}}, nil)
	cout := buildTable(sp, []Point{{3, 0}, {3, 1}, {1, 1}, {2, 1}}, nil)

	if got := len(Minimize(sp, sum)); got != 2 {
		t.Errorf("Sum cover = %d searches, want 2 (Fig. 5d)", got)
	}
	if got := len(Minimize(sp, cout)); got != 2 {
		t.Errorf("Cout cover = %d searches, want 2 (Fig. 5d)", got)
	}
	// Traditional AP: one search per input pattern.
	if MintermCount(sum)+MintermCount(cout) != 8 {
		t.Errorf("traditional pattern count = %d, want 8", MintermCount(sum)+MintermCount(cout))
	}
}

// TestFig12aCover reproduces the merged-operation example of Fig. 12a:
// g = a+b+c+d with (a,b) and (c,d) paired compiles to 2+3+1 = 6 searches.
func TestFig12aCover(t *testing.T) {
	sp := NewSpace([]Var{Pair, Pair})
	ones := func(v PairValue) int { // population count of the pair value
		return int(v&1) + int(v>>1&1)
	}
	var g [3][]Point
	for va := PairValue(0); va < 4; va++ {
		for vc := PairValue(0); vc < 4; vc++ {
			sum := ones(va) + ones(vc)
			for bit := 0; bit < 3; bit++ {
				if sum>>bit&1 == 1 {
					g[bit] = append(g[bit], Point{va, vc})
				}
			}
		}
	}
	want := [3]int{2, 3, 1}
	total := 0
	for bit := 0; bit < 3; bit++ {
		val := buildTable(sp, g[bit], nil)
		cover := Minimize(sp, val)
		if len(cover) != want[bit] {
			t.Errorf("g[%d] cover = %d searches, want %d", bit, len(cover), want[bit])
		}
		total += len(cover)
		// Cross-check with the exact solver.
		exact, ok := MinimizeExact(sp, val, want[bit])
		if !ok {
			t.Errorf("g[%d]: no exact cover within %d boxes", bit, want[bit])
		} else if len(exact) != want[bit] {
			t.Errorf("g[%d] exact = %d", bit, len(exact))
		}
	}
	if total != 6 {
		t.Errorf("total searches = %d, want 6 (Fig. 12a)", total)
	}
}

// coverIsCorrect verifies a cover covers all On points and no Off point.
func coverIsCorrect(sp *Space, val []uint8, boxes []Box) bool {
	p := make(Point, len(sp.Vars))
	for idx := 0; idx < sp.Size(); idx++ {
		sp.Coords(idx, p)
		in := false
		for _, b := range boxes {
			if b.Contains(p) {
				in = true
				break
			}
		}
		switch val[idx] {
		case On:
			if !in {
				return false
			}
		case Off:
			if in {
				return false
			}
		}
	}
	return true
}

// TestMinimizeRandomCorrectness is a property test: on random tables the
// greedy cover is always exact w.r.t. the on/off sets, never worse than
// the minterm count, and don't-cares may be absorbed.
func TestMinimizeRandomCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := [][]Var{
		{Pair},
		{Pair, Single},
		{Pair, Pair},
		{Pair, Pair, Single},
		{Pair, Pair, Pair},
		{Single, Single, Single},
	}
	for trial := 0; trial < 300; trial++ {
		sp := NewSpace(shapes[trial%len(shapes)])
		val := make([]uint8, sp.Size())
		for i := range val {
			val[i] = uint8(rng.Intn(3)) // Off, On or DC
		}
		boxes := Minimize(sp, val)
		if !coverIsCorrect(sp, val, boxes) {
			t.Fatalf("trial %d: incorrect cover", trial)
		}
		if mc := MintermCount(val); len(boxes) > mc {
			t.Fatalf("trial %d: %d boxes exceed %d minterms", trial, len(boxes), mc)
		}
	}
}

// TestMinimizeExactNeverWorse cross-checks greedy against exact on small
// random tables.
func TestMinimizeExactNeverWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sp := NewSpace([]Var{Pair, Single})
	for trial := 0; trial < 50; trial++ {
		val := make([]uint8, sp.Size())
		for i := range val {
			val[i] = uint8(rng.Intn(3))
		}
		greedy := Minimize(sp, val)
		exact, ok := MinimizeExact(sp, val, len(greedy))
		if !ok {
			t.Fatalf("trial %d: exact found no cover within greedy bound %d", trial, len(greedy))
		}
		if !coverIsCorrect(sp, val, exact) {
			t.Fatalf("trial %d: exact cover incorrect", trial)
		}
		if len(exact) > len(greedy) {
			t.Fatalf("trial %d: exact %d > greedy %d", trial, len(exact), len(greedy))
		}
	}
}

func TestMinimizeEmptyOnset(t *testing.T) {
	sp := NewSpace([]Var{Pair, Pair})
	val := make([]uint8, sp.Size())
	if boxes := Minimize(sp, val); len(boxes) != 0 {
		t.Errorf("empty on-set produced %d boxes", len(boxes))
	}
	if c, ok := MinimizeExact(sp, val, 3); !ok || len(c) != 0 {
		t.Error("exact on empty on-set wrong")
	}
}

func TestBoxPointCount(t *testing.T) {
	b := Box{0b0110, 0b01}
	if b.PointCount() != 2 {
		t.Errorf("PointCount = %d, want 2", b.PointCount())
	}
}

func TestSpaceIndexCoordsRoundTrip(t *testing.T) {
	sp := NewSpace([]Var{Pair, Single, Pair})
	p := make(Point, 3)
	for idx := 0; idx < sp.Size(); idx++ {
		sp.Coords(idx, p)
		if sp.Index(p) != idx {
			t.Fatalf("roundtrip failed at %d", idx)
		}
	}
	if sp.Size() != 32 {
		t.Errorf("Size = %d, want 32", sp.Size())
	}
}

func TestSpaceRejectsBadArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSpace([]Var{{Arity: 3}})
}
