// Package encoding implements the two-bit encoding technique of Li et al.
// [39] and the Hyper-AP extension that turns one search operation into a
// multi-pattern match (paper Fig. 5, §III).
//
// A pair of logical bits (b1, b0) is stored in two TCAM bits using the
// encoding of Fig. 5a:
//
//	00 → X0    01 → X1    10 → 0X    11 → 1X
//
// A two-position ternary search key applied to such a pair matches a
// *subset* of the four original pair values. The original technique used
// the four singleton keys (Fig. 5b); Hyper-AP adds the remaining keys
// (Fig. 5c), and this package proves by construction (see
// KeyForPairSubset) that every one of the 15 non-empty subsets of
// {00, 01, 10, 11} is matchable with a single key. A lookup-table search
// therefore becomes a "box": the Cartesian product of per-pair subsets,
// evaluated in one search operation. Minimising the number of searches is
// a box-cover problem, implemented in cover.go.
package encoding

import (
	"fmt"

	"hyperap/internal/bits"
)

// PairValue is the value of an original bit pair: 2*b1 + b0 ∈ {0, 1, 2, 3}.
type PairValue uint8

// Subset is a bitmask over the values of one variable. Bit v is set when
// value v belongs to the subset. Pairs use bits 0..3, single
// (non-encoded) bits use bits 0..1.
type Subset uint8

// FullSubset returns the subset containing all values of a variable with
// the given arity.
func FullSubset(arity int) Subset { return Subset(1<<uint(arity)) - 1 }

// Has reports whether value v is in the subset.
func (s Subset) Has(v PairValue) bool { return s&(1<<v) != 0 }

// Count returns the number of values in the subset.
func (s Subset) Count() int {
	c := 0
	for s != 0 {
		c += int(s & 1)
		s >>= 1
	}
	return c
}

// EncodePair returns the two TCAM states that store the bit pair (b1, b0)
// under the Fig. 5a encoding. hi is the first (left) TCAM bit.
func EncodePair(b1, b0 bool) (hi, lo bits.State) {
	switch {
	case !b1 && !b0: // 00
		return bits.SX, bits.S0
	case !b1 && b0: // 01
		return bits.SX, bits.S1
	case b1 && !b0: // 10
		return bits.S0, bits.SX
	default: // 11
		return bits.S1, bits.SX
	}
}

// EncodePairValue is EncodePair on a PairValue.
func EncodePairValue(v PairValue) (hi, lo bits.State) {
	return EncodePair(v&2 != 0, v&1 != 0)
}

// DecodePair maps two stored TCAM states back to the original pair value.
// ok is false for state combinations outside the Fig. 5a code (e.g. the
// erased XX).
func DecodePair(hi, lo bits.State) (v PairValue, ok bool) {
	switch {
	case hi == bits.SX && lo == bits.S0:
		return 0, true
	case hi == bits.SX && lo == bits.S1:
		return 1, true
	case hi == bits.S0 && lo == bits.SX:
		return 2, true
	case hi == bits.S1 && lo == bits.SX:
		return 3, true
	}
	return 0, false
}

// PairKeyMatches returns the subset of original pair values whose encoded
// form matches the two-position key (k1, k0), derived from the cell-level
// match rule. This is how Fig. 5b/5c's tables are generated.
func PairKeyMatches(k1, k0 bits.Key) Subset {
	var s Subset
	for v := PairValue(0); v < 4; v++ {
		hi, lo := EncodePairValue(v)
		if k1.Match(hi) && k0.Match(lo) {
			s |= 1 << v
		}
	}
	return s
}

// pairKeyTable maps each achievable subset to a canonical key pair. It is
// built once by enumerating all 16 key combinations.
var pairKeyTable = func() map[Subset][2]bits.Key {
	m := make(map[Subset][2]bits.Key)
	// Enumerate in a fixed order so the canonical choice is stable; prefer
	// keys without Z (cheaper drive current) by visiting Z last.
	order := []bits.Key{bits.K0, bits.K1, bits.KDC, bits.KZ}
	for _, k1 := range order {
		for _, k0 := range order {
			s := PairKeyMatches(k1, k0)
			if s == 0 {
				continue
			}
			if _, dup := m[s]; !dup {
				m[s] = [2]bits.Key{k1, k0}
			}
		}
	}
	return m
}()

// KeyForPairSubset returns a two-position key matching exactly the given
// subset of pair values. Every non-empty subset is achievable (verified
// exhaustively in tests), so ok is false only for the empty subset or
// out-of-range masks.
func KeyForPairSubset(s Subset) (k1, k0 bits.Key, ok bool) {
	ks, ok := pairKeyTable[s&0xF]
	if !ok {
		return bits.KDC, bits.KDC, false
	}
	return ks[0], ks[1], true
}

// KeyForSingleSubset returns the key for a non-encoded single bit matching
// the subset over {0, 1}: {0}→key 0, {1}→key 1, {0,1}→masked.
func KeyForSingleSubset(s Subset) (bits.Key, bool) {
	switch s & 0x3 {
	case 0b01:
		return bits.K0, true
	case 0b10:
		return bits.K1, true
	case 0b11:
		return bits.KDC, true
	}
	return bits.KDC, false
}

// DriveCost returns the number of VL-driven cells a key position costs
// during a search (keys 0/1 drive one of the bit's two search lines, Z
// drives both, masked positions drive none). The energy model uses it.
func DriveCost(k bits.Key) int {
	switch k {
	case bits.K0, bits.K1:
		return 1
	case bits.KZ:
		return 2
	}
	return 0
}

// PairKeyString renders a pair key in the paper's notation (e.g. "1Z").
func PairKeyString(k1, k0 bits.Key) string {
	return fmt.Sprintf("%v%v", k1, k0)
}
