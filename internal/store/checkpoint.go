package store

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"path/filepath"

	"hyperap/internal/arch"
	"hyperap/internal/tcam"
)

// The chip-state checkpoint half: a single record holding the lifetime
// state of every virtual PE slot serve has aged (tcam wear counters and
// Stats.CellWrites, stuck-cell planes, burned spares and
// logical→physical remaps, per-PE failed latches), plus the geometry
// and fault configuration it is only valid for. Restore is verified:
// geometry or fault-config drift makes the checkpoint stale — serve
// starts fresh rather than aging a differently-shaped chip with it.

// CheckpointVersion is the schema version of chip-state checkpoints.
const CheckpointVersion = 1

// Checkpoint is the serialized chip lifetime state.
type Checkpoint struct {
	// Geometry + fault model the per-PE states were produced under; a
	// restore into any other configuration is rejected as stale.
	Rows, Bits int
	Monolithic bool
	Faults     tcam.FaultConfig

	// PEs are the virtual PE slots of serve's lifetime ledger, in slot
	// order. Retired holds PEs that failed mid-pass and were swapped
	// out for a spare — kept so restored health accounting still sees
	// them.
	PEs     []arch.PEState
	Retired []arch.PEState

	// Retries is the lifetime count of shards replayed on a spare;
	// Snapshots counts how many checkpoints preceded this one.
	Retries   int64
	Snapshots uint64
}

// Compatible reports whether the checkpoint was produced under the
// given geometry and fault configuration.
func (cp *Checkpoint) Compatible(rows, bits int, monolithic bool, fc tcam.FaultConfig) bool {
	return cp.Rows == rows && cp.Bits == bits && cp.Monolithic == monolithic && cp.Faults == fc
}

func (s *Store) checkpointPath() string {
	return filepath.Join(s.chipDir(), "checkpoint")
}

// SaveCheckpoint atomically replaces the chip-state checkpoint.
func (s *Store) SaveCheckpoint(ctx context.Context, cp *Checkpoint) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(cp); err != nil {
		return fmt.Errorf("store: encoding checkpoint: %w", err)
	}
	return s.writeAtomic(ctx, s.checkpointPath(), seal(kindChip, CheckpointVersion, buf.Bytes()))
}

// LoadCheckpoint reads and verifies the chip-state checkpoint. Returns
// ErrNotFound when none exists and ErrCorrupt (after quarantining) when
// verification or decoding fails — the caller starts with fresh chip
// state, never partially restored state.
func (s *Store) LoadCheckpoint() (*Checkpoint, error) {
	path := s.checkpointPath()
	payload, err := s.readVerified(path, kindChip, CheckpointVersion)
	if err != nil {
		return nil, err
	}
	var cp Checkpoint
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&cp); err != nil {
		return nil, s.quarantine(path, fmt.Errorf("decoding checkpoint: %w", err))
	}
	return &cp, nil
}
