package store

import (
	"context"
	"errors"
	"os"
	"reflect"
	"testing"

	"hyperap/internal/arch"
)

// The crash-torture harness: drive the atomic writer through simulated
// kills at byte offsets across the whole record — truncated temp files
// and, in torn mode, partial files renamed over the destination (the
// non-atomic-filesystem model). The invariant proved for EVERY offset:
// recovery is either a bit-identical restore of the last good record or
// a clean, detected fallback (ErrNotFound / ErrCorrupt + quarantine).
// Garbage is never returned as data.

// tortureOffsets picks kill offsets covering the envelope's interesting
// boundaries plus a deterministic spread across the payload (no
// math/rand: reproducibility is the point of a torture test).
func tortureOffsets(size int) []int {
	offs := map[int]bool{
		0: true, 1: true, 7: true, 8: true,
		headerLen - 1: true, headerLen: true, headerLen + 1: true,
		size - 1: true, size: true,
	}
	// A fixed LCG walk over the payload bytes.
	x := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < 24; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		offs[int(x%uint64(size))] = true
	}
	out := make([]int, 0, len(offs))
	for o := range offs {
		if o >= 0 && o <= size {
			out = append(out, o)
		}
	}
	return out
}

func TestCrashTortureCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	lastGood := testCheckpoint(t)
	if err := s.SaveCheckpoint(ctx, lastGood); err != nil {
		t.Fatal(err)
	}
	// The record size defines the offset space; a failed write of the
	// SAME new checkpoint is attempted at every offset.
	next := testCheckpoint(t)
	next.Retries = 1000
	next.Snapshots = 1000
	recSize := func() int {
		fi, err := os.Stat(s.checkpointPath())
		if err != nil {
			t.Fatal(err)
		}
		return int(fi.Size())
	}
	size := recSize()

	for _, torn := range []bool{false, true} {
		for _, off := range tortureOffsets(size) {
			s.failAfter, s.tornRename = off, torn
			err := s.SaveCheckpoint(ctx, next)
			s.failAfter, s.tornRename = -1, false
			if off < size && !errors.Is(err, errSimulatedCrash) {
				t.Fatalf("off=%d torn=%v: save = %v, want simulated crash", off, torn, err)
			}

			// The machine "reboots": reopen the store (sweeps temps) and
			// recover.
			s2, err := Open(dir)
			if err != nil {
				t.Fatalf("off=%d torn=%v: reopen: %v", off, torn, err)
			}
			if tmp := s2.TempFiles(); len(tmp) != 0 {
				t.Fatalf("off=%d torn=%v: temp files survived reopen: %v", off, torn, tmp)
			}
			got, err := s2.LoadCheckpoint()
			switch {
			case err == nil:
				// Only two legal outcomes: the old record intact, or (torn
				// rename of a COMPLETE temp file) the new record intact.
				if !reflect.DeepEqual(got, lastGood) && !reflect.DeepEqual(got, next) {
					t.Fatalf("off=%d torn=%v: recovered a record that is neither old nor new", off, torn)
				}
			case errors.Is(err, ErrCorrupt):
				// Detected, quarantined; the slot must now read NotFound
				// and the quarantine evidence must exist.
				if !torn {
					t.Fatalf("off=%d: untorn crash corrupted the committed record: %v", off, err)
				}
				if _, err := os.Stat(s2.checkpointPath() + ".corrupt"); err != nil {
					t.Fatalf("off=%d torn=%v: corrupt record not quarantined", off, torn)
				}
				if _, err := s2.LoadCheckpoint(); !errors.Is(err, ErrNotFound) {
					t.Fatalf("off=%d torn=%v: quarantined slot still loads: %v", off, torn, err)
				}
			case errors.Is(err, ErrNotFound):
				// Legal only in torn mode (the torn rename destroyed the
				// old record and the partial new one was quarantined by an
				// earlier read in this same iteration — not reachable here
				// since this is the first read) — treat as a failure for
				// visibility.
				t.Fatalf("off=%d torn=%v: record vanished without quarantine", off, torn)
			default:
				t.Fatalf("off=%d torn=%v: unexpected recovery error %v", off, torn, err)
			}

			// Re-establish the known-good baseline for the next iteration.
			if err := s2.SaveCheckpoint(ctx, lastGood); err != nil {
				t.Fatal(err)
			}
			os.Remove(s2.checkpointPath() + ".corrupt")
			s = s2
		}
	}
}

// TestCrashTortureProgram runs the same offset sweep over the program
// store: a killed write-through must never lose the previously stored
// program or serve a partial one.
func TestCrashTortureProgram(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	ex, handle := testExecutable(t)
	if err := s.SaveProgram(ctx, handle, ex); err != nil {
		t.Fatal(err)
	}
	path, err := s.programPath(handle)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	size := int(fi.Size())

	for _, torn := range []bool{false, true} {
		for _, off := range tortureOffsets(size) {
			s.failAfter, s.tornRename = off, torn
			err := s.SaveProgram(ctx, handle, ex)
			s.failAfter, s.tornRename = -1, false
			if off < size && !errors.Is(err, errSimulatedCrash) {
				t.Fatalf("off=%d torn=%v: save = %v, want simulated crash", off, torn, err)
			}
			s2, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			got, err := s2.LoadProgram(handle, addSrc, ex.Target)
			switch {
			case err == nil:
				if !reflect.DeepEqual(got.Prog, ex.Prog) {
					t.Fatalf("off=%d torn=%v: recovered program differs", off, torn)
				}
			case errors.Is(err, ErrCorrupt):
				if !torn {
					t.Fatalf("off=%d: untorn crash corrupted the committed program: %v", off, err)
				}
				if _, err := s2.LoadProgram(handle, addSrc, ex.Target); !errors.Is(err, ErrNotFound) {
					t.Fatalf("off=%d torn=%v: quarantined program still loads: %v", off, torn, err)
				}
			default:
				t.Fatalf("off=%d torn=%v: unexpected recovery error %v", off, torn, err)
			}
			if err := s2.SaveProgram(ctx, handle, ex); err != nil {
				t.Fatal(err)
			}
			os.Remove(path + ".corrupt")
			s = s2
		}
	}
}

// TestTortureRestoreSemantics closes the loop to the chip layer: a
// checkpoint that survives a torture cycle restores PE states that are
// structurally identical — including the degraded flag the serve layer
// keys /readyz on.
func TestTortureRestoreSemantics(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cp := testCheckpoint(t)
	// Make the first PE structurally degraded (consumed spare).
	cp.PEs[0].Design.Repair.NextSpare = cp.PEs[0].Design.Repair.Logical + 1
	if err := s.SaveCheckpoint(context.Background(), cp); err != nil {
		t.Fatal(err)
	}
	// Crash a rewrite mid-payload, reboot, recover.
	s.failAfter = headerLen + 10
	_ = s.SaveCheckpoint(context.Background(), cp)
	s.failAfter = -1
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.LoadCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if !got.PEs[0].Design.Degraded() {
		t.Error("degraded PE state lost its degradation across crash recovery")
	}
	if got.PEs[0].Health() != arch.Degraded {
		t.Errorf("restored PE health = %v, want Degraded", got.PEs[0].Health())
	}
	if got.Retired[0].Health() != arch.Failed {
		t.Errorf("retired PE health = %v, want Failed", got.Retired[0].Health())
	}
}
