// Package store is the crash-safe persistence layer under hyperap-serve:
// a content-addressed on-disk program store (compile once per
// fingerprint, ever) and a chip-state checkpoint (wear counters, stuck
// cells, burned spares, remaps and PE health survive restarts).
//
// Every record on disk is a checksummed envelope written atomically:
//
//	magic   [8]byte  "HYAPSTO1"
//	kind    [4]byte  "PROG" | "CHIP"
//	version uint32   schema version of the payload, little-endian
//	length  uint64   payload byte count, little-endian
//	sum     [32]byte SHA-256 of the payload
//	payload [length]byte
//
// Writes go to a temp file in the same directory, are fsynced, and
// rename into place — a crash leaves either the old record or the new
// one, never a blend, on a POSIX filesystem. Reads verify the envelope
// end to end; anything that fails (truncation, bit rot, a torn rename
// on a weaker filesystem, a schema from the future) is quarantined by
// renaming it to <name>.corrupt and reported as ErrCorrupt so the
// caller falls back — to recompilation for programs, to fresh chip
// state for checkpoints. The store never lets corrupt bytes reach a
// decoder, and never deletes evidence.
//
// The crash-torture test drives the writer through the failAfter /
// tornRename hooks below, simulating kills at every byte offset.
package store

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

const (
	magic = "HYAPSTO1"

	kindProgram = "PROG"
	kindChip    = "CHIP"

	headerLen = 8 + 4 + 4 + 8 + 32
)

var (
	// ErrNotFound reports that no record exists under the key.
	ErrNotFound = errors.New("store: not found")
	// ErrCorrupt reports that a record existed but failed envelope
	// verification; it has been quarantined (renamed to *.corrupt).
	ErrCorrupt = errors.New("store: corrupt record quarantined")
)

// Store is a state directory holding the program store and the chip
// checkpoint. All methods are safe for concurrent use.
type Store struct {
	dir string

	// Test hooks for the crash-torture harness. failAfter >= 0 makes
	// writeAtomic stop after that many payload-file bytes and return
	// errSimulatedCrash *without cleaning up* — exactly what a kill
	// mid-write leaves behind. tornRename additionally renames the
	// partial temp file into place, modeling a filesystem whose rename
	// is not atomic with respect to the data.
	failAfter  int
	tornRename bool
}

var errSimulatedCrash = errors.New("store: simulated crash")

// Open creates (if needed) and opens a state directory. Orphaned temp
// files from a previous crash are removed; quarantined *.corrupt files
// are left in place as evidence.
func Open(dir string) (*Store, error) {
	s := &Store{dir: dir, failAfter: -1}
	for _, sub := range []string{s.programDir(), s.chipDir()} {
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return nil, fmt.Errorf("store: creating %s: %w", sub, err)
		}
	}
	s.sweepTemp()
	return s, nil
}

// Dir returns the state directory the store was opened on.
func (s *Store) Dir() string { return s.dir }

func (s *Store) programDir() string { return filepath.Join(s.dir, "programs") }
func (s *Store) chipDir() string    { return filepath.Join(s.dir, "chip") }

const tempPrefix = ".tmp-"

// sweepTemp removes temp files abandoned by a crashed writer. Safe by
// construction: a temp file is never the authoritative copy of
// anything (rename is the commit point).
func (s *Store) sweepTemp() {
	for _, dir := range []string{s.programDir(), s.chipDir()} {
		ents, err := os.ReadDir(dir)
		if err != nil {
			continue
		}
		for _, e := range ents {
			if strings.HasPrefix(e.Name(), tempPrefix) {
				os.Remove(filepath.Join(dir, e.Name()))
			}
		}
	}
}

// TempFiles returns the in-flight temp files currently present under
// the state directory (the eviction-cancel test asserts it is empty).
func (s *Store) TempFiles() []string {
	var out []string
	for _, dir := range []string{s.programDir(), s.chipDir()} {
		ents, err := os.ReadDir(dir)
		if err != nil {
			continue
		}
		for _, e := range ents {
			if strings.HasPrefix(e.Name(), tempPrefix) {
				out = append(out, filepath.Join(dir, e.Name()))
			}
		}
	}
	return out
}

// seal wraps a payload in the checksummed envelope.
func seal(kind string, version uint32, payload []byte) []byte {
	out := make([]byte, 0, headerLen+len(payload))
	out = append(out, magic...)
	out = append(out, kind...)
	out = binary.LittleEndian.AppendUint32(out, version)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	sum := sha256.Sum256(payload)
	out = append(out, sum[:]...)
	return append(out, payload...)
}

// unseal verifies an envelope and returns its payload. Any structural
// or checksum failure returns a descriptive error; the caller decides
// whether to quarantine.
func unseal(kind string, wantVersion uint32, data []byte) ([]byte, error) {
	if len(data) < headerLen {
		return nil, fmt.Errorf("store: %d-byte record shorter than %d-byte header", len(data), headerLen)
	}
	if string(data[:8]) != magic {
		return nil, fmt.Errorf("store: bad magic %q", data[:8])
	}
	if string(data[8:12]) != kind {
		return nil, fmt.Errorf("store: record kind %q, want %q", data[8:12], kind)
	}
	version := binary.LittleEndian.Uint32(data[12:16])
	if version != wantVersion {
		return nil, fmt.Errorf("store: record schema v%d, want v%d", version, wantVersion)
	}
	length := binary.LittleEndian.Uint64(data[16:24])
	payload := data[headerLen:]
	if uint64(len(payload)) != length {
		return nil, fmt.Errorf("store: payload is %d bytes, header says %d", len(payload), length)
	}
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], data[24:24+32]) {
		return nil, errors.New("store: payload checksum mismatch")
	}
	return payload, nil
}

// writeAtomic commits data to path via temp-file + fsync + rename. The
// context is checked between chunks so an in-flight write-through can
// be canceled (programCache eviction); cancellation removes the temp
// file. The failAfter/tornRename hooks simulate crashes and do NOT
// clean up — that is the point.
func (s *Store) writeAtomic(ctx context.Context, path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, tempPrefix+filepath.Base(path)+"-*")
	if err != nil {
		return fmt.Errorf("store: creating temp file: %w", err)
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}

	const chunk = 64 << 10
	written := 0
	for written < len(data) {
		if err := ctx.Err(); err != nil {
			return cleanup(fmt.Errorf("store: write canceled: %w", err))
		}
		end := written + chunk
		if end > len(data) {
			end = len(data)
		}
		if s.failAfter >= 0 && s.failAfter < end {
			end = s.failAfter
		}
		if _, err := f.Write(data[written:end]); err != nil {
			return cleanup(fmt.Errorf("store: writing %s: %w", tmp, err))
		}
		written = end
		if s.failAfter >= 0 && written >= s.failAfter {
			// Simulated kill: leave the partial temp file (and, in torn
			// mode, rename it over the destination) exactly as a crash
			// would.
			f.Close()
			if s.tornRename {
				os.Rename(tmp, path)
			}
			return errSimulatedCrash
		}
	}
	if err := f.Sync(); err != nil {
		return cleanup(fmt.Errorf("store: syncing %s: %w", tmp, err))
	}
	if err := f.Close(); err != nil {
		return cleanup(fmt.Errorf("store: closing %s: %w", tmp, err))
	}
	if err := ctx.Err(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: write canceled: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: committing %s: %w", path, err)
	}
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory so the rename itself is durable. Failure
// is not fatal (some filesystems refuse directory fsync); the envelope
// checksum still catches anything that did not survive.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// readVerified loads and verifies one record. A missing file is
// ErrNotFound; a verification failure quarantines the file and returns
// ErrCorrupt (wrapped with the cause).
func (s *Store) readVerified(path, kind string, version uint32) ([]byte, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, fmt.Errorf("store: reading %s: %w", path, err)
	}
	payload, err := unseal(kind, version, data)
	if err != nil {
		return nil, s.quarantine(path, err)
	}
	return payload, nil
}

// quarantine renames a failed record to <path>.corrupt (overwriting any
// earlier quarantined copy) so the slot is free for a rewrite while the
// bad bytes remain inspectable.
func (s *Store) quarantine(path string, cause error) error {
	if err := os.Rename(path, path+".corrupt"); err != nil {
		// Quarantine is best-effort: even if the rename fails the caller
		// still treats the record as corrupt and falls back.
		return fmt.Errorf("%w (quarantine failed: %v): %v", ErrCorrupt, err, cause)
	}
	return fmt.Errorf("%w: %v", ErrCorrupt, cause)
}
