package store

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"hyperap/internal/arch"
	"hyperap/internal/bits"
	"hyperap/internal/compile"
	"hyperap/internal/tcam"
)

const addSrc = `unsigned int(6) main(unsigned int(5) a, unsigned int(5) b){ return a + b; }`

func openStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// compiled memoizes one real compilation for the whole test binary.
var compiled *compile.Executable

func testExecutable(t *testing.T) (*compile.Executable, string) {
	t.Helper()
	tgt := compile.HyperTarget()
	if compiled == nil {
		ex, err := compile.CompileSource(addSrc, tgt)
		if err != nil {
			t.Fatal(err)
		}
		compiled = ex
	}
	return compiled, compile.Fingerprint(addSrc, tgt)
}

// testCheckpoint builds a checkpoint with real aged-PE payload in it.
func testCheckpoint(t *testing.T) *Checkpoint {
	t.Helper()
	fc := tcam.FaultConfig{SpareRows: 2}
	d := tcam.NewSeparatedWithFaults(8, 4, tcam.DefaultParams(), fc, 0)
	for r := 0; r < 8; r++ {
		for b := 0; b < 4; b++ {
			if err := d.Load(r, b, bits.S1); err != nil {
				t.Fatal(err)
			}
		}
	}
	return &Checkpoint{
		Rows: 8, Bits: 4, Faults: fc,
		PEs:     []arch.PEState{{Design: d.ExportState()}},
		Retired: []arch.PEState{{Design: d.ExportState(), Failed: true}},
		Retries: 3, Snapshots: 7,
	}
}

func TestProgramRoundTrip(t *testing.T) {
	s := openStore(t)
	ex, handle := testExecutable(t)
	if _, err := s.LoadProgram(handle, addSrc, ex.Target); !errors.Is(err, ErrNotFound) {
		t.Fatalf("empty store load = %v, want ErrNotFound", err)
	}
	if err := s.SaveProgram(context.Background(), handle, ex); err != nil {
		t.Fatal(err)
	}
	if !s.HasProgram(handle) {
		t.Fatal("saved program not found")
	}
	got, err := s.LoadProgram(handle, addSrc, ex.Target)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Prog, ex.Prog) || !reflect.DeepEqual(got.Inputs, ex.Inputs) {
		t.Error("stored program did not round-trip")
	}
	// Overwrite is fine (same content, atomic replace).
	if err := s.SaveProgram(context.Background(), handle, ex); err != nil {
		t.Fatal(err)
	}
}

func TestProgramHandleValidation(t *testing.T) {
	s := openStore(t)
	ex, _ := testExecutable(t)
	for _, h := range []string{
		"", "sha256:", "md5:abcd", "sha256:xyz",
		"sha256:" + strings.Repeat("A", 64), // uppercase hex is not canonical
		"sha256:../../../etc/passwd0123456789012345678901234567890123456789012",
	} {
		if err := s.SaveProgram(context.Background(), h, ex); err == nil {
			t.Errorf("malformed handle %q accepted", h)
		}
		if s.HasProgram(h) {
			t.Errorf("malformed handle %q reported present", h)
		}
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	s := openStore(t)
	if _, err := s.LoadCheckpoint(); !errors.Is(err, ErrNotFound) {
		t.Fatalf("empty store load = %v, want ErrNotFound", err)
	}
	cp := testCheckpoint(t)
	if err := s.SaveCheckpoint(context.Background(), cp); err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, cp) {
		t.Error("checkpoint did not round-trip")
	}
	if !got.Compatible(8, 4, false, cp.Faults) {
		t.Error("checkpoint incompatible with its own geometry")
	}
	for _, bad := range []struct{ r, b int }{{16, 4}, {8, 8}} {
		if got.Compatible(bad.r, bad.b, false, cp.Faults) {
			t.Errorf("checkpoint compatible with wrong geometry %v", bad)
		}
	}
	if got.Compatible(8, 4, true, cp.Faults) || got.Compatible(8, 4, false, tcam.FaultConfig{SpareRows: 3}) {
		t.Error("checkpoint compatible with wrong design/fault config")
	}
}

// TestCorruptionQuarantine: every corrupted byte range fails
// verification, quarantines the record, and leaves the caller on the
// fallback path (ErrCorrupt then ErrNotFound).
func TestCorruptionQuarantine(t *testing.T) {
	s := openStore(t)
	cp := testCheckpoint(t)
	if err := s.SaveCheckpoint(context.Background(), cp); err != nil {
		t.Fatal(err)
	}
	path := s.checkpointPath()
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func([]byte) []byte{
		"magic":     func(b []byte) []byte { b[0] ^= 0xff; return b },
		"kind":      func(b []byte) []byte { copy(b[8:12], "PROG"); return b },
		"version":   func(b []byte) []byte { b[12] = 99; return b },
		"length":    func(b []byte) []byte { b[16] ^= 1; return b },
		"sum":       func(b []byte) []byte { b[24] ^= 1; return b },
		"payload":   func(b []byte) []byte { b[len(b)-1] ^= 1; return b },
		"truncated": func(b []byte) []byte { return b[:len(b)/3] },
		"header":    func(b []byte) []byte { return b[:headerLen-1] },
	} {
		bad := mutate(append([]byte(nil), good...))
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := s.LoadCheckpoint(); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s corruption: load = %v, want ErrCorrupt", name, err)
		}
		if _, err := os.Stat(path + ".corrupt"); err != nil {
			t.Errorf("%s corruption: no quarantine file", name)
		}
		if _, err := s.LoadCheckpoint(); !errors.Is(err, ErrNotFound) {
			t.Errorf("%s corruption: post-quarantine load = %v, want ErrNotFound", name, err)
		}
	}
	// A truncated gob inside a VALID envelope (envelope resealed around
	// garbage) must also quarantine, via the decoder.
	bad := seal(kindChip, CheckpointVersion, []byte("not a gob"))
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadCheckpoint(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad gob in valid envelope: load = %v, want ErrCorrupt", err)
	}
}

// TestWriteCancelRemovesTemp: a canceled write-through leaves no temp
// file and does not touch the previous record.
func TestWriteCancelRemovesTemp(t *testing.T) {
	s := openStore(t)
	cp := testCheckpoint(t)
	if err := s.SaveCheckpoint(context.Background(), cp); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cp2 := testCheckpoint(t)
	cp2.Retries = 999
	if err := s.SaveCheckpoint(ctx, cp2); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled save = %v, want context.Canceled", err)
	}
	if tmp := s.TempFiles(); len(tmp) != 0 {
		t.Errorf("canceled write left temp files: %v", tmp)
	}
	got, err := s.LoadCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if got.Retries != cp.Retries {
		t.Error("canceled write replaced the previous record")
	}
}

// TestOpenSweepsTemps: orphaned temp files from a crashed writer are
// removed at Open; quarantined evidence is kept.
func TestOpenSweepsTemps(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(s.chipDir(), tempPrefix+"checkpoint-123")
	evidence := filepath.Join(s.chipDir(), "checkpoint.corrupt")
	for _, p := range []string{orphan, evidence} {
		if err := os.WriteFile(p, []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); !errors.Is(err, os.ErrNotExist) {
		t.Error("orphaned temp file survived Open")
	}
	if _, err := os.Stat(evidence); err != nil {
		t.Error("quarantined evidence removed by Open")
	}
}
