package store

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"hyperap/internal/compile"
)

// The program store half: compiled executables keyed by their
// compile.Fingerprint ("sha256:<hex>"). The fingerprint covers the
// source text and the canonical target options, so a stored program is
// valid for exactly one (source, target) pair — which the caller holds
// whenever it has a fingerprint, letting the codec rebuild the DFG from
// source instead of serializing it (compile/persist.go).

// ProgramVersion is the schema version of stored program records; bump
// it when the compile.persistedExecutable payload changes shape. Old
// versions are treated as stale (quarantined, recompiled) — a program
// store is a cache of reproducible work, so forward migration would be
// wasted complexity.
const ProgramVersion = 1

// programPath maps a fingerprint handle to its record path, rejecting
// anything that is not a well-formed "sha256:<hex>" handle so a
// hostile or buggy handle can never escape the programs directory.
func (s *Store) programPath(handle string) (string, error) {
	hex, ok := strings.CutPrefix(handle, "sha256:")
	if !ok || hex == "" || len(hex) != 64 {
		return "", fmt.Errorf("store: malformed program handle %q", handle)
	}
	for _, c := range hex {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return "", fmt.Errorf("store: malformed program handle %q", handle)
		}
	}
	return filepath.Join(s.programDir(), hex+".prog"), nil
}

// LoadProgram fetches and decodes the stored program for a fingerprint
// handle. src and tgt must be the pair the fingerprint was computed
// from. Returns ErrNotFound when no record exists and ErrCorrupt (after
// quarantining) when the record or its payload fails verification —
// both mean "recompile", never "crash" or "serve garbage".
func (s *Store) LoadProgram(handle, src string, tgt compile.Target) (*compile.Executable, error) {
	path, err := s.programPath(handle)
	if err != nil {
		return nil, err
	}
	payload, err := s.readVerified(path, kindProgram, ProgramVersion)
	if err != nil {
		return nil, err
	}
	ex, err := compile.DecodeExecutable(payload, src, tgt)
	if err != nil {
		// The envelope was intact but the payload does not decode to a
		// program for this (source, target): a stale or mis-filed entry.
		return nil, s.quarantine(path, err)
	}
	return ex, nil
}

// SaveProgram writes a compiled program through to disk under its
// fingerprint handle. The context is honored mid-write: a canceled
// write-through (program evicted before the write landed) removes its
// temp file and leaves any previous record in place.
func (s *Store) SaveProgram(ctx context.Context, handle string, ex *compile.Executable) error {
	path, err := s.programPath(handle)
	if err != nil {
		return err
	}
	payload, err := compile.EncodeExecutable(ex)
	if err != nil {
		return err
	}
	return s.writeAtomic(ctx, path, seal(kindProgram, ProgramVersion, payload))
}

// LoadProgramRecord returns the raw sealed record bytes for a handle —
// the unit of cluster store exchange. The envelope is verified before
// serving (corrupt records are quarantined, never shipped to a peer);
// the fetching side verifies again with DecodeProgramRecord, so a
// record is checked at both ends of the wire.
func (s *Store) LoadProgramRecord(handle string) ([]byte, error) {
	path, err := s.programPath(handle)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, fmt.Errorf("store: reading %s: %w", path, err)
	}
	if _, err := unseal(kindProgram, ProgramVersion, data); err != nil {
		return nil, s.quarantine(path, err)
	}
	return data, nil
}

// EncodeProgramRecord seals a compiled program into the same
// self-verifying record bytes SaveProgram writes to disk, so a node can
// serve a peer-fetch for a program that is resident in memory but whose
// asynchronous write-through has not landed yet (or that it holds
// without any state directory at all).
func EncodeProgramRecord(ex *compile.Executable) ([]byte, error) {
	payload, err := compile.EncodeExecutable(ex)
	if err != nil {
		return nil, err
	}
	return seal(kindProgram, ProgramVersion, payload), nil
}

// DecodeProgramRecord verifies a record fetched from a peer and decodes
// it for the (source, target) pair the fingerprint was computed from.
// The layered checks — envelope checksum, schema version, canonical
// target options, DFG shape cross-check — mean a corrupt, stale or
// mis-keyed record can never become a runnable program: any failure
// sends the caller to the compiler instead.
func DecodeProgramRecord(raw []byte, src string, tgt compile.Target) (*compile.Executable, error) {
	payload, err := unseal(kindProgram, ProgramVersion, raw)
	if err != nil {
		return nil, err
	}
	return compile.DecodeExecutable(payload, src, tgt)
}

// HasProgram reports whether an (unverified) record exists for the
// handle — a cheap existence probe for tests and metrics.
func (s *Store) HasProgram(handle string) bool {
	path, err := s.programPath(handle)
	if err != nil {
		return false
	}
	_, statErr := os.Stat(path)
	return statErr == nil
}
