package cluster

import (
	"expvar"
	"sync"

	"hyperap/internal/obs"
)

// Metrics is the coordinator's counter set: cluster-level rollups over
// every forward, plus per-node request/failure/latency breakdowns. Like
// the serve metrics, the vars live in a private expvar.Map so several
// coordinators (tests) never collide; GET /metrics serialises the map.
type Metrics struct {
	root *expvar.Map

	forwards         expvar.Int // run/compile requests forwarded to a worker
	failovers        expvar.Int // forwards retried on the next ring replica
	exhausted        expvar.Int // requests that ran out of replicas (502)
	rejectedNoNodes  expvar.Int // requests with an empty ring (503)
	rejectedDraining expvar.Int // requests rejected while draining (503)
	probeFailures    expvar.Int // health probes that failed
	evictions        expvar.Int // ready/degraded → down transitions
	transitions      expvar.Int // any node state transition
	readyNodes       expvar.Int // gauge: nodes currently on the ring

	requestHist *obs.Histogram // end-to-end coordinator latency

	// Per-node rollups, keyed by worker URL.
	nodeRequests *expvar.Map // forwards that got an HTTP response
	nodeFailures *expvar.Map // forwards that errored or returned a failover status

	mu    sync.Mutex
	nodes map[string]*nodeMetrics
}

// nodeMetrics is one worker's rollup.
type nodeMetrics struct {
	requests  expvar.Int
	failovers expvar.Int
	latency   *obs.Histogram
}

// NewMetrics builds the coordinator metric set.
func NewMetrics() *Metrics {
	m := &Metrics{
		root:         new(expvar.Map).Init(),
		requestHist:  obs.NewHistogram(),
		nodeRequests: new(expvar.Map).Init(),
		nodeFailures: new(expvar.Map).Init(),
		nodes:        map[string]*nodeMetrics{},
	}
	m.root.Set("forwards", &m.forwards)
	m.root.Set("failovers", &m.failovers)
	m.root.Set("retries_exhausted", &m.exhausted)
	m.root.Set("rejected_no_nodes", &m.rejectedNoNodes)
	m.root.Set("rejected_draining", &m.rejectedDraining)
	m.root.Set("probe_failures", &m.probeFailures)
	m.root.Set("node_evictions", &m.evictions)
	m.root.Set("node_transitions", &m.transitions)
	m.root.Set("ready_nodes", &m.readyNodes)
	m.root.Set("request_latency", expvar.Func(m.requestHist.Summary))
	m.root.Set("node_requests", m.nodeRequests)
	m.root.Set("node_failures", m.nodeFailures)
	return m
}

// Root exposes the expvar map for GET /metrics.
func (m *Metrics) Root() *expvar.Map { return m.root }

func (m *Metrics) setReadyNodes(n int) { m.readyNodes.Set(int64(n)) }

// nodeStats returns (creating on first use) one worker's rollup.
func (m *Metrics) nodeStats(url string) *nodeMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	ns, ok := m.nodes[url]
	if !ok {
		ns = &nodeMetrics{latency: obs.NewHistogram()}
		m.nodes[url] = ns
	}
	return ns
}

// recordForward accounts one attempt against one worker: latencyNS < 0
// means no response was obtained (connection error / timeout).
func (m *Metrics) recordForward(url string, latencyNS int64, failedOver bool) {
	ns := m.nodeStats(url)
	if latencyNS >= 0 {
		ns.requests.Add(1)
		ns.latency.Observe(latencyNS)
		m.nodeRequests.Add(url, 1)
	}
	if failedOver {
		ns.failovers.Add(1)
		m.nodeFailures.Add(url, 1)
	}
}
