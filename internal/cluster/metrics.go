package cluster

import (
	"expvar"
	"sync"
	"time"

	"hyperap/internal/obs"
)

// Metrics is the coordinator's counter set: cluster-level rollups over
// every forward, plus per-node request/failure/latency breakdowns. Like
// the serve metrics, the vars live in a private expvar.Map so several
// coordinators (tests) never collide; GET /metrics serialises the map.
type Metrics struct {
	root *expvar.Map

	forwards         expvar.Int // run/compile requests forwarded to a worker
	failovers        expvar.Int // forwards retried on the next ring replica
	exhausted        expvar.Int // requests that ran out of replicas (502)
	rejectedNoNodes  expvar.Int // requests with an empty ring (503)
	rejectedDraining expvar.Int // requests rejected while draining (503)
	probeFailures    expvar.Int // health probes that failed
	evictions        expvar.Int // ready/degraded → down transitions
	transitions      expvar.Int // any node state transition
	readyNodes       expvar.Int // gauge: nodes currently on the ring

	// Resilience-layer counters (DESIGN.md §15).
	breakerShortCircuits expvar.Int // candidates skipped: breaker open
	retryAfterHonored    expvar.Int // same-worker retries after a Retry-After wait
	hedges               expvar.Int // hedge attempts fired
	hedgeWins            expvar.Int // requests answered by the hedge attempt
	checksumFailures     expvar.Int // worker bodies failing checksum (failover)

	requestHist *obs.Histogram // end-to-end coordinator latency
	forwardHist *obs.Histogram // per-attempt forward latency (hedge delay source)

	// Per-node rollups, keyed by worker URL.
	nodeRequests *expvar.Map // forwards that got an HTTP response
	nodeFailures *expvar.Map // forwards that errored or returned a failover status

	mu    sync.Mutex
	nodes map[string]*nodeMetrics

	// Cluster-observability layer (DESIGN.md §14): rolling request/error
	// rates, the hot-program table keyed by routing fingerprint, and the
	// Prometheus-format registry behind GET /metrics/prometheus.
	reqWindow *obs.RateWindow
	errWindow *obs.RateWindow
	hot       *obs.HotPrograms
	prom      *obs.PromRegistry
}

// nodeMetrics is one worker's rollup.
type nodeMetrics struct {
	requests  expvar.Int
	failovers expvar.Int
	latency   *obs.Histogram
}

// NewMetrics builds the coordinator metric set.
func NewMetrics() *Metrics {
	m := &Metrics{
		root:         new(expvar.Map).Init(),
		requestHist:  obs.NewHistogram(),
		forwardHist:  obs.NewHistogram(),
		nodeRequests: new(expvar.Map).Init(),
		nodeFailures: new(expvar.Map).Init(),
		nodes:        map[string]*nodeMetrics{},
	}
	m.root.Set("forwards", &m.forwards)
	m.root.Set("failovers", &m.failovers)
	m.root.Set("retries_exhausted", &m.exhausted)
	m.root.Set("rejected_no_nodes", &m.rejectedNoNodes)
	m.root.Set("rejected_draining", &m.rejectedDraining)
	m.root.Set("probe_failures", &m.probeFailures)
	m.root.Set("node_evictions", &m.evictions)
	m.root.Set("node_transitions", &m.transitions)
	m.root.Set("ready_nodes", &m.readyNodes)
	m.root.Set("breaker_short_circuits", &m.breakerShortCircuits)
	m.root.Set("retry_after_honored", &m.retryAfterHonored)
	m.root.Set("hedges", &m.hedges)
	m.root.Set("hedge_wins", &m.hedgeWins)
	m.root.Set("checksum_failures", &m.checksumFailures)
	m.root.Set("request_latency", expvar.Func(m.requestHist.Summary))
	m.root.Set("forward_latency", expvar.Func(m.forwardHist.Summary))
	m.root.Set("node_requests", m.nodeRequests)
	m.root.Set("node_failures", m.nodeFailures)
	m.reqWindow = obs.NewRateWindow(5*time.Minute, 5*time.Second)
	m.errWindow = obs.NewRateWindow(5*time.Minute, 5*time.Second)
	m.hot = obs.NewHotPrograms(0, 0)
	m.prom = m.buildPromRegistry("hyperap_coord_")
	return m
}

// buildPromRegistry renders the coordinator counters as Prometheus
// families (naming per DESIGN.md §14): the expvar ints walked with
// ready_nodes declared as a gauge, the per-node maps re-registered with
// a "node" label, the latency histogram natively, plus the rolling
// rates and the hot-program (routing-fingerprint) table.
func (m *Metrics) buildPromRegistry(prefix string) *obs.PromRegistry {
	reg := obs.NewPromRegistry()
	gauges := map[string]bool{"ready_nodes": true}
	skip := map[string]bool{"node_requests": true, "node_failures": true}
	reg.RegisterExpvarMap(prefix, m.root, gauges, skip)
	nodeVec := func(src *expvar.Map) func() []obs.PromSample {
		return func() []obs.PromSample {
			var out []obs.PromSample
			src.Do(func(kv expvar.KeyValue) {
				if iv, ok := kv.Value.(*expvar.Int); ok {
					out = append(out, obs.PromSample{
						Labels: []obs.PromLabel{{Key: "node", Value: kv.Key}},
						Value:  float64(iv.Value()),
					})
				}
			})
			return out
		}
	}
	reg.CounterVec(prefix+"node_requests_total", "forwards answered per worker node", nodeVec(m.nodeRequests))
	reg.CounterVec(prefix+"node_failures_total", "forwards failed-over per worker node", nodeVec(m.nodeFailures))
	reg.Histogram(prefix+"request_duration_ns", "end-to-end coordinator latency per request (ns)", m.requestHist)
	reg.Histogram(prefix+"forward_duration_ns", "single-attempt worker forward latency (ns)", m.forwardHist)
	obs.RegisterRatesAndHot(reg, prefix, m.reqWindow, m.errWindow, m.hot, 10)
	return reg
}

// registerBreakers wires the per-worker breaker table into the metric
// views: expvar totals for trips/cycles, a count of currently-open
// breakers, and a per-node Prometheus state gauge (0 closed, 1 open,
// 2 half-open) plus trip/cycle counter families.
func (m *Metrics) registerBreakers(set *breakerSet) {
	sumCounts := func(cycles bool) int64 {
		var total int64
		set.each(func(_ string, b *breaker) {
			trips, cyc := b.Counts()
			if cycles {
				total += cyc
			} else {
				total += trips
			}
		})
		return total
	}
	m.root.Set("breaker_trips", expvar.Func(func() any { return sumCounts(false) }))
	m.root.Set("breaker_cycles", expvar.Func(func() any { return sumCounts(true) }))
	m.root.Set("breaker_open", expvar.Func(func() any {
		var open int64
		set.each(func(_ string, b *breaker) {
			if b.State() != breakerClosed {
				open++
			}
		})
		return open
	}))
	m.prom.GaugeVec("hyperap_coord_breaker_state", "per-worker breaker state (0 closed, 1 open, 2 half-open)", func() []obs.PromSample {
		var out []obs.PromSample
		set.each(func(url string, b *breaker) {
			out = append(out, obs.PromSample{
				Labels: []obs.PromLabel{{Key: "node", Value: url}},
				Value:  float64(b.State()),
			})
		})
		return out
	})
	m.prom.CounterVec("hyperap_coord_breaker_trips_total", "closed-to-open breaker transitions per worker", func() []obs.PromSample {
		var out []obs.PromSample
		set.each(func(url string, b *breaker) {
			trips, _ := b.Counts()
			out = append(out, obs.PromSample{
				Labels: []obs.PromLabel{{Key: "node", Value: url}},
				Value:  float64(trips),
			})
		})
		return out
	})
	m.prom.CounterVec("hyperap_coord_breaker_cycles_total", "completed open-to-half-open-to-closed recoveries per worker", func() []obs.PromSample {
		var out []obs.PromSample
		set.each(func(url string, b *breaker) {
			_, cycles := b.Counts()
			out = append(out, obs.PromSample{
				Labels: []obs.PromLabel{{Key: "node", Value: url}},
				Value:  float64(cycles),
			})
		})
		return out
	})
}

// RequestLatencyQuantile exposes the end-to-end request latency
// histogram's quantiles in nanoseconds (bench and hedge-delay probes).
func (m *Metrics) RequestLatencyQuantile(q float64) float64 {
	return m.requestHist.Quantile(q)
}

// recordResponse feeds one finished client request into the rolling rate
// windows (errors = 5xx).
func (m *Metrics) recordResponse(status int) {
	m.reqWindow.Add(1)
	if status >= 500 {
		m.errWindow.Add(1)
	}
}

// Root exposes the expvar map for GET /metrics.
func (m *Metrics) Root() *expvar.Map { return m.root }

func (m *Metrics) setReadyNodes(n int) { m.readyNodes.Set(int64(n)) }

// nodeStats returns (creating on first use) one worker's rollup.
func (m *Metrics) nodeStats(url string) *nodeMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	ns, ok := m.nodes[url]
	if !ok {
		ns = &nodeMetrics{latency: obs.NewHistogram()}
		m.nodes[url] = ns
	}
	return ns
}

// recordForward accounts one attempt against one worker: latencyNS < 0
// means no response was obtained (connection error / timeout).
func (m *Metrics) recordForward(url string, latencyNS int64, failedOver bool) {
	ns := m.nodeStats(url)
	if latencyNS >= 0 {
		ns.requests.Add(1)
		ns.latency.Observe(latencyNS)
		m.forwardHist.Observe(latencyNS)
		m.nodeRequests.Add(url, 1)
	}
	if failedOver {
		ns.failovers.Add(1)
		m.nodeFailures.Add(url, 1)
	}
}
