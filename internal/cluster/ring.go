// Package cluster is the distributed layer above hyperap-serve: a
// coordinator that routes run and compile requests over a consistent-hash
// ring of worker nodes keyed by program fingerprint, so each worker's
// compiled-program cache and micro-batching coalescer stay hot for the
// programs it owns; node membership is maintained by periodic health
// probes of the workers' /readyz endpoints (degraded nodes get
// weight-reduced, failed nodes are evicted and their ring ranges
// reassigned), and a failed forward falls over to the next ring replica
// with bounded retries — a request is answered by a worker or fails
// loudly, never silently wrong.
//
// Combined with the workers' peer store-fetch (internal/serve
// Config.Peers), the cluster compiles each distinct program once, ever:
// the fingerprint's ring owner compiles and writes through to its
// content-addressed store, and any other node that is asked for the same
// fingerprint fetches the self-verifying record instead of recompiling.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"sync"
)

// DefaultVnodes is the number of ring positions a full-weight node
// occupies. More vnodes smooth the key distribution (stddev of a node's
// share shrinks like 1/sqrt(vnodes)) at O(vnodes·log) lookup cost.
const DefaultVnodes = 128

// Ring is a weighted consistent-hash ring. Keys (program fingerprints)
// and node positions hash into the same 64-bit circle; a key belongs to
// the first node position at or clockwise after it. Weights scale a
// node's vnode count, so a degraded node keeps serving its hottest
// ranges while shedding load, and removing a node moves only the keys it
// owned (the minimal-movement property the ring tests pin).
//
// All methods are safe for concurrent use; Lookup is the hot path and
// takes only a read lock.
type Ring struct {
	vnodes int // positions per unit of weight 1.0

	mu     sync.RWMutex
	points []ringPoint // sorted by hash
	nodes  map[string]int
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds an empty ring with the given full-weight vnode count
// (0 means DefaultVnodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	return &Ring{vnodes: vnodes, nodes: map[string]int{}}
}

// hash64 maps a string to a ring position. SHA-256 (truncated) rather
// than a fast non-cryptographic hash: fingerprint keys are already
// SHA-256 strings, and node names are attacker-ignorable, but the ring
// tests demand a distribution good enough that balance bounds hold at
// modest vnode counts, which fnv-style hashes fail on structured input
// like "host:port#17".
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Set places a node on the ring with the given weight in [0,1]; weight 0
// removes it. A fractional weight rounds to at least one vnode while
// positive, so a heavily degraded node still owns its primary ranges
// (keeping its cache warm) instead of flapping off the ring entirely.
func (r *Ring) Set(node string, weight float64) {
	n := 0
	if weight > 0 {
		n = int(weight*float64(r.vnodes) + 0.5)
		if n < 1 {
			n = 1
		}
		if n > r.vnodes {
			n = r.vnodes
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.nodes[node] == n {
		return
	}
	r.rebuildLocked(node, n)
}

// Remove takes a node off the ring entirely.
func (r *Ring) Remove(node string) { r.Set(node, 0) }

// rebuildLocked recomputes the point list after one node's vnode count
// changed. Vnode hashes are pure functions of (node, index), so the
// untouched nodes' positions are bit-identical across rebuilds — that,
// not the rebuild strategy, is what guarantees minimal movement.
func (r *Ring) rebuildLocked(node string, n int) {
	if n == 0 {
		delete(r.nodes, node)
	} else {
		r.nodes[node] = n
	}
	points := make([]ringPoint, 0, len(r.points)+n)
	for nd, cnt := range r.nodes {
		for i := 0; i < cnt; i++ {
			points = append(points, ringPoint{hash: vnodeHash(nd, i), node: nd})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].hash != points[j].hash {
			return points[i].hash < points[j].hash
		}
		// Hash ties (vanishingly rare) break on the node name so the
		// ring order is deterministic across processes.
		return points[i].node < points[j].node
	})
	r.points = points
}

func vnodeHash(node string, i int) uint64 {
	var idx [8]byte
	binary.BigEndian.PutUint64(idx[:], uint64(i))
	return hash64(node + "#" + string(idx[:]))
}

// Lookup returns up to max distinct nodes responsible for the key, in
// ring order: the owner first, then the failover replicas a coordinator
// tries in sequence. Returns nil when the ring is empty.
func (r *Ring) Lookup(key string, max int) []string {
	h := hash64(key)
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || max <= 0 {
		return nil
	}
	if max > len(r.nodes) {
		max = len(r.nodes)
	}
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, max)
	seen := make(map[string]bool, max)
	for i := 0; i < len(r.points) && len(out) < max; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// Owner returns the primary node for a key ("" on an empty ring).
func (r *Ring) Owner(key string) string {
	nodes := r.Lookup(key, 1)
	if len(nodes) == 0 {
		return ""
	}
	return nodes[0]
}

// Nodes returns each member's current vnode count (a copy).
func (r *Ring) Nodes() map[string]int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]int, len(r.nodes))
	for n, c := range r.nodes {
		out[n] = c
	}
	return out
}

// Occupancy returns each node's share of the hash circle — the fraction
// of key space it owns — for the ring-occupancy metric. Shares sum to 1
// on a non-empty ring.
func (r *Ring) Occupancy() map[string]float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]float64, len(r.nodes))
	if len(r.points) == 0 {
		return out
	}
	// Arc before points[i] (wrapping) belongs to points[i].
	prev := r.points[len(r.points)-1].hash
	for _, p := range r.points {
		arc := p.hash - prev // uint64 wrap-around is exactly the circle arithmetic
		out[p.node] += float64(arc) / (1 << 63) / 2
		prev = p.hash
	}
	return out
}
