package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hyperap/internal/obs"
	"hyperap/internal/serve"
)

// recordingWorker is a stub worker that records the observability
// headers of every /v1/run attempt it receives and answers with a fixed
// status. It always reports ready so the pool keeps it on the ring.
type recordingWorker struct {
	status int // answer for /v1/run

	mu       sync.Mutex
	requests []recordedAttempt
}

type recordedAttempt struct {
	requestID   string
	traceparent string
}

func (rw *recordingWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/v1/run" {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"status":"ready"}`)
		return
	}
	rw.mu.Lock()
	rw.requests = append(rw.requests, recordedAttempt{
		requestID:   r.Header.Get("X-Request-Id"),
		traceparent: r.Header.Get("Traceparent"),
	})
	rw.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(rw.status)
	if rw.status == http.StatusOK {
		io.WriteString(w, `{"program":"stub","outputs":[[1]]}`)
		return
	}
	io.WriteString(w, `{"error":"stub failure"}`)
}

func (rw *recordingWorker) attempts() []recordedAttempt {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	return append([]recordedAttempt(nil), rw.requests...)
}

// TestFailoverResendsObservabilityHeaders is the failover header
// regression test: when the ring owner answers a failover status and the
// request retries on the next replica, every attempt must carry the SAME
// X-Request-Id (one client request, one id) and a Traceparent on every
// attempt — same trace id, but a DIFFERENT span id per attempt, so each
// retry hangs under its own forward span in the stitched timeline.
func TestFailoverResendsObservabilityHeaders(t *testing.T) {
	failing := &recordingWorker{status: http.StatusServiceUnavailable}
	healthy := &recordingWorker{status: http.StatusOK}
	tsFail := httptest.NewServer(failing)
	defer tsFail.Close()
	tsOK := httptest.NewServer(healthy)
	defer tsOK.Close()

	c := New(Config{
		Workers:       []string{tsFail.URL, tsOK.URL},
		Attempts:      2,
		ProbeInterval: time.Hour, // nodes start ready; keep probes out of the way
	})
	defer c.Drain(t.Context())
	cts := httptest.NewServer(c)
	defer cts.Close()

	// Pick a program handle whose ring owner is the failing worker so the
	// request is guaranteed to fail over.
	key := ""
	for i := 0; i < 256; i++ {
		cand := fmt.Sprintf("prog-%d", i)
		reps := c.Pool().Ring().Lookup(cand, 2)
		if len(reps) == 2 && reps[0] == tsFail.URL {
			key = cand
			break
		}
	}
	if key == "" {
		t.Fatal("no candidate key routed to the failing worker first")
	}

	body, _ := json.Marshal(map[string]any{"program": key, "inputs": [][]uint64{{1, 2}}})
	resp, err := http.Post(cts.URL+"/v1/run?trace=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 after failover", resp.StatusCode)
	}

	fAtt, hAtt := failing.attempts(), healthy.attempts()
	if len(fAtt) != 1 || len(hAtt) != 1 {
		t.Fatalf("attempts: failing=%d healthy=%d, want 1 and 1", len(fAtt), len(hAtt))
	}
	first, second := fAtt[0], hAtt[0]
	if first.requestID == "" {
		t.Fatal("first attempt carried no X-Request-Id")
	}
	if first.requestID != second.requestID {
		t.Fatalf("X-Request-Id changed across failover: %q then %q", first.requestID, second.requestID)
	}
	tc1, ok1 := obs.ParseTraceparent(first.traceparent)
	tc2, ok2 := obs.ParseTraceparent(second.traceparent)
	if !ok1 || !ok2 {
		t.Fatalf("unparseable Traceparent: %q / %q", first.traceparent, second.traceparent)
	}
	if tc1.TraceID != tc2.TraceID {
		t.Fatalf("trace id changed across failover: %s then %s", tc1.TraceID, tc2.TraceID)
	}
	if tc1.SpanID == tc2.SpanID {
		t.Fatalf("both attempts reused span id %s; want a fresh forward span per attempt", tc1.SpanID)
	}
	if !tc1.Sampled || !tc2.Sampled {
		t.Fatal("?trace=1 attempts must be marked sampled in the Traceparent")
	}
	// The coordinator echoes the id and trace back to the client too.
	if got := resp.Header.Get("X-Request-Id"); got != first.requestID {
		t.Fatalf("client saw X-Request-Id %q, workers saw %q", got, first.requestID)
	}
	if rtc, ok := obs.ParseTraceparent(resp.Header.Get("Traceparent")); !ok || rtc.TraceID != tc1.TraceID {
		t.Fatalf("client Traceparent %q does not carry trace %s", resp.Header.Get("Traceparent"), tc1.TraceID)
	}
}

// chromeEvent is the slice of a Chrome trace event the tests inspect.
type chromeEvent struct {
	Ph   string            `json:"ph"`
	Name string            `json:"name"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Args map[string]string `json:"args"`
}

type chromeDoc struct {
	TraceEvents []json.RawMessage `json:"traceEvents"`
	OtherData   map[string]any    `json:"otherData"`
}

// decodeChrome splits a stitched document into metadata and slice
// events (metadata args are objects, so events are decoded individually).
func decodeChrome(t *testing.T, raw []byte) (meta map[int]string, slices []chromeEvent, other map[string]any) {
	t.Helper()
	var doc chromeDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("stitched trace is not valid JSON: %v", err)
	}
	meta = map[int]string{}
	for _, rawEv := range doc.TraceEvents {
		var head struct {
			Ph   string         `json:"ph"`
			Name string         `json:"name"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		}
		if err := json.Unmarshal(rawEv, &head); err != nil {
			t.Fatalf("bad trace event %s: %v", rawEv, err)
		}
		if head.Ph == "M" {
			if head.Name == "process_name" {
				name, _ := head.Args["name"].(string)
				meta[head.Pid] = name
			}
			continue
		}
		var ev chromeEvent
		if err := json.Unmarshal(rawEv, &ev); err != nil {
			t.Fatalf("bad slice event %s: %v", rawEv, err)
		}
		slices = append(slices, ev)
	}
	return meta, slices, doc.OtherData
}

// TestClusterStitchedTraceE2E drives a traced run through coordinator +
// two workers and checks the acceptance shape of the stitched timeline:
// ONE valid Chrome/Perfetto JSON document whose slices span at least two
// process tracks (coordinator ingress/route/forward + worker
// queue/run/chip), all joined by one trace id, children nested within
// their parents' bounds.
func TestClusterStitchedTraceE2E(t *testing.T) {
	tc := newTestCluster(t, 2)
	defer tc.close(t)

	p := addPrograms(1)[0]
	in := p.inputs(5)
	body, _ := json.Marshal(serve.RunRequest{Source: p.src, Inputs: in})
	resp, err := http.Post(tc.cts.URL+"/v1/run?trace=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("run status = %d: %s", resp.StatusCode, b)
	}
	headerTC, ok := obs.ParseTraceparent(resp.Header.Get("Traceparent"))
	if !ok {
		t.Fatalf("coordinator response Traceparent %q unparseable", resp.Header.Get("Traceparent"))
	}

	var run serve.RunResponse
	if err := json.NewDecoder(resp.Body).Decode(&run); err != nil {
		t.Fatal(err)
	}
	if want := p.expected(in); !equalOutputs(run.Outputs, want) {
		t.Fatalf("outputs = %v, want %v (stitching must not corrupt the result)", run.Outputs, want)
	}
	if len(run.Trace) == 0 {
		t.Fatal("traced run returned no trace document")
	}

	meta, slices, other := decodeChrome(t, run.Trace)
	if got, _ := other["traceId"].(string); got != headerTC.TraceID {
		t.Fatalf("stitched traceId = %q, want header trace id %q", got, headerTC.TraceID)
	}
	if meta[1] != "hyperap-coord" {
		t.Fatalf("pid 1 = %q, want the coordinator track first", meta[1])
	}
	if len(meta) < 2 {
		t.Fatalf("stitched trace has %d process tracks, want >= 2 (coordinator + worker): %v", len(meta), meta)
	}
	workerPids := map[int]bool{}
	for pid, name := range meta {
		if pid != 1 {
			workerPids[pid] = true
			if !strings.HasPrefix(name, "hyperap-serve") {
				t.Fatalf("worker track pid %d named %q, want hyperap-serve + node URL", pid, name)
			}
		}
	}

	// Required span names on each side of the hop.
	coordNames := map[string]bool{}
	workerNames := map[string]bool{}
	for _, ev := range slices {
		if ev.Pid == 1 {
			coordNames[ev.Name] = true
		} else {
			workerNames[ev.Name] = true
		}
	}
	for _, want := range []string{"POST /v1/run", "route", "forward"} {
		if !coordNames[want] {
			t.Fatalf("coordinator track missing %q span; has %v", want, coordNames)
		}
	}
	// A traced run flushes through its own pass (no coalesce span).
	for _, want := range []string{"queue_wait", "run", "compile"} {
		if !workerNames[want] {
			t.Fatalf("worker track missing %q span; has %v", want, workerNames)
		}
	}
	hasChip := false
	for name := range workerNames {
		if strings.HasPrefix(name, "chip pe") {
			hasChip = true
		}
	}
	if !hasChip {
		t.Fatalf("worker track has no per-PE chip span; has %v", workerNames)
	}

	// Every child slice must sit inside its parent's bounds — including
	// the cross-process edge (worker root under the coordinator's forward
	// span), which the stitcher clamps.
	byID := map[string]chromeEvent{}
	for _, ev := range slices {
		if id := ev.Args["spanId"]; id != "" {
			byID[id] = ev
		}
	}
	crossEdges := 0
	for _, ev := range slices {
		parent, ok := byID[ev.Args["parentId"]]
		if !ok {
			continue
		}
		if ev.Pid != parent.Pid {
			crossEdges++
		}
		if ev.Ts < parent.Ts || ev.Ts+ev.Dur > parent.Ts+parent.Dur {
			t.Fatalf("span %q [%f,%f] escapes parent %q [%f,%f]",
				ev.Name, ev.Ts, ev.Ts+ev.Dur, parent.Name, parent.Ts, parent.Ts+parent.Dur)
		}
	}
	if crossEdges == 0 {
		t.Fatal("no cross-process parent edge: worker spans are not stitched under the coordinator's forward span")
	}

	// The same timeline must be reconstructable after the fact from the
	// coordinator's GET /v1/trace/{id}?stitch=1.
	post, err := http.Get(tc.cts.URL + "/v1/trace/" + headerTC.TraceID + "?stitch=1")
	if err != nil {
		t.Fatal(err)
	}
	defer post.Body.Close()
	if post.StatusCode != http.StatusOK {
		t.Fatalf("post-hoc stitch status = %d", post.StatusCode)
	}
	raw, err := io.ReadAll(post.Body)
	if err != nil {
		t.Fatal(err)
	}
	meta2, slices2, other2 := decodeChrome(t, raw)
	if got, _ := other2["traceId"].(string); got != headerTC.TraceID {
		t.Fatalf("post-hoc traceId = %q, want %q", got, headerTC.TraceID)
	}
	if len(meta2) < 2 || len(slices2) < len(slices) {
		t.Fatalf("post-hoc stitch lost spans: %d tracks / %d slices, embedded had %d tracks / %d slices",
			len(meta2), len(slices2), len(meta), len(slices))
	}
}

func equalOutputs(got, want [][]uint64) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if len(got[i]) != len(want[i]) {
			return false
		}
		for j := range got[i] {
			if got[i][j] != want[i][j] {
				return false
			}
		}
	}
	return true
}

// TestClusterPrometheusE2E scrapes /metrics/prometheus on a worker and
// on the coordinator (plain and federated) after real traffic, and runs
// every exposition through the grammar linter.
func TestClusterPrometheusE2E(t *testing.T) {
	tc := newTestCluster(t, 2)
	defer tc.close(t)

	for i, p := range addPrograms(3) {
		body, _ := json.Marshal(serve.RunRequest{Source: p.src, Inputs: p.inputs(i + 1)})
		resp, err := http.Post(tc.cts.URL+"/v1/run", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run %d status = %d", i, resp.StatusCode)
		}
	}

	scrape := func(url string) string {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("scrape %s status = %d", url, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Fatalf("scrape %s content type = %q", url, ct)
		}
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if err := obs.LintPromText(bytes.NewReader(raw)); err != nil {
			t.Fatalf("exposition from %s fails lint: %v", url, err)
		}
		return string(raw)
	}

	// Ring placement depends on the workers' (random) listen ports, so
	// any single worker may own none of the three programs: scrape every
	// worker, require the structural families on each and the run-200
	// series on at least one.
	sawRun := false
	for wi, u := range tc.urls {
		worker := scrape(u + "/metrics/prometheus")
		for _, want := range []string{
			"# TYPE hyperap_request_duration_ns histogram",
			"hyperap_request_duration_ns_bucket{le=\"+Inf\"}",
			"# TYPE hyperap_hot_program_runs gauge",
			"hyperap_request_rate_1m",
		} {
			if !strings.Contains(worker, want) {
				t.Fatalf("worker %d exposition missing %q", wi, want)
			}
		}
		if strings.Contains(worker, "hyperap_requests_total{endpoint=\"run\",status=\"200\"}") {
			sawRun = true
		}
	}
	if !sawRun {
		t.Fatal("no worker exposition carries the run-200 series")
	}

	coord := scrape(tc.cts.URL + "/metrics/prometheus")
	for _, want := range []string{
		"# TYPE hyperap_coord_request_duration_ns histogram",
		"hyperap_coord_forwards_total",
		"hyperap_coord_node_requests_total{node=",
		"# TYPE hyperap_coord_hot_program_runs gauge",
		"hyperap_coord_hot_program_runs{fingerprint=",
	} {
		if !strings.Contains(coord, want) {
			t.Fatalf("coordinator exposition missing %q", want)
		}
	}

	fed := scrape(tc.cts.URL + "/metrics/prometheus?federate=1")
	if !strings.Contains(fed, "hyperap_requests_total{endpoint=\"run\",status=\"200\",node=\"") {
		t.Fatal("federated exposition carries no node-labelled worker samples")
	}
	if strings.Count(fed, "# TYPE hyperap_request_duration_ns histogram") != 1 {
		t.Fatal("federated exposition must declare each family's TYPE exactly once")
	}
}
