package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"hyperap/internal/obs"
	"hyperap/internal/serve"
)

// relay is the hardened attempt loop behind handleProxy (DESIGN.md §15):
// it spends a bounded retry budget across the key's ring replicas,
// skipping workers whose circuit breaker is open, honoring Retry-After
// hints with a same-worker retry, spacing failovers with jittered
// exponential backoff, optionally hedging idempotent requests, and
// verifying the content checksum on every buffered worker body so a
// corrupted relay becomes a failover — never a client-visible answer.

// backoff bounds for spacing failover attempts.
const (
	backoffBase = 5 * time.Millisecond
	backoffCap  = 250 * time.Millisecond
)

// hedgeDelay bounds when deriving the stagger from the live forward
// latency histogram.
const (
	hedgeDelayMin      = 5 * time.Millisecond
	hedgeDelayMax      = time.Second
	hedgeDelayFallback = 25 * time.Millisecond
)

// relayOutcome is one resolved attempt (or hedge race) result.
type relayOutcome struct {
	node string
	resp *workerResponse // nil on transport error
	err  error
}

// failover reports whether this outcome should move on to another
// replica rather than answer the client.
func (o relayOutcome) failover() bool {
	return o.err != nil || failoverStatus(o.resp.status)
}

// relayState carries one client request through the attempt loop. The
// mutex covers the fields hedged attempts mutate concurrently (budget,
// attempted); everything else is touched only from the loop goroutine.
type relayState struct {
	c    *Coordinator
	r    *http.Request
	body []byte
	tc   obs.TraceContext
	span *obs.Span

	mu        sync.Mutex
	budget    int      // forwards remaining
	attempted []string // node URLs tried, in order (for stitched timelines)

	retried map[string]bool
	last    *workerResponse // last failover-status worker verdict
	lastErr error
}

// spend consumes one unit of budget and registers the attempt,
// returning its 1-based ordinal.
func (st *relayState) spend(node string) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.budget--
	st.attempted = append(st.attempted, node)
	return len(st.attempted)
}

func (st *relayState) budgetLeft() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.budget
}

func (st *relayState) attemptedNodes() []string {
	st.mu.Lock()
	defer st.mu.Unlock()
	return append([]string(nil), st.attempted...)
}

// relay runs the loop. On success the worker response is written (via
// the stitch path when sampled); on exhaustion the last worker verdict
// or a 502 is written. It always writes exactly one response.
func (c *Coordinator) relay(ctx context.Context, w http.ResponseWriter, r *http.Request, body []byte, key string, slots int, replicas []string) {
	span := obs.SpanFrom(ctx)
	tc := obs.TraceContextFrom(ctx)
	st := &relayState{
		c:       c,
		r:       r,
		body:    body,
		tc:      tc,
		span:    span,
		budget:  c.cfg.RetryBudget,
		retried: map[string]bool{},
	}
	hedgeOK := c.cfg.Hedge && r.URL.Path == "/v1/run"
	for i := 0; i < len(replicas); i++ {
		node := replicas[i]
		if st.budgetLeft() <= 0 {
			break
		}
		if !c.breakers.get(node).Allow() {
			c.met.breakerShortCircuits.Add(1)
			continue
		}
		var out relayOutcome
		hedged := false
		if hedgeOK && st.budgetLeft() >= 2 {
			if spare, ok := c.hedgeCandidate(replicas[i+1:]); ok {
				out = st.hedgedAttempt(ctx, node, spare)
				hedged = true
				if out.node == spare {
					// The hedge spare answered; skip it when the ring
					// loop reaches its slot.
					replicas = skipNode(replicas, i+1, spare)
				}
			}
		}
		if !hedged {
			out = st.attempt(ctx, node)
		}
		if !out.failover() {
			c.finishRelay(ctx, w, r, out.resp, key, slots, st.attemptedNodes())
			return
		}
		st.noteFailure(out)
		if ctx.Err() != nil {
			break
		}
		// A worker that said "try me again in a moment" (429/503 with
		// Retry-After) gets one same-worker retry when the wait fits the
		// remaining deadline — backpressure is transient and ring-local,
		// so the same worker is often the cheapest next answer.
		if wait, ok := retryAfterWait(out); ok && st.budgetLeft() > 0 && !st.retried[out.node] && waitFits(ctx, wait) {
			st.retried[out.node] = true
			if c.sleep(ctx, wait) != nil {
				break
			}
			c.met.retryAfterHonored.Add(1)
			out = st.attempt(ctx, out.node)
			if !out.failover() {
				c.finishRelay(ctx, w, r, out.resp, key, slots, st.attemptedNodes())
				return
			}
			st.noteFailure(out)
			if ctx.Err() != nil {
				break
			}
		}
		if i < len(replicas)-1 && st.budgetLeft() > 0 {
			c.met.failovers.Add(1)
			c.log.Warn("failing over to next ring replica",
				"key", key, "node", out.node, "attempt", len(st.attemptedNodes()),
				"status", respStatus(out.resp), "err", errString(out.err))
			if c.sleep(ctx, jitteredBackoff(len(st.attemptedNodes()))) != nil {
				break
			}
		}
	}
	// Budget or replicas exhausted. Pass through the last worker verdict
	// when one exists (it carries Retry-After semantics the client can
	// use); otherwise answer 502 naming what was tried. Nothing partial
	// was ever written, so the client sees one coherent failure.
	c.met.exhausted.Add(1)
	if st.last != nil {
		c.writeWorkerResponse(w, st.last)
		return
	}
	c.writeError(w, http.StatusBadGateway,
		fmt.Errorf("all %d attempts failed for %s: %v", len(st.attemptedNodes()), key, st.lastErr))
}

// finishRelay writes a successful worker response (stitched when the
// request is sampled) and feeds the hot-program table.
func (c *Coordinator) finishRelay(ctx context.Context, w http.ResponseWriter, r *http.Request, resp *workerResponse, key string, slots int, attempted []string) {
	span := obs.SpanFrom(ctx)
	tc := obs.TraceContextFrom(ctx)
	c.met.hot.Record(key, slots, time.Since(span.Start).Nanoseconds())
	if c.shouldStitch(r, tc, resp) {
		c.writeStitched(ctx, w, r, tc, span, resp, attempted)
		return
	}
	c.writeWorkerResponse(w, resp)
}

// attempt forwards once to one worker, spending budget, recording the
// span/metrics and settling the worker's breaker.
func (st *relayState) attempt(ctx context.Context, node string) relayOutcome {
	c := st.c
	attemptNo := st.spend(node)
	fwdTC := st.tc.Child()
	fwdStart := time.Now()
	resp, err := c.forward(ctx, node, st.r, st.body, fwdTC.Traceparent())
	if resp != nil && err == nil {
		if sum := resp.header.Get(serve.ChecksumHeader); sum != "" && !serve.VerifyChecksum(sum, resp.body) {
			c.met.checksumFailures.Add(1)
			err = fmt.Errorf("worker %s: response checksum mismatch", node)
			resp = nil
		}
	}
	st.span.PhaseFull("forward", fwdStart, time.Since(fwdStart), "", fwdTC.SpanID,
		map[string]string{"node": node, "attempt": strconv.Itoa(attemptNo), "status": strconv.Itoa(respStatus(resp))})
	out := relayOutcome{node: node, resp: resp, err: err}
	latency := int64(-1)
	if resp != nil {
		latency = resp.latencyNS
	}
	c.met.recordForward(node, latency, out.failover())
	c.met.forwards.Add(1)
	br := c.breakers.get(node)
	if out.failover() {
		// A canceled attempt says nothing about the worker: don't let a
		// client hanging up (or a hedge loser) trip its breaker.
		if err != nil && (errors.Is(err, context.Canceled) || ctx.Err() != nil) {
			br.OnCancel()
		} else {
			br.OnFailure()
		}
	} else {
		br.OnSuccess()
	}
	return out
}

// hedgedAttempt races the primary worker against one spare: the spare's
// attempt fires after the hedge delay unless the primary resolves first,
// and the loser's forward is canceled. Only idempotent requests
// (/v1/run) are hedged — a run computes the same outputs everywhere.
func (st *relayState) hedgedAttempt(ctx context.Context, primary, spare string) relayOutcome {
	c := st.c
	hctx, cancelHedge := context.WithCancel(ctx)
	results := make(chan relayOutcome, 2)
	launch := func(node string) {
		results <- st.attempt(hctx, node)
	}
	go launch(primary)
	delay := c.hedgeDelay()
	timer := time.NewTimer(delay)
	defer timer.Stop()
	var first relayOutcome
	select {
	case first = <-results:
		cancelHedge()
		return first
	case <-timer.C:
	}
	// Primary is slow: fire the hedge and take whichever resolves first
	// without a failover verdict.
	c.met.hedges.Add(1)
	go launch(spare)
	first = <-results
	if !first.failover() {
		// Cancel the loser and wait for it to resolve before returning:
		// the relay must not leave an attempt mutating state (or a test
		// server handling a request) behind its back.
		cancelHedge()
		<-results
		if first.node == spare {
			c.met.hedgeWins.Add(1)
		}
		return first
	}
	second := <-results
	cancelHedge()
	if !second.failover() {
		if second.node == spare {
			c.met.hedgeWins.Add(1)
		}
		return second
	}
	// Both failed: prefer the outcome with a worker verdict for the
	// client pass-through.
	if first.resp == nil && second.resp != nil {
		return second
	}
	return first
}

// hedgeCandidate picks the first spare replica whose breaker admits
// traffic.
func (c *Coordinator) hedgeCandidate(spares []string) (string, bool) {
	for _, node := range spares {
		if c.breakers.get(node).Allow() {
			return node, true
		}
	}
	return "", false
}

// hedgeDelay resolves the hedge stagger: the configured delay, or the
// live p95 forward latency clamped to sane bounds (falling back to a
// fixed stagger before the histogram has data).
func (c *Coordinator) hedgeDelay() time.Duration {
	if c.cfg.HedgeDelay > 0 {
		return c.cfg.HedgeDelay
	}
	p95 := time.Duration(c.met.forwardHist.Quantile(0.95))
	if p95 <= 0 {
		return hedgeDelayFallback
	}
	if p95 < hedgeDelayMin {
		return hedgeDelayMin
	}
	if p95 > hedgeDelayMax {
		return hedgeDelayMax
	}
	return p95
}

// noteFailure keeps the best failure verdict for the exhausted path.
func (st *relayState) noteFailure(out relayOutcome) {
	st.lastErr = out.err
	if out.err == nil && out.resp != nil {
		st.last = out.resp
	}
}

// skipNode removes the first occurrence of node at or after index from,
// so a spare consumed by a hedge is not retried by the ring loop.
func skipNode(replicas []string, from int, node string) []string {
	for i := from; i < len(replicas); i++ {
		if replicas[i] == node {
			out := make([]string, 0, len(replicas)-1)
			out = append(out, replicas[:i]...)
			return append(out, replicas[i+1:]...)
		}
	}
	return replicas
}

// retryAfterWait extracts a worker's Retry-After hint (seconds form)
// from a 429/503 outcome.
func retryAfterWait(out relayOutcome) (time.Duration, bool) {
	if out.resp == nil {
		return 0, false
	}
	if out.resp.status != http.StatusTooManyRequests && out.resp.status != http.StatusServiceUnavailable {
		return 0, false
	}
	v := out.resp.header.Get("Retry-After")
	if v == "" {
		return 0, false
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0, false
	}
	return time.Duration(secs) * time.Second, true
}

// waitFits reports whether sleeping wait still leaves time to actually
// retry before the request deadline.
func waitFits(ctx context.Context, wait time.Duration) bool {
	dl, ok := ctx.Deadline()
	if !ok {
		return true
	}
	return time.Until(dl) > wait+10*time.Millisecond
}

// jitteredBackoff spaces failover attempt n (1-based) with full jitter:
// uniform in (0, min(cap, base·2^(n-1))]. Spacing retries avoids
// synchronized retry storms against a recovering cluster.
func jitteredBackoff(attempt int) time.Duration {
	max := backoffBase << (attempt - 1)
	if max > backoffCap || max <= 0 {
		max = backoffCap
	}
	return time.Duration(rand.Int63n(int64(max))) + time.Nanosecond
}

// sleep waits d or until the context ends, through the injectable clock
// (fake-clock tests replace it).
func (c *Coordinator) sleep(ctx context.Context, d time.Duration) error {
	if c.cfg.sleep != nil {
		return c.cfg.sleep(ctx, d)
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
