package cluster

import (
	"testing"
	"time"
)

// fakeClock is a manually-advanced clock for breaker tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(clk *fakeClock) *breaker {
	cfg := defaultBreakerConfig()
	cfg.ConsecutiveFailures = 3
	cfg.OpenTimeout = time.Second
	cfg.now = clk.now
	return newBreaker(cfg)
}

func TestBreakerConsecutiveTrip(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newTestBreaker(clk)
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker blocked request %d", i)
		}
		b.OnFailure()
	}
	if b.State() != breakerOpen {
		t.Fatalf("state after 3 consecutive failures = %v, want open", b.State())
	}
	if b.Allow() {
		t.Error("open breaker admitted a request before its timeout")
	}
	if trips, _ := b.Counts(); trips != 1 {
		t.Errorf("trips = %d, want 1", trips)
	}
}

func TestBreakerSuccessResetsConsecutive(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newTestBreaker(clk)
	// Alternating failures never reach the consecutive threshold of 3,
	// and 6 outcomes stay below the rate trigger's MinSamples of 10.
	for i := 0; i < 2; i++ {
		b.OnFailure()
		b.OnFailure()
		b.OnSuccess()
	}
	if b.State() != breakerClosed {
		t.Fatalf("state = %v, want closed (consecutive count must reset on success)", b.State())
	}
}

func TestBreakerRateTrip(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	cfg := defaultBreakerConfig()
	cfg.ConsecutiveFailures = 100 // out of the way; only the rate can trip
	cfg.FailureRate = 0.5
	cfg.MinSamples = 10
	cfg.now = clk.now
	b := newBreaker(cfg)
	// 5 successes, then failures. At 10 samples the window holds 5/10
	// failures = exactly the 0.5 threshold.
	for i := 0; i < 5; i++ {
		b.OnSuccess()
	}
	for i := 0; i < 4; i++ {
		b.OnFailure()
		if b.State() != breakerClosed {
			t.Fatalf("tripped early at failure %d", i)
		}
	}
	b.OnFailure()
	if b.State() != breakerOpen {
		t.Fatalf("state after 5/10 failures = %v, want open (rate trigger)", b.State())
	}
}

// TestBreakerHalfOpenCycle drives the full open → half-open → closed
// recovery cycle on a fake clock, including the single-trial admission
// rule while half-open.
func TestBreakerHalfOpenCycle(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newTestBreaker(clk)
	for i := 0; i < 3; i++ {
		b.OnFailure()
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request immediately")
	}
	clk.advance(999 * time.Millisecond)
	if b.Allow() {
		t.Fatal("open breaker admitted a request 1ms before its timeout")
	}
	clk.advance(time.Millisecond)
	if !b.Allow() {
		t.Fatal("breaker did not admit the half-open trial after its timeout")
	}
	if b.State() != breakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	// Only one trial at a time.
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent trial")
	}
	b.OnSuccess()
	if b.State() != breakerClosed {
		t.Fatalf("state after successful trial = %v, want closed", b.State())
	}
	trips, cycles := b.Counts()
	if trips != 1 || cycles != 1 {
		t.Errorf("trips, cycles = %d, %d; want 1, 1", trips, cycles)
	}
	if !b.Allow() {
		t.Error("recovered breaker blocked traffic")
	}
}

// TestBreakerHalfOpenFailureReopens: a failed trial re-opens the breaker
// for another full timeout.
func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newTestBreaker(clk)
	for i := 0; i < 3; i++ {
		b.OnFailure()
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("no half-open trial admitted")
	}
	b.OnFailure()
	if b.State() != breakerOpen {
		t.Fatalf("state after failed trial = %v, want open", b.State())
	}
	if b.Allow() {
		t.Error("re-opened breaker admitted a request before a fresh timeout")
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Error("re-opened breaker never admitted the next trial")
	}
	if trips, _ := b.Counts(); trips != 2 {
		t.Errorf("trips = %d, want 2", trips)
	}
}

// TestBreakerCancelReleasesTrial: an abandoned half-open trial (hedge
// loser, caller gone) releases the slot without judging the worker.
func TestBreakerCancelReleasesTrial(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newTestBreaker(clk)
	for i := 0; i < 3; i++ {
		b.OnFailure()
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("no half-open trial admitted")
	}
	b.OnCancel()
	if b.State() != breakerHalfOpen {
		t.Fatalf("state after canceled trial = %v, want half-open", b.State())
	}
	if !b.Allow() {
		t.Error("canceled trial did not release the half-open slot")
	}
}
