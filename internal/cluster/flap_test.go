package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRingWeightMonotonicity pins the weight→vnode contract the flapping
// pool depends on: vnode counts are monotonic in weight, a positive
// weight always keeps at least one vnode (no flapping off the ring), and
// the union of owned ranges is always the whole circle — no key is ever
// lost, whatever the weights.
func TestRingWeightMonotonicity(t *testing.T) {
	r := NewRing(64)
	r.Set("a", 1)
	r.Set("b", 1)
	r.Set("c", 1)

	keys := make([]string, 200)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	coverAll := func(when string) {
		t.Helper()
		for _, k := range keys {
			if r.Owner(k) == "" {
				t.Fatalf("%s: key %q has no owner (lost vnode range)", when, k)
			}
		}
	}
	coverAll("full weights")

	prev := r.Nodes()["b"]
	for _, w := range []float64{0.9, 0.7, 0.5, 0.3, 0.1, 0.05, 0.01} {
		r.Set("b", w)
		cur := r.Nodes()["b"]
		if cur > prev {
			t.Fatalf("weight %v: vnodes rose %d → %d (not monotonic)", w, prev, cur)
		}
		if cur < 1 {
			t.Fatalf("weight %v: node b dropped to %d vnodes; positive weight must keep >= 1", w, cur)
		}
		coverAll(fmt.Sprintf("weight %v", w))
		prev = cur
	}
	// Weight back up: counts must rise monotonically too.
	for _, w := range []float64{0.2, 0.5, 0.8, 1} {
		r.Set("b", w)
		cur := r.Nodes()["b"]
		if cur < prev {
			t.Fatalf("weight %v: vnodes fell %d → %d while weight rose", w, prev, cur)
		}
		coverAll(fmt.Sprintf("recovery weight %v", w))
		prev = cur
	}
	// Full removal and return: the remaining nodes cover everything, and
	// the returning node's positions are bit-identical to its originals
	// (minimal movement).
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = r.Owner(k)
	}
	r.Remove("b")
	if _, still := r.Nodes()["b"]; still {
		t.Fatal("removed node still on the ring")
	}
	coverAll("after removal")
	for _, k := range keys {
		if o := r.Owner(k); o == "b" {
			t.Fatalf("key %q still owned by removed node", k)
		} else if before[k] != "b" && o != before[k] {
			t.Fatalf("key %q moved %s → %s though its owner never left", k, before[k], o)
		}
	}
	r.Set("b", 1)
	for _, k := range keys {
		if o := r.Owner(k); o != before[k] {
			t.Fatalf("key %q settled on %s, want its original owner %s after b returned", k, o, before[k])
		}
	}
}

// flapReadyz scripts a worker's /readyz through rapid
// ready→degraded→dead transitions.
type flapReadyz struct {
	phase atomic.Int64 // 0 ready, 1 degraded, 2 dead (500)
}

func (f *flapReadyz) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/readyz" {
		http.NotFound(w, r)
		return
	}
	switch f.phase.Load() % 3 {
	case 0:
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"status": "ready", "healthyPeFraction": 1.0})
	case 1:
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"status": "degraded", "healthyPeFraction": 0.4})
	default:
		http.Error(w, "dying", http.StatusInternalServerError)
	}
}

// TestMembershipFlapping (run under -race): drive one worker through
// rapid ready↔degraded↔evicted transitions while concurrent Lookups
// hammer the ring. Invariants: lookups never return zero nodes (the two
// stable workers are always on the ring), the flapping node's weight
// stays in [0,1] with vnodes within its full-weight cap, and when the
// storm ends the node settles back to ready at full weight.
func TestMembershipFlapping(t *testing.T) {
	flapper := &flapReadyz{}
	fts := httptest.NewServer(flapper)
	defer fts.Close()
	stable := func() *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(map[string]any{"status": "ready", "healthyPeFraction": 1.0})
		}))
	}
	s1, s2 := stable(), stable()
	defer s1.Close()
	defer s2.Close()

	met := NewMetrics()
	pool := NewPool(PoolConfig{
		Workers:       []string{fts.URL, s1.URL, s2.URL},
		ProbeInterval: 2 * time.Millisecond,
		ProbeTimeout:  time.Second,
		FailAfter:     2,
		Vnodes:        32,
	}, met)
	pool.Start()
	defer pool.Stop()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	// Concurrent lookups racing the probe-driven rebuilds.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				got := pool.Ring().Lookup(fmt.Sprintf("key-%d-%d", g, i), 3)
				if len(got) == 0 {
					select {
					case errs <- fmt.Errorf("lookup returned no nodes mid-flap"):
					default:
					}
					return
				}
				vn := pool.Ring().Nodes()
				if c := vn[fts.URL]; c < 0 || c > 32 {
					select {
					case errs <- fmt.Errorf("flapping node has %d vnodes, cap 32", c):
					default:
					}
					return
				}
			}
		}(g)
	}
	// The flapping storm is state-driven, not time-driven: each phase
	// holds until the probes have demonstrably folded it into the ring,
	// so every cycle is a full ready→down→degraded→ready transition
	// regardless of scheduler jitter under -race.
	waitFor := func(desc string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timeout waiting for %s; vnodes = %v", desc, pool.Ring().Nodes())
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	for cycle := 0; cycle < 3; cycle++ {
		flapper.phase.Store(2) // 500s: FailAfter=2 probes evict
		waitFor("eviction", func() bool { return pool.Ring().Nodes()[fts.URL] == 0 })
		flapper.phase.Store(1) // degraded at 0.4 health
		waitFor("degraded readmission", func() bool {
			c := pool.Ring().Nodes()[fts.URL]
			return c > 0 && c < 32
		})
		flapper.phase.Store(0) // healthy again
		waitFor("full-weight recovery", func() bool { return pool.Ring().Nodes()[fts.URL] == 32 })
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if got := met.evictions.Value(); got < 3 {
		t.Errorf("evictions = %d, want >= 3 (one per storm cycle)", got)
	}
	if got := pool.readyCount(); got != 3 {
		t.Fatalf("readyCount = %d after recovery, want 3", got)
	}
	if met.transitions.Value() < 3 {
		t.Errorf("transitions = %d; the flap should have produced several", met.transitions.Value())
	}
	// No key ranges lost after the storm: every key owned, and the three
	// nodes all hold their configured vnode counts.
	vn := pool.Ring().Nodes()
	for _, u := range []string{fts.URL, s1.URL, s2.URL} {
		if vn[u] != 32 {
			t.Errorf("node %s has %d vnodes after recovery, want 32", u, vn[u])
		}
	}
	for i := 0; i < 100; i++ {
		if pool.Ring().Owner(fmt.Sprintf("post-%d", i)) == "" {
			t.Fatalf("key post-%d lost after flap storm", i)
		}
	}
}
