package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"
)

// NodeState is a worker's membership state as seen by the probe loop.
type NodeState int

const (
	// NodeReady: /readyz answered 200 "ready"; full ring weight.
	NodeReady NodeState = iota
	// NodeDegraded: /readyz answered 200 "degraded"; ring weight scaled
	// by the healthy-PE fraction (it still serves, preferring to keep
	// its program cache warm, but sheds load toward healthier nodes).
	NodeDegraded
	// NodeDown: FailAfter consecutive probe failures (connection errors,
	// non-200, or 503-draining); evicted from the ring, ranges
	// reassigned, still probed for recovery.
	NodeDown
)

func (s NodeState) String() string {
	switch s {
	case NodeReady:
		return "ready"
	case NodeDegraded:
		return "degraded"
	default:
		return "down"
	}
}

// node is one worker's live membership record.
type node struct {
	url string

	mu              sync.Mutex
	state           NodeState
	weight          float64
	healthyFraction float64
	failures        int       // consecutive probe failures
	lastProbe       time.Time // when the last probe completed
	lastErr         string    // last probe failure, for the /cluster view
}

// PoolConfig configures the membership pool.
type PoolConfig struct {
	// Workers are the worker base URLs (e.g. "http://10.0.0.1:8763").
	// The URL is also the node's ring identity.
	Workers []string
	// ProbeInterval is the health-probe period (default 500ms).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one /readyz round trip (default 2s).
	ProbeTimeout time.Duration
	// FailAfter is how many consecutive probe failures evict a node from
	// the ring (default 3). Eviction is probe-driven; forwarding failures
	// additionally fail over per request without waiting for the probes.
	FailAfter int
	// MinWeight floors a degraded node's ring weight (default 0.1) so a
	// barely-alive node keeps its hottest ranges instead of flapping.
	MinWeight float64
	// Vnodes is the full-weight vnode count (default DefaultVnodes).
	Vnodes int
	// Client is the HTTP client used for probes (default: a dedicated
	// client with sane connection reuse).
	Client *http.Client
	// Logger receives membership transitions. Default: discard.
	Logger *slog.Logger
}

func (c PoolConfig) withDefaults() PoolConfig {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 3
	}
	if c.MinWeight <= 0 {
		c.MinWeight = 0.1
	}
	if c.Client == nil {
		c.Client = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 4}}
	}
	if c.Logger == nil {
		c.Logger = slog.New(discardHandler{})
	}
	return c
}

// discardHandler is a no-op slog handler (slog.DiscardHandler arrived
// after go 1.22, the module's floor).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// Pool maintains worker membership: it owns the ring, probes every
// worker's /readyz on a fixed cadence, and translates the probe results
// into ring weight (ready=1, degraded=healthy-PE fraction, down=off).
type Pool struct {
	cfg   PoolConfig
	ring  *Ring
	nodes map[string]*node
	met   *Metrics
	log   *slog.Logger

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// NewPool builds the pool and places every worker on the ring at full
// weight (optimistic start: a dead worker costs one failover per request
// until the probes evict it, which beats serving nothing while the first
// probe round completes). Call Start to begin probing.
func NewPool(cfg PoolConfig, met *Metrics) *Pool {
	cfg = cfg.withDefaults()
	p := &Pool{
		cfg:   cfg,
		ring:  NewRing(cfg.Vnodes),
		nodes: map[string]*node{},
		met:   met,
		log:   cfg.Logger,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	for _, url := range cfg.Workers {
		if _, dup := p.nodes[url]; dup {
			continue
		}
		p.nodes[url] = &node{url: url, state: NodeReady, weight: 1, healthyFraction: 1}
		p.ring.Set(url, 1)
	}
	return p
}

// Ring exposes the pool's ring for routing.
func (p *Pool) Ring() *Ring { return p.ring }

// Size returns the total number of configured workers (any state).
func (p *Pool) Size() int { return len(p.nodes) }

// Start launches the probe loop: one immediate round, then one round per
// ProbeInterval. Stop halts it.
func (p *Pool) Start() {
	go func() {
		defer close(p.done)
		p.probeAll()
		t := time.NewTicker(p.cfg.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-t.C:
				p.probeAll()
			}
		}
	}()
}

// Stop halts the probe loop (idempotent).
func (p *Pool) Stop() {
	p.stopOnce.Do(func() {
		close(p.stop)
		<-p.done
	})
}

// probeAll probes every worker concurrently and applies the results.
func (p *Pool) probeAll() {
	var wg sync.WaitGroup
	for _, n := range p.nodes {
		wg.Add(1)
		go func(n *node) {
			defer wg.Done()
			p.probe(n)
		}(n)
	}
	wg.Wait()
}

// readyzBody is the fraction of a worker /readyz response the pool reads.
type readyzBody struct {
	Status            string  `json:"status"`
	HealthyPeFraction float64 `json:"healthyPeFraction"`
}

// probe runs one /readyz round trip and folds the outcome into the
// node's state and ring weight.
func (p *Pool) probe(n *node) {
	ctx, cancel := context.WithTimeout(context.Background(), p.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.url+"/readyz", nil)
	if err != nil {
		p.applyProbe(n, 0, 0, err)
		return
	}
	resp, err := p.cfg.Client.Do(req)
	if err != nil {
		p.applyProbe(n, 0, 0, err)
		return
	}
	defer resp.Body.Close()
	var body readyzBody
	if decErr := json.NewDecoder(io.LimitReader(resp.Body, 64<<10)).Decode(&body); decErr != nil && resp.StatusCode == http.StatusOK {
		p.applyProbe(n, resp.StatusCode, 0, fmt.Errorf("bad /readyz body: %w", decErr))
		return
	}
	switch {
	case resp.StatusCode != http.StatusOK:
		p.applyProbe(n, resp.StatusCode, 0, fmt.Errorf("/readyz status %d (%s)", resp.StatusCode, body.Status))
	case body.Status == "degraded":
		frac := body.HealthyPeFraction
		if frac <= 0 || frac > 1 {
			frac = p.cfg.MinWeight
		}
		p.applyProbe(n, resp.StatusCode, frac, nil)
	default:
		p.applyProbe(n, resp.StatusCode, 1, nil)
	}
}

// applyProbe updates one node after a probe. err != nil (or a non-200)
// counts toward eviction; success resets the failure streak and restores
// the node at the probed weight.
func (p *Pool) applyProbe(n *node, status int, weight float64, err error) {
	n.mu.Lock()
	n.lastProbe = time.Now()
	prev := n.state
	if err != nil {
		n.failures++
		n.lastErr = err.Error()
		p.met.probeFailures.Add(1)
		if n.failures >= p.cfg.FailAfter && n.state != NodeDown {
			n.state = NodeDown
			n.weight = 0
		}
	} else {
		n.failures = 0
		n.lastErr = ""
		n.healthyFraction = weight
		if weight >= 1 {
			n.state = NodeReady
			n.weight = 1
		} else {
			n.state = NodeDegraded
			if weight < p.cfg.MinWeight {
				weight = p.cfg.MinWeight
			}
			n.weight = weight
		}
	}
	state, w := n.state, n.weight
	n.mu.Unlock()

	if state != prev {
		p.met.transitions.Add(1)
		if state == NodeDown {
			p.met.evictions.Add(1)
		}
		p.log.Info("cluster node transition",
			"node", n.url, "from", prev.String(), "to", state.String(),
			"weight", w, "probe_status", status,
			"err", errString(err))
	}
	p.ring.Set(n.url, w)
	p.met.setReadyNodes(p.readyCount())
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// readyCount counts nodes currently on the ring (ready or degraded).
func (p *Pool) readyCount() int {
	c := 0
	for _, n := range p.nodes {
		n.mu.Lock()
		if n.state != NodeDown {
			c++
		}
		n.mu.Unlock()
	}
	return c
}

// NodeView is one worker's row in the GET /cluster membership view.
type NodeView struct {
	URL             string  `json:"url"`
	State           string  `json:"state"`
	Weight          float64 `json:"weight"`
	HealthyFraction float64 `json:"healthyPeFraction"`
	Failures        int     `json:"consecutiveProbeFailures,omitempty"`
	LastError       string  `json:"lastError,omitempty"`
	RingShare       float64 `json:"ringShare"`
	Vnodes          int     `json:"vnodes"`
	Requests        int64   `json:"requests"`
	Failovers       int64   `json:"failovers"`
	LatencyP50Ms    float64 `json:"latencyP50Ms"`
	LatencyP99Ms    float64 `json:"latencyP99Ms"`
}

// Views renders the membership table, sorted by URL for stable output.
func (p *Pool) Views() []NodeView {
	occ := p.ring.Occupancy()
	vn := p.ring.Nodes()
	out := make([]NodeView, 0, len(p.nodes))
	for _, n := range p.nodes {
		n.mu.Lock()
		v := NodeView{
			URL:             n.url,
			State:           n.state.String(),
			Weight:          n.weight,
			HealthyFraction: n.healthyFraction,
			Failures:        n.failures,
			LastError:       n.lastErr,
			RingShare:       occ[n.url],
			Vnodes:          vn[n.url],
		}
		n.mu.Unlock()
		ns := p.met.nodeStats(n.url)
		v.Requests = ns.requests.Value()
		v.Failovers = ns.failovers.Value()
		v.LatencyP50Ms = ns.latency.Quantile(0.50) / 1e6
		v.LatencyP99Ms = ns.latency.Quantile(0.99) / 1e6
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}
