package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hyperap/internal/compile"
	"hyperap/internal/serve"
)

// fakeWorker is a scripted worker: it answers /readyz like a healthy
// serve node and delegates /v1/run and /v1/compile to a swappable
// handler, so relay tests can stage exact failure sequences without
// real simulator passes.
type fakeWorker struct {
	ts *httptest.Server
	h  atomic.Value // func(w http.ResponseWriter, r *http.Request)

	mu   sync.Mutex
	hits int
}

func newFakeWorker(t *testing.T, handler http.HandlerFunc) *fakeWorker {
	t.Helper()
	fw := &fakeWorker{}
	fw.h.Store(handler)
	fw.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintln(w, `{"status":"ready","healthyPEFraction":1}`)
			return
		}
		fw.mu.Lock()
		fw.hits++
		fw.mu.Unlock()
		fw.h.Load().(http.HandlerFunc)(w, r)
	}))
	t.Cleanup(fw.ts.Close)
	return fw
}

func (fw *fakeWorker) hitCount() int {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	return fw.hits
}

// okRun answers any run with a fixed correct-looking body, checksummed.
func okRun(w http.ResponseWriter, r *http.Request) {
	writeChecksummed(w, http.StatusOK, serve.RunResponse{Outputs: [][]uint64{{7}}})
}

func writeChecksummed(w http.ResponseWriter, status int, v any) {
	buf, _ := json.Marshal(v)
	buf = append(buf, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(serve.ChecksumHeader, serve.BodyChecksum(buf))
	w.WriteHeader(status)
	w.Write(buf)
}

// newRelayCoord builds a coordinator over the fake workers with fast
// probes and test-friendly timeouts; mutate cfg first via tweak.
func newRelayCoord(t *testing.T, workers []*fakeWorker, tweak func(*Config)) (*Coordinator, *httptest.Server) {
	t.Helper()
	urls := make([]string, len(workers))
	for i, fw := range workers {
		urls[i] = fw.ts.URL
	}
	cfg := Config{
		Workers:        urls,
		ProbeInterval:  50 * time.Millisecond,
		ProbeTimeout:   time.Second,
		FailAfter:      100, // probes must not evict; these tests exercise the relay, not membership
		AttemptTimeout: 5 * time.Second,
		RequestTimeout: 10 * time.Second,
	}
	if tweak != nil {
		tweak(&cfg)
	}
	c := New(cfg)
	ts := httptest.NewServer(c)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		c.Drain(ctx)
	})
	return c, ts
}

func runBody() serve.RunRequest {
	return serve.RunRequest{Source: addPrograms(1)[0].src, Inputs: [][]uint64{{1, 2}}}
}

// programOwnedBy picks a program whose ring owner is the given worker,
// making replica order deterministic despite random listen ports.
func programOwnedBy(t *testing.T, c *Coordinator, url string) addProgram {
	t.Helper()
	tgt, err := serve.Options{}.Target()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range addPrograms(32) {
		if c.Pool().Ring().Owner(compile.Fingerprint(p.src, tgt)) == url {
			return p
		}
	}
	t.Fatal("no program out of 32 hashes to the target worker (ring broken?)")
	return addProgram{}
}

// TestRelayRetryAfterHonored: a worker that answers 429 with Retry-After
// gets one same-worker retry after the advertised wait (measured through
// the injected fake sleep), rather than an immediate failover.
func TestRelayRetryAfterHonored(t *testing.T) {
	var calls atomic.Int64
	fw := newFakeWorker(t, func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "2")
			writeChecksummed(w, http.StatusTooManyRequests, serve.ErrorResponse{Error: "queue full"})
			return
		}
		okRun(w, r)
	})
	var slept []time.Duration
	var mu sync.Mutex
	c, ts := newRelayCoord(t, []*fakeWorker{fw}, func(cfg *Config) {
		cfg.sleep = func(ctx context.Context, d time.Duration) error {
			mu.Lock()
			slept = append(slept, d)
			mu.Unlock()
			return nil
		}
	})
	var rr serve.RunResponse
	code, err := postJSON(ts.URL+"/v1/run", runBody(), &rr)
	if err != nil || code != 200 {
		t.Fatalf("run: status %d err %v", code, err)
	}
	if got := fw.hitCount(); got != 2 {
		t.Fatalf("worker hit %d times, want 2 (initial + honored retry)", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(slept) != 1 || slept[0] != 2*time.Second {
		t.Fatalf("relay slept %v, want exactly [2s] from Retry-After", slept)
	}
	if got := c.Metrics().retryAfterHonored.Value(); got != 1 {
		t.Errorf("retry_after_honored = %d, want 1", got)
	}
}

// TestRelayRetryAfterSkippedWhenTooLong: a Retry-After that cannot fit
// the remaining request deadline is not slept on — the relay fails over
// (here: exhausts) instead of hanging until the deadline.
func TestRelayRetryAfterSkippedWhenTooLong(t *testing.T) {
	fw := newFakeWorker(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "3600")
		writeChecksummed(w, http.StatusServiceUnavailable, serve.ErrorResponse{Error: "draining"})
	})
	var slept atomic.Int64
	_, ts := newRelayCoord(t, []*fakeWorker{fw}, func(cfg *Config) {
		cfg.RequestTimeout = 2 * time.Second
		cfg.sleep = func(ctx context.Context, d time.Duration) error {
			slept.Add(int64(d))
			return nil
		}
	})
	code, err := postJSON(ts.URL+"/v1/run", runBody(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want the worker's 503 passed through", code)
	}
	if fw.hitCount() != 1 {
		t.Fatalf("worker hit %d times, want 1 (no same-worker retry on an unaffordable wait)", fw.hitCount())
	}
	if got := time.Duration(slept.Load()); got >= time.Hour {
		t.Fatalf("relay slept %v on an unaffordable Retry-After", got)
	}
}

// TestRelayChecksumMismatchFailsOver: a worker whose response body does
// not match its announced checksum is treated as a transport failure —
// the corrupted body is never relayed, the request fails over.
func TestRelayChecksumMismatchFailsOver(t *testing.T) {
	corrupt := func(w http.ResponseWriter, r *http.Request) {
		buf, _ := json.Marshal(serve.RunResponse{Outputs: [][]uint64{{999}}})
		buf = append(buf, '\n')
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set(serve.ChecksumHeader, serve.BodyChecksum(buf))
		// Flip a bit after checksumming: the wire view no longer matches.
		buf[10] ^= 0x01
		w.WriteHeader(http.StatusOK)
		w.Write(buf)
	}
	// The corrupting worker owns the routed key (program chosen below),
	// the clean worker is the failover replica: the first attempt must
	// fail checksum verification and the clean replica's body answers.
	bad := newFakeWorker(t, corrupt)
	good := newFakeWorker(t, okRun)
	c, ts := newRelayCoord(t, []*fakeWorker{bad, good}, nil)
	prog := programOwnedBy(t, c, bad.ts.URL)
	var rr serve.RunResponse
	code, err := postJSON(ts.URL+"/v1/run", serve.RunRequest{Source: prog.src, Inputs: prog.inputs(1)}, &rr)
	if err != nil || code != 200 {
		t.Fatalf("run: status %d err %v", code, err)
	}
	if bad.hitCount() == 0 {
		t.Fatal("corrupting owner was never attempted")
	}
	if len(rr.Outputs) != 1 || rr.Outputs[0][0] != 7 {
		t.Fatalf("outputs = %v; a corrupted body leaked through (or the clean retry was skipped)", rr.Outputs)
	}
	if got := c.Metrics().checksumFailures.Value(); got < 1 {
		t.Errorf("checksum_failures = %d, want >= 1", got)
	}
}

// TestRelayPropagatesDeadline: every forward carries X-Hyperap-Deadline
// derived from the coordinator's request budget.
func TestRelayPropagatesDeadline(t *testing.T) {
	var gotDeadline atomic.Value
	fw := newFakeWorker(t, func(w http.ResponseWriter, r *http.Request) {
		gotDeadline.Store(r.Header.Get(serve.DeadlineHeader))
		okRun(w, r)
	})
	_, ts := newRelayCoord(t, []*fakeWorker{fw}, func(cfg *Config) {
		cfg.RequestTimeout = 7 * time.Second
	})
	before := time.Now()
	code, err := postJSON(ts.URL+"/v1/run", runBody(), nil)
	if err != nil || code != 200 {
		t.Fatalf("run: status %d err %v", code, err)
	}
	v, _ := gotDeadline.Load().(string)
	if v == "" {
		t.Fatal("forward carried no deadline header")
	}
	h := http.Header{}
	h.Set(serve.DeadlineHeader, v)
	dl, ok := serve.ParseDeadline(h)
	if !ok {
		t.Fatalf("unparseable deadline header %q", v)
	}
	if until := dl.Sub(before); until <= 0 || until > 8*time.Second {
		t.Fatalf("propagated deadline %v from request start, want ~7s", until)
	}
}

// TestRelayBreakerShortCircuits: consecutive failures trip a worker's
// breaker, after which the relay stops spending attempts on it entirely.
func TestRelayBreakerShortCircuits(t *testing.T) {
	bad := newFakeWorker(t, func(w http.ResponseWriter, r *http.Request) {
		writeChecksummed(w, http.StatusBadGateway, serve.ErrorResponse{Error: "boom"})
	})
	good := newFakeWorker(t, okRun)
	c, ts := newRelayCoord(t, []*fakeWorker{bad, good}, func(cfg *Config) {
		cfg.BreakerConsecutive = 2
		cfg.BreakerOpenTimeout = time.Hour
		cfg.sleep = func(ctx context.Context, d time.Duration) error { return nil }
	})
	// Route a program the failing worker owns, so every request attempts
	// it first — until its breaker opens and short-circuits it out.
	prog := programOwnedBy(t, c, bad.ts.URL)
	for i := 0; i < 6; i++ {
		var rr serve.RunResponse
		code, err := postJSON(ts.URL+"/v1/run", serve.RunRequest{Source: prog.src, Inputs: prog.inputs(i)}, &rr)
		if err != nil || code != 200 {
			t.Fatalf("run %d: status %d err %v", i, code, err)
		}
	}
	hits := bad.hitCount()
	if hits != 2 {
		t.Fatalf("tripped worker was hit %d times, want exactly 2 (breaker must short-circuit after the trip)", hits)
	}
	if got := c.Metrics().breakerShortCircuits.Value(); got == 0 {
		t.Error("breaker never short-circuited a candidate")
	}
	if trips, _ := c.breakers.get(bad.ts.URL).Counts(); trips != 1 {
		t.Errorf("bad worker breaker trips = %d, want 1", trips)
	}
}

// TestRelayHedgeWins: with hedging on and a primary that stalls past the
// hedge delay, the spare's response answers the client and the hedge-win
// counter moves. The stalled primary's attempt is canceled, not awaited.
func TestRelayHedgeWins(t *testing.T) {
	release := make(chan struct{})
	var slowHits atomic.Int64
	slow := newFakeWorker(t, func(w http.ResponseWriter, r *http.Request) {
		slowHits.Add(1)
		select {
		case <-release:
		case <-r.Context().Done():
			return
		}
		okRun(w, r)
	})
	fast := newFakeWorker(t, func(w http.ResponseWriter, r *http.Request) {
		writeChecksummed(w, http.StatusOK, serve.RunResponse{Outputs: [][]uint64{{42}}})
	})
	defer close(release)
	c, ts := newRelayCoord(t, []*fakeWorker{slow, fast}, func(cfg *Config) {
		cfg.Hedge = true
		cfg.HedgeDelay = 30 * time.Millisecond
	})
	// Ring ownership depends on the workers' random ports, so pick a
	// program whose owner IS the slow worker — then the hedge race is
	// guaranteed, not probabilistic.
	tgt, err := serve.Options{}.Target()
	if err != nil {
		t.Fatal(err)
	}
	var prog addProgram
	found := false
	for _, p := range addPrograms(32) {
		if c.Pool().Ring().Owner(compile.Fingerprint(p.src, tgt)) == slow.ts.URL {
			prog, found = p, true
			break
		}
	}
	if !found {
		t.Fatal("no program out of 32 hashes to the slow worker (ring broken?)")
	}
	start := time.Now()
	var rr serve.RunResponse
	code, err := postJSON(ts.URL+"/v1/run", serve.RunRequest{Source: prog.src, Inputs: prog.inputs(1)}, &rr)
	if err != nil || code != 200 {
		t.Fatalf("run: status %d err %v", code, err)
	}
	if slowHits.Load() == 0 {
		t.Fatal("slow worker (the ring owner) was never attempted")
	}
	if len(rr.Outputs) != 1 || rr.Outputs[0][0] != 42 {
		t.Fatalf("outputs = %v, want the spare's {42}", rr.Outputs)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("hedged request took %v; it waited for the stalled primary", took)
	}
	if got := c.Metrics().hedges.Value(); got < 1 {
		t.Fatalf("hedges = %d, want >= 1", got)
	}
	if got := c.Metrics().hedgeWins.Value(); got < 1 {
		t.Fatalf("hedge_wins = %d, want >= 1", got)
	}
}
