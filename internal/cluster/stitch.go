package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"hyperap/internal/obs"
	"hyperap/internal/serve"
)

// This file is the coordinator's timeline stitcher: it gathers the
// per-process span sets of one trace (its own span store plus every
// worker's GET /v1/trace/{id}) and renders them as a single Perfetto
// document. A client run with ?trace=1 gets the stitched timeline
// embedded in the RunResponse's trace field — one curl, one JSON, the
// whole cluster's view of the request. It also hosts the federated
// Prometheus scrape (GET /metrics/prometheus?federate=1).

// shouldStitch reports whether this successful proxy response is a
// traced run whose embedded trace should be replaced with the stitched
// cluster timeline.
func (c *Coordinator) shouldStitch(r *http.Request, tc obs.TraceContext, resp *workerResponse) bool {
	return tc.Sampled && resp.status == http.StatusOK &&
		r.URL.Path == "/v1/run" && r.URL.Query().Get("trace") == "1"
}

// writeStitched relays a traced run response with its trace field
// replaced by the stitched cluster timeline. Any stitching failure
// degrades to the worker's own (chip-level) trace rather than failing a
// request that already succeeded.
func (c *Coordinator) writeStitched(ctx context.Context, w http.ResponseWriter, r *http.Request,
	tc obs.TraceContext, span *obs.Span, resp *workerResponse, attempted []string) {
	var run serve.RunResponse
	if err := json.Unmarshal(resp.body, &run); err != nil {
		c.log.Warn("stitch: undecodable run response; relaying as-is", "err", err)
		c.writeWorkerResponse(w, resp)
		return
	}
	procs := []obs.ProcessSpans{{
		Process: c.cfg.ProcessName,
		Spans:   span.Export(tc, "", r.Method+" "+r.URL.Path),
	}}
	procs = append(procs, c.gatherWorkerSpans(ctx, tc.TraceID, attempted)...)
	stitched, err := obs.StitchChromeTrace(tc.TraceID, procs)
	if err != nil {
		c.log.Warn("stitch: render failed; relaying as-is", "err", err)
		c.writeWorkerResponse(w, resp)
		return
	}
	run.Trace = stitched
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(resp.status)
	json.NewEncoder(w).Encode(run)
}

// gatherWorkerSpans fetches one trace's spans from each attempted worker
// node. A worker exports its spans only after its response bytes are
// written, so the first fetch can race the export — each node is retried
// briefly until it returns spans (a node that was attempted must have
// recorded at least the request's root span).
func (c *Coordinator) gatherWorkerSpans(ctx context.Context, traceID string, nodes []string) []obs.ProcessSpans {
	var procs []obs.ProcessSpans
	for _, node := range nodes {
		var dump obs.TraceDump
		for try := 0; try < 10; try++ {
			d, err := c.fetchTraceDump(ctx, node, traceID)
			if err == nil && len(d.Spans) > 0 {
				dump = d
				break
			}
			select {
			case <-ctx.Done():
				try = 10
			case <-time.After(10 * time.Millisecond):
			}
		}
		if len(dump.Spans) == 0 {
			continue
		}
		// The node URL disambiguates workers sharing a process name.
		procs = append(procs, obs.ProcessSpans{
			Process: dump.Process + " " + node,
			Spans:   dump.Spans,
		})
	}
	return procs
}

// fetchTraceDump does one GET /v1/trace/{id} round trip to one worker.
func (c *Coordinator) fetchTraceDump(ctx context.Context, node, traceID string) (obs.TraceDump, error) {
	fctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(fctx, http.MethodGet, node+"/v1/trace/"+traceID, nil)
	if err != nil {
		return obs.TraceDump{}, err
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return obs.TraceDump{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return obs.TraceDump{}, fmt.Errorf("worker trace fetch: %s", resp.Status)
	}
	var dump obs.TraceDump
	if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&dump); err != nil {
		return obs.TraceDump{}, err
	}
	return dump, nil
}

// handleTrace serves one trace from the coordinator's own span store
// (GET /v1/trace/{id}), or — with ?stitch=1 — gathers every live
// worker's spans for the trace and renders the stitched Perfetto
// timeline after the fact.
func (c *Coordinator) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		c.writeError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/trace/")
	if id == "" || strings.Contains(id, "/") {
		c.writeError(w, http.StatusBadRequest, errors.New("GET /v1/trace/{trace-id}"))
		return
	}
	if r.URL.Query().Get("stitch") != "1" {
		c.writeJSON(w, http.StatusOK, c.spans.Dump(id))
		return
	}
	procs := []obs.ProcessSpans{{Process: c.cfg.ProcessName, Spans: c.spans.ByTrace(id)}}
	var nodes []string
	for _, n := range c.pool.nodes {
		nodes = append(nodes, n.url)
	}
	procs = append(procs, c.gatherWorkerSpans(r.Context(), id, nodes)...)
	stitched, err := obs.StitchChromeTrace(id, procs)
	if err != nil {
		c.writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(stitched)
}

// handleMetricsProm serves the coordinator's Prometheus exposition; with
// ?federate=1 it appends every worker's /metrics/prometheus below its
// own, each worker sample stamped with a node="<url>" label and repeated
// HELP/TYPE comments deduplicated, so one scrape target covers the whole
// cluster.
func (c *Coordinator) handleMetricsProm(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	c.met.prom.WriteText(w)
	if r.URL.Query().Get("federate") != "1" {
		return
	}
	seenFamily := map[string]bool{}
	for _, n := range c.pool.nodes {
		c.federateNode(r.Context(), w, n.url, seenFamily)
	}
}

// federateNode streams one worker's exposition into the response,
// injecting the node label line by line.
func (c *Coordinator) federateNode(ctx context.Context, w io.Writer, node string, seenFamily map[string]bool) {
	fctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(fctx, http.MethodGet, node+"/metrics/prometheus", nil)
	if err != nil {
		return
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	sc := bufio.NewScanner(io.LimitReader(resp.Body, 8<<20))
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "#") {
			// Keep each family's HELP/TYPE once across all workers (a
			// duplicate TYPE is a grammar violation).
			fields := strings.Fields(trimmed)
			if len(fields) >= 3 && (fields[1] == "HELP" || fields[1] == "TYPE") {
				key := fields[1] + " " + fields[2]
				if seenFamily[key] {
					continue
				}
				seenFamily[key] = true
			}
			fmt.Fprintln(w, line)
			continue
		}
		if trimmed == "" {
			continue
		}
		fmt.Fprintln(w, obs.InjectPromLabel(line, "node", node))
	}
}
