package cluster

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit-breaker machine
// (DESIGN.md §15). A closed breaker passes traffic and watches outcomes;
// too many failures open it, which short-circuits the worker out of the
// candidate list without spending an attempt; after OpenTimeout one trial
// request probes the worker (half-open), and its outcome decides between
// closing again and re-opening.
type breakerState int32

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breakerConfig tunes one worker's breaker. The zero value is unusable;
// use defaultBreakerConfig (or the coordinator Config knobs) instead.
type breakerConfig struct {
	// ConsecutiveFailures opens the breaker after this many failures in a
	// row, regardless of the overall rate — the fast path for a worker
	// that just died.
	ConsecutiveFailures int
	// FailureRate opens the breaker when the failure fraction over the
	// last windowSize outcomes reaches this threshold (with at least
	// MinSamples outcomes observed) — the slow path for a worker that is
	// sick, not dead.
	FailureRate float64
	MinSamples  int
	// OpenTimeout is how long an open breaker blocks traffic before
	// letting one half-open trial through.
	OpenTimeout time.Duration

	// now is injectable for fake-clock tests; nil means time.Now.
	now func() time.Time
}

func defaultBreakerConfig() breakerConfig {
	return breakerConfig{
		ConsecutiveFailures: 5,
		FailureRate:         0.5,
		MinSamples:          10,
		OpenTimeout:         2 * time.Second,
	}
}

// breakerWindow is the rolling-outcome ring size for the rate trigger.
const breakerWindow = 32

// breaker is one worker's circuit breaker. All methods are safe for
// concurrent use; the state machine is small enough that a plain mutex
// beats cleverness.
type breaker struct {
	cfg breakerConfig

	mu          sync.Mutex
	state       breakerState
	consecutive int                 // failures in a row
	outcomes    [breakerWindow]bool // ring of recent outcomes, true = failure
	outcomeN    int                 // total outcomes recorded (ring fill + position)
	openedAt    time.Time
	trialOut    bool  // half-open: the single trial slot is taken
	trips       int64 // closed→open transitions
	cycles      int64 // half-open→closed transitions (full recovery cycles)
}

func newBreaker(cfg breakerConfig) *breaker {
	if cfg.ConsecutiveFailures <= 0 {
		cfg.ConsecutiveFailures = defaultBreakerConfig().ConsecutiveFailures
	}
	if cfg.FailureRate <= 0 {
		cfg.FailureRate = defaultBreakerConfig().FailureRate
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = defaultBreakerConfig().MinSamples
	}
	if cfg.OpenTimeout <= 0 {
		cfg.OpenTimeout = defaultBreakerConfig().OpenTimeout
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	return &breaker{cfg: cfg}
}

// Allow reports whether a request may be sent to this worker right now.
// An open breaker whose timeout has elapsed transitions to half-open and
// admits exactly one trial; further callers are blocked until the trial
// resolves (OnSuccess / OnFailure / OnCancel).
func (b *breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.cfg.now().Sub(b.openedAt) < b.cfg.OpenTimeout {
			return false
		}
		b.state = breakerHalfOpen
		b.trialOut = true
		return true
	case breakerHalfOpen:
		if b.trialOut {
			return false
		}
		b.trialOut = true
		return true
	}
	return false
}

// OnSuccess records a successful outcome. In half-open it closes the
// breaker (one full recovery cycle); in closed it resets the consecutive
// counter and feeds the rate window.
func (b *breaker) OnSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerClosed
		b.trialOut = false
		b.consecutive = 0
		b.outcomeN = 0
		b.cycles++
	case breakerClosed:
		b.consecutive = 0
		b.record(false)
	}
}

// OnFailure records a failed outcome. In half-open the trial failed, so
// the breaker re-opens for another full timeout; in closed it may trip
// either the consecutive or the rate trigger.
func (b *breaker) OnFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.openLocked()
	case breakerClosed:
		b.consecutive++
		b.record(true)
		if b.consecutive >= b.cfg.ConsecutiveFailures || b.rateTrippedLocked() {
			b.openLocked()
		}
	}
}

// OnCancel releases a half-open trial slot without judging the worker:
// the attempt was abandoned (hedge loser, caller deadline) so its outcome
// says nothing about worker health.
func (b *breaker) OnCancel() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.trialOut = false
	}
}

// State returns the current state, advancing open→half-open is NOT done
// here (only Allow takes that edge) so the metric view matches what
// traffic actually experienced.
func (b *breaker) State() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Counts returns (trips, cycles): closed→open transitions and completed
// half-open→closed recoveries.
func (b *breaker) Counts() (int64, int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips, b.cycles
}

func (b *breaker) openLocked() {
	b.state = breakerOpen
	b.openedAt = b.cfg.now()
	b.trialOut = false
	b.consecutive = 0
	b.outcomeN = 0
	b.trips++
}

func (b *breaker) record(failed bool) {
	b.outcomes[b.outcomeN%breakerWindow] = failed
	b.outcomeN++
}

func (b *breaker) rateTrippedLocked() bool {
	n := b.outcomeN
	if n > breakerWindow {
		n = breakerWindow
	}
	if b.outcomeN < b.cfg.MinSamples {
		return false
	}
	failures := 0
	for i := 0; i < n; i++ {
		if b.outcomes[i] {
			failures++
		}
	}
	return float64(failures)/float64(n) >= b.cfg.FailureRate
}

// breakerSet is the coordinator's per-worker breaker table, keyed by
// worker URL. Workers appear lazily on first use so membership changes
// need no coordination with the breaker layer.
type breakerSet struct {
	cfg breakerConfig
	mu  sync.Mutex
	m   map[string]*breaker
}

func newBreakerSet(cfg breakerConfig) *breakerSet {
	return &breakerSet{cfg: cfg, m: make(map[string]*breaker)}
}

func (s *breakerSet) get(url string) *breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[url]
	if !ok {
		b = newBreaker(s.cfg)
		s.m[url] = b
	}
	return b
}

// each visits every breaker (for metric scrapes).
func (s *breakerSet) each(fn func(url string, b *breaker)) {
	s.mu.Lock()
	urls := make([]string, 0, len(s.m))
	bs := make([]*breaker, 0, len(s.m))
	for u, b := range s.m {
		urls = append(urls, u)
		bs = append(bs, b)
	}
	s.mu.Unlock()
	for i := range urls {
		fn(urls[i], bs[i])
	}
}
