package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hyperap/internal/buildinfo"
	"hyperap/internal/compile"
	"hyperap/internal/obs"
	"hyperap/internal/serve"
)

// Config tunes the coordinator. The zero value means "use the default"
// for every field except Workers, which is required.
type Config struct {
	// Workers are the worker base URLs; also their ring identities.
	Workers []string
	// Attempts bounds how many distinct ring replicas one request may
	// try (default 3: the owner plus two failovers). Capped by the
	// number of live nodes.
	Attempts int
	// RequestTimeout is the end-to-end budget for one client request
	// across all failover attempts (default 60s).
	RequestTimeout time.Duration
	// AttemptTimeout bounds a single forward so one hung worker cannot
	// eat the whole request budget (default 20s).
	AttemptTimeout time.Duration
	// MaxBodyBytes bounds a request body (default 8 MiB, like serve).
	MaxBodyBytes int64
	// MaxResponseBytes bounds a buffered worker response (default 64
	// MiB; traced runs are large). Responses are fully buffered before
	// anything is written to the client so a mid-body worker death fails
	// over instead of corrupting the client stream.
	MaxResponseBytes int64
	// ProbeInterval / ProbeTimeout / FailAfter / MinWeight / Vnodes
	// configure the membership pool (see PoolConfig).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	FailAfter     int
	MinWeight     float64
	Vnodes        int
	// Client is the forwarding HTTP client (default: dedicated client
	// with per-host connection pooling; timeouts come from contexts).
	Client *http.Client
	// Logger receives request lines and membership transitions.
	Logger *slog.Logger
	// TraceSampleRate samples requests without an incoming Traceparent
	// into the distributed trace ([0,1]; default 0 = only explicit
	// ?trace=1 requests are traced).
	TraceSampleRate float64
	// TraceBufferSpans bounds the in-memory span ring served at
	// GET /v1/trace/{trace-id} (default obs.DefaultSpanStoreCap).
	TraceBufferSpans int
	// ProcessName labels the coordinator's track in stitched timelines
	// (default "hyperap-coord").
	ProcessName string

	// RetryBudget bounds total worker forwards one client request may
	// spend across failovers, same-worker Retry-After retries and hedges
	// (default Attempts+1: the replica walk plus one courtesy retry).
	RetryBudget int
	// Hedge enables hedged requests for idempotent POST /v1/run: when
	// the owner has not answered within HedgeDelay, a second attempt
	// fires at the next replica and the first response wins (the loser
	// is canceled). Runs are deterministic, so duplicates are safe.
	Hedge bool
	// HedgeDelay is the hedge stagger; 0 derives it from the live p95
	// forward latency (clamped to [5ms, 1s], 25ms before data exists).
	HedgeDelay time.Duration
	// BreakerOpenTimeout / BreakerConsecutive / BreakerFailureRate tune
	// the per-worker circuit breakers (defaults 2s / 5 / 0.5; see
	// DESIGN.md §15).
	BreakerOpenTimeout time.Duration
	BreakerConsecutive int
	BreakerFailureRate float64

	// sleep is the relay's injectable wait (fake-clock tests); nil means
	// a real timer bounded by the context.
	sleep func(context.Context, time.Duration) error
}

func (c Config) withDefaults() Config {
	if c.Attempts <= 0 {
		c.Attempts = 3
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = 20 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxResponseBytes <= 0 {
		c.MaxResponseBytes = 64 << 20
	}
	if c.Client == nil {
		c.Client = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 16}}
	}
	if c.Logger == nil {
		c.Logger = slog.New(discardHandler{})
	}
	if c.ProcessName == "" {
		c.ProcessName = "hyperap-coord"
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = c.Attempts + 1
	}
	return c
}

// breakerSettings folds the Config knobs into a breakerConfig.
func (c Config) breakerSettings() breakerConfig {
	cfg := defaultBreakerConfig()
	if c.BreakerOpenTimeout > 0 {
		cfg.OpenTimeout = c.BreakerOpenTimeout
	}
	if c.BreakerConsecutive > 0 {
		cfg.ConsecutiveFailures = c.BreakerConsecutive
	}
	if c.BreakerFailureRate > 0 {
		cfg.FailureRate = c.BreakerFailureRate
	}
	return cfg
}

// Coordinator is the hyperap-coord HTTP handler: it admits client
// requests, derives the program fingerprint, and forwards each request
// to the fingerprint's ring owner (failing over along the ring on worker
// faults). It holds no simulator state of its own — workers answer,
// the coordinator routes.
//
// Endpoints:
//
//	POST /v1/run       routed by fingerprint, failover on 429/5xx/timeouts
//	POST /v1/compile   routed identically, so the owner's cache warms
//	GET  /cluster      membership view + worker store-fetch rollup
//	GET  /healthz      liveness (always 200; reports draining)
//	GET  /readyz       503 draining or no live workers, else 200
//	GET  /metrics      expvar-style JSON counters
//	GET  /version      build info
type Coordinator struct {
	cfg      Config
	pool     *Pool
	met      *Metrics
	log      *slog.Logger
	mux      *http.ServeMux
	breakers *breakerSet

	// spans is the coordinator's bounded span ring: the ingress, routing
	// and per-attempt forward spans it contributes to stitched timelines
	// (GET /v1/trace/{trace-id}).
	spans *obs.SpanStore

	inflight sync.WaitGroup
	draining atomic.Bool
}

// New builds a coordinator over the configured workers and starts the
// health-probe loop. Call Drain then Close before process exit.
func New(cfg Config) *Coordinator {
	cfg = cfg.withDefaults()
	met := NewMetrics()
	c := &Coordinator{
		cfg: cfg,
		met: met,
		log: cfg.Logger,
		pool: NewPool(PoolConfig{
			Workers:       cfg.Workers,
			ProbeInterval: cfg.ProbeInterval,
			ProbeTimeout:  cfg.ProbeTimeout,
			FailAfter:     cfg.FailAfter,
			MinWeight:     cfg.MinWeight,
			Vnodes:        cfg.Vnodes,
			Client:        cfg.Client,
			Logger:        cfg.Logger,
		}, met),
	}
	c.breakers = newBreakerSet(cfg.breakerSettings())
	met.registerBreakers(c.breakers)
	c.spans = obs.NewSpanStore(cfg.ProcessName, cfg.TraceBufferSpans)
	c.mux = http.NewServeMux()
	c.mux.HandleFunc("/v1/run", c.handleProxy)
	c.mux.HandleFunc("/v1/compile", c.handleProxy)
	c.mux.HandleFunc("/cluster", c.handleCluster)
	c.mux.HandleFunc("/v1/trace/", c.handleTrace)
	c.mux.HandleFunc("/healthz", c.handleHealthz)
	c.mux.HandleFunc("/readyz", c.handleReadyz)
	c.mux.HandleFunc("/metrics", c.handleMetrics)
	c.mux.HandleFunc("/metrics/prometheus", c.handleMetricsProm)
	c.mux.HandleFunc("/version", c.handleVersion)
	met.setReadyNodes(c.pool.readyCount())
	c.pool.Start()
	return c
}

// Pool exposes the membership pool (tests, the /cluster view).
func (c *Coordinator) Pool() *Pool { return c.pool }

// Metrics exposes the coordinator metric set.
func (c *Coordinator) Metrics() *Metrics { return c.met }

// ServeHTTP is the coordinator's ingress middleware: request id, trace
// context (an incoming Traceparent is honored, otherwise a new trace
// starts here — the usual case, the coordinator being the cluster's
// front door), latency accounting, and the span export that makes the
// coordinator's half of every stitched timeline.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	id := r.Header.Get("X-Request-Id")
	if id == "" {
		id = obs.NewRequestID()
	}
	w.Header().Set("X-Request-Id", id)
	r.Header.Set("X-Request-Id", id)
	tc, parent := c.traceContext(r)
	w.Header().Set("Traceparent", tc.Traceparent())
	span := obs.StartSpan(id)
	ctx := obs.WithSpan(r.Context(), span)
	ctx = obs.WithTraceContext(ctx, tc)
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	c.mux.ServeHTTP(sw, r.WithContext(ctx))
	c.met.requestHist.Observe(time.Since(span.Start).Nanoseconds())
	c.met.recordResponse(sw.status)
	if tc.Sampled {
		c.spans.Add(span.Export(tc, parent, r.Method+" "+r.URL.Path)...)
	}
	c.log.LogAttrs(r.Context(), slog.LevelInfo, "request",
		slog.String("id", id),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", sw.status),
		slog.String("trace_id", tc.TraceID),
		slog.Duration("latency", time.Since(span.Start)))
}

// traceContext resolves the request's trace identity (the coordinator
// analog of serve's: honor an incoming header, else start a trace,
// sampled on explicit ?trace=1 or the configured rate).
func (c *Coordinator) traceContext(r *http.Request) (tc obs.TraceContext, parent string) {
	if up, ok := obs.ParseTraceparent(r.Header.Get("Traceparent")); ok {
		return up.Child(), up.SpanID
	}
	sampled := r.URL.Query().Get("trace") == "1" ||
		(c.cfg.TraceSampleRate > 0 && rand.Float64() < c.cfg.TraceSampleRate)
	return obs.NewTraceContext(sampled), ""
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Drain stops admitting new requests (503 + jittered Retry-After) and
// waits for in-flight forwards to complete or the context to expire,
// then stops the probe loop.
func (c *Coordinator) Drain(ctx context.Context) error {
	c.draining.Store(true)
	done := make(chan struct{})
	go func() {
		c.inflight.Wait()
		close(done)
	}()
	defer c.pool.Stop()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("cluster: drain: forwards still in flight: %w", ctx.Err())
	}
}

// routeView is the slice of a run/compile body the coordinator needs for
// routing. The raw bytes are forwarded verbatim — the coordinator never
// re-encodes a request, so worker-side validation (unknown fields, shape
// errors) behaves exactly as it would against a worker directly.
type routeView struct {
	Program string        `json:"program"`
	Source  string        `json:"source"`
	Options serve.Options `json:"options"`
	// Inputs is decoded shallowly (raw slots, never the values) so the
	// hot-program table can account slot counts per fingerprint.
	Inputs []json.RawMessage `json:"inputs"`
}

// routingKey derives the consistent-hash key: the program handle when
// present (it IS the fingerprint), otherwise the fingerprint of the
// inline source under its canonical target.
func routingKey(body []byte) (string, int, error) {
	var v routeView
	if err := json.Unmarshal(body, &v); err != nil {
		return "", 0, fmt.Errorf("bad request body: %w", err)
	}
	if v.Program != "" {
		return v.Program, len(v.Inputs), nil
	}
	if v.Source == "" {
		return "", 0, errors.New("program or source is required")
	}
	tgt, err := v.Options.Target()
	if err != nil {
		return "", 0, err
	}
	return compile.Fingerprint(v.Source, tgt), len(v.Inputs), nil
}

// failoverStatus reports whether a worker response should be retried on
// the next ring replica: backpressure (429), a fault-window 503, or a
// gateway-ish failure. 4xx validation errors and 404s are deterministic
// — every replica would answer the same — and pass through.
func failoverStatus(status int) bool {
	switch status {
	case http.StatusTooManyRequests,
		http.StatusBadGateway,
		http.StatusServiceUnavailable,
		http.StatusGatewayTimeout:
		return true
	}
	return false
}

// handleProxy routes one POST /v1/run or /v1/compile along the key's
// ring replicas with bounded failover.
func (c *Coordinator) handleProxy(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		c.writeError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	if c.draining.Load() {
		c.met.rejectedDraining.Add(1)
		serve.JitteredRetryAfter(w.Header())
		c.writeError(w, http.StatusServiceUnavailable, errors.New("coordinator is draining"))
		return
	}
	c.inflight.Add(1)
	defer c.inflight.Done()

	span := obs.SpanFrom(r.Context())

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes))
	if err != nil {
		c.writeError(w, http.StatusBadRequest, fmt.Errorf("reading request body: %w", err))
		return
	}
	routeStart := time.Now()
	key, slots, err := routingKey(body)
	if err != nil {
		c.writeError(w, http.StatusBadRequest, err)
		return
	}
	replicas := c.pool.Ring().Lookup(key, c.cfg.Attempts)
	span.PhaseFull("route", routeStart, time.Since(routeStart), "", "",
		map[string]string{"key": key, "replicas": strconv.Itoa(len(replicas))})
	if len(replicas) == 0 {
		c.met.rejectedNoNodes.Add(1)
		serve.JitteredRetryAfter(w.Header())
		c.writeError(w, http.StatusServiceUnavailable, errors.New("no live worker nodes"))
		return
	}

	// The client may itself carry a propagated deadline (a coordinator
	// behind another relay); intersect it with the local request budget.
	deadline := time.Now().Add(c.cfg.RequestTimeout)
	if hd, ok := serve.ParseDeadline(r.Header); ok && hd.Before(deadline) {
		deadline = hd
	}
	ctx, cancel := context.WithDeadline(r.Context(), deadline)
	defer cancel()
	c.relay(ctx, w, r, body, key, slots, replicas)
}

func respStatus(r *workerResponse) int {
	if r == nil {
		return 0
	}
	return r.status
}

// workerResponse is one fully buffered worker answer.
type workerResponse struct {
	status    int
	header    http.Header
	body      []byte
	latencyNS int64
}

// forward sends one request to one worker and buffers the whole
// response. A read error mid-body returns an error (and no response):
// the caller fails over, and the client never sees partial bytes.
func (c *Coordinator) forward(ctx context.Context, node string, r *http.Request, body []byte, traceparent string) (*workerResponse, error) {
	actx, cancel := context.WithTimeout(ctx, c.cfg.AttemptTimeout)
	defer cancel()
	url := node + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(actx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", r.Header.Get("X-Request-Id"))
	req.Header.Set("Traceparent", traceparent)
	// Propagate the end-to-end deadline (the request context's, which is
	// the client budget intersected with ours) so the worker can shed
	// work this caller will never collect (DESIGN.md §15).
	if dl, ok := ctx.Deadline(); ok {
		req.Header.Set(serve.DeadlineHeader, serve.FormatDeadline(dl))
	}
	t0 := time.Now()
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(io.LimitReader(resp.Body, c.cfg.MaxResponseBytes+1))
	if err != nil {
		return nil, fmt.Errorf("reading worker response: %w", err)
	}
	if int64(len(buf)) > c.cfg.MaxResponseBytes {
		return nil, fmt.Errorf("worker response exceeds %d bytes", c.cfg.MaxResponseBytes)
	}
	return &workerResponse{
		status:    resp.StatusCode,
		header:    resp.Header,
		body:      buf,
		latencyNS: time.Since(t0).Nanoseconds(),
	}, nil
}

// writeWorkerResponse relays a buffered worker answer to the client,
// preserving the headers that carry cross-layer meaning.
func (c *Coordinator) writeWorkerResponse(w http.ResponseWriter, r *workerResponse) {
	for _, h := range []string{"Content-Type", "Retry-After", serve.ChecksumHeader} {
		if v := r.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(r.status)
	w.Write(r.body)
}

// storeRollup aggregates the workers' program-store counters into the
// cluster-wide fetch hit-rate: how often a node avoided recompiling by
// hitting its disk store or fetching the record from a peer.
type storeRollup struct {
	Compiles   int64   `json:"compiles"`
	StoreHits  int64   `json:"storeHits"`
	PeerHits   int64   `json:"peerHits"`
	PeerMisses int64   `json:"peerMisses"`
	PeerErrors int64   `json:"peerErrors"`
	FetchRate  float64 `json:"fetchHitRate"` // (storeHits+peerHits) / (storeHits+peerHits+compiles)
}

// scrapeStores polls every live worker's /metrics (best effort, bounded)
// and sums the store counters. Only called on demand from GET /cluster.
func (c *Coordinator) scrapeStores(ctx context.Context) storeRollup {
	var mu sync.Mutex
	var roll storeRollup
	var wg sync.WaitGroup
	for _, n := range c.pool.nodes {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			sctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			defer cancel()
			req, err := http.NewRequestWithContext(sctx, http.MethodGet, url+"/metrics", nil)
			if err != nil {
				return
			}
			resp, err := c.cfg.Client.Do(req)
			if err != nil || resp.StatusCode != http.StatusOK {
				if resp != nil {
					resp.Body.Close()
				}
				return
			}
			defer resp.Body.Close()
			var m map[string]any
			if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&m); err != nil {
				return
			}
			get := func(k string) int64 {
				v, _ := m[k].(float64)
				return int64(v)
			}
			mu.Lock()
			roll.Compiles += get("compiles")
			roll.StoreHits += get("store_program_hits")
			roll.PeerHits += get("store_peer_hits")
			roll.PeerMisses += get("store_peer_misses")
			roll.PeerErrors += get("store_peer_errors")
			mu.Unlock()
		}(n.url)
	}
	wg.Wait()
	if tot := roll.StoreHits + roll.PeerHits + roll.Compiles; tot > 0 {
		roll.FetchRate = float64(roll.StoreHits+roll.PeerHits) / float64(tot)
	}
	return roll
}

// handleCluster renders the membership + routing view: per-node state,
// weight, ring share and latency rollups, plus the cluster-wide program
// store fetch rate scraped live from the workers.
func (c *Coordinator) handleCluster(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		c.writeError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	c.writeJSON(w, http.StatusOK, map[string]any{
		"nodes":      c.pool.Views(),
		"store":      c.scrapeStores(r.Context()),
		"draining":   c.draining.Load(),
		"attempts":   c.cfg.Attempts,
		"readyNodes": c.met.readyNodes.Value(),
	})
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body := map[string]any{"status": "ok"}
	if c.draining.Load() {
		body["status"] = "draining"
	}
	c.writeJSON(w, http.StatusOK, body)
}

// handleReadyz: the coordinator is ready when it is not draining and at
// least one worker is on the ring. Load balancers in front of several
// coordinators should watch this.
func (c *Coordinator) handleReadyz(w http.ResponseWriter, r *http.Request) {
	ready := int(c.met.readyNodes.Value())
	switch {
	case c.draining.Load():
		serve.JitteredRetryAfter(w.Header())
		c.writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
	case ready == 0:
		serve.JitteredRetryAfter(w.Header())
		c.writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "no live workers"})
	default:
		c.writeJSON(w, http.StatusOK, map[string]any{"status": "ready", "readyNodes": ready})
	}
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	io.WriteString(w, c.met.root.String())
	io.WriteString(w, "\n")
}

func (c *Coordinator) handleVersion(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(buildinfo.Get().JSON())
}

func (c *Coordinator) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (c *Coordinator) writeError(w http.ResponseWriter, status int, err error) {
	c.writeJSON(w, status, serve.ErrorResponse{Error: err.Error()})
}
