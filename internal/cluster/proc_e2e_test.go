package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"hyperap/internal/obs"
	"hyperap/internal/serve"
)

// TestClusterProcE2E is the multi-node smoke against real processes:
// build the actual hyperap-serve and hyperap-coord binaries, run three
// workers plus a coordinator, drive mixed-fingerprint load, SIGKILL one
// worker mid-stream, and require zero wrong results with every request
// eventually answered 200. The post-kill /cluster and /metrics views
// plus the measured failover time-to-recovery are written to
// $HYPERAP_CLUSTER_METRICS as a CI artifact.
//
// Gated behind HYPERAP_CLUSTER_E2E=1 (it builds binaries and runs
// ~10s of wall clock); `make cluster-e2e` is the entry point.
func TestClusterProcE2E(t *testing.T) {
	if os.Getenv("HYPERAP_CLUSTER_E2E") == "" {
		t.Skip("set HYPERAP_CLUSTER_E2E=1 (or run `make cluster-e2e`) to run the multi-process cluster smoke")
	}
	bin := t.TempDir()
	for _, cmd := range []string{"hyperap-serve", "hyperap-coord"} {
		build := exec.Command("go", "build", "-o", filepath.Join(bin, cmd), "./cmd/"+cmd)
		build.Dir = "../.."
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", cmd, err, out)
		}
	}

	// Three worker addresses plus the coordinator's, all on loopback.
	addrs := make([]string, 4)
	urls := make([]string, 4)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("127.0.0.1:%d", freePort(t))
		urls[i] = "http://" + addrs[i]
	}
	workerURLs := urls[:3]

	procs := make([]*exec.Cmd, 0, 4)
	start := func(name string, args ...string) *exec.Cmd {
		cmd := exec.Command(filepath.Join(bin, name), args...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting %s: %v", name, err)
		}
		procs = append(procs, cmd)
		return cmd
	}
	t.Cleanup(func() {
		for _, p := range procs {
			if p.Process != nil {
				p.Process.Kill()
				p.Wait()
			}
		}
	})

	workers := make([]*exec.Cmd, 3)
	for i := 0; i < 3; i++ {
		var peers []string
		for j, u := range workerURLs {
			if j != i {
				peers = append(peers, u)
			}
		}
		workers[i] = start("hyperap-serve",
			"-addr", addrs[i],
			"-state-dir", t.TempDir(),
			"-snapshot-interval=-1ns",
			"-peers", strings.Join(peers, ","))
	}
	for _, u := range workerURLs {
		waitReady(t, u)
	}
	start("hyperap-coord",
		"-addr", addrs[3],
		"-workers", strings.Join(workerURLs, ","),
		"-probe-interval", "100ms",
		"-fail-after", "2")
	coordURL := urls[3]
	waitReady(t, coordURL)

	progs := addPrograms(6)

	// Warm every program through the coordinator so the kill hits a
	// cluster with hot caches and populated stores.
	for pi, p := range progs {
		in := p.inputs(pi)
		var rr serve.RunResponse
		code, err := postJSON(coordURL+"/v1/run", serve.RunRequest{Source: p.src, Inputs: in}, &rr)
		if err != nil || code != 200 {
			t.Fatalf("warmup %d: status %d err %v", pi, code, err)
		}
		if want := p.expected(in); !reflect.DeepEqual(rr.Outputs, want) {
			t.Fatalf("warmup %d: got %v want %v", pi, rr.Outputs, want)
		}
	}

	// One traced request through the live cluster: the response must
	// embed ONE stitched Perfetto document whose slices span at least two
	// process tracks (coordinator ingress/route/forward + the owning
	// worker's queue/run/chip spans), joined by the trace id the
	// coordinator echoed in its Traceparent header. The document is
	// written to $HYPERAP_CLUSTER_TRACE as a CI artifact.
	{
		p := progs[0]
		in := p.inputs(99)
		body, _ := json.Marshal(serve.RunRequest{Source: p.src, Inputs: in})
		resp, err := http.Post(coordURL+"/v1/run?trace=1", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("traced run: %v", err)
		}
		htc, okTP := obs.ParseTraceparent(resp.Header.Get("Traceparent"))
		var rr serve.RunResponse
		decErr := json.NewDecoder(resp.Body).Decode(&rr)
		resp.Body.Close()
		if resp.StatusCode != 200 || decErr != nil {
			t.Fatalf("traced run: status %d decode err %v", resp.StatusCode, decErr)
		}
		if !okTP {
			t.Fatalf("traced run: unparseable Traceparent %q", resp.Header.Get("Traceparent"))
		}
		if want := p.expected(in); !reflect.DeepEqual(rr.Outputs, want) {
			t.Fatalf("traced run: got %v want %v", rr.Outputs, want)
		}
		meta, slices, other := decodeChrome(t, rr.Trace)
		if got, _ := other["traceId"].(string); got != htc.TraceID {
			t.Fatalf("stitched traceId %q != header trace id %q", got, htc.TraceID)
		}
		if len(meta) < 2 {
			t.Fatalf("stitched trace has %d process tracks, want >= 2: %v", len(meta), meta)
		}
		if len(slices) < 5 {
			t.Fatalf("stitched trace has only %d slices", len(slices))
		}
		if path := os.Getenv("HYPERAP_CLUSTER_TRACE"); path != "" {
			if err := os.WriteFile(path, append(rr.Trace, '\n'), 0o644); err != nil {
				t.Fatalf("writing %s: %v", path, err)
			}
			t.Logf("wrote stitched cluster trace artifact to %s (%d tracks, %d slices)",
				path, len(meta), len(slices))
		}
	}

	// Every binary's Prometheus exposition — each worker, the
	// coordinator, and the coordinator's federated view — must parse
	// under the text exposition grammar.
	targets := []string{
		coordURL + "/metrics/prometheus",
		coordURL + "/metrics/prometheus?federate=1",
	}
	for _, u := range workerURLs {
		targets = append(targets, u+"/metrics/prometheus")
	}
	for _, target := range targets {
		resp, err := http.Get(target)
		if err != nil {
			t.Fatalf("scrape %s: %v", target, err)
		}
		raw, readErr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 || readErr != nil {
			t.Fatalf("scrape %s: status %d err %v", target, resp.StatusCode, readErr)
		}
		if err := obs.LintPromText(bytes.NewReader(raw)); err != nil {
			t.Fatalf("exposition from %s fails lint: %v", target, err)
		}
	}

	// Sustained mixed load; every completed request is either a correct
	// 200 or a retried transient — never a wrong answer.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	loadErrs := make(chan error, 256)
	var mu sync.Mutex
	var firstOKAfterKill time.Time
	var killedAt time.Time
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for round := 0; ; round++ {
				select {
				case <-stop:
					return
				default:
				}
				p := progs[(c+round)%len(progs)]
				in := p.inputs(round)
				want := p.expected(in)
				deadline := time.Now().Add(30 * time.Second)
				for {
					var rr serve.RunResponse
					code, err := postJSON(coordURL+"/v1/run", serve.RunRequest{Source: p.src, Inputs: in}, &rr)
					if code == 200 && err == nil {
						if !reflect.DeepEqual(rr.Outputs, want) {
							loadErrs <- fmt.Errorf("WRONG RESULT: got %v want %v", rr.Outputs, want)
						}
						mu.Lock()
						if !killedAt.IsZero() && firstOKAfterKill.IsZero() {
							firstOKAfterKill = time.Now()
						}
						mu.Unlock()
						break
					}
					if time.Now().After(deadline) {
						loadErrs <- fmt.Errorf("request never succeeded: status %d err %v", code, err)
						break
					}
					time.Sleep(5 * time.Millisecond)
				}
			}
		}(c)
	}

	time.Sleep(300 * time.Millisecond) // load in flight
	mu.Lock()
	killedAt = time.Now()
	mu.Unlock()
	if err := workers[0].Process.Kill(); err != nil { // SIGKILL, no drain
		t.Fatalf("killing worker 0: %v", err)
	}
	workers[0].Wait()

	// Keep the load running long enough for probes to evict the dead
	// node and for the survivors to absorb its ring ranges.
	time.Sleep(2 * time.Second)
	close(stop)
	wg.Wait()
	close(loadErrs)
	for err := range loadErrs {
		t.Error(err)
	}

	mu.Lock()
	ttr := firstOKAfterKill.Sub(killedAt)
	mu.Unlock()
	if firstOKAfterKill.IsZero() {
		t.Fatal("no successful request observed after the kill")
	}
	t.Logf("failover time-to-recovery: %v", ttr)

	// The coordinator now reports one node down and still serves.
	var view map[string]any
	if code, err := getJSON(coordURL+"/cluster", &view); err != nil || code != 200 {
		t.Fatalf("/cluster: status %d err %v", code, err)
	}
	var met map[string]any
	if code, err := getJSON(coordURL+"/metrics", &met); err != nil || code != 200 {
		t.Fatalf("/metrics: status %d err %v", code, err)
	}
	if fo, _ := met["failovers"].(float64); fo == 0 {
		t.Error("coordinator recorded no failovers despite a SIGKILLed worker")
	}

	if path := os.Getenv("HYPERAP_CLUSTER_METRICS"); path != "" {
		artifact := map[string]any{
			"schema":              "hyperap-cluster-smoke/v1",
			"failover_ttr_ms":     float64(ttr.Nanoseconds()) / 1e6,
			"cluster":             view,
			"coordinator_metrics": met,
		}
		buf, err := json.MarshalIndent(artifact, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatalf("writing %s: %v", path, err)
		}
		t.Logf("wrote cluster metrics artifact to %s", path)
	}
}

// freePort grabs an ephemeral loopback port. The listener is closed
// before the process binds it, so a collision is possible but wildly
// unlikely within one test run.
func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port
}

// waitReady polls /readyz until the process answers 200.
func waitReady(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			if resp.StatusCode == 200 {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never became ready: %v", base, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
