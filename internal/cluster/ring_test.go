package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// ringKeys generates deterministic fingerprint-shaped keys.
func ringKeys(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("sha256:%064x", rng.Uint64())
	}
	return keys
}

func ringNodes(n int) []string {
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("http://10.0.0.%d:8763", i+1)
	}
	return nodes
}

// TestRingBalance pins the load-balance property: with the default vnode
// count, every node's share of a large seeded key population stays
// within a modest factor of the fair share, for several cluster sizes.
func TestRingBalance(t *testing.T) {
	const keys = 20000
	for _, n := range []int{2, 3, 5, 8} {
		r := NewRing(0)
		nodes := ringNodes(n)
		for _, nd := range nodes {
			r.Set(nd, 1)
		}
		counts := map[string]int{}
		for _, k := range ringKeys(keys, 42) {
			owner := r.Owner(k)
			if owner == "" {
				t.Fatalf("n=%d: empty owner", n)
			}
			counts[owner]++
		}
		mean := float64(keys) / float64(n)
		for nd, c := range counts {
			ratio := float64(c) / mean
			if ratio < 0.55 || ratio > 1.6 {
				t.Errorf("n=%d: node %s owns %d keys (%.2fx fair share), outside [0.55, 1.6]",
					n, nd, c, ratio)
			}
		}
		if len(counts) != n {
			t.Errorf("n=%d: only %d nodes own keys", n, len(counts))
		}
		// Occupancy (arc shares) must agree with the sampled distribution
		// and sum to 1.
		sum := 0.0
		for _, share := range r.Occupancy() {
			sum += share
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("n=%d: occupancy sums to %v, want 1", n, sum)
		}
	}
}

// TestRingMinimalMovementJoin pins the defining consistent-hashing
// property: adding a node moves keys only TO the new node (no key
// shuffles between survivors), and the moved fraction is close to the
// fair share 1/(n+1).
func TestRingMinimalMovementJoin(t *testing.T) {
	const n, keyCount = 4, 10000
	r := NewRing(0)
	for _, nd := range ringNodes(n) {
		r.Set(nd, 1)
	}
	keys := ringKeys(keyCount, 7)
	before := make(map[string]string, keyCount)
	for _, k := range keys {
		before[k] = r.Owner(k)
	}

	joined := "http://10.0.0.99:8763"
	r.Set(joined, 1)
	moved := 0
	for _, k := range keys {
		after := r.Owner(k)
		if after == before[k] {
			continue
		}
		moved++
		if after != joined {
			t.Fatalf("key %s moved %s → %s, not to the joining node", k, before[k], after)
		}
	}
	fair := float64(keyCount) / float64(n+1)
	if f := float64(moved); f < 0.5*fair || f > 1.7*fair {
		t.Errorf("join moved %d keys, want near fair share %.0f", moved, fair)
	}
}

// TestRingMinimalMovementLeave: removing a node moves only the keys it
// owned; every other key keeps its owner.
func TestRingMinimalMovementLeave(t *testing.T) {
	const n, keyCount = 5, 10000
	r := NewRing(0)
	nodes := ringNodes(n)
	for _, nd := range nodes {
		r.Set(nd, 1)
	}
	keys := ringKeys(keyCount, 1234)
	before := make(map[string]string, keyCount)
	for _, k := range keys {
		before[k] = r.Owner(k)
	}

	gone := nodes[2]
	r.Remove(gone)
	for _, k := range keys {
		after := r.Owner(k)
		if after == gone {
			t.Fatalf("key %s still owned by removed node", k)
		}
		if before[k] != gone && after != before[k] {
			t.Fatalf("key %s moved %s → %s though its owner stayed up", k, before[k], after)
		}
	}
}

// TestRingWeightReduction: halving a node's weight only moves keys away
// from that node (its vnode positions are a pure function of index, so
// survivors' arcs never shuffle among themselves), and its share drops
// roughly proportionally.
func TestRingWeightReduction(t *testing.T) {
	const n, keyCount = 4, 12000
	r := NewRing(0)
	nodes := ringNodes(n)
	for _, nd := range nodes {
		r.Set(nd, 1)
	}
	keys := ringKeys(keyCount, 99)
	before := make(map[string]string, keyCount)
	degraded := nodes[1]
	ownedBefore := 0
	for _, k := range keys {
		before[k] = r.Owner(k)
		if before[k] == degraded {
			ownedBefore++
		}
	}

	r.Set(degraded, 0.5)
	ownedAfter := 0
	for _, k := range keys {
		after := r.Owner(k)
		if after == degraded {
			ownedAfter++
		}
		if before[k] != degraded && after != before[k] {
			t.Fatalf("key %s moved %s → %s when only %s was reweighted",
				k, before[k], after, degraded)
		}
	}
	if ownedAfter >= ownedBefore {
		t.Fatalf("weight 0.5 did not shed load: %d → %d keys", ownedBefore, ownedAfter)
	}
	if ratio := float64(ownedAfter) / float64(ownedBefore); ratio < 0.25 || ratio > 0.8 {
		t.Errorf("weight 0.5 kept %.2f of the node's keys, want roughly half", ratio)
	}
}

// TestRingLookupReplicas: replica lists are distinct, start with the
// owner, and are stable across calls.
func TestRingLookupReplicas(t *testing.T) {
	r := NewRing(0)
	nodes := ringNodes(5)
	for _, nd := range nodes {
		r.Set(nd, 1)
	}
	for _, k := range ringKeys(200, 5) {
		reps := r.Lookup(k, 3)
		if len(reps) != 3 {
			t.Fatalf("lookup returned %d replicas, want 3", len(reps))
		}
		if reps[0] != r.Owner(k) {
			t.Fatalf("replica 0 %s is not the owner %s", reps[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, nd := range reps {
			if seen[nd] {
				t.Fatalf("duplicate replica %s for key %s", nd, k)
			}
			seen[nd] = true
		}
		again := r.Lookup(k, 3)
		for i := range reps {
			if reps[i] != again[i] {
				t.Fatalf("lookup unstable for %s: %v vs %v", k, reps, again)
			}
		}
	}
	// Asking for more replicas than nodes returns every node once.
	if got := len(r.Lookup("sha256:abc", 10)); got != 5 {
		t.Fatalf("lookup(max=10) returned %d nodes, want 5", got)
	}
	// Empty ring returns nil.
	empty := NewRing(0)
	if empty.Lookup("k", 2) != nil {
		t.Fatal("empty ring lookup should be nil")
	}
}
