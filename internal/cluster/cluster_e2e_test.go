package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hyperap/internal/compile"
	"hyperap/internal/serve"
)

// lateHandler lets an httptest server come up before its real handler
// exists: the worker servers need each other's URLs as Peers, so the
// listeners are created first and the serve.Server instances swapped in
// after.
type lateHandler struct{ h atomic.Value }

func (l *lateHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h, ok := l.h.Load().(http.Handler); ok {
		h.ServeHTTP(w, r)
		return
	}
	http.Error(w, "not ready", http.StatusServiceUnavailable)
}

// addProgram is one distinct-fingerprint workload program: adders at
// different widths compile to different programs (and hash to different
// ring owners).
type addProgram struct {
	src   string
	width int
}

func addPrograms(n int) []addProgram {
	out := make([]addProgram, n)
	for i := range out {
		w := 3 + i
		out[i] = addProgram{
			src: fmt.Sprintf(
				"unsigned int(%d) main(unsigned int(%d) a, unsigned int(%d) b){ return a + b; }",
				w+1, w, w),
			width: w,
		}
	}
	return out
}

func (p addProgram) inputs(seed int) [][]uint64 {
	mask := uint64(1)<<p.width - 1
	in := make([][]uint64, 4)
	for i := range in {
		in[i] = []uint64{uint64(seed+i) & mask, uint64(seed*3+i) & mask}
	}
	return in
}

func (p addProgram) expected(in [][]uint64) [][]uint64 {
	mask := uint64(1)<<(p.width+1) - 1
	out := make([][]uint64, len(in))
	for i, row := range in {
		out[i] = []uint64{(row[0] + row[1]) & mask}
	}
	return out
}

// testCluster is 3 workers (each with durable state and the other two
// as store peers) behind one coordinator.
type testCluster struct {
	workers []*serve.Server
	tss     []*httptest.Server
	urls    []string
	coord   *Coordinator
	cts     *httptest.Server
}

func newTestCluster(t *testing.T, n int) *testCluster {
	t.Helper()
	tc := &testCluster{}
	late := make([]*lateHandler, n)
	for i := 0; i < n; i++ {
		late[i] = &lateHandler{}
		ts := httptest.NewServer(late[i])
		tc.tss = append(tc.tss, ts)
		tc.urls = append(tc.urls, ts.URL)
	}
	for i := 0; i < n; i++ {
		var peers []string
		for j, u := range tc.urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		s := serve.New(serve.Config{
			CoalesceWindow:   time.Millisecond,
			StateDir:         t.TempDir(),
			SnapshotInterval: -1,
			Peers:            peers,
		})
		tc.workers = append(tc.workers, s)
		late[i].h.Store(http.Handler(s))
	}
	tc.coord = New(Config{
		Workers:        tc.urls,
		ProbeInterval:  50 * time.Millisecond,
		ProbeTimeout:   time.Second,
		FailAfter:      2,
		AttemptTimeout: 10 * time.Second,
	})
	tc.cts = httptest.NewServer(tc.coord)
	return tc
}

func (tc *testCluster) close(t *testing.T) {
	tc.cts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	tc.coord.Drain(ctx)
	for i, s := range tc.workers {
		if s != nil {
			s.Drain(ctx)
		}
		tc.tss[i].Close()
	}
}

// postJSON posts a body and decodes the response; returns status.
func postJSON(url string, req, into any) (int, error) {
	buf, err := json.Marshal(req)
	if err != nil {
		return 0, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return 0, err
	}
	if resp.StatusCode == http.StatusOK && into != nil {
		if err := json.Unmarshal(body, into); err != nil {
			return resp.StatusCode, fmt.Errorf("decoding %q: %w", body, err)
		}
	}
	return resp.StatusCode, nil
}

// metric reads one numeric counter from an expvar-style /metrics body.
func metric(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics %s: %v", base, err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("metrics decode: %v", err)
	}
	v, _ := m[name].(float64)
	return v
}

// TestClusterE2E is the in-process acceptance gate for the distributed
// layer: 3 durable workers behind a fingerprint-routing coordinator.
// It pins (a) correctness of every routed response, (b) fingerprint
// affinity — the cluster compiles each distinct program exactly once,
// (c) the peer store fetch — a non-owner asked directly serves the
// program without recompiling, and (d) failover — killing a worker
// mid-load yields zero wrong results and eventual 200s for everything,
// with the probes evicting the dead node from the ring.
func TestClusterE2E(t *testing.T) {
	tc := newTestCluster(t, 3)
	defer tc.close(t)
	progs := addPrograms(6)

	// Phase 1: mixed-fingerprint load through the coordinator.
	var wg sync.WaitGroup
	errs := make(chan error, len(progs)*4)
	for pi, p := range progs {
		for c := 0; c < 4; c++ {
			wg.Add(1)
			go func(p addProgram, seed int) {
				defer wg.Done()
				in := p.inputs(seed)
				var rr serve.RunResponse
				code, err := postJSON(tc.cts.URL+"/v1/run", serve.RunRequest{Source: p.src, Inputs: in}, &rr)
				if err != nil || code != 200 {
					errs <- fmt.Errorf("run status %d err %v", code, err)
					return
				}
				if want := p.expected(in); !reflect.DeepEqual(rr.Outputs, want) {
					errs <- fmt.Errorf("wrong result: got %v want %v", rr.Outputs, want)
				}
			}(p, pi*10+c)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Fingerprint affinity: across the whole cluster each distinct
	// program compiled exactly once (requests for one fingerprint always
	// landed on its ring owner).
	var compiles float64
	for _, u := range tc.urls {
		compiles += metric(t, u, "compiles")
	}
	if int(compiles) != len(progs) {
		t.Fatalf("cluster ran %v compiles for %d distinct programs (affinity broken)", compiles, len(progs))
	}

	// Phase 2: peer store fetch. Ask a NON-owner worker directly for a
	// program its sibling owns: it must answer correctly without
	// compiling (it fetches the self-verifying record from the owner).
	tgt, err := serve.Options{}.Target()
	if err != nil {
		t.Fatal(err)
	}
	p0 := progs[0]
	owner := tc.coord.Pool().Ring().Owner(compile.Fingerprint(p0.src, tgt))
	nonOwner := ""
	for _, u := range tc.urls {
		if u != owner {
			nonOwner = u
			break
		}
	}
	peerHitsBefore := metric(t, nonOwner, "store_peer_hits")
	in := p0.inputs(77)
	var rr serve.RunResponse
	code, err := postJSON(nonOwner+"/v1/run", serve.RunRequest{Source: p0.src, Inputs: in}, &rr)
	if err != nil || code != 200 {
		t.Fatalf("direct non-owner run: status %d err %v", code, err)
	}
	if want := p0.expected(in); !reflect.DeepEqual(rr.Outputs, want) {
		t.Fatalf("peer-fetched program computed %v, want %v", rr.Outputs, want)
	}
	if got := metric(t, nonOwner, "store_peer_hits"); got != peerHitsBefore+1 {
		t.Fatalf("store_peer_hits = %v, want %v (non-owner should have fetched, not compiled)", got, peerHitsBefore+1)
	}
	var compilesAfter float64
	for _, u := range tc.urls {
		compilesAfter += metric(t, u, "compiles")
	}
	if compilesAfter != compiles {
		t.Fatalf("peer fetch recompiled: compiles %v → %v", compiles, compilesAfter)
	}

	// Phase 3: kill a worker mid-load. Every request must still end in a
	// correct 200 (failover to the next replica; brief 503s are retried
	// here like a real client would).
	victimIdx := 0
	for i, u := range tc.urls {
		if u == owner {
			victimIdx = i
		}
	}
	stop := make(chan struct{})
	var loadWG sync.WaitGroup
	loadErrs := make(chan error, 64)
	for c := 0; c < 4; c++ {
		loadWG.Add(1)
		go func(c int) {
			defer loadWG.Done()
			for round := 0; ; round++ {
				select {
				case <-stop:
					return
				default:
				}
				p := progs[(c+round)%len(progs)]
				in := p.inputs(round)
				want := p.expected(in)
				deadline := time.Now().Add(20 * time.Second)
				for {
					var rr serve.RunResponse
					code, err := postJSON(tc.cts.URL+"/v1/run", serve.RunRequest{Source: p.src, Inputs: in}, &rr)
					if code == 200 && err == nil {
						if !reflect.DeepEqual(rr.Outputs, want) {
							loadErrs <- fmt.Errorf("WRONG RESULT after kill: got %v want %v", rr.Outputs, want)
						}
						break
					}
					if time.Now().After(deadline) {
						loadErrs <- fmt.Errorf("request never succeeded: status %d err %v", code, err)
						break
					}
					time.Sleep(10 * time.Millisecond)
				}
			}
		}(c)
	}
	time.Sleep(100 * time.Millisecond) // let the load get going
	tc.tss[victimIdx].CloseClientConnections()
	tc.tss[victimIdx].Close()
	tc.workers[victimIdx] = nil // close(t) must not drain a dead server's listener

	// Wait for the probes to evict the dead node from the ring.
	evictDeadline := time.Now().Add(10 * time.Second)
	for {
		if tc.coord.Pool().Ring().Owner(compile.Fingerprint(p0.src, tgt)) != owner {
			break
		}
		if time.Now().After(evictDeadline) {
			t.Fatal("dead worker never evicted from the ring")
		}
		time.Sleep(20 * time.Millisecond)
	}
	time.Sleep(200 * time.Millisecond) // more post-eviction load
	close(stop)
	loadWG.Wait()
	close(loadErrs)
	for err := range loadErrs {
		t.Fatal(err)
	}

	// The coordinator observed the failure: failovers happened, the node
	// is marked down, and /readyz still reports ready with 2 live nodes.
	if tc.coord.Metrics().failovers.Value() == 0 {
		t.Error("no failovers recorded despite a killed worker")
	}
	var view struct {
		Nodes []NodeView `json:"nodes"`
	}
	if code, err := getJSON(tc.cts.URL+"/cluster", &view); err != nil || code != 200 {
		t.Fatalf("/cluster: status %d err %v", code, err)
	}
	down := 0
	for _, nv := range view.Nodes {
		if nv.State == "down" {
			down++
		}
	}
	if down != 1 {
		t.Errorf("cluster view reports %d down nodes, want 1: %+v", down, view.Nodes)
	}
	var ready struct {
		Status     string `json:"status"`
		ReadyNodes int    `json:"readyNodes"`
	}
	if code, err := getJSON(tc.cts.URL+"/readyz", &ready); err != nil || code != 200 {
		t.Fatalf("coordinator /readyz after kill: status %d err %v", code, err)
	}
	if ready.ReadyNodes != 2 {
		t.Errorf("readyNodes = %d, want 2", ready.ReadyNodes)
	}
}

func getJSON(url string, into any) (int, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && into != nil {
		return resp.StatusCode, json.NewDecoder(resp.Body).Decode(into)
	}
	return resp.StatusCode, nil
}

// TestCoordinatorVersionAndDrain covers the rolling-upgrade surface: the
// /version endpoint answers with build info, and a draining coordinator
// rejects new work with 503 + a jittered Retry-After in 1..3s.
func TestCoordinatorVersionAndDrain(t *testing.T) {
	tc := newTestCluster(t, 1)
	defer tc.close(t)

	var v struct {
		Version   string `json:"version"`
		GoVersion string `json:"goVersion"`
	}
	if code, err := getJSON(tc.cts.URL+"/version", &v); err != nil || code != 200 {
		t.Fatalf("/version: status %d err %v", code, err)
	}
	if v.Version == "" || v.GoVersion == "" {
		t.Fatalf("empty version info: %+v", v)
	}
	// Workers answer /version too.
	if code, err := getJSON(tc.urls[0]+"/version", &v); err != nil || code != 200 {
		t.Fatalf("worker /version: status %d err %v", code, err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := tc.coord.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	buf, _ := json.Marshal(serve.RunRequest{Source: addPrograms(1)[0].src, Inputs: [][]uint64{{1, 2}}})
	resp, err := http.Post(tc.cts.URL+"/v1/run", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining coordinator answered %d, want 503", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	if ra != "1" && ra != "2" && ra != "3" {
		t.Fatalf("Retry-After = %q, want a jittered value in 1..3", ra)
	}
}
