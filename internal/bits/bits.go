// Package bits provides the low-level bit and ternary-state vocabulary
// shared by the TCAM substrate, the encoding layer and the machine models.
//
// Two alphabets appear throughout the Hyper-AP paper and therefore
// throughout this repository:
//
//   - stored TCAM states: 0, 1 and the don't-care state X (Fig. 4b);
//   - search-key inputs: 0, 1, the Z input that matches only X (Fig. 4c),
//     and "masked off" (the mask register bit is 0, so the position takes
//     no part in the search or write).
//
// The package also provides a dense bit vector used for tag registers and
// data registers.
package bits

import "fmt"

// State is the content of one TCAM bit (two RRAM cells, one in each of the
// PE's crossbar arrays).
type State uint8

const (
	S0 State = iota // stores logic 0
	S1              // stores logic 1
	SX              // don't care: matches both 0 and 1 inputs
)

// String returns the figure notation used in the paper: "0", "1", "X".
func (s State) String() string {
	switch s {
	case S0:
		return "0"
	case S1:
		return "1"
	case SX:
		return "X"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Valid reports whether s is one of the three defined TCAM states.
func (s State) Valid() bool { return s <= SX }

// Key is one position of the ternary key register combined with its mask
// bit. KDC (don't care / masked) positions participate in neither search
// nor write.
type Key uint8

const (
	K0  Key = iota // match stored 0 or X; write 0
	K1             // match stored 1 or X; write 1
	KZ             // match stored X only; write X
	KDC            // masked off (mask register bit = 0)
)

// String returns the paper's notation: "0", "1", "Z", "-".
func (k Key) String() string {
	switch k {
	case K0:
		return "0"
	case K1:
		return "1"
	case KZ:
		return "Z"
	case KDC:
		return "-"
	}
	return fmt.Sprintf("Key(%d)", uint8(k))
}

// Valid reports whether k is one of the four defined key inputs.
func (k Key) Valid() bool { return k <= KDC }

// Match implements the single-position match rule of the Hyper-AP abstract
// machine model (Fig. 4b-c):
//
//	key 0 matches stored 0 and X,
//	key 1 matches stored 1 and X,
//	key Z matches stored X only,
//	a masked position matches everything.
func (k Key) Match(s State) bool {
	switch k {
	case K0:
		return s == S0 || s == SX
	case K1:
		return s == S1 || s == SX
	case KZ:
		return s == SX
	case KDC:
		return true
	}
	return false
}

// WriteState is the TCAM state an associative write with key k deposits
// (Fig. 4d: input Z writes state X). Writing with a masked key position is
// not meaningful; WriteState panics on KDC so the caller catches layout
// bugs early.
func (k Key) WriteState() State {
	switch k {
	case K0:
		return S0
	case K1:
		return S1
	case KZ:
		return SX
	}
	panic("bits: WriteState on masked key position")
}

// KeyForBit returns K1 for true and K0 for false.
func KeyForBit(b bool) Key {
	if b {
		return K1
	}
	return K0
}

// StateForBit returns S1 for true and S0 for false.
func StateForBit(b bool) State {
	if b {
		return S1
	}
	return S0
}

// ParseKeys converts paper notation ("0", "1", "Z", "-") into a key slice.
// Spaces are ignored. It is used heavily by tests that transcribe the
// paper's figures verbatim.
func ParseKeys(s string) ([]Key, error) {
	out := make([]Key, 0, len(s))
	for _, r := range s {
		switch r {
		case '0':
			out = append(out, K0)
		case '1':
			out = append(out, K1)
		case 'Z', 'z':
			out = append(out, KZ)
		case '-', '.':
			out = append(out, KDC)
		case ' ', '\t':
		default:
			return nil, fmt.Errorf("bits: invalid key character %q", r)
		}
	}
	return out, nil
}

// ParseStates converts paper notation ("0", "1", "X") into a state slice.
func ParseStates(s string) ([]State, error) {
	out := make([]State, 0, len(s))
	for _, r := range s {
		switch r {
		case '0':
			out = append(out, S0)
		case '1':
			out = append(out, S1)
		case 'X', 'x':
			out = append(out, SX)
		case ' ', '\t':
		default:
			return nil, fmt.Errorf("bits: invalid state character %q", r)
		}
	}
	return out, nil
}

// KeysString renders a key slice in paper notation.
func KeysString(ks []Key) string {
	b := make([]byte, len(ks))
	for i, k := range ks {
		b[i] = k.String()[0]
	}
	return string(b)
}

// StatesString renders a state slice in paper notation.
func StatesString(ss []State) string {
	b := make([]byte, len(ss))
	for i, s := range ss {
		b[i] = s.String()[0]
	}
	return string(b)
}
