package bits

import (
	"fmt"
	"math/bits"
	"strings"
)

// Vec is a dense, fixed-length bit vector. It backs the tag registers (one
// bit per word row) and the 512-bit data registers of the PEs.
type Vec struct {
	n int
	w []uint64
}

// NewVec returns an all-zero vector of n bits.
func NewVec(n int) *Vec {
	if n < 0 {
		panic("bits: negative Vec length")
	}
	return &Vec{n: n, w: make([]uint64, (n+63)/64)}
}

// Len returns the number of bits in the vector.
func (v *Vec) Len() int { return v.n }

// Get returns bit i.
func (v *Vec) Get(i int) bool {
	v.check(i)
	return v.w[i>>6]&(1<<(uint(i)&63)) != 0
}

// Set sets bit i to b.
func (v *Vec) Set(i int, b bool) {
	v.check(i)
	if b {
		v.w[i>>6] |= 1 << (uint(i) & 63)
	} else {
		v.w[i>>6] &^= 1 << (uint(i) & 63)
	}
}

func (v *Vec) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bits: Vec index %d out of range [0,%d)", i, v.n))
	}
}

// SetAll sets every bit to b.
func (v *Vec) SetAll(b bool) {
	var fill uint64
	if b {
		fill = ^uint64(0)
	}
	for i := range v.w {
		v.w[i] = fill
	}
	v.trim()
}

// trim clears the unused high bits of the last word so that OnesCount and
// equality stay exact.
func (v *Vec) trim() {
	if r := uint(v.n) & 63; r != 0 && len(v.w) > 0 {
		v.w[len(v.w)-1] &= (1 << r) - 1
	}
}

// OnesCount returns the number of set bits (the Count instruction's
// population count).
func (v *Vec) OnesCount() int {
	c := 0
	for _, x := range v.w {
		c += bits.OnesCount64(x)
	}
	return c
}

// FirstSet returns the index of the lowest set bit, or -1 if none is set
// (the Index instruction's priority encoding).
func (v *Vec) FirstSet() int {
	for i, x := range v.w {
		if x != 0 {
			return i*64 + bits.TrailingZeros64(x)
		}
	}
	return -1
}

// Or sets v = v | o. The vectors must have equal length.
func (v *Vec) Or(o *Vec) {
	v.sameLen(o)
	for i := range v.w {
		v.w[i] |= o.w[i]
	}
}

// And sets v = v & o. The vectors must have equal length.
func (v *Vec) And(o *Vec) {
	v.sameLen(o)
	for i := range v.w {
		v.w[i] &= o.w[i]
	}
}

// AndNot sets v = v &^ o. The vectors must have equal length.
func (v *Vec) AndNot(o *Vec) {
	v.sameLen(o)
	for i := range v.w {
		v.w[i] &^= o.w[i]
	}
}

// Not sets v = ^v (within the vector's length; unused high bits stay 0).
func (v *Vec) Not() {
	for i := range v.w {
		v.w[i] = ^v.w[i]
	}
	v.trim()
}

// OrAnd sets v = v | (a & b). All three vectors must have equal length.
func (v *Vec) OrAnd(a, b *Vec) {
	v.sameLen(a)
	v.sameLen(b)
	for i := range v.w {
		v.w[i] |= a.w[i] & b.w[i]
	}
}

// OrAndNot sets v = v | (a &^ b). All three vectors must have equal
// length.
func (v *Vec) OrAndNot(a, b *Vec) {
	v.sameLen(a)
	v.sameLen(b)
	for i := range v.w {
		v.w[i] |= a.w[i] &^ b.w[i]
	}
}

// ForEachSet calls fn for every set bit, in ascending index order. The
// word-at-a-time scan makes iterating a sparse selector proportional to
// the set-bit count, not the vector length.
func (v *Vec) ForEachSet(fn func(i int)) {
	for wi, x := range v.w {
		for x != 0 {
			fn(wi*64 + bits.TrailingZeros64(x))
			x &= x - 1
		}
	}
}

// Prefix returns a new vector holding the first n bits of v (n must not
// exceed the length). Whole words are copied, so truncating a physical
// match vector to its logical rows costs O(n/64).
func (v *Vec) Prefix(n int) *Vec {
	if n < 0 || n > v.n {
		panic(fmt.Sprintf("bits: Prefix length %d out of range [0,%d]", n, v.n))
	}
	p := NewVec(n)
	copy(p.w, v.w[:len(p.w)])
	p.trim()
	return p
}

// CopyFrom copies o into v. The vectors must have equal length.
func (v *Vec) CopyFrom(o *Vec) {
	v.sameLen(o)
	copy(v.w, o.w)
}

// Words returns a copy of the vector's backing uint64 words (LSB-first
// packing, unused high bits of the last word zero). The serialization
// path (tcam state export) reads vectors through this.
func (v *Vec) Words() []uint64 {
	return append([]uint64(nil), v.w...)
}

// VecFromWords rebuilds an n-bit vector from backing words previously
// produced by Words. The word count must match exactly; stray bits above
// n in the last word are rejected rather than silently trimmed, so a
// corrupted serialized vector cannot round-trip.
func VecFromWords(n int, words []uint64) (*Vec, error) {
	v := NewVec(n)
	if len(words) != len(v.w) {
		return nil, fmt.Errorf("bits: %d words for a %d-bit vector (want %d)", len(words), n, len(v.w))
	}
	copy(v.w, words)
	if r := uint(n) & 63; r != 0 && len(v.w) > 0 {
		if v.w[len(v.w)-1]&^((1<<r)-1) != 0 {
			return nil, fmt.Errorf("bits: stray bits above length %d in last word", n)
		}
	}
	return v, nil
}

// Clone returns an independent copy of v.
func (v *Vec) Clone() *Vec {
	c := NewVec(v.n)
	copy(c.w, v.w)
	return c
}

// Equal reports whether v and o have the same length and contents.
func (v *Vec) Equal(o *Vec) bool {
	if v.n != o.n {
		return false
	}
	for i := range v.w {
		if v.w[i] != o.w[i] {
			return false
		}
	}
	return true
}

func (v *Vec) sameLen(o *Vec) {
	if v.n != o.n {
		panic(fmt.Sprintf("bits: Vec length mismatch %d vs %d", v.n, o.n))
	}
}

// String renders the vector LSB-first as a run of 0/1 characters.
func (v *Vec) String() string {
	var b strings.Builder
	b.Grow(v.n)
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// ToBits expands an unsigned value into width booleans, LSB first. Bits
// beyond 64 are false.
func ToBits(v uint64, width int) []bool {
	out := make([]bool, width)
	for i := 0; i < width && i < 64; i++ {
		out[i] = v>>uint(i)&1 == 1
	}
	return out
}

// FromBits packs LSB-first booleans back into a uint64. Bits beyond 64 are
// ignored.
func FromBits(bs []bool) uint64 {
	var v uint64
	for i, b := range bs {
		if b && i < 64 {
			v |= 1 << uint(i)
		}
	}
	return v
}

// SignExtend interprets the low width bits of v as a two's-complement
// number and returns it sign-extended to int64.
func SignExtend(v uint64, width int) int64 {
	if width <= 0 || width >= 64 {
		return int64(v)
	}
	v &= (1 << uint(width)) - 1
	if v&(1<<uint(width-1)) != 0 {
		v |= ^uint64(0) << uint(width)
	}
	return int64(v)
}

// Mask returns a mask with the low width bits set (width ≥ 64 gives all
// ones).
func Mask(width int) uint64 {
	if width >= 64 {
		return ^uint64(0)
	}
	if width <= 0 {
		return 0
	}
	return (1 << uint(width)) - 1
}
