package bits

import (
	"testing"
	"testing/quick"
)

func TestKeyMatchTruthTable(t *testing.T) {
	// The single-position match rule of Fig. 4b-c.
	cases := []struct {
		k    Key
		s    State
		want bool
	}{
		{K0, S0, true}, {K0, S1, false}, {K0, SX, true},
		{K1, S0, false}, {K1, S1, true}, {K1, SX, true},
		{KZ, S0, false}, {KZ, S1, false}, {KZ, SX, true},
		{KDC, S0, true}, {KDC, S1, true}, {KDC, SX, true},
	}
	for _, c := range cases {
		if got := c.k.Match(c.s); got != c.want {
			t.Errorf("Key %v Match State %v = %v, want %v", c.k, c.s, got, c.want)
		}
	}
}

func TestKeyWriteState(t *testing.T) {
	if KZ.WriteState() != SX {
		t.Errorf("input Z must write state X (Fig. 4d)")
	}
	if K0.WriteState() != S0 || K1.WriteState() != S1 {
		t.Errorf("keys 0/1 must write states 0/1")
	}
}

func TestWriteStateMaskedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WriteState on KDC should panic")
		}
	}()
	_ = KDC.WriteState()
}

func TestParseKeysRoundTrip(t *testing.T) {
	ks, err := ParseKeys("10Z- 01")
	if err != nil {
		t.Fatal(err)
	}
	want := []Key{K1, K0, KZ, KDC, K0, K1}
	if len(ks) != len(want) {
		t.Fatalf("got %d keys, want %d", len(ks), len(want))
	}
	for i := range want {
		if ks[i] != want[i] {
			t.Errorf("key %d = %v, want %v", i, ks[i], want[i])
		}
	}
	if s := KeysString(ks); s != "10Z-01" {
		t.Errorf("KeysString = %q", s)
	}
	if _, err := ParseKeys("10Q"); err == nil {
		t.Error("ParseKeys should reject invalid characters")
	}
}

func TestParseStatesRoundTrip(t *testing.T) {
	ss, err := ParseStates("X01x")
	if err != nil {
		t.Fatal(err)
	}
	want := []State{SX, S0, S1, SX}
	for i := range want {
		if ss[i] != want[i] {
			t.Errorf("state %d = %v, want %v", i, ss[i], want[i])
		}
	}
	if s := StatesString(ss); s != "X01X" {
		t.Errorf("StatesString = %q", s)
	}
	if _, err := ParseStates("0-"); err == nil {
		t.Error("ParseStates should reject '-'")
	}
}

func TestKeyForBitStateForBit(t *testing.T) {
	if KeyForBit(true) != K1 || KeyForBit(false) != K0 {
		t.Error("KeyForBit wrong")
	}
	if StateForBit(true) != S1 || StateForBit(false) != S0 {
		t.Error("StateForBit wrong")
	}
}

func TestVecBasics(t *testing.T) {
	v := NewVec(130)
	if v.Len() != 130 {
		t.Fatalf("Len = %d", v.Len())
	}
	v.Set(0, true)
	v.Set(64, true)
	v.Set(129, true)
	if !v.Get(0) || !v.Get(64) || !v.Get(129) || v.Get(1) {
		t.Error("Get/Set wrong")
	}
	if v.OnesCount() != 3 {
		t.Errorf("OnesCount = %d", v.OnesCount())
	}
	if v.FirstSet() != 0 {
		t.Errorf("FirstSet = %d", v.FirstSet())
	}
	v.Set(0, false)
	if v.FirstSet() != 64 {
		t.Errorf("FirstSet = %d", v.FirstSet())
	}
}

func TestVecSetAllTrim(t *testing.T) {
	v := NewVec(70)
	v.SetAll(true)
	if v.OnesCount() != 70 {
		t.Errorf("OnesCount after SetAll = %d, want 70", v.OnesCount())
	}
	v.SetAll(false)
	if v.OnesCount() != 0 || v.FirstSet() != -1 {
		t.Error("SetAll(false) did not clear")
	}
}

func TestVecOrAndCopyEqual(t *testing.T) {
	a := NewVec(100)
	b := NewVec(100)
	a.Set(3, true)
	b.Set(3, true)
	b.Set(77, true)
	c := a.Clone()
	c.Or(b)
	if !c.Get(3) || !c.Get(77) {
		t.Error("Or wrong")
	}
	c.And(a)
	if !c.Get(3) || c.Get(77) {
		t.Error("And wrong")
	}
	if !c.Equal(a) {
		t.Error("Equal wrong")
	}
	d := NewVec(100)
	d.CopyFrom(b)
	if !d.Equal(b) {
		t.Error("CopyFrom wrong")
	}
	if a.Equal(NewVec(99)) {
		t.Error("Equal must compare lengths")
	}
}

func TestVecOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewVec(8).Get(8)
}

func TestVecLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewVec(8).Or(NewVec(9))
}

func TestToBitsFromBitsRoundTrip(t *testing.T) {
	f := func(v uint64, w uint8) bool {
		width := int(w%64) + 1
		masked := v & Mask(width)
		return FromBits(ToBits(v, width)) == masked
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSignExtend(t *testing.T) {
	cases := []struct {
		v     uint64
		width int
		want  int64
	}{
		{0b0111, 4, 7},
		{0b1000, 4, -8},
		{0b1111, 4, -1},
		{0xFF, 8, -1},
		{0x7F, 8, 127},
		{1, 1, -1},
		{0, 1, 0},
	}
	for _, c := range cases {
		if got := SignExtend(c.v, c.width); got != c.want {
			t.Errorf("SignExtend(%#x,%d) = %d, want %d", c.v, c.width, got, c.want)
		}
	}
}

func TestMask(t *testing.T) {
	if Mask(0) != 0 || Mask(1) != 1 || Mask(64) != ^uint64(0) || Mask(8) != 0xFF {
		t.Error("Mask wrong")
	}
}

func TestVecString(t *testing.T) {
	v := NewVec(4)
	v.Set(1, true)
	if v.String() != "0100" {
		t.Errorf("String = %q", v.String())
	}
}
