package compile

import (
	"fmt"
	"sort"

	"hyperap/internal/bits"
	"hyperap/internal/encoding"
	"hyperap/internal/lut"
)

// storageClass classifies the leaves of a LUT for the cover chooser.
func (e *emitter) storageClass(l *lut.LUT) (lut.StorageClass, error) {
	var st lut.StorageClass
	posOf := map[int]int{}
	for pos, node := range l.Leaves {
		posOf[node] = pos
	}
	for pos, node := range l.Leaves {
		loc, ok := e.lay.loc(node)
		if !ok {
			if !e.ag.IsPI(node) {
				return st, fmt.Errorf("compile: leaf node %d not stored", node)
			}
			if e.tgt.SingleBitInputs {
				var err error
				if loc, err = e.ensureStored(node); err != nil {
					return st, err
				}
				st.Singles = append(st.Singles, pos)
				continue
			}
			st.Free = append(st.Free, pos)
			continue
		}
		switch loc.Kind {
		case LocSingle:
			st.Singles = append(st.Singles, pos)
		case LocPairHi:
			if lp, in := posOf[loc.Partner]; in {
				st.FixedPairs = append(st.FixedPairs, [2]int{pos, lp})
			} else {
				st.Halves = append(st.Halves, pos)
			}
		case LocPairLo:
			if _, in := posOf[loc.Partner]; in {
				continue // recorded when visiting the hi half
			}
			st.Halves = append(st.Halves, pos)
		default:
			return st, fmt.Errorf("compile: leaf node %d has no storage", node)
		}
	}
	return st, nil
}

// commitPlan allocates storage for pairings the cover chooser decided on.
func (e *emitter) commitPlan(l *lut.LUT, st lut.StorageClass, plan *lut.CoverPlan) error {
	newPairs := plan.Pairs[len(st.FixedPairs):]
	for _, pr := range newPairs {
		hi, lo := l.Leaves[pr[0]], l.Leaves[pr[1]]
		if _, err := e.lay.placePair(hi, lo, e.ag.IsPI(hi)); err != nil {
			return err
		}
		e.recordPI(hi)
		e.recordPI(lo)
	}
	for _, pos := range plan.Leftover {
		node := l.Leaves[pos]
		if _, err := e.lay.placeSingle(node, true); err != nil {
			return err
		}
		e.recordPI(node)
	}
	return nil
}

// boxKeys converts one cover box into key assignments on the stored
// columns.
func (e *emitter) boxKeys(l *lut.LUT, plan *lut.CoverPlan, box encoding.Box) (map[int]bits.Key, error) {
	keys := map[int]bits.Key{}
	for i, pr := range plan.Pairs {
		sub := box[i]
		if sub == encoding.FullSubset(4) {
			continue // unconstrained: masked off entirely
		}
		hiNode := l.Leaves[pr[0]]
		loc, ok := e.lay.loc(hiNode)
		if !ok || loc.Kind != LocPairHi {
			return nil, fmt.Errorf("compile: pair leaf %d not stored as pair hi", hiNode)
		}
		hiCol, loCol := pairColumns(loc)
		k1, k0, ok := encoding.KeyForPairSubset(sub)
		if !ok {
			return nil, fmt.Errorf("compile: subset %04b has no key", sub)
		}
		if k1 != bits.KDC {
			keys[hiCol] = k1
		}
		if k0 != bits.KDC {
			keys[loCol] = k0
		}
	}
	for i, pos := range plan.Arity2 {
		sub := box[len(plan.Pairs)+i]
		if sub == encoding.FullSubset(2) {
			continue
		}
		node := l.Leaves[pos]
		loc, ok := e.lay.loc(node)
		if !ok {
			return nil, fmt.Errorf("compile: leaf %d unstored at search time", node)
		}
		switch loc.Kind {
		case LocSingle:
			k, ok := encoding.KeyForSingleSubset(sub)
			if !ok {
				return nil, fmt.Errorf("compile: bad single subset %02b", sub)
			}
			if k != bits.KDC {
				keys[loc.Col] = k
			}
		case LocPairHi, LocPairLo:
			// Search one half of an encoded pair: widen the 2-valued
			// subset onto the pair's 4-valued alphabet.
			var pairSub encoding.Subset
			if loc.Kind == LocPairHi {
				if sub.Has(0) {
					pairSub |= 0b0011 // hi = 0: values 00, 01
				}
				if sub.Has(1) {
					pairSub |= 0b1100 // hi = 1: values 10, 11
				}
			} else {
				if sub.Has(0) {
					pairSub |= 0b0101 // lo = 0: values 00, 10
				}
				if sub.Has(1) {
					pairSub |= 0b1010 // lo = 1: values 01, 11
				}
			}
			hiCol, loCol := pairColumns(loc)
			k1, k0, ok := encoding.KeyForPairSubset(pairSub)
			if !ok {
				return nil, fmt.Errorf("compile: bad half subset %04b", pairSub)
			}
			if k1 != bits.KDC {
				keys[hiCol] = k1
			}
			if k0 != bits.KDC {
				keys[loCol] = k0
			}
		default:
			return nil, fmt.Errorf("compile: leaf %d has no storage", node)
		}
	}
	return keys, nil
}

// emitCover emits the SetKey/Search pairs of a LUT's box cover, OR-ing
// successive results in the accumulation unit. With encodeLast the final
// accumulated tags are latched into the two-bit encoder.
func (e *emitter) emitCover(l *lut.LUT, plan *lut.CoverPlan, encodeLast bool) error {
	for i, box := range plan.Boxes {
		keys, err := e.boxKeys(l, plan, box)
		if err != nil {
			return err
		}
		e.emitSetKey(keys)
		e.emitSearch(i > 0, encodeLast && i == len(plan.Boxes)-1)
	}
	return nil
}

// plan computes (and commits) the cover plan for a LUT.
func (e *emitter) plan(l *lut.LUT) (*lut.CoverPlan, error) {
	st, err := e.storageClass(l)
	if err != nil {
		return nil, err
	}
	p := lut.ChooseCover(l.Truth, len(l.Leaves), st)
	if err := e.commitPlan(l, st, p); err != nil {
		return nil, err
	}
	return p, nil
}

// emitSingleRoot computes one LUT and writes its root into a fresh single
// column.
func (e *emitter) emitSingleRoot(l *lut.LUT) error {
	p, err := e.plan(l)
	if err != nil {
		return err
	}
	col, err := e.lay.placeSingle(l.Root, false)
	if err != nil {
		return err
	}
	e.initZero(col)
	if len(p.Boxes) == 0 {
		return nil // constant-0 function: the column already reads 0
	}
	if e.tgt.NoAccumulation {
		// Ablation: Single-Search-Multi-Pattern without the accumulation
		// unit — write after every search (Fig. 19b).
		for _, box := range p.Boxes {
			keys, err := e.boxKeys(l, p, box)
			if err != nil {
				return err
			}
			e.emitSetKey(keys)
			e.emitSearch(false, false)
			e.emitWriteValue(col, true)
		}
		return nil
	}
	if err := e.emitCover(l, p, false); err != nil {
		return err
	}
	e.emitWriteValue(col, true)
	return nil
}

// emitPairedRoots computes two independent LUTs and commits both results
// with one encoded write: lo latched first, hi second (Write <encode>).
func (e *emitter) emitPairedRoots(lo, hi *lut.LUT) error {
	pLo, err := e.plan(lo)
	if err != nil {
		return err
	}
	pHi, err := e.plan(hi)
	if err != nil {
		return err
	}
	hiCol, err := e.lay.placePair(hi.Root, lo.Root, false)
	if err != nil {
		return err
	}
	if err := e.emitCover(lo, pLo, true); err != nil {
		return err
	}
	if err := e.emitCover(hi, pHi, true); err != nil {
		return err
	}
	e.emitWrite(hiCol, true)
	return nil
}

// pairable reports whether two ready LUTs can share an encoded write.
// Both are ready (all leaves written), so the only obstruction is a
// constant cover (which needs no write at all).
func constantTruth(l *lut.LUT) bool {
	if l.Truth.IsZero() {
		return true
	}
	ones := l.Truth.CountOnes(len(l.Leaves))
	return ones == 1<<uint(len(l.Leaves))
}

// pairWindow bounds how far ahead (in topological order) the scheduler
// may reach for an encoded-write partner.
const pairWindow = 32

// runHyper schedules the LUTs: whenever two LUTs are simultaneously ready
// they are committed together (Multi-Search-Single-Write with the two-bit
// encoder); stragglers fall back to an initialised single column.
func (e *emitter) runHyper(consumers map[int][]*lut.LUT) error {
	topo := map[*lut.LUT]int{}
	deps := map[*lut.LUT]int{}
	for i, l := range e.mp.LUTs {
		topo[l] = i
		for _, leaf := range l.Leaves {
			if !e.ag.IsPI(leaf) {
				deps[l]++ // leaf is another LUT's root
			}
		}
	}
	var ready []*lut.LUT
	for _, l := range e.mp.LUTs {
		if deps[l] == 0 {
			ready = append(ready, l)
		}
	}
	emitted := 0
	markWritten := func(l *lut.LUT) {
		e.written[l.Root] = true
		emitted++
		for _, c := range consumers[l.Root] {
			deps[c]--
			if deps[c] == 0 {
				ready = append(ready, c)
			}
		}
	}
	for emitted < len(e.mp.LUTs) {
		if len(ready) == 0 {
			return fmt.Errorf("compile: scheduling deadlock (cyclic mapping?)")
		}
		sort.SliceStable(ready, func(a, b int) bool { return topo[ready[a]] < topo[ready[b]] })
		p := ready[0]
		ready = ready[1:]
		var q *lut.LUT
		if !e.tgt.NoAccumulation && !constantTruth(p) {
			for i, cand := range ready {
				// Pair only within a topological window: pulling a far
				//-away LUT forward starts its whole region of the graph
				// early and inflates the set of live columns.
				if topo[cand]-topo[p] > pairWindow {
					break
				}
				if !constantTruth(cand) {
					q = cand
					ready = append(ready[:i], ready[i+1:]...)
					break
				}
			}
		}
		if q == nil {
			if err := e.emitSingleRoot(p); err != nil {
				return err
			}
			markWritten(p)
			e.releaseLeaves(p)
			continue
		}
		if err := e.emitPairedRoots(p, q); err != nil {
			return err
		}
		markWritten(p)
		markWritten(q)
		e.releaseLeaves(p)
		e.releaseLeaves(q)
	}
	return nil
}

// runTraditional emits the Fig. 2 execution model: one single-pattern
// search per lookup-table entry, each immediately followed by a write.
func (e *emitter) runTraditional() error {
	for _, l := range e.mp.LUTs {
		// Inputs are stored as plain bits.
		for _, leaf := range l.Leaves {
			if _, err := e.ensureStored(leaf); err != nil {
				return err
			}
		}
		col, err := e.lay.placeSingle(l.Root, false)
		if err != nil {
			return err
		}
		e.initZero(col)
		for _, cube := range l.Cubes {
			keys := map[int]bits.Key{}
			for v, leaf := range l.Leaves {
				if cube.Mask>>uint(v)&1 == 0 {
					continue
				}
				loc, ok := e.lay.loc(leaf)
				if !ok || loc.Kind != LocSingle {
					return fmt.Errorf("compile: traditional leaf %d not a single column", leaf)
				}
				keys[loc.Col] = bits.KeyForBit(cube.Val>>uint(v)&1 == 1)
			}
			e.emitSetKey(keys)
			e.emitSearch(false, false)
			e.emitWriteValue(col, true)
		}
		e.written[l.Root] = true
		e.releaseLeaves(l)
	}
	return nil
}

// materializeOutputs ensures every output bit is readable from a stored
// column and records the BitRefs.
func (e *emitter) materializeOutputs() error {
	for _, o := range e.mp.Outputs {
		switch o.Kind {
		case lut.OutConst:
			col, err := e.lay.allocOutputSingle()
			if err != nil {
				return err
			}
			e.emitMatchAll()
			e.emitWriteValue(col, o.Value)
			e.outputRefs = append(e.outputRefs, BitRef{Node: -1, Loc: Loc{Kind: LocSingle, Col: col}})
		case lut.OutInput, lut.OutLUT:
			loc, err := e.ensureStored(o.Node)
			if err != nil {
				return err
			}
			if !o.Compl {
				e.outputRefs = append(e.outputRefs, BitRef{Node: o.Node, Loc: loc})
				continue
			}
			// Complemented: materialise NOT x into a fresh column by
			// searching for x = 0 and writing 1.
			col, err := e.lay.allocOutputSingle()
			if err != nil {
				return err
			}
			e.initZero(col)
			keys, err := SelectBitKeys(loc, false)
			if err != nil {
				return err
			}
			e.emitSetKey(keys)
			e.emitSearch(false, false)
			e.emitWriteValue(col, true)
			e.outputRefs = append(e.outputRefs, BitRef{Node: -1, Loc: Loc{Kind: LocSingle, Col: col}})
		}
	}
	return nil
}

// SelectBitKeys builds the key assignment matching rows whose stored bit
// at loc equals val. Pair halves are selected with the extended keys
// (any subset of a pair is searchable). It is also used by the inter-PE
// communication macros (internal/grid).
func SelectBitKeys(loc Loc, val bool) (map[int]bits.Key, error) {
	switch loc.Kind {
	case LocSingle:
		return map[int]bits.Key{loc.Col: bits.KeyForBit(val)}, nil
	case LocPairHi, LocPairLo:
		var sub encoding.Subset
		switch {
		case loc.Kind == LocPairHi && !val:
			sub = 0b0011
		case loc.Kind == LocPairHi && val:
			sub = 0b1100
		case loc.Kind == LocPairLo && !val:
			sub = 0b0101
		default:
			sub = 0b1010
		}
		hiCol, loCol := pairColumns(loc)
		k1, k0, ok := encoding.KeyForPairSubset(sub)
		if !ok {
			return nil, fmt.Errorf("compile: no key for subset %04b", sub)
		}
		keys := map[int]bits.Key{}
		if k1 != bits.KDC {
			keys[hiCol] = k1
		}
		if k0 != bits.KDC {
			keys[loCol] = k0
		}
		return keys, nil
	}
	return nil, fmt.Errorf("compile: bit has no storage")
}
