package compile

import (
	"testing"

	"hyperap/internal/bits"
)

// TestLoadPairLoUnusedPartner is the regression test for the defensive
// LocPairLo branch of Executable.Load: an input bit stored as the lo half
// of an encoded pair whose hi half is a PI bit that belongs to no input
// component (so it has no value at load time) must still be programmed —
// with hi = 0 — and round-trip through ReadRow. If the branch were
// skipped, the pair's two columns would stay in the erased X state and
// reading the row back would fail to decode.
func TestLoadPairLoUnusedPartner(t *testing.T) {
	const (
		loNode     = 1  // the stored input bit
		singleNode = 2  // a plain companion bit
		hiNode     = 99 // PI bit of no component: unused at load time
	)
	bitRefs := []BitRef{
		{Node: loNode, Loc: Loc{Kind: LocPairLo, Col: 5, Partner: hiNode}},
		{Node: singleNode, Loc: Loc{Kind: LocSingle, Col: 8}},
	}
	ex := &Executable{
		Target:  HyperTarget(),
		Inputs:  []Component{{Name: "a", Width: 2, Bits: bitRefs}},
		Outputs: []Component{{Name: "y", Width: 2, Bits: bitRefs}},
	}
	chip := ex.NewChip(4)
	pe := chip.PE(0)
	for v := uint64(0); v < 4; v++ {
		if err := ex.Load(pe, int(v), []uint64{v}); err != nil {
			t.Fatalf("load %d: %v", v, err)
		}
	}
	for v := uint64(0); v < 4; v++ {
		out, err := ex.ReadRow(pe, int(v))
		if err != nil {
			t.Fatalf("read %d: %v", v, err)
		}
		if out[0] != v {
			t.Errorf("row %d round-tripped as %d", v, out[0])
		}
		// The unused hi half must have been programmed to 0, not left X.
		hi, lo, err := pe.M.ReadPair(int(v), 4) // hi column = Col-1
		if err != nil {
			t.Fatalf("row %d: pair not decodable (defensive load skipped?): %v", v, err)
		}
		if hi || lo != (v&1 == 1) {
			t.Errorf("row %d: pair = (%v,%v), want (false,%v)", v, hi, lo, v&1 == 1)
		}
	}
	// Control: when the partner IS a loaded input bit of another
	// component, the defensive branch must stay out of the way and the
	// LocPairHi load must win (hi keeps its real value).
	ex2 := &Executable{
		Target: HyperTarget(),
		Inputs: []Component{
			{Name: "a", Width: 1, Bits: []BitRef{{Node: loNode, Loc: Loc{Kind: LocPairLo, Col: 5, Partner: hiNode}}}},
			{Name: "b", Width: 1, Bits: []BitRef{{Node: hiNode, Loc: Loc{Kind: LocPairHi, Col: 4, Partner: loNode}}}},
		},
	}
	pe2 := ex2.NewChip(1).PE(0)
	if err := ex2.Load(pe2, 0, []uint64{1, 1}); err != nil {
		t.Fatal(err)
	}
	if hi, lo, err := pe2.M.ReadPair(0, 4); err != nil || !hi || !lo {
		t.Errorf("shared pair = (%v,%v), err %v; want (true,true)", hi, lo, err)
	}
	if pe2.M.TCAM().State(0, 4) == bits.SX {
		t.Error("hi column left erased")
	}
}
