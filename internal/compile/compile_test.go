package compile

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"hyperap/internal/bits"
	"hyperap/internal/isa"
	"hyperap/internal/tech"
)

// randomInputs draws n random input vectors for the executable's widths.
func randomInputs(ex *Executable, n int, seed int64) [][]uint64 {
	rng := rand.New(rand.NewSource(seed))
	ws := ex.InputWidths()
	out := make([][]uint64, n)
	for i := range out {
		vals := make([]uint64, len(ws))
		for j, w := range ws {
			vals[j] = rng.Uint64() & bits.Mask(w)
		}
		out[i] = vals
	}
	return out
}

// exhaustiveInputs enumerates every input combination (total width must be
// small).
func exhaustiveInputs(ex *Executable) [][]uint64 {
	ws := ex.InputWidths()
	total := 0
	for _, w := range ws {
		total += w
	}
	if total > 8 {
		panic("exhaustive input space too large")
	}
	var out [][]uint64
	for v := 0; v < 1<<uint(total); v++ {
		vals := make([]uint64, len(ws))
		shift := 0
		for j, w := range ws {
			vals[j] = uint64(v>>uint(shift)) & bits.Mask(w)
			shift += w
		}
		out = append(out, vals)
	}
	return out
}

func compileOK(t *testing.T, src string, tgt Target) *Executable {
	t.Helper()
	ex, err := CompileSource(src, tgt)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return ex
}

// TestEndToEndOpsHyper compiles a battery of operations and verifies the
// simulated hardware against the reference evaluator on random slots.
func TestEndToEndOpsHyper(t *testing.T) {
	srcs := map[string]string{
		"add8":  `unsigned int(9) main(unsigned int(8) a, unsigned int(8) b){ return a + b; }`,
		"sub8":  `int(9) main(unsigned int(8) a, unsigned int(8) b){ return a - b; }`,
		"mul5":  `unsigned int(10) main(unsigned int(5) a, unsigned int(5) b){ return a * b; }`,
		"div6":  `unsigned int(6) main(unsigned int(6) a, unsigned int(6) b){ return a / b; }`,
		"mod6":  `unsigned int(6) main(unsigned int(6) a, unsigned int(6) b){ return a % b; }`,
		"logic": `unsigned int(8) main(unsigned int(8) a, unsigned int(8) b){ return (a & b) | (~a ^ b); }`,
		"shift": `unsigned int(12) main(unsigned int(8) a, unsigned int(2) s){ return (a << 2) >> s; }`,
		"cmp":   `bool main(int(6) a, int(6) b){ return a < b; }`,
		"sqrt":  `unsigned int(4) main(unsigned int(8) a){ return sqrt(a); }`,
		"mux": `unsigned int(8) main(unsigned int(8) a, unsigned int(8) b, bool p){
			unsigned int(8) r = 0;
			if (p == true) { r = a; } else { r = b; }
			return r; }`,
	}
	for name, src := range srcs {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			ex := compileOK(t, src, HyperTarget())
			if err := ex.CheckAgainstReference(randomInputs(ex, 64, 99)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestEndToEndExhaustiveSmall verifies small functions on every input.
func TestEndToEndExhaustiveSmall(t *testing.T) {
	srcs := []string{
		`unsigned int(3) main(unsigned int(2) a, unsigned int(2) b){ return a + b; }`,
		`unsigned int(4) main(unsigned int(2) a, unsigned int(2) b){ return a * b; }`,
		`bool main(unsigned int(3) a, unsigned int(3) b){ return a == b; }`,
		`unsigned int(3) main(unsigned int(3) a){ return a / 3; }`,
		`unsigned int(4) main(unsigned int(4) a){ return ~a; }`,
	}
	for i, src := range srcs {
		for _, tgt := range []Target{HyperTarget(), TraditionalTarget(tech.RRAM())} {
			ex := compileOK(t, src, tgt)
			if err := ex.CheckAgainstReference(exhaustiveInputs(ex)); err != nil {
				t.Fatalf("src %d (%s): %v", i, tgt.Tech.Name, err)
			}
		}
	}
}

// TestTraditionalMatchesHyper runs the same program on both execution
// models; results must agree (only operation counts differ).
func TestTraditionalMatchesHyper(t *testing.T) {
	src := `unsigned int(9) main(unsigned int(8) a, unsigned int(8) b){ return a + b; }`
	hy := compileOK(t, src, HyperTarget())
	tr := compileOK(t, src, TraditionalTarget(tech.RRAM()))
	if err := hy.CheckAgainstReference(randomInputs(hy, 32, 5)); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckAgainstReference(randomInputs(tr, 32, 5)); err != nil {
		t.Fatal(err)
	}
	// The whole point of the paper: Hyper-AP needs far fewer operations.
	if hy.Stats.Searches >= tr.Stats.Searches {
		t.Errorf("hyper searches %d ≥ traditional %d", hy.Stats.Searches, tr.Stats.Searches)
	}
	if hy.Stats.Writes >= tr.Stats.Writes {
		t.Errorf("hyper writes %d ≥ traditional %d", hy.Stats.Writes, tr.Stats.Writes)
	}
	if hy.Stats.Cycles >= tr.Stats.Cycles {
		t.Errorf("hyper cycles %d ≥ traditional %d", hy.Stats.Cycles, tr.Stats.Cycles)
	}
	// Traditional: exactly one write per pattern search plus the result
	// column initialisations.
	if tr.Stats.Searches < tr.Stats.Patterns {
		t.Errorf("traditional searches %d < patterns %d", tr.Stats.Searches, tr.Stats.Patterns)
	}
}

// TestFig12aMergedCounts compiles the merged 1-bit-addition program of
// Fig. 12a; with operation merging the paper reports 6 searches and 3
// writes. Our compiler's counts must be in that neighbourhood (one extra
// match-all/initialisation allowed for the odd output bit).
func TestFig12aMergedCounts(t *testing.T) {
	src := `
	unsigned int(3) main(unsigned int(1) a, unsigned int(1) b,
	                     unsigned int(1) c, unsigned int(1) d) {
		unsigned int(2) e;
		unsigned int(2) f;
		unsigned int(3) g;
		e = a + b;
		f = c + d;
		g = e + f;
		return g;
	}`
	ex := compileOK(t, src, HyperTarget())
	if err := ex.CheckAgainstReference(exhaustiveInputs(ex)); err != nil {
		t.Fatal(err)
	}
	// Operation merging must collapse e and f: the mapper reaches through
	// them, so no LUT computes intermediate sums.
	if ex.Stats.LUTs != 3 {
		t.Errorf("merged program uses %d LUTs, want 3 (g0, g1, g2)", ex.Stats.LUTs)
	}
	// Fig. 12a: 6 searches; allow the init match-all search for the odd
	// third output bit.
	if ex.Stats.Searches > 7 {
		t.Errorf("searches = %d, paper says 6 (+1 init allowed)", ex.Stats.Searches)
	}
	if ex.Stats.Writes > 3 {
		t.Errorf("writes = %d, paper says 3", ex.Stats.Writes)
	}
}

// TestFig12bOperandEmbedding: embedding the immediate reduces searches
// from 5 to 3 (a 2-bit a + constant 2).
func TestFig12bOperandEmbedding(t *testing.T) {
	embedded := compileOK(t, `
		unsigned int(3) main(unsigned int(2) a) {
			unsigned int(2) b;
			b = 2;
			return a + b;
		}`, HyperTarget())
	if err := embedded.CheckAgainstReference(exhaustiveInputs(embedded)); err != nil {
		t.Fatal(err)
	}
	generic := compileOK(t, `
		unsigned int(3) main(unsigned int(2) a, unsigned int(2) b) {
			return a + b;
		}`, HyperTarget())
	if embedded.Stats.Searches >= generic.Stats.Searches {
		t.Errorf("embedded %d searches ≥ generic %d (Fig. 12b expects a reduction)",
			embedded.Stats.Searches, generic.Stats.Searches)
	}
	// The three output bits are a0, ¬a1, a1: each a 1-pattern table.
	if embedded.Stats.Patterns > 3 {
		t.Errorf("embedded patterns = %d, want ≤ 3", embedded.Stats.Patterns)
	}
}

// TestConditionalProgram compiles the Fig. 13b shape (both branches
// executed, mux merge) end to end.
func TestConditionalProgram(t *testing.T) {
	src := `
	unsigned int(8) main(unsigned int(8) a, unsigned int(4) t) {
		unsigned int(8) b = 0;
		if (a > 200) {
			b = a - t;
		} else {
			b = a + t;
		}
		return b;
	}`
	ex := compileOK(t, src, HyperTarget())
	if err := ex.CheckAgainstReference(randomInputs(ex, 64, 7)); err != nil {
		t.Fatal(err)
	}
}

// TestLoopProgram compiles an unrolled loop (dot product of 4-vectors).
func TestLoopProgram(t *testing.T) {
	src := `
	unsigned int(14) main(unsigned int(4) a[4], unsigned int(4) b[4]) {
		unsigned int(14) acc = 0;
		for (unsigned int(3) i = 0; i < 4; i = i + 1) {
			acc = acc + a[i] * b[i];
		}
		return acc;
	}`
	// Arrays as parameters are not supported; rewrite with a struct.
	src = `
	struct V {
		unsigned int(4) x[4];
	}
	unsigned int(14) main(struct V a, struct V b) {
		unsigned int(14) acc = 0;
		for (unsigned int(3) i = 0; i < 4; i = i + 1) {
			acc = acc + a.x[i] * b.x[i];
		}
		return acc;
	}`
	ex := compileOK(t, src, HyperTarget())
	if err := ex.CheckAgainstReference(randomInputs(ex, 48, 13)); err != nil {
		t.Fatal(err)
	}
}

// TestCMOSTargets verifies both CMOS machines work and that CMOS write
// cycles follow Twrite/Tsearch = 1.
func TestCMOSTargets(t *testing.T) {
	src := `unsigned int(5) main(unsigned int(4) a, unsigned int(4) b){ return a + b; }`
	cm := compileOK(t, src, HyperCMOSTarget())
	if err := cm.CheckAgainstReference(exhaustiveInputs(cm)); err != nil {
		t.Fatal(err)
	}
	rr := compileOK(t, src, HyperTarget())
	if cm.Stats.Cycles >= rr.Stats.Cycles {
		t.Errorf("CMOS cycles %d should be below RRAM %d (cheap writes)", cm.Stats.Cycles, rr.Stats.Cycles)
	}
}

// TestNoAccumulationAblation: disabling the accumulation unit must keep
// results correct while increasing writes (Fig. 19b's smallest
// contribution).
func TestNoAccumulationAblation(t *testing.T) {
	src := `unsigned int(9) main(unsigned int(8) a, unsigned int(8) b){ return a + b; }`
	tgt := HyperTarget()
	tgt.NoAccumulation = true
	abl := compileOK(t, src, tgt)
	if err := abl.CheckAgainstReference(randomInputs(abl, 32, 3)); err != nil {
		t.Fatal(err)
	}
	full := compileOK(t, src, HyperTarget())
	if abl.Stats.Writes <= full.Stats.Writes {
		t.Errorf("ablated writes %d ≤ full %d", abl.Stats.Writes, full.Stats.Writes)
	}
	if abl.Stats.EncodedWrites != 0 {
		t.Error("no-accumulation mode must not use the encoder")
	}
}

// TestStatsShape checks the structural relations between the counters.
func TestStatsShape(t *testing.T) {
	ex := compileOK(t, `unsigned int(9) main(unsigned int(8) a, unsigned int(8) b){ return a + b; }`, HyperTarget())
	s := ex.Stats
	if s.LUTs == 0 || s.Searches == 0 || s.Writes == 0 || s.SetKeys == 0 {
		t.Fatalf("degenerate stats: %+v", s)
	}
	if s.Searches > s.Patterns {
		t.Errorf("multi-pattern search count %d exceeds pattern count %d", s.Searches, s.Patterns)
	}
	if s.Cycles <= 0 || s.PeakColumns <= 0 || s.AIGNodes <= 0 {
		t.Errorf("missing accounting: %+v", s)
	}
	if s.Ops() != s.Searches+s.Writes {
		t.Error("Ops() wrong")
	}
}

// TestWidePrecisionScaling: 16-bit addition must need roughly half the
// cycles of 32-bit addition (the linear scaling of Fig. 16).
func TestWidePrecisionScaling(t *testing.T) {
	mk := func(w int) *Executable {
		src := fmt.Sprintf(`unsigned int(%d) main(unsigned int(%d) a, unsigned int(%d) b){ return a + b; }`, w+1, w, w)
		return compileOK(t, src, HyperTarget())
	}
	c16 := mk(16).Stats.Cycles
	c32 := mk(32).Stats.Cycles
	ratio := float64(c32) / float64(c16)
	if ratio < 1.6 || ratio > 2.6 {
		t.Errorf("32/16-bit cycle ratio = %.2f, want ≈2 (linear scaling)", ratio)
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := CompileSource(`unsigned int(4) main(`, HyperTarget()); err == nil {
		t.Error("parse error must propagate")
	}
	tgt := HyperTarget()
	tgt.WordBits = 0
	if _, err := CompileSource(`bool main(){ return true; }`, tgt); err == nil {
		t.Error("bad word width must be rejected")
	}
	// Column exhaustion: a tiny word cannot hold a 16-bit multiply.
	tgt = HyperTarget()
	tgt.WordBits = 8
	_, err := CompileSource(`unsigned int(32) main(unsigned int(16) a, unsigned int(16) b){ return a * b; }`, tgt)
	if err == nil || !strings.Contains(err.Error(), "exhausted") {
		t.Errorf("column exhaustion not reported: %v", err)
	}
}

// TestConstantAndPassthroughOutputs exercises the output materialisation
// paths: constants, direct inputs and complemented bits.
func TestConstantAndPassthroughOutputs(t *testing.T) {
	srcs := []string{
		`unsigned int(4) main(unsigned int(4) a){ return 9; }`,
		`unsigned int(4) main(unsigned int(4) a){ return a; }`,
		`bool main(bool a){ return !a; }`,
	}
	for i, src := range srcs {
		ex := compileOK(t, src, HyperTarget())
		if err := ex.CheckAgainstReference(exhaustiveInputs(ex)); err != nil {
			t.Fatalf("src %d: %v", i, err)
		}
	}
}

// TestBatchedRows runs many SIMD slots at once (word-parallel execution).
func TestBatchedRows(t *testing.T) {
	ex := compileOK(t, `unsigned int(5) main(unsigned int(4) a, unsigned int(4) b){ return a + b; }`, HyperTarget())
	if err := ex.CheckAgainstReference(exhaustiveInputs(ex)); err != nil {
		t.Fatal(err)
	}
	// All 256 combinations in one PE: every row is one SIMD slot.
	if len(exhaustiveInputs(ex)) != 256 {
		t.Fatal("expected 256 slots")
	}
}

// TestBinaryRoundTripExecution encodes a program to the Table I binary
// format, decodes it, and executes the decoded stream: results must be
// identical (the binary format is the host↔accelerator contract,
// §V-C).
func TestBinaryRoundTripExecution(t *testing.T) {
	ex := compileOK(t, `unsigned int(9) main(unsigned int(8) a, unsigned int(8) b){ return a + b; }`, HyperTarget())
	decoded, err := isa.DecodeProgram(isa.EncodeProgram(ex.Prog))
	if err != nil {
		t.Fatal(err)
	}
	inputs := randomInputs(ex, 16, 77)
	chip := ex.NewChip(len(inputs))
	pe := chip.PE(0)
	for r, vals := range inputs {
		if err := ex.Load(pe, r, vals); err != nil {
			t.Fatal(err)
		}
	}
	if err := chip.Execute(decoded); err != nil {
		t.Fatal(err)
	}
	for r, vals := range inputs {
		out, err := ex.ReadRow(pe, r)
		if err != nil {
			t.Fatal(err)
		}
		if want := ex.Reference(vals); out[0] != want[0] {
			t.Fatalf("slot %d: decoded program gave %d, want %d", r, out[0], want[0])
		}
	}
}

// TestCompileDeterminism: the compiler must be fully deterministic — the
// binary program bytes and layout must be identical across runs (the
// Wait-based synchronisation of §IV-A.12 depends on it).
func TestCompileDeterminism(t *testing.T) {
	src := `unsigned int(17) main(unsigned int(8) a, unsigned int(8) b){ return a * b + (a ^ b); }`
	first := compileOK(t, src, HyperTarget())
	for trial := 0; trial < 3; trial++ {
		again := compileOK(t, src, HyperTarget())
		b1 := isa.EncodeProgram(first.Prog)
		b2 := isa.EncodeProgram(again.Prog)
		if len(b1) != len(b2) {
			t.Fatalf("trial %d: program sizes differ (%d vs %d)", trial, len(b1), len(b2))
		}
		for i := range b1 {
			if b1[i] != b2[i] {
				t.Fatalf("trial %d: programs differ at byte %d", trial, i)
			}
		}
	}
}
