package compile

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"hyperap/internal/arch"
	"hyperap/internal/bits"
	"hyperap/internal/encoding"
	"hyperap/internal/tcam"
	"hyperap/internal/tech"
)

// ErrNoSlots is returned by Run and RunBatch for an empty batch: a
// zero-slot execution would build a chip, run the whole program against
// no data and return no outputs, which is never what the caller meant.
var ErrNoSlots = errors.New("compile: batch has no input slots")

// NewChip builds a one-PE simulator chip matching the executable's target
// (word width, technology, array design) with the given number of word
// rows (SIMD slots).
func (ex *Executable) NewChip(rows int) *arch.Chip {
	return ex.NewShardedChip(1, rows)
}

// NewShardedChip builds a simulator chip with one PE per shard, each
// behind its own subarray controller (so shards can step concurrently),
// matching the executable's target.
func (ex *Executable) NewShardedChip(pes, rows int) *arch.Chip {
	return ex.newShardedChip(pes, rows, runConfig{})
}

func (ex *Executable) newShardedChip(pes, rows int, cfg runConfig) *arch.Chip {
	return arch.New(arch.Config{
		Banks:            1,
		SubarraysPerBank: pes,
		PEsPerSubarray:   1,
		Rows:             rows,
		Bits:             ex.Target.WordBits,
		Groups:           1,
		Tech:             ex.Target.Tech,
		Monolithic:       ex.Target.Monolithic,
		Faults:           cfg.faults,
		SparePEs:         cfg.sparePEs,
		ScalarSearch:     cfg.scalarSearch,
	})
}

// RunOption configures the batch-execution path (RunBatch).
type RunOption func(*runConfig)

type runConfig struct {
	workers      int
	trace        bool
	traceID      string
	faults       tcam.FaultConfig
	sparePEs     int
	scalarSearch bool
	fullRows     bool
	chipInit     func(*arch.Chip) error
}

// WithParallelism bounds the RunBatch worker pool to n goroutines;
// n <= 0 restores the default (GOMAXPROCS).
func WithParallelism(n int) RunOption {
	return func(c *runConfig) { c.workers = n }
}

// WithTrace enables per-instruction trace collection on the chip RunBatch
// builds; read the merged stream with Chip.TraceEvents (or export it with
// obs.ChromeTrace). Tracing stays on the concurrent execution path.
func WithTrace() RunOption {
	return func(c *runConfig) { c.trace = true }
}

// WithTraceID stamps the chip with the distributed trace id of the
// request that drove the pass, so a chip-level Perfetto export and the
// cluster's stitched timeline can be correlated (obs.TraceMeta.TraceID).
func WithTraceID(id string) RunOption {
	return func(c *runConfig) { c.traceID = id }
}

// WithFaults activates the RRAM fault model on the chip RunBatch builds:
// stuck-at defects, endurance wear-out, transient search upsets,
// write-verify and spare-row repair, all derived deterministically from
// fc.Seed (see tcam.FaultConfig).
func WithFaults(fc tcam.FaultConfig) RunOption {
	return func(c *runConfig) { c.faults = fc }
}

// WithEndurance caps every RRAM cell at budget programming pulses; a
// cell written past the budget dies (becomes stuck) and is caught by
// write-verify. Combines with WithFaults — the budget overrides the
// fault config's EnduranceBudget field.
func WithEndurance(budget uint32) RunOption {
	return func(c *runConfig) { c.faults.EnduranceBudget = budget }
}

// WithScalarSearch routes every TCAM search on the chip RunBatch builds
// through the retained per-cell electrical model instead of the
// word-parallel bit-plane path. Results are bit-identical; the bench
// harness uses this to measure the bit-plane speedup with an otherwise
// unchanged workload.
func WithScalarSearch() RunOption {
	return func(c *runConfig) { c.scalarSearch = true }
}

// WithSparePEs provisions n spare subarrays on the chip RunBatch builds;
// a shard that dies with a FaultError is replayed on a spare instead of
// failing the batch.
func WithSparePEs(n int) RunOption {
	return func(c *runConfig) { c.sparePEs = n }
}

// WithFullRows builds every pass chip with the full tech.PERows word
// rows per PE even when the batch fills fewer slots. A physical chip
// has fixed geometry; the variable-row chip is a simulation shortcut
// that makes per-pass chips structurally incomparable. Serve's durable
// chip-state ledger needs uniform geometry so lifetime state exported
// from one pass can age the next pass's chip regardless of batch size.
func WithFullRows() RunOption {
	return func(c *runConfig) { c.fullRows = true }
}

// WithChipInit registers fn to run on the freshly built pass chip after
// construction and before any data is loaded. This is the hook serve's
// persistence layer uses to pre-age the chip with checkpointed lifetime
// state (wear counters, stuck cells, burned spares and remaps): the
// chip is built inside RunBatchContext, so state injection has to
// happen here. An error from fn aborts the pass.
func WithChipInit(fn func(*arch.Chip) error) RunOption {
	return func(c *runConfig) { c.chipInit = fn }
}

func newRunConfig(opts []RunOption) runConfig {
	c := runConfig{workers: runtime.GOMAXPROCS(0)}
	for _, o := range opts {
		o(&c)
	}
	if c.workers <= 0 {
		c.workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Load stores one SIMD slot's input values into a PE row according to the
// compiled data layout (the host pre-loads data before execution,
// §VI-A.3).
func (ex *Executable) Load(pe *arch.PE, row int, vals []uint64) error {
	if len(vals) != len(ex.Inputs) {
		return fmt.Errorf("compile: %d values for %d inputs", len(vals), len(ex.Inputs))
	}
	bitVal := map[int]bool{} // AIG PI node → value
	for i, comp := range ex.Inputs {
		v := vals[i] & bits.Mask(comp.Width)
		for j, ref := range comp.Bits {
			bitVal[ref.Node] = v>>uint(j)&1 == 1
		}
	}
	for _, comp := range ex.Inputs {
		for _, ref := range comp.Bits {
			switch ref.Loc.Kind {
			case LocNone:
				// Unused input bit: not stored.
			case LocSingle:
				if err := pe.M.LoadBit(row, ref.Loc.Col, bitVal[ref.Node]); err != nil {
					return err
				}
			case LocPairHi:
				hiCol, _ := pairColumns(ref.Loc)
				if err := pe.M.LoadPair(row, hiCol, bitVal[ref.Node], bitVal[ref.Loc.Partner]); err != nil {
					return err
				}
			case LocPairLo:
				// Loaded together with its hi half. The partner may be an
				// unused PI bit of another component; default false is
				// correct only if it is in bitVal, so load defensively
				// when the partner is not an input bit.
				if _, ok := bitVal[ref.Loc.Partner]; !ok {
					hiCol, _ := pairColumns(ref.Loc)
					if err := pe.M.LoadPair(row, hiCol, false, bitVal[ref.Node]); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// ReadRow decodes one SIMD slot's output values from a PE row.
func (ex *Executable) ReadRow(pe *arch.PE, row int) ([]uint64, error) {
	out := make([]uint64, len(ex.Outputs))
	for i, comp := range ex.Outputs {
		var v uint64
		for j, ref := range comp.Bits {
			var b bool
			var err error
			switch ref.Loc.Kind {
			case LocSingle:
				b, err = pe.M.ReadBit(row, ref.Loc.Col)
			case LocPairHi:
				hiCol, _ := pairColumns(ref.Loc)
				b, _, err = pe.M.ReadPair(row, hiCol)
			case LocPairLo:
				hiCol, _ := pairColumns(ref.Loc)
				_, b, err = pe.M.ReadPair(row, hiCol)
			default:
				err = fmt.Errorf("output bit %d of %s has no storage", j, comp.Name)
			}
			if err != nil {
				return nil, fmt.Errorf("compile: reading %s bit %d: %w", comp.Name, j, err)
			}
			if b {
				v |= 1 << uint(j)
			}
		}
		out[i] = v
	}
	return out, nil
}

// Run executes the program for a batch of SIMD slots (one row each) on a
// fresh single-PE chip and returns each slot's outputs. It is the
// reference execution path used by tests, examples and benchmarks. An
// empty batch is an error (ErrNoSlots); batches larger than one PE's
// tech.PERows rows must go through RunBatch.
func (ex *Executable) Run(inputs [][]uint64) ([][]uint64, *arch.Chip, error) {
	rows := len(inputs)
	if rows == 0 {
		return nil, nil, ErrNoSlots
	}
	if rows > tech.PERows {
		return nil, nil, fmt.Errorf("compile: %d slots exceed the %d rows of one PE (use RunBatch to shard across PEs)", rows, tech.PERows)
	}
	chip := ex.NewChip(rows)
	pe := chip.PE(0)
	for r, vals := range inputs {
		if err := ex.Load(pe, r, vals); err != nil {
			return nil, nil, err
		}
	}
	if err := chip.Execute(ex.Prog); err != nil {
		return nil, nil, err
	}
	outs := make([][]uint64, len(inputs))
	for r := range inputs {
		o, err := ex.ReadRow(pe, r)
		if err != nil {
			return nil, nil, err
		}
		outs[r] = o
	}
	return outs, chip, nil
}

// RunBatch executes the program for an arbitrarily large batch of SIMD
// slots: the batch is sharded tech.PERows slots per PE onto a chip with
// one PE per shard, and the shards are loaded, executed and read back
// concurrently on a bounded worker pool (WithParallelism, default
// GOMAXPROCS). Every shard executes the same instruction stream, so the
// chip report's Cycles is the per-pass latency regardless of shard count,
// while energy, operation counts and wear aggregate across all PEs.
func (ex *Executable) RunBatch(inputs [][]uint64, opts ...RunOption) ([][]uint64, *arch.Chip, error) {
	return ex.RunBatchContext(context.Background(), inputs, opts...)
}

// RunBatchContext is RunBatch with cancellation: the context is checked
// between instructions on every execution worker, so a caller's deadline
// (e.g. serve's per-request timeout) interrupts a long pass instead of
// waiting for the whole program.
func (ex *Executable) RunBatchContext(ctx context.Context, inputs [][]uint64, opts ...RunOption) ([][]uint64, *arch.Chip, error) {
	n := len(inputs)
	if n == 0 {
		return nil, nil, ErrNoSlots
	}
	cfg := newRunConfig(opts)
	shards := (n + tech.PERows - 1) / tech.PERows
	rows := min(n, tech.PERows)
	if cfg.fullRows {
		rows = tech.PERows
	}
	chip := ex.newShardedChip(shards, rows, cfg)
	chip.Tracing = cfg.trace
	chip.TraceID = cfg.traceID
	if cfg.chipInit != nil {
		if err := cfg.chipInit(chip); err != nil {
			return nil, nil, err
		}
	}
	err := forEachShard(chip, shards, cfg.workers, func(pe *arch.PE, shard int) error {
		base := shard * tech.PERows
		for r := base; r < min(base+tech.PERows, n); r++ {
			if err := ex.Load(pe, r-base, inputs[r]); err != nil {
				var fe *tcam.FaultError
				if errors.As(err, &fe) {
					// Give load-phase faults the same typed shape the
					// execution path produces.
					return &arch.FaultError{PE: shard, Bank: 0, Subarray: shard, Err: err}
				}
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	if err := chip.ExecuteParallel(ctx, ex.Prog, cfg.workers); err != nil {
		return nil, nil, err
	}
	outs := make([][]uint64, n)
	err = forEachShard(chip, shards, cfg.workers, func(pe *arch.PE, shard int) error {
		base := shard * tech.PERows
		for r := base; r < min(base+tech.PERows, n); r++ {
			o, err := ex.ReadRow(pe, r-base)
			if err != nil {
				return err
			}
			outs[r] = o
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return outs, chip, nil
}

// forEachShard applies fn to every shard's PE on a pool of at most
// workers goroutines and returns the first error. Shard s owns PE s
// (NewShardedChip's linear order) and the slot range
// [s*tech.PERows, (s+1)*tech.PERows).
func forEachShard(chip *arch.Chip, shards, workers int, fn func(pe *arch.PE, shard int) error) error {
	if workers > shards {
		workers = shards
	}
	if workers <= 1 {
		for s := 0; s < shards; s++ {
			if err := fn(chip.PE(s), s); err != nil {
				return err
			}
		}
		return nil
	}
	work := make(chan int, shards)
	for s := 0; s < shards; s++ {
		work <- s
	}
	close(work)
	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range work {
				if err := fn(chip.PE(s), s); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	return <-errCh
}

// Reference evaluates the source dataflow graph for one slot (the golden
// model).
func (ex *Executable) Reference(vals []uint64) []uint64 {
	return ex.DFG.Eval(vals)
}

// LatencyNS returns the program's per-pass latency in nanoseconds on the
// target technology.
func (ex *Executable) LatencyNS() float64 {
	return ex.Target.Tech.LatencyNS(ex.Stats.Cycles)
}

// EnergyPerPE runs cost accounting without execution: it returns the
// estimated energy of one full-occupancy PE executing the program once,
// derived by executing on a simulator PE with all rows active.
func (ex *Executable) EnergyPerPE(rows int) (tech.EnergyLedger, error) {
	chip := ex.NewChip(rows)
	pe := chip.PE(0)
	// Populate every row with zeros so writes select realistic row sets.
	zero := make([]uint64, len(ex.Inputs))
	for r := 0; r < rows; r++ {
		if err := ex.Load(pe, r, zero); err != nil {
			return tech.EnergyLedger{}, err
		}
	}
	if err := chip.Execute(ex.Prog); err != nil {
		return tech.EnergyLedger{}, err
	}
	return chip.Report().Energy, nil
}

// DriveCells returns the number of VL-driven cells of a key map — used by
// tests asserting search-robustness limits.
func DriveCells(keys []bits.Key) int {
	n := 0
	for _, k := range keys {
		n += encoding.DriveCost(k)
	}
	return n
}

// CheckAgainstReference runs the executable on the simulator (through the
// sharded batch path, so any batch size works) for the given inputs and
// compares every output with the DFG reference evaluator, returning a
// descriptive error on the first mismatch. Zero inputs check nothing.
func (ex *Executable) CheckAgainstReference(inputs [][]uint64) error {
	if len(inputs) == 0 {
		return nil
	}
	outs, _, err := ex.RunBatch(inputs)
	if err != nil {
		return err
	}
	for r, vals := range inputs {
		want := ex.Reference(vals)
		for i := range want {
			if outs[r][i] != want[i] {
				return fmt.Errorf("slot %d output %s: simulated %d, reference %d (inputs %v)",
					r, ex.Outputs[i].Name, outs[r][i], want[i], vals)
			}
		}
	}
	return nil
}

// InputWidths returns the declared widths of the inputs (for random test
// generation).
func (ex *Executable) InputWidths() []int {
	ws := make([]int, len(ex.Inputs))
	for i, c := range ex.Inputs {
		ws[i] = c.Width
	}
	return ws
}
