package compile

import (
	"fmt"

	"hyperap/internal/arch"
	"hyperap/internal/bits"
	"hyperap/internal/encoding"
	"hyperap/internal/tech"
)

// NewChip builds a one-PE simulator chip matching the executable's target
// (word width, technology, array design) with the given number of word
// rows (SIMD slots).
func (ex *Executable) NewChip(rows int) *arch.Chip {
	return arch.New(arch.Config{
		Banks:            1,
		SubarraysPerBank: 1,
		PEsPerSubarray:   1,
		Rows:             rows,
		Bits:             ex.Target.WordBits,
		Groups:           1,
		Tech:             ex.Target.Tech,
		Monolithic:       ex.Target.Monolithic,
	})
}

// Load stores one SIMD slot's input values into a PE row according to the
// compiled data layout (the host pre-loads data before execution,
// §VI-A.3).
func (ex *Executable) Load(pe *arch.PE, row int, vals []uint64) error {
	if len(vals) != len(ex.Inputs) {
		return fmt.Errorf("compile: %d values for %d inputs", len(vals), len(ex.Inputs))
	}
	bitVal := map[int]bool{} // AIG PI node → value
	for i, comp := range ex.Inputs {
		v := vals[i] & bits.Mask(comp.Width)
		for j, ref := range comp.Bits {
			bitVal[ref.Node] = v>>uint(j)&1 == 1
		}
	}
	for _, comp := range ex.Inputs {
		for _, ref := range comp.Bits {
			switch ref.Loc.Kind {
			case LocNone:
				// Unused input bit: not stored.
			case LocSingle:
				pe.M.LoadBit(row, ref.Loc.Col, bitVal[ref.Node])
			case LocPairHi:
				hiCol, _ := pairColumns(ref.Loc)
				pe.M.LoadPair(row, hiCol, bitVal[ref.Node], bitVal[ref.Loc.Partner])
			case LocPairLo:
				// Loaded together with its hi half. The partner may be an
				// unused PI bit of another component; default false is
				// correct only if it is in bitVal, so load defensively
				// when the partner is not an input bit.
				if _, ok := bitVal[ref.Loc.Partner]; !ok {
					hiCol, _ := pairColumns(ref.Loc)
					pe.M.LoadPair(row, hiCol, false, bitVal[ref.Node])
				}
			}
		}
	}
	return nil
}

// ReadRow decodes one SIMD slot's output values from a PE row.
func (ex *Executable) ReadRow(pe *arch.PE, row int) ([]uint64, error) {
	out := make([]uint64, len(ex.Outputs))
	for i, comp := range ex.Outputs {
		var v uint64
		for j, ref := range comp.Bits {
			var b bool
			var err error
			switch ref.Loc.Kind {
			case LocSingle:
				b, err = pe.M.ReadBit(row, ref.Loc.Col)
			case LocPairHi:
				hiCol, _ := pairColumns(ref.Loc)
				b, _, err = pe.M.ReadPair(row, hiCol)
			case LocPairLo:
				hiCol, _ := pairColumns(ref.Loc)
				_, b, err = pe.M.ReadPair(row, hiCol)
			default:
				err = fmt.Errorf("output bit %d of %s has no storage", j, comp.Name)
			}
			if err != nil {
				return nil, fmt.Errorf("compile: reading %s bit %d: %w", comp.Name, j, err)
			}
			if b {
				v |= 1 << uint(j)
			}
		}
		out[i] = v
	}
	return out, nil
}

// Run executes the program for a batch of SIMD slots (one row each) on a
// fresh single-PE chip and returns each slot's outputs. It is the
// reference execution path used by tests, examples and benchmarks.
func (ex *Executable) Run(inputs [][]uint64) ([][]uint64, *arch.Chip, error) {
	rows := len(inputs)
	if rows == 0 {
		rows = 1
	}
	if rows > tech.PERows {
		return nil, nil, fmt.Errorf("compile: %d slots exceed the %d rows of one PE", len(inputs), tech.PERows)
	}
	chip := ex.NewChip(maxInt(rows, 1))
	pe := chip.PE(0)
	for r, vals := range inputs {
		if err := ex.Load(pe, r, vals); err != nil {
			return nil, nil, err
		}
	}
	if err := chip.Execute(ex.Prog); err != nil {
		return nil, nil, err
	}
	outs := make([][]uint64, len(inputs))
	for r := range inputs {
		o, err := ex.ReadRow(pe, r)
		if err != nil {
			return nil, nil, err
		}
		outs[r] = o
	}
	return outs, chip, nil
}

// Reference evaluates the source dataflow graph for one slot (the golden
// model).
func (ex *Executable) Reference(vals []uint64) []uint64 {
	return ex.DFG.Eval(vals)
}

// LatencyNS returns the program's per-pass latency in nanoseconds on the
// target technology.
func (ex *Executable) LatencyNS() float64 {
	return ex.Target.Tech.LatencyNS(ex.Stats.Cycles)
}

// EnergyPerPE runs cost accounting without execution: it returns the
// estimated energy of one full-occupancy PE executing the program once,
// derived by executing on a simulator PE with all rows active.
func (ex *Executable) EnergyPerPE(rows int) (tech.EnergyLedger, error) {
	chip := ex.NewChip(rows)
	pe := chip.PE(0)
	// Populate every row with zeros so writes select realistic row sets.
	zero := make([]uint64, len(ex.Inputs))
	for r := 0; r < rows; r++ {
		if err := ex.Load(pe, r, zero); err != nil {
			return tech.EnergyLedger{}, err
		}
	}
	if err := chip.Execute(ex.Prog); err != nil {
		return tech.EnergyLedger{}, err
	}
	return chip.Report().Energy, nil
}

// DriveCells returns the number of VL-driven cells of a key map — used by
// tests asserting search-robustness limits.
func DriveCells(keys []bits.Key) int {
	n := 0
	for _, k := range keys {
		n += encoding.DriveCost(k)
	}
	return n
}

// CheckAgainstReference runs the executable on the simulator for the
// given inputs and compares every output with the DFG reference
// evaluator, returning a descriptive error on the first mismatch.
func (ex *Executable) CheckAgainstReference(inputs [][]uint64) error {
	outs, _, err := ex.Run(inputs)
	if err != nil {
		return err
	}
	for r, vals := range inputs {
		want := ex.Reference(vals)
		for i := range want {
			if outs[r][i] != want[i] {
				return fmt.Errorf("slot %d output %s: simulated %d, reference %d (inputs %v)",
					r, ex.Outputs[i].Name, outs[r][i], want[i], vals)
			}
		}
	}
	return nil
}

// InputWidths returns the declared widths of the inputs (for random test
// generation).
func (ex *Executable) InputWidths() []int {
	ws := make([]int, len(ex.Inputs))
	for i, c := range ex.Inputs {
		ws[i] = c.Width
	}
	return ws
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
