package compile

import (
	"errors"
	"strings"
	"testing"

	"hyperap/internal/tech"
)

// batchExecutable compiles a small addition on a narrowed word so the
// 4096-slot case stays fast under -race (search cost scales with
// rows × word bits).
func batchExecutable(t *testing.T) *Executable {
	t.Helper()
	tgt := HyperTarget()
	tgt.WordBits = 64
	ex, err := CompileSource(`unsigned int(7) main(unsigned int(6) a, unsigned int(6) b){ return a + b; }`, tgt)
	if err != nil {
		t.Fatal(err)
	}
	return ex
}

// TestRunBatchRaggedSizes shards ragged batch sizes across PEs on the
// concurrent worker pool and checks every slot against the DFG reference
// (run under -race by the `make check` target).
func TestRunBatchRaggedSizes(t *testing.T) {
	ex := batchExecutable(t)
	for _, n := range []int{1, 255, 256, 257, 4096} {
		inputs := randomInputs(ex, n, int64(n))
		outs, chip, err := ex.RunBatch(inputs, WithParallelism(8))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		wantPEs := (n + tech.PERows - 1) / tech.PERows
		if chip.NumPEs() != wantPEs {
			t.Fatalf("n=%d: %d PEs, want %d", n, chip.NumPEs(), wantPEs)
		}
		for r, vals := range inputs {
			want := ex.Reference(vals)
			if outs[r][0] != want[0] {
				t.Fatalf("n=%d slot %d: got %d, want %d (inputs %v)", n, r, outs[r][0], want[0], vals)
			}
		}
		// Per-PE accounting must aggregate across every shard.
		r := chip.Report()
		if want := int64(ex.Stats.Searches) * int64(wantPEs); r.Searches != want {
			t.Errorf("n=%d: report searches = %d, want %d (%d per PE)", n, r.Searches, want, ex.Stats.Searches)
		}
		if r.Cycles != ex.Stats.Cycles {
			t.Errorf("n=%d: cycles = %d, want the per-pass %d regardless of PE count", n, r.Cycles, ex.Stats.Cycles)
		}
	}
}

// TestRunBatchMatchesSerial requires the worker pool to be behaviourally
// identical to single-worker execution: same outputs, same aggregated
// report.
func TestRunBatchMatchesSerial(t *testing.T) {
	ex := batchExecutable(t)
	inputs := randomInputs(ex, 700, 42)
	souts, schip, err := ex.RunBatch(inputs, WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	pouts, pchip, err := ex.RunBatch(inputs, WithParallelism(6))
	if err != nil {
		t.Fatal(err)
	}
	for r := range inputs {
		if souts[r][0] != pouts[r][0] {
			t.Fatalf("slot %d diverged: %d vs %d", r, souts[r][0], pouts[r][0])
		}
	}
	sr, pr := schip.Report(), pchip.Report()
	if sr.Searches != pr.Searches || sr.Writes != pr.Writes || sr.Cycles != pr.Cycles ||
		sr.MaxCellWrites != pr.MaxCellWrites || sr.Energy.TotalJ() != pr.Energy.TotalJ() {
		t.Errorf("serial/parallel reports diverged:\n%+v\n%+v", sr, pr)
	}
}

// TestRunZeroSlots: the zero-slot batch is an explicit error on both
// execution paths, not a silent no-output execution.
func TestRunZeroSlots(t *testing.T) {
	ex := batchExecutable(t)
	if _, _, err := ex.Run(nil); !errors.Is(err, ErrNoSlots) {
		t.Errorf("Run(nil) = %v, want ErrNoSlots", err)
	}
	if _, _, err := ex.Run([][]uint64{}); !errors.Is(err, ErrNoSlots) {
		t.Errorf("Run(empty) = %v, want ErrNoSlots", err)
	}
	if _, _, err := ex.RunBatch(nil); !errors.Is(err, ErrNoSlots) {
		t.Errorf("RunBatch(nil) = %v, want ErrNoSlots", err)
	}
	if err := ex.CheckAgainstReference(nil); err != nil {
		t.Errorf("CheckAgainstReference(nil) = %v, want vacuous nil", err)
	}
}

// TestRunOverflowPointsAtRunBatch: the single-PE path still rejects
// oversized batches, and tells the caller where to go.
func TestRunOverflowPointsAtRunBatch(t *testing.T) {
	ex := batchExecutable(t)
	_, _, err := ex.Run(randomInputs(ex, tech.PERows+1, 1))
	if err == nil || !strings.Contains(err.Error(), "RunBatch") {
		t.Errorf("oversized Run error = %v, want a pointer to RunBatch", err)
	}
}
