package compile

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// CanonicalOptions renders the compilation-relevant target fields in a
// fixed, order-independent text form. Two targets with equal canonical
// options compile any given source to the same instruction stream, so the
// string is a sound cache-key component for compiled-program caches (the
// technology is identified by name: the serving layer only ever builds
// targets from the stock RRAM()/CMOS() constructors).
func (t Target) CanonicalOptions() string {
	return fmt.Sprintf("tech=%s mono=%t mode=%d k=%d cuts=%d word=%d noacc=%t singlebit=%t",
		t.Tech.Name, t.Monolithic, t.Mode, t.K, t.CutsPerNode, t.WordBits,
		t.NoAccumulation, t.SingleBitInputs)
}

// Fingerprint returns the content hash identifying a compiled program:
// SHA-256 over the canonical target options and the source text, in the
// "sha256:<hex>" form used as the program handle by hyperap-serve. Equal
// fingerprints mean byte-identical generated programs, so the expensive
// compile pipeline (DFG → AIG → LUT → codegen) needs to run only once per
// distinct fingerprint.
func Fingerprint(src string, tgt Target) string {
	h := sha256.New()
	h.Write([]byte(tgt.CanonicalOptions()))
	h.Write([]byte{0})
	h.Write([]byte(src))
	return "sha256:" + hex.EncodeToString(h.Sum(nil))
}
