package compile

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"hyperap/internal/tech"
)

// progGen generates random well-typed programs in the C-like language.
// Every generated program is compiled for Hyper-AP and executed on the
// simulator against the reference evaluator — a whole-stack property
// test covering the front end, DFG builder, RTL library, LUT mapper,
// cover minimiser, scheduler, code generator and micro-architecture.
type progGen struct {
	rng    *rand.Rand
	decls  []string
	nTemp  int
	inputs []genVar
}

type genVar struct {
	name   string
	width  int
	signed bool
	isBool bool
}

func (g *progGen) typeName(v genVar) string {
	switch {
	case v.isBool:
		return "bool"
	case v.signed:
		return fmt.Sprintf("int(%d)", v.width)
	default:
		return fmt.Sprintf("unsigned int(%d)", v.width)
	}
}

// temp materialises an expression into a declared variable, truncating to
// the given width; this keeps the natural-width growth of * and << under
// control.
func (g *progGen) temp(expr string, width int, signed bool) genVar {
	g.nTemp++
	v := genVar{name: fmt.Sprintf("t%d", g.nTemp), width: width, signed: signed}
	g.decls = append(g.decls, fmt.Sprintf("%s %s = %s;", g.typeName(v), v.name, expr))
	return v
}

// intExpr produces a random integer-typed expression of bounded depth,
// returning its text and (approximate) result type.
func (g *progGen) intExpr(depth int) (string, genVar) {
	if depth <= 0 || g.rng.Intn(4) == 0 {
		// Leaf: an input or a literal.
		if g.rng.Intn(5) == 0 {
			v := uint64(g.rng.Intn(200))
			w := 1
			for 1<<uint(w) <= int(v) {
				w++
			}
			return fmt.Sprintf("%d", v), genVar{width: w}
		}
		cands := make([]genVar, 0, len(g.inputs))
		for _, in := range g.inputs {
			if !in.isBool {
				cands = append(cands, in)
			}
		}
		v := cands[g.rng.Intn(len(cands))]
		return v.name, v
	}
	l, lv := g.intExpr(depth - 1)
	r, rv := g.intExpr(depth - 1)
	maxW := lv.width
	if rv.width > maxW {
		maxW = rv.width
	}
	signed := lv.signed || rv.signed
	var expr string
	var out genVar
	switch g.rng.Intn(10) {
	case 0, 1:
		expr, out = fmt.Sprintf("(%s + %s)", l, r), genVar{width: maxW + 1, signed: signed}
	case 2:
		expr, out = fmt.Sprintf("(%s - %s)", l, r), genVar{width: maxW + 1, signed: true}
	case 3:
		expr, out = fmt.Sprintf("(%s * %s)", l, r), genVar{width: lv.width + rv.width, signed: signed}
	case 4:
		expr, out = fmt.Sprintf("(%s & %s)", l, r), genVar{width: maxW, signed: signed}
	case 5:
		expr, out = fmt.Sprintf("(%s | %s)", l, r), genVar{width: maxW, signed: signed}
	case 6:
		expr, out = fmt.Sprintf("(%s ^ %s)", l, r), genVar{width: maxW, signed: signed}
	case 7:
		expr, out = fmt.Sprintf("(~%s)", l), genVar{width: lv.width, signed: lv.signed}
	case 8:
		sh := g.rng.Intn(3) + 1
		if g.rng.Intn(2) == 0 {
			expr, out = fmt.Sprintf("(%s << %d)", l, sh), genVar{width: lv.width + sh, signed: lv.signed}
		} else {
			expr, out = fmt.Sprintf("(%s >> %d)", l, sh), genVar{width: lv.width, signed: lv.signed}
		}
	default:
		// Division and modulo (signed included since the desugaring).
		op := "/"
		if g.rng.Intn(2) == 0 {
			op = "%"
		}
		expr, out = fmt.Sprintf("(%s %s %s)", l, op, r), genVar{width: maxW + 1, signed: signed}
	}
	// Keep widths bounded: big intermediates get truncated through a
	// declared temporary.
	if out.width > 14 {
		tv := g.temp(expr, 8+g.rng.Intn(4), out.signed)
		return tv.name, tv
	}
	if out.width > 64 {
		out.width = 64
	}
	return expr, out
}

// boolExpr produces a random boolean expression.
func (g *progGen) boolExpr(depth int) string {
	if depth <= 0 {
		for _, in := range g.inputs {
			if in.isBool {
				return in.name
			}
		}
	}
	l, _ := g.intExpr(depth - 1)
	r, _ := g.intExpr(depth - 1)
	ops := []string{"==", "!=", "<", ">", "<=", ">="}
	return fmt.Sprintf("(%s %s %s)", l, ops[g.rng.Intn(len(ops))], r)
}

// generate builds a complete program and returns its source.
func (g *progGen) generate() string {
	nIn := 2 + g.rng.Intn(3)
	for i := 0; i < nIn; i++ {
		v := genVar{name: fmt.Sprintf("x%d", i), width: 2 + g.rng.Intn(8)}
		if i == nIn-1 && g.rng.Intn(3) == 0 {
			v.isBool, v.width = true, 1
		} else if g.rng.Intn(4) == 0 {
			v.signed = true
		}
		g.inputs = append(g.inputs, v)
	}
	params := make([]string, len(g.inputs))
	for i, v := range g.inputs {
		params[i] = fmt.Sprintf("%s %s", g.typeName(v), v.name)
	}
	body, bodyType := g.intExpr(3)
	// Decide on (and fully generate) the optional conditional before
	// flushing declarations: boolExpr may create temporaries too.
	cond := ""
	if g.rng.Intn(2) == 0 {
		cond = g.boolExpr(2)
	}

	var sb strings.Builder
	retW := bodyType.width + 1
	if retW > 16 {
		retW = 16
	}
	retType := fmt.Sprintf("unsigned int(%d)", retW)
	if bodyType.signed {
		retType = fmt.Sprintf("int(%d)", retW)
	}
	fmt.Fprintf(&sb, "%s main(%s) {\n", retType, strings.Join(params, ", "))
	for _, d := range g.decls {
		fmt.Fprintf(&sb, "\t%s\n", d)
	}
	if cond != "" {
		fmt.Fprintf(&sb, "\t%s res = %s;\n", retType, body)
		fmt.Fprintf(&sb, "\tif %s { res = res + 1; } else { res = res - 1; }\n", cond)
		fmt.Fprintf(&sb, "\treturn res;\n}")
	} else {
		fmt.Fprintf(&sb, "\treturn %s;\n}", body)
	}
	return sb.String()
}

// TestRandomProgramsAgainstReference is the whole-stack fuzz property:
// random programs must execute identically on the simulated hardware and
// the reference evaluator.
func TestRandomProgramsAgainstReference(t *testing.T) {
	n := 40
	if testing.Short() {
		n = 8
	}
	rng := rand.New(rand.NewSource(20260704))
	for trial := 0; trial < n; trial++ {
		g := &progGen{rng: rng}
		src := g.generate()
		ex, err := CompileSource(src, HyperTarget())
		if err != nil {
			t.Fatalf("trial %d: compile failed:\n%s\n%v", trial, src, err)
		}
		if err := ex.CheckAgainstReference(randomInputs(ex, 16, int64(trial))); err != nil {
			t.Fatalf("trial %d: mismatch:\n%s\n%v", trial, src, err)
		}
	}
}

// TestRandomProgramsTraditional cross-checks a smaller sample on the
// traditional-AP execution model.
func TestRandomProgramsTraditional(t *testing.T) {
	n := 12
	if testing.Short() {
		n = 4
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < n; trial++ {
		g := &progGen{rng: rng}
		src := g.generate()
		ex, err := CompileSource(src, TraditionalTarget(tech.RRAM()))
		if err != nil {
			t.Fatalf("trial %d: compile failed:\n%s\n%v", trial, src, err)
		}
		if err := ex.CheckAgainstReference(randomInputs(ex, 8, int64(trial))); err != nil {
			t.Fatalf("trial %d: mismatch:\n%s\n%v", trial, src, err)
		}
	}
}
