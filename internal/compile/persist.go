package compile

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"hyperap/internal/dfg"
	"hyperap/internal/isa"
)

// This file is the on-disk codec behind the content-addressed program
// store: everything the expensive pipeline (DFG → AIG → LUT → codegen)
// produces is serialized, and everything cheap is rebuilt on decode.
// The DFG in particular is NOT stored — callers key the store by
// Fingerprint(src, tgt), so they hold the source on every lookup, and
// dfg.BuildSource is a parse (microseconds) while the graph's interior
// pointers would make it the most fragile thing in the payload.
//
// Integrity is layered: the store package wraps the payload in a
// checksummed envelope (bit rot, truncation), and DecodeExecutable
// cross-checks the canonical target options and the rebuilt DFG's
// component shapes (stale entry decoded under the wrong key).

// persistedExecutable is the gob payload of one stored program.
type persistedExecutable struct {
	Canonical string // Target.CanonicalOptions() of the compiling target
	Prog      []byte // isa.EncodeProgram
	Inputs    []Component
	Outputs   []Component
	Stats     Stats
	LUTs      []LUTInfo
}

// EncodeExecutable serializes a compiled program for the program store.
func EncodeExecutable(ex *Executable) ([]byte, error) {
	p := persistedExecutable{
		Canonical: ex.Target.CanonicalOptions(),
		Prog:      isa.EncodeProgram(ex.Prog),
		Inputs:    ex.Inputs,
		Outputs:   ex.Outputs,
		Stats:     ex.Stats,
		LUTs:      ex.LUTs,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&p); err != nil {
		return nil, fmt.Errorf("compile: encoding executable: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeExecutable rebuilds an Executable from a stored payload, the
// source it was compiled from and the target to run it on. The decoded
// entry must have been compiled under the same canonical target options
// and for the same source shape — a mismatch means the store entry is
// stale or was filed under the wrong key, and the caller falls back to
// recompilation.
func DecodeExecutable(payload []byte, src string, tgt Target) (*Executable, error) {
	var p persistedExecutable
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&p); err != nil {
		return nil, fmt.Errorf("compile: decoding executable: %w", err)
	}
	if p.Canonical != tgt.CanonicalOptions() {
		return nil, fmt.Errorf("compile: stored program targets %q, want %q", p.Canonical, tgt.CanonicalOptions())
	}
	prog, err := isa.DecodeProgram(p.Prog)
	if err != nil {
		return nil, fmt.Errorf("compile: decoding stored program: %w", err)
	}
	g, err := dfg.BuildSource(src)
	if err != nil {
		return nil, fmt.Errorf("compile: rebuilding DFG for stored program: %w", err)
	}
	ex := &Executable{
		Target:  tgt,
		DFG:     g,
		Prog:    prog,
		Inputs:  p.Inputs,
		Outputs: p.Outputs,
		Stats:   p.Stats,
		LUTs:    p.LUTs,
	}
	if err := ex.checkAgainstDFG(); err != nil {
		return nil, err
	}
	return ex, nil
}

// checkAgainstDFG verifies that the stored component layout matches the
// rebuilt graph's declared interface: same input/output counts, names
// and widths, and every stored bit location inside the target word.
func (ex *Executable) checkAgainstDFG() error {
	g := ex.DFG
	if len(ex.Inputs) != len(g.Inputs) {
		return fmt.Errorf("compile: stored program has %d inputs, source has %d", len(ex.Inputs), len(g.Inputs))
	}
	if len(ex.Outputs) != len(g.Outputs) {
		return fmt.Errorf("compile: stored program has %d outputs, source has %d", len(ex.Outputs), len(g.Outputs))
	}
	for i, comp := range ex.Inputs {
		n := g.Nodes[g.Inputs[i]]
		if comp.Name != n.Name || comp.Width != n.Width {
			return fmt.Errorf("compile: stored input %d is %s/%d, source declares %s/%d", i, comp.Name, comp.Width, n.Name, n.Width)
		}
	}
	for i, comp := range ex.Outputs {
		n := g.Nodes[g.Outputs[i]]
		if comp.Name != g.OutputNames[i] || comp.Width != n.Width {
			return fmt.Errorf("compile: stored output %d is %s/%d, source declares %s/%d", i, comp.Name, comp.Width, g.OutputNames[i], n.Width)
		}
	}
	for _, comps := range [][]Component{ex.Inputs, ex.Outputs} {
		for _, comp := range comps {
			for _, ref := range comp.Bits {
				if ref.Loc.Kind != LocNone && (ref.Loc.Col < 0 || ref.Loc.Col >= ex.Target.WordBits) {
					return fmt.Errorf("compile: stored bit of %s at column %d outside %d-bit word", comp.Name, ref.Loc.Col, ex.Target.WordBits)
				}
			}
		}
	}
	return nil
}
