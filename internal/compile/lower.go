package compile

import (
	"fmt"

	"hyperap/internal/aig"
	"hyperap/internal/dfg"
	"hyperap/internal/rtl"
)

// lowerDFG rewrites a dataflow graph into an and-inverter graph using the
// RTL library (paper §V-B.3: each DFG node is replaced by the RTL
// implementation overload matching its operand widths and signedness).
// It returns the AIG, the primary-input literals of each DFG input
// component, and the output literals of each DFG output bit.
func lowerDFG(g *dfg.Graph) (*aig.Graph, [][]aig.Lit, [][]aig.Lit, error) {
	ag := aig.New()
	vals := make([]rtl.BV, len(g.Nodes))
	piByInput := make([][]aig.Lit, len(g.Inputs))

	argBV := func(n *dfg.Node, i int) rtl.BV { return vals[n.Args[i]] }
	// extTo resizes an argument to the node's width using the argument's
	// own signedness — mirroring dfg.EvalNode's ext().
	extTo := func(n *dfg.Node, i int, w int) rtl.BV {
		arg := g.Nodes[n.Args[i]]
		return rtl.Resize(vals[arg.ID], w, arg.Signed)
	}

	for _, n := range g.Nodes {
		switch n.Op {
		case dfg.OpInput:
			bv := make(rtl.BV, n.Width)
			for i := range bv {
				bv[i] = ag.NewPI()
			}
			vals[n.ID] = bv
			piByInput[n.InputIdx] = bv
		case dfg.OpConst:
			vals[n.ID] = rtl.Const(n.Const, n.Width)
		case dfg.OpAdd:
			vals[n.ID] = rtl.Resize(rtl.Add(ag, extTo(n, 0, n.Width), extTo(n, 1, n.Width)), n.Width, false)
		case dfg.OpSub:
			d, _ := rtl.Sub(ag, extTo(n, 0, n.Width), extTo(n, 1, n.Width))
			vals[n.ID] = d
		case dfg.OpMul:
			// Signed operands must be sign-extended to the result width
			// (modular multiply); unsigned operands keep their natural
			// width — zero-extension would only add dead partial
			// products.
			mulOp := func(i int) rtl.BV {
				arg := g.Nodes[n.Args[i]]
				if arg.Signed && arg.Width < n.Width {
					return rtl.Resize(vals[arg.ID], n.Width, true)
				}
				return vals[arg.ID]
			}
			vals[n.ID] = rtl.MulTrunc(ag, mulOp(0), mulOp(1), n.Width)
		case dfg.OpDiv:
			q, _ := rtl.UDiv(ag, argBV(n, 0), argBV(n, 1))
			vals[n.ID] = rtl.Resize(q, n.Width, false)
		case dfg.OpMod:
			_, r := rtl.UDiv(ag, argBV(n, 0), argBV(n, 1))
			vals[n.ID] = rtl.Resize(r, n.Width, false)
		case dfg.OpShlC:
			vals[n.ID] = rtl.Resize(rtl.ShlConst(argBV(n, 0), int(n.Const)), n.Width, false)
		case dfg.OpShrC:
			vals[n.ID] = rtl.Resize(rtl.ShrConst(argBV(n, 0), int(n.Const), n.ArgSigned), n.Width, false)
		case dfg.OpShlV:
			vals[n.ID] = rtl.Resize(rtl.ShlVar(ag, argBV(n, 0), argBV(n, 1)), n.Width, false)
		case dfg.OpShrV:
			vals[n.ID] = rtl.Resize(rtl.ShrVar(ag, argBV(n, 0), argBV(n, 1), n.ArgSigned), n.Width, false)
		case dfg.OpAnd:
			vals[n.ID] = rtl.And(ag, extTo(n, 0, n.Width), extTo(n, 1, n.Width))
		case dfg.OpOr:
			vals[n.ID] = rtl.Or(ag, extTo(n, 0, n.Width), extTo(n, 1, n.Width))
		case dfg.OpXor:
			vals[n.ID] = rtl.Xor(ag, extTo(n, 0, n.Width), extTo(n, 1, n.Width))
		case dfg.OpNot:
			vals[n.ID] = rtl.Not(argBV(n, 0))
		case dfg.OpNeg:
			vals[n.ID] = rtl.Neg(ag, extTo(n, 0, n.Width))
		case dfg.OpEq:
			vals[n.ID] = rtl.BV{rtl.Eq(ag, argBV(n, 0), argBV(n, 1))}
		case dfg.OpNe:
			vals[n.ID] = rtl.BV{rtl.Eq(ag, argBV(n, 0), argBV(n, 1)).Not()}
		case dfg.OpLt:
			if n.ArgSigned {
				vals[n.ID] = rtl.BV{rtl.Slt(ag, argBV(n, 0), argBV(n, 1))}
			} else {
				vals[n.ID] = rtl.BV{rtl.Ult(ag, argBV(n, 0), argBV(n, 1))}
			}
		case dfg.OpLe:
			// a <= b  ⇔  !(b < a)
			if n.ArgSigned {
				vals[n.ID] = rtl.BV{rtl.Slt(ag, argBV(n, 1), argBV(n, 0)).Not()}
			} else {
				vals[n.ID] = rtl.BV{rtl.Ult(ag, argBV(n, 1), argBV(n, 0)).Not()}
			}
		case dfg.OpLAnd:
			vals[n.ID] = rtl.BV{ag.And(argBV(n, 0)[0], argBV(n, 1)[0])}
		case dfg.OpLOr:
			vals[n.ID] = rtl.BV{ag.Or(argBV(n, 0)[0], argBV(n, 1)[0])}
		case dfg.OpLNot:
			vals[n.ID] = rtl.BV{argBV(n, 0)[0].Not()}
		case dfg.OpMux:
			sel := argBV(n, 0)[0]
			vals[n.ID] = rtl.MuxBV(ag, sel, extTo(n, 1, n.Width), extTo(n, 2, n.Width))
		case dfg.OpResize:
			vals[n.ID] = rtl.Resize(argBV(n, 0), n.Width, n.ArgSigned)
		case dfg.OpSqrt:
			vals[n.ID] = rtl.Resize(rtl.Sqrt(ag, argBV(n, 0)), n.Width, false)
		case dfg.OpExp:
			vals[n.ID] = rtl.Resize(rtl.Exp(ag, argBV(n, 0)), n.Width, false)
		default:
			return nil, nil, nil, fmt.Errorf("compile: cannot lower %v", n.Op)
		}
		if len(vals[n.ID]) != n.Width {
			return nil, nil, nil, fmt.Errorf("compile: width mismatch lowering %v: %d vs %d", n.Op, len(vals[n.ID]), n.Width)
		}
	}

	outs := make([][]aig.Lit, len(g.Outputs))
	for i, o := range g.Outputs {
		outs[i] = append([]aig.Lit(nil), vals[o]...)
	}
	return ag, piByInput, outs, nil
}
