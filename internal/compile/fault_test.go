package compile

import (
	"errors"
	"reflect"
	"testing"

	"hyperap/internal/arch"
	"hyperap/internal/tcam"
)

// faultInputs is a small deterministic batch for the fault tests.
func faultInputs(n int) [][]uint64 {
	out := make([][]uint64, n)
	for i := range out {
		out[i] = []uint64{uint64(i*7+3) & 31, uint64(i*13+1) & 31}
	}
	return out
}

// TestFaultRepairBitIdentical is the compile-level acceptance path: with
// a fixed seed the fault model injects at least one stuck cell that
// write-verify detects mid-run, spare-row repair absorbs it, and the
// batch output is bit-identical to the fault-free reference. Disabling
// repair on the very same seed (same defect map) must turn that into a
// reported FaultError — never a silently wrong result.
func TestFaultRepairBitIdentical(t *testing.T) {
	src := `unsigned int(6) main(unsigned int(5) a, unsigned int(5) b){ return a + b; }`
	ex, err := CompileSource(src, HyperTarget())
	if err != nil {
		t.Fatal(err)
	}
	inputs := faultInputs(32)
	want := make([][]uint64, len(inputs))
	for i, vals := range inputs {
		want[i] = ex.Reference(vals)
	}

	// Hunt for a seed whose defect map lands under written cells. The
	// fault model is deterministic, so once a seed demonstrates
	// detect+repair it does forever; the loop just avoids hard-coding a
	// seed that would rot if the layout changes.
	found := int64(-1)
	for seed := int64(1); seed <= 64; seed++ {
		fc := tcam.FaultConfig{Seed: seed, StuckAtRate: 2e-3, SpareRows: 8}
		outs, chip, err := ex.RunBatch(inputs, WithFaults(fc))
		if err != nil {
			continue // unrepairable under this seed; loud, not wrong
		}
		r := chip.Report()
		if r.Faults.Detected < 1 || r.Faults.Repairs < 1 {
			continue // defects missed the written columns
		}
		if !reflect.DeepEqual(outs, want) {
			t.Fatalf("seed %d: repaired run differs from fault-free reference", seed)
		}
		found = seed
		t.Logf("seed %d: detected=%d repairs=%d, outputs bit-identical", seed, r.Faults.Detected, r.Faults.Repairs)
		break
	}
	if found < 0 {
		t.Fatal("no seed in 1..64 produced a detected+repaired fault; rate/layout drifted")
	}

	// Same seed, repair off: the identical defect map must fail loudly.
	fc := tcam.FaultConfig{Seed: found, StuckAtRate: 2e-3, SpareRows: 8, DisableRepair: true}
	_, _, err = ex.RunBatch(inputs, WithFaults(fc))
	var afe *arch.FaultError
	var tfe *tcam.FaultError
	if !errors.As(err, &afe) && !errors.As(err, &tfe) {
		t.Fatalf("repair disabled, seed %d: err = %v, want a typed FaultError", found, err)
	}
}

// TestSparePEAbsorbsFaults: WithSparePEs gives RunBatch a replay path,
// so fault maps that kill a PE outright can still finish correctly.
// Statistically some seeds exhaust even the spare; the assertion is the
// safety property — over the sweep, no run ever completes with wrong
// output, and at least one run is rescued by a spare-PE retry.
func TestSparePEAbsorbsFaults(t *testing.T) {
	src := `unsigned int(6) main(unsigned int(5) a, unsigned int(5) b){ return a + b; }`
	ex, err := CompileSource(src, HyperTarget())
	if err != nil {
		t.Fatal(err)
	}
	inputs := faultInputs(32)
	want := make([][]uint64, len(inputs))
	for i, vals := range inputs {
		want[i] = ex.Reference(vals)
	}
	rescued := false
	for seed := int64(1); seed <= 128 && !rescued; seed++ {
		// No spare rows at all, so the first detected fault escalates
		// straight to a PE failure; the spare PE is the only line of
		// defence. The rate models sparse early-life defects — the regime
		// spare-PE replay is for: the replacement must itself pass a fully
		// verified restore, which dense defect maps (rightly) fail.
		fc := tcam.FaultConfig{Seed: seed, StuckAtRate: 2e-4}
		outs, chip, err := ex.RunBatch(inputs, WithFaults(fc), WithSparePEs(1))
		if err != nil {
			var afe *arch.FaultError
			var tfe *tcam.FaultError
			if !errors.As(err, &afe) && !errors.As(err, &tfe) {
				t.Fatalf("seed %d: non-fault error: %v", seed, err)
			}
			continue
		}
		if !reflect.DeepEqual(outs, want) {
			t.Fatalf("seed %d: completed run returned wrong output", seed)
		}
		if chip.Report().Retries > 0 {
			rescued = true
		}
	}
	if !rescued {
		t.Error("no seed in 1..128 exercised a spare-PE retry; rate/layout drifted")
	}
}

// TestWithEndurance is the option's plumbing check: a tiny pulse budget
// must surface endurance deaths (detected, and either repaired or
// reported) instead of completing as if cells were immortal.
func TestWithEndurance(t *testing.T) {
	src := `unsigned int(6) main(unsigned int(5) a, unsigned int(5) b){ return a + b; }`
	ex, err := CompileSource(src, HyperTarget())
	if err != nil {
		t.Fatal(err)
	}
	inputs := faultInputs(16)
	outs, chip, err := ex.RunBatch(inputs, WithFaults(tcam.FaultConfig{Seed: 5, SpareRows: 64}), WithEndurance(1))
	if err != nil {
		var afe *arch.FaultError
		var tfe *tcam.FaultError
		if !errors.As(err, &afe) && !errors.As(err, &tfe) {
			t.Fatalf("non-fault error: %v", err)
		}
		return // budget too tight even for the spares: loud is fine
	}
	r := chip.Report()
	if r.Faults.EnduranceFailed == 0 || r.Faults.Detected == 0 {
		t.Fatalf("budget 2 killed no cells: %+v", r.Faults)
	}
	for i, vals := range inputs {
		if want := ex.Reference(vals); !reflect.DeepEqual(outs[i], want) {
			t.Fatalf("slot %d: wear-repaired run wrong: got %v want %v", i, outs[i], want)
		}
	}
}

// TestSeparatedSpreadsWrites pins the design claim behind satellite
// coverage: with the execution model held fixed, the
// logical-unified-physical-separated TCAM splits every word's T and F
// cells across two crossbars, so each array absorbs roughly half the
// programming pulses of the monolithic array — and the write path costs
// half the cycles. Per-cell wear is identical (same logical writes);
// what changes is how the exposure is spread.
func TestSeparatedSpreadsWrites(t *testing.T) {
	src := `unsigned int(8) main(unsigned int(4) a, unsigned int(4) b){ return a * b; }`
	run := func(mono bool) (arrays []tcam.Wear, cells []int, rep arch.Report, max uint32) {
		tgt := HyperTarget()
		tgt.Monolithic = mono
		ex, err := CompileSource(src, tgt)
		if err != nil {
			t.Fatal(err)
		}
		inputs := faultInputs(32)
		_, chip, err := ex.RunBatch(inputs)
		if err != nil {
			t.Fatal(err)
		}
		for _, x := range chip.PE(0).M.TCAM().Arrays() {
			arrays = append(arrays, x.WearReport())
			cells = append(cells, x.Rows()*x.Cols())
		}
		return arrays, cells, chip.Report(), chip.PE(0).M.TCAM().WearReport().MaxPulses
	}
	sepW, sepCells, sepRep, sepMax := run(false)
	monoW, monoCells, monoRep, monoMax := run(true)
	if len(sepW) != 2 || len(monoW) != 1 {
		t.Fatalf("array counts: separated %d, monolithic %d", len(sepW), len(monoW))
	}
	// Same logical writes → the hottest cell is equally hot either way.
	if sepMax != monoMax {
		t.Errorf("per-cell max wear differs: separated %d, monolithic %d", sepMax, monoMax)
	}
	total := func(w []tcam.Wear, cells []int) (sum float64) {
		for i := range w {
			sum += w[i].MeanPulses * float64(cells[i])
		}
		return sum
	}
	sepTotal := total(sepW, sepCells)
	monoTotal := total(monoW, monoCells)
	if sepTotal != monoTotal {
		t.Errorf("total pulses differ: separated %.0f, monolithic %.0f", sepTotal, monoTotal)
	}
	// The spreading claim: no separated array absorbs more than ~half the
	// pulse traffic the single monolithic array takes.
	busiest := sepW[0].MeanPulses * float64(sepCells[0])
	if b := sepW[1].MeanPulses * float64(sepCells[1]); b > busiest {
		busiest = b
	}
	if busiest > 0.6*monoTotal {
		t.Errorf("separated busiest array carries %.0f of %.0f monolithic pulses; writes not spread", busiest, monoTotal)
	}
	// And the latency consequence: monolithic writes take two pulse
	// slots, so the same program costs more cycles.
	if monoRep.Cycles <= sepRep.Cycles {
		t.Errorf("monolithic cycles %d should exceed separated %d", monoRep.Cycles, sepRep.Cycles)
	}
	t.Logf("pulses: separated arrays %.0f/%.0f vs monolithic %.0f; cycles %d vs %d",
		sepW[0].MeanPulses*float64(sepCells[0]), sepW[1].MeanPulses*float64(sepCells[1]), monoTotal,
		sepRep.Cycles, monoRep.Cycles)
}
