package compile

import (
	"testing"

	"hyperap/internal/tech"
)

// TestEnduranceAdvantage quantifies the lifetime consequence of
// Multi-Search-Single-Write: running the same computation, the
// traditional execution model programs its hottest RRAM cell far more
// often than Hyper-AP does. RRAM endurance is bounded (~1e6-1e12
// pulses), so the write reduction is a lifetime win, not just a latency
// one.
func TestEnduranceAdvantage(t *testing.T) {
	src := `unsigned int(9) main(unsigned int(8) a, unsigned int(8) b){ return a + b; }`
	wearOf := func(tgt Target) (max uint32, mean float64) {
		ex, err := CompileSource(src, tgt)
		if err != nil {
			t.Fatal(err)
		}
		chip := ex.NewChip(64)
		pe := chip.PE(0)
		// Run the program several times over fresh inputs, as an
		// iterative workload would.
		for pass := 0; pass < 5; pass++ {
			for r := 0; r < 64; r++ {
				if err := ex.Load(pe, r, []uint64{uint64(r * (pass + 3)), uint64(r ^ pass)}); err != nil {
					t.Fatal(err)
				}
			}
			if err := chip.Execute(ex.Prog); err != nil {
				t.Fatal(err)
			}
		}
		w := pe.M.TCAM().WearReport()
		return w.MaxPulses, w.MeanPulses
	}
	hyMax, hyMean := wearOf(HyperTarget())
	trMax, trMean := wearOf(TraditionalTarget(tech.RRAM()))
	if hyMax == 0 || trMax == 0 {
		t.Fatal("wear not recorded")
	}
	if trMax <= hyMax {
		t.Errorf("traditional max wear %d should exceed Hyper-AP %d", trMax, hyMax)
	}
	if trMean <= hyMean {
		t.Errorf("traditional mean wear %.2f should exceed Hyper-AP %.2f", trMean, hyMean)
	}
	t.Logf("hottest-cell pulses over 5 passes: traditional %d vs Hyper-AP %d (%.1fx lifetime)",
		trMax, hyMax, float64(trMax)/float64(hyMax))
}
