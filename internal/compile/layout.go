// Package compile is the back end of the compilation framework (paper
// §V-B.5): it drives DFG generation → RTL/AIG lowering → lookup-table
// mapping, decides the data layout (which bits share an encoded pair,
// which live as plain TCAM bits), schedules the lookup tables so that
// pairs of results are committed with one encoded write
// (Multi-Search-Single-Write), and emits the SetKey/Search/Write
// instruction stream of Table I. It also provides the Runner used by
// tests and benchmarks to execute compiled programs on the
// micro-architecture simulator and compare against the reference
// evaluator.
package compile

import (
	"fmt"
)

// LocKind says how a stored bit occupies TCAM columns.
type LocKind int

// Location kinds.
const (
	LocNone   LocKind = iota // not stored (unused input)
	LocSingle                // one plain TCAM bit
	LocPairHi                // hi half of an encoded pair (column Col)
	LocPairLo                // lo half of an encoded pair (column Col-1 holds hi)
)

// Loc is the storage location of one logical bit (an AIG node).
type Loc struct {
	Kind    LocKind
	Col     int // LocSingle/LocPairHi: the bit's column; LocPairLo: hi column + 1
	Partner int // LocPairHi/LocPairLo: AIG node sharing the pair
}

// columnAlloc hands out TCAM bit columns with a free list. Pairs occupy
// two adjacent columns.
type columnAlloc struct {
	width    int
	used     []bool
	everUsed []bool // columns that have ever been allocated
	peak     int

	virginFree int // count of never-allocated columns
	reserve    int // virgin columns set aside for not-yet-placed inputs
}

func newColumnAlloc(width int) *columnAlloc {
	return &columnAlloc{width: width, used: make([]bool, width), everUsed: make([]bool, width), virginFree: width}
}

func (a *columnAlloc) countUsed() int {
	n := 0
	for _, u := range a.used {
		if u {
			n++
		}
	}
	return n
}

func (a *columnAlloc) note() {
	if n := a.countUsed(); n > a.peak {
		a.peak = n
	}
}

func (a *columnAlloc) ok(c int, virgin bool) bool {
	return !a.used[c] && !(virgin && a.everUsed[c])
}

func (a *columnAlloc) take(c int) {
	a.used[c] = true
	if !a.everUsed[c] {
		a.everUsed[c] = true
		a.virginFree--
	}
}

// virginCost counts how many never-allocated columns the candidate
// columns would consume.
func (a *columnAlloc) virginCost(cols ...int) int {
	n := 0
	for _, c := range cols {
		if !a.everUsed[c] {
			n++
		}
	}
	return n
}

// budgetOK reports whether an intermediate allocation may consume the
// given virgin columns without eating into the reserve set aside for
// not-yet-placed inputs (inputs must live in virgin columns; see
// allocSingle).
func (a *columnAlloc) budgetOK(virgin bool, cols ...int) bool {
	if virgin {
		return true // input placements draw from their own reserve
	}
	return a.virginFree-a.virginCost(cols...) >= a.reserve
}

// reservePI sets aside n virgin columns for inputs that have not been
// placed yet.
func (a *columnAlloc) reservePI(n int) { a.reserve += n }

// releaseReserve returns n reserved columns to the general pool (called
// as inputs get placed).
func (a *columnAlloc) releaseReserve(n int) { a.reserve -= n }

// allocSingle returns one free column, preferring a column whose buddy
// (the other half of an even-aligned pair slot) is already taken so that
// even-aligned pair slots stay available, and preferring recycled columns
// so virgin space remains for inputs. With virgin set, the column must
// never have been allocated before: primary inputs are loaded by the host
// at time zero, so their columns must not carry earlier intermediate
// writes (and conversely two inputs never collide).
func (a *columnAlloc) allocSingle(virgin bool) (int, error) {
	best, bestScore := -1, -1
	for c := 0; c < a.width; c++ {
		if !a.ok(c, virgin) || !a.budgetOK(virgin, c) {
			continue
		}
		score := 0
		if a.everUsed[c] {
			score += 2 // recycled: keeps virgin space for inputs
		}
		if a.used[c^1] || a.everUsed[c^1] != a.everUsed[c] {
			score++ // buddy occupied or mismatched: fills a hole
		}
		if score > bestScore {
			best, bestScore = c, score
		}
		if score == 3 {
			break
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("compile: out of TCAM columns (%d-bit word exhausted: %d used, %d virgin free, %d reserved); split the program across SIMD slots", a.width, a.countUsed(), a.virginFree, a.reserve)
	}
	a.take(best)
	a.note()
	return best, nil
}

// allocPair returns two adjacent free columns, even-aligned to avoid
// fragmenting the pair space and preferring recycled space.
func (a *columnAlloc) allocPair(virgin bool) (int, error) {
	best, bestScore := -1, -1
	for _, start := range []int{0, 1} { // even alignment first
		for c := start; c+1 < a.width; c += 2 {
			if !a.ok(c, virgin) || !a.ok(c+1, virgin) || !a.budgetOK(virgin, c, c+1) {
				continue
			}
			score := 0
			if a.everUsed[c] {
				score++
			}
			if a.everUsed[c+1] {
				score++
			}
			if start == 0 {
				score++ // prefer even alignment
			}
			if score > bestScore {
				best, bestScore = c, score
			}
		}
		if best >= 0 {
			break // only try odd alignment when even failed entirely
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("compile: out of adjacent TCAM column pairs (%d-bit word exhausted: %d used, %d virgin free, %d reserved)", a.width, a.countUsed(), a.virginFree, a.reserve)
	}
	a.take(best)
	a.take(best + 1)
	a.note()
	return best, nil
}

func (a *columnAlloc) free(cols ...int) {
	for _, c := range cols {
		a.used[c] = false
	}
}

// layout tracks where every live AIG node's value is stored.
type layout struct {
	alloc *columnAlloc
	locs  map[int]Loc // AIG node → location
}

func newLayout(width int) *layout {
	return &layout{alloc: newColumnAlloc(width), locs: map[int]Loc{}}
}

func (l *layout) loc(node int) (Loc, bool) {
	lc, ok := l.locs[node]
	return lc, ok
}

// placeSingle stores a node in a fresh single column; virgin placements
// are for primary inputs (see columnAlloc.allocSingle).
func (l *layout) placeSingle(node int, virgin bool) (int, error) {
	col, err := l.alloc.allocSingle(virgin)
	if err != nil {
		return 0, err
	}
	l.locs[node] = Loc{Kind: LocSingle, Col: col}
	return col, nil
}

// placePair stores two nodes as an encoded pair (hi, lo).
func (l *layout) placePair(hi, lo int, virgin bool) (int, error) {
	col, err := l.alloc.allocPair(virgin)
	if err != nil {
		return 0, err
	}
	l.locs[hi] = Loc{Kind: LocPairHi, Col: col, Partner: lo}
	l.locs[lo] = Loc{Kind: LocPairLo, Col: col + 1, Partner: hi}
	return col, nil
}

// release frees a node's storage (its partner, if any, keeps the pair
// alive: only when both halves are dead are the columns reusable).
func (l *layout) release(node int) {
	lc, ok := l.locs[node]
	if !ok {
		return
	}
	delete(l.locs, node)
	switch lc.Kind {
	case LocSingle:
		l.alloc.free(lc.Col)
	case LocPairHi:
		if _, alive := l.locs[lc.Partner]; !alive {
			l.alloc.free(lc.Col, lc.Col+1)
		}
	case LocPairLo:
		if _, alive := l.locs[lc.Partner]; !alive {
			l.alloc.free(lc.Col-1, lc.Col)
		}
	}
}

// allocOutputSingle allocates a column that is not bound to an AIG node
// (materialised constants and inverted outputs); it is never freed.
func (l *layout) allocOutputSingle() (int, error) {
	return l.alloc.allocSingle(false)
}

// pairColumns returns (hiCol, loCol) for a node in a pair.
func pairColumns(lc Loc) (int, int) {
	if lc.Kind == LocPairHi {
		return lc.Col, lc.Col + 1
	}
	return lc.Col - 1, lc.Col
}
