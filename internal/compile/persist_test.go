package compile

import (
	"context"
	"reflect"
	"testing"
)

const persistSrc = `unsigned int(6) main(unsigned int(5) a, unsigned int(5) b){ return a + b; }`

// TestExecutableRoundTrip: an encoded executable decodes back to one
// that runs bit-identically, with the same interface, program and
// stats. The DFG is rebuilt from source on decode, not stored.
func TestExecutableRoundTrip(t *testing.T) {
	tgt := HyperTarget()
	ex, err := CompileSource(persistSrc, tgt)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := EncodeExecutable(ex)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeExecutable(payload, persistSrc, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Inputs, ex.Inputs) || !reflect.DeepEqual(got.Outputs, ex.Outputs) {
		t.Error("component layout did not round-trip")
	}
	if !reflect.DeepEqual(got.Prog, ex.Prog) {
		t.Error("instruction stream did not round-trip")
	}
	if got.Stats != ex.Stats {
		t.Errorf("stats = %+v, want %+v", got.Stats, ex.Stats)
	}
	if !reflect.DeepEqual(got.LUTs, ex.LUTs) {
		t.Error("LUT info did not round-trip")
	}
	inputs := [][]uint64{{3, 4}, {31, 31}, {0, 0}, {17, 5}}
	outA, _, err := ex.RunBatchContext(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	outB, _, err := got.RunBatchContext(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(outA, outB) {
		t.Errorf("decoded executable computes %v, original %v", outB, outA)
	}
}

// TestDecodeExecutableRejects: a payload decoded under the wrong source
// or target must fail loudly, never produce a runnable mismatch.
func TestDecodeExecutableRejects(t *testing.T) {
	tgt := HyperTarget()
	ex, err := CompileSource(persistSrc, tgt)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := EncodeExecutable(ex)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := DecodeExecutable(payload[:len(payload)/2], persistSrc, tgt); err == nil {
		t.Error("truncated payload decoded without error")
	}
	other := HyperCMOSTarget()
	if other.CanonicalOptions() == tgt.CanonicalOptions() {
		t.Fatal("fixture targets must differ canonically")
	}
	if _, err := DecodeExecutable(payload, persistSrc, other); err == nil {
		t.Error("wrong target decoded without error")
	}
	// A different source shape (interface mismatch against the rebuilt
	// DFG) must be caught by the component cross-check.
	wrongSrc := `unsigned int(6) main(unsigned int(5) a){ return a; }`
	if _, err := DecodeExecutable(payload, wrongSrc, tgt); err == nil {
		t.Error("wrong source decoded without error")
	}
}
