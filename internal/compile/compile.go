package compile

import (
	"fmt"

	"hyperap/internal/aig"
	"hyperap/internal/bits"
	"hyperap/internal/dfg"
	"hyperap/internal/isa"
	"hyperap/internal/lut"
	"hyperap/internal/tech"
)

// Target selects the machine the compiler generates code for. The same
// framework retargets traditional AP and Hyper-AP on either technology by
// changing α and the execution model, exactly as §V-B.4 describes.
type Target struct {
	Tech        tech.Tech
	Monolithic  bool // traditional monolithic array design (writes twice as slow)
	Mode        lut.Mode
	K           int // lookup-table input limit (12 in the paper)
	CutsPerNode int
	WordBits    int // TCAM word width (256 in the paper)
	// NoAccumulation disables the accumulation unit (the Fig. 19b
	// ablation): every multi-pattern search is immediately followed by a
	// write, i.e. Single-Search-Multi-Pattern without
	// Multi-Search-Single-Write.
	NoAccumulation bool
	// SingleBitInputs stores every primary input as a plain (non-encoded)
	// TCAM bit and keeps input columns out of the recycling pool, so the
	// program can be re-executed after new inputs arrive in place.
	// Inter-PE communication macros write single bits between passes, so
	// kernels whose inputs arrive over the MovR links need this layout
	// (costing some searches and columns relative to the default).
	SingleBitInputs bool
}

// HyperTarget is the paper's main configuration: RRAM Hyper-AP.
func HyperTarget() Target {
	return Target{Tech: tech.RRAM(), Mode: lut.ModeHyper, K: lut.MaxInputs, CutsPerNode: 4, WordBits: tech.PEBits}
}

// HyperCMOSTarget is the CMOS Hyper-AP of the Fig. 19 study.
func HyperCMOSTarget() Target {
	t := HyperTarget()
	t.Tech = tech.CMOS()
	return t
}

// TraditionalTarget is a traditional AP (Single-Search-Single-Pattern,
// Single-Search-Single-Write, monolithic array) on the given technology.
func TraditionalTarget(t tech.Tech) Target {
	return Target{Tech: t, Monolithic: true, Mode: lut.ModeTraditional, K: lut.MaxInputs, CutsPerNode: 4, WordBits: tech.PEBits}
}

// CycleParams returns the Table I cycle constants for the target.
func (t Target) CycleParams() isa.CycleParams {
	w := t.Tech.TCAMBitWriteCycles
	if t.Monolithic {
		w *= 2
	}
	return isa.CycleParams{TCAMBitWriteCycles: w, DataMoveCycles: 20}
}

// BitRef locates one stored logical bit.
type BitRef struct {
	Node int // AIG node
	Loc  Loc
}

// Component is one input or output value of the compiled function.
type Component struct {
	Name   string
	Width  int
	Signed bool
	Bits   []BitRef // LSB first
}

// Stats summarises a compilation.
type Stats struct {
	Searches      int // search instructions
	Writes        int // write instructions (all kinds)
	EncodedWrites int // writes committing two result bits at once
	SetKeys       int
	LUTs          int
	Patterns      int // Σ lookup-table patterns (the traditional search count)
	Cycles        int64
	PeakColumns   int
	AIGNodes      int
}

// Ops returns searches + writes, the paper's operation count metric.
func (s Stats) Ops() int { return s.Searches + s.Writes }

// LUTInfo summarises one generated lookup table.
type LUTInfo struct {
	Inputs   int // leaf count (≤ K)
	Patterns int // traditional-AP entries (ISOP cubes)
}

// Executable is a compiled program plus its data layout.
//
// An Executable is immutable once Compile returns: Run, RunBatch,
// Reference, CheckAgainstReference and every accessor only read it, and
// each execution builds fresh chip state. Any number of goroutines may
// therefore share one Executable and execute it concurrently without
// synchronisation (the guarantee hyperap-serve's coalescer relies on;
// enforced by race-enabled stress tests).
type Executable struct {
	Target  Target
	DFG     *dfg.Graph
	Prog    isa.Program
	Inputs  []Component
	Outputs []Component
	Stats   Stats
	// LUTs describes every generated lookup table (for reporting).
	LUTs []LUTInfo
}

// CompileSource parses, builds and compiles a program's main function.
func CompileSource(src string, tgt Target) (*Executable, error) {
	g, err := dfg.BuildSource(src)
	if err != nil {
		return nil, err
	}
	return Compile(g, tgt)
}

// Compile lowers a dataflow graph to an ISA program for the target.
func Compile(g *dfg.Graph, tgt Target) (*Executable, error) {
	if tgt.WordBits <= 0 || tgt.WordBits > isa.KeyWidth {
		return nil, fmt.Errorf("compile: word width %d outside 1..%d", tgt.WordBits, isa.KeyWidth)
	}
	ag, piByInput, outBits, err := lowerDFG(g)
	if err != nil {
		return nil, err
	}
	var allOuts []aig.Lit
	for _, bv := range outBits {
		allOuts = append(allOuts, bv...)
	}
	opt := lut.Options{K: tgt.K, CutsPerNode: tgt.CutsPerNode, Alpha: tgt.Tech.Alpha(), CubeBudget: 48, Mode: tgt.Mode}
	mp, err := lut.Map(ag, allOuts, opt)
	if err != nil {
		return nil, err
	}
	e := &emitter{tgt: tgt, ag: ag, mp: mp, lay: newLayout(tgt.WordBits), piLoc: map[int]Loc{}}
	if err := e.run(); err != nil {
		return nil, err
	}
	ex := &Executable{Target: tgt, DFG: g, Prog: e.prog}
	ex.Stats = Stats{
		Searches:      e.prog.CountOp(isa.OpSearch),
		Writes:        e.prog.CountOp(isa.OpWrite),
		EncodedWrites: e.encodedWrites,
		SetKeys:       e.prog.CountOp(isa.OpSetKey),
		LUTs:          len(mp.LUTs),
		Patterns:      mp.TotalCubes(),
		Cycles:        e.prog.TotalCycles(tgt.CycleParams()),
		PeakColumns:   e.lay.alloc.peak,
		AIGNodes:      ag.NumAnds(),
	}
	for _, l := range mp.LUTs {
		ex.LUTs = append(ex.LUTs, LUTInfo{Inputs: len(l.Leaves), Patterns: len(l.Cubes)})
	}
	// Input components.
	for i, nid := range g.Inputs {
		n := g.Nodes[nid]
		comp := Component{Name: n.Name, Width: n.Width, Signed: n.Signed}
		for _, l := range piByInput[i] {
			comp.Bits = append(comp.Bits, BitRef{Node: l.Node(), Loc: e.piLoc[l.Node()]})
		}
		ex.Inputs = append(ex.Inputs, comp)
	}
	// Output components: outputRefs is flat over all output bits, in
	// component order.
	pos := 0
	for i, nid := range g.Outputs {
		n := g.Nodes[nid]
		comp := Component{Name: g.OutputNames[i], Width: n.Width, Signed: g.OutputSigned[i]}
		comp.Bits = e.outputRefs[pos : pos+n.Width]
		pos += n.Width
		ex.Outputs = append(ex.Outputs, comp)
	}
	return ex, nil
}

// emitter generates the instruction stream.
type emitter struct {
	tgt Target
	ag  *aig.Graph
	mp  *lut.Mapping
	lay *layout

	prog          isa.Program
	encodedWrites int
	outputRefs    []BitRef

	// piLoc snapshots each primary input's storage at placement time;
	// unlike the live layout it survives liveness-driven column release,
	// since the host loads inputs before execution starts.
	piLoc map[int]Loc
	// piPending tracks inputs that still need a (virgin) column; a
	// matching reservation in the allocator keeps intermediates from
	// consuming the virgin space first.
	piPending map[int]bool

	useCount map[int]int
	keep     map[int]bool
	written  map[int]bool
}

// recordPI snapshots a primary input's freshly assigned location and
// returns its column reservation to the pool.
func (e *emitter) recordPI(node int) {
	if e.ag.IsPI(node) {
		if loc, ok := e.lay.loc(node); ok {
			e.piLoc[node] = loc
			if e.piPending[node] {
				delete(e.piPending, node)
				e.lay.alloc.releaseReserve(1)
			}
		}
	}
}

func (e *emitter) run() error {
	// Use counts: every LUT leaf occurrence plus output references.
	e.useCount = map[int]int{}
	e.keep = map[int]bool{}
	e.written = map[int]bool{}
	consumers := map[int][]*lut.LUT{}
	for _, l := range e.mp.LUTs {
		for _, leaf := range l.Leaves {
			e.useCount[leaf]++
			consumers[leaf] = append(consumers[leaf], l)
		}
	}
	for _, o := range e.mp.Outputs {
		if o.Kind != lut.OutConst {
			e.keep[o.Node] = true
		}
	}
	// Reserve virgin columns for every input bit that will need storage.
	e.piPending = map[int]bool{}
	for _, l := range e.mp.LUTs {
		for _, leaf := range l.Leaves {
			if e.ag.IsPI(leaf) {
				e.piPending[leaf] = true
			}
		}
	}
	for _, o := range e.mp.Outputs {
		if o.Kind == lut.OutInput {
			e.piPending[o.Node] = true
		}
	}
	e.lay.alloc.reservePI(len(e.piPending))
	if e.tgt.Mode == lut.ModeTraditional {
		if err := e.runTraditional(); err != nil {
			return err
		}
	} else {
		if err := e.runHyper(consumers); err != nil {
			return err
		}
	}
	return e.materializeOutputs()
}

// releaseLeaves decrements use counts after a LUT's searches are emitted.
// Dead primary-input columns may be reused by intermediates (their writes
// happen after the input's last read); inputs themselves are only ever
// placed in virgin columns, so two inputs never collide at load time.
func (e *emitter) releaseLeaves(l *lut.LUT) {
	for _, leaf := range l.Leaves {
		e.useCount[leaf]--
		if e.useCount[leaf] == 0 && !e.keep[leaf] {
			if e.tgt.SingleBitInputs && e.ag.IsPI(leaf) {
				continue // iterative mode: inputs are refilled in place
			}
			e.lay.release(leaf)
		}
	}
}

// ensureStored gives a primary input a single column if it has none yet
// (inputs are loaded by the host before execution, §VI-A.3).
func (e *emitter) ensureStored(node int) (Loc, error) {
	if loc, ok := e.lay.loc(node); ok {
		return loc, nil
	}
	if !e.ag.IsPI(node) {
		return Loc{}, fmt.Errorf("compile: node %d used before being written", node)
	}
	if _, err := e.lay.placeSingle(node, true); err != nil {
		return Loc{}, err
	}
	e.recordPI(node)
	loc, _ := e.lay.loc(node)
	return loc, nil
}

// --- instruction helpers ---

func (e *emitter) fullKeys(m map[int]bits.Key) []bits.Key {
	ks := make([]bits.Key, e.tgt.WordBits)
	for i := range ks {
		ks[i] = bits.KDC
	}
	for col, k := range m {
		ks[col] = k
	}
	return ks
}

func (e *emitter) emitSetKey(m map[int]bits.Key) {
	e.prog = append(e.prog, isa.SetKey(e.fullKeys(m)))
}

func (e *emitter) emitSearch(acc, encode bool) {
	e.prog = append(e.prog, isa.Search(acc, encode))
}

func (e *emitter) emitWrite(col int, encode bool) {
	e.prog = append(e.prog, isa.Write(uint8(col), encode))
	if encode {
		e.encodedWrites++
	}
}

// emitMatchAll tags every row (an all-masked search matches everything).
func (e *emitter) emitMatchAll() {
	e.emitSetKey(nil)
	e.emitSearch(false, false)
}

// emitWriteValue writes a constant bit into a column of all tagged rows.
func (e *emitter) emitWriteValue(col int, v bool) {
	e.emitSetKey(map[int]bits.Key{col: bits.KeyForBit(v)})
	e.emitWrite(col, false)
}

// initZero clears a column in every row (match-all + write 0). Required
// before tag-gated single-bit writes: untagged rows must read back 0.
func (e *emitter) initZero(col int) {
	e.emitMatchAll()
	e.emitWriteValue(col, false)
}
