// Package rtl is the compiler's RTL library (paper §V-B.3): for every
// dataflow-graph operation it provides a bit-level implementation —
// a netlist of AND/INV gates built directly in the and-inverter graph.
// The library is "overloaded" the way the paper describes: the same
// operator resolves to different netlists depending on the operand widths
// and signedness (see Build).
//
// Iterative operations follow the paper's §VI-C prescription: division
// uses restoring long division [51], square root uses Woo's abacus
// algorithm [26], and the exponential uses the Quinapalus shift-and-add
// method [46] on Q16.16 fixed point.
package rtl

import (
	"fmt"

	"hyperap/internal/aig"
)

// BV is a bit vector of AIG literals, least-significant bit first.
type BV []aig.Lit

// Const builds a constant bit vector.
func Const(val uint64, width int) BV {
	v := make(BV, width)
	for i := range v {
		v[i] = aig.ConstLit(i < 64 && val>>uint(i)&1 == 1)
	}
	return v
}

// ConstValue returns the vector's value if every bit is constant.
func ConstValue(v BV) (uint64, bool) {
	var out uint64
	for i, l := range v {
		switch l {
		case aig.Const0:
		case aig.Const1:
			if i < 64 {
				out |= 1 << uint(i)
			}
		default:
			return 0, false
		}
	}
	return out, true
}

// Resize truncates or extends the vector to the given width; signed
// resizing replicates the sign bit.
func Resize(a BV, width int, signed bool) BV {
	out := make(BV, width)
	ext := aig.Const0
	if signed && len(a) > 0 {
		ext = a[len(a)-1]
	}
	for i := range out {
		if i < len(a) {
			out[i] = a[i]
		} else {
			out[i] = ext
		}
	}
	return out
}

func bit(a BV, i int) aig.Lit {
	if i < len(a) {
		return a[i]
	}
	return aig.Const0
}

// fullAdd returns (sum, carry) of three bits.
func fullAdd(g *aig.Graph, a, b, c aig.Lit) (aig.Lit, aig.Lit) {
	axb := g.Xor(a, b)
	sum := g.Xor(axb, c)
	carry := g.Or(g.And(a, b), g.And(axb, c))
	return sum, carry
}

// Add returns a + b at width max(len(a), len(b)) + 1 (no overflow), the
// natural-width rule of the language front end.
func Add(g *aig.Graph, a, b BV) BV {
	w := maxInt(len(a), len(b))
	out := make(BV, w+1)
	carry := aig.Const0
	for i := 0; i < w; i++ {
		out[i], carry = fullAdd(g, bit(a, i), bit(b, i), carry)
	}
	out[w] = carry
	return out
}

// Sub returns a - b modulo 2^w at width w = max(len(a), len(b)), plus the
// "no borrow" flag (a >= b for unsigned operands).
func Sub(g *aig.Graph, a, b BV) (BV, aig.Lit) {
	w := maxInt(len(a), len(b))
	out := make(BV, w)
	carry := aig.Const1 // two's complement: a + ^b + 1
	for i := 0; i < w; i++ {
		out[i], carry = fullAdd(g, bit(a, i), bit(b, i).Not(), carry)
	}
	return out, carry
}

// Neg returns -a at the same width (two's complement).
func Neg(g *aig.Graph, a BV) BV {
	out, _ := Sub(g, Const(0, len(a)), a)
	return out
}

// Mul returns a * b at width len(a) + len(b) using a shift-and-add array.
func Mul(g *aig.Graph, a, b BV) BV {
	return MulTrunc(g, a, b, len(a)+len(b))
}

// MulTrunc returns the low w bits of a * b; partial products beyond w are
// never built, which keeps the netlist proportional to the bits actually
// kept (important for fixed-point kernels that immediately truncate).
func MulTrunc(g *aig.Graph, a, b BV, w int) BV {
	acc := Const(0, w)
	for i, bi := range b {
		if i >= w {
			break
		}
		// Partial product: (a << i) & bi, truncated to w bits.
		pp := make(BV, w)
		for j := range pp {
			if j >= i && j-i < len(a) {
				pp[j] = g.And(a[j-i], bi)
			} else {
				pp[j] = aig.Const0
			}
		}
		acc = Resize(Add(g, acc, pp), w, false)
	}
	return acc
}

// Logic gates, zero-extended to the wider operand.

// And returns the bitwise AND.
func And(g *aig.Graph, a, b BV) BV { return zip(g, a, b, g.And) }

// Or returns the bitwise OR.
func Or(g *aig.Graph, a, b BV) BV { return zip(g, a, b, g.Or) }

// Xor returns the bitwise XOR.
func Xor(g *aig.Graph, a, b BV) BV { return zip(g, a, b, g.Xor) }

func zip(g *aig.Graph, a, b BV, f func(x, y aig.Lit) aig.Lit) BV {
	w := maxInt(len(a), len(b))
	out := make(BV, w)
	for i := range out {
		out[i] = f(bit(a, i), bit(b, i))
	}
	return out
}

// Not returns the bitwise complement.
func Not(a BV) BV {
	out := make(BV, len(a))
	for i, l := range a {
		out[i] = l.Not()
	}
	return out
}

// ShlConst shifts left by a constant, growing the width by k.
func ShlConst(a BV, k int) BV {
	out := make(BV, len(a)+k)
	for i := range out {
		if i >= k {
			out[i] = a[i-k]
		} else {
			out[i] = aig.Const0
		}
	}
	return out
}

// ShrConst shifts right by a constant at constant width; signed shifts
// replicate the sign bit.
func ShrConst(a BV, k int, signed bool) BV {
	out := make(BV, len(a))
	ext := aig.Const0
	if signed && len(a) > 0 {
		ext = a[len(a)-1]
	}
	for i := range out {
		if i+k < len(a) {
			out[i] = a[i+k]
		} else {
			out[i] = ext
		}
	}
	return out
}

// ShlVar is a barrel shifter: a << sh at width len(a) (bits shifted past
// the top are lost).
func ShlVar(g *aig.Graph, a, sh BV) BV {
	out := a
	for k, s := range sh {
		if 1<<uint(k) >= 2*len(a) {
			break
		}
		shifted := Resize(ShlConst(out, 1<<uint(k)), len(a), false)
		out = MuxBV(g, s, shifted, Resize(out, len(a), false))
	}
	return Resize(out, len(a), false)
}

// ShrVar is a barrel shifter: a >> sh at width len(a).
func ShrVar(g *aig.Graph, a, sh BV, signed bool) BV {
	out := a
	for k, s := range sh {
		if 1<<uint(k) >= 2*len(a) {
			break
		}
		shifted := ShrConst(out, 1<<uint(k), signed)
		out = MuxBV(g, s, shifted, out)
	}
	return out
}

// MuxBV returns sel ? t : f, widened to the larger operand.
func MuxBV(g *aig.Graph, sel aig.Lit, t, f BV) BV {
	w := maxInt(len(t), len(f))
	out := make(BV, w)
	for i := range out {
		out[i] = g.Mux(sel, bit(t, i), bit(f, i))
	}
	return out
}

// Eq returns the equality flag.
func Eq(g *aig.Graph, a, b BV) aig.Lit {
	w := maxInt(len(a), len(b))
	res := aig.Const1
	for i := 0; i < w; i++ {
		res = g.And(res, g.Xor(bit(a, i), bit(b, i)).Not())
	}
	return res
}

// Ult returns the unsigned a < b flag.
func Ult(g *aig.Graph, a, b BV) aig.Lit {
	_, geq := Sub(g, a, b)
	return geq.Not()
}

// Slt returns the signed a < b flag; operands are sign-extended to a
// common width first.
func Slt(g *aig.Graph, a, b BV) aig.Lit {
	w := maxInt(len(a), len(b)) + 1
	as := Resize(a, w, true)
	bs := Resize(b, w, true)
	diff, _ := Sub(g, as, bs)
	return diff[w-1]
}

// UDiv returns quotient and remainder of the unsigned restoring long
// division a / b [51]. Division by zero yields q = all-ones, r = a
// (the hardware convention; documented in the language reference).
func UDiv(g *aig.Graph, a, b BV) (q, r BV) {
	w := len(a)
	rem := Const(0, len(b)+1)
	q = make(BV, w)
	for i := w - 1; i >= 0; i-- {
		rem = append(BV{a[i]}, rem[:len(b)]...) // rem = rem<<1 | a[i]
		diff, geq := Sub(g, rem, Resize(b, len(b)+1, false))
		q[i] = geq
		rem = MuxBV(g, geq, diff, rem)
	}
	bZero := Eq(g, b, Const(0, len(b)))
	q = MuxBV(g, bZero, Const(^uint64(0), w), q)
	r = MuxBV(g, bZero, a, Resize(rem, len(b), false))
	return q, r
}

// Sqrt returns the integer square root of a (width ⌈len(a)/2⌉) using
// Woo's abacus algorithm [26]: two bits of the radicand are consumed per
// step with a compare-and-subtract.
func Sqrt(g *aig.Graph, a BV) BV {
	w := len(a)
	if w%2 == 1 {
		a = Resize(a, w+1, false)
		w++
	}
	steps := w / 2
	rem := Const(0, w+2)
	root := Const(0, steps)
	for i := steps - 1; i >= 0; i-- {
		// rem = rem<<2 | a[2i+1..2i]
		rem = append(BV{a[2*i], a[2*i+1]}, rem[:len(rem)-2]...)
		// trial = root<<2 | 01  (i.e. 4*root + 1 at the current scale)
		trial := append(BV{aig.Const1, aig.Const0}, root...)
		diff, geq := Sub(g, rem, Resize(trial, len(rem), false))
		rem = MuxBV(g, geq, diff, rem)
		// root = root<<1 | geq
		root = append(BV{geq}, root[:steps-1]...)
	}
	return root
}

// ExpFixedFracBits is the fixed-point format of Exp: Q(w-16).16.
const ExpFixedFracBits = 16

// expLnConst returns ln(1 + 2^-k) in Q16 fixed point. The constants are
// precomputed (they are compile-time constants in the netlist, exactly as
// the lookup-table embedding of the paper would bake them in).
func expLnConst(k int) uint64 {
	// round(ln(1+2^-k) * 2^16) for k = 0..16.
	table := []uint64{
		45426, 26573, 14624, 7719, 3973, 2017, 1016, 510,
		256, 128, 64, 32, 16, 8, 4, 2, 1,
	}
	if k < len(table) {
		return table[k]
	}
	return 0
}

// Exp computes exp(x) on Q16.16 fixed point with the Quinapalus
// shift-and-add algorithm [46]: repeatedly subtract ln(1+2^-k) from the
// argument while multiplying the accumulator by (1+2^-k), which is a
// shift and an add. The input is treated as unsigned Q16.16; the result
// saturates to the available width.
func Exp(g *aig.Graph, x BV) BV {
	w := len(x)
	if w < ExpFixedFracBits+2 {
		x = Resize(x, ExpFixedFracBits+2, false)
		w = len(x)
	}
	// y = 1.0 in Q16.16.
	y := Resize(Const(1<<ExpFixedFracBits, w), w, false)
	rem := x
	// ln(2) reduction: while rem >= ln2, rem -= ln2, y <<= 1. Bounded by
	// the integer bits available.
	ln2 := Const(45426, w)
	intBits := w - ExpFixedFracBits
	for i := 0; i < intBits; i++ {
		diff, geq := Sub(g, rem, ln2)
		rem = MuxBV(g, geq, diff, rem)
		y = MuxBV(g, geq, Resize(ShlConst(y, 1), w, false), y)
	}
	for k := 1; k <= ExpFixedFracBits; k++ {
		c := Const(expLnConst(k), w)
		diff, geq := Sub(g, rem, c)
		rem = MuxBV(g, geq, diff, rem)
		inc := ShrConst(y, k, false)
		y = MuxBV(g, geq, Resize(Add(g, y, inc), w, false), y)
	}
	return y
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Describe returns a human-readable catalogue entry for an operation at
// given widths — the "function overloading" resolution of §V-B.3 made
// visible for documentation and error messages.
func Describe(op string, widths ...int) string {
	return fmt.Sprintf("%s/%v", op, widths)
}
