package rtl

import (
	"math"
	"math/rand"
	"testing"

	"hyperap/internal/aig"
	"hyperap/internal/bits"
)

// harness builds a graph with two input vectors and evaluates an output
// vector for concrete values.
type harness struct {
	g      *aig.Graph
	a, b   BV
	wa, wb int
}

func newHarness(wa, wb int) *harness {
	g := aig.New()
	h := &harness{g: g, wa: wa, wb: wb}
	h.a = make(BV, wa)
	for i := range h.a {
		h.a[i] = g.NewPI()
	}
	h.b = make(BV, wb)
	for i := range h.b {
		h.b[i] = g.NewPI()
	}
	return h
}

func (h *harness) eval(out BV, av, bv uint64) uint64 {
	pis := make([]bool, h.wa+h.wb)
	copy(pis, bits.ToBits(av, h.wa))
	copy(pis[h.wa:], bits.ToBits(bv, h.wb))
	res := h.g.EvalLits(pis, out)
	return bits.FromBits(res)
}

func (h *harness) evalLit(out aig.Lit, av, bv uint64) bool {
	return h.eval(BV{out}, av, bv) == 1
}

func TestAddAllWidths(t *testing.T) {
	for _, w := range []int{1, 3, 8} {
		h := newHarness(w, w)
		sum := Add(h.g, h.a, h.b)
		if len(sum) != w+1 {
			t.Fatalf("width %d: sum width %d", w, len(sum))
		}
		for av := uint64(0); av < 1<<uint(w); av++ {
			for bv := uint64(0); bv < 1<<uint(w); bv++ {
				if got := h.eval(sum, av, bv); got != av+bv {
					t.Fatalf("w%d: %d+%d = %d", w, av, bv, got)
				}
			}
		}
	}
}

func TestSubAndBorrow(t *testing.T) {
	h := newHarness(6, 6)
	diff, geq := Sub(h.g, h.a, h.b)
	for av := uint64(0); av < 64; av++ {
		for bv := uint64(0); bv < 64; bv++ {
			want := (av - bv) & 63
			if got := h.eval(diff, av, bv); got != want {
				t.Fatalf("%d-%d = %d, want %d", av, bv, got, want)
			}
			if got := h.evalLit(geq, av, bv); got != (av >= bv) {
				t.Fatalf("geq(%d,%d) = %v", av, bv, got)
			}
		}
	}
}

func TestMulExhaustiveSmall(t *testing.T) {
	h := newHarness(4, 5)
	prod := Mul(h.g, h.a, h.b)
	if len(prod) != 9 {
		t.Fatalf("product width %d, want 9", len(prod))
	}
	for av := uint64(0); av < 16; av++ {
		for bv := uint64(0); bv < 32; bv++ {
			if got := h.eval(prod, av, bv); got != av*bv {
				t.Fatalf("%d*%d = %d", av, bv, got)
			}
		}
	}
}

func TestMulRandom32(t *testing.T) {
	h := newHarness(32, 32)
	prod := Mul(h.g, h.a, h.b)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		av, bv := rng.Uint64()&0xFFFFFFFF, rng.Uint64()&0xFFFFFFFF
		if got := h.eval(prod, av, bv); got != av*bv {
			t.Fatalf("%d*%d = %d", av, bv, got)
		}
	}
}

func TestLogicOps(t *testing.T) {
	h := newHarness(5, 5)
	and := And(h.g, h.a, h.b)
	or := Or(h.g, h.a, h.b)
	xor := Xor(h.g, h.a, h.b)
	not := Not(h.a)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 100; i++ {
		av, bv := rng.Uint64()&31, rng.Uint64()&31
		if h.eval(and, av, bv) != av&bv || h.eval(or, av, bv) != av|bv ||
			h.eval(xor, av, bv) != av^bv || h.eval(not, av, bv) != av^31 {
			t.Fatalf("logic mismatch at %d,%d", av, bv)
		}
	}
}

func TestShifts(t *testing.T) {
	h := newHarness(8, 3)
	shl2 := ShlConst(h.a, 2)
	shr3u := ShrConst(h.a, 3, false)
	shrS := ShrConst(h.a, 2, true)
	for av := uint64(0); av < 256; av++ {
		if h.eval(shl2, av, 0) != av<<2 {
			t.Fatal("shl const")
		}
		if h.eval(shr3u, av, 0) != av>>3 {
			t.Fatal("shr const unsigned")
		}
		want := uint64(int8(av)>>2) & 0xFF
		if h.eval(shrS, av, 0) != want {
			t.Fatalf("shr signed %d: got %d want %d", av, h.eval(shrS, av, 0), want)
		}
	}
	shlv := ShlVar(h.g, h.a, h.b)
	shrv := ShrVar(h.g, h.a, h.b, false)
	for av := uint64(0); av < 256; av += 7 {
		for bv := uint64(0); bv < 8; bv++ {
			if got := h.eval(shlv, av, bv); got != av<<bv&0xFF {
				t.Fatalf("shlvar %d<<%d = %d", av, bv, got)
			}
			if got := h.eval(shrv, av, bv); got != av>>bv {
				t.Fatalf("shrvar %d>>%d = %d", av, bv, got)
			}
		}
	}
}

func TestComparisons(t *testing.T) {
	h := newHarness(5, 5)
	eq := Eq(h.g, h.a, h.b)
	ult := Ult(h.g, h.a, h.b)
	slt := Slt(h.g, h.a, h.b)
	for av := uint64(0); av < 32; av++ {
		for bv := uint64(0); bv < 32; bv++ {
			if h.evalLit(eq, av, bv) != (av == bv) {
				t.Fatal("eq")
			}
			if h.evalLit(ult, av, bv) != (av < bv) {
				t.Fatal("ult")
			}
			sa, sb := bits.SignExtend(av, 5), bits.SignExtend(bv, 5)
			if h.evalLit(slt, av, bv) != (sa < sb) {
				t.Fatalf("slt(%d,%d)", sa, sb)
			}
		}
	}
}

func TestMuxBV(t *testing.T) {
	g := aig.New()
	sel := g.NewPI()
	a := BV{g.NewPI(), g.NewPI()}
	b := BV{g.NewPI(), g.NewPI()}
	out := MuxBV(g, sel, a, b)
	for s := 0; s < 2; s++ {
		for av := uint64(0); av < 4; av++ {
			for bv := uint64(0); bv < 4; bv++ {
				pis := []bool{s == 1, av&1 == 1, av&2 == 2, bv&1 == 1, bv&2 == 2}
				got := bits.FromBits(g.EvalLits(pis, out))
				want := bv
				if s == 1 {
					want = av
				}
				if got != want {
					t.Fatalf("mux(%d,%d,%d) = %d", s, av, bv, got)
				}
			}
		}
	}
}

func TestUDivExhaustive(t *testing.T) {
	h := newHarness(6, 6)
	q, r := UDiv(h.g, h.a, h.b)
	for av := uint64(0); av < 64; av++ {
		for bv := uint64(1); bv < 64; bv++ {
			if got := h.eval(q, av, bv); got != av/bv {
				t.Fatalf("%d/%d = %d", av, bv, got)
			}
			if got := h.eval(r, av, bv); got != av%bv {
				t.Fatalf("%d%%%d = %d", av, bv, got)
			}
		}
		// Division by zero convention: q = all ones, r = a.
		if h.eval(q, av, 0) != 63 || h.eval(r, av, 0) != av {
			t.Fatalf("div-by-zero convention broken for a=%d", av)
		}
	}
}

func TestUDivRandom32(t *testing.T) {
	h := newHarness(32, 32)
	q, r := UDiv(h.g, h.a, h.b)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 30; i++ {
		av := rng.Uint64() & 0xFFFFFFFF
		bv := rng.Uint64()&0xFFFF + 1
		if h.eval(q, av, bv) != av/bv || h.eval(r, av, bv) != av%bv {
			t.Fatalf("div %d/%d wrong", av, bv)
		}
	}
}

func TestSqrt(t *testing.T) {
	h := newHarness(16, 1)
	root := Sqrt(h.g, h.a)
	if len(root) != 8 {
		t.Fatalf("sqrt width %d, want 8", len(root))
	}
	for av := uint64(0); av < 1<<16; av += 13 {
		want := uint64(math.Sqrt(float64(av)))
		for want*want > av {
			want--
		}
		if got := h.eval(root, av, 0); got != want {
			t.Fatalf("sqrt(%d) = %d, want %d", av, got, want)
		}
	}
	// Odd width.
	h2 := newHarness(7, 1)
	root2 := Sqrt(h2.g, h2.a)
	for av := uint64(0); av < 128; av++ {
		want := uint64(math.Sqrt(float64(av)))
		for want*want > av {
			want--
		}
		if got := h2.eval(root2, av, 0); got != want {
			t.Fatalf("sqrt7(%d) = %d, want %d", av, got, want)
		}
	}
}

func TestExpFixedPoint(t *testing.T) {
	h := newHarness(32, 1)
	e := Exp(h.g, h.a)
	// Valid domain: exp(x) must fit Q16.16, i.e. x ≤ ~11.
	for _, x := range []float64{0, 0.5, 1, 2, 3.25, 5, 8, 10.5} {
		fx := uint64(x * 65536)
		got := float64(h.eval(e, fx, 0)) / 65536
		want := math.Exp(float64(fx) / 65536)
		if math.Abs(got-want)/want > 2e-3 {
			t.Errorf("exp(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestConstAndResize(t *testing.T) {
	if v, ok := ConstValue(Const(0xAB, 12)); !ok || v != 0xAB {
		t.Error("Const/ConstValue roundtrip")
	}
	g := aig.New()
	pi := g.NewPI()
	if _, ok := ConstValue(BV{pi}); ok {
		t.Error("non-constant vector must not report a value")
	}
	// Signed resize.
	v := Resize(Const(0b101, 3), 6, true)
	if got, _ := ConstValue(v); got != 0b111101 {
		t.Errorf("sign extension = %06b", got)
	}
	v = Resize(Const(0b101, 3), 2, false)
	if got, _ := ConstValue(v); got != 0b01 {
		t.Errorf("truncation = %02b", got)
	}
}

func TestNeg(t *testing.T) {
	h := newHarness(5, 1)
	n := Neg(h.g, h.a)
	for av := uint64(0); av < 32; av++ {
		if got := h.eval(n, av, 0); got != (32-av)&31 {
			t.Fatalf("neg(%d) = %d", av, got)
		}
	}
}

func TestConstantFoldingThroughNetlists(t *testing.T) {
	// Operand embedding (Fig. 12b): building a netlist with a constant
	// operand must fold: a 2-bit a + constant 2 leaves c0 = a0,
	// c1 = ¬a1, c2 = a1 — no AND gates for c0 and only inverters
	// otherwise, so LUT generation sees trivial single-input functions.
	g := aig.New()
	a := BV{g.NewPI(), g.NewPI()}
	sum := Add(g, a, Const(2, 2))
	if sum[0] != a[0] {
		t.Errorf("c0 should fold to a0, got %v", sum[0])
	}
	if sum[1] != a[1].Not() {
		t.Errorf("c1 should fold to !a1, got %v", sum[1])
	}
	if sum[2] != a[1] {
		t.Errorf("c2 should fold to a1, got %v", sum[2])
	}
}

func TestDescribe(t *testing.T) {
	if Describe("add", 5, 5) == "" {
		t.Error("empty description")
	}
}
