package grid

import (
	"testing"

	"hyperap/internal/compile"
	"hyperap/internal/isa"
)

// diffusion kernel: new = (left + right + 2*c) / 4 in 8-bit.
const diffusionSrc = `
unsigned int(8) main(unsigned int(8) c, unsigned int(8) left, unsigned int(8) right) {
	unsigned int(10) s;
	s = left + right + (c << 1);
	return s >> 2;
}`

func compileGrid(t *testing.T) *compile.Executable {
	t.Helper()
	tgt := compile.HyperTarget()
	tgt.SingleBitInputs = true
	ex, err := compile.CompileSource(diffusionSrc, tgt)
	if err != nil {
		t.Fatal(err)
	}
	return ex
}

func TestGridRunAllPEs(t *testing.T) {
	ex := compileGrid(t)
	g, err := New(ex, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if g.Elements() != 32 {
		t.Fatalf("elements = %d", g.Elements())
	}
	for i := 0; i < g.Elements(); i++ {
		if err := g.Load(i, []uint64{uint64(i * 3 % 256), 10, 20}); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.Elements(); i++ {
		out, err := g.Read(i)
		if err != nil {
			t.Fatal(err)
		}
		c := uint64(i * 3 % 256)
		want := (10 + 20 + c<<1) >> 2
		if out[0] != want {
			t.Fatalf("element %d: got %d want %d", i, out[0], want)
		}
	}
}

// TestShiftColumns verifies the MovR-based neighbour exchange: element
// (pe, row) must receive the value of (pe-1, row) when shifting right.
func TestShiftColumns(t *testing.T) {
	ex := compileGrid(t)
	g, err := New(ex, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Load a distinct c per element; run once so the output column holds
	// a known per-element value.
	vals := func(pe, row int) uint64 { return uint64(40*pe + 10*row + 7) }
	for pe := 0; pe < 4; pe++ {
		for row := 0; row < 4; row++ {
			if err := g.Load(pe*4+row, []uint64{vals(pe, row), 0, 0}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	// out = (0 + 0 + 2c)/4 = c/2. Ship it into `left` of the right-hand
	// neighbour.
	if err := g.ShiftColumns("ret", "left", isa.DirRight); err != nil {
		t.Fatal(err)
	}
	for pe := 0; pe < 4; pe++ {
		for row := 0; row < 4; row++ {
			idx := pe*4 + row
			pen, rown := g.at(idx)
			if pen != pe || rown != row {
				t.Fatalf("index mapping broken")
			}
			// Read the shifted input column directly.
			comp, err := g.inputComponent("left")
			if err != nil {
				t.Fatal(err)
			}
			var got uint64
			for j, ref := range comp.Bits {
				b, err := g.Chip.PE(pe).M.ReadBit(row, ref.Loc.Col)
				if err != nil {
					t.Fatalf("pe %d row %d bit %d: %v", pe, row, j, err)
				}
				if b {
					got |= 1 << uint(j)
				}
			}
			want := uint64(0) // fixed boundary at pe 0
			if pe > 0 {
				want = vals(pe-1, row) >> 1
			}
			if got != want {
				t.Fatalf("pe %d row %d: left = %d, want %d", pe, row, got, want)
			}
		}
	}
}

// TestDiffusionSteps runs two full neighbour-exchange + compute steps and
// compares against a host-side reference of the same 1-D diffusion.
func TestDiffusionSteps(t *testing.T) {
	ex := compileGrid(t)
	const pes, rows = 5, 3
	g, err := New(ex, pes, rows)
	if err != nil {
		t.Fatal(err)
	}
	// Reference state: temp[row][pe].
	var ref [rows][pes]uint64
	for pe := 0; pe < pes; pe++ {
		for row := 0; row < rows; row++ {
			v := uint64((pe*53 + row*17) % 200)
			ref[row][pe] = v
			if err := g.Load(pe*rows+row, []uint64{v, 0, 0}); err != nil {
				t.Fatal(err)
			}
		}
	}
	step := func() {
		// c already loaded; exchange neighbours into left/right, then run.
		if err := g.Run(); err != nil { // produces ret = (l+r+2c)>>2 (first run: l=r=0)
			t.Fatal(err)
		}
	}
	_ = step
	for iter := 0; iter < 2; iter++ {
		// Current temperature lives in the `c` input columns; compute
		// out = c (identity pass? no). We instead simulate: run the
		// kernel to produce ret from (c, left, right), then ship c to the
		// neighbours for the next iteration.
		// Step 1: ship c into neighbours' left/right. c is an input, not
		// an output, so first run an identity pass: ret = (l+r+2c)>>2
		// with l = r = c gives ret = c.
		for pe := 0; pe < pes; pe++ {
			for row := 0; row < rows; row++ {
				v := ref[row][pe]
				if err := g.Load(pe*rows+row, []uint64{v, v, v}); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := g.Run(); err != nil {
			t.Fatal(err)
		}
		// ret now equals c; exchange it.
		if err := g.ShiftColumns("ret", "left", isa.DirRight); err != nil {
			t.Fatal(err)
		}
		if err := g.ShiftColumns("ret", "right", isa.DirLeft); err != nil {
			t.Fatal(err)
		}
		if err := g.Run(); err != nil {
			t.Fatal(err)
		}
		// Host reference.
		var next [rows][pes]uint64
		for row := 0; row < rows; row++ {
			for pe := 0; pe < pes; pe++ {
				var l, r uint64
				if pe > 0 {
					l = ref[row][pe-1]
				}
				if pe < pes-1 {
					r = ref[row][pe+1]
				}
				next[row][pe] = (l + r + ref[row][pe]<<1) >> 2
			}
		}
		for pe := 0; pe < pes; pe++ {
			for row := 0; row < rows; row++ {
				out, err := g.Read(pe*rows + row)
				if err != nil {
					t.Fatal(err)
				}
				if out[0] != next[row][pe] {
					t.Fatalf("iter %d pe %d row %d: got %d want %d", iter, pe, row, out[0], next[row][pe])
				}
			}
		}
		ref = next
	}
	if g.Report().Cycles <= 0 {
		t.Error("no cycle accounting")
	}
}

func TestGridErrors(t *testing.T) {
	ex := compileGrid(t)
	if _, err := New(ex, 0, 4); err == nil {
		t.Error("zero PEs must error")
	}
	g, _ := New(ex, 2, 4)
	if err := g.ShiftColumns("nope", "left", isa.DirRight); err == nil {
		t.Error("unknown source must error")
	}
	if err := g.ShiftColumns("ret", "nope", isa.DirRight); err == nil {
		t.Error("unknown destination must error")
	}
	if err := g.LoadInput(0, "nope", 1); err == nil {
		t.Error("unknown input must error")
	}
	if err := g.LoadInput(0, "c", 99); err != nil {
		t.Error(err)
	}
	// Without SingleBitInputs the destination is paired: must error.
	exPaired, err := compile.CompileSource(diffusionSrc, compile.HyperTarget())
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := New(exPaired, 2, 4)
	if err := g2.Run(); err != nil {
		t.Fatal(err)
	}
	if err := g2.ShiftColumns("ret", "left", isa.DirRight); err == nil {
		t.Error("paired destination must be rejected")
	}
}
