// Package grid executes a compiled per-element program over many
// processing elements and provides inter-PE communication macros built
// from the ISA's data-movement instructions (ReadTag → MovR → SetTag,
// §IV-A): the high-bandwidth, low-latency local data path between
// adjacent PEs that the paper credits for Hyper-AP's kernel-level wins
// (§VI-D).
//
// Layout: element (pe, row) holds one data item; a ShiftColumns call
// moves a stored bit column of every element to the neighbouring PE in
// one direction, so a chain of PEs implements 1-D neighbour exchange for
// all 256 row-lanes simultaneously (a 2-D tile when rows index the second
// dimension).
package grid

import (
	"fmt"

	"hyperap/internal/arch"
	"hyperap/internal/bits"
	"hyperap/internal/compile"
	"hyperap/internal/isa"
)

// Grid runs one executable across a row of PEs.
type Grid struct {
	Ex   *compile.Executable
	Chip *arch.Chip
	PEs  int
	Rows int
}

// New builds a grid of numPEs processing elements (one subarray so they
// share key/mask registers, exactly like the real chip's SIMD groups).
func New(ex *compile.Executable, numPEs, rows int) (*Grid, error) {
	if numPEs < 1 {
		return nil, fmt.Errorf("grid: need at least one PE")
	}
	chip := arch.New(arch.Config{
		Banks:            1,
		SubarraysPerBank: 1,
		PEsPerSubarray:   numPEs,
		Rows:             rows,
		Bits:             ex.Target.WordBits,
		Groups:           1,
		Tech:             ex.Target.Tech,
		Monolithic:       ex.Target.Monolithic,
	})
	return &Grid{Ex: ex, Chip: chip, PEs: numPEs, Rows: rows}, nil
}

// Elements returns the grid's capacity (PEs × rows).
func (g *Grid) Elements() int { return g.PEs * g.Rows }

// at maps a linear element index to (pe, row): row-major over rows so
// adjacent elements along the PE axis exchange via MovR.
func (g *Grid) at(idx int) (pe, row int) { return idx / g.Rows, idx % g.Rows }

// Load stores element idx's input values.
func (g *Grid) Load(idx int, vals []uint64) error {
	pe, row := g.at(idx)
	return g.Ex.Load(g.Chip.PE(pe), row, vals)
}

// LoadInput overwrites a single named input of element idx (used between
// iteration steps).
func (g *Grid) LoadInput(idx int, input string, val uint64) error {
	pe, row := g.at(idx)
	for _, c := range g.Ex.Inputs {
		if c.Name != input {
			continue
		}
		// Write just this component's bits.
		for j, ref := range c.Bits {
			b := val>>uint(j)&1 == 1
			switch ref.Loc.Kind {
			case compile.LocSingle:
				if err := g.Chip.PE(pe).M.LoadBit(row, ref.Loc.Col, b); err != nil {
					return err
				}
			default:
				return fmt.Errorf("grid: input %s is not stored as single bits; compile with SingleBitInputs", input)
			}
		}
		return nil
	}
	return fmt.Errorf("grid: no input named %q", input)
}

// Run executes the compiled program once on every PE (all elements in
// parallel).
func (g *Grid) Run() error { return g.Chip.Execute(g.Ex.Prog) }

// Read returns element idx's outputs.
func (g *Grid) Read(idx int) ([]uint64, error) {
	pe, row := g.at(idx)
	return g.Ex.ReadRow(g.Chip.PE(pe), row)
}

// inputComponent finds a named input component.
func (g *Grid) inputComponent(name string) (*compile.Component, error) {
	for i := range g.Ex.Inputs {
		if g.Ex.Inputs[i].Name == name {
			return &g.Ex.Inputs[i], nil
		}
	}
	return nil, fmt.Errorf("grid: no input named %q", name)
}

// outputComponent finds a named output component.
func (g *Grid) outputComponent(name string) (*compile.Component, error) {
	for i := range g.Ex.Outputs {
		if g.Ex.Outputs[i].Name == name {
			return &g.Ex.Outputs[i], nil
		}
	}
	return nil, fmt.Errorf("grid: no output named %q", name)
}

// shiftBitProgram builds the ISA macro moving one stored bit from every
// PE to its neighbour: select the source bits into the tags, copy tags to
// the data register, MovR, restore tags, and commit into the (zeroed)
// destination column. 8 instructions, ~31 cycles per bit with the RRAM
// constants.
func shiftBitProgram(srcKeys map[int]bits.Key, dstCol int, dir isa.Dir, wordBits int) isa.Program {
	full := func(m map[int]bits.Key) []bits.Key {
		ks := make([]bits.Key, wordBits)
		for i := range ks {
			ks[i] = bits.KDC
		}
		for c, k := range m {
			ks[c] = k
		}
		return ks
	}
	return isa.Program{
		// Zero the destination in every PE.
		isa.SetKey(full(nil)),
		isa.Search(false, false),
		isa.SetKey(full(map[int]bits.Key{dstCol: bits.K0})),
		isa.Write(uint8(dstCol), false),
		// Select the source bit into the tags and ship it.
		isa.SetKey(full(srcKeys)),
		isa.Search(false, false),
		isa.Instruction{Op: isa.OpReadTag},
		isa.MovR(dir),
		isa.Instruction{Op: isa.OpSetTag},
		// Commit into the destination.
		isa.SetKey(full(map[int]bits.Key{dstCol: bits.K1})),
		isa.Write(uint8(dstCol), false),
	}
}

// ShiftColumns moves the value of output `src` into input `dst` of the
// neighbouring PE in the given direction, for every element lane at
// once. Edge PEs receive zero (fixed boundary). The destination input
// must be stored as single bits (compile with SingleBitInputs).
func (g *Grid) ShiftColumns(src, dst string, dir isa.Dir) error {
	sc, err := g.outputComponent(src)
	if err != nil {
		return err
	}
	dc, err := g.inputComponent(dst)
	if err != nil {
		return err
	}
	if len(dc.Bits) < len(sc.Bits) {
		return fmt.Errorf("grid: destination %s narrower than source %s", dst, src)
	}
	var prog isa.Program
	for j := range dc.Bits {
		dstLoc := dc.Bits[j].Loc
		if dstLoc.Kind != compile.LocSingle {
			return fmt.Errorf("grid: input %s bit %d is not a single column; compile with SingleBitInputs", dst, j)
		}
		var srcKeys map[int]bits.Key
		if j < len(sc.Bits) {
			srcKeys, err = compile.SelectBitKeys(sc.Bits[j].Loc, true)
			if err != nil {
				return fmt.Errorf("grid: source %s bit %d: %w", src, j, err)
			}
		} else {
			// Zero-extend: leave the destination cleared.
			prog = append(prog, shiftBitProgram(nil, dstLoc.Col, dir, g.Ex.Target.WordBits)[:4]...)
			continue
		}
		prog = append(prog, shiftBitProgram(srcKeys, dstLoc.Col, dir, g.Ex.Target.WordBits)...)
	}
	return g.Chip.Execute(prog)
}

// Report exposes the accumulated execution report (cycles, energy).
func (g *Grid) Report() arch.Report { return g.Chip.Report() }
