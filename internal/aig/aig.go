// Package aig implements the and-inverter graph used by the compilation
// framework (paper §V-B.3): every cluster of the dataflow graph is
// rewritten into a netlist of 2-input AND gates and inverters by the RTL
// library, and the lookup-table generation step then covers this graph
// with ≤12-input LUTs.
//
// Literals are node indices with a complement flag in the low bit, as in
// standard AIG packages. Structural hashing and constant folding keep the
// graph canonical, which is what makes the compiler's operand-embedding
// optimisation (constant propagation, Fig. 12b) fall out for free.
package aig

import "fmt"

// Lit is a literal: node index << 1 | complement.
type Lit uint32

// Const0 and Const1 are the constant literals (node 0).
const (
	Const0 Lit = 0
	Const1 Lit = 1
)

// MakeLit builds a literal from a node index and complement flag.
func MakeLit(node int, compl bool) Lit {
	l := Lit(node << 1)
	if compl {
		l |= 1
	}
	return l
}

// Node returns the literal's node index.
func (l Lit) Node() int { return int(l >> 1) }

// Compl reports whether the literal is complemented.
func (l Lit) Compl() bool { return l&1 == 1 }

// Not returns the complemented literal.
func (l Lit) Not() Lit { return l ^ 1 }

// IsConst reports whether the literal is one of the two constants.
func (l Lit) IsConst() bool { return l.Node() == 0 }

func (l Lit) String() string {
	if l == Const0 {
		return "0"
	}
	if l == Const1 {
		return "1"
	}
	s := fmt.Sprintf("n%d", l.Node())
	if l.Compl() {
		s = "!" + s
	}
	return s
}

type node struct {
	f0, f1 Lit // fanins; inputs have f0 == f1 == invalidLit
}

const invalidLit = ^Lit(0)

// Graph is an and-inverter graph. Node 0 is the constant; nodes 1..NumPIs
// are the primary inputs.
type Graph struct {
	nodes []node
	pis   []int
	hash  map[[2]Lit]int
}

// New returns an empty graph containing only the constant node.
func New() *Graph {
	g := &Graph{hash: make(map[[2]Lit]int)}
	g.nodes = append(g.nodes, node{invalidLit, invalidLit}) // constant node
	return g
}

// NumNodes returns the total node count (constant + PIs + ANDs).
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumPIs returns the number of primary inputs.
func (g *Graph) NumPIs() int { return len(g.pis) }

// NumAnds returns the number of AND nodes.
func (g *Graph) NumAnds() int { return len(g.nodes) - 1 - len(g.pis) }

// NewPI adds a primary input and returns its (positive) literal.
func (g *Graph) NewPI() Lit {
	idx := len(g.nodes)
	g.nodes = append(g.nodes, node{invalidLit, invalidLit})
	g.pis = append(g.pis, idx)
	return MakeLit(idx, false)
}

// PIs returns the positive literals of all primary inputs.
func (g *Graph) PIs() []Lit {
	out := make([]Lit, len(g.pis))
	for i, n := range g.pis {
		out[i] = MakeLit(n, false)
	}
	return out
}

// IsPI reports whether the node is a primary input.
func (g *Graph) IsPI(nodeIdx int) bool {
	if nodeIdx <= 0 || nodeIdx >= len(g.nodes) {
		return false
	}
	return g.nodes[nodeIdx].f0 == invalidLit
}

// Fanins returns the fanin literals of an AND node.
func (g *Graph) Fanins(nodeIdx int) (Lit, Lit) {
	n := g.nodes[nodeIdx]
	if n.f0 == invalidLit {
		panic(fmt.Sprintf("aig: node %d is not an AND", nodeIdx))
	}
	return n.f0, n.f1
}

// And returns a literal for a & b with constant folding and structural
// hashing.
func (g *Graph) And(a, b Lit) Lit {
	// Constant and trivial cases.
	if a == Const0 || b == Const0 {
		return Const0
	}
	if a == Const1 {
		return b
	}
	if b == Const1 {
		return a
	}
	if a == b {
		return a
	}
	if a == b.Not() {
		return Const0
	}
	// Canonical order.
	if a > b {
		a, b = b, a
	}
	key := [2]Lit{a, b}
	if idx, ok := g.hash[key]; ok {
		return MakeLit(idx, false)
	}
	idx := len(g.nodes)
	g.nodes = append(g.nodes, node{a, b})
	g.hash[key] = idx
	return MakeLit(idx, false)
}

// Or returns a | b.
func (g *Graph) Or(a, b Lit) Lit { return g.And(a.Not(), b.Not()).Not() }

// Xor returns a ^ b.
func (g *Graph) Xor(a, b Lit) Lit {
	return g.Or(g.And(a, b.Not()), g.And(a.Not(), b))
}

// Mux returns sel ? t : f.
func (g *Graph) Mux(sel, t, f Lit) Lit {
	return g.Or(g.And(sel, t), g.And(sel.Not(), f))
}

// ConstLit returns the constant literal for b.
func ConstLit(b bool) Lit {
	if b {
		return Const1
	}
	return Const0
}

// Eval evaluates the graph for one assignment of the primary inputs and
// returns the value of every node (indexed by node). piVals must have
// NumPIs entries in PI creation order.
func (g *Graph) Eval(piVals []bool) []bool {
	if len(piVals) != len(g.pis) {
		panic(fmt.Sprintf("aig: %d PI values for %d PIs", len(piVals), len(g.pis)))
	}
	vals := make([]bool, len(g.nodes))
	vals[0] = false // constant node holds 0; Const1 is its complement
	piPos := make(map[int]int, len(g.pis))
	for i, n := range g.pis {
		piPos[n] = i
	}
	for idx := 1; idx < len(g.nodes); idx++ {
		n := g.nodes[idx]
		if n.f0 == invalidLit {
			vals[idx] = piVals[piPos[idx]]
			continue
		}
		vals[idx] = g.litVal(vals, n.f0) && g.litVal(vals, n.f1)
	}
	return vals
}

func (g *Graph) litVal(vals []bool, l Lit) bool {
	v := vals[l.Node()]
	if l.Compl() {
		return !v
	}
	return v
}

// LitValue extracts a literal's value from an Eval result.
func (g *Graph) LitValue(vals []bool, l Lit) bool { return g.litVal(vals, l) }

// EvalLits is a convenience wrapper evaluating a set of output literals.
func (g *Graph) EvalLits(piVals []bool, outs []Lit) []bool {
	vals := g.Eval(piVals)
	res := make([]bool, len(outs))
	for i, l := range outs {
		res[i] = g.litVal(vals, l)
	}
	return res
}

// Support returns the set of primary-input node indices in the transitive
// fanin of the given literals.
func (g *Graph) Support(outs []Lit) []int {
	seen := make(map[int]bool)
	var pis []int
	var visit func(idx int)
	visit = func(idx int) {
		if seen[idx] || idx == 0 {
			return
		}
		seen[idx] = true
		n := g.nodes[idx]
		if n.f0 == invalidLit {
			pis = append(pis, idx)
			return
		}
		visit(n.f0.Node())
		visit(n.f1.Node())
	}
	for _, l := range outs {
		visit(l.Node())
	}
	return pis
}

// ConeNodes returns, in topological order, the AND nodes in the transitive
// fanin of the outputs.
func (g *Graph) ConeNodes(outs []Lit) []int {
	seen := make(map[int]bool)
	var order []int
	var visit func(idx int)
	visit = func(idx int) {
		if seen[idx] || idx == 0 {
			return
		}
		seen[idx] = true
		n := g.nodes[idx]
		if n.f0 == invalidLit {
			return
		}
		visit(n.f0.Node())
		visit(n.f1.Node())
		order = append(order, idx)
	}
	for _, l := range outs {
		visit(l.Node())
	}
	return order
}

// Depends reports whether literal out depends (transitively) on the node
// `on`.
func (g *Graph) Depends(out Lit, on int) bool {
	seen := make(map[int]bool)
	var visit func(idx int) bool
	visit = func(idx int) bool {
		if idx == on {
			return true
		}
		if seen[idx] || idx == 0 {
			return false
		}
		seen[idx] = true
		n := g.nodes[idx]
		if n.f0 == invalidLit {
			return false
		}
		return visit(n.f0.Node()) || visit(n.f1.Node())
	}
	return visit(out.Node())
}
