package aig

import (
	"math/rand"
	"testing"
)

func TestConstantFolding(t *testing.T) {
	g := New()
	a := g.NewPI()
	if g.And(a, Const0) != Const0 || g.And(Const0, a) != Const0 {
		t.Error("x & 0 must fold to 0")
	}
	if g.And(a, Const1) != a || g.And(Const1, a) != a {
		t.Error("x & 1 must fold to x")
	}
	if g.And(a, a) != a {
		t.Error("x & x must fold to x")
	}
	if g.And(a, a.Not()) != Const0 {
		t.Error("x & !x must fold to 0")
	}
	if g.NumAnds() != 0 {
		t.Errorf("folding created %d AND nodes", g.NumAnds())
	}
}

func TestStructuralHashing(t *testing.T) {
	g := New()
	a, b := g.NewPI(), g.NewPI()
	x := g.And(a, b)
	y := g.And(b, a)
	if x != y {
		t.Error("commuted AND must hash to the same node")
	}
	if g.NumAnds() != 1 {
		t.Errorf("%d AND nodes, want 1", g.NumAnds())
	}
}

func TestLitHelpers(t *testing.T) {
	l := MakeLit(5, true)
	if l.Node() != 5 || !l.Compl() || l.Not().Compl() {
		t.Error("Lit accessors wrong")
	}
	if !Const0.IsConst() || !Const1.IsConst() {
		t.Error("IsConst wrong")
	}
	if Const0.String() != "0" || Const1.String() != "1" {
		t.Error("const String wrong")
	}
	if MakeLit(3, true).String() != "!n3" {
		t.Errorf("String = %s", MakeLit(3, true).String())
	}
	if ConstLit(true) != Const1 || ConstLit(false) != Const0 {
		t.Error("ConstLit wrong")
	}
}

func TestEvalGates(t *testing.T) {
	g := New()
	a, b, c := g.NewPI(), g.NewPI(), g.NewPI()
	and := g.And(a, b)
	or := g.Or(a, b)
	xor := g.Xor(a, b)
	mux := g.Mux(c, a, b)
	for v := 0; v < 8; v++ {
		av, bv, cv := v&1 == 1, v&2 == 2, v&4 == 4
		res := g.EvalLits([]bool{av, bv, cv}, []Lit{and, or, xor, mux})
		if res[0] != (av && bv) || res[1] != (av || bv) || res[2] != (av != bv) {
			t.Fatalf("gate eval wrong at %03b", v)
		}
		want := bv
		if cv {
			want = av
		}
		if res[3] != want {
			t.Fatalf("mux eval wrong at %03b", v)
		}
	}
}

func TestSupportAndCone(t *testing.T) {
	g := New()
	a, b, c := g.NewPI(), g.NewPI(), g.NewPI()
	_ = c
	x := g.And(a, b)
	y := g.Xor(x, a)
	sup := g.Support([]Lit{y})
	if len(sup) != 2 {
		t.Errorf("support = %v, want a and b only", sup)
	}
	cone := g.ConeNodes([]Lit{y})
	// Topological: every node's fanins appear earlier (or are PIs).
	pos := map[int]int{}
	for i, n := range cone {
		pos[n] = i
	}
	for i, n := range cone {
		f0, f1 := g.Fanins(n)
		for _, f := range []Lit{f0, f1} {
			if g.IsPI(f.Node()) || f.Node() == 0 {
				continue
			}
			if p, ok := pos[f.Node()]; !ok || p >= i {
				t.Fatalf("cone not topological at node %d", n)
			}
		}
	}
}

func TestDepends(t *testing.T) {
	g := New()
	a, b := g.NewPI(), g.NewPI()
	x := g.And(a, b)
	if !g.Depends(x, a.Node()) || !g.Depends(x, b.Node()) {
		t.Error("x must depend on its fanins")
	}
	c := g.NewPI()
	if g.Depends(x, c.Node()) {
		t.Error("x must not depend on unrelated input")
	}
}

func TestFaninsPanicsOnPI(t *testing.T) {
	g := New()
	a := g.NewPI()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.Fanins(a.Node())
}

// TestRandomEquivalence builds random expressions two ways and checks the
// hash-consing never changes semantics.
func TestRandomEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := New()
	const nPI = 6
	var pis []Lit
	for i := 0; i < nPI; i++ {
		pis = append(pis, g.NewPI())
	}
	pool := append([]Lit{}, pis...)
	type ref func(v []bool) bool
	refs := make([]ref, nPI)
	for i := range refs {
		i := i
		refs[i] = func(v []bool) bool { return v[i] }
	}
	for step := 0; step < 200; step++ {
		i, j := rng.Intn(len(pool)), rng.Intn(len(pool))
		a, b := pool[i], pool[j]
		ra, rb := refs[i], refs[j]
		if rng.Intn(2) == 0 {
			a, ra = a.Not(), func(v []bool) bool { return !refs[i](v) }
		}
		var l Lit
		var r ref
		switch rng.Intn(3) {
		case 0:
			l, r = g.And(a, b), func(v []bool) bool { return ra(v) && rb(v) }
		case 1:
			l, r = g.Or(a, b), func(v []bool) bool { return ra(v) || rb(v) }
		default:
			l, r = g.Xor(a, b), func(v []bool) bool { return ra(v) != rb(v) }
		}
		pool = append(pool, l)
		refs = append(refs, r)
	}
	for trial := 0; trial < 64; trial++ {
		v := make([]bool, nPI)
		for i := range v {
			v[i] = rng.Intn(2) == 0
		}
		vals := g.Eval(v)
		for i, l := range pool {
			if g.LitValue(vals, l) != refs[i](v) {
				t.Fatalf("node %d diverged", i)
			}
		}
	}
}
