// Package lut implements the lookup-table generation step of the
// compilation framework (paper §V-B.4): the and-inverter graph of a
// cluster is covered with lookup tables of at most MaxInputs inputs using
// a priority-cuts mapper [42] whose cost function is Eq. 2
// (cost = Σ input-cluster costs + N_patterns + α), and each table is then
// turned into searches:
//
//   - for Hyper-AP, inputs are paired under the extended two-bit encoding
//     and the multi-pattern search count is the size of a box cover
//     (encoding.Minimize), with the bit pairing chosen per Fig. 11;
//   - for traditional AP, every irredundant cube is one
//     single-pattern search followed by one write
//     (Single-Search-Single-Pattern / Single-Search-Single-Write).
//
// N_patterns in the mapper's cost is the irredundant sum-of-products cube
// count, computed with the Minato-Morreale ISOP algorithm.
package lut

import (
	"fmt"
	stdbits "math/bits"
)

// MaxInputs is the lookup-table input limit. The paper sets it to 12:
// larger tables bring marginal gains but blow up compilation time and
// weaken search robustness (§V-B.4).
const MaxInputs = 12

// Truth is a truth table over nv ≤ MaxInputs variables, stored 64 minterms
// per word; bit m of the table is the function value on minterm m (bit i
// of m is variable i).
type Truth []uint64

// truthWords returns the word count for nv variables.
func truthWords(nv int) int {
	if nv <= 6 {
		return 1
	}
	return 1 << uint(nv-6)
}

// NewTruth returns an all-zero table for nv variables.
func NewTruth(nv int) Truth { return make(Truth, truthWords(nv)) }

// varMasks[i] is the truth table of variable i within one 64-bit word
// (valid for i < 6).
var varMasks = [6]uint64{
	0xAAAAAAAAAAAAAAAA, 0xCCCCCCCCCCCCCCCC, 0xF0F0F0F0F0F0F0F0,
	0xFF00FF00FF00FF00, 0xFFFF0000FFFF0000, 0xFFFFFFFF00000000,
}

// VarTruth returns the truth table of variable v among nv variables.
func VarTruth(v, nv int) Truth {
	t := NewTruth(nv)
	for w := range t {
		if v < 6 {
			t[w] = varMasks[v]
		} else if w>>uint(v-6)&1 == 1 {
			t[w] = ^uint64(0)
		}
	}
	return t
}

// Get returns minterm m's value.
func (t Truth) Get(m int) bool { return t[m>>6]&(1<<uint(m&63)) != 0 }

// Set sets minterm m.
func (t Truth) Set(m int, b bool) {
	if b {
		t[m>>6] |= 1 << uint(m&63)
	} else {
		t[m>>6] &^= 1 << uint(m&63)
	}
}

// mask clears the bits beyond 2^nv (only relevant for nv < 6).
func (t Truth) mask(nv int) Truth {
	if nv < 6 {
		t[0] &= 1<<(1<<uint(nv)) - 1
	}
	return t
}

// And stores x & y into t.
func (t Truth) And(x, y Truth) Truth {
	for w := range t {
		t[w] = x[w] & y[w]
	}
	return t
}

// AndNot stores x &^ y into t.
func (t Truth) AndNot(x, y Truth) Truth {
	for w := range t {
		t[w] = x[w] &^ y[w]
	}
	return t
}

// Or stores x | y into t.
func (t Truth) Or(x, y Truth) Truth {
	for w := range t {
		t[w] = x[w] | y[w]
	}
	return t
}

// NotOf stores ^x into t (caller must mask for nv < 6).
func (t Truth) NotOf(x Truth, nv int) Truth {
	for w := range t {
		t[w] = ^x[w]
	}
	return t.mask(nv)
}

// Clone copies the table.
func (t Truth) Clone() Truth { return append(Truth(nil), t...) }

// IsZero reports an all-false function.
func (t Truth) IsZero() bool {
	for _, w := range t {
		if w != 0 {
			return false
		}
	}
	return true
}

// Equal compares two tables.
func (t Truth) Equal(o Truth) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if t[i] != o[i] {
			return false
		}
	}
	return true
}

// CountOnes returns the on-set size over nv variables.
func (t Truth) CountOnes(nv int) int {
	n := 0
	for _, w := range t.Clone().mask(nv) {
		n += stdbits.OnesCount64(w)
	}
	return n
}

// Cofactor returns the cofactor with variable v fixed to val, replicated
// so the result is still a table over nv variables (v becomes don't-care).
func (t Truth) Cofactor(v, nv int, val bool) Truth {
	out := t.Clone()
	if v < 6 {
		shift := uint(1) << uint(v)
		m := varMasks[v]
		for w := range out {
			if val {
				hi := out[w] & m
				out[w] = hi | hi>>shift
			} else {
				lo := out[w] &^ m
				out[w] = lo | lo<<shift
			}
		}
		return out
	}
	blk := 1 << uint(v-6)
	for w := range out {
		sel := w
		if val {
			sel = w | blk
		} else {
			sel = w &^ blk
		}
		out[w] = t[sel]
	}
	return out
}

// DependsOn reports whether the function depends on variable v.
func (t Truth) DependsOn(v, nv int) bool {
	return !t.Cofactor(v, nv, false).Equal(t.Cofactor(v, nv, true))
}

// String renders the table as a hex string (LSB word first).
func (t Truth) String() string {
	s := ""
	for _, w := range t {
		s += fmt.Sprintf("%016x", w)
	}
	return s
}
