package lut

// Cube is one product term over the table's variables: bit v of Mask set
// means variable v is specified, and then bit v of Val is its required
// value. A cube is exactly one traditional-AP search pattern (the mask
// register provides the bit selectivity, Fig. 1b).
type Cube struct {
	Mask, Val uint16
}

// Contains reports whether minterm m satisfies the cube.
func (c Cube) Contains(m int) bool { return uint16(m)&c.Mask == c.Val }

// Literals returns the number of specified variables.
func (c Cube) Literals() int {
	n := 0
	for m := c.Mask; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// ErrTooManyCubes is returned (as ok=false) when an ISOP computation
// exceeds its cube budget; the mapper treats such cuts as unusable.
const isopNoBudget = -1

// ISOP computes an irredundant sum-of-products cover of the function
// using the Minato-Morreale algorithm. budget caps the number of cubes;
// when exceeded, ok is false (the mapper then rejects the cut, which is
// how the cost function of Eq. 2 steers clustering away from
// pattern-exploding functions like wide XORs).
func ISOP(t Truth, nv int, budget int) (cubes []Cube, ok bool) {
	on := t.Clone().mask(nv)
	cubes, _, n := isopRec(on, on.Clone(), nv-1, nv, budget)
	if n == isopNoBudget {
		return nil, false
	}
	return cubes, true
}

// isopRec returns the cubes, the cover's truth table, and the cube count
// (or isopNoBudget). L is the set that must be covered, U the set that
// may be covered.
func isopRec(L, U Truth, topVar, nv, budget int) ([]Cube, Truth, int) {
	if L.IsZero() {
		return nil, NewTruth(nv), 0
	}
	if budget <= 0 {
		return nil, nil, isopNoBudget
	}
	// If U is the universe restricted to... check: when L ⊆ U and U is
	// constant 1 over the remaining space, a single empty cube suffices.
	full := NewTruth(nv).NotOf(NewTruth(nv), nv)
	if U.Equal(full) {
		return []Cube{{}}, full, 1
	}
	// Find the highest variable L or U depends on.
	v := topVar
	for v >= 0 && !L.DependsOn(v, nv) && !U.DependsOn(v, nv) {
		v--
	}
	if v < 0 {
		// Constant non-zero L with U not full cannot happen (L ⊆ U), but
		// guard anyway: cover with the empty cube.
		return []Cube{{}}, full, 1
	}

	L0 := L.Cofactor(v, nv, false)
	L1 := L.Cofactor(v, nv, true)
	U0 := U.Cofactor(v, nv, false)
	U1 := U.Cofactor(v, nv, true)

	// Cubes that must contain v=0: needed where x=0 but not allowed at
	// x=1.
	needs0 := NewTruth(nv).AndNot(L0, U1)
	c0, cov0, n0 := isopRec(needs0, U0, v-1, nv, budget)
	if n0 == isopNoBudget {
		return nil, nil, isopNoBudget
	}
	needs1 := NewTruth(nv).AndNot(L1, U0)
	c1, cov1, n1 := isopRec(needs1, U1, v-1, nv, budget-n0)
	if n1 == isopNoBudget {
		return nil, nil, isopNoBudget
	}
	// Remainder covered by cubes free of v.
	rem0 := NewTruth(nv).AndNot(L0, cov0)
	rem1 := NewTruth(nv).AndNot(L1, cov1)
	remL := NewTruth(nv).Or(rem0, rem1)
	remU := NewTruth(nv).And(U0, U1)
	cs, covS, ns := isopRec(remL, remU, v-1, nv, budget-n0-n1)
	if ns == isopNoBudget {
		return nil, nil, isopNoBudget
	}

	bit := uint16(1) << uint(v)
	out := make([]Cube, 0, n0+n1+ns)
	for _, c := range c0 {
		out = append(out, Cube{Mask: c.Mask | bit, Val: c.Val})
	}
	for _, c := range c1 {
		out = append(out, Cube{Mask: c.Mask | bit, Val: c.Val | bit})
	}
	out = append(out, cs...)

	// Cover truth: (¬v & cov0) | (v & cov1) | covS.
	vt := VarTruth(v, nv)
	nvT := NewTruth(nv).NotOf(vt, nv)
	part0 := NewTruth(nv).And(nvT, cov0)
	part1 := NewTruth(nv).And(vt, cov1)
	cov := NewTruth(nv).Or(part0, part1)
	cov.Or(cov.Clone(), covS)
	return out, cov, n0 + n1 + ns
}

// CubesCover verifies a cube list against a truth table: every on-set
// minterm covered, no off-set minterm covered. Used by tests and by the
// traditional-AP code generator as a sanity check.
func CubesCover(t Truth, nv int, cubes []Cube) bool {
	for m := 0; m < 1<<uint(nv); m++ {
		in := false
		for _, c := range cubes {
			if c.Contains(m) {
				in = true
				break
			}
		}
		if in != t.Get(m) {
			return false
		}
	}
	return true
}
