package lut

import (
	"fmt"
	"sort"

	"hyperap/internal/aig"
)

// Mode selects which AP implementation the mapper optimises for. The
// paper's compiler retargets by changing α and the search cost model
// (§V-B.4): traditional AP pays one search and one write per pattern,
// Hyper-AP pays one (multi-pattern) search per box and one write per
// table.
type Mode int

// Mapper modes.
const (
	ModeHyper Mode = iota
	ModeTraditional
)

// Options configures the mapper.
type Options struct {
	K           int     // LUT input limit (≤ MaxInputs; the paper uses 12)
	CutsPerNode int     // priority-cut width
	Alpha       float64 // write/search latency ratio (Eq. 2's α)
	CubeBudget  int     // reject cuts whose ISOP exceeds this many cubes
	Mode        Mode
}

// DefaultOptions returns the paper's configuration for a given α.
func DefaultOptions(alpha float64) Options {
	return Options{K: MaxInputs, CutsPerNode: 4, Alpha: alpha, CubeBudget: 48, Mode: ModeHyper}
}

// LUT is one mapped lookup table: a single-output function of ≤ K leaf
// columns.
type LUT struct {
	Root   int   // AIG node computed by this table
	Leaves []int // AIG node ids (PIs or other LUT roots), ascending
	Truth  Truth // over the leaves (var i = Leaves[i])
	Cubes  []Cube
}

// OutputKind says how an output literal is realised.
type OutputKind int

// Output kinds.
const (
	OutConst OutputKind = iota
	OutInput            // directly a primary input column
	OutLUT
)

// OutputRef locates one output of the mapped function.
type OutputRef struct {
	Kind  OutputKind
	Value bool // OutConst: the constant value
	Node  int  // OutInput/OutLUT: AIG node
	Compl bool // complemented relative to the stored node value
}

// Mapping is the result of covering a cone with LUTs.
type Mapping struct {
	Graph   *aig.Graph
	LUTs    []*LUT // topological order: leaves precede roots
	ByRoot  map[int]*LUT
	Outputs []OutputRef
}

type cutInfo struct {
	leaves []int
	truth  Truth
	cubes  int
	flow   float64
}

// Map covers the cone of the given outputs with LUTs. Two mapping passes
// run: the first with structural fanout estimates, the second (area
// recovery) with the reference counts of the first mapping, which stops
// area flow from over-amortising nodes that operation merging absorbs
// entirely. The cheaper mapping wins.
func Map(g *aig.Graph, outs []aig.Lit, opt Options) (*Mapping, error) {
	if opt.K <= 1 || opt.K > MaxInputs {
		return nil, fmt.Errorf("lut: K must be in 2..%d, got %d", MaxInputs, opt.K)
	}
	if opt.CutsPerNode < 1 {
		opt.CutsPerNode = 4
	}
	if opt.CubeBudget < 2 {
		opt.CubeBudget = 48
	}
	cone := g.ConeNodes(outs) // AND nodes, topological
	// Pass 1: structural fanout counts (within the cone + outputs).
	refs := map[int]int{}
	for _, n := range cone {
		f0, f1 := g.Fanins(n)
		refs[f0.Node()]++
		refs[f1.Node()]++
	}
	for _, o := range outs {
		refs[o.Node()]++
	}
	m, err := mapOnce(g, cone, outs, opt, refs)
	if err != nil {
		return nil, err
	}
	// Pass 2: exact references — selected roots count their mapped
	// consumers; everything else would be instantiated fresh (refs 1).
	refs2 := map[int]int{}
	for _, l := range m.LUTs {
		for _, leaf := range l.Leaves {
			refs2[leaf]++
		}
	}
	for _, o := range outs {
		refs2[o.Node()]++
	}
	m2, err := mapOnce(g, cone, outs, opt, refs2)
	if err != nil {
		return nil, err
	}
	if mappingCost(m2, opt) < mappingCost(m, opt) {
		m = m2
	}
	if err := finishMapping(m); err != nil {
		return nil, err
	}
	return m, nil
}

// mappingCost is the Eq. 2 total of a selected mapping.
func mappingCost(m *Mapping, opt Options) float64 {
	total := 0.0
	for _, l := range m.LUTs {
		cubes, ok := countCubes(l.Truth, len(l.Leaves), 1<<uint(len(l.Leaves)))
		if !ok {
			return 1e18
		}
		if opt.Mode == ModeTraditional {
			total += float64(cubes) * (1 + opt.Alpha)
		} else {
			total += float64(cubes) + opt.Alpha
		}
	}
	return total
}

// mapOnce runs one priority-cuts mapping pass with the given reference
// counts.
func mapOnce(g *aig.Graph, cone []int, outs []aig.Lit, opt Options, refs map[int]int) (*Mapping, error) {
	cuts := map[int][]cutInfo{}
	bestFlow := func(node int) float64 {
		if g.IsPI(node) || node == 0 {
			return 0
		}
		return cuts[node][0].flow
	}
	cutCost := func(cubes int) float64 {
		if opt.Mode == ModeTraditional {
			return float64(cubes) * (1 + opt.Alpha)
		}
		return float64(cubes) + opt.Alpha
	}

	for _, n := range cone {
		f0, f1 := g.Fanins(n)
		cands := enumerateLeafSets(g, cuts, f0.Node(), f1.Node(), opt.K)
		var infos []cutInfo
		seen := map[string]bool{}
		for _, leaves := range cands {
			key := fmt.Sprint(leaves)
			if seen[key] {
				continue
			}
			seen[key] = true
			// Cuts stay structural during enumeration (support pruning
			// would break the cut property needed for cone simulation at
			// parent nodes); selected LUTs are pruned below.
			truth := SimulateCut(g, n, leaves)
			cubes, ok := countCubes(truth, len(leaves), opt.CubeBudget)
			if !ok {
				continue
			}
			flow := cutCost(cubes)
			for _, l := range leaves {
				r := refs[l]
				if r < 1 {
					r = 1
				}
				flow += bestFlow(l) / float64(r)
			}
			infos = append(infos, cutInfo{leaves: leaves, truth: truth, cubes: cubes, flow: flow})
		}
		if len(infos) == 0 {
			// The direct 2-leaf cut always exists and is tiny; reaching
			// here means even it exceeded the cube budget, which is
			// impossible (≤ 3 cubes for 2 inputs).
			return nil, fmt.Errorf("lut: no feasible cut for node %d", n)
		}
		sort.SliceStable(infos, func(a, b int) bool {
			if infos[a].flow != infos[b].flow {
				return infos[a].flow < infos[b].flow
			}
			// Tie: prefer the smaller cut (cheaper to search); the
			// area-recovery second pass recovers the operation-merging
			// opportunities that larger cuts would have bought.
			return len(infos[a].leaves) < len(infos[b].leaves)
		})
		if len(infos) > opt.CutsPerNode {
			infos = infos[:opt.CutsPerNode]
		}
		cuts[n] = infos
	}

	// Selection: walk back from the outputs, instantiating the best cut
	// of every required node.
	m := &Mapping{Graph: g, ByRoot: map[int]*LUT{}}
	var need func(node int)
	need = func(node int) {
		if node == 0 || g.IsPI(node) || m.ByRoot[node] != nil {
			return
		}
		best := cuts[node][0]
		leaves, truth := pruneSupport(best.leaves, best.truth)
		l := &LUT{Root: node, Leaves: leaves, Truth: truth}
		m.ByRoot[node] = l
		for _, leaf := range leaves {
			need(leaf)
		}
		m.LUTs = append(m.LUTs, l) // post-order: leaves first
	}
	for _, o := range outs {
		switch {
		case o.IsConst():
			m.Outputs = append(m.Outputs, OutputRef{Kind: OutConst, Value: o == aig.Const1})
		case g.IsPI(o.Node()):
			m.Outputs = append(m.Outputs, OutputRef{Kind: OutInput, Node: o.Node(), Compl: o.Compl()})
		default:
			need(o.Node())
			m.Outputs = append(m.Outputs, OutputRef{Kind: OutLUT, Node: o.Node(), Compl: o.Compl()})
		}
	}
	return m, nil
}

// finishMapping applies the polarity fixup and computes the selected
// LUTs' ISOP cubes.
func finishMapping(m *Mapping) error {
	// Polarity fixup: a complemented output whose LUT root has no other
	// consumer stores the complement directly — flipping the table is
	// free and saves the inverter pass the code generator would
	// otherwise emit.
	leafUse := map[int]int{}
	for _, l := range m.LUTs {
		for _, leaf := range l.Leaves {
			leafUse[leaf]++
		}
	}
	outRefs := map[int][]int{} // node → output indices
	for i, o := range m.Outputs {
		if o.Kind == OutLUT {
			outRefs[o.Node] = append(outRefs[o.Node], i)
		}
	}
	for node, idxs := range outRefs {
		if leafUse[node] > 0 {
			continue
		}
		allCompl := true
		for _, i := range idxs {
			if !m.Outputs[i].Compl {
				allCompl = false
				break
			}
		}
		if !allCompl {
			continue
		}
		l := m.ByRoot[node]
		l.Truth = NewTruth(len(l.Leaves)).NotOf(l.Truth, len(l.Leaves))
		for _, i := range idxs {
			m.Outputs[i].Compl = false
		}
	}
	// ISOP cubes for the selected LUTs (the traditional-AP table entries
	// and the N_patterns report).
	for _, l := range m.LUTs {
		cubes, ok := ISOP(l.Truth, len(l.Leaves), 1<<uint(len(l.Leaves)))
		if !ok {
			return fmt.Errorf("lut: ISOP failed for selected LUT at node %d", l.Root)
		}
		l.Cubes = cubes
	}
	return nil
}

// enumerateLeafSets produces candidate leaf sets for node AND(f0, f1):
// all unions of (cuts(f0) ∪ {f0}) × (cuts(f1) ∪ {f1}) within the input
// limit.
func enumerateLeafSets(g *aig.Graph, cuts map[int][]cutInfo, n0, n1, k int) [][]int {
	side := func(n int) [][]int {
		var out [][]int
		out = append(out, []int{n}) // the trivial cut
		if !g.IsPI(n) && n != 0 {
			for _, c := range cuts[n] {
				out = append(out, c.leaves)
			}
		}
		return out
	}
	var cands [][]int
	for _, a := range side(n0) {
		for _, b := range side(n1) {
			u := unionSorted(a, b)
			if len(u) <= k {
				cands = append(cands, u)
			}
		}
	}
	return cands
}

func unionSorted(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// SimulateCut computes the truth table of `root` as a function of the
// leaves by bit-parallel simulation of the cone between them.
func SimulateCut(g *aig.Graph, root int, leaves []int) Truth {
	nv := len(leaves)
	vals := map[int]Truth{}
	for i, l := range leaves {
		vals[l] = VarTruth(i, nv)
	}
	var visit func(n int) Truth
	visit = func(n int) Truth {
		if t, ok := vals[n]; ok && t != nil {
			return t
		}
		if g.IsPI(n) || n == 0 {
			panic(fmt.Sprintf("lut: cone reaches node %d outside the cut", n))
		}
		f0, f1 := g.Fanins(n)
		t0 := visit(f0.Node())
		if f0.Compl() {
			t0 = NewTruth(nv).NotOf(t0, nv)
		}
		t1 := visit(f1.Node())
		if f1.Compl() {
			t1 = NewTruth(nv).NotOf(t1, nv)
		}
		t := NewTruth(nv).And(t0, t1)
		vals[n] = t
		return t
	}
	return visit(root).Clone()
}

// pruneSupport drops leaves the function does not depend on and shrinks
// the truth table accordingly.
func pruneSupport(leaves []int, t Truth) ([]int, Truth) {
	nv := len(leaves)
	keep := make([]int, 0, nv)
	for v := 0; v < nv; v++ {
		if t.DependsOn(v, nv) {
			keep = append(keep, v)
		}
	}
	if len(keep) == nv {
		return leaves, t
	}
	newNv := len(keep)
	nt := NewTruth(newNv)
	for m := 0; m < 1<<uint(newNv); m++ {
		big := 0
		for i, v := range keep {
			if m>>uint(i)&1 == 1 {
				big |= 1 << uint(v)
			}
		}
		nt.Set(m, t.Get(big))
	}
	nl := make([]int, newNv)
	for i, v := range keep {
		nl[i] = leaves[v]
	}
	return nl, nt
}

// countCubes returns the ISOP cube count within budget.
func countCubes(t Truth, nv, budget int) (int, bool) {
	cubes, ok := ISOP(t, nv, budget)
	if !ok {
		return 0, false
	}
	return len(cubes), true
}

// TotalCubes sums the selected LUTs' pattern counts (the N_patterns the
// traditional AP would search one by one).
func (m *Mapping) TotalCubes() int {
	n := 0
	for _, l := range m.LUTs {
		n += len(l.Cubes)
	}
	return n
}
