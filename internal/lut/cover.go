package lut

import (
	"fmt"

	"hyperap/internal/encoding"
)

// StorageClass tells the cover chooser how each LUT leaf is stored in the
// TCAM word (decided by the data-layout pass):
//
//   - FixedPairs: two leaves of this LUT stored together as one encoded
//     pair (hi, lo);
//   - Free: leaves whose storage pairing is not committed yet (fresh
//     primary inputs) — the chooser pairs them to minimise searches
//     (the bit-pairing optimisation of Fig. 11);
//   - Halves: leaves stored as half of an encoded pair whose partner is
//     not an input of this LUT (still searchable alone: every subset of a
//     pair has a key);
//   - Singles: leaves stored as plain non-encoded TCAM bits.
type StorageClass struct {
	FixedPairs [][2]int
	Free       []int
	Halves     []int
	Singles    []int
}

// CoverPlan is the Hyper-AP search plan for one LUT: the committed
// pairing and the multi-pattern box cover. Variable order in Boxes is
// Pairs first (arity 4), then Arity2 (halves, singles, leftover frees).
type CoverPlan struct {
	Pairs    [][2]int // leaf positions (hi, lo), fixed pairs first
	Arity2   []int    // leaf positions searched as 2-valued variables
	Leftover []int    // members of Arity2 that were Free (uncommitted)
	Boxes    []encoding.Box
}

// Searches returns the number of search operations (one per box).
func (p *CoverPlan) Searches() int { return len(p.Boxes) }

// enumeration threshold: with ≤ maxEnumFree free leaves all pairings are
// tried (8 leaves → 105 matchings); beyond that a greedy adjacent pairing
// with one improvement pass is used.
const maxEnumFree = 8

// ChooseCover picks the bit pairing for the LUT's free leaves and
// computes the minimal box cover found (Fig. 11's optimisation: enumerate
// pairings, count searches, keep the best).
func ChooseCover(t Truth, nLeaves int, st StorageClass) *CoverPlan {
	if len(st.FixedPairs)*2+len(st.Free)+len(st.Halves)+len(st.Singles) != nLeaves {
		panic("lut: storage classes do not partition the leaves")
	}
	build := func(newPairs [][2]int, leftover []int) *CoverPlan {
		plan := &CoverPlan{
			Pairs:    append(append([][2]int{}, st.FixedPairs...), newPairs...),
			Arity2:   append(append(append([]int{}, st.Halves...), st.Singles...), leftover...),
			Leftover: leftover,
		}
		plan.Boxes = coverBoxes(t, nLeaves, plan)
		return plan
	}
	if len(st.Free) == 0 {
		return build(nil, nil)
	}
	var best *CoverPlan
	consider := func(p *CoverPlan) {
		if best == nil || len(p.Boxes) < len(best.Boxes) {
			best = p
		}
	}
	if len(st.Free) <= maxEnumFree {
		forEachMatching(st.Free, func(pairs [][2]int, leftover []int) {
			consider(build(pairs, leftover))
		})
		return best
	}
	// Greedy: adjacent pairing, then try pairwise partner swaps once.
	pairs, leftover := adjacentPairs(st.Free)
	best = build(pairs, leftover)
	improved := true
	for improved {
		improved = false
		for i := 0; i < len(pairs); i++ {
			for j := i + 1; j < len(pairs); j++ {
				for _, swap := range [][2][2]int{
					{{pairs[i][0], pairs[j][0]}, {pairs[i][1], pairs[j][1]}},
					{{pairs[i][0], pairs[j][1]}, {pairs[i][1], pairs[j][0]}},
				} {
					cand := append([][2]int{}, pairs...)
					cand[i], cand[j] = swap[0], swap[1]
					p := build(cand, leftover)
					if len(p.Boxes) < len(best.Boxes) {
						best, pairs = p, cand
						improved = true
					}
				}
			}
		}
	}
	return best
}

func adjacentPairs(free []int) ([][2]int, []int) {
	var pairs [][2]int
	var leftover []int
	for i := 0; i+1 < len(free); i += 2 {
		pairs = append(pairs, [2]int{free[i], free[i+1]})
	}
	if len(free)%2 == 1 {
		leftover = append(leftover, free[len(free)-1])
	}
	return pairs, leftover
}

// forEachMatching enumerates all ways to pair the elements (one element
// stays unpaired when the count is odd).
func forEachMatching(elems []int, f func(pairs [][2]int, leftover []int)) {
	var rec func(rest []int, pairs [][2]int, leftover []int)
	rec = func(rest []int, pairs [][2]int, leftover []int) {
		if len(rest) == 0 {
			f(pairs, leftover)
			return
		}
		if len(rest) == 1 {
			f(pairs, append(leftover, rest[0]))
			return
		}
		first := rest[0]
		for i := 1; i < len(rest); i++ {
			next := make([]int, 0, len(rest)-2)
			next = append(next, rest[1:i]...)
			next = append(next, rest[i+1:]...)
			rec(next, append(pairs, [2]int{first, rest[i]}), leftover)
		}
		// Odd count: `first` may also be the leftover.
		if len(rest)%2 == 1 {
			rec(rest[1:], pairs, append(leftover, first))
		}
	}
	rec(elems, nil, nil)
}

// coverBoxes converts the truth table into the encoding space implied by
// the plan's variable order and minimises the box cover.
func coverBoxes(t Truth, nLeaves int, plan *CoverPlan) []encoding.Box {
	vars := make([]encoding.Var, 0, len(plan.Pairs)+len(plan.Arity2))
	for range plan.Pairs {
		vars = append(vars, encoding.Pair)
	}
	for range plan.Arity2 {
		vars = append(vars, encoding.Single)
	}
	sp := encoding.NewSpace(vars)
	val := make([]uint8, sp.Size())
	pt := make(encoding.Point, len(vars))
	for idx := 0; idx < sp.Size(); idx++ {
		sp.Coords(idx, pt)
		m := 0
		for i, pr := range plan.Pairs {
			v := int(pt[i])
			if v&2 != 0 {
				m |= 1 << uint(pr[0]) // hi bit
			}
			if v&1 != 0 {
				m |= 1 << uint(pr[1]) // lo bit
			}
		}
		for i, leaf := range plan.Arity2 {
			if pt[len(plan.Pairs)+i] == 1 {
				m |= 1 << uint(leaf)
			}
		}
		if t.Get(m) {
			val[idx] = encoding.On
		}
	}
	_ = nLeaves
	return encoding.Minimize(sp, val)
}

// PlanCovers verifies a plan's boxes against the truth table (test and
// code-generation sanity check): a minterm is covered iff it is in the
// on-set.
func PlanCovers(t Truth, nLeaves int, plan *CoverPlan) error {
	for m := 0; m < 1<<uint(nLeaves); m++ {
		pt := make(encoding.Point, len(plan.Pairs)+len(plan.Arity2))
		for i, pr := range plan.Pairs {
			v := encoding.PairValue(0)
			if m>>uint(pr[0])&1 == 1 {
				v |= 2
			}
			if m>>uint(pr[1])&1 == 1 {
				v |= 1
			}
			pt[i] = v
		}
		for i, leaf := range plan.Arity2 {
			pt[len(plan.Pairs)+i] = encoding.PairValue(m >> uint(leaf) & 1)
		}
		in := false
		for _, b := range plan.Boxes {
			if b.Contains(pt) {
				in = true
				break
			}
		}
		if in != t.Get(m) {
			return fmt.Errorf("lut: cover mismatch at minterm %b: cover=%v truth=%v", m, in, t.Get(m))
		}
	}
	return nil
}
