package lut

import (
	"math/rand"
	"testing"

	"hyperap/internal/aig"
	"hyperap/internal/bits"
	"hyperap/internal/rtl"
)

func TestVarTruthAndGetSet(t *testing.T) {
	for nv := 1; nv <= 9; nv++ {
		for v := 0; v < nv; v++ {
			vt := VarTruth(v, nv)
			for m := 0; m < 1<<uint(nv); m++ {
				if vt.Get(m) != (m>>uint(v)&1 == 1) {
					t.Fatalf("nv=%d v=%d m=%d", nv, v, m)
				}
			}
		}
	}
	tt := NewTruth(8)
	tt.Set(200, true)
	if !tt.Get(200) || tt.Get(199) {
		t.Error("Get/Set wrong")
	}
	tt.Set(200, false)
	if !tt.IsZero() {
		t.Error("clear failed")
	}
}

func TestCofactorAndDepends(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for nv := 2; nv <= 8; nv++ {
		tt := NewTruth(nv)
		for m := 0; m < 1<<uint(nv); m++ {
			tt.Set(m, rng.Intn(2) == 0)
		}
		for v := 0; v < nv; v++ {
			c0 := tt.Cofactor(v, nv, false)
			c1 := tt.Cofactor(v, nv, true)
			for m := 0; m < 1<<uint(nv); m++ {
				m0 := m &^ (1 << uint(v))
				m1 := m | 1<<uint(v)
				if c0.Get(m) != tt.Get(m0) || c1.Get(m) != tt.Get(m1) {
					t.Fatalf("cofactor wrong nv=%d v=%d m=%d", nv, v, m)
				}
			}
		}
	}
	// x0 & x1 depends on both.
	tt := NewTruth(3).And(VarTruth(0, 3), VarTruth(1, 3))
	if !tt.DependsOn(0, 3) || !tt.DependsOn(1, 3) || tt.DependsOn(2, 3) {
		t.Error("DependsOn wrong")
	}
}

func TestISOPRandomCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		nv := 1 + rng.Intn(8)
		tt := NewTruth(nv)
		for m := 0; m < 1<<uint(nv); m++ {
			tt.Set(m, rng.Intn(3) == 0)
		}
		cubes, ok := ISOP(tt, nv, 1<<uint(nv))
		if !ok {
			t.Fatalf("trial %d: ISOP exceeded the trivial budget", trial)
		}
		if !CubesCover(tt, nv, cubes) {
			t.Fatalf("trial %d: cube cover incorrect (nv=%d)", trial, nv)
		}
		if len(cubes) > tt.CountOnes(nv) {
			t.Fatalf("trial %d: %d cubes exceed %d minterms", trial, len(cubes), tt.CountOnes(nv))
		}
	}
}

func TestISOPMajority(t *testing.T) {
	// Majority-of-3 (the full adder's carry) has exactly 3 irredundant
	// cubes — the Fig. 2b carry entries.
	tt := NewTruth(3)
	for m := 0; m < 8; m++ {
		if stdPopcount(m) >= 2 {
			tt.Set(m, true)
		}
	}
	cubes, ok := ISOP(tt, 3, 8)
	if !ok || len(cubes) != 3 {
		t.Fatalf("majority cubes = %d, want 3", len(cubes))
	}
}

func TestISOPBudgetAbort(t *testing.T) {
	// 8-input XOR has 128 minterm-cubes; a budget of 16 must abort.
	nv := 8
	tt := NewTruth(nv)
	for m := 0; m < 1<<uint(nv); m++ {
		if stdPopcount(m)%2 == 1 {
			tt.Set(m, true)
		}
	}
	if _, ok := ISOP(tt, nv, 16); ok {
		t.Error("budget abort expected")
	}
	cubes, ok := ISOP(tt, nv, 200)
	if !ok || len(cubes) != 128 {
		t.Errorf("xor8 cubes = %d ok=%v, want 128", len(cubes), ok)
	}
}

func stdPopcount(m int) int {
	n := 0
	for ; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// buildAdder returns an AIG computing a W-bit adder and its output
// literals.
func buildAdder(w int) (*aig.Graph, []aig.Lit) {
	g := aig.New()
	a := make(rtl.BV, w)
	b := make(rtl.BV, w)
	for i := range a {
		a[i] = g.NewPI()
	}
	for i := range b {
		b[i] = g.NewPI()
	}
	return g, rtl.Add(g, a, b)
}

// evalMapping runs the LUT network on one input assignment.
func evalMapping(m *Mapping, piVals []bool) []bool {
	vals := map[int]bool{}
	pis := m.Graph.PIs()
	for i, l := range pis {
		vals[l.Node()] = piVals[i]
	}
	for _, l := range m.LUTs {
		idx := 0
		for i, leaf := range l.Leaves {
			if vals[leaf] {
				idx |= 1 << uint(i)
			}
		}
		vals[l.Root] = l.Truth.Get(idx)
	}
	out := make([]bool, len(m.Outputs))
	for i, o := range m.Outputs {
		switch o.Kind {
		case OutConst:
			out[i] = o.Value
		default:
			v := vals[o.Node]
			if o.Compl {
				v = !v
			}
			out[i] = v
		}
	}
	return out
}

func TestMapAdderFunctional(t *testing.T) {
	for _, w := range []int{1, 4, 8} {
		g, outs := buildAdder(w)
		m, err := Map(g, outs, DefaultOptions(10))
		if err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		rng := rand.New(rand.NewSource(int64(w)))
		for trial := 0; trial < 100; trial++ {
			av := rng.Uint64() & bits.Mask(w)
			bv := rng.Uint64() & bits.Mask(w)
			pis := append(bits.ToBits(av, w), bits.ToBits(bv, w)...)
			got := bits.FromBits(evalMapping(m, pis))
			if got != av+bv {
				t.Fatalf("w=%d: %d+%d = %d", w, av, bv, got)
			}
		}
		for _, l := range m.LUTs {
			if len(l.Leaves) > MaxInputs {
				t.Fatalf("LUT exceeds %d inputs", MaxInputs)
			}
			if len(l.Cubes) == 0 {
				t.Fatal("selected LUT missing cubes")
			}
			if !CubesCover(l.Truth, len(l.Leaves), l.Cubes) {
				t.Fatal("selected LUT cubes wrong")
			}
		}
	}
}

func TestMapRespectsK(t *testing.T) {
	g, outs := buildAdder(8)
	m, err := Map(g, outs, Options{K: 4, CutsPerNode: 4, Alpha: 10, CubeBudget: 48})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range m.LUTs {
		if len(l.Leaves) > 4 {
			t.Fatalf("LUT has %d leaves with K=4", len(l.Leaves))
		}
	}
}

func TestAlphaShiftsMapping(t *testing.T) {
	// Higher α (RRAM) penalises writes (i.e. LUT count): the mapping for
	// α=10 must not use more LUTs than for α=0.
	g, outs := buildAdder(8)
	m0, err := Map(g, outs, DefaultOptions(0))
	if err != nil {
		t.Fatal(err)
	}
	m10, err := Map(g, outs, DefaultOptions(10))
	if err != nil {
		t.Fatal(err)
	}
	if len(m10.LUTs) > len(m0.LUTs) {
		t.Errorf("α=10 gives %d LUTs, α=0 gives %d; expected fewer or equal", len(m10.LUTs), len(m0.LUTs))
	}
}

func TestMapOutputsDirectCases(t *testing.T) {
	g := aig.New()
	a := g.NewPI()
	outs := []aig.Lit{aig.Const1, a, a.Not(), aig.Const0}
	m, err := Map(g, outs, DefaultOptions(10))
	if err != nil {
		t.Fatal(err)
	}
	if m.Outputs[0].Kind != OutConst || !m.Outputs[0].Value {
		t.Error("const1 output wrong")
	}
	if m.Outputs[1].Kind != OutInput || m.Outputs[1].Compl {
		t.Error("PI output wrong")
	}
	if m.Outputs[2].Kind != OutInput || !m.Outputs[2].Compl {
		t.Error("complemented PI output wrong")
	}
	if m.Outputs[3].Kind != OutConst || m.Outputs[3].Value {
		t.Error("const0 output wrong")
	}
	if len(m.LUTs) != 0 {
		t.Errorf("no LUTs expected, got %d", len(m.LUTs))
	}
}

// TestFig11PairingMatters reproduces Fig. 11: for the function with
// on-set {1000, 0100, 1011, 0111} (variables A,B,C,D), pairing (A,B) and
// (C,D) needs one search while pairing (A,C),(B,D) needs four. The
// chooser must find the one-search pairing.
func TestFig11PairingMatters(t *testing.T) {
	// Variable order in the truth table: A=0, B=1, C=2, D=3.
	onset := []int{
		1 << 0,             // A=1
		1 << 1,             // B=1
		1<<0 | 1<<2 | 1<<3, // A,C,D
		1<<1 | 1<<2 | 1<<3, // B,C,D
	}
	tt := NewTruth(4)
	for _, m := range onset {
		tt.Set(m, true)
	}
	plan := ChooseCover(tt, 4, StorageClass{Free: []int{0, 1, 2, 3}})
	if err := PlanCovers(tt, 4, plan); err != nil {
		t.Fatal(err)
	}
	if got := plan.Searches(); got != 1 {
		t.Errorf("optimal pairing needs %d searches, want 1 (Fig. 11)", got)
	}
	// The bad pairing from the figure really is worse.
	bad := ChooseCover(tt, 4, StorageClass{FixedPairs: [][2]int{{0, 2}, {1, 3}}})
	if err := PlanCovers(tt, 4, bad); err != nil {
		t.Fatal(err)
	}
	if bad.Searches() <= 1 {
		t.Errorf("(A,C)(B,D) pairing gives %d searches; figure says 4", bad.Searches())
	}
}

func TestChooseCoverClassesAndOddFree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		nv := 3 + rng.Intn(4)
		tt := NewTruth(nv)
		for m := 0; m < 1<<uint(nv); m++ {
			tt.Set(m, rng.Intn(2) == 0)
		}
		// Mixed storage: leaf 0 single, leaf 1 half, rest free.
		st := StorageClass{Singles: []int{0}, Halves: []int{1}}
		for v := 2; v < nv; v++ {
			st.Free = append(st.Free, v)
		}
		plan := ChooseCover(tt, nv, st)
		if err := PlanCovers(tt, nv, plan); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if (len(st.Free)%2 == 1) != (len(plan.Leftover) == 1) {
			t.Fatalf("trial %d: leftover accounting wrong", trial)
		}
	}
}

func TestChooseCoverGreedyPath(t *testing.T) {
	// More than maxEnumFree free leaves exercises the greedy+swap path.
	nv := 10
	tt := NewTruth(nv)
	rng := rand.New(rand.NewSource(4))
	for m := 0; m < 1<<uint(nv); m++ {
		tt.Set(m, rng.Intn(4) == 0)
	}
	free := make([]int, nv)
	for i := range free {
		free[i] = i
	}
	plan := ChooseCover(tt, nv, StorageClass{Free: free})
	if err := PlanCovers(tt, nv, plan); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateCutMatchesEval(t *testing.T) {
	g, outs := buildAdder(3)
	// Simulate the top sum bit over all PIs.
	root := outs[2]
	if root.Compl() || root.IsConst() {
		t.Skip("unexpected output shape")
	}
	sup := g.Support([]aig.Lit{root})
	tt := SimulateCut(g, root.Node(), sup)
	for m := 0; m < 1<<uint(len(sup)); m++ {
		pis := make([]bool, g.NumPIs())
		piIdx := map[int]int{}
		for i, l := range g.PIs() {
			piIdx[l.Node()] = i
		}
		for i, leaf := range sup {
			pis[piIdx[leaf]] = m>>uint(i)&1 == 1
		}
		want := g.EvalLits(pis, []aig.Lit{root})[0]
		if tt.Get(m) != want {
			t.Fatalf("minterm %b: sim=%v eval=%v", m, tt.Get(m), want)
		}
	}
}

func TestMapErrors(t *testing.T) {
	g, outs := buildAdder(2)
	if _, err := Map(g, outs, Options{K: 1}); err == nil {
		t.Error("K=1 must be rejected")
	}
	if _, err := Map(g, outs, Options{K: 99}); err == nil {
		t.Error("K>MaxInputs must be rejected")
	}
}
