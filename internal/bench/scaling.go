package bench

import (
	"fmt"
	"runtime"
	"time"

	"hyperap/internal/compile"
	"hyperap/internal/tech"
)

// ScalingPEs are the shard counts of the scale-pe experiment (and of the
// BenchmarkRunBatch harness in the repository root).
var ScalingPEs = []int{1, 4, 16}

// ScalingInputs builds the deterministic input batch of the scale-pe
// experiment: n slots for the 8-bit addition benchmark.
func ScalingInputs(n int) [][]uint64 {
	inputs := make([][]uint64, n)
	for i := range inputs {
		inputs[i] = []uint64{uint64(i) & 0xFF, uint64(i>>3+17) & 0xFF}
	}
	return inputs
}

// ScalingExecutable compiles the scale-pe benchmark operation (8-bit
// addition on the RRAM Hyper-AP target), cached across experiments.
func ScalingExecutable() (*compile.Executable, error) {
	src, _, err := ArithmeticSource("Add", 8)
	if err != nil {
		return nil, err
	}
	return CompileCached("scale-pe", src, compile.HyperTarget())
}

// MultiPEScaling measures — rather than analytically extrapolates — the
// multi-PE scaling of the sharded batch-execution engine: one full batch
// per PE count (256 slots per PE) runs through RunBatch on the simulator,
// and the table reports the per-pass latency, the aggregated operation
// and energy accounting of the sharded chip, and the host wall-clock of
// the bounded worker pool against single-worker execution. Cycles per
// pass stay flat as the PE count grows (every shard steps the same
// instruction stream), which is the paper's §IV scaling claim: simulated
// throughput in slots per pass grows linearly with the PE count.
func MultiPEScaling() (*Table, error) {
	ex, err := ScalingExecutable()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "scale-pe",
		Title:  "measured multi-PE batch execution (RunBatch, 8-bit add, 256 slots/PE)",
		Header: []string{"PEs", "slots", "cycles/pass", "searches", "energy/slot (pJ)", "serial ms", "pool ms"},
	}
	for _, pes := range ScalingPEs {
		n := pes * tech.PERows
		inputs := ScalingInputs(n)
		t0 := time.Now()
		if _, _, err := ex.RunBatch(inputs, compile.WithParallelism(1)); err != nil {
			return nil, err
		}
		serial := time.Since(t0)
		t1 := time.Now()
		outs, chip, err := ex.RunBatch(inputs)
		if err != nil {
			return nil, err
		}
		pool := time.Since(t1)
		for _, r := range []int{0, n / 2, n - 1} { // spot-check against the golden model
			if want := ex.Reference(inputs[r]); outs[r][0] != want[0] {
				return nil, fmt.Errorf("scale-pe: slot %d = %d, want %d", r, outs[r][0], want[0])
			}
		}
		rep := chip.Report()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", chip.NumPEs()),
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", rep.Cycles),
			fmt.Sprintf("%d", rep.Searches),
			fmt.Sprintf("%.2f", rep.Energy.TotalJ()/float64(n)*1e12),
			fmt.Sprintf("%.1f", serial.Seconds()*1e3),
			fmt.Sprintf("%.1f", pool.Seconds()*1e3),
		})
	}
	t.Notes = append(t.Notes,
		"cycles/pass is flat in the PE count: shards execute the same stream in lock-step, so simulated throughput (slots per pass) scales linearly with PEs",
		fmt.Sprintf("serial/pool ms are host wall-clock for the simulator itself, pool = %d workers (GOMAXPROCS)", runtime.GOMAXPROCS(0)))
	return t, nil
}
