// Package bench is the evaluation harness: it regenerates every table and
// figure of the paper's §VI from the simulator, the compiler and the
// baseline models (see DESIGN.md §3 for the experiment index). Each
// experiment returns a Table that the hyperap-bench command renders as
// text; testing.B benchmarks in the repository root wrap the same entry
// points.
package bench

import (
	"fmt"
	"sync"

	"hyperap/internal/compile"
	"hyperap/internal/tech"
)

// compiled caches executables across experiments (32-bit division takes
// tens of seconds to compile; every figure reuses the same five ops).
var compiled sync.Map // string → *compile.Executable

// CompileCached compiles a source once per (key, target) pair.
func CompileCached(key, src string, tgt compile.Target) (*compile.Executable, error) {
	ck := fmt.Sprintf("%s|%s|%d|%v|%v|%d|%d", key, tgt.Tech.Name, tgt.Tech.TCAMBitWriteCycles,
		tgt.Mode, tgt.Monolithic, boolToInt(tgt.NoAccumulation), tgt.K)
	if v, ok := compiled.Load(ck); ok {
		return v.(*compile.Executable), nil
	}
	ex, err := compile.CompileSource(src, tgt)
	if err != nil {
		return nil, err
	}
	compiled.Store(ck, ex)
	return ex, nil
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// ArithmeticSource returns the benchmark program for one representative
// operation at a given unsigned-integer width (the first synthetic
// benchmark set, §VI-A.1: single operations in one SIMD slot).
func ArithmeticSource(op string, width int) (src string, opsPerPass float64, err error) {
	w := width
	switch op {
	case "Add":
		return fmt.Sprintf(`unsigned int(%d) main(unsigned int(%d) a, unsigned int(%d) b){ return a + b; }`, w+1, w, w), 1, nil
	case "Mul":
		return fmt.Sprintf(`unsigned int(%d) main(unsigned int(%d) a, unsigned int(%d) b){ return a * b; }`, 2*w, w, w), 1, nil
	case "Div":
		return fmt.Sprintf(`unsigned int(%d) main(unsigned int(%d) a, unsigned int(%d) b){ return a / b; }`, w, w, w), 1, nil
	case "Sqrt":
		return fmt.Sprintf(`unsigned int(%d) main(unsigned int(%d) a){ return sqrt(a); }`, (w+1)/2, w), 1, nil
	case "Exp":
		ow := w
		if ow < 18 {
			ow = 18
		}
		return fmt.Sprintf(`unsigned int(%d) main(unsigned int(%d) a){ return exp(a); }`, ow, w), 1, nil
	case "Multi_Add":
		return fmt.Sprintf(`unsigned int(%d) main(unsigned int(%d) a, unsigned int(%d) b, unsigned int(%d) c, unsigned int(%d) d){ return a + b + c + d; }`,
			w+2, w, w, w, w), 3, nil
	case "Add_i":
		return fmt.Sprintf(`unsigned int(%d) main(unsigned int(%d) a){ return a + 19088743; }`, w+1, w), 1, nil
	case "Mul_i":
		return fmt.Sprintf(`unsigned int(%d) main(unsigned int(%d) a){ return a * 2654435; }`, 2*w, w), 1, nil
	case "Div_i":
		return fmt.Sprintf(`unsigned int(%d) main(unsigned int(%d) a){ return a / 12345; }`, w, w), 1, nil
	}
	return "", 0, fmt.Errorf("bench: unknown operation %q", op)
}

// Row is one system's measurement for one operation (the four panels of
// Figs. 15-17).
type Row struct {
	System         string
	LatencyNS      float64
	ThroughputGOPS float64
	PowerEffGOPSW  float64
	AreaEffGOPSmm2 float64
}

// hyperMetrics turns a compiled executable into the Fig. 15 metrics:
// latency from the cycle-accurate instruction stream, throughput as
// slots × ops / latency, power from the energy model extrapolated to the
// full chip, area efficiency against the die area.
func hyperMetrics(ex *compile.Executable, chip tech.Chip, opsPerPass float64) (Row, error) {
	lat := ex.LatencyNS()
	tp := chip.Throughput(lat, opsPerPass)
	perPE, err := ex.EnergyPerPE(tech.PERows)
	if err != nil {
		return Row{}, err
	}
	watts := ChipPower(perPE, lat, chip)
	return Row{
		System:         chip.Name,
		LatencyNS:      lat,
		ThroughputGOPS: tp,
		PowerEffGOPSW:  tech.PowerEfficiency(tp, watts),
		AreaEffGOPSmm2: chip.AreaEfficiency(tp),
	}, nil
}

// PEsPerSubarray on the real chip: subarray local controllers amortise
// instruction decode over this many PEs (§IV-B).
const PEsPerSubarray = 32

// ChipPower extrapolates a single-PE energy ledger to full-chip average
// power: data-path energy scales with the PE count, control energy with
// the subarray count.
func ChipPower(perPE tech.EnergyLedger, latencyNS float64, chip tech.Chip) float64 {
	if latencyNS <= 0 {
		return 0
	}
	pes := float64(chip.PEs())
	ctrl := perPE.ControlJ * pes / PEsPerSubarray
	data := perPE.TotalJ() - perPE.ControlJ
	totalJ := data*pes + ctrl
	return totalJ / (latencyNS * 1e-9)
}
