package bench

import (
	"fmt"
	"time"

	"hyperap/internal/chaos"
)

// ChaosTailPerf measures what hedged requests buy under injected tail
// latency: the same seeded latency-spike schedule (no errors, no
// storms) is run through a real 3-worker cluster twice — hedging off,
// then on — and the coordinator's end-to-end p99 is compared. With a
// 10% chance of a 50–100ms spike on any worker forward and a 10ms
// hedge stagger, an unhedged request eats the spike while a hedged one
// escapes to a replica after 10ms.
type ChaosTailPerf struct {
	Requests      int     `json:"requests_per_arm"`
	SpikeProb     float64 `json:"spike_prob"`
	SpikeMinMs    float64 `json:"spike_min_ms"`
	SpikeMaxMs    float64 `json:"spike_max_ms"`
	UnhedgedP50Ms float64 `json:"unhedged_p50_ms"`
	UnhedgedP99Ms float64 `json:"unhedged_p99_ms"`
	HedgedP50Ms   float64 `json:"hedged_p50_ms"`
	HedgedP99Ms   float64 `json:"hedged_p99_ms"`
	Hedges        int64   `json:"hedges"`
	HedgeWins     int64   `json:"hedge_wins"`
	P99Speedup    float64 `json:"p99_speedup"` // unhedged/hedged
}

const (
	chaosTailSpikeProb = 0.10
	chaosTailSpikeMin  = 50 * time.Millisecond
	chaosTailSpikeMax  = 100 * time.Millisecond
)

// measureChaosTail runs both arms on the same seed so the spike
// schedule is identical request-for-request; only the hedging differs.
func measureChaosTail() (*ChaosTailPerf, error) {
	arm := func(hedge bool) (*chaos.SeedResult, error) {
		rep, err := chaos.RunCampaign(chaos.CampaignConfig{
			Seeds:          []int64{1},
			Workers:        3,
			Requests:       150,
			Concurrency:    4,
			Programs:       3,
			Warmup:         24,
			Hedge:          hedge,
			HedgeDelay:     10 * time.Millisecond,
			RequestTimeout: 8 * time.Second,
			AttemptTimeout: 2 * time.Second,
			Schedule: func(seed int64, salt string) chaos.Schedule {
				return chaos.LatencyOnly(seed, salt, chaosTailSpikeProb, chaosTailSpikeMin, chaosTailSpikeMax)
			},
		})
		if err != nil {
			return nil, err
		}
		res := rep.Seeds[0]
		if res.Wrong != 0 || res.Hung != 0 {
			return nil, fmt.Errorf("bench: chaos tail arm (hedge=%v): wrong=%d hung=%d", hedge, res.Wrong, res.Hung)
		}
		return &res, nil
	}
	unhedged, err := arm(false)
	if err != nil {
		return nil, err
	}
	hedged, err := arm(true)
	if err != nil {
		return nil, err
	}
	ct := &ChaosTailPerf{
		Requests:      unhedged.Requests,
		SpikeProb:     chaosTailSpikeProb,
		SpikeMinMs:    float64(chaosTailSpikeMin.Nanoseconds()) / 1e6,
		SpikeMaxMs:    float64(chaosTailSpikeMax.Nanoseconds()) / 1e6,
		UnhedgedP50Ms: unhedged.P50NS / 1e6,
		UnhedgedP99Ms: unhedged.P99NS / 1e6,
		HedgedP50Ms:   hedged.P50NS / 1e6,
		HedgedP99Ms:   hedged.P99NS / 1e6,
		Hedges:        hedged.Hedges,
		HedgeWins:     hedged.HedgeWins,
	}
	if hedged.P99NS > 0 {
		ct.P99Speedup = unhedged.P99NS / hedged.P99NS
	}
	return ct, nil
}
