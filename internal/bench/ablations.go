package bench

import (
	"fmt"

	"hyperap/internal/aig"
	"hyperap/internal/compile"
	"hyperap/internal/lut"
	"hyperap/internal/rtl"
	"hyperap/internal/tech"
)

// AblAlpha sweeps the Eq. 2 α (write/search latency ratio): higher α
// steers the lookup-table generation toward fewer writes, trading search
// count — the knob that retargets the compiler between CMOS and RRAM
// (§V-B.4).
func AblAlpha() (*Table, error) {
	t := &Table{
		ID:     "abl-alpha",
		Title:  "Eq. 2 α sweep on 16-bit addition",
		Header: []string{"alpha", "searches", "writes", "LUTs", "cycles@alpha"},
	}
	src, _, _ := ArithmeticSource("Add", 16)
	for _, alpha := range []int{1, 2, 5, 10, 20} {
		tgt := compile.HyperTarget()
		tgt.Tech.TCAMBitWriteCycles = alpha // sets both α and the write cycles
		ex, err := CompileCached(fmt.Sprintf("abl-alpha-%d", alpha), src, tgt)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", alpha),
			fmt.Sprintf("%d", ex.Stats.Searches),
			fmt.Sprintf("%d", ex.Stats.Writes),
			fmt.Sprintf("%d", ex.Stats.LUTs),
			fmt.Sprintf("%d", ex.Stats.Cycles),
		})
	}
	return t, nil
}

// AblK sweeps the lookup-table input limit (the paper fixes it at 12:
// larger tables barely help but explode compile time and weaken sensing
// robustness, §V-B.4).
func AblK() (*Table, error) {
	t := &Table{
		ID:     "abl-k",
		Title:  "lookup-table input limit sweep on 8-bit multiplication",
		Header: []string{"K", "searches", "writes", "LUTs", "cycles"},
	}
	src, _, _ := ArithmeticSource("Mul", 8)
	for _, k := range []int{4, 6, 8, 10, 12} {
		tgt := compile.HyperTarget()
		tgt.K = k
		ex, err := CompileCached(fmt.Sprintf("abl-k-%d", k), src, tgt)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%d", ex.Stats.Searches),
			fmt.Sprintf("%d", ex.Stats.Writes),
			fmt.Sprintf("%d", ex.Stats.LUTs),
			fmt.Sprintf("%d", ex.Stats.Cycles),
		})
	}
	return t, nil
}

// AblPair compares the optimal bit pairing (Fig. 11's enumeration)
// against naive adjacent pairing over the lookup tables of an 8-bit
// adder.
func AblPair() (*Table, error) {
	g := aig.New()
	a := make(rtl.BV, 8)
	b := make(rtl.BV, 8)
	for i := range a {
		a[i] = g.NewPI()
	}
	for i := range b {
		b[i] = g.NewPI()
	}
	sum := rtl.Add(g, a, b)
	mp, err := lut.Map(g, sum, lut.DefaultOptions(tech.RRAM().Alpha()))
	if err != nil {
		return nil, err
	}
	optimal, adjacent := 0, 0
	for _, l := range mp.LUTs {
		free := make([]int, len(l.Leaves))
		for i := range free {
			free[i] = i
		}
		best := lut.ChooseCover(l.Truth, len(l.Leaves), lut.StorageClass{Free: free})
		optimal += best.Searches()

		var fixed [][2]int
		var leftover []int
		for i := 0; i+1 < len(l.Leaves); i += 2 {
			fixed = append(fixed, [2]int{i, i + 1})
		}
		if len(l.Leaves)%2 == 1 {
			leftover = append(leftover, len(l.Leaves)-1)
		}
		adj := lut.ChooseCover(l.Truth, len(l.Leaves), lut.StorageClass{FixedPairs: fixed, Singles: leftover})
		adjacent += adj.Searches()
	}
	t := &Table{
		ID:     "abl-pair",
		Title:  "bit-pairing optimisation (Fig. 11) on the 8-bit adder's tables",
		Header: []string{"pairing", "total searches"},
		Rows: [][]string{
			{"optimal (enumerated)", fmt.Sprintf("%d", optimal)},
			{"adjacent (naive)", fmt.Sprintf("%d", adjacent)},
		},
	}
	if optimal > adjacent {
		return nil, fmt.Errorf("bench: pairing optimisation made things worse (%d > %d)", optimal, adjacent)
	}
	return t, nil
}

// AblArray compares the logical-unified-physical-separated TCAM design
// against the monolithic array on the 32-bit addition: the separated
// design halves write latency (§IV-B).
func AblArray() (*Table, error) {
	t := &Table{
		ID:     "abl-array",
		Title:  "TCAM array design: separated vs monolithic (32-bit add)",
		Header: []string{"design", "cycles", "latency ns"},
	}
	src, _, _ := ArithmeticSource("Add", 32)
	sep, err := CompileCached("Add32", src, compile.HyperTarget())
	if err != nil {
		return nil, err
	}
	tgt := compile.HyperTarget()
	tgt.Monolithic = true
	mono, err := CompileCached("abl-array-mono", src, tgt)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows,
		[]string{"separated (Hyper-AP)", fmt.Sprintf("%d", sep.Stats.Cycles), f1(sep.LatencyNS())},
		[]string{"monolithic (previous works)", fmt.Sprintf("%d", mono.Stats.Cycles), f1(mono.LatencyNS())},
	)
	return t, nil
}
