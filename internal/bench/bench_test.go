package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func runExp(t *testing.T, id string) *Table {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatalf("%s: empty table", id)
	}
	var buf bytes.Buffer
	tbl.Render(&buf)
	if !strings.Contains(buf.String(), tbl.Title) {
		t.Errorf("%s: render missing title", id)
	}
	return tbl
}

func cellInt(t *testing.T, s string) int {
	t.Helper()
	v, err := strconv.Atoi(s)
	if err != nil {
		t.Fatalf("cell %q not an integer: %v", s, err)
	}
	return v
}

func TestFig2Fig5Counts(t *testing.T) {
	tbl := runExp(t, "fig2")
	// Row 0: traditional 7S 7W 14; row 1: Hyper-AP 4S 2W 6.
	if tbl.Rows[0][3] != "14" {
		t.Errorf("traditional ops = %s, want 14", tbl.Rows[0][3])
	}
	if tbl.Rows[1][3] != "6" {
		t.Errorf("Hyper-AP ops = %s, want 6", tbl.Rows[1][3])
	}
}

func TestTab1Tab2(t *testing.T) {
	t1 := runExp(t, "tab1")
	if len(t1.Rows) != 12 {
		t.Errorf("Table I has %d rows, want 12 instructions", len(t1.Rows))
	}
	t2 := runExp(t, "tab2")
	found := false
	for _, r := range t2.Rows {
		if r[0] == "SIMD slots" && r[3] == "33554432" {
			found = true
		}
	}
	if !found {
		t.Error("Table II missing the Hyper-AP slot count")
	}
}

func TestFig12Optimisations(t *testing.T) {
	tbl := runExp(t, "fig12")
	merged := cellInt(t, tbl.Rows[0][1])
	embedded := cellInt(t, tbl.Rows[1][1])
	generic := cellInt(t, tbl.Rows[2][1])
	if merged > 7 {
		t.Errorf("merged searches = %d, want ≤ 7 (paper: 6)", merged)
	}
	if embedded >= generic {
		t.Errorf("embedding (%d searches) must beat generic (%d)", embedded, generic)
	}
}

func TestFig13Listing(t *testing.T) {
	tbl := runExp(t, "fig13")
	foundSearch, foundWrite := false, false
	for _, r := range tbl.Rows {
		if strings.HasPrefix(r[1], "Search") {
			foundSearch = true
		}
		if strings.HasPrefix(r[1], "Write") {
			foundWrite = true
		}
	}
	if !foundSearch || !foundWrite {
		t.Error("listing must contain search and write instructions")
	}
}

func TestFig19aShape(t *testing.T) {
	tbl := runExp(t, "fig19a")
	// Row order: R-AP, R-Hyper-AP, C-AP, C-Hyper-AP.
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
		if err != nil {
			t.Fatalf("bad factor %q", s)
		}
		return v
	}
	rImpr := parse(tbl.Rows[1][5])
	cImpr := parse(tbl.Rows[3][5])
	if rImpr <= cImpr {
		t.Errorf("RRAM improvement (%.1fx) must exceed CMOS (%.1fx) — §VI-E", rImpr, cImpr)
	}
	if rImpr < 4 {
		t.Errorf("RRAM improvement %.1fx implausibly small", rImpr)
	}
}

func TestFig19bShares(t *testing.T) {
	tbl := runExp(t, "fig19b")
	share := func(cell string) float64 {
		pct := strings.SplitN(cell, "%", 2)[0]
		v, err := strconv.ParseFloat(pct, 64)
		if err != nil {
			t.Fatalf("bad share cell %q", cell)
		}
		return v
	}
	for _, r := range tbl.Rows {
		keys, acc, arr := share(r[1]), share(r[2]), share(r[3])
		// The ordering claim of Fig. 19b: the extended search keys are the
		// largest contributor and the accumulation unit benefits from the
		// multi-pattern reduction; the array design only matters for
		// writes. (Our measured shares are flatter than the paper's
		// 83/15/2 because our traditional baseline shares the optimised
		// ISOP tables — see EXPERIMENTS.md.)
		if keys < arr {
			t.Errorf("%s: search keys (%.0f%%) should outweigh the array design (%.0f%%)", r[0], keys, arr)
		}
		if keys+acc < 50 {
			t.Errorf("%s: execution-model contributions (%.0f%%+%.0f%%) should dominate", r[0], keys, acc)
		}
	}
}

func TestAblations(t *testing.T) {
	alpha := runExp(t, "abl-alpha")
	// Endpoint comparison (the heuristic mapper is not strictly
	// monotonic): a large α must not use more writes than α = 1, and it
	// must cost more cycles (writes are slower).
	first, last := alpha.Rows[0], alpha.Rows[len(alpha.Rows)-1]
	if cellInt(t, last[2]) > cellInt(t, first[2]) {
		t.Errorf("writes at high α (%s) exceed writes at α=1 (%s)", last[2], first[2])
	}
	if cellInt(t, last[4]) <= cellInt(t, first[4]) {
		t.Error("cycles must grow with the write/search latency ratio")
	}
	runExp(t, "abl-k")
	pair := runExp(t, "abl-pair")
	if cellInt(t, pair.Rows[0][1]) > cellInt(t, pair.Rows[1][1]) {
		t.Error("optimal pairing must not lose to adjacent pairing")
	}
	arr := runExp(t, "abl-array")
	if cellInt(t, arr.Rows[0][1]) >= cellInt(t, arr.Rows[1][1]) {
		t.Error("separated design must be faster than monolithic")
	}
}

// TestHeavyFigures regenerates the arithmetic and kernel figures; this
// compiles the 32-bit operation suite, so it is skipped in -short mode.
func TestHeavyFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy figure regeneration skipped in -short mode")
	}
	f15 := runExp(t, "fig15")
	if len(f15.Rows) != 15 { // 5 ops × 3 systems
		t.Errorf("fig15 rows = %d, want 15", len(f15.Rows))
	}
	f16 := runExp(t, "fig16")
	// Precision scaling: 16-bit Hyper-AP add must be faster than 32-bit.
	lat32 := f15.Rows[2][2]
	lat16 := f16.Rows[2][2]
	v32, _ := strconv.ParseFloat(lat32, 64)
	v16, _ := strconv.ParseFloat(lat16, 64)
	if v16 >= v32 {
		t.Errorf("16-bit add latency %v must beat 32-bit %v (Fig. 16)", v16, v32)
	}
	runExp(t, "fig17")
	f18 := runExp(t, "fig18")
	if len(f18.Rows) != 8 {
		t.Errorf("fig18 rows = %d, want 8 kernels", len(f18.Rows))
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown id must error")
	}
}

func TestAblClusterAndMargin(t *testing.T) {
	cl := runExp(t, "abl-cluster")
	if len(cl.Rows) != 8 {
		t.Errorf("cluster table rows = %d, want 8 kernels", len(cl.Rows))
	}
	mg := runExp(t, "abl-margin")
	// The margin must be positive for LUT-sized searches and collapse for
	// absurd widths.
	if mg.Rows[1][2] != "yes" {
		t.Error("12-cell search must be robust")
	}
	if mg.Rows[len(mg.Rows)-1][2] != "NO" {
		t.Error("8192-cell search must not be robust")
	}
}
