package bench

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"hyperap/internal/cluster"
	"hyperap/internal/serve"
)

// ClusterPerf compares coordinator-routed throughput on one worker vs
// three (fingerprint affinity should let distinct programs run on
// distinct nodes without cold caches), and measures failover
// time-to-recovery: how long after a worker dies until the coordinator
// answers a request for a program that worker owned.
//
// The workers run in-process and share this host's cores, so Scaling
// measures routing overhead (≈1.0 means the ring adds nothing over a
// single node on one machine), not multi-machine capacity.
type ClusterPerf struct {
	Programs     int     `json:"programs"`
	Requests     int     `json:"requests"`
	OneWorkerRPS float64 `json:"one_worker_rps"`
	ThreeRPS     float64 `json:"three_worker_rps"`
	Scaling      float64 `json:"scaling"`
	FailoverMs   float64 `json:"failover_ms"`
}

// benchLateHandler lets the httptest listeners come up before the serve
// instances exist, so each worker can be given its siblings' URLs as
// store peers.
type benchLateHandler struct{ h atomic.Value }

func (l *benchLateHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h, ok := l.h.Load().(http.Handler); ok {
		h.ServeHTTP(w, r)
		return
	}
	http.Error(w, "not ready", http.StatusServiceUnavailable)
}

type benchCluster struct {
	workers []*serve.Server
	tss     []*httptest.Server
	urls    []string
	coord   *cluster.Coordinator
	cts     *httptest.Server
}

func newBenchCluster(n int) *benchCluster {
	bc := &benchCluster{}
	late := make([]*benchLateHandler, n)
	for i := 0; i < n; i++ {
		late[i] = &benchLateHandler{}
		ts := httptest.NewServer(late[i])
		bc.tss = append(bc.tss, ts)
		bc.urls = append(bc.urls, ts.URL)
	}
	for i := 0; i < n; i++ {
		var peers []string
		for j, u := range bc.urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		s := serve.New(serve.Config{CoalesceWindow: time.Millisecond, Peers: peers})
		bc.workers = append(bc.workers, s)
		late[i].h.Store(http.Handler(s))
	}
	bc.coord = cluster.New(cluster.Config{
		Workers:       bc.urls,
		ProbeInterval: 100 * time.Millisecond,
		FailAfter:     2,
	})
	bc.cts = httptest.NewServer(bc.coord)
	return bc
}

func (bc *benchCluster) close() {
	bc.cts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	bc.coord.Drain(ctx)
	for i, s := range bc.workers {
		if s != nil {
			s.Drain(ctx)
		}
		bc.tss[i].Close()
	}
}

// clusterSources builds distinct-fingerprint adder programs so the ring
// spreads them across workers.
func clusterSources(n int) []string {
	srcs := make([]string, n)
	for i := range srcs {
		w := 3 + i
		srcs[i] = fmt.Sprintf(
			"unsigned int(%d) main(unsigned int(%d) a, unsigned int(%d) b){ return a + b; }",
			w+1, w, w)
	}
	return srcs
}

// driveCluster pushes the mixed-program workload through the
// coordinator and returns requests/sec.
func driveCluster(url string, srcs []string, clients, requests int) (float64, error) {
	var wg sync.WaitGroup
	errs := make([]error, clients)
	t0 := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := c; r < requests; r += clients {
				src := srcs[r%len(srcs)]
				w := 3 + r%len(srcs)
				mask := uint64(1)<<w - 1
				inputs := [][]uint64{{uint64(r) & mask, uint64(2*r+1) & mask}}
				if err := postRun(url+"/v1/run", serve.RunRequest{Source: src, Inputs: inputs}); err != nil {
					errs[c] = err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(t0)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return float64(requests) / elapsed.Seconds(), nil
}

// measureCluster runs the 1-vs-3-worker comparison and the failover
// drill.
func measureCluster() (*ClusterPerf, error) {
	const (
		programs = 6
		clients  = 8
		requests = 96
	)
	srcs := clusterSources(programs)

	one := newBenchCluster(1)
	// Warm the caches so both measurements compare steady-state routing,
	// not compile time.
	if _, err := driveCluster(one.cts.URL, srcs, clients, programs*2); err != nil {
		one.close()
		return nil, err
	}
	oneRPS, err := driveCluster(one.cts.URL, srcs, clients, requests)
	one.close()
	if err != nil {
		return nil, err
	}

	three := newBenchCluster(3)
	defer three.close()
	if _, err := driveCluster(three.cts.URL, srcs, clients, programs*2); err != nil {
		return nil, err
	}
	threeRPS, err := driveCluster(three.cts.URL, srcs, clients, requests)
	if err != nil {
		return nil, err
	}

	// Failover drill: kill worker 0 and time the coordinator's next
	// successful answer for each program (in-request failover to the
	// next ring replica, no probe round-trip required).
	three.tss[0].CloseClientConnections()
	three.tss[0].Close()
	three.workers[0] = nil
	t0 := time.Now()
	deadline := t0.Add(20 * time.Second)
	for _, src := range srcs {
		w := 3 + 0
		for {
			err := postRun(three.cts.URL+"/v1/run", serve.RunRequest{Source: src, Inputs: [][]uint64{{1 & (1<<w - 1), 2}}})
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("bench: cluster never recovered after kill: %v", err)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	failover := time.Since(t0)

	cp := &ClusterPerf{
		Programs:     programs,
		Requests:     requests,
		OneWorkerRPS: oneRPS,
		ThreeRPS:     threeRPS,
		Scaling:      threeRPS / oneRPS,
		FailoverMs:   float64(failover.Nanoseconds()) / 1e6,
	}
	return cp, nil
}
