package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's result in a renderable form.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// f1 formats a float with sensible precision for table cells.
func f1(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// fx formats an improvement factor.
func fx(v float64) string { return fmt.Sprintf("%.2fx", v) }
