package bench

import "fmt"

// Experiment is one regenerable table/figure.
type Experiment struct {
	ID    string
	Run   func() (*Table, error)
	Heavy bool // compiles 32-bit div/exp (tens of seconds)
}

// Experiments returns the full index (DESIGN.md §3), in presentation
// order.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "fig2", Run: Fig2Fig5},
		{ID: "fig5", Run: Fig2Fig5},
		{ID: "tab1", Run: Tab1},
		{ID: "tab2", Run: Tab2},
		{ID: "fig12", Run: Fig12},
		{ID: "fig13", Run: Fig13},
		{ID: "fig15", Run: func() (*Table, error) { return ArithmeticFigure(32) }, Heavy: true},
		{ID: "fig16", Run: func() (*Table, error) { return ArithmeticFigure(16) }, Heavy: true},
		{ID: "fig17", Run: Fig17, Heavy: true},
		{ID: "fig18", Run: Fig18, Heavy: true},
		{ID: "fig19a", Run: Fig19a},
		{ID: "fig19b", Run: Fig19b},
		{ID: "abl-alpha", Run: AblAlpha},
		{ID: "abl-k", Run: AblK},
		{ID: "abl-pair", Run: AblPair},
		{ID: "abl-array", Run: AblArray},
		{ID: "abl-cluster", Run: AblCluster},
		{ID: "abl-margin", Run: AblMargin},
		{ID: "scale-pe", Run: MultiPEScaling},
	}
}

// ByID finds one experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q (see DESIGN.md §3)", id)
}
