package bench

import (
	"fmt"

	"hyperap/internal/bits"
	"hyperap/internal/compile"
	"hyperap/internal/gpu"
	"hyperap/internal/imp"
	"hyperap/internal/isa"
	"hyperap/internal/model"
	"hyperap/internal/tcam"
	"hyperap/internal/tech"
)

// Tab1 regenerates Table I: the ISA with cycle costs and instruction
// lengths, for the RRAM constants.
func Tab1() (*Table, error) {
	t := &Table{
		ID:     "tab1",
		Title:  "instruction set architecture (Table I, RRAM constants)",
		Header: []string{"category", "opcode", "cycles", "length (bytes)"},
	}
	cp := isa.DefaultCycleParams()
	rows := []struct {
		cat string
		in  isa.Instruction
		cyc string
	}{
		{"Compute", isa.Search(false, false), ""},
		{"Compute", isa.Write(0, false), "12/23"},
		{"Compute", isa.SetKey(nil), ""},
		{"", isa.Instruction{Op: isa.OpCount}, ""},
		{"", isa.Instruction{Op: isa.OpIndex}, ""},
		{"", isa.MovR(isa.DirUp), ""},
		{"Data Manipulate", isa.Instruction{Op: isa.OpReadR}, "variable"},
		{"Data Manipulate", isa.Instruction{Op: isa.OpWriteR, Imm: make([]byte, 64)}, "variable"},
		{"", isa.Instruction{Op: isa.OpSetTag}, ""},
		{"", isa.Instruction{Op: isa.OpReadTag}, ""},
		{"Control", isa.Broadcast(0), ""},
		{"Control", isa.Wait(0), "variable"},
	}
	for _, r := range rows {
		cyc := r.cyc
		if cyc == "" {
			cyc = fmt.Sprintf("%d", r.in.Cycles(cp))
		}
		t.Rows = append(t.Rows, []string{r.cat, r.in.Op.String(), cyc, fmt.Sprintf("%d", r.in.Length())})
	}
	return t, nil
}

// Tab2 regenerates Table II: the three compared systems.
func Tab2() (*Table, error) {
	t := &Table{
		ID:     "tab2",
		Title:  "system configurations (Table II)",
		Header: []string{"parameter", "GPU (1-card)", "IMP", "Hyper-AP"},
	}
	g, i, h := gpu.Default(), imp.Default(), tech.HyperAPChip()
	t.Rows = append(t.Rows,
		[]string{"SIMD slots", fmt.Sprintf("%d", g.SIMDSlots), fmt.Sprintf("%d", i.SIMDSlots), fmt.Sprintf("%d", h.SIMDSlots)},
		[]string{"frequency", "1.58 GHz", "20 MHz", "1 GHz"},
		[]string{"area (mm²)", f1(g.AreaMM2), f1(i.AreaMM2), f1(h.AreaMM2)},
		[]string{"TDP (W)", f1(g.TDPWatts), f1(i.TDPWatts), f1(h.TDPWatts)},
		[]string{"memory", "3MB L2 + 12GB DRAM", "1GB RRAM", "1GB RRAM"},
	)
	return t, nil
}

// Fig2Fig5 replays the 1-bit-addition example on both abstract machines
// and reports the operation counts of Figs. 2 and 5d.
func Fig2Fig5() (*Table, error) {
	t := &Table{
		ID:     "fig2+fig5",
		Title:  "1-bit addition with carry on both execution models (Figs. 2, 5d)",
		Header: []string{"machine", "searches", "writes", "total ops"},
	}
	// Traditional AP, Fig. 2: columns A=0 B=1 Cin=2 Sum=3 Cout=4.
	trad := model.NewTraditionalAP(8, 5)
	for row := 0; row < 8; row++ {
		trad.SetBit(row, 0, row&1 != 0)
		trad.SetBit(row, 1, row&2 != 0)
		trad.SetBit(row, 2, row&4 != 0)
	}
	trad.RunLUT(fullAdderLUT())
	t.Rows = append(t.Rows, []string{"traditional AP (Fig. 2c)",
		fmt.Sprintf("%d", trad.Ops.Searches), fmt.Sprintf("%d", trad.Ops.Writes), fmt.Sprintf("%d", trad.Ops.Total())})

	// Hyper-AP, Fig. 5d.
	hy := model.NewHyperAP(tcam.NewSeparated(8, 5, tcam.DefaultParams()))
	for row := 0; row < 8; row++ {
		// The demo machine is fault-free, so loads cannot fail.
		if err := hy.LoadPair(row, 0, row&1 != 0, row&2 != 0); err != nil {
			return nil, err
		}
		for col, b := range []bool{row&4 != 0, false, false} {
			if err := hy.LoadBit(row, col+2, b); err != nil {
				return nil, err
			}
		}
	}
	key := func(s string, cols ...int) []bits.Key {
		ks, err := bits.ParseKeys(s)
		if err != nil {
			panic(err)
		}
		out := make([]bits.Key, 5)
		for i := range out {
			out[i] = bits.KDC
		}
		for i, c := range cols {
			out[c] = ks[i]
		}
		return out
	}
	hy.Search(key("010", 0, 1, 2), false)
	hy.Search(key("101", 0, 1, 2), true)
	if _, err := hy.Write(3, bits.K1); err != nil {
		return nil, err
	}
	hy.Search(key("-11", 0, 1, 2), false)
	hy.Search(key("1Z0", 0, 1, 2), true)
	if _, err := hy.Write(4, bits.K1); err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"Hyper-AP (Fig. 5d)",
		fmt.Sprintf("%d", hy.Ops.Searches), fmt.Sprintf("%d", hy.Ops.Writes), fmt.Sprintf("%d", hy.Ops.Total())})
	t.Notes = append(t.Notes, "paper: 14 operations vs 6 operations (2.3x fewer)")
	return t, nil
}

func fullAdderLUT() []model.LUTEntry {
	return []model.LUTEntry{
		{Inputs: []model.ColBit{{Col: 0, Bit: true}, {Col: 1, Bit: false}, {Col: 2, Bit: false}}, Outputs: []model.ColBit{{Col: 3, Bit: true}}},
		{Inputs: []model.ColBit{{Col: 0, Bit: false}, {Col: 1, Bit: true}, {Col: 2, Bit: false}}, Outputs: []model.ColBit{{Col: 3, Bit: true}}},
		{Inputs: []model.ColBit{{Col: 0, Bit: false}, {Col: 1, Bit: false}, {Col: 2, Bit: true}}, Outputs: []model.ColBit{{Col: 3, Bit: true}}},
		{Inputs: []model.ColBit{{Col: 0, Bit: true}, {Col: 1, Bit: true}, {Col: 2, Bit: true}}, Outputs: []model.ColBit{{Col: 3, Bit: true}}},
		{Inputs: []model.ColBit{{Col: 0, Bit: true}, {Col: 1, Bit: true}}, Outputs: []model.ColBit{{Col: 4, Bit: true}}},
		{Inputs: []model.ColBit{{Col: 0, Bit: true}, {Col: 2, Bit: true}}, Outputs: []model.ColBit{{Col: 4, Bit: true}}},
		{Inputs: []model.ColBit{{Col: 1, Bit: true}, {Col: 2, Bit: true}}, Outputs: []model.ColBit{{Col: 4, Bit: true}}},
	}
}

// Fig12 regenerates the compiler-optimisation examples: operation merging
// (Fig. 12a) and operand embedding (Fig. 12b).
func Fig12() (*Table, error) {
	t := &Table{
		ID:     "fig12",
		Title:  "compiler optimisations (Fig. 12)",
		Header: []string{"program", "searches", "writes", "patterns", "LUTs"},
	}
	cases := []struct {
		name, src string
	}{
		{"merged g=a+b+c+d (12a)", `
			unsigned int(3) main(unsigned int(1) a, unsigned int(1) b, unsigned int(1) c, unsigned int(1) d) {
				unsigned int(2) e;
				unsigned int(2) f;
				e = a + b;
				f = c + d;
				return e + f;
			}`},
		{"embedded a+2 (12b)", `
			unsigned int(3) main(unsigned int(2) a) {
				unsigned int(2) b;
				b = 2;
				return a + b;
			}`},
		{"generic a+b (12b baseline)", `
			unsigned int(3) main(unsigned int(2) a, unsigned int(2) b) {
				return a + b;
			}`},
	}
	for _, c := range cases {
		ex, err := CompileCached("fig12-"+c.name, c.src, compile.HyperTarget())
		if err != nil {
			return nil, err
		}
		s := ex.Stats
		t.Rows = append(t.Rows, []string{c.name,
			fmt.Sprintf("%d", s.Searches), fmt.Sprintf("%d", s.Writes),
			fmt.Sprintf("%d", s.Patterns), fmt.Sprintf("%d", s.LUTs)})
	}
	t.Notes = append(t.Notes,
		"paper: merging 8S/7W → 6S/3W; embedding 5S → 3S (searches include column-initialisation match-alls)")
	return t, nil
}

// Fig13 compiles the 2-bit addition of Fig. 13a and disassembles the
// generated search/write sequence.
func Fig13() (*Table, error) {
	ex, err := CompileCached("fig13", `
		unsigned int(3) main(unsigned int(2) a, unsigned int(2) b) {
			unsigned int(3) c;
			c = a + b;
			return c;
		}`, compile.HyperTarget())
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig13",
		Title:  "compiled 2-bit addition (Fig. 13a)",
		Header: []string{"pc", "instruction"},
	}
	for i, in := range ex.Prog {
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", i), in.String()})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("%d searches, %d writes (paper example with 3-input tables: 6 searches)",
		ex.Stats.Searches, ex.Stats.Writes))
	return t, nil
}
