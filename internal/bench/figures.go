package bench

import (
	"fmt"
	"math"

	"hyperap/internal/compile"
	"hyperap/internal/gpu"
	"hyperap/internal/imp"
	"hyperap/internal/tech"
	"hyperap/internal/workload"
)

var arithmeticOps = []string{"Add", "Mul", "Div", "Sqrt", "Exp"}

// ArithmeticFigure regenerates Fig. 15 (width 32) or Fig. 16 (width 16):
// latency, throughput, power efficiency and area efficiency for the five
// representative operations on GPU, IMP and Hyper-AP.
func ArithmeticFigure(width int) (*Table, error) {
	id := "fig15"
	if width == 16 {
		id = "fig16"
	}
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("%d-bit arithmetic operations (latency ns / GOPS / GOPS/W / GOPS/mm²)", width),
		Header: []string{"op", "system", "latency", "thruput", "pwr-eff", "area-eff", "vs IMP (lat/tp/pe/ae)"},
	}
	chip := tech.HyperAPChip()
	impChip := imp.Default()
	gpuChip := gpu.Default()
	for _, op := range arithmeticOps {
		src, opsPerPass, err := ArithmeticSource(op, width)
		if err != nil {
			return nil, err
		}
		ex, err := CompileCached(fmt.Sprintf("%s%d", op, width), src, compile.HyperTarget())
		if err != nil {
			return nil, err
		}
		hy, err := hyperMetrics(ex, chip, opsPerPass)
		if err != nil {
			return nil, err
		}
		ip, err := impChip.Arithmetic(imp.Op(op), width)
		if err != nil {
			return nil, err
		}
		gp, err := gpuChip.Arithmetic(op, width)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows,
			[]string{op, "GPU", f1(gp.LatencyNS), f1(gp.ThroughputGOPS), f1(gp.PowerEffGOPSW), f1(gp.AreaEffGOPSmm2), ""},
			[]string{"", "IMP", f1(ip.LatencyNS), f1(ip.ThroughputGOPS), f1(ip.PowerEffGOPSW), f1(ip.AreaEffGOPSmm2), ""},
			[]string{"", "Hyper-AP", f1(hy.LatencyNS), f1(hy.ThroughputGOPS), f1(hy.PowerEffGOPSW), f1(hy.AreaEffGOPSmm2),
				fmt.Sprintf("%s/%s/%s/%s",
					fx(ip.LatencyNS/hy.LatencyNS), fx(hy.ThroughputGOPS/ip.ThroughputGOPS),
					fx(hy.PowerEffGOPSW/ip.PowerEffGOPSW), fx(hy.AreaEffGOPSmm2/ip.AreaEffGOPSmm2))},
		)
	}
	t.Notes = append(t.Notes,
		"Hyper-AP rows are measured on the simulator; GPU and IMP rows are the calibrated reference models (see internal/imp, internal/gpu).")
	return t, nil
}

// Fig17 regenerates the operation-merging and operand-embedding study:
// three consecutive additions (Multi_Add) and operations with immediate
// operands (Add_i, Mul_i, Div_i) at 32 bits.
func Fig17() (*Table, error) {
	t := &Table{
		ID:     "fig17",
		Title:  "operation merging and operand embedding, 32-bit (Fig. 17)",
		Header: []string{"op", "system", "latency", "thruput", "pwr-eff", "area-eff", "vs IMP (tp)"},
	}
	chip := tech.HyperAPChip()
	impChip := imp.Default()
	cases := []struct {
		name string
		impP func() (imp.Perf, error)
	}{
		{"Multi_Add", func() (imp.Perf, error) { return impChip.MergedAdds(3), nil }},
		{"Add_i", func() (imp.Perf, error) { return impChip.ImmediateOp(imp.OpAdd) }},
		{"Mul_i", func() (imp.Perf, error) { return impChip.ImmediateOp(imp.OpMul) }},
		{"Div_i", func() (imp.Perf, error) { return impChip.ImmediateOp(imp.OpDiv) }},
	}
	for _, c := range cases {
		src, opsPerPass, err := ArithmeticSource(c.name, 32)
		if err != nil {
			return nil, err
		}
		ex, err := CompileCached(c.name+"32", src, compile.HyperTarget())
		if err != nil {
			return nil, err
		}
		hy, err := hyperMetrics(ex, chip, opsPerPass)
		if err != nil {
			return nil, err
		}
		ip, err := c.impP()
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows,
			[]string{c.name, "IMP", f1(ip.LatencyNS), f1(ip.ThroughputGOPS), f1(ip.PowerEffGOPSW), f1(ip.AreaEffGOPSmm2), ""},
			[]string{"", "Hyper-AP", f1(hy.LatencyNS), f1(hy.ThroughputGOPS), f1(hy.PowerEffGOPSW), f1(hy.AreaEffGOPSmm2),
				fx(hy.ThroughputGOPS / ip.ThroughputGOPS)},
		)
	}
	return t, nil
}

// Hyper-AP inter-PE link parameters (§VI-D: 10 ns latency, 51.2 Gb/s).
const (
	linkLatencyNS = 10.0
	linkEnergyPJ  = 20.0
)

// KernelResult is one Fig. 18 measurement.
type KernelResult struct {
	Name               string
	GPUTimeNS          float64
	IMPTimeNS          float64
	HyperTimeNS        float64
	IMPSpeedup         float64 // vs GPU
	HyperSpeedup       float64 // vs GPU
	HyperVsIMP         float64
	GPUEnergyJ         float64
	IMPEnergyJ         float64
	HyperEnergyJ       float64
	EnergyReductionIMP float64 // IMP energy / Hyper energy
}

// EvaluateKernel produces one kernel's three-system comparison.
func EvaluateKernel(k *workload.Kernel) (KernelResult, error) {
	ex, err := CompileCached("kernel-"+k.Name, k.Source, compile.HyperTarget())
	if err != nil {
		return KernelResult{}, err
	}
	chip := tech.HyperAPChip()
	lat := ex.LatencyNS() + k.MovesPerElement*linkLatencyNS
	waves := math.Ceil(float64(k.Elements) / float64(chip.SIMDSlots))
	hyperTime := lat * waves

	perPE, err := ex.EnergyPerPE(tech.PERows)
	if err != nil {
		return KernelResult{}, err
	}
	perElemJ := perPE.TotalJ()/tech.PERows + k.MovesPerElement*linkEnergyPJ*1e-12
	hyperEnergy := perElemJ * float64(k.Elements)

	ik := k.IMP
	ik.Elements = k.Elements
	impTime, impEnergy := imp.Default().Evaluate(ik)

	gk := k.GPU
	gk.Elements = k.Elements
	gpuTime, gpuEnergy := gpu.Default().Evaluate(gk)

	return KernelResult{
		Name:               k.Name,
		GPUTimeNS:          gpuTime,
		IMPTimeNS:          impTime,
		HyperTimeNS:        hyperTime,
		IMPSpeedup:         gpuTime / impTime,
		HyperSpeedup:       gpuTime / hyperTime,
		HyperVsIMP:         impTime / hyperTime,
		GPUEnergyJ:         gpuEnergy,
		IMPEnergyJ:         impEnergy,
		HyperEnergyJ:       hyperEnergy,
		EnergyReductionIMP: impEnergy / hyperEnergy,
	}, nil
}

// Fig18 regenerates the application study: kernel speedups over the GPU
// and energy normalised to the GPU, for IMP and Hyper-AP.
func Fig18() (*Table, error) {
	t := &Table{
		ID:     "fig18",
		Title:  "Rodinia kernels: speedup over GPU and normalised energy (Fig. 18)",
		Header: []string{"kernel", "IMP speedup", "Hyper speedup", "Hyper/IMP", "IMP energy", "Hyper energy", "IMP/Hyper energy"},
	}
	geoSpeed, geoEnergy := 1.0, 1.0
	ks := workload.Kernels()
	for _, k := range ks {
		r, err := EvaluateKernel(k)
		if err != nil {
			return nil, err
		}
		geoSpeed *= r.HyperVsIMP
		geoEnergy *= r.EnergyReductionIMP
		t.Rows = append(t.Rows, []string{
			r.Name, fx(r.IMPSpeedup), fx(r.HyperSpeedup), fx(r.HyperVsIMP),
			f1(r.IMPEnergyJ / r.GPUEnergyJ), f1(r.HyperEnergyJ / r.GPUEnergyJ), fx(r.EnergyReductionIMP),
		})
	}
	n := float64(len(ks))
	t.Notes = append(t.Notes,
		fmt.Sprintf("geometric mean vs IMP: %.2fx speedup, %.1fx energy reduction (paper: 3.3x and 23.8x averages)",
			math.Pow(geoSpeed, 1/n), math.Pow(geoEnergy, 1/n)))
	return t, nil
}

// fig19System measures the 32-bit addition on one machine configuration.
func fig19System(name string, tgt compile.Target, chip tech.Chip) (Row, error) {
	src, _, _ := ArithmeticSource("Add", 32)
	ex, err := CompileCached("f19-"+name, src, tgt)
	if err != nil {
		return Row{}, err
	}
	r, err := hyperMetrics(ex, chip, 1)
	if err != nil {
		return Row{}, err
	}
	r.System = name
	return r, nil
}

// Fig19a regenerates the traditional-AP comparison: 32-bit addition on
// RRAM-based and CMOS-based traditional AP and Hyper-AP.
func Fig19a() (*Table, error) {
	t := &Table{
		ID:     "fig19a",
		Title:  "Hyper-AP vs traditional AP, 32-bit addition (Fig. 19a)",
		Header: []string{"system", "latency", "thruput", "pwr-eff", "area-eff", "improvement (lat)"},
	}
	rChip, cChip := tech.HyperAPChip(), tech.CMOSHyperAPChip()
	rAP, err := fig19System("R-AP", compile.TraditionalTarget(tech.RRAM()), rChip)
	if err != nil {
		return nil, err
	}
	rHy, err := fig19System("R-Hyper-AP", compile.HyperTarget(), rChip)
	if err != nil {
		return nil, err
	}
	cAP, err := fig19System("C-AP", compile.TraditionalTarget(tech.CMOS()), cChip)
	if err != nil {
		return nil, err
	}
	cHy, err := fig19System("C-Hyper-AP", compile.HyperCMOSTarget(), cChip)
	if err != nil {
		return nil, err
	}
	row := func(r Row, impr float64) []string {
		cell := ""
		if impr > 0 {
			cell = fx(impr)
		}
		return []string{r.System, f1(r.LatencyNS), f1(r.ThroughputGOPS), f1(r.PowerEffGOPSW), f1(r.AreaEffGOPSmm2), cell}
	}
	t.Rows = append(t.Rows,
		row(rAP, 0),
		row(rHy, rAP.LatencyNS/rHy.LatencyNS),
		row(cAP, 0),
		row(cHy, cAP.LatencyNS/cHy.LatencyNS),
	)
	t.Notes = append(t.Notes,
		"paper: RRAM improvement 36x, CMOS improvement 13x — RRAM benefits more because write reduction outweighs search reduction and Twrite/Tsearch = 10.")
	return t, nil
}

// Fig19b decomposes the RRAM and CMOS throughput improvements into the
// three mechanisms (additional search keys, accumulation unit, TCAM array
// design) by enabling them stepwise; the multiplicative factors are
// converted to log shares, matching the paper's percentage breakdown.
func Fig19b() (*Table, error) {
	t := &Table{
		ID:     "fig19b",
		Title:  "throughput-improvement breakdown (Fig. 19b)",
		Header: []string{"technology", "search keys", "accumulation", "array design", "total"},
	}
	for _, tc := range []struct {
		name string
		tech tech.Tech
	}{{"RRAM", tech.RRAM()}, {"CMOS", tech.CMOS()}} {
		base := compile.TraditionalTarget(tc.tech) // T0: traditional, monolithic

		t1 := compile.Target{Tech: tc.tech, Monolithic: true, Mode: 0, K: base.K, CutsPerNode: base.CutsPerNode, WordBits: base.WordBits, NoAccumulation: true}
		t2 := t1
		t2.NoAccumulation = false
		t3 := t2
		t3.Monolithic = false

		cyc := func(tgt compile.Target, key string) (float64, error) {
			src, _, _ := ArithmeticSource("Add", 32)
			ex, err := CompileCached("f19b-"+tc.name+key, src, tgt)
			if err != nil {
				return 0, err
			}
			return float64(ex.Stats.Cycles), nil
		}
		c0, err := cyc(base, "T0")
		if err != nil {
			return nil, err
		}
		c1, err := cyc(t1, "T1")
		if err != nil {
			return nil, err
		}
		c2, err := cyc(t2, "T2")
		if err != nil {
			return nil, err
		}
		c3, err := cyc(t3, "T3")
		if err != nil {
			return nil, err
		}
		fKeys, fAcc, fArr := c0/c1, c1/c2, c2/c3
		total := c0 / c3
		lt := math.Log(total)
		t.Rows = append(t.Rows, []string{
			tc.name,
			fmt.Sprintf("%.0f%% (%.1fx)", 100*math.Log(fKeys)/lt, fKeys),
			fmt.Sprintf("%.0f%% (%.2fx)", 100*math.Log(fAcc)/lt, fAcc),
			fmt.Sprintf("%.0f%% (%.1fx)", 100*math.Log(fArr)/lt, fArr),
			fx(total),
		})
	}
	t.Notes = append(t.Notes, "paper: search keys dominate (83%/88%), then array design (15%/11%), then accumulation (2%/1%).")
	return t, nil
}
