package bench

import (
	"fmt"

	"hyperap/internal/dfg"
	"hyperap/internal/tcam"
	"hyperap/internal/workload"
)

// AblCluster runs the Eq. 1 DFG clustering (Fig. 10) over the workload
// kernels: the cost function minimises inter-cluster edges, i.e. the
// slow data copies between SIMD slots (§V-B.2).
func AblCluster() (*Table, error) {
	t := &Table{
		ID:     "abl-cluster",
		Title:  "DFG clustering with the Eq. 1 cost (Fig. 10) over the kernel suite",
		Header: []string{"kernel", "DFG ops", "clusters@8", "copies@8", "clusters@32", "copies@32"},
	}
	for _, k := range workload.Kernels() {
		g, err := dfg.BuildSource(k.Source)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", k.Name, err)
		}
		c8 := dfg.Cluster(g, 8)
		c32 := dfg.Cluster(g, 32)
		if c32.CutEdges > c8.CutEdges {
			return nil, fmt.Errorf("%s: larger clusters increased copies (%d > %d)", k.Name, c32.CutEdges, c8.CutEdges)
		}
		t.Rows = append(t.Rows, []string{
			k.Name,
			fmt.Sprintf("%d", g.NumOps()),
			fmt.Sprintf("%d", c8.NumClusters), fmt.Sprintf("%d", c8.CutEdges),
			fmt.Sprintf("%d", c32.NumClusters), fmt.Sprintf("%d", c32.CutEdges),
		})
	}
	t.Notes = append(t.Notes,
		"bigger SIMD-slot budgets monotonically reduce inter-slot copies; a whole kernel in one slot needs none (how this repository executes them).")
	return t, nil
}

// AblMargin reports the match-line sensing margin versus the number of
// driven cells — the §V-B.4 robustness argument for capping lookup-table
// inputs.
func AblMargin() (*Table, error) {
	t := &Table{
		ID:     "abl-margin",
		Title:  "match-line sensing margin vs search width (2D2R electrical model)",
		Header: []string{"driven cells", "margin (uA)", "robust"},
	}
	p := tcam.DefaultParams()
	for _, n := range []int{1, 12, 24, 64, 256, 512, 2048, 8192} {
		m := p.SearchMargin(n)
		robust := "yes"
		if m <= 0 {
			robust = "NO"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.2f", m*1e6),
			robust,
		})
	}
	t.Notes = append(t.Notes,
		"a 12-input lookup table drives at most ~24 cells; the FAST selector's leak suppression keeps even full-word searches robust, while unbounded widths eventually collapse the margin.")
	return t, nil
}
