package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"time"

	"hyperap/internal/bits"
	"hyperap/internal/compile"
	"hyperap/internal/serve"
	"hyperap/internal/tcam"
	"hyperap/internal/tech"
)

// This file is the persisted perf trajectory: `make bench-json` emits a
// BENCH_<pr>.json snapshot of simulator throughput so every PR's speedup
// is measured with the same harness rather than asserted. Each kernel is
// run twice — on the word-parallel bit-plane core and on the retained
// per-cell electrical core (compile.WithScalarSearch) — and the ratio is
// the core speedup under an otherwise identical workload.

// PerfSchema identifies the BENCH_*.json layout.
const PerfSchema = "hyperap-perf/v1"

// PerfReport is the BENCH_<pr>.json document.
type PerfReport struct {
	Schema     string        `json:"schema"`
	PR         int           `json:"pr"`
	GoVersion  string        `json:"go"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Kernels    []KernelPerf  `json:"kernels"`
	Serve      ServePerf     `json:"serve"`
	Startup    StartupPerf   `json:"startup"`
	Cluster    ClusterPerf   `json:"cluster"`
	Trace      TracePerf     `json:"trace_overhead"`
	ChaosTail  ChaosTailPerf `json:"chaos_tail"`
}

// TracePerf quantifies what distributed tracing costs the simulator hot
// path: add8 ns/slot with sampling off (no trace options — the
// production default, which must stay within noise of the untraced
// trajectory) vs fully traced (compile.WithTrace plus a propagated
// trace id, the ?trace=1 path, which pays per-PE event collection).
type TracePerf struct {
	PEs              int     `json:"pes"`
	Slots            int     `json:"slots"`
	OffNsPerSlot     float64 `json:"off_ns_per_slot"`
	SampledNsPerSlot float64 `json:"sampled_ns_per_slot"`
	OverheadFrac     float64 `json:"overhead_frac"` // (sampled-off)/off
}

// KernelPerf is one measured kernel configuration. A slot is one SIMD
// word row processed end to end (load, execute, read back) except for
// the raw search kernel, where a slot is one match-line evaluation.
type KernelPerf struct {
	Name              string  `json:"name"`
	PEs               int     `json:"pes"`
	Slots             int     `json:"slots"`
	BitplaneNsPerSlot float64 `json:"bitplane_ns_per_slot"`
	ScalarNsPerSlot   float64 `json:"scalar_ns_per_slot"`
	Speedup           float64 `json:"speedup"`
	SlotsPerSec       float64 `json:"slots_per_sec"` // bit-plane core
}

// ServePerf is the end-to-end request-latency percentile snapshot of an
// in-process hyperap-serve instance under a small concurrent workload,
// read from the internal/obs request histogram.
type ServePerf struct {
	Requests int     `json:"requests"`
	P50Ms    float64 `json:"p50_ms"`
	P95Ms    float64 `json:"p95_ms"`
	P99Ms    float64 `json:"p99_ms"`
}

// StartupPerf compares serve's time-to-first-200 on a cold start (empty
// state dir: boot, compile the kernel, answer) against a warm restart
// on the same state dir (boot, restore the chip checkpoint, load the
// compiled program from the content-addressed store, answer). The warm
// path pays zero compiles; the ratio is what durable state buys a
// restarting node.
type StartupPerf struct {
	ColdMs  float64 `json:"cold_first_200_ms"`
	WarmMs  float64 `json:"warm_first_200_ms"`
	Speedup float64 `json:"speedup"`
}

// PerfJSON measures the perf snapshot for the given PR number.
func PerfJSON(pr int) (*PerfReport, error) {
	rep := &PerfReport{
		Schema:     PerfSchema,
		PR:         pr,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	ex, err := ScalingExecutable()
	if err != nil {
		return nil, err
	}
	for _, pes := range ScalingPEs {
		n := pes * tech.PERows
		inputs := ScalingInputs(n)
		bitplane, err := measureRunBatch(ex, inputs)
		if err != nil {
			return nil, err
		}
		scalar, err := measureRunBatch(ex, inputs, compile.WithScalarSearch())
		if err != nil {
			return nil, err
		}
		k := KernelPerf{
			Name:              "add8",
			PEs:               pes,
			Slots:             n,
			BitplaneNsPerSlot: float64(bitplane.Nanoseconds()) / float64(n),
			ScalarNsPerSlot:   float64(scalar.Nanoseconds()) / float64(n),
			SlotsPerSec:       float64(n) / bitplane.Seconds(),
		}
		k.Speedup = k.ScalarNsPerSlot / k.BitplaneNsPerSlot
		rep.Kernels = append(rep.Kernels, k)
	}

	rep.Kernels = append(rep.Kernels, searchKernel())

	sp, err := measureServe()
	if err != nil {
		return nil, err
	}
	rep.Serve = *sp

	st, err := measureStartup()
	if err != nil {
		return nil, err
	}
	rep.Startup = *st

	cp, err := measureCluster()
	if err != nil {
		return nil, err
	}
	rep.Cluster = *cp

	tp, err := measureTraceOverhead(ex)
	if err != nil {
		return nil, err
	}
	rep.Trace = *tp

	ct, err := measureChaosTail()
	if err != nil {
		return nil, err
	}
	rep.ChaosTail = *ct
	return rep, nil
}

// measureTraceOverhead runs the same add8 workload untraced and traced
// on the largest scaling configuration.
func measureTraceOverhead(ex *compile.Executable) (*TracePerf, error) {
	pes := ScalingPEs[len(ScalingPEs)-1]
	n := pes * tech.PERows
	inputs := ScalingInputs(n)
	off, err := measureRunBatch(ex, inputs)
	if err != nil {
		return nil, err
	}
	sampled, err := measureRunBatch(ex, inputs,
		compile.WithTrace(), compile.WithTraceID("benchbenchbenchbenchbenchbench00"))
	if err != nil {
		return nil, err
	}
	tp := &TracePerf{
		PEs:              pes,
		Slots:            n,
		OffNsPerSlot:     float64(off.Nanoseconds()) / float64(n),
		SampledNsPerSlot: float64(sampled.Nanoseconds()) / float64(n),
	}
	if off > 0 {
		tp.OverheadFrac = float64(sampled-off) / float64(off)
	}
	return tp, nil
}

// measureRunBatch times one full RunBatch workload, best of three runs.
func measureRunBatch(ex *compile.Executable, inputs [][]uint64, opts ...compile.RunOption) (time.Duration, error) {
	var best time.Duration
	for rep := 0; rep < 3; rep++ {
		t0 := time.Now()
		if _, _, err := ex.RunBatch(inputs, opts...); err != nil {
			return 0, err
		}
		if d := time.Since(t0); rep == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// searchKernel measures the raw search-dominated inner loop: repeated
// full-width ternary searches on one PE-sized separated TCAM array, a
// slot being one match-line evaluation. This is the path the bit-plane
// repack targets most directly.
func searchKernel() KernelPerf {
	const searches = 2000
	mk := func() tcam.Design {
		d := tcam.NewSeparated(tech.PERows, 64, tcam.DefaultParams())
		for r := 0; r < d.Rows(); r++ {
			for b := 0; b < 64; b++ {
				if err := d.Load(r, b, bits.StateForBit((r>>uint(b%8))&1 == 1)); err != nil {
					panic(err)
				}
			}
		}
		return d
	}
	keys := make([]bits.Key, 64)
	for i := range keys {
		keys[i] = bits.KDC
	}
	// Drive a 12-bit window (the ISA's widest lookup) through the array.
	for i := 0; i < 12; i++ {
		keys[i] = bits.K1
	}
	run := func(d tcam.Design) time.Duration {
		t0 := time.Now()
		for i := 0; i < searches; i++ {
			keys[i%12] = bits.KeyForBit(i%2 == 1) // perturb so nothing is cached away
			d.SearchVec(keys)
		}
		return time.Since(t0)
	}
	dPlane := mk()
	dScalar := mk()
	for _, x := range dScalar.Arrays() {
		x.ForceElectrical(true)
	}
	plane := run(dPlane)
	scalar := run(dScalar)
	slots := searches * tech.PERows
	k := KernelPerf{
		Name:              "search12of64",
		PEs:               1,
		Slots:             slots,
		BitplaneNsPerSlot: float64(plane.Nanoseconds()) / float64(slots),
		ScalarNsPerSlot:   float64(scalar.Nanoseconds()) / float64(slots),
		SlotsPerSec:       float64(slots) / plane.Seconds(),
	}
	k.Speedup = k.ScalarNsPerSlot / k.BitplaneNsPerSlot
	return k
}

// measureServe boots an in-process hyperap-serve, drives a concurrent
// small-batch workload through its HTTP handler, and reads the
// end-to-end latency percentiles from the request histogram.
func measureServe() (*ServePerf, error) {
	const (
		clients  = 8
		requests = 64
	)
	src, _, err := ArithmeticSource("Add", 8)
	if err != nil {
		return nil, err
	}
	s := serve.New(serve.Config{CoalesceWindow: time.Millisecond})
	ts := httptest.NewServer(s)
	defer ts.Close()

	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := c; r < requests; r += clients {
				inputs := make([][]uint64, 8)
				for i := range inputs {
					inputs[i] = []uint64{uint64(r+i) & 0xFF, uint64(2*r+i) & 0xFF}
				}
				if err := postRun(ts.URL+"/v1/run", serve.RunRequest{Source: src, Inputs: inputs}); err != nil {
					errs[c] = err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		return nil, err
	}
	return &ServePerf{
		Requests: requests,
		P50Ms:    s.RequestLatencyQuantile(0.50) / 1e6,
		P95Ms:    s.RequestLatencyQuantile(0.95) / 1e6,
		P99Ms:    s.RequestLatencyQuantile(0.99) / 1e6,
	}, nil
}

// measureStartup times serve's first successful answer from process
// start, cold (empty state dir, full compile) vs warm (same dir after a
// drain: checkpoint restore plus a program-store hit, zero compiles).
func measureStartup() (*StartupPerf, error) {
	dir, err := os.MkdirTemp("", "hyperap-bench-state-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	src, _, err := ArithmeticSource("Add", 8)
	if err != nil {
		return nil, err
	}
	inputs := [][]uint64{{3, 4}, {100, 27}}

	// first200 measures New → first 200 on /v1/run, then hands the live
	// server back so the caller can drain it.
	first200 := func() (time.Duration, *serve.Server, *httptest.Server, error) {
		t0 := time.Now()
		s := serve.New(serve.Config{StateDir: dir, SnapshotInterval: -1})
		ts := httptest.NewServer(s)
		if err := postRun(ts.URL+"/v1/run", serve.RunRequest{Source: src, Inputs: inputs}); err != nil {
			ts.Close()
			return 0, nil, nil, err
		}
		return time.Since(t0), s, ts, nil
	}
	drain := func(s *serve.Server, ts *httptest.Server) error {
		defer ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		return s.Drain(ctx)
	}

	cold, s1, ts1, err := first200()
	if err != nil {
		return nil, err
	}
	// The program write-through is asynchronous: wait for it to land
	// before the "SIGTERM", or the warm boot would have nothing to hit.
	deadline := time.Now().Add(10 * time.Second)
	for {
		n, err := serveMetric(ts1.URL, "store_program_writes")
		if err != nil {
			ts1.Close()
			return nil, err
		}
		if n >= 1 {
			break
		}
		if time.Now().After(deadline) {
			ts1.Close()
			return nil, fmt.Errorf("bench: program write-through never landed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := drain(s1, ts1); err != nil {
		return nil, err
	}

	warm, s2, ts2, err := first200()
	if err != nil {
		return nil, err
	}
	compiles, err := serveMetric(ts2.URL, "compiles")
	if err != nil {
		ts2.Close()
		return nil, err
	}
	if compiles != 0 {
		ts2.Close()
		return nil, fmt.Errorf("bench: warm start recompiled (%v compiles)", compiles)
	}
	if err := drain(s2, ts2); err != nil {
		return nil, err
	}
	return &StartupPerf{
		ColdMs:  float64(cold.Nanoseconds()) / 1e6,
		WarmMs:  float64(warm.Nanoseconds()) / 1e6,
		Speedup: float64(cold.Nanoseconds()) / float64(warm.Nanoseconds()),
	}, nil
}

// serveMetric reads one numeric counter from a serve /metrics endpoint.
func serveMetric(url, name string) (float64, error) {
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return 0, err
	}
	v, _ := m[name].(float64)
	return v, nil
}

func postRun(url string, req serve.RunRequest) error {
	buf, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("bench: serve run status %d", resp.StatusCode)
	}
	var rr serve.RunResponse
	return json.NewDecoder(resp.Body).Decode(&rr)
}
