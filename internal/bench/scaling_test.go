package bench

import "testing"

// TestMultiPEScaling regenerates the scale-pe table and checks the
// scaling invariants that do not depend on host timing: per-pass cycles
// flat in the PE count, operation counts aggregating linearly.
func TestMultiPEScaling(t *testing.T) {
	tbl, err := MultiPEScaling()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(ScalingPEs) {
		t.Fatalf("rows = %d, want %d", len(tbl.Rows), len(ScalingPEs))
	}
	if tbl.Rows[0][2] != tbl.Rows[len(tbl.Rows)-1][2] {
		t.Errorf("cycles/pass must not grow with PEs: %s vs %s", tbl.Rows[0][2], tbl.Rows[len(tbl.Rows)-1][2])
	}
	s1 := cellInt(t, tbl.Rows[0][3])
	s16 := cellInt(t, tbl.Rows[len(tbl.Rows)-1][3])
	if s16 != s1*ScalingPEs[len(ScalingPEs)-1] {
		t.Errorf("searches must aggregate linearly: 1 PE %d, 16 PEs %d", s1, s16)
	}
}
