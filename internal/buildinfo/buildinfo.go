// Package buildinfo identifies what binary is running: a version string
// settable at link time plus whatever the Go toolchain embedded (VCS
// revision, dirty flag, go version). Rolling cluster upgrades and bench
// artifacts record it so "what ran" is never a guess — the coordinator
// and every worker expose it on /version and print it for -version.
package buildinfo

import (
	"encoding/json"
	"runtime"
	"runtime/debug"
)

// Version is the human-facing build version. Override at link time:
//
//	go build -ldflags "-X hyperap/internal/buildinfo.Version=v1.2.3"
//
// The default marks an un-stamped developer build.
var Version = "dev"

// Info is the wire form of GET /version on hyperap-serve and
// hyperap-coord, and the "build" block of bench artifacts.
type Info struct {
	Version   string `json:"version"`
	GoVersion string `json:"goVersion"`
	Revision  string `json:"revision,omitempty"`
	Time      string `json:"buildTime,omitempty"`
	Dirty     bool   `json:"dirty,omitempty"`
}

// Get assembles the build info for this binary. VCS fields are empty
// when the binary was built outside a checkout (e.g. `go test`).
func Get() Info {
	info := Info{Version: Version, GoVersion: runtime.Version()}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				info.Revision = s.Value
			case "vcs.time":
				info.Time = s.Value
			case "vcs.modified":
				info.Dirty = s.Value == "true"
			}
		}
	}
	return info
}

// String renders the one-line `-version` output.
func (i Info) String() string {
	s := i.Version
	if i.Revision != "" {
		rev := i.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		s += " (" + rev
		if i.Dirty {
			s += "-dirty"
		}
		s += ")"
	}
	return s + " " + i.GoVersion
}

// JSON renders the info as a JSON document (the /version body).
func (i Info) JSON() []byte {
	buf, _ := json.Marshal(i)
	return append(buf, '\n')
}
