// Package isa defines the 12-instruction set architecture of Hyper-AP
// (paper Table I, §IV-A): three Compute instructions (Search, Write,
// SetKey) plus the reduction, data-manipulation and control instructions.
// It provides the binary encoding (with the exact instruction lengths of
// Table I), a decoder, cycle-cost accounting and a disassembler.
package isa

import (
	"fmt"
	"strings"

	"hyperap/internal/bits"
)

// Op is an instruction opcode.
type Op uint8

// The 12 opcodes of Table I.
const (
	OpSearch Op = iota
	OpWrite
	OpSetKey
	OpCount
	OpIndex
	OpMovR
	OpReadR
	OpWriteR
	OpSetTag
	OpReadTag
	OpBroadcast
	OpWait
	numOps
)

var opNames = [...]string{
	"Search", "Write", "SetKey", "Count", "Index", "MovR",
	"ReadR", "WriteR", "SetTag", "ReadTag", "Broadcast", "Wait",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Dir is the MovR direction (§IV-A.6).
type Dir uint8

// MovR directions: 00/01/10/11 = top/left/right/bottom.
const (
	DirUp Dir = iota
	DirLeft
	DirRight
	DirDown
)

func (d Dir) String() string {
	switch d {
	case DirUp:
		return "up"
	case DirLeft:
		return "left"
	case DirRight:
		return "right"
	case DirDown:
		return "down"
	}
	return fmt.Sprintf("Dir(%d)", uint8(d))
}

// KeyWidth is the number of key/mask positions one SetKey configures: the
// 512-bit immediate holds two bits per position.
const KeyWidth = 256

// Instruction is one decoded instruction. Only the fields relevant to the
// opcode are meaningful.
type Instruction struct {
	Op Op

	Acc    bool // Search: enable the accumulation unit
	Encode bool // Search: latch result into the two-bit encoder;
	// Write: write the encoder's 2-bit value into cols Col, Col+1

	Col uint8 // Write: column address

	Keys []bits.Key // SetKey: the 256 key/mask positions (KeyWidth entries)

	Direction Dir    // MovR
	Addr      uint32 // ReadR/WriteR: 17-bit PE address
	Imm       []byte // WriteR: 512-bit immediate (64 bytes)

	GroupMask  uint8 // Broadcast
	WaitCycles uint8 // Wait
}

// Length returns the encoded instruction length in bytes (Table I).
func (in Instruction) Length() int {
	switch in.Op {
	case OpSearch, OpCount, OpIndex, OpMovR, OpSetTag, OpReadTag:
		return 1
	case OpWrite, OpBroadcast, OpWait:
		return 2
	case OpReadR:
		return 3
	case OpSetKey:
		return 65
	case OpWriteR:
		return 67
	}
	panic(fmt.Sprintf("isa: unknown opcode %v", in.Op))
}

// CycleParams supplies the technology-dependent constants used by Cycles.
type CycleParams struct {
	// TCAMBitWriteCycles is the time to program one TCAM bit: 10 for the
	// RRAM separated design (the two cells are written in parallel), 20
	// for the monolithic design, 1 for CMOS.
	TCAMBitWriteCycles int
	// DataMoveCycles is the global-data-path cost of ReadR/WriteR
	// ("Variable" in Table I).
	DataMoveCycles int
}

// DefaultCycleParams matches the RRAM separated design of Table I
// (Write = 12/23 cycles).
func DefaultCycleParams() CycleParams {
	return CycleParams{TCAMBitWriteCycles: 10, DataMoveCycles: 20}
}

// Cycles returns the instruction's execution time in cycles per Table I:
// Search 1; Write 1 (address decode) + 1 per key-register set + the
// TCAM-bit writes (12 or 23 cycles with the RRAM constants); SetKey 1;
// Count/Index 4; MovR 5; SetTag/ReadTag/Broadcast 1; Wait <cycle>;
// ReadR/WriteR variable (DataMoveCycles).
func (in Instruction) Cycles(p CycleParams) int {
	switch in.Op {
	case OpSearch, OpSetKey, OpSetTag, OpReadTag, OpBroadcast:
		return 1
	case OpCount, OpIndex:
		return 4
	case OpMovR:
		return 5
	case OpWrite:
		if in.Encode {
			return 1 + 2 + 2*p.TCAMBitWriteCycles // 23 with RRAM constants
		}
		return 1 + 1 + p.TCAMBitWriteCycles // 12 with RRAM constants
	case OpReadR, OpWriteR:
		return p.DataMoveCycles
	case OpWait:
		return int(in.WaitCycles)
	}
	panic(fmt.Sprintf("isa: unknown opcode %v", in.Op))
}

// String disassembles the instruction.
func (in Instruction) String() string {
	switch in.Op {
	case OpSearch:
		return fmt.Sprintf("Search acc=%t encode=%t", in.Acc, in.Encode)
	case OpWrite:
		return fmt.Sprintf("Write col=%d encode=%t", in.Col, in.Encode)
	case OpSetKey:
		// Show only the non-masked positions to keep listings readable.
		var b strings.Builder
		fmt.Fprintf(&b, "SetKey")
		for i, k := range in.Keys {
			if k != bits.KDC {
				fmt.Fprintf(&b, " [%d]=%v", i, k)
			}
		}
		return b.String()
	case OpMovR:
		return fmt.Sprintf("MovR %v", in.Direction)
	case OpReadR:
		return fmt.Sprintf("ReadR addr=%d", in.Addr)
	case OpWriteR:
		return fmt.Sprintf("WriteR addr=%d imm=%x...", in.Addr, in.Imm[:4])
	case OpBroadcast:
		return fmt.Sprintf("Broadcast mask=%08b", in.GroupMask)
	case OpWait:
		return fmt.Sprintf("Wait %d", in.WaitCycles)
	default:
		return in.Op.String()
	}
}

// Convenience constructors keep the compiler's code generator terse.

// Search builds a Search instruction.
func Search(acc, encode bool) Instruction {
	return Instruction{Op: OpSearch, Acc: acc, Encode: encode}
}

// Write builds a Write instruction.
func Write(col uint8, encode bool) Instruction {
	return Instruction{Op: OpWrite, Col: col, Encode: encode}
}

// SetKey builds a SetKey instruction from up to KeyWidth key positions;
// missing positions are masked off.
func SetKey(keys []bits.Key) Instruction {
	if len(keys) > KeyWidth {
		panic(fmt.Sprintf("isa: %d keys exceed the %d-position key register", len(keys), KeyWidth))
	}
	full := make([]bits.Key, KeyWidth)
	for i := range full {
		full[i] = bits.KDC
	}
	copy(full, keys)
	return Instruction{Op: OpSetKey, Keys: full}
}

// MovR builds a MovR instruction.
func MovR(d Dir) Instruction { return Instruction{Op: OpMovR, Direction: d} }

// Wait builds a Wait instruction.
func Wait(cycles uint8) Instruction { return Instruction{Op: OpWait, WaitCycles: cycles} }

// Broadcast builds a Broadcast instruction.
func Broadcast(mask uint8) Instruction { return Instruction{Op: OpBroadcast, GroupMask: mask} }

// Program is an instruction sequence.
type Program []Instruction

// TotalCycles sums the execution time of every instruction.
func (p Program) TotalCycles(cp CycleParams) int64 {
	var c int64
	for _, in := range p {
		c += int64(in.Cycles(cp))
	}
	return c
}

// TotalBytes sums the encoded lengths.
func (p Program) TotalBytes() int {
	n := 0
	for _, in := range p {
		n += in.Length()
	}
	return n
}

// CountOp returns how many instructions have the given opcode.
func (p Program) CountOp(op Op) int {
	n := 0
	for _, in := range p {
		if in.Op == op {
			n++
		}
	}
	return n
}

// String disassembles the whole program.
func (p Program) String() string {
	var b strings.Builder
	for i, in := range p {
		fmt.Fprintf(&b, "%4d: %s\n", i, in)
	}
	return b.String()
}
