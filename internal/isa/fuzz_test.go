package isa

import (
	"reflect"
	"testing"

	"hyperap/internal/bits"
)

// FuzzDecode drives the binary decoder with arbitrary bytes. Two
// properties: Decode/DecodeProgram must never panic regardless of
// input, and any buffer that decodes successfully must survive a
// decode → encode → decode round trip unchanged (the re-encoding is
// canonical — ignored low-nibble bits are dropped — so the comparison
// is on the decoded programs, not the raw bytes).
func FuzzDecode(f *testing.F) {
	keys := make([]bits.Key, KeyWidth)
	for i := range keys {
		keys[i] = bits.Key(i % 4)
	}
	seeds := []Program{
		{Search(false, false)},
		{Search(true, true)},
		{Write(7, true)},
		{SetKey(keys)},
		{{Op: OpCount}, {Op: OpIndex}, {Op: OpSetTag}, {Op: OpReadTag}},
		{MovR(DirUp)},
		{{Op: OpReadR, Addr: 0x1ffff}},
		{Broadcast(0xa5), Wait(17)},
	}
	for _, p := range seeds {
		f.Add(EncodeProgram(p))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x01})

	f.Fuzz(func(t *testing.T, buf []byte) {
		// One-shot decode: on success the consumed length must be sane.
		if in, n, err := Decode(buf); err == nil {
			if n <= 0 || n > len(buf) {
				t.Fatalf("Decode consumed %d of %d bytes", n, len(buf))
			}
			if got := in.Length(); got != n {
				t.Fatalf("Decode consumed %d bytes but %v.Length() = %d", n, in.Op, got)
			}
		}
		p, err := DecodeProgram(buf)
		if err != nil {
			return
		}
		enc := EncodeProgram(p)
		p2, err := DecodeProgram(enc)
		if err != nil {
			t.Fatalf("re-decoding own encoding failed: %v", err)
		}
		if !reflect.DeepEqual(p, p2) {
			t.Fatalf("round trip changed the program:\n  first  %v\n  second %v", p, p2)
		}
	})
}
