package isa

import (
	"math/rand"
	"testing"

	"hyperap/internal/bits"
)

// TestTableILengths checks the instruction lengths of Table I byte for
// byte.
func TestTableILengths(t *testing.T) {
	cases := []struct {
		in   Instruction
		want int
	}{
		{Search(false, false), 1},
		{Write(3, false), 2},
		{SetKey(nil), 65},
		{Instruction{Op: OpCount}, 1},
		{Instruction{Op: OpIndex}, 1},
		{MovR(DirLeft), 1},
		{Instruction{Op: OpReadR, Addr: 5}, 3},
		{Instruction{Op: OpWriteR, Addr: 5, Imm: make([]byte, 64)}, 67},
		{Instruction{Op: OpSetTag}, 1},
		{Instruction{Op: OpReadTag}, 1},
		{Broadcast(0xAA), 2},
		{Wait(7), 2},
	}
	for _, c := range cases {
		if got := c.in.Length(); got != c.want {
			t.Errorf("%v length = %d, want %d", c.in.Op, got, c.want)
		}
		if enc := c.in.EncodeTo(nil); len(enc) != c.want {
			t.Errorf("%v encodes to %d bytes, want %d", c.in.Op, len(enc), c.want)
		}
	}
}

// TestTableICycles checks the cycle costs of Table I with the RRAM
// constants (write one TCAM bit = 10 cycles).
func TestTableICycles(t *testing.T) {
	p := DefaultCycleParams()
	cases := []struct {
		in   Instruction
		want int
	}{
		{Search(true, false), 1},
		{Write(0, false), 12}, // 1 decode + 1 key + 10 write
		{Write(0, true), 23},  // 1 decode + 2 key + 20 write
		{SetKey(nil), 1},
		{Instruction{Op: OpCount}, 4},
		{Instruction{Op: OpIndex}, 4},
		{MovR(DirUp), 5},
		{Instruction{Op: OpSetTag}, 1},
		{Instruction{Op: OpReadTag}, 1},
		{Broadcast(1), 1},
		{Wait(99), 99},
	}
	for _, c := range cases {
		if got := c.in.Cycles(p); got != c.want {
			t.Errorf("%v cycles = %d, want %d", c.in, got, c.want)
		}
	}
}

// TestCMOSWriteCycles: with a CMOS TCAM (1-cycle bit write) the Write
// instruction costs 3/5 cycles, giving the Twrite/Tsearch ≈ 1 ratio the
// paper attributes to CMOS AP (§VI-E).
func TestCMOSWriteCycles(t *testing.T) {
	p := CycleParams{TCAMBitWriteCycles: 1, DataMoveCycles: 20}
	if got := Write(0, false).Cycles(p); got != 3 {
		t.Errorf("CMOS single write = %d cycles, want 3", got)
	}
	if got := Write(0, true).Cycles(p); got != 5 {
		t.Errorf("CMOS encoded write = %d cycles, want 5", got)
	}
}

func randomKeys(rng *rand.Rand) []bits.Key {
	ks := make([]bits.Key, KeyWidth)
	for i := range ks {
		ks[i] = bits.Key(rng.Intn(4))
	}
	return ks
}

func randomInstruction(rng *rand.Rand) Instruction {
	switch Op(rng.Intn(int(numOps))) {
	case OpSearch:
		return Search(rng.Intn(2) == 0, rng.Intn(2) == 0)
	case OpWrite:
		return Write(uint8(rng.Intn(256)), rng.Intn(2) == 0)
	case OpSetKey:
		return Instruction{Op: OpSetKey, Keys: randomKeys(rng)}
	case OpCount:
		return Instruction{Op: OpCount}
	case OpIndex:
		return Instruction{Op: OpIndex}
	case OpMovR:
		return MovR(Dir(rng.Intn(4)))
	case OpReadR:
		return Instruction{Op: OpReadR, Addr: uint32(rng.Intn(1 << 17))}
	case OpWriteR:
		imm := make([]byte, 64)
		rng.Read(imm)
		return Instruction{Op: OpWriteR, Addr: uint32(rng.Intn(1 << 17)), Imm: imm}
	case OpSetTag:
		return Instruction{Op: OpSetTag}
	case OpReadTag:
		return Instruction{Op: OpReadTag}
	case OpBroadcast:
		return Broadcast(uint8(rng.Intn(256)))
	default:
		return Wait(uint8(rng.Intn(256)))
	}
}

func instructionsEqual(a, b Instruction) bool {
	if a.Op != b.Op || a.Acc != b.Acc || a.Encode != b.Encode || a.Col != b.Col ||
		a.Direction != b.Direction || a.Addr != b.Addr ||
		a.GroupMask != b.GroupMask || a.WaitCycles != b.WaitCycles {
		return false
	}
	if len(a.Keys) != len(b.Keys) {
		return false
	}
	for i := range a.Keys {
		if a.Keys[i] != b.Keys[i] {
			return false
		}
	}
	if len(a.Imm) != len(b.Imm) {
		return false
	}
	for i := range a.Imm {
		if a.Imm[i] != b.Imm[i] {
			return false
		}
	}
	return true
}

// TestEncodeDecodeRoundTrip is a property test over random programs.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		var prog Program
		for i := 0; i < 20; i++ {
			prog = append(prog, randomInstruction(rng))
		}
		buf := EncodeProgram(prog)
		if len(buf) != prog.TotalBytes() {
			t.Fatalf("trial %d: encoded %d bytes, TotalBytes says %d", trial, len(buf), prog.TotalBytes())
		}
		back, err := DecodeProgram(buf)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(back) != len(prog) {
			t.Fatalf("trial %d: decoded %d instructions, want %d", trial, len(back), len(prog))
		}
		for i := range prog {
			if !instructionsEqual(prog[i], back[i]) {
				t.Fatalf("trial %d instr %d: %v != %v", trial, i, prog[i], back[i])
			}
		}
	}
}

func TestPackUnpackKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		keys := randomKeys(rng)
		back := UnpackKeys(PackKeys(keys))
		for i := range keys {
			if keys[i] != back[i] {
				t.Fatalf("position %d: %v != %v", i, keys[i], back[i])
			}
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(nil); err == nil {
		t.Error("empty buffer should error")
	}
	if _, _, err := Decode([]byte{0xF0}); err == nil {
		t.Error("invalid opcode should error")
	}
	// Truncated SetKey.
	if _, _, err := Decode([]byte{byte(OpSetKey) << 4, 0, 0}); err == nil {
		t.Error("truncated instruction should error")
	}
}

func TestSetKeyOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SetKey(make([]bits.Key, KeyWidth+1))
}

func TestProgramHelpers(t *testing.T) {
	p := Program{Search(false, false), Search(true, false), Write(0, false), SetKey(nil)}
	if p.CountOp(OpSearch) != 2 || p.CountOp(OpWrite) != 1 {
		t.Error("CountOp wrong")
	}
	if p.TotalCycles(DefaultCycleParams()) != 1+1+12+1 {
		t.Errorf("TotalCycles = %d", p.TotalCycles(DefaultCycleParams()))
	}
	if s := p.String(); s == "" {
		t.Error("String empty")
	}
}

func TestInstructionStrings(t *testing.T) {
	ks := make([]bits.Key, KeyWidth)
	for i := range ks {
		ks[i] = bits.KDC
	}
	ks[3] = bits.K1
	ins := []Instruction{
		Search(true, true),
		Write(7, true),
		{Op: OpSetKey, Keys: ks},
		MovR(DirDown),
		{Op: OpReadR, Addr: 99},
		{Op: OpWriteR, Addr: 1, Imm: make([]byte, 64)},
		Broadcast(3),
		Wait(10),
		{Op: OpCount},
	}
	for _, in := range ins {
		if in.String() == "" {
			t.Errorf("%v: empty String", in.Op)
		}
	}
}
