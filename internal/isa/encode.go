package isa

import (
	"fmt"

	"hyperap/internal/bits"
)

// Binary layout: the opcode occupies the high nibble of the first byte;
// the low nibble holds small operand fields. Multi-byte operands follow in
// big-endian order. SetKey/WriteR carry a 512-bit immediate in 64 bytes;
// for SetKey, key/mask position p occupies bits (2p, 2p+1) of the
// immediate (§IV-A.3: two immediate bits configure one key/mask position:
// 01 → key 1, 10 → key 0, 11 → the Z input, 00 → masked off).

func keyToImmBits(k bits.Key) uint8 {
	switch k {
	case bits.K1:
		return 0b01
	case bits.K0:
		return 0b10
	case bits.KZ:
		return 0b11
	default:
		return 0b00
	}
}

func immBitsToKey(v uint8) bits.Key {
	switch v & 3 {
	case 0b01:
		return bits.K1
	case 0b10:
		return bits.K0
	case 0b11:
		return bits.KZ
	default:
		return bits.KDC
	}
}

// PackKeys packs KeyWidth key positions into the 64-byte SetKey immediate.
func PackKeys(keys []bits.Key) []byte {
	imm := make([]byte, KeyWidth/4)
	for p, k := range keys {
		imm[p/4] |= keyToImmBits(k) << uint((p%4)*2)
	}
	return imm
}

// UnpackKeys expands a 64-byte immediate back into KeyWidth key positions.
func UnpackKeys(imm []byte) []bits.Key {
	keys := make([]bits.Key, KeyWidth)
	for p := range keys {
		keys[p] = immBitsToKey(imm[p/4] >> uint((p%4)*2))
	}
	return keys
}

// EncodeTo appends the binary form of the instruction to dst and returns the
// extended slice.
func (in Instruction) EncodeTo(dst []byte) []byte {
	op := uint8(in.Op) << 4
	switch in.Op {
	case OpSearch:
		var f uint8
		if in.Acc {
			f |= 2
		}
		if in.Encode {
			f |= 1
		}
		return append(dst, op|f)
	case OpWrite:
		var f uint8
		if in.Encode {
			f = 1
		}
		return append(dst, op|f, in.Col)
	case OpSetKey:
		if len(in.Keys) != KeyWidth {
			panic(fmt.Sprintf("isa: SetKey carries %d positions, want %d", len(in.Keys), KeyWidth))
		}
		dst = append(dst, op)
		return append(dst, PackKeys(in.Keys)...)
	case OpCount, OpIndex, OpSetTag, OpReadTag:
		return append(dst, op)
	case OpMovR:
		return append(dst, op|uint8(in.Direction)&3)
	case OpReadR:
		return append(dst, op|uint8(in.Addr>>16)&1, byte(in.Addr>>8), byte(in.Addr))
	case OpWriteR:
		if len(in.Imm) != 64 {
			panic("isa: WriteR immediate must be 64 bytes")
		}
		dst = append(dst, op|uint8(in.Addr>>16)&1, byte(in.Addr>>8), byte(in.Addr))
		return append(dst, in.Imm...)
	case OpBroadcast:
		return append(dst, op, in.GroupMask)
	case OpWait:
		return append(dst, op, in.WaitCycles)
	}
	panic(fmt.Sprintf("isa: cannot encode opcode %v", in.Op))
}

// Decode reads one instruction from the front of buf and returns it with
// the number of bytes consumed.
func Decode(buf []byte) (Instruction, int, error) {
	if len(buf) == 0 {
		return Instruction{}, 0, fmt.Errorf("isa: empty buffer")
	}
	op := Op(buf[0] >> 4)
	low := buf[0] & 0xF
	need := Instruction{Op: op}.lengthChecked()
	if need < 0 {
		return Instruction{}, 0, fmt.Errorf("isa: invalid opcode %d", op)
	}
	if len(buf) < need {
		return Instruction{}, 0, fmt.Errorf("isa: truncated %v: have %d bytes, need %d", op, len(buf), need)
	}
	in := Instruction{Op: op}
	switch op {
	case OpSearch:
		in.Acc = low&2 != 0
		in.Encode = low&1 != 0
	case OpWrite:
		in.Encode = low&1 != 0
		in.Col = buf[1]
	case OpSetKey:
		in.Keys = UnpackKeys(buf[1:65])
	case OpCount, OpIndex, OpSetTag, OpReadTag:
	case OpMovR:
		in.Direction = Dir(low & 3)
	case OpReadR:
		in.Addr = uint32(low&1)<<16 | uint32(buf[1])<<8 | uint32(buf[2])
	case OpWriteR:
		in.Addr = uint32(low&1)<<16 | uint32(buf[1])<<8 | uint32(buf[2])
		in.Imm = append([]byte(nil), buf[3:67]...)
	case OpBroadcast:
		in.GroupMask = buf[1]
	case OpWait:
		in.WaitCycles = buf[1]
	}
	return in, need, nil
}

func (in Instruction) lengthChecked() int {
	if in.Op >= numOps {
		return -1
	}
	return in.Length()
}

// EncodeProgram serialises a whole program.
func EncodeProgram(p Program) []byte {
	var out []byte
	for _, in := range p {
		out = in.EncodeTo(out)
	}
	return out
}

// DecodeProgram deserialises a whole program.
func DecodeProgram(buf []byte) (Program, error) {
	var p Program
	for len(buf) > 0 {
		in, n, err := Decode(buf)
		if err != nil {
			return nil, err
		}
		p = append(p, in)
		buf = buf[n:]
	}
	return p, nil
}
