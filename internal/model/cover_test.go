package model

import (
	"testing"

	"hyperap/internal/bits"
	"hyperap/internal/tcam"
)

func TestAccessorsAndReductions(t *testing.T) {
	m := NewTraditionalAP(4, 3)
	if m.Rows() != 4 || m.Width() != 3 {
		t.Error("traditional accessors wrong")
	}
	m.SetBit(2, 1, true)
	m.Search([]bits.Key{bits.KDC, bits.K1, bits.KDC})
	if m.Count() != 1 || m.Index() != 2 {
		t.Errorf("count/index = %d/%d", m.Count(), m.Index())
	}
	if m.Tags().OnesCount() != 1 {
		t.Error("Tags accessor wrong")
	}
	if m.Ops.Total() != m.Ops.Searches+m.Ops.Writes {
		t.Error("Total wrong")
	}

	h := NewHyperAP(tcam.NewSeparated(4, 3, tcam.DefaultParams()))
	if h.Width() != 3 || h.Rows() != 4 {
		t.Error("hyper accessors wrong")
	}
	h.Load(0, 0, bits.SX)
	if h.TCAM().State(0, 0) != bits.SX {
		t.Error("Load/TCAM accessor wrong")
	}
	// ReadPair on a half-written pair errors.
	h.Load(1, 0, bits.S0)
	h.Load(1, 1, bits.S0)
	if _, _, err := h.ReadPair(1, 0); err == nil {
		t.Error("invalid encoded pair must error")
	}
}

func TestTraditionalBoundsPanics(t *testing.T) {
	m := NewTraditionalAP(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Bit(2, 0)
}

func TestTraditionalKeyLengthPanics(t *testing.T) {
	m := NewTraditionalAP(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Search([]bits.Key{bits.K0})
}

func TestTraditionalWriteZPanics(t *testing.T) {
	m := NewTraditionalAP(2, 2)
	m.Search([]bits.Key{bits.KDC, bits.KDC})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Write([]bits.Key{bits.KZ, bits.KDC})
}

func TestHyperEncoderOverflowPanics(t *testing.T) {
	h := NewHyperAP(tcam.NewSeparated(2, 2, tcam.DefaultParams()))
	h.LatchForEncode()
	h.LatchForEncode()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on third latch")
		}
	}()
	h.LatchForEncode()
}
