// Package model implements the two abstract machine models of the paper:
// the traditional associative processor (Fig. 1) with its
// Single-Search-Single-Pattern / Single-Search-Single-Write execution
// model (Fig. 2), and the Hyper-AP machine (Fig. 4) with the enhanced
// Single-Search-Multi-Pattern / Multi-Search-Single-Write model (Fig. 5).
//
// These machines are the semantic reference for everything above them: the
// micro-architecture (internal/arch) executes ISA streams against the
// Hyper-AP machine, and the evaluation compares both machines running the
// same lookup tables.
package model

import (
	"fmt"

	"hyperap/internal/bits"
)

// OpCounts tallies the primitive memory operations a machine has
// performed. Execution time is proportional to these counts (§I).
type OpCounts struct {
	Searches   int64 // search operations
	Writes     int64 // associative write operations
	PulseSlots int64 // sequential RRAM programming slots consumed by writes
}

// Total returns searches + writes, the paper's "operations" metric
// (e.g. "14 operations" in Fig. 2c).
func (o OpCounts) Total() int64 { return o.Searches + o.Writes }

// TraditionalAP is the abstract machine of Fig. 1: a binary CAM array,
// key/mask registers, tag registers and a reduction tree. Its search
// matches a single pattern and every write follows one search.
type TraditionalAP struct {
	rows, width int
	cam         []bool // row-major
	tags        *bits.Vec

	// Ops accumulates the operation counts.
	Ops OpCounts
	// WritePulseSlotsPerBit models the underlying technology: a
	// CMOS/monolithic-RRAM CAM writes a bit in 2 sequential cell pulses
	// (the traditional monolithic array design, §IV-B).
	WritePulseSlotsPerBit int
}

// NewTraditionalAP returns a rows × width traditional AP with the
// monolithic array design's write behaviour.
func NewTraditionalAP(rows, width int) *TraditionalAP {
	return &TraditionalAP{
		rows:                  rows,
		width:                 width,
		cam:                   make([]bool, rows*width),
		tags:                  bits.NewVec(rows),
		WritePulseSlotsPerBit: 2,
	}
}

// Rows returns the number of word rows (SIMD slots).
func (m *TraditionalAP) Rows() int { return m.rows }

// Width returns the number of bit columns.
func (m *TraditionalAP) Width() int { return m.width }

func (m *TraditionalAP) idx(row, col int) int {
	if row < 0 || row >= m.rows || col < 0 || col >= m.width {
		panic(fmt.Sprintf("model: bit (%d,%d) out of %dx%d CAM", row, col, m.rows, m.width))
	}
	return row*m.width + col
}

// Bit reads one stored bit.
func (m *TraditionalAP) Bit(row, col int) bool { return m.cam[m.idx(row, col)] }

// SetBit stores one bit directly (data loading, not an associative write).
func (m *TraditionalAP) SetBit(row, col int, b bool) { m.cam[m.idx(row, col)] = b }

// Tags exposes the tag registers.
func (m *TraditionalAP) Tags() *bits.Vec { return m.tags }

// Search compares the key/mask (one entry per column; only K0, K1 and KDC
// are meaningful on a binary CAM) with all stored words in parallel and
// replaces the tags with the match results (Fig. 1b).
func (m *TraditionalAP) Search(keys []bits.Key) {
	if len(keys) != m.width {
		panic(fmt.Sprintf("model: %d keys for %d columns", len(keys), m.width))
	}
	m.Ops.Searches++
	for row := 0; row < m.rows; row++ {
		match := true
		base := row * m.width
		for col, k := range keys {
			switch k {
			case bits.KDC:
			case bits.K0:
				if m.cam[base+col] {
					match = false
				}
			case bits.K1:
				if !m.cam[base+col] {
					match = false
				}
			default:
				panic("model: traditional AP key must be 0, 1 or masked")
			}
			if !match {
				break
			}
		}
		m.tags.Set(row, match)
	}
}

// Write stores the key value into every non-masked column of all tagged
// words in parallel (Fig. 1c).
func (m *TraditionalAP) Write(keys []bits.Key) {
	if len(keys) != m.width {
		panic(fmt.Sprintf("model: %d keys for %d columns", len(keys), m.width))
	}
	m.Ops.Writes++
	nbits := 0
	for col, k := range keys {
		if k == bits.KDC {
			continue
		}
		if k == bits.KZ {
			panic("model: traditional AP cannot write X")
		}
		nbits++
		v := k == bits.K1
		for row := 0; row < m.rows; row++ {
			if m.tags.Get(row) {
				m.cam[m.idx(row, col)] = v
			}
		}
	}
	// Bit columns share the write circuit pair; one write op programs the
	// selected columns sequentially in the monolithic design.
	m.Ops.PulseSlots += int64(nbits * m.WritePulseSlotsPerBit)
}

// Count returns the number of tagged words (population count reduction).
func (m *TraditionalAP) Count() int { return m.tags.OnesCount() }

// Index returns the index of the first tagged word, or -1 (priority
// encoder reduction).
func (m *TraditionalAP) Index() int { return m.tags.FirstSet() }

// LUTEntry is one row of a traditional-AP lookup table: an input pattern
// over specific columns and the result bits to deposit on a match
// (Fig. 2b).
type LUTEntry struct {
	Inputs  []ColBit
	Outputs []ColBit
}

// ColBit names one bit column and a value.
type ColBit struct {
	Col int
	Bit bool
}

// RunLUT executes a lookup table the traditional way (Fig. 2c): for every
// entry, one search of the single input pattern immediately followed by
// one write of the result bits into all tagged words.
func (m *TraditionalAP) RunLUT(entries []LUTEntry) {
	for _, e := range entries {
		keys := make([]bits.Key, m.width)
		for i := range keys {
			keys[i] = bits.KDC
		}
		for _, in := range e.Inputs {
			keys[in.Col] = bits.KeyForBit(in.Bit)
		}
		m.Search(keys)
		wkeys := make([]bits.Key, m.width)
		for i := range wkeys {
			wkeys[i] = bits.KDC
		}
		for _, out := range e.Outputs {
			wkeys[out.Col] = bits.KeyForBit(out.Bit)
		}
		m.Write(wkeys)
	}
}
