package model

import (
	"fmt"

	"hyperap/internal/bits"
	"hyperap/internal/encoding"
	"hyperap/internal/tcam"
)

// HyperAP is the abstract machine of Fig. 4: a TCAM array, a ternary key
// register (with the Z input), a mask register, tag registers each with an
// accumulation unit (logic OR), a per-row two-bit encoder for result
// write-back, and a reduction tree.
type HyperAP struct {
	t    tcam.Design
	tags *bits.Vec

	// enc is the per-row encoder DFF chain (Fig. 7): up to two latched
	// tag snapshots awaiting an encoded write. enc[0] is the first
	// (low-bit) snapshot.
	enc []*bits.Vec

	// Ops accumulates operation counts.
	Ops OpCounts
}

// NewHyperAP builds the machine on the given TCAM array design. Use
// tcam.NewSeparated for Hyper-AP's write-optimised design or
// tcam.NewMonolithic for the traditional array (the Fig. 19b ablation).
func NewHyperAP(t tcam.Design) *HyperAP {
	return &HyperAP{t: t, tags: bits.NewVec(t.Rows())}
}

// Rows returns the number of word rows (SIMD slots).
func (m *HyperAP) Rows() int { return m.t.Rows() }

// Width returns the number of TCAM bit columns.
func (m *HyperAP) Width() int { return m.t.Bits() }

// TCAM exposes the underlying array design (for stats and direct loads).
func (m *HyperAP) TCAM() tcam.Design { return m.t }

// Tags exposes the tag registers.
func (m *HyperAP) Tags() *bits.Vec { return m.tags }

// SetTags replaces the tag registers (the SetTag instruction's data path).
func (m *HyperAP) SetTags(v *bits.Vec) { m.tags.CopyFrom(v) }

// Load stores a TCAM state directly (host data loading). With the fault
// model active the write is verified and repaired; an unrepairable cell
// surfaces as a tcam.FaultError.
func (m *HyperAP) Load(row, col int, s bits.State) error { return m.t.Load(row, col, s) }

// LoadBit stores an unencoded single bit (one TCAM bit, no X use).
func (m *HyperAP) LoadBit(row, col int, b bool) error {
	return m.t.Load(row, col, bits.StateForBit(b))
}

// LoadPair stores the bit pair (b1, b0) in encoded form at columns col
// (hi) and col+1 (lo), per Fig. 5a.
func (m *HyperAP) LoadPair(row, col int, b1, b0 bool) error {
	hi, lo := encoding.EncodePair(b1, b0)
	if err := m.t.Load(row, col, hi); err != nil {
		return err
	}
	return m.t.Load(row, col+1, lo)
}

// ReadBit reads back an unencoded single bit; X reads as an error.
func (m *HyperAP) ReadBit(row, col int) (bool, error) {
	switch m.t.State(row, col) {
	case bits.S0:
		return false, nil
	case bits.S1:
		return true, nil
	}
	return false, fmt.Errorf("model: column %d of row %d holds X, not a bit", col, row)
}

// ReadPair decodes the encoded pair at columns col, col+1.
func (m *HyperAP) ReadPair(row, col int) (b1, b0 bool, err error) {
	v, ok := encoding.DecodePair(m.t.State(row, col), m.t.State(row, col+1))
	if !ok {
		return false, false, fmt.Errorf("model: columns %d,%d of row %d hold no valid encoded pair", col, col+1, row)
	}
	return v&2 != 0, v&1 != 0, nil
}

// Search compares the ternary key with all rows in parallel. With
// accumulate=false the tags are replaced by the match results; with
// accumulate=true the accumulation unit ORs the match results into the
// tags (Fig. 4c), enabling Multi-Search-Single-Write.
func (m *HyperAP) Search(keys []bits.Key, accumulate bool) {
	match := m.t.SearchVec(keys)
	m.Ops.Searches++
	if accumulate {
		m.tags.Or(match)
	} else {
		m.tags.CopyFrom(match)
	}
}

// LatchForEncode pushes the current tag vector into the per-row encoder
// DFF chain (the Search instruction's <encode> path). The first latch is
// the pair's low bit, the second its high bit.
func (m *HyperAP) LatchForEncode() {
	if len(m.enc) >= 2 {
		panic("model: encoder chain already holds two bit vectors")
	}
	m.enc = append(m.enc, m.tags.Clone())
}

// EncoderDepth reports how many tag snapshots await an encoded write.
func (m *HyperAP) EncoderDepth() int { return len(m.enc) }

// Write performs the associative write of the key's state into one column
// of every tagged row (Fig. 4d; input Z writes X). It returns the number
// of sequential pulse slots consumed, plus any unrepairable
// tcam.FaultError the write-verify pass surfaced.
func (m *HyperAP) Write(col int, key bits.Key) (int, error) {
	slots, err := m.t.WriteVec(col, key, m.tags)
	m.Ops.Writes++
	m.Ops.PulseSlots += int64(slots)
	return slots, err
}

// WriteAll writes the key's state into one column of every row regardless
// of tags (used to initialise columns; realised by a match-all search
// followed by a write).
func (m *HyperAP) WriteAll(col int, key bits.Key) (int, error) {
	sel := bits.NewVec(m.Rows())
	sel.SetAll(true)
	slots, err := m.t.WriteVec(col, key, sel)
	m.Ops.Writes++
	m.Ops.PulseSlots += int64(slots)
	return slots, err
}

// WriteEncodedPair consumes the two latched tag snapshots, encodes each
// row's (hi, lo) result pair per Fig. 5a, and writes the two TCAM bits at
// columns col (hi) and col+1 (lo) of every row. This is the Write
// instruction's <encode> = 1 path (23 cycles in the ISA).
func (m *HyperAP) WriteEncodedPair(col int) (int, error) {
	if len(m.enc) != 2 {
		panic(fmt.Sprintf("model: encoded write needs two latched vectors, have %d", len(m.enc)))
	}
	lo, hi := m.enc[0], m.enc[1]
	m.enc = nil
	rows := m.Rows()
	his := make([]bits.State, rows)
	los := make([]bits.State, rows)
	all := make([]bool, rows)
	for r := 0; r < rows; r++ {
		his[r], los[r] = encoding.EncodePair(hi.Get(r), lo.Get(r))
		all[r] = true
	}
	slots, err := m.t.WritePerRow(col, his, all)
	m.Ops.PulseSlots += int64(slots)
	if err == nil {
		var more int
		more, err = m.t.WritePerRow(col+1, los, all)
		slots += more
		m.Ops.PulseSlots += int64(more)
	}
	m.Ops.Writes++
	return slots, err
}

// Count returns the number of tagged words (the Count instruction).
func (m *HyperAP) Count() int { return m.tags.OnesCount() }

// Index returns the index of the first tagged word or -1 (the Index
// instruction).
func (m *HyperAP) Index() int { return m.tags.FirstSet() }
