package model

import (
	"testing"

	"hyperap/internal/bits"
	"hyperap/internal/tcam"
)

// fullAdderLUT is the lookup table of Fig. 2b. Columns: A=0, B=1, Cin=2,
// Sum=3, Cout=4.
func fullAdderLUT() []LUTEntry {
	return []LUTEntry{
		{Inputs: []ColBit{{0, true}, {1, false}, {2, false}}, Outputs: []ColBit{{3, true}}},
		{Inputs: []ColBit{{0, false}, {1, true}, {2, false}}, Outputs: []ColBit{{3, true}}},
		{Inputs: []ColBit{{0, false}, {1, false}, {2, true}}, Outputs: []ColBit{{3, true}}},
		{Inputs: []ColBit{{0, true}, {1, true}, {2, true}}, Outputs: []ColBit{{3, true}}},
		{Inputs: []ColBit{{0, true}, {1, true}}, Outputs: []ColBit{{4, true}}},
		{Inputs: []ColBit{{0, true}, {2, true}}, Outputs: []ColBit{{4, true}}},
		{Inputs: []ColBit{{1, true}, {2, true}}, Outputs: []ColBit{{4, true}}},
	}
}

// TestFig2TraditionalOneBitAdd reproduces Fig. 2: the traditional AP needs
// exactly 14 operations (7 searches + 7 writes) for a 1-bit addition with
// carry, and computes it correctly on every input combination.
func TestFig2TraditionalOneBitAdd(t *testing.T) {
	m := NewTraditionalAP(8, 5)
	for row := 0; row < 8; row++ {
		m.SetBit(row, 0, row&1 != 0) // A
		m.SetBit(row, 1, row&2 != 0) // B
		m.SetBit(row, 2, row&4 != 0) // Cin
	}
	m.RunLUT(fullAdderLUT())

	if m.Ops.Searches != 7 || m.Ops.Writes != 7 {
		t.Errorf("ops = %dS+%dW, want 7S+7W (Fig. 2c: 14 operations)", m.Ops.Searches, m.Ops.Writes)
	}
	for row := 0; row < 8; row++ {
		a, b, c := row&1, row>>1&1, row>>2&1
		sum := (a + b + c) & 1
		cout := (a + b + c) >> 1
		if got := m.Bit(row, 3); got != (sum == 1) {
			t.Errorf("row %d: Sum = %v, want %v", row, got, sum == 1)
		}
		if got := m.Bit(row, 4); got != (cout == 1) {
			t.Errorf("row %d: Cout = %v, want %v", row, got, cout == 1)
		}
	}
}

func newHyper(rows, width int) *HyperAP {
	return NewHyperAP(tcam.NewSeparated(rows, width, tcam.DefaultParams()))
}

// keys builds a full-width key slice from (position, key) pairs.
func keys(width int, ks string, cols ...int) []bits.Key {
	parsed, err := bits.ParseKeys(ks)
	if err != nil {
		panic(err)
	}
	if len(parsed) != len(cols) {
		panic("keys/cols mismatch")
	}
	out := make([]bits.Key, width)
	for i := range out {
		out[i] = bits.KDC
	}
	for i, c := range cols {
		out[c] = parsed[i]
	}
	return out
}

// TestFig5dHyperOneBitAdd reproduces Fig. 5d: Hyper-AP completes the same
// 1-bit addition in 6 operations (4 searches + 2 writes) using the
// extended search keys and the accumulation unit.
func TestFig5dHyperOneBitAdd(t *testing.T) {
	// Layout: A,B encoded pair at cols 0-1; Cin single at col 2;
	// Sum at col 3; Cout at col 4.
	m := newHyper(8, 5)
	for row := 0; row < 8; row++ {
		a, b, c := row&1 != 0, row&2 != 0, row&4 != 0
		m.LoadPair(row, 0, a, b) // hi bit = A, lo bit = B
		m.LoadBit(row, 2, c)
		m.LoadBit(row, 3, false)
		m.LoadBit(row, 4, false)
	}

	// Sum: patterns {AB∈{01,10}, Cin=0} ∪ {AB∈{00,11}, Cin=1}.
	m.Search(keys(5, "01 0", 0, 1, 2), false) // AB subset {01,10}
	m.Search(keys(5, "10 1", 0, 1, 2), true)  // AB subset {00,11}
	m.Write(3, bits.K1)
	// Cout: patterns {AB∈{01,10,11}, Cin=1} ∪ {AB=11, Cin=0}.
	m.Search(keys(5, "-1 1", 0, 1, 2), false) // AB subset {01,10,11}
	m.Search(keys(5, "1Z 0", 0, 1, 2), true)  // AB subset {11}
	m.Write(4, bits.K1)

	if m.Ops.Searches != 4 || m.Ops.Writes != 2 {
		t.Errorf("ops = %dS+%dW, want 4S+2W (Fig. 5d: 6 operations)", m.Ops.Searches, m.Ops.Writes)
	}
	for row := 0; row < 8; row++ {
		a, b, c := row&1, row>>1&1, row>>2&1
		wantSum := (a+b+c)&1 == 1
		wantCout := (a+b+c)>>1 == 1
		if got, err := m.ReadBit(row, 3); err != nil || got != wantSum {
			t.Errorf("row %d: Sum = %v (%v), want %v", row, got, err, wantSum)
		}
		if got, err := m.ReadBit(row, 4); err != nil || got != wantCout {
			t.Errorf("row %d: Cout = %v (%v), want %v", row, got, err, wantCout)
		}
	}
}

func TestAccumulationUnitORs(t *testing.T) {
	m := newHyper(4, 2)
	for row := 0; row < 4; row++ {
		m.LoadBit(row, 0, row&1 != 0)
		m.LoadBit(row, 1, row&2 != 0)
	}
	m.Search(keys(2, "1", 0), false) // rows 1,3
	if m.Count() != 2 {
		t.Fatalf("count = %d, want 2", m.Count())
	}
	m.Search(keys(2, "1", 1), true) // rows 2,3 ORed in
	if m.Count() != 3 {
		t.Errorf("accumulated count = %d, want 3", m.Count())
	}
	m.Search(keys(2, "1", 1), false) // replace
	if m.Count() != 2 {
		t.Errorf("replaced count = %d, want 2", m.Count())
	}
	if m.Index() != 2 {
		t.Errorf("index = %d, want 2", m.Index())
	}
}

func TestEncodedPairWrite(t *testing.T) {
	// Compute hi = bit0, lo = NOT bit0 in the tags and write them encoded.
	m := newHyper(4, 4)
	for row := 0; row < 4; row++ {
		m.LoadBit(row, 0, row&1 != 0)
	}
	m.Search(keys(4, "0", 0), false) // lo = ¬bit0
	m.LatchForEncode()
	m.Search(keys(4, "1", 0), false) // hi = bit0
	m.LatchForEncode()
	if m.EncoderDepth() != 2 {
		t.Fatalf("encoder depth = %d", m.EncoderDepth())
	}
	m.WriteEncodedPair(2)
	if m.EncoderDepth() != 0 {
		t.Fatal("encoder not drained")
	}
	for row := 0; row < 4; row++ {
		b := row&1 != 0
		hi, lo, err := m.ReadPair(row, 2)
		if err != nil {
			t.Fatalf("row %d: %v", row, err)
		}
		if hi != b || lo != !b {
			t.Errorf("row %d: pair = (%v,%v), want (%v,%v)", row, hi, lo, b, !b)
		}
	}
	if m.Ops.Writes != 1 {
		t.Errorf("encoded pair write counted as %d writes, want 1", m.Ops.Writes)
	}
}

func TestEncodedWriteRequiresTwoLatches(t *testing.T) {
	m := newHyper(2, 4)
	m.Search(keys(4, "-", 0), false)
	m.LatchForEncode()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic with one latched vector")
		}
	}()
	m.WriteEncodedPair(0)
}

func TestWriteAllAndWriteZ(t *testing.T) {
	m := newHyper(3, 2)
	m.WriteAll(0, bits.K1)
	for row := 0; row < 3; row++ {
		if b, err := m.ReadBit(row, 0); err != nil || !b {
			t.Errorf("row %d not written", row)
		}
	}
	// Tag only row 1, then write X there.
	m.Tags().SetAll(false)
	m.Tags().Set(1, true)
	m.Write(0, bits.KZ)
	if _, err := m.ReadBit(1, 0); err == nil {
		t.Error("row 1 should hold X after writing Z")
	}
	if b, err := m.ReadBit(0, 0); err != nil || !b {
		t.Error("row 0 disturbed")
	}
}

func TestTraditionalAPRejectsTernary(t *testing.T) {
	m := NewTraditionalAP(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on Z key")
		}
	}()
	m.Search([]bits.Key{bits.KZ, bits.KDC})
}

func TestTraditionalWritePulseAccounting(t *testing.T) {
	m := NewTraditionalAP(2, 4)
	m.Search([]bits.Key{bits.KDC, bits.KDC, bits.KDC, bits.KDC}) // match all
	m.Write([]bits.Key{bits.K1, bits.K0, bits.KDC, bits.KDC})
	if m.Ops.PulseSlots != 4 { // 2 bits × 2 sequential cell pulses
		t.Errorf("pulse slots = %d, want 4", m.Ops.PulseSlots)
	}
	if m.Bit(0, 0) != true || m.Bit(0, 1) != false {
		t.Error("write values wrong")
	}
}

func TestHyperSeparatedHalvesWritePulses(t *testing.T) {
	sep := NewHyperAP(tcam.NewSeparated(4, 2, tcam.DefaultParams()))
	mono := NewHyperAP(tcam.NewMonolithic(4, 2, tcam.DefaultParams()))
	for _, m := range []*HyperAP{sep, mono} {
		m.Tags().SetAll(true)
		m.Write(0, bits.K1)
	}
	if sep.Ops.PulseSlots != 1 || mono.Ops.PulseSlots != 2 {
		t.Errorf("pulse slots sep=%d mono=%d, want 1 and 2 (§IV-B)",
			sep.Ops.PulseSlots, mono.Ops.PulseSlots)
	}
}

func TestSetTagsAndReadBitError(t *testing.T) {
	m := newHyper(3, 1)
	v := bits.NewVec(3)
	v.Set(2, true)
	m.SetTags(v)
	if m.Count() != 1 || m.Index() != 2 {
		t.Error("SetTags wrong")
	}
	if _, err := m.ReadBit(0, 0); err == nil {
		t.Error("reading erased (X) column should error")
	}
}
