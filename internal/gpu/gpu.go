// Package gpu models the GPU baseline of the evaluation: an Nvidia Titan
// Xp (Table II: 3840 SIMD slots at 1.58 GHz, 471 mm², 250 W, 12 GB of
// GDDR). Like the IMP baseline, the paper treats the GPU as a fixed
// reference dataset: benchmark latency includes off-chip memory access
// plus the arithmetic latency (from [4]), because the GPU's in-order
// cores and limited on-chip memory cannot hide the memory wall for these
// streaming kernels (Fig. 15's caption).
package gpu

import "fmt"

// Chip is the GPU column of Table II.
type Chip struct {
	Name            string
	SIMDSlots       int64
	FreqHz          float64
	AreaMM2         float64
	TDPWatts        float64
	MemoryBytes     int64
	MemBandwidthGBs float64
}

// Default returns the Titan Xp configuration.
func Default() Chip {
	return Chip{
		Name:            "GPU",
		SIMDSlots:       3840,
		FreqHz:          1.58e9,
		AreaMM2:         471,
		TDPWatts:        250,
		MemoryBytes:     12 << 30,
		MemBandwidthGBs: 547,
	}
}

// Perf mirrors imp.Perf for the comparison tables.
type Perf struct {
	LatencyNS      float64
	ThroughputGOPS float64
	PowerEffGOPSW  float64
	AreaEffGOPSmm2 float64
}

// opRecord captures per-operation instruction latency in cycles (from the
// instruction-latency characterisation of [4]) and the issue throughput
// in operations per clock per SM-equivalent slot.
type opRecord struct {
	latencyCycles float64
	opsPerClock   float64 // per slot
}

var ops32 = map[string]opRecord{
	"Add":  {latencyCycles: 4, opsPerClock: 1},
	"Mul":  {latencyCycles: 5, opsPerClock: 0.5},
	"Div":  {latencyCycles: 130, opsPerClock: 1.0 / 8},
	"Sqrt": {latencyCycles: 170, opsPerClock: 1.0 / 8},
	"Exp":  {latencyCycles: 60, opsPerClock: 1.0 / 4},
}

// memoryAccessNS is the off-chip access time a streaming benchmark pays:
// the benchmark latency of Fig. 15 contains it.
const memoryAccessNS = 430.0

// Arithmetic returns the GPU's performance for one representative
// operation. Data width does not change integer-unit performance (the
// GPU has fixed 32-bit lanes), which is why Fig. 16's improvements grow.
func (c Chip) Arithmetic(op string, widthBits int) (Perf, error) {
	r, ok := ops32[op]
	if !ok {
		return Perf{}, fmt.Errorf("gpu: unknown operation %q", op)
	}
	cycleNS := 1e9 / c.FreqHz
	lat := memoryAccessNS + r.latencyCycles*cycleNS

	// Peak arithmetic throughput with operands resident on chip (the
	// paper preloads all data before execution, §VI-A.3).
	tp := float64(c.SIMDSlots) * r.opsPerClock * c.FreqHz / 1e9
	// Streaming integer kernels run near TDP on a fully-occupied part.
	power := c.TDPWatts * 0.8
	return Perf{
		LatencyNS:      lat,
		ThroughputGOPS: tp,
		PowerEffGOPSW:  tp / power,
		AreaEffGOPSmm2: tp / c.AreaMM2,
	}, nil
}

// KernelCost is the GPU-side analytical kernel model for Fig. 18: the
// GPU processes elements in waves of SIMDSlots, pays memory bandwidth for
// the working set, and arithmetic at the per-op throughput.
type KernelCost struct {
	Elements      int64
	OpsPerElement map[string]float64
	BytesPerElem  float64
}

// Evaluate returns kernel time (ns) and energy (J).
func (c Chip) Evaluate(k KernelCost) (timeNS, energyJ float64) {
	var computeNS float64
	for op, n := range k.OpsPerElement {
		r := ops32[op]
		// Throughput-limited: n ops per element across all elements.
		perOpNS := 1 / (float64(c.SIMDSlots) * r.opsPerClock * c.FreqHz / 1e9) // ns per op chip-wide
		computeNS += n * perOpNS * float64(k.Elements)
	}
	memNS := k.BytesPerElem * float64(k.Elements) / c.MemBandwidthGBs // GB/s = B/ns
	timeNS = computeNS + memNS
	if float64(k.Elements) > 0 && timeNS < memoryAccessNS {
		timeNS = memoryAccessNS
	}
	energyJ = timeNS * 1e-9 * c.TDPWatts * 0.8
	return timeNS, energyJ
}
