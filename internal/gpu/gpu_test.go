package gpu

import "testing"

func TestTableIIConfig(t *testing.T) {
	c := Default()
	if c.SIMDSlots != 3840 || c.FreqHz != 1.58e9 || c.AreaMM2 != 471 || c.TDPWatts != 250 {
		t.Errorf("Table II config wrong: %+v", c)
	}
	if c.MemoryBytes != 12<<30 {
		t.Error("12 GB memory expected")
	}
}

func TestArithmetic(t *testing.T) {
	c := Default()
	for _, op := range []string{"Add", "Mul", "Div", "Sqrt", "Exp"} {
		p, err := c.Arithmetic(op, 32)
		if err != nil {
			t.Fatal(err)
		}
		if p.LatencyNS < memoryAccessNS {
			t.Errorf("%s: benchmark latency must include the memory access (Fig. 15 caption)", op)
		}
		if p.ThroughputGOPS <= 0 || p.PowerEffGOPSW <= 0 || p.AreaEffGOPSmm2 <= 0 {
			t.Errorf("%s: degenerate %+v", op, p)
		}
		// Fixed 32-bit lanes: width-insensitive.
		p16, _ := c.Arithmetic(op, 16)
		if p16 != p {
			t.Errorf("%s: GPU must be width-insensitive", op)
		}
	}
	if _, err := c.Arithmetic("Nope", 32); err == nil {
		t.Error("unknown op must error")
	}
	add, _ := c.Arithmetic("Add", 32)
	div, _ := c.Arithmetic("Div", 32)
	if add.ThroughputGOPS <= div.ThroughputGOPS {
		t.Error("add throughput must exceed div")
	}
}

func TestKernelEvaluate(t *testing.T) {
	c := Default()
	k := KernelCost{
		Elements:      1 << 22,
		OpsPerElement: map[string]float64{"Add": 8, "Mul": 2},
		BytesPerElem:  32,
	}
	tm, en := c.Evaluate(k)
	if tm <= 0 || en <= 0 {
		t.Fatal("degenerate evaluation")
	}
	// Heavier memory traffic costs more time.
	k2 := k
	k2.BytesPerElem = 256
	tm2, _ := c.Evaluate(k2)
	if tm2 <= tm {
		t.Error("memory traffic must cost time")
	}
	// Tiny kernels still pay one memory round trip.
	k3 := KernelCost{Elements: 1, OpsPerElement: map[string]float64{"Add": 1}, BytesPerElem: 4}
	tm3, _ := c.Evaluate(k3)
	if tm3 < memoryAccessNS {
		t.Error("minimum latency is one memory access")
	}
}
