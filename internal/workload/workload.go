// Package workload defines the Fig. 18 application study: Rodinia-style
// kernels [10] re-expressed as per-element Hyper-AP programs in the
// C-like language, with matching analytical cost models for the IMP and
// GPU baselines.
//
// Substitution note (DESIGN.md §4): the original Rodinia suite is
// C/CUDA over native datasets; the evaluation needs each kernel's
// characteristic operation mix, data width, element count and
// communication pattern. Floating point is converted to fixed point
// exactly as the paper does for IMP comparability (§VI-A.1). Element
// counts approximate the native dataset sizes.
package workload

import (
	"fmt"
	"math/rand"

	"hyperap/internal/bits"
	"hyperap/internal/compile"
	"hyperap/internal/gpu"
	"hyperap/internal/imp"
)

// Kernel is one benchmark of the application study.
type Kernel struct {
	Name string
	// Source is the per-element program in the C-like language; the
	// compilation framework applies it across all SIMD slots (Fig. 8).
	Source string
	// Elements is the number of data elements in the (synthetic) native
	// dataset.
	Elements int64
	// MovesPerElement counts nearest-neighbour transfers on Hyper-AP's
	// local inter-PE links per element per pass.
	MovesPerElement float64
	// IMP and GPU are the baseline cost models (Elements is filled in by
	// the harness).
	IMP imp.KernelCost
	GPU gpu.KernelCost
}

// Inputs draws n random per-slot input vectors for the kernel.
func (k *Kernel) Inputs(rng *rand.Rand, ex *compile.Executable, n int) [][]uint64 {
	out := make([][]uint64, n)
	for i := range out {
		vals := make([]uint64, len(ex.Inputs))
		for j, c := range ex.Inputs {
			vals[j] = rng.Uint64() & bits.Mask(c.Width)
		}
		out[i] = vals
	}
	return out
}

// Compile builds the kernel for a target.
func (k *Kernel) Compile(tgt compile.Target) (*compile.Executable, error) {
	ex, err := compile.CompileSource(k.Source, tgt)
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", k.Name, err)
	}
	return ex, nil
}

// Kernels returns the eight-kernel suite used in Fig. 18.
func Kernels() []*Kernel {
	return []*Kernel{backprop(), kmeans(), hotspot(), pathfinder(), srad(), streamcluster(), nw(), lud()}
}

// KernelByName finds one kernel.
func KernelByName(name string) (*Kernel, error) {
	for _, k := range Kernels() {
		if k.Name == name {
			return k, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown kernel %q", name)
}

// backprop: one layer of a fully-connected network — a 4-wide
// dot-product partial sum per slot with a saturating ReLU, Q8.8 fixed
// point (an 8-wide unit is two slots; the DFG clustering of Fig. 10
// would make the same split, since a wider dot product exceeds one
// 256-bit word). IMP executes the multiply-accumulate natively in the
// analog domain, which is why the paper reports IMP doing comparatively
// best here (§VI-D).
func backprop() *Kernel {
	return &Kernel{
		Name: "backprop",
		Source: `
		struct Vec4 {
			unsigned int(8) v[4];
		}
		unsigned int(16) main(struct Vec4 x, struct Vec4 w) {
			unsigned int(19) acc = 0;
			for (unsigned int(3) i = 0; i < 4; i = i + 1) {
				acc = acc + x.v[i] * w.v[i];
			}
			// ReLU with saturation to Q8.8.
			unsigned int(16) y = 0;
			unsigned int(19) scaled;
			scaled = acc >> 2;
			if (scaled > 65535) {
				y = 65535;
			} else {
				y = scaled;
			}
			return y;
		}`,
		Elements:        65536 * 32, // two slots per 8-wide unit
		MovesPerElement: 1.5,        // partial-sum exchange plus layer traffic
		IMP: imp.KernelCost{
			OpsPerElement: map[imp.Op]float64{imp.OpAdd: 2},
			CritOps:       map[imp.Op]float64{imp.OpAdd: 2},
			DotProductOps: 4, // native analog MACs
			ElementMoves:  1.5,
		},
		GPU: gpu.KernelCost{
			OpsPerElement: map[string]float64{"Mul": 4, "Add": 5},
			BytesPerElem:  4*2 + 2,
		},
	}
}

// kmeans: squared distance of a 2-D point to four fixed centroids
// (embedded immediates) and argmin — a showcase for operand embedding.
func kmeans() *Kernel {
	return &Kernel{
		Name: "kmeans",
		Source: `
		unsigned int(17) dist2(unsigned int(8) x, unsigned int(8) y,
		                       unsigned int(8) cx, unsigned int(8) cy) {
			unsigned int(8) dx;
			unsigned int(8) dy;
			dx = abs(x - cx);
			dy = abs(y - cy);
			return dx * dx + dy * dy;
		}
		unsigned int(2) main(unsigned int(8) x, unsigned int(8) y) {
			unsigned int(17) best;
			unsigned int(2) idx = 0;
			unsigned int(17) d;
			best = dist2(x, y, 32, 48);
			d = dist2(x, y, 96, 200);
			if (d < best) { best = d; idx = 1; }
			d = dist2(x, y, 180, 64);
			if (d < best) { best = d; idx = 2; }
			d = dist2(x, y, 220, 176);
			if (d < best) { best = d; idx = 3; }
			return idx;
		}`,
		Elements:        494020,
		MovesPerElement: 0.1,
		IMP: imp.KernelCost{
			OpsPerElement: map[imp.Op]float64{imp.OpMul: 8, imp.OpAdd: 16},
			CritOps:       map[imp.Op]float64{imp.OpMul: 1, imp.OpAdd: 5},
			ElementMoves:  0.1,
		},
		GPU: gpu.KernelCost{
			OpsPerElement: map[string]float64{"Mul": 8, "Add": 16},
			BytesPerElem:  4,
		},
	}
}

// hotspot: five-point thermal stencil with embedded coefficients
// (neighbour temperatures arrive over the local links).
func hotspot() *Kernel {
	return &Kernel{
		Name: "hotspot",
		Source: `
		unsigned int(16) main(unsigned int(16) c, unsigned int(16) n,
		                      unsigned int(16) s, unsigned int(16) e,
		                      unsigned int(16) w, unsigned int(16) p) {
			unsigned int(18) sum;
			sum = n + s + e + w;
			// next = c + (p + k*(sum - 4c)) with k = 1/16 embedded as a
			// shift; fixed point keeps everything unsigned.
			unsigned int(22) t;
			t = (c << 4) + p + sum - (c << 2);
			return t >> 4;
		}`,
		Elements:        1024 * 1024,
		MovesPerElement: 4,
		IMP: imp.KernelCost{
			OpsPerElement: map[imp.Op]float64{imp.OpAdd: 7, imp.OpMul: 2},
			CritOps:       map[imp.Op]float64{imp.OpAdd: 4, imp.OpMul: 1},
			ElementMoves:  4,
		},
		GPU: gpu.KernelCost{
			OpsPerElement: map[string]float64{"Add": 7, "Mul": 2},
			BytesPerElem:  6 * 2,
		},
	}
}

// pathfinder: dynamic-programming step — min of three neighbours plus the
// local cost.
func pathfinder() *Kernel {
	return &Kernel{
		Name: "pathfinder",
		Source: `
		unsigned int(16) main(unsigned int(8) cost, unsigned int(16) a,
		                      unsigned int(16) b, unsigned int(16) c) {
			return cost + min(a, min(b, c));
		}`,
		Elements:        100000 * 100,
		MovesPerElement: 2,
		IMP: imp.KernelCost{
			OpsPerElement: map[imp.Op]float64{imp.OpAdd: 3},
			CritOps:       map[imp.Op]float64{imp.OpAdd: 3},
			ElementMoves:  2,
		},
		GPU: gpu.KernelCost{
			OpsPerElement: map[string]float64{"Add": 3},
			BytesPerElem:  8,
		},
	}
}

// srad: diffusion-coefficient step of the SRAD image kernel: squared
// neighbour gradients normalised by the centre value — the division is
// what makes this kernel expensive on the baselines.
func srad() *Kernel {
	return &Kernel{
		Name: "srad",
		Source: `
		unsigned int(12) main(unsigned int(8) c, unsigned int(8) n,
		                      unsigned int(8) s, unsigned int(8) e,
		                      unsigned int(8) w) {
			unsigned int(8) dn;
			unsigned int(8) ds;
			unsigned int(8) de;
			unsigned int(8) dw;
			dn = abs(n - c);
			ds = abs(s - c);
			de = abs(e - c);
			dw = abs(w - c);
			unsigned int(18) g;
			g = dn * dn + ds * ds + de * de + dw * dw;
			unsigned int(12) gh;
			gh = g >> 6;
			unsigned int(12) den;
			den = c + 1;
			return gh / den;
		}`,
		Elements:        512 * 512,
		MovesPerElement: 4,
		IMP: imp.KernelCost{
			OpsPerElement: map[imp.Op]float64{imp.OpMul: 4, imp.OpAdd: 11, imp.OpDiv: 1},
			CritOps:       map[imp.Op]float64{imp.OpMul: 1, imp.OpAdd: 4, imp.OpDiv: 1},
			ElementMoves:  4,
		},
		GPU: gpu.KernelCost{
			OpsPerElement: map[string]float64{"Mul": 4, "Add": 11, "Div": 1},
			BytesPerElem:  5,
		},
	}
}

// streamcluster: membership test — squared 4-D distance against an
// embedded radius.
func streamcluster() *Kernel {
	return &Kernel{
		Name: "streamcluster",
		Source: `
		struct P4 {
			unsigned int(8) v[4];
		}
		bool main(struct P4 p, struct P4 c) {
			unsigned int(18) d = 0;
			for (unsigned int(3) i = 0; i < 4; i = i + 1) {
				unsigned int(8) diff;
				diff = abs(p.v[i] - c.v[i]);
				d = d + diff * diff;
			}
			return d < 4096;
		}`,
		Elements:        65536 * 8,
		MovesPerElement: 0.5,
		IMP: imp.KernelCost{
			OpsPerElement: map[imp.Op]float64{imp.OpMul: 4, imp.OpAdd: 8},
			CritOps:       map[imp.Op]float64{imp.OpMul: 1, imp.OpAdd: 5},
			ElementMoves:  0.5,
		},
		GPU: gpu.KernelCost{
			OpsPerElement: map[string]float64{"Mul": 4, "Add": 9},
			BytesPerElem:  8,
		},
	}
}

// nw: Needleman-Wunsch scoring step on small signed scores.
func nw() *Kernel {
	return &Kernel{
		Name: "nw",
		Source: `
		int(12) main(int(10) nw, int(10) n, int(10) w, bool match) {
			int(11) diag;
			if (match == true) {
				diag = nw + 2;
			} else {
				diag = nw - 1;
			}
			return max(diag, max(n - 1, w - 1));
		}`,
		Elements:        2048 * 2048,
		MovesPerElement: 2,
		IMP: imp.KernelCost{
			OpsPerElement: map[imp.Op]float64{imp.OpAdd: 5},
			CritOps:       map[imp.Op]float64{imp.OpAdd: 3},
			ElementMoves:  2,
		},
		GPU: gpu.KernelCost{
			OpsPerElement: map[string]float64{"Add": 5},
			BytesPerElem:  6,
		},
	}
}

// lud: LU-decomposition inner update a − l·u scaled by the reciprocal
// pivot (the divide).
func lud() *Kernel {
	return &Kernel{
		Name: "lud",
		Source: `
		unsigned int(12) main(unsigned int(12) a, unsigned int(6) l,
		                      unsigned int(6) u, unsigned int(6) pivot) {
			unsigned int(13) t;
			t = a - ((l * u) >> 2);
			unsigned int(12) num;
			num = t;
			return num / (pivot + 1);
		}`,
		Elements:        1024 * 1024,
		MovesPerElement: 3,
		IMP: imp.KernelCost{
			OpsPerElement: map[imp.Op]float64{imp.OpMul: 1, imp.OpAdd: 3, imp.OpDiv: 1},
			CritOps:       map[imp.Op]float64{imp.OpMul: 1, imp.OpAdd: 2, imp.OpDiv: 1},
			ElementMoves:  3,
		},
		GPU: gpu.KernelCost{
			OpsPerElement: map[string]float64{"Mul": 1, "Add": 3, "Div": 1},
			BytesPerElem:  6,
		},
	}
}
