package workload

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"hyperap/internal/compile"
	"hyperap/internal/isa"
)

// hyperKernels memoizes the Hyper-AP compilation of each kernel so the
// round-trip test doesn't pay the compile pipeline a second time after
// TestKernelsCompileAndVerify (the executables are immutable and safe to
// share).
var hyperKernels sync.Map // name → *compile.Executable

func compiledHyperKernel(t *testing.T, k *Kernel) *compile.Executable {
	t.Helper()
	if ex, ok := hyperKernels.Load(k.Name); ok {
		return ex.(*compile.Executable)
	}
	ex, err := k.Compile(compile.HyperTarget())
	if err != nil {
		t.Fatal(err)
	}
	hyperKernels.Store(k.Name, ex)
	return ex
}

// TestISABinaryRoundTripAllKernels is the end-to-end property test for
// the Table I binary format: over every compiled example program of the
// application study, DecodeProgram(EncodeProgram(p)) must be the
// identity, and re-encoding the decoded program must reproduce the same
// bytes. Compiled kernels exercise every instruction shape the code
// generator emits (SetKey immediates, encoded writes, reductions), which
// synthetic unit tests of single instructions cannot guarantee.
func TestISABinaryRoundTripAllKernels(t *testing.T) {
	heavy := map[string]bool{"srad": true, "lud": true, "backprop": true}
	for _, k := range Kernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			if testing.Short() && heavy[k.Name] {
				t.Skip("heavy kernel skipped in -short mode")
			}
			roundTrip(t, compiledHyperKernel(t, k).Prog)
		})
	}
}

// TestISABinaryRoundTripTargets repeats the round-trip property across
// the compiler's other targets (traditional AP, CMOS, monolithic), whose
// code generators emit different instruction mixes.
func TestISABinaryRoundTripTargets(t *testing.T) {
	k, err := KernelByName("pathfinder")
	if err != nil {
		t.Fatal(err)
	}
	targets := map[string]compile.Target{
		"hyper-cmos":  compile.HyperCMOSTarget(),
		"traditional": compile.TraditionalTarget(compile.HyperTarget().Tech),
	}
	noacc := compile.HyperTarget()
	noacc.NoAccumulation = true
	targets["no-accumulation"] = noacc
	for name, tgt := range targets {
		t.Run(name, func(t *testing.T) {
			ex, err := k.Compile(tgt)
			if err != nil {
				t.Fatal(err)
			}
			roundTrip(t, ex.Prog)
		})
	}
}

func roundTrip(t *testing.T, p isa.Program) {
	t.Helper()
	enc := isa.EncodeProgram(p)
	if len(enc) != p.TotalBytes() {
		t.Errorf("encoded %d bytes, TotalBytes says %d", len(enc), p.TotalBytes())
	}
	dec, err := isa.DecodeProgram(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(dec) != len(p) {
		t.Fatalf("decoded %d instructions, want %d", len(dec), len(p))
	}
	for i := range p {
		if !reflect.DeepEqual(dec[i], p[i]) {
			t.Fatalf("instruction %d diverged after round trip:\n  in:  %#v\n  out: %#v", i, p[i], dec[i])
		}
	}
	if re := isa.EncodeProgram(dec); !bytes.Equal(re, enc) {
		t.Fatal("re-encoding the decoded program produced different bytes")
	}
}
