package workload

import (
	"math/rand"
	"testing"
)

func TestSuiteShape(t *testing.T) {
	ks := Kernels()
	if len(ks) != 8 {
		t.Fatalf("suite has %d kernels, want 8", len(ks))
	}
	seen := map[string]bool{}
	for _, k := range ks {
		if seen[k.Name] {
			t.Errorf("duplicate kernel %s", k.Name)
		}
		seen[k.Name] = true
		if k.Elements <= 0 || k.Source == "" {
			t.Errorf("%s: incomplete definition", k.Name)
		}
		if len(k.IMP.OpsPerElement) == 0 && k.IMP.DotProductOps == 0 {
			t.Errorf("%s: IMP cost model empty", k.Name)
		}
		if len(k.GPU.OpsPerElement) == 0 {
			t.Errorf("%s: GPU cost model empty", k.Name)
		}
	}
	if _, err := KernelByName("kmeans"); err != nil {
		t.Error(err)
	}
	if _, err := KernelByName("nope"); err == nil {
		t.Error("unknown kernel must error")
	}
}

// TestKernelsCompileAndVerify compiles every kernel for Hyper-AP and
// checks the simulated hardware against the reference evaluator on
// random slots. The division-heavy kernels are the slowest to compile;
// -short skips them.
func TestKernelsCompileAndVerify(t *testing.T) {
	heavy := map[string]bool{"srad": true, "lud": true, "backprop": true}
	for _, k := range Kernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			if testing.Short() && heavy[k.Name] {
				t.Skip("heavy kernel skipped in -short mode")
			}
			ex := compiledHyperKernel(t, k)
			rng := rand.New(rand.NewSource(17))
			inputs := k.Inputs(rng, ex, 24)
			if err := ex.CheckAgainstReference(inputs); err != nil {
				t.Fatal(err)
			}
			if ex.Stats.Cycles <= 0 {
				t.Error("no cycle accounting")
			}
		})
	}
}
