package tcam

import (
	"fmt"

	"hyperap/internal/bits"
)

// A Design is a rows × bits ternary CAM built from 1D1R crossbars. One
// TCAM bit occupies two RRAM cells — a "true" cell T and a "false" cell F:
//
//	state 0 → (T=LRS, F=HRS)
//	state 1 → (T=HRS, F=LRS)
//	state X → (T=HRS, F=HRS)   (no discharge path: matches everything)
//
// A search drives, per bit, the T and F search lines according to the key:
//
//	key 0 → (T=VH, F=VL): stored 1 discharges through F ⇒ mismatch
//	key 1 → (T=VL, F=VH): stored 0 discharges through T ⇒ mismatch
//	key Z → (T=VL, F=VL): both 0 and 1 discharge; only X matches
//	key - → (T=VH, F=VH): position excluded from the search
//
// The two concrete designs differ only in how the two cells of a bit are
// placed, which determines write latency (§IV-B):
//
//   - Monolithic (previous works [37][56][25]): both cells sit in one
//     crossbar and share a write circuit, so they are programmed
//     sequentially — 2 pulse slots per TCAM bit.
//   - Separated (Hyper-AP's logical-unified-physical-separated design):
//     the cells sit in two crossbars with independent write circuits and
//     are programmed in parallel — 1 pulse slot per TCAM bit, halving the
//     write latency.
//
// Both designs carry the fault model of fault.go: rows are logical and
// routed through a remap table, every write is verified against the
// effective cell states when faults are possible, and a failing row is
// repaired onto a spare physical row (or surfaces a FaultError).
//
// The match and selector hot paths are word-parallel: SearchVec and
// WriteVec move whole bit-planes (64 rows per machine word) and the
// []bool Search/Write methods are thin compatibility wrappers.
type Design interface {
	// Rows returns the number of logical word rows (SIMD slots).
	Rows() int
	// Bits returns the number of TCAM bits per word.
	Bits() int
	// State reads back the stored state of one bit.
	State(row, bit int) bits.State
	// StateSafe reads back one bit, mapping the invalid (LRS,LRS) cell
	// pair — reachable only on cells a defect landed on before they were
	// ever written — to X instead of panicking. Snapshot/migration path.
	StateSafe(row, bit int) bits.State
	// Load programs one bit directly (data loading path, not an
	// associative write). A load is still a physical programming pulse
	// pair: it counts toward write stats and cell wear. With the fault
	// model active the written cell pair is verified and repaired; an
	// unrepairable cell returns a FaultError.
	Load(row, bit int, s bits.State) error
	// Search compares the key (one entry per bit) against every row in
	// parallel and returns the per-row match results.
	Search(keys []bits.Key) []bool
	// SearchVec is Search returning the logical match lines as a bit
	// vector (bit r set ⇔ row r matches). The vector is freshly
	// allocated and owned by the caller.
	SearchVec(keys []bits.Key) *bits.Vec
	// Write performs the associative write: the state implied by key is
	// written into the given bit column of every selected row. It returns
	// the number of sequential pulse slots consumed, and a FaultError
	// when a cell failed to program and could not be repaired.
	Write(bit int, key bits.Key, rowsel []bool) (int, error)
	// WriteVec is Write with the row selector as a bit vector (the tag
	// register, one bit per logical row). The selector is not mutated.
	WriteVec(bit int, key bits.Key, rowsel *bits.Vec) (int, error)
	// WritePerRow writes a per-row state into one bit column of every
	// selected row (the two-bit encoder's write path, §IV-A.2). It
	// returns the number of sequential pulse slots consumed, plus any
	// unrepairable FaultError.
	WritePerRow(bit int, states []bits.State, rowsel []bool) (int, error)
	// PulseSlotsPerBit returns the sequential pulse slots one TCAM-bit
	// write costs (2 for monolithic, 1 for separated).
	PulseSlotsPerBit() int
	// Stats returns the accumulated physical activity of all crossbars.
	Stats() Stats
	// WearReport returns the endurance exposure (per-cell programming
	// pulse counts) across all crossbars.
	WearReport() Wear
	// FaultReport returns the fault/repair counters across all
	// crossbars (zero value when the fault model is off).
	FaultReport() FaultReport
	// Arrays exposes the underlying crossbars (2 for separated, 1 for
	// monolithic) so callers can inspect per-array wear and faults.
	Arrays() []*Crossbar
	// ExportState snapshots the design's full lifetime state (planes,
	// wear, stuck cells, repair remap) for checkpointing (state.go).
	ExportState() DesignState
	// ImportState restores a previously exported state into this design.
	// Geometry and design kind must match; on error nothing is modified.
	ImportState(DesignState) error
}

func stateCells(s bits.State) (t, f Resist) {
	switch s {
	case bits.S0:
		return LRS, HRS
	case bits.S1:
		return HRS, LRS
	case bits.SX:
		return HRS, HRS
	}
	panic(fmt.Sprintf("tcam: invalid state %v", s))
}

func cellsState(t, f Resist) bits.State {
	switch {
	case t == LRS && f == HRS:
		return bits.S0
	case t == HRS && f == LRS:
		return bits.S1
	case t == HRS && f == HRS:
		return bits.SX
	}
	// (LRS, LRS) is the invalid fourth combination; write-verify repairs
	// or reports it before the pair is ever read back, so reaching it
	// indicates a modelling bug (or a read after an ignored FaultError).
	panic("tcam: cell pair in invalid (LRS,LRS) state")
}

// cellsStateSafe decodes a cell pair like cellsState but maps the
// invalid (LRS,LRS) combination to X. A pair can only hold it when a
// stuck-LRS defect landed on a never-written cell whose partner is also
// LRS; such a bit carries no data, and X keeps it inert for migration.
func cellsStateSafe(t, f Resist) bits.State {
	if t == LRS && f == LRS {
		return bits.SX
	}
	return cellsState(t, f)
}

func keyDrives(k bits.Key) (t, f Drive) {
	switch k {
	case bits.K0:
		return DriveVH, DriveVL
	case bits.K1:
		return DriveVL, DriveVH
	case bits.KZ:
		return DriveVL, DriveVL
	case bits.KDC:
		return DriveVH, DriveVH
	}
	panic(fmt.Sprintf("tcam: invalid key %v", k))
}

func vecToBools(v *bits.Vec) []bool {
	out := make([]bool, v.Len())
	v.ForEachSet(func(i int) { out[i] = true })
	return out
}

// Separated is Hyper-AP's TCAM array design: two crossbars, T cells in
// array A, F cells in array B, written in parallel (Fig. 7a).
type Separated struct {
	a, b *Crossbar
	rs   *repairState
}

// NewSeparated returns a fault-free separated-design TCAM of
// rows × bitsPerWord, all bits initialised to X (both cells HRS, the
// erased state).
func NewSeparated(rows, bitsPerWord int, p Params) *Separated {
	return NewSeparatedWithFaults(rows, bitsPerWord, p, FaultConfig{}, 0)
}

// NewSeparatedWithFaults returns a separated-design TCAM with the fault
// model active: fc.SpareRows extra physical rows per crossbar, a defect
// map drawn from fc.Seed, and write-verify on every write path. salt
// decorrelates this array's defects from other arrays sharing the seed
// (callers pass e.g. the PE index).
func NewSeparatedWithFaults(rows, bitsPerWord int, p Params, fc FaultConfig, salt int64) *Separated {
	rs := newRepairState(fc, rows)
	d := &Separated{
		a:  NewCrossbarWithFaults(rs.physRows, bitsPerWord, p, fc, 2*salt),
		b:  NewCrossbarWithFaults(rs.physRows, bitsPerWord, p, fc, 2*salt+1),
		rs: rs,
	}
	d.a.logicalRows = rs.logical
	d.b.logicalRows = rs.logical
	return d
}

// Rows returns the number of logical word rows.
func (d *Separated) Rows() int { return d.rs.logical }

// Bits returns the number of TCAM bits per word.
func (d *Separated) Bits() int { return d.a.Cols() }

// PulseSlotsPerBit returns 1: the two cells are written in parallel.
func (d *Separated) PulseSlotsPerBit() int { return 1 }

func (d *Separated) cellPair(physRow, bit int) (t, f Resist) {
	return d.a.Cell(physRow, bit), d.b.Cell(physRow, bit)
}

func (d *Separated) setCellPair(physRow, bit int, t, f Resist) {
	d.a.SetCell(physRow, bit, t)
	d.b.SetCell(physRow, bit, f)
}

func (d *Separated) bitsPerWord() int { return d.a.Cols() }

func (d *Separated) faultsPossible() bool {
	return d.a.faultsPossible() || d.b.faultsPossible()
}

// State reads back the stored state of one bit.
func (d *Separated) State(row, bit int) bits.State {
	return cellsState(d.cellPair(d.rs.remap[row], bit))
}

// StateSafe reads back one bit, mapping invalid pairs to X.
func (d *Separated) StateSafe(row, bit int) bits.State {
	return cellsStateSafe(d.cellPair(d.rs.remap[row], bit))
}

// Load programs one bit directly, verifying (and repairing) the written
// pair when faults are possible.
func (d *Separated) Load(row, bit int, s bits.State) error {
	t, f := stateCells(s)
	d.setCellPair(d.rs.remap[row], bit, t, f)
	if !d.faultsPossible() {
		return nil
	}
	return d.rs.verifyOne(d, row, bit, t, f)
}

// Search compares the key against every row; see SearchVec.
func (d *Separated) Search(keys []bits.Key) []bool {
	return vecToBools(d.SearchVec(keys))
}

// SearchVec compares the key against every row: the per-array sense
// vectors are ANDed word-wise (§IV-B) and gathered through the remap
// table so retired and spare rows (stored X — they would match
// everything) never surface.
func (d *Separated) SearchVec(keys []bits.Key) *bits.Vec {
	if len(keys) != d.Bits() {
		panic(fmt.Sprintf("tcam: %d keys for %d bits", len(keys), d.Bits()))
	}
	da := make([]Drive, d.Bits())
	db := make([]Drive, d.Bits())
	for i, k := range keys {
		da[i], db[i] = keyDrives(k)
	}
	ma := d.a.searchVec(da, d.rs.live)
	mb := d.b.searchVec(db, d.rs.live)
	ma.And(mb)
	return d.rs.gather(ma)
}

// Write performs the associative write of the key's state into one bit
// column of all selected rows.
func (d *Separated) Write(bit int, key bits.Key, rowsel []bool) (int, error) {
	return d.WriteVec(bit, key, boolsToVec(rowsel))
}

// WriteVec performs the associative write with the selector as a bit
// vector; both cell planes update word-wise in parallel.
func (d *Separated) WriteVec(bit int, key bits.Key, rowsel *bits.Vec) (int, error) {
	t, f := stateCells(key.WriteState())
	sel := d.rs.physSel(rowsel)
	pa := d.a.writeColumnMask(bit, sel, t)
	pb := d.b.writeColumnMask(bit, sel, f)
	p := maxInt(pa, pb) // parallel
	if !d.faultsPossible() {
		return p, nil
	}
	return p, d.rs.verifyColumn(d, bit, rowsel, func(int) (Resist, Resist) { return t, f })
}

// WritePerRow writes per-row states into one bit column of the selected
// rows.
func (d *Separated) WritePerRow(bit int, states []bits.State, rowsel []bool) (int, error) {
	ta := bits.NewVec(d.rs.physRows)
	tb := bits.NewVec(d.rs.physRows)
	for i, s := range states {
		t, f := stateCells(s)
		pr := d.rs.remap[i]
		ta.Set(pr, t == LRS)
		tb.Set(pr, f == LRS)
	}
	lsel := boolsToVec(rowsel)
	sel := d.rs.physSel(lsel)
	pa := d.a.writeColumnStatesMask(bit, sel, ta)
	pb := d.b.writeColumnStatesMask(bit, sel, tb)
	p := maxInt(pa, pb)
	if !d.faultsPossible() {
		return p, nil
	}
	return p, d.rs.verifyColumn(d, bit, lsel, func(r int) (Resist, Resist) { return stateCells(states[r]) })
}

// Stats returns the merged crossbar statistics.
func (d *Separated) Stats() Stats { return mergeStats(d.a.Stats, d.b.Stats) }

// WearReport merges the two crossbars' endurance reports.
func (d *Separated) WearReport() Wear { return mergeWear(d.a.WearReport(), d.b.WearReport()) }

// FaultReport merges the two crossbars' fault counters with the repair
// state.
func (d *Separated) FaultReport() FaultReport {
	return d.rs.fill(d.a.faultReport().Merge(d.b.faultReport()))
}

// Arrays returns the T and F crossbars.
func (d *Separated) Arrays() []*Crossbar { return []*Crossbar{d.a, d.b} }

// Monolithic is the traditional single-crossbar TCAM design: bit i's cells
// occupy columns 2i (T) and 2i+1 (F) and share one write circuit.
type Monolithic struct {
	x  *Crossbar
	rs *repairState
}

// NewMonolithic returns a fault-free monolithic-design TCAM of
// rows × bitsPerWord, all bits initialised to X.
func NewMonolithic(rows, bitsPerWord int, p Params) *Monolithic {
	return NewMonolithicWithFaults(rows, bitsPerWord, p, FaultConfig{}, 0)
}

// NewMonolithicWithFaults returns a monolithic-design TCAM with the
// fault model active (see NewSeparatedWithFaults).
func NewMonolithicWithFaults(rows, bitsPerWord int, p Params, fc FaultConfig, salt int64) *Monolithic {
	rs := newRepairState(fc, rows)
	d := &Monolithic{
		x:  NewCrossbarWithFaults(rs.physRows, 2*bitsPerWord, p, fc, 2*salt),
		rs: rs,
	}
	d.x.logicalRows = rs.logical
	return d
}

// Rows returns the number of logical word rows.
func (d *Monolithic) Rows() int { return d.rs.logical }

// Bits returns the number of TCAM bits per word.
func (d *Monolithic) Bits() int { return d.x.Cols() / 2 }

// PulseSlotsPerBit returns 2: the two cells share a write circuit and are
// programmed sequentially.
func (d *Monolithic) PulseSlotsPerBit() int { return 2 }

func (d *Monolithic) cellPair(physRow, bit int) (t, f Resist) {
	return d.x.Cell(physRow, 2*bit), d.x.Cell(physRow, 2*bit+1)
}

func (d *Monolithic) setCellPair(physRow, bit int, t, f Resist) {
	d.x.SetCell(physRow, 2*bit, t)
	d.x.SetCell(physRow, 2*bit+1, f)
}

func (d *Monolithic) bitsPerWord() int { return d.x.Cols() / 2 }

func (d *Monolithic) faultsPossible() bool { return d.x.faultsPossible() }

// State reads back the stored state of one bit.
func (d *Monolithic) State(row, bit int) bits.State {
	return cellsState(d.cellPair(d.rs.remap[row], bit))
}

// StateSafe reads back one bit, mapping invalid pairs to X.
func (d *Monolithic) StateSafe(row, bit int) bits.State {
	return cellsStateSafe(d.cellPair(d.rs.remap[row], bit))
}

// Load programs one bit directly, verifying (and repairing) the written
// pair when faults are possible.
func (d *Monolithic) Load(row, bit int, s bits.State) error {
	t, f := stateCells(s)
	d.setCellPair(d.rs.remap[row], bit, t, f)
	if !d.faultsPossible() {
		return nil
	}
	return d.rs.verifyOne(d, row, bit, t, f)
}

// Search compares the key against every row; see SearchVec.
func (d *Monolithic) Search(keys []bits.Key) []bool {
	return vecToBools(d.SearchVec(keys))
}

// SearchVec compares the key against every row in one crossbar search,
// gathered through the remap table.
func (d *Monolithic) SearchVec(keys []bits.Key) *bits.Vec {
	if len(keys) != d.Bits() {
		panic(fmt.Sprintf("tcam: %d keys for %d bits", len(keys), d.Bits()))
	}
	drives := make([]Drive, d.x.Cols())
	for i, k := range keys {
		drives[2*i], drives[2*i+1] = keyDrives(k)
	}
	return d.rs.gather(d.x.searchVec(drives, d.rs.live))
}

// Write performs the associative write; the two cells are written
// sequentially (2 pulse slots).
func (d *Monolithic) Write(bit int, key bits.Key, rowsel []bool) (int, error) {
	return d.WriteVec(bit, key, boolsToVec(rowsel))
}

// WriteVec performs the associative write with the selector as a bit
// vector; the two cell columns are written sequentially.
func (d *Monolithic) WriteVec(bit int, key bits.Key, rowsel *bits.Vec) (int, error) {
	t, f := stateCells(key.WriteState())
	sel := d.rs.physSel(rowsel)
	p := d.x.writeColumnMask(2*bit, sel, t)
	p += d.x.writeColumnMask(2*bit+1, sel, f)
	if !d.faultsPossible() {
		return p, nil
	}
	return p, d.rs.verifyColumn(d, bit, rowsel, func(int) (Resist, Resist) { return t, f })
}

// WritePerRow writes per-row states; the two cells are written
// sequentially.
func (d *Monolithic) WritePerRow(bit int, states []bits.State, rowsel []bool) (int, error) {
	ta := bits.NewVec(d.rs.physRows)
	tb := bits.NewVec(d.rs.physRows)
	for i, s := range states {
		t, f := stateCells(s)
		pr := d.rs.remap[i]
		ta.Set(pr, t == LRS)
		tb.Set(pr, f == LRS)
	}
	lsel := boolsToVec(rowsel)
	sel := d.rs.physSel(lsel)
	p := d.x.writeColumnStatesMask(2*bit, sel, ta)
	p += d.x.writeColumnStatesMask(2*bit+1, sel, tb)
	if !d.faultsPossible() {
		return p, nil
	}
	return p, d.rs.verifyColumn(d, bit, lsel, func(r int) (Resist, Resist) { return stateCells(states[r]) })
}

// Stats returns the crossbar statistics.
func (d *Monolithic) Stats() Stats { return d.x.Stats }

// WearReport returns the crossbar's endurance report.
func (d *Monolithic) WearReport() Wear { return d.x.WearReport() }

// FaultReport returns the crossbar's fault counters merged with the
// repair state.
func (d *Monolithic) FaultReport() FaultReport {
	return d.rs.fill(d.x.faultReport())
}

// Arrays returns the single crossbar.
func (d *Monolithic) Arrays() []*Crossbar { return []*Crossbar{d.x} }

func mergeStats(a, b Stats) Stats {
	return Stats{
		Searches:          a.Searches + b.Searches,
		SearchedCells:     a.SearchedCells + b.SearchedCells,
		CellWrites:        a.CellWrites + b.CellWrites,
		HalfSelected:      a.HalfSelected + b.HalfSelected,
		DisturbViolations: a.DisturbViolations + b.DisturbViolations,
	}
}

// mergeWear combines two endurance reports, weighting the per-cell means
// by each report's logical cell capacity so arrays of different sizes
// merge correctly.
func mergeWear(a, b Wear) Wear {
	w := Wear{MaxPulses: a.MaxPulses, Cells: a.Cells + b.Cells}
	if b.MaxPulses > w.MaxPulses {
		w.MaxPulses = b.MaxPulses
	}
	if w.Cells > 0 {
		w.MeanPulses = (a.MeanPulses*float64(a.Cells) + b.MeanPulses*float64(b.Cells)) / float64(w.Cells)
		w.WrittenFrac = (a.WrittenFrac*float64(a.Cells) + b.WrittenFrac*float64(b.Cells)) / float64(w.Cells)
	}
	return w
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
