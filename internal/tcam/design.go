package tcam

import (
	"fmt"

	"hyperap/internal/bits"
)

// A Design is a rows × bits ternary CAM built from 1D1R crossbars. One
// TCAM bit occupies two RRAM cells — a "true" cell T and a "false" cell F:
//
//	state 0 → (T=LRS, F=HRS)
//	state 1 → (T=HRS, F=LRS)
//	state X → (T=HRS, F=HRS)   (no discharge path: matches everything)
//
// A search drives, per bit, the T and F search lines according to the key:
//
//	key 0 → (T=VH, F=VL): stored 1 discharges through F ⇒ mismatch
//	key 1 → (T=VL, F=VH): stored 0 discharges through T ⇒ mismatch
//	key Z → (T=VL, F=VL): both 0 and 1 discharge; only X matches
//	key - → (T=VH, F=VH): position excluded from the search
//
// The two concrete designs differ only in how the two cells of a bit are
// placed, which determines write latency (§IV-B):
//
//   - Monolithic (previous works [37][56][25]): both cells sit in one
//     crossbar and share a write circuit, so they are programmed
//     sequentially — 2 pulse slots per TCAM bit.
//   - Separated (Hyper-AP's logical-unified-physical-separated design):
//     the cells sit in two crossbars with independent write circuits and
//     are programmed in parallel — 1 pulse slot per TCAM bit, halving the
//     write latency.
type Design interface {
	// Rows returns the number of word rows (SIMD slots).
	Rows() int
	// Bits returns the number of TCAM bits per word.
	Bits() int
	// State reads back the stored state of one bit.
	State(row, bit int) bits.State
	// Load programs one bit directly (data loading path, not an
	// associative write).
	Load(row, bit int, s bits.State)
	// Search compares the key (one entry per bit) against every row in
	// parallel and returns the per-row match results.
	Search(keys []bits.Key) []bool
	// Write performs the associative write: the state implied by key is
	// written into the given bit column of every selected row. It returns
	// the number of sequential pulse slots consumed.
	Write(bit int, key bits.Key, rowsel []bool) int
	// WritePerRow writes a per-row state into one bit column of every
	// selected row (the two-bit encoder's write path, §IV-A.2). It
	// returns the number of sequential pulse slots consumed.
	WritePerRow(bit int, states []bits.State, rowsel []bool) int
	// PulseSlotsPerBit returns the sequential pulse slots one TCAM-bit
	// write costs (2 for monolithic, 1 for separated).
	PulseSlotsPerBit() int
	// Stats returns the accumulated physical activity of all crossbars.
	Stats() Stats
	// WearReport returns the endurance exposure (per-cell programming
	// pulse counts) across all crossbars.
	WearReport() Wear
}

func stateCells(s bits.State) (t, f Resist) {
	switch s {
	case bits.S0:
		return LRS, HRS
	case bits.S1:
		return HRS, LRS
	case bits.SX:
		return HRS, HRS
	}
	panic(fmt.Sprintf("tcam: invalid state %v", s))
}

func cellsState(t, f Resist) bits.State {
	switch {
	case t == LRS && f == HRS:
		return bits.S0
	case t == HRS && f == LRS:
		return bits.S1
	case t == HRS && f == HRS:
		return bits.SX
	}
	// (LRS, LRS) is the invalid fourth combination; it cannot be produced
	// through Load/Write, so reaching it indicates a modelling bug.
	panic("tcam: cell pair in invalid (LRS,LRS) state")
}

func keyDrives(k bits.Key) (t, f Drive) {
	switch k {
	case bits.K0:
		return DriveVH, DriveVL
	case bits.K1:
		return DriveVL, DriveVH
	case bits.KZ:
		return DriveVL, DriveVL
	case bits.KDC:
		return DriveVH, DriveVH
	}
	panic(fmt.Sprintf("tcam: invalid key %v", k))
}

// Separated is Hyper-AP's TCAM array design: two crossbars, T cells in
// array A, F cells in array B, written in parallel (Fig. 7a).
type Separated struct {
	a, b *Crossbar
}

// NewSeparated returns a separated-design TCAM of rows × bitsPerWord, all
// bits initialised to X (both cells HRS, the erased state).
func NewSeparated(rows, bitsPerWord int, p Params) *Separated {
	return &Separated{
		a: NewCrossbar(rows, bitsPerWord, p),
		b: NewCrossbar(rows, bitsPerWord, p),
	}
}

// Rows returns the number of word rows.
func (d *Separated) Rows() int { return d.a.Rows() }

// Bits returns the number of TCAM bits per word.
func (d *Separated) Bits() int { return d.a.Cols() }

// PulseSlotsPerBit returns 1: the two cells are written in parallel.
func (d *Separated) PulseSlotsPerBit() int { return 1 }

// State reads back the stored state of one bit.
func (d *Separated) State(row, bit int) bits.State {
	return cellsState(d.a.Cell(row, bit), d.b.Cell(row, bit))
}

// Load programs one bit directly.
func (d *Separated) Load(row, bit int, s bits.State) {
	t, f := stateCells(s)
	d.a.SetCell(row, bit, t)
	d.b.SetCell(row, bit, f)
}

// Search compares the key against every row; the per-array sense results
// are ANDed (§IV-B).
func (d *Separated) Search(keys []bits.Key) []bool {
	if len(keys) != d.Bits() {
		panic(fmt.Sprintf("tcam: %d keys for %d bits", len(keys), d.Bits()))
	}
	da := make([]Drive, d.Bits())
	db := make([]Drive, d.Bits())
	for i, k := range keys {
		da[i], db[i] = keyDrives(k)
	}
	ma := d.a.Search(da)
	mb := d.b.Search(db)
	for i := range ma {
		ma[i] = ma[i] && mb[i]
	}
	return ma
}

// Write performs the associative write of the key's state into one bit
// column of all selected rows.
func (d *Separated) Write(bit int, key bits.Key, rowsel []bool) int {
	t, f := stateCells(key.WriteState())
	pa := d.a.WriteColumn(bit, rowsel, t)
	pb := d.b.WriteColumn(bit, rowsel, f)
	return maxInt(pa, pb) // parallel
}

// WritePerRow writes per-row states into one bit column of the selected
// rows.
func (d *Separated) WritePerRow(bit int, states []bits.State, rowsel []bool) int {
	ta := make([]Resist, len(states))
	tb := make([]Resist, len(states))
	for i, s := range states {
		ta[i], tb[i] = stateCells(s)
	}
	pa := d.a.WriteColumnStates(bit, rowsel, ta)
	pb := d.b.WriteColumnStates(bit, rowsel, tb)
	return maxInt(pa, pb)
}

// Stats returns the merged crossbar statistics.
func (d *Separated) Stats() Stats { return mergeStats(d.a.Stats, d.b.Stats) }

// WearReport merges the two crossbars' endurance reports.
func (d *Separated) WearReport() Wear { return mergeWear(d.a.WearReport(), d.b.WearReport()) }

// Monolithic is the traditional single-crossbar TCAM design: bit i's cells
// occupy columns 2i (T) and 2i+1 (F) and share one write circuit.
type Monolithic struct {
	x *Crossbar
}

// NewMonolithic returns a monolithic-design TCAM of rows × bitsPerWord,
// all bits initialised to X.
func NewMonolithic(rows, bitsPerWord int, p Params) *Monolithic {
	return &Monolithic{x: NewCrossbar(rows, 2*bitsPerWord, p)}
}

// Rows returns the number of word rows.
func (d *Monolithic) Rows() int { return d.x.Rows() }

// Bits returns the number of TCAM bits per word.
func (d *Monolithic) Bits() int { return d.x.Cols() / 2 }

// PulseSlotsPerBit returns 2: the two cells share a write circuit and are
// programmed sequentially.
func (d *Monolithic) PulseSlotsPerBit() int { return 2 }

// State reads back the stored state of one bit.
func (d *Monolithic) State(row, bit int) bits.State {
	return cellsState(d.x.Cell(row, 2*bit), d.x.Cell(row, 2*bit+1))
}

// Load programs one bit directly.
func (d *Monolithic) Load(row, bit int, s bits.State) {
	t, f := stateCells(s)
	d.x.SetCell(row, 2*bit, t)
	d.x.SetCell(row, 2*bit+1, f)
}

// Search compares the key against every row in one crossbar search.
func (d *Monolithic) Search(keys []bits.Key) []bool {
	if len(keys) != d.Bits() {
		panic(fmt.Sprintf("tcam: %d keys for %d bits", len(keys), d.Bits()))
	}
	drives := make([]Drive, d.x.Cols())
	for i, k := range keys {
		drives[2*i], drives[2*i+1] = keyDrives(k)
	}
	return d.x.Search(drives)
}

// Write performs the associative write; the two cells are written
// sequentially (2 pulse slots).
func (d *Monolithic) Write(bit int, key bits.Key, rowsel []bool) int {
	t, f := stateCells(key.WriteState())
	p := d.x.WriteColumn(2*bit, rowsel, t)
	p += d.x.WriteColumn(2*bit+1, rowsel, f)
	return p
}

// WritePerRow writes per-row states; the two cells are written
// sequentially.
func (d *Monolithic) WritePerRow(bit int, states []bits.State, rowsel []bool) int {
	ta := make([]Resist, len(states))
	tb := make([]Resist, len(states))
	for i, s := range states {
		ta[i], tb[i] = stateCells(s)
	}
	p := d.x.WriteColumnStates(2*bit, rowsel, ta)
	p += d.x.WriteColumnStates(2*bit+1, rowsel, tb)
	return p
}

// Stats returns the crossbar statistics.
func (d *Monolithic) Stats() Stats { return d.x.Stats }

// WearReport returns the crossbar's endurance report.
func (d *Monolithic) WearReport() Wear { return d.x.WearReport() }

func mergeStats(a, b Stats) Stats {
	return Stats{
		Searches:          a.Searches + b.Searches,
		SearchedCells:     a.SearchedCells + b.SearchedCells,
		CellWrites:        a.CellWrites + b.CellWrites,
		HalfSelected:      a.HalfSelected + b.HalfSelected,
		DisturbViolations: a.DisturbViolations + b.DisturbViolations,
	}
}

func mergeWear(a, b Wear) Wear {
	w := Wear{
		MaxPulses:   a.MaxPulses,
		MeanPulses:  (a.MeanPulses + b.MeanPulses) / 2,
		WrittenFrac: (a.WrittenFrac + b.WrittenFrac) / 2,
	}
	if b.MaxPulses > w.MaxPulses {
		w.MaxPulses = b.MaxPulses
	}
	return w
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
