package tcam

import (
	"errors"
	"reflect"
	"testing"

	"hyperap/internal/bits"
)

// TestFaultDeterminism: the same seed must reproduce the same defect
// map, bit for bit, across independent constructions — the property the
// Monte Carlo campaign and the paired repair/no-repair comparison rest
// on.
func TestFaultDeterminism(t *testing.T) {
	fc := FaultConfig{Seed: 42, StuckAtRate: 0.05, SpareRows: 2}
	a := NewSeparatedWithFaults(16, 8, DefaultParams(), fc, 7)
	b := NewSeparatedWithFaults(16, 8, DefaultParams(), fc, 7)
	for i, xa := range a.Arrays() {
		xb := b.Arrays()[i]
		if !reflect.DeepEqual(xa.stuckH, xb.stuckH) || !reflect.DeepEqual(xa.stuckL, xb.stuckL) {
			t.Fatalf("array %d: same seed+salt produced different defect maps", i)
		}
	}
	// A different salt (another PE) must decorrelate.
	c := NewSeparatedWithFaults(16, 8, DefaultParams(), fc, 8)
	same := true
	for i, xa := range a.Arrays() {
		xc := c.Arrays()[i]
		if !reflect.DeepEqual(xa.stuckH, xc.stuckH) || !reflect.DeepEqual(xa.stuckL, xc.stuckL) {
			same = false
		}
	}
	if same {
		t.Error("different salts produced identical defect maps")
	}
	if a.FaultReport().InjectedStuck == 0 {
		t.Error("5% stuck-at rate injected no defects in a 18x8x2-cell design")
	}
}

// TestZeroConfigIsFaultFree: the zero FaultConfig must leave no fault
// machinery active — no stuck slice, no spare rows, no verification.
func TestZeroConfigIsFaultFree(t *testing.T) {
	d := NewSeparated(8, 4, DefaultParams())
	for _, x := range d.Arrays() {
		if x.stuckAny != nil || x.faultsPossible() {
			t.Fatal("fault-free design has fault machinery active")
		}
		if x.Rows() != 8 {
			t.Fatalf("fault-free design allocated %d physical rows, want 8", x.Rows())
		}
	}
	if r := d.FaultReport(); r != (FaultReport{}) {
		t.Errorf("fault-free report not zero: %+v", r)
	}
}

// TestWriteVerifyRepair places one stuck cell under a row that then gets
// written: the mismatch must be detected, the row remapped to a spare,
// and every subsequent read and search must be bit-identical to a
// fault-free twin.
func TestWriteVerifyRepair(t *testing.T) {
	for _, tc := range []struct {
		name  string
		mk    func(fc FaultConfig) Design
		mkRef func() Design
	}{
		{"separated",
			func(fc FaultConfig) Design { return NewSeparatedWithFaults(4, 3, DefaultParams(), fc, 0) },
			func() Design { return NewSeparated(4, 3, DefaultParams()) }},
		{"monolithic",
			func(fc FaultConfig) Design { return NewMonolithicWithFaults(4, 3, DefaultParams(), fc, 0) },
			func() Design { return NewMonolithic(4, 3, DefaultParams()) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d := tc.mk(FaultConfig{SpareRows: 2})
			ref := tc.mkRef()
			// Bit 1 of row 2 will be written 0 (T cell must reach LRS);
			// pin its T cell to HRS so the write cannot take. The T cell
			// of bit 1 is column 1 (separated, array A) / column 2
			// (monolithic).
			tCol := 1
			if tc.name == "monolithic" {
				tCol = 2
			}
			d.Arrays()[0].ForceStuck(2, tCol, HRS)

			load := func(dd Design) {
				for r := 0; r < 4; r++ {
					for b := 0; b < 3; b++ {
						if err := dd.Load(r, b, bits.S1); err != nil {
							t.Fatalf("load (%d,%d): %v", r, b, err)
						}
					}
				}
			}
			load(d)
			load(ref)
			sel := []bool{false, false, true, true}
			if _, err := d.Write(1, bits.K0, sel); err != nil {
				t.Fatalf("write with spare rows available: %v", err)
			}
			if _, err := ref.Write(1, bits.K0, sel); err != nil {
				t.Fatalf("fault-free write: %v", err)
			}
			r := d.FaultReport()
			if r.Detected < 1 || r.Repairs < 1 {
				t.Fatalf("stuck cell not detected/repaired: %+v", r)
			}
			// State readback and search must now match the fault-free twin.
			for row := 0; row < 4; row++ {
				for b := 0; b < 3; b++ {
					if got, want := d.State(row, b), ref.State(row, b); got != want {
						t.Errorf("state(%d,%d) = %v, fault-free %v", row, b, got, want)
					}
				}
			}
			for _, keys := range [][]bits.Key{
				{bits.KDC, bits.K0, bits.KDC},
				{bits.K1, bits.K1, bits.K1},
				{bits.KDC, bits.K1, bits.KDC},
			} {
				if got, want := d.Search(keys), ref.Search(keys); !reflect.DeepEqual(got, want) {
					t.Errorf("search %v = %v, fault-free %v", keys, got, want)
				}
			}
		})
	}
}

// TestRepairDisabledReports: the same defect with DisableRepair must
// surface a typed FaultError instead of silently losing the write.
func TestRepairDisabledReports(t *testing.T) {
	d := NewSeparatedWithFaults(4, 3, DefaultParams(), FaultConfig{SpareRows: 2, DisableRepair: true}, 0)
	d.Arrays()[0].ForceStuck(2, 1, HRS)
	sel := []bool{false, false, true, false}
	_, err := d.Write(1, bits.K0, sel)
	var fe *FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("repair disabled: err = %v, want *FaultError", err)
	}
	if fe.Row != 2 || fe.Bit != 1 {
		t.Errorf("FaultError at (%d,%d), want (2,1)", fe.Row, fe.Bit)
	}
	if r := d.FaultReport(); r.Detected < 1 || r.Repairs != 0 {
		t.Errorf("detect-only report: %+v", r)
	}
}

// TestSpareExhaustion: more failing rows than spares must end in a
// FaultError naming the exhaustion, not a wrong result.
func TestSpareExhaustion(t *testing.T) {
	d := NewSeparatedWithFaults(4, 2, DefaultParams(), FaultConfig{SpareRows: 1}, 0)
	// Rows 0 and 1 both carry a conflicting stuck cell on bit 0's T cell;
	// one spare can absorb only the first.
	d.Arrays()[0].ForceStuck(0, 0, HRS)
	d.Arrays()[0].ForceStuck(1, 0, HRS)
	sel := []bool{true, true, false, false}
	_, err := d.Write(0, bits.K0, sel)
	var fe *FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("exhausted spares: err = %v, want *FaultError", err)
	}
	r := d.FaultReport()
	if r.Repairs != 1 || r.SparesUsed != 1 || r.SparesTotal != 1 {
		t.Errorf("report after exhaustion: %+v", r)
	}
}

// TestBadSpareIsBurned: a spare row carrying its own conflicting defect
// must be skipped (copy-verify fails) and the next spare used.
func TestBadSpareIsBurned(t *testing.T) {
	d := NewSeparatedWithFaults(4, 2, DefaultParams(), FaultConfig{SpareRows: 2}, 0)
	d.Arrays()[0].ForceStuck(1, 0, HRS) // the failing data row
	d.Arrays()[0].ForceStuck(4, 0, HRS) // physical spare 0: same defect
	sel := []bool{false, true, false, false}
	if _, err := d.Write(0, bits.K0, sel); err != nil {
		t.Fatalf("second spare should absorb the repair: %v", err)
	}
	r := d.FaultReport()
	if r.Repairs != 1 || r.SparesUsed != 2 {
		t.Errorf("bad spare not burned: %+v", r)
	}
	if got := d.State(1, 0); got != bits.S0 {
		t.Errorf("repaired bit = %v, want S0", got)
	}
}

// TestEnduranceWearOut: cells written past the budget die and the death
// is caught by write-verify (repaired onto a spare here).
func TestEnduranceWearOut(t *testing.T) {
	d := NewSeparatedWithFaults(2, 2, DefaultParams(), FaultConfig{Seed: 3, EnduranceBudget: 4, SpareRows: 4}, 0)
	sel := []bool{true, false}
	var lastErr error
	for i := 0; i < 16 && lastErr == nil; i++ {
		// Alternate polarity so each pulse actually programs.
		k := bits.K0
		if i%2 == 1 {
			k = bits.K1
		}
		_, lastErr = d.Write(0, k, sel)
	}
	r := d.FaultReport()
	if r.EnduranceFailed == 0 {
		t.Fatalf("16 writes at budget 4 killed no cells: %+v (err %v)", r, lastErr)
	}
	if r.Detected == 0 {
		t.Errorf("endurance deaths never detected by write-verify: %+v", r)
	}
}

// TestTransientUpsets: with upset rate 1 every sensed row flips and is
// counted; with the same seed the flip pattern reproduces exactly.
func TestTransientUpsets(t *testing.T) {
	mk := func() Design {
		return NewSeparatedWithFaults(4, 2, DefaultParams(), FaultConfig{Seed: 9, TransientUpsetRate: 1}, 0)
	}
	d := mk()
	m1 := d.Search([]bits.Key{bits.KDC, bits.KDC})
	if d.FaultReport().TransientUpsets != 8 { // 4 rows × 2 arrays
		t.Errorf("upsets = %d, want 8", d.FaultReport().TransientUpsets)
	}
	if m2 := mk().Search([]bits.Key{bits.KDC, bits.KDC}); !reflect.DeepEqual(m1, m2) {
		t.Error("same seed produced different upset patterns")
	}
}

// TestFaultReportMerge is the counters' arithmetic sanity check.
func TestFaultReportMerge(t *testing.T) {
	a := FaultReport{InjectedStuck: 1, Detected: 2, Repairs: 3, SparesUsed: 1, SparesTotal: 4}
	b := FaultReport{InjectedStuck: 2, Detected: 1, TransientUpsets: 5, SparesTotal: 4}
	got := a.Merge(b)
	want := FaultReport{InjectedStuck: 3, Detected: 3, Repairs: 3, TransientUpsets: 5, SparesUsed: 1, SparesTotal: 8}
	if got != want {
		t.Errorf("merge = %+v, want %+v", got, want)
	}
}
