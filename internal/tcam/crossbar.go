// Package tcam models the 2D2R ternary content-addressable memory that
// Hyper-AP is built from (paper §II-E and §IV-B).
//
// The package has two layers:
//
//   - an electrical layer (Crossbar) that models 1D1R cells — one
//     bidirectional diode in series with one RRAM element — match-line
//     precharge/discharge currents during search, and the V/3 write scheme
//     with sneak-path and disturb accounting (Fig. 3);
//   - a logical layer (Monolithic and Separated array designs) that
//     composes crossbars into a rows × bits TCAM with the state/key
//     semantics of Fig. 4 and exposes the write-latency difference between
//     the traditional monolithic design and Hyper-AP's
//     logical-unified-physical-separated design (Fig. 7).
//
// Tests verify that the electrical search path and the logical match rule
// agree cell-for-cell, so higher layers can use the fast logical path
// without losing fidelity.
package tcam

import (
	"fmt"
	"math/rand"
)

// Resist is the state of one RRAM element.
type Resist uint8

const (
	HRS Resist = iota // high-resistance state (logic "off")
	LRS               // low-resistance state (conducting)
)

func (r Resist) String() string {
	if r == LRS {
		return "LRS"
	}
	return "HRS"
}

// Drive is the voltage applied to one search line during a search.
type Drive uint8

const (
	DriveVH Drive = iota // high search voltage: diode stays off, no discharge
	DriveVL              // low search voltage: conducting cells discharge the ML
)

// Params collects the electrical constants of the 2D2R TCAM. The defaults
// mirror the device data the paper simulates with (§VI-A.3): a
// TiN/Ta2O5/Ta RRAM with Ron/Roff = 20 kΩ / 300 kΩ [23], a FAST selector
// diode with 0.4 V turn-on [34], and the sensing scheme of [39].
type Params struct {
	Ron    float64 // LRS resistance, ohms
	Roff   float64 // HRS resistance, ohms
	VPre   float64 // match-line precharge voltage, volts
	VH     float64 // high search-line voltage, volts
	VL     float64 // low search-line voltage, volts
	VDiode float64 // diode turn-on voltage, volts
	VWrite float64 // full write voltage (V/3 scheme applies V, V/3, -V/3)
	// SelectorSuppression models the FAST selector's nonlinearity [34]:
	// in an HRS cell most of the drive voltage drops across the RRAM, so
	// the diode operates far below its linear region and suppresses the
	// leak by orders of magnitude (the selector is specified at ~1e7
	// selectivity; we use a conservative factor).
	SelectorSuppression float64
	IThreshA            float64 // SA current threshold, amps: above ⇒ mismatch
	WritePulseNS        float64 // single RRAM SET/RESET pulse width, ns
}

// DefaultParams returns the constants used throughout the evaluation.
func DefaultParams() Params {
	return Params{
		Ron:                 20e3,
		Roff:                300e3,
		VPre:                1.0,
		VH:                  0.95,
		VL:                  0.0,
		VDiode:              0.4,
		VWrite:              1.9, // SET 1.9V@10ns, RESET 1.6V@10ns; V/3 uses the larger
		SelectorSuppression: 100,
		IThreshA:            15e-6,
		WritePulseNS:        10,
	}
}

// cellCurrent returns the discharge current one cell contributes to its
// precharged match line for a given search-line drive.
func (p Params) cellCurrent(r Resist, d Drive) float64 {
	var vsl float64
	switch d {
	case DriveVH:
		vsl = p.VH
	case DriveVL:
		vsl = p.VL
	}
	v := p.VPre - vsl
	if v <= p.VDiode {
		return 0 // diode off: no path
	}
	if r == LRS {
		return (v - p.VDiode) / p.Ron
	}
	return (v - p.VDiode) / (p.Roff * p.SelectorSuppression)
}

// LeakPerCell returns the match-line leak current of one non-conducting
// (HRS) cell on a VL-driven search line.
func (p Params) LeakPerCell() float64 { return p.cellCurrent(HRS, DriveVL) }

// MismatchCurrent returns the discharge current of a single conducting
// (LRS) cell on a VL-driven search line — the minimum mismatch signal.
func (p Params) MismatchCurrent() float64 { return p.cellCurrent(LRS, DriveVL) }

// SearchMargin returns the sensing margin (amps) for a search that drives
// nActive cells per row: the distance between the smallest possible
// mismatch current and the largest possible match (all-leak) current,
// relative to the SA threshold. A non-positive value means searches of
// this width are no longer robust; the paper's 12-input lookup-table limit
// keeps real searches far inside the robust region (§V-B.4).
func (p Params) SearchMargin(nActive int) float64 {
	leak := float64(nActive) * p.LeakPerCell()
	mm := p.MismatchCurrent()
	lo := p.IThreshA - leak // room below threshold for a clean match
	hi := mm - p.IThreshA   // room above threshold for a clean mismatch
	if lo < hi {
		return lo
	}
	return hi
}

// Crossbar is a rows × cols array of 1D1R cells. Match lines run along
// rows, search lines along columns (Fig. 3a).
type Crossbar struct {
	rows, cols int
	p          Params
	cells      []Resist // row-major: the state writes *try* to program
	wear       []uint32 // per-cell programming-pulse counts (endurance)

	// Fault model (fault.go). stuck is nil on a fault-free crossbar, so
	// the healthy read path costs one predictable branch.
	fc              FaultConfig
	rng             *rand.Rand
	stuck           []uint8 // per-cell stuckNone/stuckHRS/stuckLRS
	injectedStuck   int
	enduranceFailed int
	transientUpsets int64

	// Statistics accumulated across the crossbar's lifetime.
	Stats Stats
}

// Stats counts the physical activity of a crossbar. The tech package
// converts these into energy.
type Stats struct {
	Searches          int64 // search operations
	SearchedCells     int64 // cells on driven-VL search lines during searches
	CellWrites        int64 // full-selected cell programming pulses
	HalfSelected      int64 // cells exposed to V/3 disturb during writes
	DisturbViolations int64 // cells whose |V| exceeded V/3 (should stay 0)
}

// NewCrossbar returns a crossbar with every cell in HRS (erased).
func NewCrossbar(rows, cols int, p Params) *Crossbar {
	if rows <= 0 || cols <= 0 {
		panic("tcam: non-positive crossbar dimensions")
	}
	return &Crossbar{rows: rows, cols: cols, p: p,
		cells: make([]Resist, rows*cols), wear: make([]uint32, rows*cols)}
}

// Rows returns the number of match lines.
func (c *Crossbar) Rows() int { return c.rows }

// Cols returns the number of search lines.
func (c *Crossbar) Cols() int { return c.cols }

func (c *Crossbar) idx(row, col int) int {
	if row < 0 || row >= c.rows || col < 0 || col >= c.cols {
		panic(fmt.Sprintf("tcam: cell (%d,%d) out of %dx%d crossbar", row, col, c.rows, c.cols))
	}
	return row*c.cols + col
}

// Cell returns the effective resistance state of one cell: the value it
// was programmed to, unless the cell is stuck (fault.go).
func (c *Crossbar) Cell(row, col int) Resist { return c.effective(c.idx(row, col)) }

// SetCell programs one cell directly, bypassing the write-scheme
// accounting. It is intended for loading initial data images.
func (c *Crossbar) SetCell(row, col int, r Resist) { c.cells[c.idx(row, col)] = r }

// Search drives every search line with drives[col] (len(drives) must equal
// Cols), senses every match line, and returns match[row] = true when the
// row's discharge current stays below the SA threshold (Fig. 3b: a
// mismatch produces a large discharging current).
func (c *Crossbar) Search(drives []Drive) []bool {
	if len(drives) != c.cols {
		panic(fmt.Sprintf("tcam: %d drives for %d columns", len(drives), c.cols))
	}
	c.Stats.Searches++
	// Only VL-driven lines conduct (VH keeps the diode off entirely), so
	// collect them once; real searches drive only a handful of lines.
	var vl []int
	for col, d := range drives {
		if d == DriveVL {
			vl = append(vl, col)
		}
	}
	c.Stats.SearchedCells += int64(len(vl)) * int64(c.rows)

	iLRS := c.p.cellCurrent(LRS, DriveVL)
	iHRS := c.p.cellCurrent(HRS, DriveVL)
	match := make([]bool, c.rows)
	for row := 0; row < c.rows; row++ {
		var i float64
		base := row * c.cols
		for _, col := range vl {
			if c.effective(base+col) == LRS {
				i += iLRS
			} else {
				i += iHRS
			}
		}
		match[row] = i < c.p.IThreshA
	}
	if c.fc.TransientUpsetRate > 0 {
		// Sense upsets flip match lines silently; nothing downstream can
		// detect them (no ECC on the match path), so they are counted
		// here and quantified by the fault campaign.
		for row := range match {
			if c.rng.Float64() < c.fc.TransientUpsetRate {
				match[row] = !match[row]
				c.transientUpsets++
			}
		}
	}
	return match
}

// WriteColumn programs the cells of one column using the V/3 scheme [11]:
// the selected search line carries the full write voltage, selected match
// lines are grounded, and every unselected line sits at V/3 or 2V/3 so
// that no unselected cell sees more than V/3. rowsel selects which rows
// are programmed; all programmed cells receive the same target state.
//
// The return value is the number of programming pulses (always 1: cells in
// one column sharing a search line are written in parallel, §IV-B).
func (c *Crossbar) WriteColumn(col int, rowsel []bool, target Resist) int {
	if len(rowsel) != c.rows {
		panic(fmt.Sprintf("tcam: %d row selects for %d rows", len(rowsel), c.rows))
	}
	selected := 0
	for row, sel := range rowsel {
		if sel {
			i := c.idx(row, col)
			c.cells[i] = target
			c.wearCell(i)
			selected++
		}
	}
	if selected == 0 {
		return 0
	}
	c.Stats.CellWrites += int64(selected)

	// V/3 disturb accounting: unselected cells on the selected column and
	// cells on selected rows in other columns each see V/3; everything
	// else sees -V/3. The diode's turn-on voltage (0.4 V) exceeds
	// V/3 ≈ 0.63 V? No: 1.9/3 ≈ 0.63 V > 0.4 V, so a small sneak current
	// flows; it is far below programming threshold, which is what the
	// scheme relies on. We count half-selected cells so the energy model
	// can charge for sneak leakage, and flag violations if the effective
	// half-select voltage were ever to exceed V/2 (it cannot under V/3
	// biasing, so DisturbViolations should remain zero).
	half := int64(c.rows-selected) + int64(selected)*int64(c.cols-1)
	c.Stats.HalfSelected += half
	if c.p.VWrite/3 > c.p.VWrite/2 { // structurally impossible; kept as an invariant
		c.Stats.DisturbViolations += half
	}
	return 1
}

// WriteColumnStates programs per-row target states into one column in a
// single pulse slot (internally a RESET half-pulse for the HRS targets
// followed by a SET half-pulse for the LRS targets; the slot still spans
// one WritePulseNS window per the ISA's 10-cycle cell-write budget). It is
// the write path behind the two-bit encoder, where each row receives its
// own encoded value.
func (c *Crossbar) WriteColumnStates(col int, rowsel []bool, targets []Resist) int {
	if len(rowsel) != c.rows || len(targets) != c.rows {
		panic("tcam: row selector / target length mismatch")
	}
	selected := 0
	for row, sel := range rowsel {
		if !sel {
			continue
		}
		i := c.idx(row, col)
		c.cells[i] = targets[row]
		c.wearCell(i)
		selected++
	}
	if selected == 0 {
		return 0
	}
	c.Stats.CellWrites += int64(selected)
	c.Stats.HalfSelected += int64(c.rows-selected) + int64(selected)*int64(c.cols-1)
	return 1
}

// Wear describes the endurance exposure of a crossbar: RRAM cells
// tolerate a bounded number of SET/RESET pulses (~1e6-1e12 depending on
// the device), so write-heavy associative execution must watch the
// per-cell maximum — this is the lifetime argument behind Hyper-AP's
// drastic write reduction.
type Wear struct {
	MaxPulses   uint32  // most-written cell
	MeanPulses  float64 // average over all cells
	WrittenFrac float64 // fraction of cells written at least once
}

// WearReport summarises per-cell programming activity.
func (c *Crossbar) WearReport() Wear {
	var w Wear
	var sum uint64
	written := 0
	for _, n := range c.wear {
		if n > w.MaxPulses {
			w.MaxPulses = n
		}
		if n > 0 {
			written++
		}
		sum += uint64(n)
	}
	w.MeanPulses = float64(sum) / float64(len(c.wear))
	w.WrittenFrac = float64(written) / float64(len(c.wear))
	return w
}

// LoadImage replaces the whole cell array. The image must be row-major
// with rows*cols entries.
func (c *Crossbar) LoadImage(img []Resist) {
	if len(img) != len(c.cells) {
		panic("tcam: image size mismatch")
	}
	copy(c.cells, img)
}
