// Package tcam models the 2D2R ternary content-addressable memory that
// Hyper-AP is built from (paper §II-E and §IV-B).
//
// The package has two layers:
//
//   - an electrical layer (Crossbar) that models 1D1R cells — one
//     bidirectional diode in series with one RRAM element — match-line
//     precharge/discharge currents during search, and the V/3 write scheme
//     with sneak-path and disturb accounting (Fig. 3);
//   - a logical layer (Monolithic and Separated array designs) that
//     composes crossbars into a rows × bits TCAM with the state/key
//     semantics of Fig. 4 and exposes the write-latency difference between
//     the traditional monolithic design and Hyper-AP's
//     logical-unified-physical-separated design (Fig. 7).
//
// Crossbar state is stored as per-column uint64 bit-planes (bit r of
// column c's plane set ⇔ cell (r,c) holds LRS), so the search and write
// hot paths evaluate 64 match lines per machine-word operation — the
// software-simulation analogue of the word-parallel operation that
// defines associative processing. The per-cell electrical model (diode
// currents, SA threshold) is retained as a validated slow path: searches
// route through it whenever the sensing decision is not margin-robust
// for the configured Params, and a differential test pins the two paths
// bit-identical (DESIGN.md §11).
//
// Tests verify that the electrical search path and the logical match rule
// agree cell-for-cell, so higher layers can use the fast logical path
// without losing fidelity.
package tcam

import (
	"fmt"
	"math/rand"

	"hyperap/internal/bits"
)

// Resist is the state of one RRAM element.
type Resist uint8

const (
	HRS Resist = iota // high-resistance state (logic "off")
	LRS               // low-resistance state (conducting)
)

func (r Resist) String() string {
	if r == LRS {
		return "LRS"
	}
	return "HRS"
}

// Drive is the voltage applied to one search line during a search.
type Drive uint8

const (
	DriveVH Drive = iota // high search voltage: diode stays off, no discharge
	DriveVL              // low search voltage: conducting cells discharge the ML
)

// Params collects the electrical constants of the 2D2R TCAM. The defaults
// mirror the device data the paper simulates with (§VI-A.3): a
// TiN/Ta2O5/Ta RRAM with Ron/Roff = 20 kΩ / 300 kΩ [23], a FAST selector
// diode with 0.4 V turn-on [34], and the sensing scheme of [39].
type Params struct {
	Ron    float64 // LRS resistance, ohms
	Roff   float64 // HRS resistance, ohms
	VPre   float64 // match-line precharge voltage, volts
	VH     float64 // high search-line voltage, volts
	VL     float64 // low search-line voltage, volts
	VDiode float64 // diode turn-on voltage, volts
	VWrite float64 // full write voltage (V/3 scheme applies V, V/3, -V/3)
	// SelectorSuppression models the FAST selector's nonlinearity [34]:
	// in an HRS cell most of the drive voltage drops across the RRAM, so
	// the diode operates far below its linear region and suppresses the
	// leak by orders of magnitude (the selector is specified at ~1e7
	// selectivity; we use a conservative factor).
	SelectorSuppression float64
	IThreshA            float64 // SA current threshold, amps: above ⇒ mismatch
	WritePulseNS        float64 // single RRAM SET/RESET pulse width, ns
}

// DefaultParams returns the constants used throughout the evaluation.
func DefaultParams() Params {
	return Params{
		Ron:                 20e3,
		Roff:                300e3,
		VPre:                1.0,
		VH:                  0.95,
		VL:                  0.0,
		VDiode:              0.4,
		VWrite:              1.9, // SET 1.9V@10ns, RESET 1.6V@10ns; V/3 uses the larger
		SelectorSuppression: 100,
		IThreshA:            15e-6,
		WritePulseNS:        10,
	}
}

// cellCurrent returns the discharge current one cell contributes to its
// precharged match line for a given search-line drive.
func (p Params) cellCurrent(r Resist, d Drive) float64 {
	var vsl float64
	switch d {
	case DriveVH:
		vsl = p.VH
	case DriveVL:
		vsl = p.VL
	}
	v := p.VPre - vsl
	if v <= p.VDiode {
		return 0 // diode off: no path
	}
	if r == LRS {
		return (v - p.VDiode) / p.Ron
	}
	return (v - p.VDiode) / (p.Roff * p.SelectorSuppression)
}

// LeakPerCell returns the match-line leak current of one non-conducting
// (HRS) cell on a VL-driven search line.
func (p Params) LeakPerCell() float64 { return p.cellCurrent(HRS, DriveVL) }

// MismatchCurrent returns the discharge current of a single conducting
// (LRS) cell on a VL-driven search line — the minimum mismatch signal.
func (p Params) MismatchCurrent() float64 { return p.cellCurrent(LRS, DriveVL) }

// SearchMargin returns the sensing margin (amps) for a search that drives
// nActive cells per row: the distance between the smallest possible
// mismatch current and the largest possible match (all-leak) current,
// relative to the SA threshold. A non-positive value means searches of
// this width are no longer robust; the paper's 12-input lookup-table limit
// keeps real searches far inside the robust region (§V-B.4).
func (p Params) SearchMargin(nActive int) float64 {
	leak := float64(nActive) * p.LeakPerCell()
	mm := p.MismatchCurrent()
	lo := p.IThreshA - leak // room below threshold for a clean match
	hi := mm - p.IThreshA   // room above threshold for a clean mismatch
	if lo < hi {
		return lo
	}
	return hi
}

// Crossbar is a rows × cols array of 1D1R cells. Match lines run along
// rows, search lines along columns (Fig. 3a). Cell state lives in
// per-column bit-planes: bit r of planes[c] set means cell (r,c) was
// programmed to LRS.
type Crossbar struct {
	rows, cols int
	// logicalRows is the endurance-reporting basis: the number of data
	// (non-spare) rows. It equals rows on a bare crossbar; array designs
	// that provision spare rows set it to their logical row count so
	// WearReport is not diluted by never-written spares.
	logicalRows int
	p           Params
	planes      []*bits.Vec // per-column LRS plane (rows bits each)
	wear        []uint32    // per-cell programming-pulse counts (endurance), row-major

	// forceElectrical routes every search through the per-cell electrical
	// model regardless of margin — the validated slow path, used by the
	// differential tests and the bench A/B harness.
	forceElectrical bool

	// Fault model (fault.go). The stuck planes are nil on a fault-free
	// crossbar, so the healthy read path costs one predictable branch.
	fc              FaultConfig
	rng             *rand.Rand
	stuckH          []*bits.Vec // per-column stuck-at-HRS plane
	stuckL          []*bits.Vec // per-column stuck-at-LRS plane
	stuckAny        []*bits.Vec // per-column union (stuckH | stuckL)
	injectedStuck   int
	enduranceFailed int
	transientUpsets int64

	// Statistics accumulated across the crossbar's lifetime.
	Stats Stats
}

// Stats counts the physical activity of a crossbar. The tech package
// converts these into energy.
type Stats struct {
	Searches          int64 // search operations
	SearchedCells     int64 // cells on driven-VL search lines during searches
	CellWrites        int64 // full-selected cell programming pulses
	HalfSelected      int64 // cells exposed to V/3 disturb during writes
	DisturbViolations int64 // cells whose |V| exceeded V/3 (should stay 0)
}

// NewCrossbar returns a crossbar with every cell in HRS (erased).
func NewCrossbar(rows, cols int, p Params) *Crossbar {
	if rows <= 0 || cols <= 0 {
		panic("tcam: non-positive crossbar dimensions")
	}
	c := &Crossbar{rows: rows, cols: cols, logicalRows: rows, p: p,
		planes: make([]*bits.Vec, cols), wear: make([]uint32, rows*cols)}
	for i := range c.planes {
		c.planes[i] = bits.NewVec(rows)
	}
	return c
}

// Rows returns the number of match lines.
func (c *Crossbar) Rows() int { return c.rows }

// Cols returns the number of search lines.
func (c *Crossbar) Cols() int { return c.cols }

func (c *Crossbar) checkCell(row, col int) {
	if row < 0 || row >= c.rows || col < 0 || col >= c.cols {
		panic(fmt.Sprintf("tcam: cell (%d,%d) out of %dx%d crossbar", row, col, c.rows, c.cols))
	}
}

// Cell returns the effective resistance state of one cell: the value it
// was programmed to, unless the cell is stuck (fault.go).
func (c *Crossbar) Cell(row, col int) Resist {
	c.checkCell(row, col)
	return c.effective(row, col)
}

// SetCell programs one cell directly (the data-loading path behind
// Design.Load). A direct program is still one physical SET/RESET pulse:
// it is counted in Stats.CellWrites and ages the cell toward the
// endurance budget, exactly as the write-verify machinery already treats
// it. Use LoadImage to install a raw image without pulse accounting.
func (c *Crossbar) SetCell(row, col int, r Resist) {
	c.checkCell(row, col)
	c.planes[col].Set(row, r == LRS)
	c.wearCell(row, col)
	c.Stats.CellWrites++
}

// ForceElectrical routes every search of this crossbar through the
// per-cell electrical model (the retained scalar slow path) when on is
// true. The word-parallel bit-plane path and the electrical path are
// bit-identical — this switch exists for the differential tests and for
// the bench harness's measured A/B, not for correctness.
func (c *Crossbar) ForceElectrical(on bool) { c.forceElectrical = on }

// Search drives every search line with drives[col] (len(drives) must equal
// Cols), senses every match line, and returns match[row] = true when the
// row's discharge current stays below the SA threshold (Fig. 3b: a
// mismatch produces a large discharging current).
func (c *Crossbar) Search(drives []Drive) []bool {
	m := c.searchVec(drives, nil)
	out := make([]bool, c.rows)
	for i := range out {
		out[i] = m.Get(i)
	}
	return out
}

// SearchVec is Search returning the match lines as a bit vector (one bit
// per row). The vector is freshly allocated.
func (c *Crossbar) SearchVec(drives []Drive) *bits.Vec { return c.searchVec(drives, nil) }

// searchVec performs one search. live, when non-nil, marks the physical
// rows whose match lines can surface to a caller (rows currently mapped
// by the owning design's remap table); transient upsets are injected and
// counted only on those rows — an upset on a retired or spare row is
// discarded by the remap gather and must not inflate the fault report.
// A nil live mask means every row surfaces (bare-crossbar use).
func (c *Crossbar) searchVec(drives []Drive, live *bits.Vec) *bits.Vec {
	if len(drives) != c.cols {
		panic(fmt.Sprintf("tcam: %d drives for %d columns", len(drives), c.cols))
	}
	c.Stats.Searches++
	// Only VL-driven lines conduct (VH keeps the diode off entirely), so
	// collect them once; real searches drive only a handful of lines.
	var vl []int
	for col, d := range drives {
		if d == DriveVL {
			vl = append(vl, col)
		}
	}
	c.Stats.SearchedCells += int64(len(vl)) * int64(c.rows)

	var match *bits.Vec
	if c.wordSearchOK(len(vl)) {
		match = c.searchWord(vl)
	} else {
		match = c.searchElectrical(vl)
	}
	if c.fc.TransientUpsetRate > 0 {
		// Sense upsets flip match lines silently; nothing downstream can
		// detect them (no ECC on the match path), so they are counted
		// here and quantified by the fault campaign.
		for row := 0; row < c.rows; row++ {
			if live != nil && !live.Get(row) {
				continue
			}
			if c.rng.Float64() < c.fc.TransientUpsetRate {
				match.Set(row, !match.Get(row))
				c.transientUpsets++
			}
		}
	}
	return match
}

// wordSearchOK reports whether the bit-plane word path decides every
// match line exactly as the electrical model would: the all-leak current
// must sit clearly below the SA threshold and a single LRS cell clearly
// above it, so the sense reduces to "any effective-LRS cell on a driven
// line ⇒ mismatch". A small relative guard band sends near-threshold
// parameterisations to the electrical path, where per-row summation
// order decides borderline rows authoritatively.
func (c *Crossbar) wordSearchOK(nVL int) bool {
	if c.forceElectrical {
		return false
	}
	if nVL == 0 {
		return true // no conducting line: every row matches
	}
	const guard = 1e-9
	iLRS := c.p.cellCurrent(LRS, DriveVL)
	iHRS := c.p.cellCurrent(HRS, DriveVL)
	leak := float64(nVL) * iHRS
	if leak >= c.p.IThreshA*(1-guard) {
		return false // a clean match is not robust at this width
	}
	if float64(nVL-1)*iHRS+iLRS < c.p.IThreshA*(1+guard) {
		return false // a single-cell mismatch is not robust
	}
	return true
}

// searchWord is the word-parallel hot path: one OR per driven column
// accumulates the effective-LRS planes into a mismatch vector — 64 match
// lines per machine-word AND/OR — and the match vector is its
// complement.
func (c *Crossbar) searchWord(vl []int) *bits.Vec {
	mis := bits.NewVec(c.rows)
	if c.stuckAny == nil {
		for _, col := range vl {
			mis.Or(c.planes[col])
		}
	} else {
		for _, col := range vl {
			// effective LRS = (programmed &^ stuck) | stuck-at-LRS
			mis.OrAndNot(c.planes[col], c.stuckAny[col])
			mis.Or(c.stuckL[col])
		}
	}
	mis.Not()
	return mis
}

// searchElectrical is the retained per-cell slow path: per-row summation
// of diode discharge currents against the SA threshold. It is the
// reference the word path is validated against, and the authoritative
// path whenever wordSearchOK declines.
func (c *Crossbar) searchElectrical(vl []int) *bits.Vec {
	iLRS := c.p.cellCurrent(LRS, DriveVL)
	iHRS := c.p.cellCurrent(HRS, DriveVL)
	match := bits.NewVec(c.rows)
	for row := 0; row < c.rows; row++ {
		var i float64
		for _, col := range vl {
			if c.effective(row, col) == LRS {
				i += iLRS
			} else {
				i += iHRS
			}
		}
		match.Set(row, i < c.p.IThreshA)
	}
	return match
}

// WriteColumn programs the cells of one column using the V/3 scheme [11]:
// the selected search line carries the full write voltage, selected match
// lines are grounded, and every unselected line sits at V/3 or 2V/3 so
// that no unselected cell sees more than V/3. rowsel selects which rows
// are programmed; all programmed cells receive the same target state.
//
// The return value is the number of programming pulses (always 1: cells in
// one column sharing a search line are written in parallel, §IV-B).
func (c *Crossbar) WriteColumn(col int, rowsel []bool, target Resist) int {
	if len(rowsel) != c.rows {
		panic(fmt.Sprintf("tcam: %d row selects for %d rows", len(rowsel), c.rows))
	}
	return c.writeColumnMask(col, boolsToVec(rowsel), target)
}

// writeColumnMask is WriteColumn with the row selector as a bit mask —
// the word-parallel write path: the whole column plane updates with one
// OR/ANDNOT per word, and only the selected cells pay per-cell wear
// accounting.
func (c *Crossbar) writeColumnMask(col int, sel *bits.Vec, target Resist) int {
	c.checkCell(0, col)
	selected := sel.OnesCount()
	if selected == 0 {
		return 0
	}
	if target == LRS {
		c.planes[col].Or(sel)
	} else {
		c.planes[col].AndNot(sel)
	}
	sel.ForEachSet(func(row int) { c.wearCell(row, col) })
	c.Stats.CellWrites += int64(selected)

	// V/3 disturb accounting: unselected cells on the selected column and
	// cells on selected rows in other columns each see V/3; everything
	// else sees -V/3. The diode's turn-on voltage (0.4 V) exceeds
	// V/3 ≈ 0.63 V? No: 1.9/3 ≈ 0.63 V > 0.4 V, so a small sneak current
	// flows; it is far below programming threshold, which is what the
	// scheme relies on. We count half-selected cells so the energy model
	// can charge for sneak leakage, and flag violations if the effective
	// half-select voltage were ever to exceed V/2 (it cannot under V/3
	// biasing, so DisturbViolations should remain zero).
	half := int64(c.rows-selected) + int64(selected)*int64(c.cols-1)
	c.Stats.HalfSelected += half
	if c.p.VWrite/3 > c.p.VWrite/2 { // structurally impossible; kept as an invariant
		c.Stats.DisturbViolations += half
	}
	return 1
}

// WriteColumnStates programs per-row target states into one column in a
// single pulse slot (internally a RESET half-pulse for the HRS targets
// followed by a SET half-pulse for the LRS targets; the slot still spans
// one WritePulseNS window per the ISA's 10-cycle cell-write budget). It is
// the write path behind the two-bit encoder, where each row receives its
// own encoded value.
func (c *Crossbar) WriteColumnStates(col int, rowsel []bool, targets []Resist) int {
	if len(rowsel) != c.rows || len(targets) != c.rows {
		panic("tcam: row selector / target length mismatch")
	}
	tplane := bits.NewVec(c.rows)
	for row, t := range targets {
		if t == LRS {
			tplane.Set(row, true)
		}
	}
	return c.writeColumnStatesMask(col, boolsToVec(rowsel), tplane)
}

// writeColumnStatesMask is WriteColumnStates with the selector and the
// per-row LRS targets as bit planes: plane = (plane &^ sel) | (sel & t).
func (c *Crossbar) writeColumnStatesMask(col int, sel, tplane *bits.Vec) int {
	c.checkCell(0, col)
	selected := sel.OnesCount()
	if selected == 0 {
		return 0
	}
	c.planes[col].AndNot(sel)
	c.planes[col].OrAnd(sel, tplane)
	sel.ForEachSet(func(row int) { c.wearCell(row, col) })
	c.Stats.CellWrites += int64(selected)
	c.Stats.HalfSelected += int64(c.rows-selected) + int64(selected)*int64(c.cols-1)
	return 1
}

func boolsToVec(sel []bool) *bits.Vec {
	v := bits.NewVec(len(sel))
	for i, b := range sel {
		if b {
			v.Set(i, true)
		}
	}
	return v
}

// Wear describes the endurance exposure of a crossbar: RRAM cells
// tolerate a bounded number of SET/RESET pulses (~1e6-1e12 depending on
// the device), so write-heavy associative execution must watch the
// per-cell maximum — this is the lifetime argument behind Hyper-AP's
// drastic write reduction.
//
// MeanPulses and WrittenFrac are reported over the logical (non-spare)
// cell capacity: provisioning spare rows must not dilute the endurance
// numbers, since spares idle until a repair consumes them. MaxPulses is
// the physical maximum over every cell including spares (the cell that
// dies first is the one that matters, wherever it sits), and the pulse
// and written-cell totals in the numerators likewise include repair
// traffic that landed on spares.
type Wear struct {
	MaxPulses   uint32  // most-written cell (any physical cell)
	MeanPulses  float64 // total pulses / logical cell capacity
	WrittenFrac float64 // cells written at least once / logical cell capacity
	Cells       int     // logical cell capacity (the denominator basis)
}

// WearReport summarises per-cell programming activity.
func (c *Crossbar) WearReport() Wear {
	var w Wear
	var sum uint64
	written := 0
	for _, n := range c.wear {
		if n > w.MaxPulses {
			w.MaxPulses = n
		}
		if n > 0 {
			written++
		}
		sum += uint64(n)
	}
	w.Cells = c.logicalRows * c.cols
	w.MeanPulses = float64(sum) / float64(w.Cells)
	w.WrittenFrac = float64(written) / float64(w.Cells)
	return w
}

// LoadImage replaces the whole cell array without pulse accounting — the
// documented raw-image bypass (test fixtures, checkpoint restore of
// already-aged state). The image must be row-major with rows*cols
// entries. Use SetCell / Design.Load for physical data loading, which
// counts programming pulses.
func (c *Crossbar) LoadImage(img []Resist) {
	if len(img) != len(c.wear) {
		panic("tcam: image size mismatch")
	}
	for row := 0; row < c.rows; row++ {
		for col := 0; col < c.cols; col++ {
			c.planes[col].Set(row, img[row*c.cols+col] == LRS)
		}
	}
}
