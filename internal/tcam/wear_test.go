package tcam

import (
	"testing"

	"hyperap/internal/bits"
)

func TestWearReportCrossbar(t *testing.T) {
	c := NewCrossbar(4, 4, DefaultParams())
	if w := c.WearReport(); w.MaxPulses != 0 || w.MeanPulses != 0 || w.WrittenFrac != 0 {
		t.Fatalf("fresh crossbar has wear: %+v", w)
	}
	sel := []bool{true, false, false, false}
	for i := 0; i < 3; i++ {
		c.WriteColumn(0, sel, LRS)
	}
	c.WriteColumn(1, []bool{true, true, false, false}, HRS)
	w := c.WearReport()
	if w.MaxPulses != 3 {
		t.Errorf("max pulses = %d, want 3", w.MaxPulses)
	}
	if w.WrittenFrac != 3.0/16 {
		t.Errorf("written fraction = %v, want 3/16", w.WrittenFrac)
	}
	if w.MeanPulses != 5.0/16 {
		t.Errorf("mean pulses = %v, want 5/16", w.MeanPulses)
	}
}

func TestWearReportDesigns(t *testing.T) {
	for name, d := range designs(4, 4) {
		sel := []bool{true, true, true, true}
		d.Write(2, bits.K1, sel)
		d.Write(2, bits.K0, sel)
		w := d.WearReport()
		if w.MaxPulses != 2 {
			t.Errorf("%s: max pulses = %d, want 2", name, w.MaxPulses)
		}
		if w.MeanPulses <= 0 || w.WrittenFrac <= 0 {
			t.Errorf("%s: empty wear report %+v", name, w)
		}
	}
	// The monolithic design concentrates both cells of a TCAM bit in one
	// crossbar; wear maxima are identical per bit either way.
	sep := NewSeparated(2, 2, DefaultParams())
	sep.WritePerRow(0, []bits.State{bits.S1, bits.S0}, []bool{true, true})
	if sep.WearReport().MaxPulses != 1 {
		t.Error("per-row write must count one pulse per cell")
	}
}

func TestAccessors(t *testing.T) {
	c := NewCrossbar(3, 5, DefaultParams())
	if c.Rows() != 3 || c.Cols() != 5 {
		t.Error("crossbar accessors wrong")
	}
	if LRS.String() != "LRS" || HRS.String() != "HRS" {
		t.Error("Resist.String wrong")
	}
	sep := NewSeparated(3, 4, DefaultParams())
	mono := NewMonolithic(3, 4, DefaultParams())
	if sep.Rows() != 3 || mono.Rows() != 3 || sep.Bits() != 4 || mono.Bits() != 4 {
		t.Error("design accessors wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad dimensions")
		}
	}()
	NewCrossbar(0, 1, DefaultParams())
}
