package tcam

import (
	"math/rand"
	"reflect"
	"testing"

	"hyperap/internal/bits"
)

// This file pins the word-parallel bit-plane core against the retained
// per-cell electrical reference: a design and its ForceElectrical twin
// are driven through the same randomized operation stream and must stay
// bit-identical in every observable — match vectors, state readback,
// stats, wear and fault counters. Row counts straddle the 64-bit word
// boundary on purpose.

func forceElectrical(d Design) Design {
	for _, x := range d.Arrays() {
		x.ForceElectrical(true)
	}
	return d
}

var allStates = []bits.State{bits.S0, bits.S1, bits.SX}
var allKeys = []bits.Key{bits.K0, bits.K1, bits.KZ, bits.KDC}

// TestPlaneElectricalEquivalence is the differential property test: for
// randomized row counts (including non-multiples of 64), widths, fault
// seeds and repair on/off, the bit-plane Search/Write/WritePerRow paths
// must be bit-identical to the electrical reference.
func TestPlaneElectricalEquivalence(t *testing.T) {
	rows := []int{1, 3, 63, 64, 65, 100, 128, 200}
	cases := []struct {
		name string
		fc   FaultConfig
	}{
		{"fault-free", FaultConfig{}},
		{"stuck", FaultConfig{Seed: 11, StuckAtRate: 0.03, SpareRows: 8}},
		{"stuck-no-repair", FaultConfig{Seed: 12, StuckAtRate: 0.01, SpareRows: 8, DisableRepair: true}},
		{"endurance", FaultConfig{Seed: 13, EnduranceBudget: 6, SpareRows: 16}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, nr := range rows {
				for _, mono := range []bool{false, true} {
					nb := 4 + nr%5
					var d, ref Design
					if mono {
						d = NewMonolithicWithFaults(nr, nb, DefaultParams(), tc.fc, 3)
						ref = forceElectrical(NewMonolithicWithFaults(nr, nb, DefaultParams(), tc.fc, 3))
					} else {
						d = NewSeparatedWithFaults(nr, nb, DefaultParams(), tc.fc, 3)
						ref = forceElectrical(NewSeparatedWithFaults(nr, nb, DefaultParams(), tc.fc, 3))
					}
					driveTwins(t, d, ref, nr, nb, int64(nr)*31+7)
				}
			}
		})
	}
}

// driveTwins applies one randomized op stream to both designs and
// compares every observable after every step.
func driveTwins(t *testing.T, d, ref Design, rows, nbits int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))

	// Initial load: random states everywhere.
	for r := 0; r < rows; r++ {
		for b := 0; b < nbits; b++ {
			s := allStates[rng.Intn(len(allStates))]
			errD := d.Load(r, b, s)
			errR := ref.Load(r, b, s)
			if (errD == nil) != (errR == nil) {
				t.Fatalf("load (%d,%d): plane err %v, electrical err %v", r, b, errD, errR)
			}
		}
	}
	compareTwins(t, d, ref, rows, nbits)

	for op := 0; op < 40; op++ {
		switch rng.Intn(3) {
		case 0: // search with a random ternary key
			keys := make([]bits.Key, nbits)
			for i := range keys {
				keys[i] = allKeys[rng.Intn(len(allKeys))]
			}
			md := d.SearchVec(keys)
			mr := ref.SearchVec(keys)
			if !md.Equal(mr) {
				t.Fatalf("op %d: search %v: plane %s, electrical %s", op, keys, md, mr)
			}
			if ms, mrs := d.Search(keys), ref.Search(keys); !reflect.DeepEqual(ms, mrs) || !reflect.DeepEqual(ms, vecToBools(md)) {
				t.Fatalf("op %d: []bool Search disagrees with SearchVec", op)
			}
		case 1: // associative write of a random key state
			bit := rng.Intn(nbits)
			key := allKeys[rng.Intn(3)] // K0/K1/KZ have write states
			sel := make([]bool, rows)
			for i := range sel {
				sel[i] = rng.Intn(2) == 0
			}
			_, errD := d.Write(bit, key, sel)
			_, errR := ref.Write(bit, key, sel)
			if (errD == nil) != (errR == nil) {
				t.Fatalf("op %d: write err mismatch: plane %v, electrical %v", op, errD, errR)
			}
			if errD != nil {
				return // both faulted identically; state may legitimately diverge after an ignored error
			}
		case 2: // per-row encoded write
			bit := rng.Intn(nbits)
			states := make([]bits.State, rows)
			sel := make([]bool, rows)
			for i := range states {
				states[i] = allStates[rng.Intn(len(allStates))]
				sel[i] = rng.Intn(2) == 0
			}
			_, errD := d.WritePerRow(bit, states, sel)
			_, errR := ref.WritePerRow(bit, states, sel)
			if (errD == nil) != (errR == nil) {
				t.Fatalf("op %d: write-per-row err mismatch: plane %v, electrical %v", op, errD, errR)
			}
			if errD != nil {
				return
			}
		}
		compareTwins(t, d, ref, rows, nbits)
	}
}

func compareTwins(t *testing.T, d, ref Design, rows, nbits int) {
	t.Helper()
	for r := 0; r < rows; r++ {
		for b := 0; b < nbits; b++ {
			if got, want := d.StateSafe(r, b), ref.StateSafe(r, b); got != want {
				t.Fatalf("state(%d,%d): plane %v, electrical %v", r, b, got, want)
			}
		}
	}
	if got, want := d.Stats(), ref.Stats(); got != want {
		t.Fatalf("stats diverged: plane %+v, electrical %+v", got, want)
	}
	if got, want := d.WearReport(), ref.WearReport(); got != want {
		t.Fatalf("wear diverged: plane %+v, electrical %+v", got, want)
	}
	if got, want := d.FaultReport(), ref.FaultReport(); got != want {
		t.Fatalf("fault report diverged: plane %+v, electrical %+v", got, want)
	}
}

// TestWordSearchGuardBand: a parameterisation whose sensing is not
// margin-robust (leak within the guard band of the threshold) must route
// to the electrical path and still agree with it by construction.
func TestWordSearchGuardBand(t *testing.T) {
	p := DefaultParams()
	// Put the all-leak current of a 64-line search right at the SA
	// threshold: word search must decline.
	p.IThreshA = 64 * p.LeakPerCell()
	c := NewCrossbar(4, 64, p)
	if c.wordSearchOK(64) {
		t.Error("word path accepted a non-robust leak margin")
	}
	// And a healthy default-parameter search must take the word path.
	cd := NewCrossbar(4, 8, DefaultParams())
	if !cd.wordSearchOK(8) {
		t.Error("word path declined a robust default-parameter search")
	}
	if cd.wordSearchOK(8); cd.forceElectrical {
		t.Error("wordSearchOK mutated forceElectrical")
	}
	cd.ForceElectrical(true)
	if cd.wordSearchOK(8) {
		t.Error("ForceElectrical did not route searches to the electrical path")
	}
}

// TestSetCellCountsPulses: the data-load path is a physical programming
// pulse — it must age the cell and appear in CellWrites (LoadImage stays
// the raw bypass).
func TestSetCellCountsPulses(t *testing.T) {
	c := NewCrossbar(2, 2, DefaultParams())
	c.SetCell(0, 0, LRS)
	c.SetCell(0, 0, HRS)
	c.SetCell(1, 1, LRS)
	if c.Stats.CellWrites != 3 {
		t.Errorf("CellWrites = %d after 3 SetCell, want 3", c.Stats.CellWrites)
	}
	w := c.WearReport()
	if w.MaxPulses != 2 || w.WrittenFrac != 2.0/4 {
		t.Errorf("SetCell wear not counted: %+v", w)
	}

	img := make([]Resist, 4)
	c2 := NewCrossbar(2, 2, DefaultParams())
	c2.LoadImage(img)
	if c2.Stats.CellWrites != 0 || c2.WearReport().MaxPulses != 0 {
		t.Error("LoadImage must stay a raw bypass without pulse accounting")
	}
}

// TestLoadAgesCells: Design.Load rides SetCell, so loads march cells
// toward the endurance budget exactly like associative writes.
func TestLoadAgesCells(t *testing.T) {
	d := NewSeparatedWithFaults(2, 2, DefaultParams(), FaultConfig{Seed: 5, EnduranceBudget: 3, SpareRows: 4}, 0)
	var err error
	for i := 0; i < 8 && err == nil; i++ {
		s := bits.S0
		if i%2 == 1 {
			s = bits.S1
		}
		err = d.Load(0, 0, s)
	}
	if r := d.FaultReport(); r.EnduranceFailed == 0 {
		t.Errorf("8 loads at budget 3 aged no cells: %+v", r)
	}
	if d.Stats().CellWrites == 0 {
		t.Error("loads not counted in CellWrites")
	}
}

// TestWearNotDilutedBySpares: provisioning spare rows must not change
// the endurance numbers of an identical write workload (the denominators
// are logical capacity, not physical).
func TestWearNotDilutedBySpares(t *testing.T) {
	run := func(spares int) Wear {
		fc := FaultConfig{}
		if spares > 0 {
			fc = FaultConfig{SpareRows: spares}
		}
		d := NewSeparatedWithFaults(4, 4, DefaultParams(), fc, 0)
		sel := []bool{true, true, false, false}
		for i := 0; i < 3; i++ {
			if _, err := d.Write(1, bits.K0, sel); err != nil {
				t.Fatal(err)
			}
		}
		return d.WearReport()
	}
	w0, w8 := run(0), run(8)
	if w0.MeanPulses != w8.MeanPulses || w0.WrittenFrac != w8.WrittenFrac {
		t.Errorf("spare rows diluted wear: no spares %+v, 8 spares %+v", w0, w8)
	}
	if w0.Cells != w8.Cells {
		t.Errorf("logical capacity changed with spares: %d vs %d", w0.Cells, w8.Cells)
	}
}

// TestMergeWearWeighted: merging reports from arrays of different sizes
// must weight by cell count, not average the averages.
func TestMergeWearWeighted(t *testing.T) {
	a := Wear{MaxPulses: 3, MeanPulses: 2, WrittenFrac: 1, Cells: 100}
	b := Wear{MaxPulses: 1, MeanPulses: 0, WrittenFrac: 0, Cells: 300}
	got := mergeWear(a, b)
	if got.Cells != 400 || got.MaxPulses != 3 {
		t.Fatalf("merge basics wrong: %+v", got)
	}
	if got.MeanPulses != 0.5 { // (2*100 + 0*300) / 400
		t.Errorf("MeanPulses = %v, want 0.5 (cell-weighted)", got.MeanPulses)
	}
	if got.WrittenFrac != 0.25 {
		t.Errorf("WrittenFrac = %v, want 0.25 (cell-weighted)", got.WrittenFrac)
	}
}

// TestUpsetsOnlyOnLiveRows: with spare rows provisioned, upsets must be
// injected and counted only on rows that can surface through the remap
// gather — before a repair that is the logical rows, and after a repair
// the retired row stops upsetting while its spare starts.
func TestUpsetsOnlyOnLiveRows(t *testing.T) {
	d := NewSeparatedWithFaults(4, 2, DefaultParams(), FaultConfig{Seed: 9, TransientUpsetRate: 1, SpareRows: 6}, 0)
	d.Search([]bits.Key{bits.KDC, bits.KDC})
	// Rate 1 on 4 logical rows × 2 arrays: exactly 8 observable flips,
	// not 10 physical rows × 2.
	if got := d.FaultReport().TransientUpsets; got != 8 {
		t.Errorf("upsets = %d, want 8 (logical rows only)", got)
	}

	// Force a repair, then search again: the live set is still 4 rows
	// per array.
	d.Arrays()[0].ForceStuck(2, 1, HRS)
	for r := 0; r < 4; r++ {
		for b := 0; b < 2; b++ {
			if err := d.Load(r, b, bits.S1); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := d.Write(1, bits.K0, []bool{false, false, true, false}); err != nil {
		t.Fatal(err)
	}
	if d.FaultReport().Repairs == 0 {
		t.Fatal("expected a spare-row repair")
	}
	before := d.FaultReport().TransientUpsets
	d.Search([]bits.Key{bits.KDC, bits.KDC})
	if got := d.FaultReport().TransientUpsets - before; got != 8 {
		t.Errorf("upsets after repair = %d per search, want 8", got)
	}
}
