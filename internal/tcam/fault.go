package tcam

import (
	"fmt"
	"math/rand"

	"hyperap/internal/bits"
)

// This file models RRAM device non-idealities and the repair machinery
// that hides them: stuck-at cells (fabrication defects or worn-out
// devices), finite programming endurance, transient search upsets, and
// per-array spare-row repair behind a logical→physical remap table.
// Fouda et al., "In-memory Associative Processors: Tutorial, Potential,
// and Challenges" (arXiv:2203.00662) surveys exactly these fault classes
// as the main obstacle between AP prototypes and deployment; Hyper-AP's
// separated array design already exists to stretch endurance, and this
// layer lets the rest of the stack quantify how far that goes.
//
// Stuck cells are stored as per-column bit-planes (stuckH, stuckL) so
// the faulty search path stays word-parallel: the effective-LRS plane of
// a column is (programmed &^ stuck) | stuck-at-LRS, three word ops per
// 64 rows.
//
// Everything is deterministic: each crossbar owns a math/rand stream
// seeded from FaultConfig.Seed and a per-array salt, so a fault campaign
// with a fixed seed reproduces the same defect map, the same endurance
// deaths and the same upset pattern on every run, regardless of how many
// worker goroutines step the simulator (each subarray is stepped by
// exactly one goroutine at a time).

// FaultConfig enables and parameterises the fault model. The zero value
// disables it entirely: the fault-free simulator behaves bit-identically
// to a build without this file.
type FaultConfig struct {
	// Seed drives every random choice (defect map, stuck polarity,
	// upsets). Two crossbars never share a stream: each combines Seed
	// with its own salt.
	Seed int64
	// StuckAtRate is the per-cell probability that a cell is stuck at
	// construction time (a fabrication defect). Stuck-at-HRS and
	// stuck-at-LRS are equally likely.
	StuckAtRate float64
	// EnduranceBudget, when non-zero, kills a cell (it becomes stuck at
	// a random polarity) once its programming-pulse count exceeds the
	// budget — the wear counters the crossbar already keeps become a
	// death clock.
	EnduranceBudget uint32
	// TransientUpsetRate is the per-row, per-search probability that a
	// match-line sense flips (sneak currents, SA noise). Upsets are
	// transient and silent: nothing in the write path can detect them,
	// which is why the fault campaign reports them separately.
	TransientUpsetRate float64
	// SpareRows is the number of physical spare word rows each array
	// keeps beyond its logical rows for write-verify repair.
	SpareRows int
	// DisableRepair turns write-verify into detect-only: a verify
	// mismatch returns a FaultError instead of remapping the row. Used
	// by the fault campaign to measure the value of repair.
	DisableRepair bool
}

// Enabled reports whether any part of the fault model is active.
func (fc FaultConfig) Enabled() bool {
	return fc.StuckAtRate > 0 || fc.EnduranceBudget > 0 || fc.TransientUpsetRate > 0 || fc.SpareRows > 0
}

// FaultError is the typed, errors.As-able failure every unmasked fault
// surfaces as: write-verify found a cell that did not program and repair
// was disabled or out of spare rows. Row/Bit are logical coordinates.
type FaultError struct {
	Row, Bit int
	Cause    string
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("tcam: fault at row %d bit %d: %s", e.Row, e.Bit, e.Cause)
}

// FaultReport summarises fault activity across one or more arrays.
type FaultReport struct {
	InjectedStuck   int   // stuck cells injected at construction
	EnduranceFailed int   // cells killed by crossing the endurance budget
	StuckCells      int   // currently stuck cells (injected + worn + forced)
	TransientUpsets int64 // observable match-line sense flips during searches
	Detected        int64 // write-verify mismatches observed
	Repairs         int   // rows remapped onto a spare
	RepairPulses    int64 // programming pulses spent copying rows to spares
	SparesUsed      int   // spare rows consumed (includes bad spares burned)
	SparesTotal     int   // spare rows provisioned
}

// Merge returns the field-wise sum of two reports.
func (r FaultReport) Merge(o FaultReport) FaultReport {
	return FaultReport{
		InjectedStuck:   r.InjectedStuck + o.InjectedStuck,
		EnduranceFailed: r.EnduranceFailed + o.EnduranceFailed,
		StuckCells:      r.StuckCells + o.StuckCells,
		TransientUpsets: r.TransientUpsets + o.TransientUpsets,
		Detected:        r.Detected + o.Detected,
		Repairs:         r.Repairs + o.Repairs,
		RepairPulses:    r.RepairPulses + o.RepairPulses,
		SparesUsed:      r.SparesUsed + o.SparesUsed,
		SparesTotal:     r.SparesTotal + o.SparesTotal,
	}
}

// NewCrossbarWithFaults returns an erased crossbar with the fault model
// active. salt decorrelates this crossbar's random stream from every
// other array sharing the same FaultConfig.Seed (callers pass a unique
// per-array value, e.g. 2·PE-index and 2·PE-index+1 for the two arrays
// of a separated design).
func NewCrossbarWithFaults(rows, cols int, p Params, fc FaultConfig, salt int64) *Crossbar {
	c := NewCrossbar(rows, cols, p)
	c.fc = fc
	if !fc.Enabled() {
		return c
	}
	c.rng = rand.New(rand.NewSource(fc.Seed ^ (salt+1)*0x5851F42D4C957F2D))
	if fc.StuckAtRate > 0 {
		c.ensureStuck()
		// Draw in row-major cell order: the defect map of a given seed
		// must not move when the storage layout does.
		for row := 0; row < rows; row++ {
			for col := 0; col < cols; col++ {
				if c.rng.Float64() < fc.StuckAtRate {
					c.setStuck(row, col, c.randStuck())
					c.injectedStuck++
				}
			}
		}
	}
	return c
}

func (c *Crossbar) ensureStuck() {
	if c.stuckAny != nil {
		return
	}
	c.stuckH = make([]*bits.Vec, c.cols)
	c.stuckL = make([]*bits.Vec, c.cols)
	c.stuckAny = make([]*bits.Vec, c.cols)
	for i := 0; i < c.cols; i++ {
		c.stuckH[i] = bits.NewVec(c.rows)
		c.stuckL[i] = bits.NewVec(c.rows)
		c.stuckAny[i] = bits.NewVec(c.rows)
	}
}

func (c *Crossbar) randStuck() Resist {
	if c.rng.Intn(2) == 0 {
		return HRS
	}
	return LRS
}

// setStuck pins one cell's stuck planes to resistance r (overwriting any
// previous stuck polarity). Callers maintain the injected/worn counters.
func (c *Crossbar) setStuck(row, col int, r Resist) {
	c.stuckH[col].Set(row, r == HRS)
	c.stuckL[col].Set(row, r == LRS)
	c.stuckAny[col].Set(row, true)
}

// effective returns the resistance the cell actually presents: the
// programmed value, unless the cell is stuck.
func (c *Crossbar) effective(row, col int) Resist {
	if c.stuckAny != nil && c.stuckAny[col].Get(row) {
		if c.stuckL[col].Get(row) {
			return LRS
		}
		return HRS
	}
	if c.planes[col].Get(row) {
		return LRS
	}
	return HRS
}

// wearCell records one programming pulse on a cell and, when an
// endurance budget is set, kills the cell once the budget is exceeded.
func (c *Crossbar) wearCell(row, col int) {
	i := row*c.cols + col
	c.wear[i]++
	if c.fc.EnduranceBudget > 0 && c.wear[i] > c.fc.EnduranceBudget {
		c.ensureStuck()
		if !c.stuckAny[col].Get(row) {
			c.setStuck(row, col, c.randStuck())
			c.enduranceFailed++
		}
	}
}

// ForceStuck pins one cell to a fixed resistance, bypassing the random
// defect map — the deterministic hook tests and the fault campaign use
// to place a fault exactly where they want one.
func (c *Crossbar) ForceStuck(row, col int, r Resist) {
	c.checkCell(row, col)
	c.ensureStuck()
	if !c.stuckAny[col].Get(row) {
		c.injectedStuck++
	}
	c.setStuck(row, col, r)
}

// faultsPossible reports whether reads can differ from writes on this
// crossbar — the gate for the write-verify pass, so the fault-free
// simulator pays nothing.
func (c *Crossbar) faultsPossible() bool {
	return c.stuckAny != nil || c.fc.Enabled()
}

func (c *Crossbar) faultReport() FaultReport {
	r := FaultReport{
		InjectedStuck:   c.injectedStuck,
		EnduranceFailed: c.enduranceFailed,
		TransientUpsets: c.transientUpsets,
	}
	for _, s := range c.stuckAny {
		r.StuckCells += s.OnesCount()
	}
	return r
}

// pairArray is the per-bit cell access both array designs expose so the
// verify/repair logic below is written once. Rows are physical.
type pairArray interface {
	cellPair(physRow, bit int) (t, f Resist)
	setCellPair(physRow, bit int, t, f Resist)
	bitsPerWord() int
	faultsPossible() bool
}

// repairState is the logical→physical row remap of one TCAM array
// design, plus the spare-row free list and the repair counters. Physical
// rows [0, logical) start as the identity map; [logical, physRows) are
// spares. A retired row is simply never referenced again.
type repairState struct {
	fc        FaultConfig
	logical   int
	physRows  int
	remap     []int     // logical row → physical row
	live      *bits.Vec // physical rows currently mapped by remap
	nextSpare int       // next untried physical spare
	remapped  bool      // any remap differs from identity

	detected     int64
	repairs      int
	repairPulses int64
}

func newRepairState(fc FaultConfig, logical int) *repairState {
	rs := &repairState{
		fc:        fc,
		logical:   logical,
		physRows:  logical + fc.SpareRows,
		nextSpare: logical,
		remap:     make([]int, logical),
	}
	rs.live = bits.NewVec(rs.physRows)
	for i := range rs.remap {
		rs.remap[i] = i
		rs.live.Set(i, true)
	}
	return rs
}

// gather maps a physical match vector back to logical rows. Spare and
// retired physical rows hold X (HRS,HRS), which matches every search —
// gathering through the remap is what keeps them out of the results. The
// identity-map fast path is a whole-word prefix copy.
func (rs *repairState) gather(phys *bits.Vec) *bits.Vec {
	if !rs.remapped {
		return phys.Prefix(rs.logical)
	}
	out := bits.NewVec(rs.logical)
	for r, p := range rs.remap {
		out.Set(r, phys.Get(p))
	}
	return out
}

// physSel widens a logical row selector to physical rows. With the
// identity map and no spares the selector passes through unchanged (the
// returned vector may alias the argument; callers must not mutate it).
func (rs *repairState) physSel(rowsel *bits.Vec) *bits.Vec {
	if !rs.remapped && rs.physRows == rs.logical {
		return rowsel
	}
	out := bits.NewVec(rs.physRows)
	rowsel.ForEachSet(func(r int) { out.Set(rs.remap[r], true) })
	return out
}

// verifyColumn reads back one just-written bit column of the selected
// rows and repairs (or reports) every cell whose effective state differs
// from its target. sel is the logical row selector.
func (rs *repairState) verifyColumn(pa pairArray, bit int, sel *bits.Vec, target func(row int) (Resist, Resist)) error {
	var err error
	sel.ForEachSet(func(r int) {
		if err != nil {
			return
		}
		t, f := target(r)
		err = rs.verifyOne(pa, r, bit, t, f)
	})
	return err
}

// verifyOne checks a single logical cell pair against its target.
func (rs *repairState) verifyOne(pa pairArray, row, bit int, t, f Resist) error {
	if at, af := pa.cellPair(rs.remap[row], bit); at == t && af == f {
		return nil
	}
	rs.detected++
	if rs.fc.DisableRepair {
		return &FaultError{Row: row, Bit: bit, Cause: "write-verify mismatch (repair disabled)"}
	}
	return rs.repairRow(pa, row, bit, t, f)
}

// repairRow retires the physical row behind a logical row and moves its
// contents to the next spare: every healthy bit is copied (effective
// state, so earlier masked defects travel as their visible value) and
// the failing bit is programmed to its intended target. The copy is
// itself verified — a spare with a conflicting stuck cell is burned and
// the next one tried. Runs out of spares → FaultError.
func (rs *repairState) repairRow(pa pairArray, row, fixBit int, t, f Resist) error {
	old := rs.remap[row]
	for rs.nextSpare < rs.physRows {
		np := rs.nextSpare
		rs.nextSpare++
		ok := true
		for col := 0; col < pa.bitsPerWord(); col++ {
			ct, cf := t, f
			if col != fixBit {
				ct, cf = pa.cellPair(old, col)
			}
			pa.setCellPair(np, col, ct, cf)
			rs.repairPulses += 2
			if at, af := pa.cellPair(np, col); at != ct || af != cf {
				ok = false
				break
			}
		}
		if !ok {
			continue // burned spare: never mapped, stays non-live
		}
		rs.remap[row] = np
		rs.live.Set(old, false)
		rs.live.Set(np, true)
		rs.remapped = true
		rs.repairs++
		return nil
	}
	return &FaultError{Row: row, Bit: fixBit, Cause: "write-verify mismatch, spare rows exhausted"}
}

// fill adds the repair-side counters into an array-level report.
func (rs *repairState) fill(r FaultReport) FaultReport {
	r.Detected += rs.detected
	r.Repairs += rs.repairs
	r.RepairPulses += rs.repairPulses
	r.SparesUsed += rs.nextSpare - rs.logical
	r.SparesTotal += rs.fc.SpareRows
	return r
}
