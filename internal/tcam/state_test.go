package tcam

import (
	"reflect"
	"testing"

	"hyperap/internal/bits"
)

// ageDesign loads data, wears cells and forces one write-verify repair
// so the exported state carries every kind of lifetime payload: data
// planes, wear counters, a stuck cell, a consumed spare and a remap.
func ageDesign(t *testing.T, d Design) {
	t.Helper()
	d.Arrays()[0].ForceStuck(2, 1, HRS)
	for r := 0; r < 4; r++ {
		for b := 0; b < 3; b++ {
			if err := d.Load(r, b, bits.S1); err != nil {
				t.Fatalf("load (%d,%d): %v", r, b, err)
			}
		}
	}
	sel := []bool{false, false, true, true}
	if _, err := d.Write(1, bits.K0, sel); err != nil {
		t.Fatalf("write: %v", err)
	}
	if d.FaultReport().Repairs < 1 {
		t.Fatal("aging did not trigger a repair; the fixture drifted")
	}
}

func TestDesignStateRoundTrip(t *testing.T) {
	fc := FaultConfig{SpareRows: 2}
	for _, tc := range []struct {
		name string
		mk   func() Design
	}{
		{"separated", func() Design { return NewSeparatedWithFaults(4, 3, DefaultParams(), fc, 0) }},
		{"monolithic", func() Design { return NewMonolithicWithFaults(4, 3, DefaultParams(), fc, 0) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			src := tc.mk()
			ageDesign(t, src)
			st := src.ExportState()
			if !st.Degraded() {
				t.Error("a repaired design must export a degraded state")
			}

			dst := tc.mk()
			if err := dst.ImportState(st); err != nil {
				t.Fatalf("import: %v", err)
			}
			if got := dst.ExportState(); !reflect.DeepEqual(got, st) {
				t.Errorf("re-export differs from imported state:\n got %+v\nwant %+v", got, st)
			}
			// Behavioral equivalence, not just structural: same readback,
			// same matches.
			for r := 0; r < 4; r++ {
				for b := 0; b < 3; b++ {
					if got, want := dst.State(r, b), src.State(r, b); got != want {
						t.Errorf("state(%d,%d) = %v, want %v", r, b, got, want)
					}
				}
			}
			keys := []bits.Key{bits.KDC, bits.K0, bits.KDC}
			if got, want := dst.Search(keys), src.Search(keys); !reflect.DeepEqual(got, want) {
				t.Errorf("search = %v, want %v", got, want)
			}
			if got, want := dst.FaultReport(), src.FaultReport(); got != want {
				t.Errorf("fault report = %+v, want %+v", got, want)
			}
			if got, want := dst.WearReport(), src.WearReport(); got != want {
				t.Errorf("wear report = %+v, want %+v", got, want)
			}
		})
	}
}

func TestDesignStateImportRejects(t *testing.T) {
	fc := FaultConfig{SpareRows: 2}
	src := NewSeparatedWithFaults(4, 3, DefaultParams(), fc, 0)
	ageDesign(t, src)
	st := src.ExportState()

	// Wrong geometry, wrong spare provisioning, wrong design kind: all
	// must reject and leave the target untouched.
	for name, dst := range map[string]Design{
		"rows":   NewSeparatedWithFaults(8, 3, DefaultParams(), fc, 0),
		"bits":   NewSeparatedWithFaults(4, 2, DefaultParams(), fc, 0),
		"spares": NewSeparatedWithFaults(4, 3, DefaultParams(), FaultConfig{SpareRows: 1}, 0),
		"kind":   NewMonolithicWithFaults(4, 3, DefaultParams(), fc, 0),
	} {
		before := dst.ExportState()
		if err := dst.ImportState(st); err == nil {
			t.Errorf("%s mismatch imported without error", name)
		}
		if after := dst.ExportState(); !reflect.DeepEqual(before, after) {
			t.Errorf("%s: failed import mutated the design", name)
		}
	}

	// A corrupted plane (stray bits above the row count) must reject:
	// corrupted vectors cannot round-trip silently.
	bad := st.Clone()
	bad.Arrays[0].Planes[0][0] |= 1 << 63 // rows=4+spares, well below 64
	dst := NewSeparatedWithFaults(4, 3, DefaultParams(), fc, 0)
	if err := dst.ImportState(bad); err == nil {
		t.Error("stray plane bits imported without error")
	}

	// A remap pointing at an unconsumed spare is inconsistent.
	bad = st.Clone()
	bad.Repair.Remap[0] = bad.Repair.NextSpare
	if err := dst.ImportState(bad); err == nil {
		t.Error("remap to unconsumed spare imported without error")
	}
}

func TestDesignStateClearAndAccumulate(t *testing.T) {
	src := NewSeparatedWithFaults(4, 3, DefaultParams(), FaultConfig{SpareRows: 2}, 0)
	ageDesign(t, src)
	full := src.ExportState()

	pass := full.Clone()
	pass.ClearData()
	pass.ClearActivity()
	for _, a := range pass.Arrays {
		for _, p := range a.Planes {
			for _, w := range p {
				if w != 0 {
					t.Fatal("ClearData left programmed bits")
				}
			}
		}
		if a.Stats != (Stats{}) || a.TransientUpsets != 0 {
			t.Fatal("ClearActivity left activity counters")
		}
	}
	if pass.Repair.Detected != 0 || pass.Repair.Repairs != 0 || pass.Repair.RepairPulses != 0 {
		t.Fatal("ClearActivity left repair counters")
	}
	// Structure survives clearing: that is the "restarts degraded"
	// invariant.
	if !pass.Degraded() {
		t.Error("clearing activity must not clear structural degradation")
	}
	if pass.MaxWear() != full.MaxWear() || pass.SparesUsed() != full.SparesUsed() {
		t.Error("clearing activity must not clear wear or consumed spares")
	}

	// Accumulate restores exactly the counters clearing removed.
	pass.AccumulateActivity(&full)
	for i := range pass.Arrays {
		if pass.Arrays[i].Stats != full.Arrays[i].Stats {
			t.Errorf("array %d stats = %+v, want %+v", i, pass.Arrays[i].Stats, full.Arrays[i].Stats)
		}
		if pass.Arrays[i].TransientUpsets != full.Arrays[i].TransientUpsets {
			t.Errorf("array %d upsets differ after accumulate", i)
		}
	}
	if pass.Repair.Detected != full.Repair.Detected || pass.Repair.Repairs != full.Repair.Repairs {
		t.Errorf("repair counters = %+v, want %+v", pass.Repair, full.Repair)
	}
}

func TestDesignStateCloneIsDeep(t *testing.T) {
	src := NewSeparatedWithFaults(4, 3, DefaultParams(), FaultConfig{SpareRows: 2}, 0)
	ageDesign(t, src)
	st := src.ExportState()
	cl := st.Clone()
	cl.Arrays[0].Planes[0][0] ^= 1
	cl.Arrays[0].Wear[0] += 7
	cl.Repair.Remap[0] = 3
	if reflect.DeepEqual(st, cl) {
		t.Fatal("clone shares memory with the original")
	}
	if got := src.ExportState(); !reflect.DeepEqual(got, st) {
		t.Fatal("mutating a clone reached the design")
	}
}
