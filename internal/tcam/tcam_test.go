package tcam

import (
	"math/rand"
	"testing"

	"hyperap/internal/bits"
)

func randomStates(rng *rand.Rand, n int) []bits.State {
	ss := make([]bits.State, n)
	for i := range ss {
		ss[i] = bits.State(rng.Intn(3))
	}
	return ss
}

func randomKeys(rng *rand.Rand, n int) []bits.Key {
	ks := make([]bits.Key, n)
	for i := range ks {
		ks[i] = bits.Key(rng.Intn(4))
	}
	return ks
}

// logicalMatch is the reference match rule from the abstract machine model.
func logicalMatch(keys []bits.Key, word []bits.State) bool {
	for i, k := range keys {
		if !k.Match(word[i]) {
			return false
		}
	}
	return true
}

func designs(rows, nbits int) map[string]Design {
	p := DefaultParams()
	return map[string]Design{
		"separated":  NewSeparated(rows, nbits, p),
		"monolithic": NewMonolithic(rows, nbits, p),
	}
}

// TestElectricalMatchesLogical verifies that the match-line discharge model
// (diode currents, SA threshold) reproduces the abstract match rule of
// Fig. 4 exactly, for both array designs.
func TestElectricalMatchesLogical(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const rows, nbits = 32, 16
	for name, d := range designs(rows, nbits) {
		words := make([][]bits.State, rows)
		for r := range words {
			words[r] = randomStates(rng, nbits)
			for b, s := range words[r] {
				d.Load(r, b, s)
			}
		}
		for trial := 0; trial < 200; trial++ {
			keys := randomKeys(rng, nbits)
			got := d.Search(keys)
			for r := 0; r < rows; r++ {
				want := logicalMatch(keys, words[r])
				if got[r] != want {
					t.Fatalf("%s: trial %d row %d: electrical=%v logical=%v keys=%s word=%s",
						name, trial, r, got[r], want,
						bits.KeysString(keys), bits.StatesString(words[r]))
				}
			}
		}
	}
}

// TestFullWidthSearchRobust checks that driving every bit of a 256-bit word
// stays inside the sensing margin with the FAST-selector leak model.
func TestFullWidthSearchRobust(t *testing.T) {
	p := DefaultParams()
	// A fully-Z key drives 2 cells per bit: 512 active cells.
	if m := p.SearchMargin(512); m <= 0 {
		t.Fatalf("margin for 512 active cells = %g, want positive", m)
	}
	d := NewSeparated(4, 256, p)
	keys := make([]bits.Key, 256)
	for i := range keys {
		keys[i] = bits.KZ
		d.Load(0, i, bits.SX) // row 0 matches all-Z
		d.Load(1, i, bits.S0) // row 1 mismatches
	}
	m := d.Search(keys)
	if !m[0] || m[1] {
		t.Fatalf("full-width Z search: got %v, want row0 match row1 mismatch", m[:2])
	}
}

// TestSearchMarginCollapses documents that the sensing margin is finite:
// wide-enough searches eventually become non-robust, which is one of the
// reasons the paper caps lookup-table inputs (§V-B.4).
func TestSearchMarginCollapses(t *testing.T) {
	p := DefaultParams()
	if p.SearchMargin(1) <= 0 {
		t.Fatal("single-cell search must be robust")
	}
	if p.SearchMargin(1_000_000) > 0 {
		t.Fatal("margin should collapse for absurdly wide searches")
	}
}

func TestAssociativeWriteSelectsRows(t *testing.T) {
	for name, d := range designs(8, 4) {
		for r := 0; r < 8; r++ {
			for b := 0; b < 4; b++ {
				d.Load(r, b, bits.S0)
			}
		}
		sel := make([]bool, 8)
		sel[2], sel[5] = true, true
		d.Write(1, bits.K1, sel)
		for r := 0; r < 8; r++ {
			want := bits.S0
			if r == 2 || r == 5 {
				want = bits.S1
			}
			if got := d.State(r, 1); got != want {
				t.Errorf("%s: row %d bit 1 = %v, want %v", name, r, got, want)
			}
			if got := d.State(r, 0); got != bits.S0 {
				t.Errorf("%s: row %d bit 0 disturbed: %v", name, r, got)
			}
		}
	}
}

func TestWriteZWritesX(t *testing.T) {
	for name, d := range designs(2, 2) {
		d.Load(0, 0, bits.S1)
		sel := []bool{true, false}
		d.Write(0, bits.KZ, sel)
		if got := d.State(0, 0); got != bits.SX {
			t.Errorf("%s: write Z gave %v, want X", name, got)
		}
	}
}

func TestWritePerRow(t *testing.T) {
	for name, d := range designs(4, 2) {
		states := []bits.State{bits.S0, bits.S1, bits.SX, bits.S1}
		sel := []bool{true, true, true, false}
		d.WritePerRow(0, states, sel)
		want := []bits.State{bits.S0, bits.S1, bits.SX, bits.SX} // row 3 untouched (erased=X)
		for r, w := range want {
			if got := d.State(r, 0); got != w {
				t.Errorf("%s: row %d = %v, want %v", name, r, got, w)
			}
		}
	}
}

// TestPulseSlots verifies the §IV-B claim: the separated design halves the
// write latency because the two cells of a TCAM bit are written in
// parallel.
func TestPulseSlots(t *testing.T) {
	p := DefaultParams()
	sep := NewSeparated(4, 4, p)
	mono := NewMonolithic(4, 4, p)
	sel := []bool{true, true, false, false}
	if got, _ := sep.Write(0, bits.K1, sel); got != 1 {
		t.Errorf("separated write = %d pulse slots, want 1", got)
	}
	if got, _ := mono.Write(0, bits.K1, sel); got != 2 {
		t.Errorf("monolithic write = %d pulse slots, want 2", got)
	}
	if sep.PulseSlotsPerBit() != 1 || mono.PulseSlotsPerBit() != 2 {
		t.Error("PulseSlotsPerBit wrong")
	}
	// No rows selected: nothing to pulse.
	none := []bool{false, false, false, false}
	if got, _ := sep.Write(0, bits.K1, none); got != 0 {
		t.Errorf("empty write = %d pulse slots, want 0", got)
	}
}

func TestV3SchemeNoDisturbViolations(t *testing.T) {
	for name, d := range designs(16, 8) {
		sel := make([]bool, 16)
		for i := 0; i < 16; i += 2 {
			sel[i] = true
		}
		for b := 0; b < 8; b++ {
			d.Write(b, bits.KeyForBit(b%2 == 0), sel)
		}
		st := d.Stats()
		if st.DisturbViolations != 0 {
			t.Errorf("%s: %d disturb violations under V/3 biasing", name, st.DisturbViolations)
		}
		if st.HalfSelected == 0 {
			t.Errorf("%s: half-selected cells not accounted", name)
		}
		if st.CellWrites == 0 {
			t.Errorf("%s: cell writes not accounted", name)
		}
	}
}

func TestStatsSearchAccounting(t *testing.T) {
	d := NewSeparated(8, 4, DefaultParams())
	keys := []bits.Key{bits.K1, bits.KDC, bits.KDC, bits.KDC}
	d.Search(keys)
	st := d.Stats()
	if st.Searches != 2 { // one per crossbar
		t.Errorf("Searches = %d, want 2", st.Searches)
	}
	// Key 1 drives VL on exactly one array's line: 1 cell × 8 rows.
	if st.SearchedCells != 8 {
		t.Errorf("SearchedCells = %d, want 8", st.SearchedCells)
	}
}

func TestInvalidCellPairPanics(t *testing.T) {
	d := NewSeparated(1, 1, DefaultParams())
	// Force the invalid (LRS, LRS) combination through the raw crossbars.
	d.a.SetCell(0, 0, LRS)
	d.b.SetCell(0, 0, LRS)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on invalid cell pair")
		}
	}()
	_ = d.State(0, 0)
}

func TestCrossbarBounds(t *testing.T) {
	c := NewCrossbar(2, 2, DefaultParams())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range cell")
		}
	}()
	c.Cell(2, 0)
}

func TestLoadImage(t *testing.T) {
	c := NewCrossbar(2, 2, DefaultParams())
	c.LoadImage([]Resist{LRS, HRS, HRS, LRS})
	if c.Cell(0, 0) != LRS || c.Cell(1, 1) != LRS || c.Cell(0, 1) != HRS {
		t.Error("LoadImage wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on size mismatch")
		}
	}()
	c.LoadImage([]Resist{LRS})
}
