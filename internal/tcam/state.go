package tcam

import (
	"fmt"

	"hyperap/internal/bits"
)

// This file is the serialization boundary of the TCAM layer: everything
// that makes chip state a *lifetime* property rather than a
// process-lifetime one — per-cell wear counters, stuck-cell planes,
// burned spares and the logical→physical remap — can be exported as
// plain data and re-imported into a freshly constructed array. The store
// package persists these structures; serve uses them both for durable
// checkpoints and to pre-age the fresh chip each batch pass builds.
//
// What is deliberately NOT serialized: the per-crossbar math/rand stream
// driving future fault draws. A restore reproduces the accumulated
// damage exactly (wear, stuck cells, remaps, counters) but the fault
// stream after the restore point continues from the fresh construction
// seed — determinism of *future* faults across a restart is not a
// checkpoint invariant, accumulated state is.

// CrossbarState is the serializable lifetime state of one crossbar. All
// planes are LSB-first uint64 words as produced by bits.Vec.Words.
type CrossbarState struct {
	Rows        int
	Cols        int
	LogicalRows int

	Planes [][]uint64 // per-column programmed-LRS plane (len Cols)
	Wear   []uint32   // per-cell programming-pulse counts, row-major

	// Stuck planes are nil when the crossbar has never had a stuck cell
	// (the healthy fast path stays plane-free after a restore too).
	StuckH [][]uint64 // per-column stuck-at-HRS plane
	StuckL [][]uint64 // per-column stuck-at-LRS plane

	InjectedStuck   int
	EnduranceFailed int
	TransientUpsets int64

	Stats Stats
}

// ExportState snapshots the crossbar's full state. The result shares no
// memory with the crossbar.
func (c *Crossbar) ExportState() CrossbarState {
	st := CrossbarState{
		Rows:            c.rows,
		Cols:            c.cols,
		LogicalRows:     c.logicalRows,
		Wear:            append([]uint32(nil), c.wear...),
		InjectedStuck:   c.injectedStuck,
		EnduranceFailed: c.enduranceFailed,
		TransientUpsets: c.transientUpsets,
		Stats:           c.Stats,
	}
	st.Planes = make([][]uint64, c.cols)
	for col, p := range c.planes {
		st.Planes[col] = p.Words()
	}
	if c.stuckAny != nil {
		st.StuckH = make([][]uint64, c.cols)
		st.StuckL = make([][]uint64, c.cols)
		for col := 0; col < c.cols; col++ {
			st.StuckH[col] = c.stuckH[col].Words()
			st.StuckL[col] = c.stuckL[col].Words()
		}
	}
	return st
}

// validate checks st against the crossbar's geometry without mutating
// anything, so a failed import leaves the crossbar untouched. It is a
// complete dry run — plane word counts and stray bits included — which
// lets the design-level imports validate everything first and then
// apply without a failure path.
func (c *Crossbar) validate(st CrossbarState) error {
	if st.Rows != c.rows || st.Cols != c.cols {
		return fmt.Errorf("tcam: state geometry %dx%d does not match crossbar %dx%d", st.Rows, st.Cols, c.rows, c.cols)
	}
	if st.LogicalRows != c.logicalRows {
		return fmt.Errorf("tcam: state logical rows %d does not match crossbar %d", st.LogicalRows, c.logicalRows)
	}
	if len(st.Planes) != c.cols {
		return fmt.Errorf("tcam: %d state planes for %d columns", len(st.Planes), c.cols)
	}
	if len(st.Wear) != len(c.wear) {
		return fmt.Errorf("tcam: %d wear entries for %d cells", len(st.Wear), len(c.wear))
	}
	if (st.StuckH == nil) != (st.StuckL == nil) {
		return fmt.Errorf("tcam: stuck planes half-present in state")
	}
	if st.StuckH != nil && (len(st.StuckH) != c.cols || len(st.StuckL) != c.cols) {
		return fmt.Errorf("tcam: %d/%d stuck planes for %d columns", len(st.StuckH), len(st.StuckL), c.cols)
	}
	for name, planes := range map[string][][]uint64{"data": st.Planes, "stuckH": st.StuckH, "stuckL": st.StuckL} {
		for col, p := range planes {
			if _, err := bits.VecFromWords(c.rows, p); err != nil {
				return fmt.Errorf("tcam: column %d %s plane: %w", col, name, err)
			}
		}
	}
	return nil
}

// ImportState overwrites the crossbar's state from a snapshot. Geometry
// must match exactly; on error the crossbar is unchanged. The rng stream
// is not part of the snapshot (see the file comment).
func (c *Crossbar) ImportState(st CrossbarState) error {
	if err := c.validate(st); err != nil {
		return err
	}
	planes := make([]*bits.Vec, c.cols)
	for col := range planes {
		v, err := bits.VecFromWords(c.rows, st.Planes[col])
		if err != nil {
			return fmt.Errorf("tcam: column %d plane: %w", col, err)
		}
		planes[col] = v
	}
	var sh, sl, sa []*bits.Vec
	if st.StuckH != nil {
		sh = make([]*bits.Vec, c.cols)
		sl = make([]*bits.Vec, c.cols)
		sa = make([]*bits.Vec, c.cols)
		for col := 0; col < c.cols; col++ {
			h, err := bits.VecFromWords(c.rows, st.StuckH[col])
			if err != nil {
				return fmt.Errorf("tcam: column %d stuckH plane: %w", col, err)
			}
			l, err := bits.VecFromWords(c.rows, st.StuckL[col])
			if err != nil {
				return fmt.Errorf("tcam: column %d stuckL plane: %w", col, err)
			}
			a := h.Clone()
			a.Or(l)
			sh[col], sl[col], sa[col] = h, l, a
		}
	}
	c.planes = planes
	copy(c.wear, st.Wear)
	c.stuckH, c.stuckL, c.stuckAny = sh, sl, sa
	c.injectedStuck = st.InjectedStuck
	c.enduranceFailed = st.EnduranceFailed
	c.transientUpsets = st.TransientUpsets
	c.Stats = st.Stats
	return nil
}

// RepairSnapshot is the serializable repair state of one array design:
// the logical→physical remap, the spare free-list position, and the
// repair counters.
type RepairSnapshot struct {
	Logical   int
	PhysRows  int
	Remap     []int
	NextSpare int

	Detected     int64
	Repairs      int
	RepairPulses int64
}

func (rs *repairState) export() RepairSnapshot {
	return RepairSnapshot{
		Logical:      rs.logical,
		PhysRows:     rs.physRows,
		Remap:        append([]int(nil), rs.remap...),
		NextSpare:    rs.nextSpare,
		Detected:     rs.detected,
		Repairs:      rs.repairs,
		RepairPulses: rs.repairPulses,
	}
}

func (rs *repairState) validate(s RepairSnapshot) error {
	if s.Logical != rs.logical || s.PhysRows != rs.physRows {
		return fmt.Errorf("tcam: repair geometry %d/%d does not match array %d/%d", s.Logical, s.PhysRows, rs.logical, rs.physRows)
	}
	if len(s.Remap) != rs.logical {
		return fmt.Errorf("tcam: remap has %d entries for %d logical rows", len(s.Remap), rs.logical)
	}
	if s.NextSpare < rs.logical || s.NextSpare > s.PhysRows {
		return fmt.Errorf("tcam: next spare %d out of range [%d,%d]", s.NextSpare, rs.logical, s.PhysRows)
	}
	seen := make(map[int]bool, len(s.Remap))
	for r, p := range s.Remap {
		if p < 0 || p >= s.PhysRows {
			return fmt.Errorf("tcam: remap[%d]=%d out of %d physical rows", r, p, s.PhysRows)
		}
		if seen[p] {
			return fmt.Errorf("tcam: remap maps two logical rows to physical row %d", p)
		}
		seen[p] = true
		// A non-identity target must be a consumed spare.
		if p != r && (p < rs.logical || p >= s.NextSpare) {
			return fmt.Errorf("tcam: remap[%d]=%d is not a consumed spare", r, p)
		}
	}
	return nil
}

func (rs *repairState) importSnapshot(s RepairSnapshot) error {
	if err := rs.validate(s); err != nil {
		return err
	}
	copy(rs.remap, s.Remap)
	rs.nextSpare = s.NextSpare
	rs.detected = s.Detected
	rs.repairs = s.Repairs
	rs.repairPulses = s.RepairPulses
	rs.remapped = false
	live := bits.NewVec(rs.physRows)
	for r, p := range rs.remap {
		live.Set(p, true)
		if p != r {
			rs.remapped = true
		}
	}
	rs.live = live
	return nil
}

// DesignState is the serializable lifetime state of one TCAM array
// design: per-crossbar states plus the repair remap.
type DesignState struct {
	Separated bool
	Arrays    []CrossbarState
	Repair    RepairSnapshot
}

// ExportState snapshots the full design state.
func (d *Separated) ExportState() DesignState {
	return DesignState{
		Separated: true,
		Arrays:    []CrossbarState{d.a.ExportState(), d.b.ExportState()},
		Repair:    d.rs.export(),
	}
}

// ImportState restores a previously exported state; geometry (rows,
// bits, spare provisioning, design kind) must match. On error nothing
// is modified.
func (d *Separated) ImportState(st DesignState) error {
	if !st.Separated || len(st.Arrays) != 2 {
		return fmt.Errorf("tcam: state is not a separated design (%d arrays)", len(st.Arrays))
	}
	if err := d.a.validate(st.Arrays[0]); err != nil {
		return err
	}
	if err := d.b.validate(st.Arrays[1]); err != nil {
		return err
	}
	if err := d.rs.validate(st.Repair); err != nil {
		return err
	}
	// All validated: the individual imports below cannot fail.
	mustImport(d.a, st.Arrays[0])
	mustImport(d.b, st.Arrays[1])
	mustImportRepair(d.rs, st.Repair)
	return nil
}

// ExportState snapshots the full design state.
func (d *Monolithic) ExportState() DesignState {
	return DesignState{
		Arrays: []CrossbarState{d.x.ExportState()},
		Repair: d.rs.export(),
	}
}

// ImportState restores a previously exported state (see
// Separated.ImportState).
func (d *Monolithic) ImportState(st DesignState) error {
	if st.Separated || len(st.Arrays) != 1 {
		return fmt.Errorf("tcam: state is not a monolithic design (%d arrays)", len(st.Arrays))
	}
	if err := d.x.validate(st.Arrays[0]); err != nil {
		return err
	}
	if err := d.rs.validate(st.Repair); err != nil {
		return err
	}
	mustImport(d.x, st.Arrays[0])
	mustImportRepair(d.rs, st.Repair)
	return nil
}

func mustImport(c *Crossbar, st CrossbarState) {
	if err := c.ImportState(st); err != nil {
		panic("tcam: validated state failed to import: " + err.Error())
	}
}

func mustImportRepair(rs *repairState, s RepairSnapshot) {
	if err := rs.importSnapshot(s); err != nil {
		panic("tcam: validated repair state failed to import: " + err.Error())
	}
}

// Degraded reports whether the state carries structural damage: a row
// remapped off its identity slot, spares consumed, or stuck cells
// beyond the crossbars' construction-time defect map cannot be told
// apart here, so any consumed spare or non-identity remap counts. This
// is the persistent signal behind "a node that died degraded comes back
// degraded": it survives ClearActivity, unlike the per-pass counters.
func (st *DesignState) Degraded() bool {
	if st.Repair.NextSpare > st.Repair.Logical {
		return true
	}
	for r, p := range st.Repair.Remap {
		if p != r {
			return true
		}
	}
	for _, a := range st.Arrays {
		if a.EnduranceFailed > 0 {
			return true
		}
	}
	return false
}

// ClearData erases the programmed data planes (back to all-HRS, the
// erased state every compiled program assumes) while keeping wear,
// stuck cells, remaps and counters. Serve uses this to pre-age the
// fresh chip each batch pass builds: the pass needs the damage, not the
// previous pass's data.
func (st *DesignState) ClearData() {
	for _, a := range st.Arrays {
		for _, p := range a.Planes {
			for i := range p {
				p[i] = 0
			}
		}
	}
}

// ClearActivity zeroes the activity counters (Stats, upsets, verify /
// repair counts) while keeping structural state. A pass chip seeded
// with a cleared copy reports only its own pass's activity, so serve's
// per-pass metrics are not inflated by history; AccumulateActivity adds
// the history back when the pass's export is folded into the ledger.
func (st *DesignState) ClearActivity() {
	for i := range st.Arrays {
		st.Arrays[i].Stats = Stats{}
		st.Arrays[i].TransientUpsets = 0
	}
	st.Repair.Detected = 0
	st.Repair.Repairs = 0
	st.Repair.RepairPulses = 0
}

// AccumulateActivity adds prev's activity counters into st. Structural
// state (planes, wear, stuck, remap) is already absolute in st — wear
// was imported before the pass and only grew — so only the counters
// ClearActivity zeroed need re-basing.
func (st *DesignState) AccumulateActivity(prev *DesignState) {
	n := len(st.Arrays)
	if len(prev.Arrays) < n {
		n = len(prev.Arrays)
	}
	for i := 0; i < n; i++ {
		a, p := &st.Arrays[i], &prev.Arrays[i]
		a.Stats.Searches += p.Stats.Searches
		a.Stats.SearchedCells += p.Stats.SearchedCells
		a.Stats.CellWrites += p.Stats.CellWrites
		a.Stats.HalfSelected += p.Stats.HalfSelected
		a.Stats.DisturbViolations += p.Stats.DisturbViolations
		a.TransientUpsets += p.TransientUpsets
	}
	st.Repair.Detected += prev.Repair.Detected
	st.Repair.Repairs += prev.Repair.Repairs
	st.Repair.RepairPulses += prev.Repair.RepairPulses
}

// Clone returns a deep copy of the state.
func (st *DesignState) Clone() DesignState {
	c := DesignState{Separated: st.Separated, Repair: st.Repair}
	c.Repair.Remap = append([]int(nil), st.Repair.Remap...)
	c.Arrays = make([]CrossbarState, len(st.Arrays))
	for i, a := range st.Arrays {
		ca := a
		ca.Wear = append([]uint32(nil), a.Wear...)
		ca.Planes = clonePlanes(a.Planes)
		ca.StuckH = clonePlanes(a.StuckH)
		ca.StuckL = clonePlanes(a.StuckL)
		c.Arrays[i] = ca
	}
	return c
}

func clonePlanes(ps [][]uint64) [][]uint64 {
	if ps == nil {
		return nil
	}
	out := make([][]uint64, len(ps))
	for i, p := range ps {
		out[i] = append([]uint64(nil), p...)
	}
	return out
}

// MaxWear returns the highest per-cell programming-pulse count in the
// state (any array, any cell, spares included).
func (st *DesignState) MaxWear() uint32 {
	var m uint32
	for _, a := range st.Arrays {
		for _, n := range a.Wear {
			if n > m {
				m = n
			}
		}
	}
	return m
}

// SparesUsed returns the number of consumed spare rows (including
// burned ones).
func (st *DesignState) SparesUsed() int {
	return st.Repair.NextSpare - st.Repair.Logical
}
