package arch

import (
	"testing"

	"hyperap/internal/bits"
	"hyperap/internal/isa"
)

// TestMIMDTwoGroups demonstrates the top-level MIMD organisation of
// Fig. 6a: banks in different instruction groups run different programs
// (here, "set bit 0" in group 0 and "set bit 1" in group 1), with
// Broadcast steering the stream and Wait re-synchronising — the paper's
// instruction- and task-level parallelism (§IV-B).
func TestMIMDTwoGroups(t *testing.T) {
	cfg := Config{
		Banks:            2,
		SubarraysPerBank: 1,
		PEsPerSubarray:   1,
		Rows:             4,
		Bits:             8,
		Groups:           2,
		Tech:             DefaultSmallConfig().Tech,
	}
	c := New(cfg)
	keys := func(col int, k bits.Key) isa.Instruction {
		ks := make([]bits.Key, isa.KeyWidth)
		for i := range ks {
			ks[i] = bits.KDC
		}
		ks[col] = k
		return isa.Instruction{Op: isa.OpSetKey, Keys: ks}
	}
	matchAll := isa.Instruction{Op: isa.OpSetKey, Keys: func() []bits.Key {
		ks := make([]bits.Key, isa.KeyWidth)
		for i := range ks {
			ks[i] = bits.KDC
		}
		return ks
	}()}

	// Group 0's task writes bit 0; group 1's task writes bit 1 twice
	// (taking longer), then both re-join.
	prog := isa.Program{
		isa.Broadcast(0b01),
		matchAll, isa.Search(false, false),
		keys(0, bits.K1), isa.Write(0, false),

		isa.Broadcast(0b10),
		matchAll, isa.Search(false, false),
		keys(1, bits.K1), isa.Write(1, false),
		keys(1, bits.K0), isa.Write(1, false),
		keys(1, bits.K1), isa.Write(1, false),

		isa.Broadcast(0b01),
		isa.Wait(26), // group 1 ran two extra SetKey+Write pairs (2×13)
		isa.Broadcast(0b11),
	}
	if err := c.Execute(prog); err != nil {
		t.Fatal(err)
	}
	// Functional isolation: group 0's PE has bit 0 set, not bit 1.
	if b, err := c.PE(0).M.ReadBit(0, 0); err != nil || !b {
		t.Error("group 0 missing its own write")
	}
	if _, err := c.PE(0).M.ReadBit(0, 1); err == nil {
		t.Error("group 0 executed group 1's instructions")
	}
	if b, err := c.PE(1).M.ReadBit(0, 1); err != nil || !b {
		t.Error("group 1 missing its own write")
	}
	if _, err := c.PE(1).M.ReadBit(0, 0); err == nil {
		t.Error("group 1 executed group 0's instructions")
	}
	// Wait brought the groups back into lockstep (the compiler resolves
	// the cycle count offline because Compute instructions are
	// deterministic, §IV-A.12).
	r := c.Report()
	if r.GroupCycles[0] != r.GroupCycles[1] {
		t.Errorf("groups out of sync after Wait: %v", r.GroupCycles)
	}
}
