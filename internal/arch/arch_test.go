package arch

import (
	"testing"

	"hyperap/internal/bits"
	"hyperap/internal/isa"
	"hyperap/internal/tech"
)

func smallChip() *Chip {
	cfg := DefaultSmallConfig()
	cfg.Rows = 8
	cfg.Bits = 16
	return New(cfg)
}

func fullKeys(pairs map[int]bits.Key) []bits.Key {
	ks := make([]bits.Key, isa.KeyWidth)
	for i := range ks {
		ks[i] = bits.KDC
	}
	for c, k := range pairs {
		ks[c] = k
	}
	return ks
}

// TestExecuteFig5dProgram runs the Fig. 5d 1-bit addition as a real ISA
// program on the simulated chip and checks results in every PE.
func TestExecuteFig5dProgram(t *testing.T) {
	c := smallChip()
	for p := 0; p < c.NumPEs(); p++ {
		pe := c.PE(p)
		for row := 0; row < 8; row++ {
			a, b, ci := row&1 != 0, row&2 != 0, row&4 != 0
			pe.M.LoadPair(row, 0, a, b)
			pe.M.LoadBit(row, 2, ci)
			pe.M.LoadBit(row, 3, false)
			pe.M.LoadBit(row, 4, false)
		}
	}
	k := func(s string, cols ...int) isa.Instruction {
		parsed, err := bits.ParseKeys(s)
		if err != nil {
			t.Fatal(err)
		}
		m := map[int]bits.Key{}
		for i, col := range cols {
			m[col] = parsed[i]
		}
		return isa.Instruction{Op: isa.OpSetKey, Keys: fullKeys(m)}
	}
	prog := isa.Program{
		k("010", 0, 1, 2), isa.Search(false, false),
		k("101", 0, 1, 2), isa.Search(true, false),
		k("1", 3), isa.Write(3, false),
		k("-11", 0, 1, 2), isa.Search(false, false),
		k("1Z0", 0, 1, 2), isa.Search(true, false),
		k("1", 4), isa.Write(4, false),
	}
	if err := c.Execute(prog); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < c.NumPEs(); p++ {
		pe := c.PE(p)
		for row := 0; row < 8; row++ {
			a, b, ci := row&1, row>>1&1, row>>2&1
			sum, cout := (a+b+ci)&1 == 1, (a+b+ci)>>1 == 1
			if got, err := pe.M.ReadBit(row, 3); err != nil || got != sum {
				t.Errorf("PE %d row %d: sum = %v (%v)", p, row, got, err)
			}
			if got, err := pe.M.ReadBit(row, 4); err != nil || got != cout {
				t.Errorf("PE %d row %d: cout = %v (%v)", p, row, got, err)
			}
		}
	}
	r := c.Report()
	// 6 SetKey (1 cycle each) + 4 searches (1 each) + 2 writes (12 each).
	if want := int64(6 + 4 + 2*12); r.Cycles != want {
		t.Errorf("cycles = %d, want %d", r.Cycles, want)
	}
	if r.Searches != 4*int64(c.NumPEs()) || r.Writes != 2*int64(c.NumPEs()) {
		t.Errorf("ops = %dS/%dW", r.Searches, r.Writes)
	}
	if r.Energy.TotalJ() <= 0 {
		t.Error("energy not accounted")
	}
}

func TestMonolithicWriteCycles(t *testing.T) {
	cfg := DefaultSmallConfig()
	cfg.Rows, cfg.Bits = 4, 8
	cfg.Monolithic = true
	c := New(cfg)
	prog := isa.Program{
		isa.Instruction{Op: isa.OpSetKey, Keys: fullKeys(map[int]bits.Key{0: bits.K1})},
		isa.Search(false, false), // match all (key 1 matches X in erased array)
		isa.Write(0, false),
	}
	if err := c.Execute(prog); err != nil {
		t.Fatal(err)
	}
	// Write = 1 + 1 + 20 with the monolithic design.
	if want := int64(1 + 1 + 22); c.Report().Cycles != want {
		t.Errorf("cycles = %d, want %d", c.Report().Cycles, want)
	}
}

func TestCountIndexSetTagReadTag(t *testing.T) {
	c := smallChip()
	pe := c.PE(0)
	for row := 0; row < 8; row++ {
		pe.M.LoadBit(row, 0, row%2 == 1)
	}
	prog := isa.Program{
		isa.Instruction{Op: isa.OpSetKey, Keys: fullKeys(map[int]bits.Key{0: bits.K1})},
		isa.Search(false, false),
		isa.Instruction{Op: isa.OpCount},
		isa.Instruction{Op: isa.OpIndex},
		isa.Instruction{Op: isa.OpReadTag},
	}
	if err := c.Execute(prog); err != nil {
		t.Fatal(err)
	}
	if pe.CountResult != 4 {
		t.Errorf("count = %d, want 4", pe.CountResult)
	}
	if pe.IndexResult != 1 {
		t.Errorf("index = %d, want 1", pe.IndexResult)
	}
	if !pe.Data.Get(1) || pe.Data.Get(0) {
		t.Error("ReadTag did not copy tags to data register")
	}
	// Round-trip back through SetTag.
	pe.Data.Set(0, true)
	if err := c.Execute(isa.Program{{Op: isa.OpSetTag}}); err != nil {
		t.Fatal(err)
	}
	if !pe.M.Tags().Get(0) || !pe.M.Tags().Get(1) {
		t.Error("SetTag did not restore tags")
	}
}

func TestMovRShiftsAcrossPEs(t *testing.T) {
	cfg := DefaultSmallConfig()
	cfg.PEsPerSubarray = 4
	cfg.Rows, cfg.Bits = 4, 8
	c := New(cfg)
	for p := 0; p < 4; p++ {
		c.PE(p).Data.Set(p, true) // PE p holds a 1 at position p
	}
	if err := c.Execute(isa.Program{isa.MovR(isa.DirRight)}); err != nil {
		t.Fatal(err)
	}
	// PE p now holds PE p-1's register; PE 0 is cleared.
	if c.PE(0).Data.OnesCount() != 0 {
		t.Error("edge PE not cleared")
	}
	for p := 1; p < 4; p++ {
		if !c.PE(p).Data.Get(p-1) || c.PE(p).Data.OnesCount() != 1 {
			t.Errorf("PE %d register wrong after MovR right", p)
		}
	}
	if err := c.Execute(isa.Program{isa.MovR(isa.DirLeft)}); err != nil {
		t.Fatal(err)
	}
	// Shifting back: PE p holds what PE p+1 had.
	for p := 0; p < 3; p++ {
		if !c.PE(p).Data.Get(p) && p != 3 {
			if p != 0 { // PE0 receives PE1's (which held PE0's original)
				t.Errorf("PE %d register wrong after MovR left", p)
			}
		}
	}
}

func TestMovRVertical(t *testing.T) {
	cfg := DefaultSmallConfig()
	cfg.Banks = 2
	cfg.Rows, cfg.Bits = 4, 8
	cfg.PEsPerSubarray = 1
	c := New(cfg)
	c.PE(0).Data.Set(5, true)
	if err := c.Execute(isa.Program{isa.MovR(isa.DirDown)}); err != nil {
		t.Fatal(err)
	}
	if !c.PE(1).Data.Get(5) {
		t.Error("MovR down did not cross banks")
	}
	if c.PE(0).Data.OnesCount() != 0 {
		t.Error("top edge not cleared")
	}
}

func TestReadRWriteR(t *testing.T) {
	c := smallChip()
	imm := make([]byte, 64)
	imm[0] = 0b1010
	prog := isa.Program{
		{Op: isa.OpWriteR, Addr: 1, Imm: imm},
		{Op: isa.OpReadR, Addr: 1},
	}
	if err := c.Execute(prog); err != nil {
		t.Fatal(err)
	}
	pe := c.PE(1)
	if pe.Data.Get(0) || !pe.Data.Get(1) || pe.Data.Get(2) || !pe.Data.Get(3) {
		t.Error("WriteR contents wrong")
	}
	if len(c.DataBuffer) != 64 || c.DataBuffer[0] != 0b1010 {
		t.Errorf("ReadR buffer = %v...", c.DataBuffer[:2])
	}
}

func TestGroupsBroadcastWait(t *testing.T) {
	cfg := DefaultSmallConfig()
	cfg.Banks = 2
	cfg.Groups = 2
	cfg.Rows, cfg.Bits = 4, 8
	cfg.PEsPerSubarray = 1
	c := New(cfg)
	prog := isa.Program{
		isa.Broadcast(0b01), // group 0 only
		isa.Instruction{Op: isa.OpSetKey, Keys: fullKeys(map[int]bits.Key{0: bits.K1})},
		isa.Search(false, false),
		isa.Write(0, false),
		isa.Broadcast(0b10), // group 1 only
		isa.Wait(14),        // let group 1 catch up (setkey+search+write = 14)
		isa.Broadcast(0b11),
	}
	if err := c.Execute(prog); err != nil {
		t.Fatal(err)
	}
	r := c.Report()
	if r.GroupCycles[0] != r.GroupCycles[1] {
		t.Errorf("groups out of sync: %v", r.GroupCycles)
	}
	// Group 1's PE must not have been written.
	if _, err := c.PE(1).M.ReadBit(0, 0); err == nil {
		t.Error("group 1 executed a group-0 instruction")
	}
	if b, err := c.PE(0).M.ReadBit(0, 0); err != nil || !b {
		t.Error("group 0 write missing")
	}
}

func TestWriteMaskedKeyErrors(t *testing.T) {
	c := smallChip()
	prog := isa.Program{
		isa.Instruction{Op: isa.OpSetKey, Keys: fullKeys(nil)},
		isa.Search(false, false),
		isa.Write(0, false),
	}
	if err := c.Execute(prog); err == nil {
		t.Error("write with masked key should error")
	}
}

func TestWriteColumnOutOfRange(t *testing.T) {
	cfg := DefaultSmallConfig()
	cfg.Rows, cfg.Bits = 4, 8
	c := New(cfg)
	if err := c.Execute(isa.Program{isa.Write(200, false)}); err == nil {
		t.Error("out-of-range column should error")
	}
}

func TestEncodedWriteProgram(t *testing.T) {
	c := smallChip()
	pe0 := c.PE(0)
	for row := 0; row < 8; row++ {
		pe0.M.LoadBit(row, 0, row&1 != 0)
	}
	prog := isa.Program{
		isa.Instruction{Op: isa.OpSetKey, Keys: fullKeys(map[int]bits.Key{0: bits.K0})},
		isa.Search(false, true), // lo = ¬bit0, latch
		isa.Instruction{Op: isa.OpSetKey, Keys: fullKeys(map[int]bits.Key{0: bits.K1})},
		isa.Search(false, true), // hi = bit0, latch
		isa.Write(4, true),
	}
	if err := c.Execute(prog); err != nil {
		t.Fatal(err)
	}
	for row := 0; row < 8; row++ {
		b := row&1 != 0
		hi, lo, err := pe0.M.ReadPair(row, 4)
		if err != nil || hi != b || lo == b {
			t.Errorf("row %d: pair (%v,%v) err %v", row, hi, lo, err)
		}
	}
	// Encoded write costs 23 cycles.
	if want := int64(1 + 1 + 1 + 1 + 23); c.Report().Cycles != want {
		t.Errorf("cycles = %d, want %d", c.Report().Cycles, want)
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Banks: 3, Groups: 2, SubarraysPerBank: 1, PEsPerSubarray: 1, Rows: 4, Bits: 4, Tech: tech.RRAM()})
}

func TestPEAddressBounds(t *testing.T) {
	c := smallChip()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.PE(99)
}

func TestTraceHook(t *testing.T) {
	c := smallChip()
	c.Tracing = true
	prog := isa.Program{
		isa.Instruction{Op: isa.OpSetKey, Keys: fullKeys(nil)},
		isa.Search(false, false),
	}
	if err := c.Execute(prog); err != nil {
		t.Fatal(err)
	}
	events := c.TraceEvents()
	if len(events) != 2 {
		t.Fatalf("traced %d events, want 2", len(events))
	}
	if events[1].Instr.Op != isa.OpSearch || events[1].TaggedRows != 8 {
		t.Errorf("trace event wrong: %+v", events[1])
	}
	if events[0].PC != 0 || events[1].PC != 1 || events[0].Cycles != 1 {
		t.Errorf("trace bookkeeping wrong: %+v", events)
	}
	if events[0].Seq != 0 || events[1].Seq != 1 {
		t.Errorf("trace sequence wrong: %+v", events)
	}
	if events[1].CumCycles != 2 {
		t.Errorf("CumCycles = %d, want 2 (SetKey 1cy + Search 1cy)", events[1].CumCycles)
	}
	if events[1].EnergyJ <= 0 {
		t.Errorf("EnergyJ = %g, want > 0 for a search", events[1].EnergyJ)
	}
	c.ResetTrace()
	if len(c.TraceEvents()) != 0 {
		t.Error("ResetTrace must discard recorded events")
	}
}
