// Package arch implements the Hyper-AP micro-architecture (paper §IV,
// Figs. 6-7): a hierarchical chip of banks → subarrays → PEs, where each
// PE is a 256×256-word SIMD associative unit built from two RRAM crossbar
// arrays, and subarrays share key/mask registers through their local
// controller. Banks are assigned to instruction groups; groups execute
// independent streams (MIMD) and synchronise with Wait, while the
// Broadcast instruction selects which groups receive the following
// instructions.
//
// The simulator executes ISA programs with the cycle costs of Table I and
// produces an operation/energy report. Programs made of per-subarray
// instructions can additionally run through ExecuteParallel, which steps
// independent subarrays concurrently on a bounded worker pool — each
// subarray owns its operation ledger and the chip Report merges them at
// the end — so multi-PE batches execute in parallel on the host too.
// Full-chip scale (131,072 PEs) is still extrapolated analytically by the
// bench harness; simulator instances are configured with up to a few
// dozen PEs, enough to verify functional behaviour and scaling
// row-for-row.
package arch

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"hyperap/internal/bits"
	"hyperap/internal/isa"
	"hyperap/internal/model"
	"hyperap/internal/tcam"
	"hyperap/internal/tech"
)

// Config sizes a simulated chip.
type Config struct {
	Banks            int
	SubarraysPerBank int
	PEsPerSubarray   int
	Rows             int // word rows per PE (256 on the real chip)
	Bits             int // TCAM bit columns per word (256 on the real chip)
	Groups           int // instruction groups; banks are assigned round-robin
	Tech             tech.Tech
	Monolithic       bool // use the traditional monolithic array design (Fig. 19b ablation)

	// Faults activates the RRAM fault model in every PE's TCAM arrays
	// (fault.go; zero value = fault-free). Each array derives its defect
	// map from Faults.Seed and its PE's linear address, so a chip with a
	// fixed seed is reproducible.
	Faults tcam.FaultConfig
	// SparePEs provisions this many spare subarrays (of PEsPerSubarray
	// PEs each) outside the bank hierarchy. They idle until a shard dies
	// with a FaultError during ExecuteParallel, which replays the shard
	// on a spare (see retryFailures).
	SparePEs int

	// ScalarSearch routes every TCAM search through the per-cell
	// electrical model instead of the word-parallel bit-plane path. The
	// two paths are bit-identical; this switch exists so the bench
	// harness can measure both cores with the same workload.
	ScalarSearch bool
}

// DefaultSmallConfig returns a functional-verification-sized chip: one
// group, one bank, one subarray of two full-size PEs.
func DefaultSmallConfig() Config {
	return Config{
		Banks:            1,
		SubarraysPerBank: 1,
		PEsPerSubarray:   2,
		Rows:             tech.PERows,
		Bits:             tech.PEBits,
		Groups:           1,
		Tech:             tech.RRAM(),
	}
}

// PE is one processing element (Fig. 6d / Fig. 7): the associative
// datapath plus a 512-bit data register connected to the inter-PE links.
type PE struct {
	M    *model.HyperAP
	Data *bits.Vec // 512-bit data register

	CountResult int // last Count reduction
	IndexResult int // last Index reduction

	// addr is the PE's current linear address (the <addr> space of
	// ReadR/WriteR). It changes only when a spare is swapped in for a
	// failed PE. failed is latched by the first unrepairable FaultError;
	// Health() derives the availability state from both.
	addr   int
	failed bool
}

// Subarray groups PEs behind one local controller with shared key/mask
// registers (Fig. 6c).
type Subarray struct {
	PEs  []*PE
	Keys []bits.Key // shared key/mask register contents

	// group/bank/index/pe0 locate the subarray in the chip hierarchy
	// (fixed at construction): its instruction group, its bank's linear
	// index, its position within the bank, and the linear address of its
	// first PE. Trace events carry them so merged streams stay
	// attributable after a concurrent run.
	group, bank, index, pe0 int

	// searches/writes are this subarray's associative-operation ledger,
	// and trace is its event ledger when the chip traces. Keeping both
	// local to the subarray (merged into the chip Report / TraceEvents on
	// demand) lets independent subarrays step concurrently without
	// sharing mutable state — the same pattern for events as PR 1
	// established for op counters.
	searches, writes int64
	trace            []TraceEvent
}

// Bank is a set of subarrays (Fig. 6b).
type Bank struct {
	Subarrays []*Subarray
	Group     int
}

// Group is an instruction group: banks executing the same stream.
type Group struct {
	Banks  []*Bank
	Cycles int64
}

// Chip is the simulated machine.
type Chip struct {
	Config Config

	GroupList []*Group
	banks     []*Bank
	pes       []*PE // linear order: bank-major, then subarray, then PE; spares last

	// Spare subarrays (Config.SparePEs) sit outside the bank hierarchy:
	// spareSubs is all of them (for ledger/trace merging), spareFree the
	// not-yet-consumed ones, numSpare the spare PE count (the tail of
	// pes). retries counts shards successfully replayed on a spare.
	spareSubs []*Subarray
	spareFree []*Subarray
	numSpare  int
	retries   int64

	gridW, gridH int // PE grid for MovR: width = PEs per bank, height = banks

	groupMask  uint8
	DataBuffer []byte // top-level controller data buffer (ReadR destination)

	// Tracing, when true, records one TraceEvent per executed instruction
	// per subarray into per-subarray ledgers (chip-level instructions go
	// to a chip-level ledger); TraceEvents merges them. Unlike the old
	// TraceFn callback, ledger tracing is parallel-safe: ExecuteParallel
	// traces without falling back to the serial path. Set it before the
	// instructions to observe execute.
	Tracing bool

	// TraceID, when non-empty, is the distributed trace id of the request
	// that drove this pass (compile.WithTraceID); exporters carry it so a
	// chip timeline can be joined to the cluster-level stitched trace.
	TraceID string

	instrSeq  int64        // instructions dispatched so far (event Seq)
	chipTrace []TraceEvent // top-level controller events (serial-only ops)

	report Report
}

// TraceEvent describes one executed instruction on one subarray (or, for
// the chip-level control and data-movement instructions, on the top-level
// controller).
type TraceEvent struct {
	Seq    int64 // global instruction sequence number, across Execute calls
	PC     int   // instruction index within its program
	Instr  isa.Instruction
	Cycles int // this instruction's cycle cost

	// CumCycles is the owning group's cycle counter after this
	// instruction (for chip-level events: the critical path over all
	// groups).
	CumCycles int64

	// Group/Bank/Subarray/PE locate the subarray that executed the
	// instruction; PE is the linear address of its first PE (the <addr>
	// space of ReadR/WriteR). Chip-level instructions (Broadcast, Wait,
	// MovR, ReadR, WriteR) execute on the top-level controller and carry
	// -1 in all four.
	Group, Bank, Subarray, PE int

	// TaggedRows is the tag population of the subarray's first PE after
	// the instruction (-1 for chip-level events).
	TaggedRows int

	// EnergyJ is the energy this instruction added on this subarray
	// (chip-level events: on the whole chip), assembled from the same
	// per-PE crossbar statistics the Report energy ledger uses.
	EnergyJ float64
}

// Report summarises one or more Execute/ExecuteParallel calls. Cycles is
// per-pass wall-clock time (all PEs of a group step the same stream, so
// it does not grow with the PE count); Searches, Writes, Energy and
// MaxCellWrites aggregate across every PE of the chip.
type Report struct {
	Cycles      int64 // critical path: max over groups
	GroupCycles []int64
	Instr       map[isa.Op]int64
	// PE-level associative operation counts (per active PE, summed).
	Searches, Writes int64
	Energy           tech.EnergyLedger
	// MaxCellWrites is the largest number of programming pulses any
	// single RRAM cell of any PE received (endurance exposure).
	MaxCellWrites uint32
	// Faults aggregates the fault/repair counters of every PE's TCAM
	// arrays (zero when the fault model is off); Health counts PEs by
	// availability state; Retries counts shards replayed on a spare.
	Faults  tcam.FaultReport
	Health  HealthSummary
	Retries int64
}

// New builds a chip.
func New(cfg Config) *Chip {
	if cfg.Groups <= 0 || cfg.Banks <= 0 || cfg.SubarraysPerBank <= 0 || cfg.PEsPerSubarray <= 0 {
		panic("arch: non-positive configuration")
	}
	if cfg.Banks%cfg.Groups != 0 {
		panic("arch: banks must divide evenly into groups")
	}
	c := &Chip{Config: cfg, groupMask: 0xFF}
	c.GroupList = make([]*Group, cfg.Groups)
	for g := range c.GroupList {
		c.GroupList[g] = &Group{}
	}
	params := tcam.DefaultParams()
	newPE := func() *PE {
		var d tcam.Design
		salt := int64(len(c.pes))
		if cfg.Monolithic {
			d = tcam.NewMonolithicWithFaults(cfg.Rows, cfg.Bits, params, cfg.Faults, salt)
		} else {
			d = tcam.NewSeparatedWithFaults(cfg.Rows, cfg.Bits, params, cfg.Faults, salt)
		}
		if cfg.ScalarSearch {
			for _, x := range d.Arrays() {
				x.ForceElectrical(true)
			}
		}
		pe := &PE{M: model.NewHyperAP(d), Data: bits.NewVec(512), addr: len(c.pes)}
		c.pes = append(c.pes, pe)
		return pe
	}
	for b := 0; b < cfg.Banks; b++ {
		bank := &Bank{Group: b % cfg.Groups}
		for s := 0; s < cfg.SubarraysPerBank; s++ {
			sub := &Subarray{
				Keys:  make([]bits.Key, cfg.Bits),
				group: bank.Group, bank: b, index: s, pe0: len(c.pes),
			}
			for i := range sub.Keys {
				sub.Keys[i] = bits.KDC
			}
			for p := 0; p < cfg.PEsPerSubarray; p++ {
				sub.PEs = append(sub.PEs, newPE())
			}
			bank.Subarrays = append(bank.Subarrays, sub)
		}
		c.banks = append(c.banks, bank)
		c.GroupList[bank.Group].Banks = append(c.GroupList[bank.Group].Banks, bank)
	}
	// Spare subarrays live outside the bank/group hierarchy (bank -1):
	// they receive no dispatched instructions until a retry restores a
	// failed shard onto them.
	for s := 0; s < cfg.SparePEs; s++ {
		sub := &Subarray{
			Keys:  make([]bits.Key, cfg.Bits),
			group: 0, bank: -1, index: s, pe0: len(c.pes),
		}
		for i := range sub.Keys {
			sub.Keys[i] = bits.KDC
		}
		for p := 0; p < cfg.PEsPerSubarray; p++ {
			sub.PEs = append(sub.PEs, newPE())
			c.numSpare++
		}
		c.spareSubs = append(c.spareSubs, sub)
	}
	c.spareFree = append([]*Subarray(nil), c.spareSubs...)
	c.gridW = cfg.SubarraysPerBank * cfg.PEsPerSubarray
	c.gridH = cfg.Banks
	c.report = Report{Instr: make(map[isa.Op]int64), GroupCycles: make([]int64, cfg.Groups)}
	return c
}

// NumPEs returns the number of active (non-spare) processing elements —
// the shard address space batch execution schedules over.
func (c *Chip) NumPEs() int { return len(c.pes) - c.numSpare }

// TotalPEs returns the number of PEs including spares.
func (c *Chip) TotalPEs() int { return len(c.pes) }

// PE returns the processing element with the given linear address (the
// 17-bit <addr> of ReadR/WriteR).
func (c *Chip) PE(addr int) *PE {
	if addr < 0 || addr >= len(c.pes) {
		panic(fmt.Sprintf("arch: PE address %d out of range [0,%d)", addr, len(c.pes)))
	}
	return c.pes[addr]
}

// Report returns the accumulated execution report. Operation counts are
// merged from the per-subarray ledgers, energy is assembled from the
// per-PE crossbar statistics, and wear is the maximum over all PEs — the
// chip-wide aggregation that multi-PE batch execution relies on.
func (c *Chip) Report() Report {
	r := c.report
	r.GroupCycles = append([]int64(nil), c.report.GroupCycles...)
	r.Cycles = 0
	for _, gc := range r.GroupCycles {
		if gc > r.Cycles {
			r.Cycles = gc
		}
	}
	r.Searches, r.Writes = 0, 0
	for _, bank := range c.banks {
		for _, sub := range bank.Subarrays {
			r.Searches += sub.searches
			r.Writes += sub.writes
		}
	}
	for _, sub := range c.spareSubs {
		r.Searches += sub.searches
		r.Writes += sub.writes
	}
	r.MaxCellWrites = 0
	r.Faults = tcam.FaultReport{}
	for _, pe := range c.pes {
		if w := pe.M.TCAM().WearReport().MaxPulses; w > r.MaxCellWrites {
			r.MaxCellWrites = w
		}
		r.Faults = r.Faults.Merge(pe.M.TCAM().FaultReport())
	}
	r.Health = c.HealthSummary()
	r.Retries = c.retries
	r.Energy = c.energy()
	return r
}

func (c *Chip) energy() tech.EnergyLedger {
	t := c.Config.Tech
	var st tcam.Stats
	var peSearches int64
	for _, pe := range c.pes {
		s := pe.M.TCAM().Stats()
		st.SearchedCells += s.SearchedCells
		st.CellWrites += s.CellWrites
		st.HalfSelected += s.HalfSelected
		peSearches += pe.M.Ops.Searches
	}
	var l tech.EnergyLedger
	l.SearchJ = float64(st.SearchedCells)*t.ESearchPerDrivenCellJ +
		float64(peSearches)*float64(c.Config.Rows)*t.ESearchSAJ
	l.WriteJ = float64(st.CellWrites) * t.EWritePerCellJ
	l.HalfSelectJ = float64(st.HalfSelected) * t.EHalfSelectJ
	var instr int64
	for _, n := range c.report.Instr {
		instr += n
	}
	// One decode per subarray local controller per instruction (Fig. 6c).
	nsub := float64(len(c.banks) * c.Config.SubarraysPerBank)
	l.ControlJ = float64(instr) * nsub * t.EInstrJ
	l.MoveJ = float64(c.report.Instr[isa.OpMovR]) * float64(len(c.pes)) * t.EMovRJ
	l.ReductionJ = float64(c.report.Instr[isa.OpCount]+c.report.Instr[isa.OpIndex]) *
		float64(len(c.pes)) * t.EReductionJ
	return l
}

// CycleParams returns the Table I cycle constants for this chip's
// technology and array design.
func (c *Chip) CycleParams() isa.CycleParams {
	w := c.Config.Tech.TCAMBitWriteCycles
	if c.Config.Monolithic {
		w *= 2
	}
	return isa.CycleParams{TCAMBitWriteCycles: w, DataMoveCycles: 20}
}

// activeGroups returns the groups selected by the current group mask.
func (c *Chip) activeGroups() []*Group {
	var gs []*Group
	for i, g := range c.GroupList {
		if i < 8 && c.groupMask&(1<<uint(i)) == 0 {
			continue
		}
		gs = append(gs, g)
	}
	return gs
}

// Execute runs a program. Instructions are dispatched to the groups
// enabled by the group mask (all groups initially); Broadcast changes the
// mask; Wait charges idle cycles to the active groups. The report
// accumulates across calls.
func (c *Chip) Execute(prog isa.Program) error {
	return c.ExecuteContext(context.Background(), prog)
}

// ExecuteContext is Execute with cancellation: the context is checked
// between instructions, so a caller's deadline interrupts a long program
// instead of waiting for it to finish.
func (c *Chip) ExecuteContext(ctx context.Context, prog isa.Program) error {
	cp := c.CycleParams()
	for pc, in := range prog {
		if err := ctx.Err(); err != nil {
			return err
		}
		seq := c.instrSeq
		c.instrSeq++
		if err := c.step(in, cp, pc, seq); err != nil {
			return fmt.Errorf("arch: pc %d (%v): %w", pc, in, err)
		}
	}
	return nil
}

// parallelSafe reports whether the program consists only of per-subarray
// instructions. Chip-level control (Broadcast, Wait) and the instructions
// that communicate across PEs or with the top-level controller (MovR,
// ReadR, WriteR) impose a global order, so programs containing them must
// run on the serial Execute path.
func parallelSafe(prog isa.Program) bool {
	for _, in := range prog {
		switch in.Op {
		case isa.OpBroadcast, isa.OpWait, isa.OpMovR, isa.OpReadR, isa.OpWriteR:
			return false
		}
	}
	return true
}

// ExecuteParallel runs a program with the active subarrays stepping
// concurrently on a pool of at most workers goroutines. It is
// behaviourally identical to Execute: every subarray executes the same
// instruction stream against its own PEs, key register, operation ledger
// and (when Tracing is on) trace ledger, and the chip-level accounting
// (instruction counts, group cycles) — identical for every subarray — is
// charged once up front. Tracing stays on the concurrent path: each
// subarray appends events to its own ledger with deterministically
// computed cumulative cycles, so TraceEvents and Report are bit-identical
// to a serial traced run. The serial Execute path is used only when the
// program contains chip-level instructions (see parallelSafe); workers <= 1
// still runs the per-subarray pool (with one worker), so single-core hosts
// keep the snapshot/spare-PE retry machinery below.
//
// The context is checked between instructions on every worker, so a
// caller's deadline interrupts a long pass. With fault injection active
// a subarray that dies with a FaultError does not abort the others: the
// pass completes on the healthy subarrays, and each failed shard is
// replayed on a spare subarray when Config.SparePEs provisioned one (see
// retryFailures). Only when no spare can absorb a failure does the
// FaultError reach the caller.
func (c *Chip) ExecuteParallel(ctx context.Context, prog isa.Program, workers int) error {
	if !parallelSafe(prog) {
		return c.ExecuteContext(ctx, prog)
	}
	if workers < 1 {
		workers = 1
	}
	cp := c.CycleParams()
	groups := c.activeGroups()
	var subs []*Subarray
	for _, g := range groups {
		for _, bank := range g.Banks {
			subs = append(subs, bank.Subarrays...)
		}
	}
	baseSeq := c.instrSeq
	c.instrSeq += int64(len(prog))
	// Snapshot the group cycle counters before charging so traced workers
	// can reconstruct the per-instruction cumulative cycles a serial run
	// would have observed (all active groups are charged every
	// instruction: parallel-safe programs contain no Broadcast).
	var startCycles []int64
	var cost []int
	if c.Tracing {
		startCycles = append([]int64(nil), c.report.GroupCycles...)
		cost = make([]int, len(prog))
		for pc, in := range prog {
			cost[pc] = in.Cycles(cp)
		}
	}
	for _, in := range prog {
		c.report.Instr[in.Op]++
		cycles := int64(in.Cycles(cp))
		for _, g := range groups {
			c.report.GroupCycles[c.groupIndex(g)] += cycles
		}
	}
	if len(subs) == 0 {
		return nil
	}
	// With spares available, snapshot every subarray up front: a shard
	// that dies mid-program mutated its PEs, so the replay must start
	// from the pre-pass state, not the corpse.
	var snaps map[*Subarray]*subSnapshot
	if len(c.spareFree) > 0 {
		snaps = make(map[*Subarray]*subSnapshot, len(subs))
		for _, sub := range subs {
			snaps[sub] = snapshotSubarray(sub)
		}
	}
	if workers > len(subs) {
		workers = len(subs)
	}
	work := make(chan *Subarray, len(subs))
	for _, sub := range subs {
		work <- sub
	}
	close(work)
	errCh := make(chan error, workers)
	var failMu sync.Mutex
	var failures []subFailure
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sub := range work {
				err := c.runSubProgram(ctx, prog, sub, baseSeq, startCycles, cost)
				if err == nil {
					continue
				}
				var fe *FaultError
				if errors.As(err, &fe) {
					// A dead shard must not drag down the healthy ones:
					// record it for the retry pass and keep draining work.
					failMu.Lock()
					failures = append(failures, subFailure{sub: sub, err: err})
					failMu.Unlock()
					continue
				}
				errCh <- err
				return
			}
		}()
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		return err
	}
	if len(failures) == 0 {
		return nil
	}
	// Deterministic retry order regardless of worker interleaving.
	sort.Slice(failures, func(i, j int) bool { return failures[i].sub.pe0 < failures[j].sub.pe0 })
	if snaps == nil {
		return failures[0].err
	}
	return c.retryFailures(ctx, prog, failures, snaps, baseSeq, startCycles, cost)
}

func (c *Chip) step(in isa.Instruction, cp isa.CycleParams, pc int, seq int64) error {
	c.report.Instr[in.Op]++
	cycles := int64(in.Cycles(cp))

	if in.Op == isa.OpBroadcast {
		c.groupMask = in.GroupMask
		// The broadcast itself is issued by the top-level controller and
		// charged to every group.
		for gi := range c.GroupList {
			c.report.GroupCycles[gi] += cycles
		}
		c.traceChipLevel(in, pc, seq, int(cycles), 0)
		return nil
	}

	groups := c.activeGroups()
	for _, g := range groups {
		gi := c.groupIndex(g)
		c.report.GroupCycles[gi] += cycles
	}

	switch in.Op {
	case isa.OpWait:
		c.traceChipLevel(in, pc, seq, int(cycles), 0)
		return nil // cycles already charged
	case isa.OpMovR:
		c.movR(in.Direction, groups)
		c.traceChipLevel(in, pc, seq, int(cycles),
			float64(activePEs(groups))*c.Config.Tech.EMovRJ)
		return nil
	case isa.OpReadR:
		pe := c.PE(int(in.Addr))
		c.DataBuffer = vecToBytes(pe.Data)
		c.traceChipLevel(in, pc, seq, int(cycles), 0)
		return nil
	case isa.OpWriteR:
		pe := c.PE(int(in.Addr))
		bytesToVec(in.Imm, pe.Data)
		c.traceChipLevel(in, pc, seq, int(cycles), 0)
		return nil
	}

	// Per-PE instructions, applied to every PE of every active group.
	for _, g := range groups {
		for _, bank := range g.Banks {
			for _, sub := range bank.Subarrays {
				if err := c.runSubarray(in, sub, pc, seq, int(cycles), c.report.GroupCycles[sub.group]); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// runSubarray steps one subarray through one instruction, recording a
// trace event when tracing is on. cum is the subarray's group cycle
// counter after the instruction — passed in (rather than read from the
// report) so the concurrent path can supply the identical value it
// derives from prefix sums.
func (c *Chip) runSubarray(in isa.Instruction, sub *Subarray, pc int, seq int64, cycles int, cum int64) error {
	if !c.Tracing {
		return c.stepSubarray(in, sub)
	}
	before, beforeSearches := subStats(sub)
	if err := c.stepSubarray(in, sub); err != nil {
		return err
	}
	sub.trace = append(sub.trace, TraceEvent{
		Seq: seq, PC: pc, Instr: in, Cycles: cycles, CumCycles: cum,
		Group: sub.group, Bank: sub.bank, Subarray: sub.index, PE: sub.pe0,
		TaggedRows: sub.PEs[0].M.Count(),
		EnergyJ:    c.subEnergyDelta(in, sub, before, beforeSearches),
	})
	return nil
}

// traceChipLevel records a top-level-controller event (serial-only
// instructions). CumCycles is the critical path so far; extraJ carries
// energy terms beyond the per-subarray instruction decode (MovR's
// inter-PE link energy).
func (c *Chip) traceChipLevel(in isa.Instruction, pc int, seq int64, cycles int, extraJ float64) {
	if !c.Tracing {
		return
	}
	var cum int64
	for _, gc := range c.report.GroupCycles {
		if gc > cum {
			cum = gc
		}
	}
	nsub := float64(len(c.banks) * c.Config.SubarraysPerBank)
	c.chipTrace = append(c.chipTrace, TraceEvent{
		Seq: seq, PC: pc, Instr: in, Cycles: cycles, CumCycles: cum,
		Group: -1, Bank: -1, Subarray: -1, PE: -1, TaggedRows: -1,
		EnergyJ: nsub*c.Config.Tech.EInstrJ + extraJ,
	})
}

// subStats sums the energy-relevant crossbar statistics of one subarray's
// PEs. Reading only the subarray's own PEs keeps traced execution
// parallel-safe.
func subStats(sub *Subarray) (st tcam.Stats, searches int64) {
	for _, pe := range sub.PEs {
		s := pe.M.TCAM().Stats()
		st.SearchedCells += s.SearchedCells
		st.CellWrites += s.CellWrites
		st.HalfSelected += s.HalfSelected
		searches += pe.M.Ops.Searches
	}
	return st, searches
}

// subEnergyDelta converts the statistics delta one instruction produced
// on one subarray into joules, mirroring the terms of the chip energy
// ledger (energy): search drive + sense amplifiers, cell programming,
// half-select disturb, one instruction decode on this subarray's
// controller, and the reduction tree for Count/Index.
func (c *Chip) subEnergyDelta(in isa.Instruction, sub *Subarray, before tcam.Stats, beforeSearches int64) float64 {
	after, afterSearches := subStats(sub)
	t := c.Config.Tech
	e := float64(after.SearchedCells-before.SearchedCells)*t.ESearchPerDrivenCellJ +
		float64(afterSearches-beforeSearches)*float64(c.Config.Rows)*t.ESearchSAJ +
		float64(after.CellWrites-before.CellWrites)*t.EWritePerCellJ +
		float64(after.HalfSelected-before.HalfSelected)*t.EHalfSelectJ +
		t.EInstrJ
	if in.Op == isa.OpCount || in.Op == isa.OpIndex {
		e += float64(len(sub.PEs)) * t.EReductionJ
	}
	return e
}

// activePEs counts the PEs of the given groups.
func activePEs(groups []*Group) int {
	n := 0
	for _, g := range groups {
		for _, b := range g.Banks {
			for _, s := range b.Subarrays {
				n += len(s.PEs)
			}
		}
	}
	return n
}

// TraceEvents returns every recorded event, merged across the
// per-subarray ledgers and the chip-level ledger and stable-sorted by
// (Seq, PE) — program order first, subarray position second — so serial
// and concurrent traced runs of the same program yield the same stream.
// The slice is freshly allocated; the ledgers keep accumulating until
// ResetTrace.
func (c *Chip) TraceEvents() []TraceEvent {
	evs := append([]TraceEvent(nil), c.chipTrace...)
	for _, bank := range c.banks {
		for _, sub := range bank.Subarrays {
			evs = append(evs, sub.trace...)
		}
	}
	for _, sub := range c.spareSubs {
		evs = append(evs, sub.trace...)
	}
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].Seq != evs[j].Seq {
			return evs[i].Seq < evs[j].Seq
		}
		return evs[i].PE < evs[j].PE
	})
	return evs
}

// ResetTrace discards all recorded trace events (the sequence counter
// keeps running so later events still sort after earlier ones).
func (c *Chip) ResetTrace() {
	c.chipTrace = nil
	for _, bank := range c.banks {
		for _, sub := range bank.Subarrays {
			sub.trace = nil
		}
	}
	for _, sub := range c.spareSubs {
		sub.trace = nil
	}
}

func (c *Chip) stepSubarray(in isa.Instruction, sub *Subarray) error {
	switch in.Op {
	case isa.OpSetKey:
		copy(sub.Keys, in.Keys[:c.Config.Bits])
		return nil
	case isa.OpSearch:
		for _, pe := range sub.PEs {
			pe.M.Search(sub.Keys, in.Acc)
			if in.Encode {
				pe.M.LatchForEncode()
			}
		}
		sub.searches += int64(len(sub.PEs))
		return nil
	case isa.OpWrite:
		col := int(in.Col)
		if col >= c.Config.Bits || (in.Encode && col+1 >= c.Config.Bits) {
			return fmt.Errorf("write column %d out of range", col)
		}
		for _, pe := range sub.PEs {
			var err error
			if in.Encode {
				_, err = pe.M.WriteEncodedPair(col)
			} else {
				k := sub.Keys[col]
				if k == bits.KDC {
					return fmt.Errorf("write with masked key at column %d", col)
				}
				_, err = pe.M.Write(col, k)
			}
			if err != nil {
				var fe *tcam.FaultError
				if errors.As(err, &fe) {
					pe.failed = true
					return &FaultError{PE: pe.addr, Bank: sub.bank, Subarray: sub.index, Err: err}
				}
				return err
			}
		}
		sub.writes += int64(len(sub.PEs))
		return nil
	case isa.OpCount:
		for _, pe := range sub.PEs {
			pe.CountResult = pe.M.Count()
		}
		return nil
	case isa.OpIndex:
		for _, pe := range sub.PEs {
			pe.IndexResult = pe.M.Index()
		}
		return nil
	case isa.OpSetTag:
		for _, pe := range sub.PEs {
			v := bits.NewVec(c.Config.Rows)
			for i := 0; i < c.Config.Rows; i++ {
				v.Set(i, pe.Data.Get(i))
			}
			pe.M.SetTags(v)
		}
		return nil
	case isa.OpReadTag:
		for _, pe := range sub.PEs {
			for i := 0; i < c.Config.Rows; i++ {
				pe.Data.Set(i, pe.M.Tags().Get(i))
			}
		}
		return nil
	}
	return fmt.Errorf("unhandled opcode %v", in.Op)
}

func (c *Chip) groupIndex(g *Group) int {
	for i, gg := range c.GroupList {
		if gg == g {
			return i
		}
	}
	panic("arch: unknown group")
}

// movR shifts every active PE's data register to/from its grid neighbour
// simultaneously: each PE receives the register of the neighbour opposite
// to the move direction (a move "right" makes pe[x] read pe[x-1]).
// Registers at the incoming edge are cleared.
func (c *Chip) movR(dir isa.Dir, groups []*Group) {
	active := make(map[*PE]bool)
	for _, g := range groups {
		for _, b := range g.Banks {
			for _, s := range b.Subarrays {
				for _, pe := range s.PEs {
					active[pe] = true
				}
			}
		}
	}
	old := make([]*bits.Vec, len(c.pes))
	for i, pe := range c.pes {
		old[i] = pe.Data.Clone()
	}
	for i, pe := range c.pes {
		if !active[pe] {
			continue
		}
		x, y := i%c.gridW, i/c.gridW
		sx, sy := x, y
		switch dir {
		case isa.DirRight:
			sx = x - 1
		case isa.DirLeft:
			sx = x + 1
		case isa.DirDown:
			sy = y - 1
		case isa.DirUp:
			sy = y + 1
		}
		if sx < 0 || sx >= c.gridW || sy < 0 || sy >= c.gridH {
			pe.Data.SetAll(false)
			continue
		}
		pe.Data.CopyFrom(old[sy*c.gridW+sx])
	}
}

func vecToBytes(v *bits.Vec) []byte {
	out := make([]byte, (v.Len()+7)/8)
	for i := 0; i < v.Len(); i++ {
		if v.Get(i) {
			out[i/8] |= 1 << uint(i%8)
		}
	}
	return out
}

func bytesToVec(b []byte, v *bits.Vec) {
	for i := 0; i < v.Len(); i++ {
		bit := false
		if i/8 < len(b) {
			bit = b[i/8]&(1<<uint(i%8)) != 0
		}
		v.Set(i, bit)
	}
}
