package arch

import (
	"fmt"

	"hyperap/internal/tcam"
)

// This file is the chip-level gather/restore behind durable chip state:
// a ChipState collects every PE's TCAM lifetime state (wear, stuck
// cells, spare-row remaps — tcam/state.go) plus the PE-level failed
// latches, so the store package can checkpoint a chip and serve can
// rebuild an equally-aged chip after a restart.

// PEState is the serializable lifetime state of one processing element.
type PEState struct {
	Design tcam.DesignState
	Failed bool
}

// Health derives the availability state a PE restored from this
// snapshot would report: the failed latch dominates, and structural
// damage (consumed spares, non-identity remaps, endurance deaths) means
// degraded. Activity counters deliberately do not feed in — they are
// per-pass, the structure is lifetime.
func (s *PEState) Health() Health {
	if s.Failed {
		return Failed
	}
	if s.Design.Degraded() || s.Design.Repair.Detected > 0 || s.Design.Repair.Repairs > 0 {
		return Degraded
	}
	return Healthy
}

// ChipState is the serializable lifetime state of a whole chip. Active
// holds the PEs in linear-address order (reflecting any spare swaps);
// Spare holds the spare-tail PEs, including failed PEs parked there by
// a swap.
type ChipState struct {
	Active  []PEState
	Spare   []PEState
	Retries int64
}

// ExportPEState snapshots one PE by linear address.
func (c *Chip) ExportPEState(addr int) PEState {
	pe := c.PE(addr)
	return PEState{Design: pe.M.TCAM().ExportState(), Failed: pe.failed}
}

// ImportPEState restores one PE's lifetime state. The PE's TCAM
// geometry and design kind must match the snapshot; on error the PE is
// unchanged.
func (c *Chip) ImportPEState(addr int, st PEState) error {
	pe := c.PE(addr)
	if err := pe.M.TCAM().ImportState(st.Design); err != nil {
		return err
	}
	pe.failed = st.Failed
	return nil
}

// ExportState snapshots every PE of the chip.
func (c *Chip) ExportState() *ChipState {
	st := &ChipState{Retries: c.retries}
	n := c.NumPEs()
	for addr := 0; addr < n; addr++ {
		st.Active = append(st.Active, c.ExportPEState(addr))
	}
	for addr := n; addr < c.TotalPEs(); addr++ {
		st.Spare = append(st.Spare, c.ExportPEState(addr))
	}
	return st
}

// ImportState restores a chip snapshot. PE counts and per-PE geometry
// must match exactly. Import is atomic per PE but not across PEs: on
// error, PEs before the failing address keep the imported state (the
// error names the address). Callers needing all-or-nothing semantics
// validate against a throwaway chip first; serve's per-slot ledger
// imports PE by PE and tolerates individual failures.
func (c *Chip) ImportState(st *ChipState) error {
	if len(st.Active) != c.NumPEs() || len(st.Spare) != c.TotalPEs()-c.NumPEs() {
		return fmt.Errorf("arch: state has %d+%d PEs for a chip with %d+%d",
			len(st.Active), len(st.Spare), c.NumPEs(), c.TotalPEs()-c.NumPEs())
	}
	for i, ps := range st.Active {
		if err := c.ImportPEState(i, ps); err != nil {
			return fmt.Errorf("arch: PE %d: %w", i, err)
		}
	}
	for i, ps := range st.Spare {
		addr := c.NumPEs() + i
		if err := c.ImportPEState(addr, ps); err != nil {
			return fmt.Errorf("arch: spare PE %d: %w", addr, err)
		}
	}
	c.retries = st.Retries
	return nil
}
