package arch

import (
	"context"
	"errors"
	"fmt"

	"hyperap/internal/bits"
	"hyperap/internal/isa"
	"hyperap/internal/tcam"
)

// Health is the availability state of one PE.
type Health int

const (
	// Healthy: no fault was ever detected on the PE.
	Healthy Health = iota
	// Degraded: write-verify detected faults and spare-row repair masked
	// every one of them — results are correct, spare capacity is lower.
	Degraded
	// Failed: the PE surfaced an unrepairable FaultError; its results
	// cannot be trusted and it takes no further work.
	Failed
)

func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Failed:
		return "failed"
	}
	return fmt.Sprintf("Health(%d)", int(h))
}

// Health derives the PE's availability state from its fault history.
func (pe *PE) Health() Health {
	if pe.failed {
		return Failed
	}
	if fr := pe.M.TCAM().FaultReport(); fr.Detected > 0 || fr.Repairs > 0 {
		return Degraded
	}
	return Healthy
}

// HealthSummary counts PEs by health state across the whole chip
// (active and spare).
type HealthSummary struct {
	Healthy, Degraded, Failed, Total int
}

// HealthyFraction is the fraction of PEs still able to produce correct
// results (healthy + degraded; degraded PEs are repaired, not wrong).
func (h HealthSummary) HealthyFraction() float64 {
	if h.Total == 0 {
		return 1
	}
	return float64(h.Total-h.Failed) / float64(h.Total)
}

// HealthSummary reports the health of every PE on the chip.
func (c *Chip) HealthSummary() HealthSummary {
	var s HealthSummary
	for _, pe := range c.pes {
		switch pe.Health() {
		case Healthy:
			s.Healthy++
		case Degraded:
			s.Degraded++
		case Failed:
			s.Failed++
		}
		s.Total++
	}
	return s
}

// FaultError locates an unrepairable TCAM fault in the chip hierarchy.
// It wraps the underlying tcam.FaultError (errors.As reaches both).
type FaultError struct {
	PE, Bank, Subarray int
	Err                error
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("arch: PE %d (bank %d, subarray %d): %v", e.PE, e.Bank, e.Subarray, e.Err)
}

func (e *FaultError) Unwrap() error { return e.Err }

// peSnapshot captures the restorable state of one PE: logical TCAM
// contents, tag registers and the inter-PE data register. The encoder
// chain is intentionally absent — snapshots are taken between programs,
// when it is empty.
type peSnapshot struct {
	states [][]bits.State
	tags   *bits.Vec
	data   *bits.Vec
}

// subSnapshot captures one subarray (shared key register + PEs) before a
// parallel pass, so a shard that dies mid-program can be replayed on a
// spare from a known-good starting point.
type subSnapshot struct {
	keys []bits.Key
	pes  []*peSnapshot
}

func snapshotSubarray(sub *Subarray) *subSnapshot {
	snap := &subSnapshot{keys: append([]bits.Key(nil), sub.Keys...)}
	for _, pe := range sub.PEs {
		ps := &peSnapshot{tags: pe.M.Tags().Clone(), data: pe.Data.Clone()}
		t := pe.M.TCAM()
		rows, bitsN := t.Rows(), t.Bits()
		ps.states = make([][]bits.State, rows)
		for r := 0; r < rows; r++ {
			row := make([]bits.State, bitsN)
			for b := 0; b < bitsN; b++ {
				row[b] = t.StateSafe(r, b)
			}
			ps.states[r] = row
		}
		snap.pes = append(snap.pes, ps)
	}
	return snap
}

// restoreSubarray loads a snapshot into a (spare) subarray. Every Load
// is write-verified by the TCAM layer, so a spare with conflicting
// defects fails here — the caller burns it and tries the next one.
func restoreSubarray(sub *Subarray, snap *subSnapshot) error {
	copy(sub.Keys, snap.keys)
	for i, pe := range sub.PEs {
		ps := snap.pes[i]
		t := pe.M.TCAM()
		for r, row := range ps.states {
			for b, s := range row {
				// An erased (X) snapshot cell whose effective state on the
				// spare already reads X needs no pulse: stuck-at-HRS is
				// physically identical to X, so skipping saves wear without
				// hiding anything. A cell that reads otherwise carries a
				// stuck-LRS defect that would silently corrupt later
				// searches (X matches everything; stuck-LRS matches one
				// polarity), so it must go through the verified Load below,
				// where spare-row repair absorbs it or the spare is burned.
				if s == bits.SX && t.StateSafe(r, b) == bits.SX {
					continue
				}
				if err := pe.M.Load(r, b, s); err != nil {
					var fe *tcam.FaultError
					if errors.As(err, &fe) {
						return &FaultError{PE: pe.addr, Bank: sub.bank, Subarray: sub.index, Err: err}
					}
					return err
				}
			}
		}
		pe.M.SetTags(ps.tags)
		pe.Data.CopyFrom(ps.data)
	}
	return nil
}

// retryFailures replays each failed subarray's program on a healthy
// spare subarray: restore the pre-pass snapshot, re-execute the whole
// stream, then swap the spare's PEs into the failed shard's addresses so
// callers reading results by PE address see the healthy replacement. A
// spare that faults during restore or replay is burned and the next one
// tried; with no spares left the original FaultError is returned.
func (c *Chip) retryFailures(ctx context.Context, prog isa.Program, failures []subFailure,
	snaps map[*Subarray]*subSnapshot, baseSeq int64, startCycles []int64, cost []int) error {
	progCycles := int64(0)
	cp := c.CycleParams()
	for _, in := range prog {
		progCycles += int64(in.Cycles(cp))
	}
	for _, f := range failures {
		snap := snaps[f.sub]
	spares:
		for {
			if len(c.spareFree) == 0 {
				return f.err
			}
			sp := c.spareFree[0]
			c.spareFree = c.spareFree[1:]
			if err := restoreSubarray(sp, snap); err != nil {
				var fe *FaultError
				if errors.As(err, &fe) {
					continue // this spare is bad too; burn it
				}
				return err
			}
			if err := c.runSubProgram(ctx, prog, sp, baseSeq, startCycles, cost); err != nil {
				var fe *FaultError
				if errors.As(err, &fe) {
					continue spares
				}
				return err
			}
			// The replay ran serially after the parallel pass: charge its
			// latency to the shard's group. (Instruction decode counts are
			// not re-charged — they are modelled per-subarray already.)
			c.report.GroupCycles[f.sub.group] += progCycles
			c.swapSubarrayPEs(f.sub, sp)
			c.retries++
			break
		}
	}
	return nil
}

// runSubProgram steps one subarray through a whole program, mirroring
// the ExecuteParallel worker body (traced or not).
func (c *Chip) runSubProgram(ctx context.Context, prog isa.Program, sub *Subarray,
	baseSeq int64, startCycles []int64, cost []int) error {
	if c.Tracing {
		cum := startCycles[sub.group]
		for pc, in := range prog {
			if err := ctx.Err(); err != nil {
				return err
			}
			cum += int64(cost[pc])
			if err := c.runSubarray(in, sub, pc, baseSeq+int64(pc), cost[pc], cum); err != nil {
				return fmt.Errorf("arch: pc %d (%v): %w", pc, in, err)
			}
		}
		return nil
	}
	for pc, in := range prog {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := c.stepSubarray(in, sub); err != nil {
			return fmt.Errorf("arch: pc %d (%v): %w", pc, in, err)
		}
	}
	return nil
}

// swapSubarrayPEs exchanges the PEs of a failed shard and its spare:
// after the swap, the shard's PE addresses resolve to the healthy PEs
// holding the replayed results, and the failed PEs are parked in the
// retired spare subarray (still visible to HealthSummary).
func (c *Chip) swapSubarrayPEs(sub, sp *Subarray) {
	for i := range sub.PEs {
		a, b := sub.PEs[i], sp.PEs[i]
		c.pes[a.addr], c.pes[b.addr] = b, a
		a.addr, b.addr = b.addr, a.addr
		sub.PEs[i], sp.PEs[i] = b, a
	}
}

// subFailure records one subarray whose shard died with a FaultError
// during a parallel pass.
type subFailure struct {
	sub *Subarray
	err error
}
