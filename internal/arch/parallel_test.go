package arch

import (
	"context"

	"testing"

	"hyperap/internal/bits"
	"hyperap/internal/isa"
)

// shardedChip builds a chip shaped like the batch-execution engine's: one
// PE per subarray, so every shard steps behind its own controller.
func shardedChip(pes int) *Chip {
	cfg := DefaultSmallConfig()
	cfg.SubarraysPerBank = pes
	cfg.PEsPerSubarray = 1
	cfg.Rows = 8
	cfg.Bits = 16
	return New(cfg)
}

// fig5dProgram is the 1-bit full addition of Fig. 5d (shared with
// TestExecuteFig5dProgram): inputs in columns 0-2, sum/cout in 3-4.
func fig5dProgram(t *testing.T) isa.Program {
	t.Helper()
	k := func(s string, cols ...int) isa.Instruction {
		parsed, err := bits.ParseKeys(s)
		if err != nil {
			t.Fatal(err)
		}
		m := map[int]bits.Key{}
		for i, col := range cols {
			m[col] = parsed[i]
		}
		return isa.Instruction{Op: isa.OpSetKey, Keys: fullKeys(m)}
	}
	return isa.Program{
		k("010", 0, 1, 2), isa.Search(false, false),
		k("101", 0, 1, 2), isa.Search(true, false),
		k("1", 3), isa.Write(3, false),
		k("-11", 0, 1, 2), isa.Search(false, false),
		k("1Z0", 0, 1, 2), isa.Search(true, false),
		k("1", 4), isa.Write(4, false),
		isa.Instruction{Op: isa.OpCount},
		isa.Instruction{Op: isa.OpIndex},
	}
}

func loadAdderRows(c *Chip) {
	for p := 0; p < c.NumPEs(); p++ {
		pe := c.PE(p)
		for row := 0; row < 8; row++ {
			// Vary the operands per PE so shards hold distinct data.
			v := row ^ p
			pe.M.LoadPair(row, 0, v&1 != 0, v&2 != 0)
			pe.M.LoadBit(row, 2, v&4 != 0)
			pe.M.LoadBit(row, 3, false)
			pe.M.LoadBit(row, 4, false)
		}
	}
}

// TestExecuteParallelMatchesSerial runs the same program on two identical
// multi-subarray chips — one through Execute, one through the concurrent
// ExecuteParallel — and requires bit-identical machine state and reports.
func TestExecuteParallelMatchesSerial(t *testing.T) {
	serial, par := shardedChip(4), shardedChip(4)
	loadAdderRows(serial)
	loadAdderRows(par)
	prog := fig5dProgram(t)
	if err := serial.Execute(prog); err != nil {
		t.Fatal(err)
	}
	if err := par.ExecuteParallel(context.Background(), prog, 4); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < serial.NumPEs(); p++ {
		sp, pp := serial.PE(p), par.PE(p)
		for row := 0; row < 8; row++ {
			for col := 0; col < serial.Config.Bits; col++ {
				if sp.M.TCAM().State(row, col) != pp.M.TCAM().State(row, col) {
					t.Fatalf("PE %d cell (%d,%d) diverged", p, row, col)
				}
			}
			if sp.M.Tags().Get(row) != pp.M.Tags().Get(row) {
				t.Fatalf("PE %d tag %d diverged", p, row)
			}
		}
		if sp.CountResult != pp.CountResult || sp.IndexResult != pp.IndexResult {
			t.Errorf("PE %d reductions diverged: %d/%d vs %d/%d",
				p, sp.CountResult, sp.IndexResult, pp.CountResult, pp.IndexResult)
		}
	}
	sr, pr := serial.Report(), par.Report()
	if sr.Cycles != pr.Cycles || sr.Searches != pr.Searches || sr.Writes != pr.Writes {
		t.Errorf("reports diverged: serial %d cy %dS/%dW, parallel %d cy %dS/%dW",
			sr.Cycles, sr.Searches, sr.Writes, pr.Cycles, pr.Searches, pr.Writes)
	}
	if sr.MaxCellWrites != pr.MaxCellWrites {
		t.Errorf("wear diverged: %d vs %d", sr.MaxCellWrites, pr.MaxCellWrites)
	}
	if sr.Energy.TotalJ() != pr.Energy.TotalJ() {
		t.Errorf("energy diverged: %g vs %g", sr.Energy.TotalJ(), pr.Energy.TotalJ())
	}
	for op, n := range sr.Instr {
		if pr.Instr[op] != n {
			t.Errorf("instr count %v diverged: %d vs %d", op, pr.Instr[op], n)
		}
	}
	if sr.Searches != 4*int64(serial.NumPEs()) {
		t.Errorf("searches = %d, want %d", sr.Searches, 4*serial.NumPEs())
	}
}

// TestExecuteParallelFallback: programs with chip-level instructions
// (here MovR) must take the serial path and still produce Execute's
// result.
func TestExecuteParallelFallback(t *testing.T) {
	prog := isa.Program{isa.MovR(isa.DirRight)}
	if parallelSafe(prog) {
		t.Fatal("MovR must not be parallel-safe")
	}
	serial, par := shardedChip(2), shardedChip(2)
	for _, c := range []*Chip{serial, par} {
		c.PE(0).Data.Set(3, true)
	}
	if err := serial.Execute(prog); err != nil {
		t.Fatal(err)
	}
	if err := par.ExecuteParallel(context.Background(), prog, 4); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 2; p++ {
		for i := 0; i < 512; i++ {
			if serial.PE(p).Data.Get(i) != par.PE(p).Data.Get(i) {
				t.Fatalf("PE %d data bit %d diverged", p, i)
			}
		}
	}
	if !par.PE(1).Data.Get(3) {
		t.Error("MovR right must shift PE 0's register into PE 1")
	}
}

// TestReportMaxCellWrites: the chip report must carry the worst wear over
// every PE, not PE 0's.
func TestReportMaxCellWrites(t *testing.T) {
	c := shardedChip(3)
	// Program the same column of PE 2 repeatedly through the associative
	// write path (the wear-counted path); PE 0 stays untouched.
	pe := c.PE(2)
	pe.M.WriteAll(0, bits.K1)
	pe.M.WriteAll(0, bits.K0)
	pe.M.WriteAll(0, bits.K1)
	r := c.Report()
	if r.MaxCellWrites < 2 {
		t.Errorf("MaxCellWrites = %d, want >= 2 (worst PE, not PE 0)", r.MaxCellWrites)
	}
}
