package arch

import (
	"context"
	"reflect"
	"testing"

	"hyperap/internal/tcam"
)

// TestChipStateRoundTrip ages one chip through a fault-repair pass and
// restores its exported state into a twin: the twin must re-export the
// identical state and report the identical health.
func TestChipStateRoundTrip(t *testing.T) {
	fc := tcam.FaultConfig{SpareRows: 2}
	c := faultChip(fc, 1)
	// Pin a cell so the write program trips write-verify and consumes a
	// spare row on PE 0: writeProg writes state 1 into bit 0, which must
	// program the F cell (array b, column 0) to LRS.
	c.PE(0).M.TCAM().Arrays()[1].ForceStuck(2, 0, tcam.HRS)
	if err := c.ExecuteParallel(context.Background(), writeProg(), 2); err != nil {
		t.Fatalf("execute: %v", err)
	}
	st := c.ExportState()
	if len(st.Active) != c.NumPEs() || len(st.Spare) != c.TotalPEs()-c.NumPEs() {
		t.Fatalf("state has %d+%d PEs", len(st.Active), len(st.Spare))
	}
	if st.Active[0].Health() != Degraded {
		t.Fatalf("repaired PE exports health %v, want Degraded", st.Active[0].Health())
	}

	twin := faultChip(fc, 1)
	if err := twin.ImportState(st); err != nil {
		t.Fatalf("import: %v", err)
	}
	if got := twin.ExportState(); !reflect.DeepEqual(got, st) {
		t.Error("re-export differs from imported state")
	}
	if got, want := twin.HealthSummary(), c.HealthSummary(); got != want {
		t.Errorf("restored health = %+v, want %+v", got, want)
	}

	// Mismatched PE counts must reject before touching anything.
	small := New(Config{Banks: 1, SubarraysPerBank: 1, PEsPerSubarray: 1,
		Rows: 8, Bits: 4, Groups: 1, Tech: c.Config.Tech, Faults: fc})
	if err := small.ImportState(st); err == nil {
		t.Error("importing a 2-PE state into a 1-PE chip must fail")
	}
}

// TestPEStateFailedLatch: the failed latch survives export/import and
// dominates health.
func TestPEStateFailedLatch(t *testing.T) {
	c := faultChip(tcam.FaultConfig{}, 0)
	c.PE(1).failed = true
	st := c.ExportState()
	if st.Active[1].Health() != Failed {
		t.Fatalf("failed PE exports health %v", st.Active[1].Health())
	}
	twin := faultChip(tcam.FaultConfig{}, 0)
	if err := twin.ImportState(st); err != nil {
		t.Fatal(err)
	}
	if !twin.PE(1).failed || twin.PE(0).failed {
		t.Error("failed latch did not round-trip")
	}
}
