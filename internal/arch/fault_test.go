package arch

import (
	"context"
	"errors"
	"math"
	"testing"

	"hyperap/internal/bits"
	"hyperap/internal/isa"
	"hyperap/internal/tcam"
	"hyperap/internal/tech"
)

// faultChip builds a 2-shard chip (one PE per subarray, like the batch
// engine's) with the given fault config and spare subarrays.
func faultChip(fc tcam.FaultConfig, sparePEs int) *Chip {
	return New(Config{
		Banks:            1,
		SubarraysPerBank: 2,
		PEsPerSubarray:   1,
		Rows:             8,
		Bits:             4,
		Groups:           1,
		Tech:             tech.RRAM(),
		Faults:           fc,
		SparePEs:         sparePEs,
	})
}

// writeProg tags every row (match-all search) and writes state 1 into
// bit column 0 — the smallest program whose write path exercises
// write-verify on every row.
func writeProg() isa.Program {
	dc := []bits.Key{bits.KDC, bits.KDC, bits.KDC, bits.KDC}
	w := []bits.Key{bits.K1, bits.KDC, bits.KDC, bits.KDC}
	return isa.Program{
		isa.SetKey(dc),
		isa.Search(false, false),
		isa.SetKey(w),
		isa.Write(0, false),
	}
}

// TestSparePERetry is the chip-level fault-tolerance acceptance path: a
// PE with an unrepairable stuck cell dies mid-pass, the shard is
// replayed on a spare PE, and the final state is bit-identical to a
// fault-free chip — with the failure fully visible in the report.
func TestSparePERetry(t *testing.T) {
	c := faultChip(tcam.FaultConfig{}, 1)
	// Writing state 1 to bit 0 needs the F cell (array B, column 0) in
	// LRS; pin it to HRS on PE 1 row 2 so the write cannot take. No spare
	// rows are provisioned, so the PE's own repair fails and the shard
	// must move to the spare PE.
	c.PE(1).M.TCAM().Arrays()[1].ForceStuck(2, 0, tcam.HRS)

	if err := c.ExecuteParallel(context.Background(), writeProg(), 2); err != nil {
		t.Fatalf("pass with a spare PE available: %v", err)
	}

	ref := faultChip(tcam.FaultConfig{}, 0)
	if err := ref.ExecuteParallel(context.Background(), writeProg(), 2); err != nil {
		t.Fatalf("fault-free pass: %v", err)
	}
	for pe := 0; pe < 2; pe++ {
		for r := 0; r < 8; r++ {
			for b := 0; b < 4; b++ {
				got := c.PE(pe).M.TCAM().State(r, b)
				want := ref.PE(pe).M.TCAM().State(r, b)
				if got != want {
					t.Errorf("PE %d state(%d,%d) = %v, fault-free %v", pe, r, b, got, want)
				}
			}
		}
	}

	rep := c.Report()
	if rep.Retries != 1 {
		t.Errorf("retries = %d, want 1", rep.Retries)
	}
	if rep.Health.Failed != 1 || rep.Health.Total != 3 {
		t.Errorf("health = %+v, want 1 failed of 3", rep.Health)
	}
	if got := rep.Health.HealthyFraction(); math.Abs(got-2.0/3) > 1e-9 {
		t.Errorf("healthy fraction = %v, want 2/3", got)
	}
	// The healthy subarrays' work must not have been redone: each of the
	// two shards searched once and wrote once (the replay replaces the
	// failed shard's ledger position via the spare subarray's ledger).
	if rep.Searches < 2 || rep.Writes < 2 {
		t.Errorf("ledgers lost work: searches=%d writes=%d", rep.Searches, rep.Writes)
	}
}

// TestFaultErrorWithoutSpares: no spare PEs → the same failure must
// surface as a typed FaultError naming the PE, never a silent wrong
// result.
func TestFaultErrorWithoutSpares(t *testing.T) {
	for _, workers := range []int{1, 2} { // serial fallback and parallel path
		c := faultChip(tcam.FaultConfig{}, 0)
		c.PE(1).M.TCAM().Arrays()[1].ForceStuck(2, 0, tcam.HRS)
		err := c.ExecuteParallel(context.Background(), writeProg(), workers)
		var fe *FaultError
		if !errors.As(err, &fe) {
			t.Fatalf("workers=%d: err = %v, want *FaultError", workers, err)
		}
		if fe.PE != 1 {
			t.Errorf("workers=%d: failed PE = %d, want 1", workers, fe.PE)
		}
		var tfe *tcam.FaultError
		if !errors.As(err, &tfe) {
			t.Errorf("workers=%d: FaultError does not unwrap to tcam.FaultError", workers)
		}
		if c.Report().Health.Failed != 1 {
			t.Errorf("workers=%d: failed PE not latched: %+v", workers, c.Report().Health)
		}
	}
}

// TestSpareRowRepairKeepsPEDegraded: a fault the PE repairs locally via
// its spare rows must not consume the spare PE, and the PE reports
// Degraded (correct results, reduced margin).
func TestSpareRowRepairKeepsPEDegraded(t *testing.T) {
	c := faultChip(tcam.FaultConfig{SpareRows: 2}, 1)
	c.PE(1).M.TCAM().Arrays()[1].ForceStuck(2, 0, tcam.HRS)
	if err := c.ExecuteParallel(context.Background(), writeProg(), 2); err != nil {
		t.Fatalf("repairable fault errored: %v", err)
	}
	rep := c.Report()
	if rep.Retries != 0 {
		t.Errorf("local repair consumed a spare PE (retries=%d)", rep.Retries)
	}
	if rep.Faults.Detected < 1 || rep.Faults.Repairs < 1 {
		t.Errorf("fault not detected/repaired: %+v", rep.Faults)
	}
	if rep.Health.Degraded != 1 || rep.Health.Failed != 0 {
		t.Errorf("health = %+v, want 1 degraded, 0 failed", rep.Health)
	}
	if got := rep.Health.HealthyFraction(); got != 1 {
		t.Errorf("healthy fraction = %v, want 1 (degraded PEs still produce correct results)", got)
	}
	for r := 0; r < 8; r++ {
		if got := c.PE(1).M.TCAM().State(r, 0); got != bits.S1 {
			t.Errorf("row %d bit 0 = %v after repair, want S1", r, got)
		}
	}
}

// TestExecuteParallelCancel: a cancelled context must stop the pass
// between instructions with the context's error.
func TestExecuteParallelCancel(t *testing.T) {
	c := faultChip(tcam.FaultConfig{}, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 2} {
		if err := c.ExecuteParallel(ctx, writeProg(), workers); !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

// TestHealthFresh: a fresh chip is entirely healthy with fraction 1.
func TestHealthFresh(t *testing.T) {
	c := faultChip(tcam.FaultConfig{}, 1)
	h := c.HealthSummary()
	if h.Healthy != 3 || h.Degraded != 0 || h.Failed != 0 || h.Total != 3 {
		t.Errorf("fresh health = %+v", h)
	}
	if h.HealthyFraction() != 1 {
		t.Errorf("fresh fraction = %v", h.HealthyFraction())
	}
}
