package arch

import (
	"context"

	"math"
	"reflect"
	"testing"

	"hyperap/internal/isa"
)

// TestTracedParallelMatchesSerial is the regression test for the old
// "tracing forces the serial path" fallback: a traced ExecuteParallel run
// must produce the same event stream as a traced serial run (TraceEvents
// already merges with a stable (Seq, PE) sort) and a bit-identical Report
// including the float energy ledger.
func TestTracedParallelMatchesSerial(t *testing.T) {
	serial, par := shardedChip(4), shardedChip(4)
	serial.Tracing, par.Tracing = true, true
	loadAdderRows(serial)
	loadAdderRows(par)
	prog := fig5dProgram(t)
	if err := serial.Execute(prog); err != nil {
		t.Fatal(err)
	}
	if err := par.ExecuteParallel(context.Background(), prog, 4); err != nil {
		t.Fatal(err)
	}
	se, pe := serial.TraceEvents(), par.TraceEvents()
	if len(se) != len(prog)*4 {
		t.Fatalf("serial traced %d events, want %d (one per instruction per subarray)", len(se), len(prog)*4)
	}
	if len(se) != len(pe) {
		t.Fatalf("event counts diverged: serial %d, parallel %d", len(se), len(pe))
	}
	for i := range se {
		if !reflect.DeepEqual(se[i], pe[i]) {
			t.Fatalf("event %d diverged:\n serial   %+v\n parallel %+v", i, se[i], pe[i])
		}
		if se[i].EnergyJ != pe[i].EnergyJ || math.Signbit(se[i].EnergyJ) != math.Signbit(pe[i].EnergyJ) {
			t.Fatalf("event %d energy diverged bitwise: %x vs %x",
				i, math.Float64bits(se[i].EnergyJ), math.Float64bits(pe[i].EnergyJ))
		}
	}
	sr, pr := serial.Report(), par.Report()
	if sr.Cycles != pr.Cycles || sr.Searches != pr.Searches || sr.Writes != pr.Writes ||
		sr.MaxCellWrites != pr.MaxCellWrites {
		t.Errorf("reports diverged: %+v vs %+v", sr, pr)
	}
	if math.Float64bits(sr.Energy.TotalJ()) != math.Float64bits(pr.Energy.TotalJ()) {
		t.Errorf("energy diverged bitwise: %g vs %g", sr.Energy.TotalJ(), pr.Energy.TotalJ())
	}
	for op, n := range sr.Instr {
		if pr.Instr[op] != n {
			t.Errorf("instr count %v diverged: %d vs %d", op, pr.Instr[op], n)
		}
	}
}

// TestTracedEventFields pins down the enriched event metadata: subarray
// coordinates, cumulative cycles and per-event energy attribution.
func TestTracedEventFields(t *testing.T) {
	c := shardedChip(3)
	c.Tracing = true
	loadAdderRows(c)
	prog := fig5dProgram(t)
	if err := c.ExecuteParallel(context.Background(), prog, 3); err != nil {
		t.Fatal(err)
	}
	evs := c.TraceEvents()
	var cum int64
	cp := c.CycleParams()
	for pc, in := range prog {
		cum += int64(in.Cycles(cp))
		for s := 0; s < 3; s++ {
			ev := evs[pc*3+s]
			if ev.PC != pc || ev.Seq != int64(pc) {
				t.Fatalf("event (%d,%d) ordering wrong: %+v", pc, s, ev)
			}
			if ev.Group != 0 || ev.Bank != 0 || ev.Subarray != s || ev.PE != s {
				t.Errorf("event (%d,%d) coordinates wrong: %+v", pc, s, ev)
			}
			if ev.CumCycles != cum {
				t.Errorf("event (%d,%d) CumCycles = %d, want %d", pc, s, ev.CumCycles, cum)
			}
			if ev.TaggedRows < 0 || ev.TaggedRows > 8 {
				t.Errorf("event (%d,%d) TaggedRows = %d outside [0,8]", pc, s, ev.TaggedRows)
			}
			if ev.EnergyJ <= 0 {
				t.Errorf("event (%d,%d) EnergyJ = %g, want > 0", pc, s, ev.EnergyJ)
			}
		}
	}
}

// TestTracedChipLevelEvents: programs with chip-level instructions take
// the serial path and attribute those instructions to the top-level
// controller (PE == -1), keeping the merged stream complete.
func TestTracedChipLevelEvents(t *testing.T) {
	c := shardedChip(2)
	c.Tracing = true
	prog := isa.Program{
		isa.MovR(isa.DirRight),
		isa.Instruction{Op: isa.OpCount},
	}
	if err := c.ExecuteParallel(context.Background(), prog, 4); err != nil {
		t.Fatal(err)
	}
	evs := c.TraceEvents()
	if len(evs) != 1+2 {
		t.Fatalf("traced %d events, want 3 (1 chip-level + 2 subarrays)", len(evs))
	}
	mov := evs[0]
	if mov.Instr.Op != isa.OpMovR || mov.PE != -1 || mov.Subarray != -1 || mov.TaggedRows != -1 {
		t.Errorf("chip-level event wrong: %+v", mov)
	}
	if mov.EnergyJ <= 0 {
		t.Errorf("MovR EnergyJ = %g, want > 0 (decode + link energy)", mov.EnergyJ)
	}
	for _, ev := range evs[1:] {
		if ev.Instr.Op != isa.OpCount || ev.PE < 0 {
			t.Errorf("subarray event wrong: %+v", ev)
		}
	}
}

// traceBenchChip builds a chip with enough subarrays for the worker pool
// to matter.
func traceBenchChip() *Chip {
	cfg := DefaultSmallConfig()
	cfg.SubarraysPerBank = 16
	cfg.PEsPerSubarray = 1
	return New(cfg)
}

func benchProgram(b *testing.B) isa.Program {
	b.Helper()
	var prog isa.Program
	for i := 0; i < 8; i++ {
		prog = append(prog,
			isa.Instruction{Op: isa.OpSetKey, Keys: fullKeys(nil)},
			isa.Search(false, false),
			isa.Instruction{Op: isa.OpCount},
		)
	}
	return prog
}

// BenchmarkTracedSerial is yesterday's behaviour: a tracer forced every
// traced run onto the serial path.
func BenchmarkTracedSerial(b *testing.B) {
	c := traceBenchChip()
	c.Tracing = true
	prog := benchProgram(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Execute(prog); err != nil {
			b.Fatal(err)
		}
		c.ResetTrace()
	}
}

// BenchmarkTracedParallel is the ledger-traced concurrent path; compare
// against BenchmarkTracedSerial for the win of removing the fallback.
func BenchmarkTracedParallel(b *testing.B) {
	c := traceBenchChip()
	c.Tracing = true
	prog := benchProgram(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.ExecuteParallel(context.Background(), prog, 8); err != nil {
			b.Fatal(err)
		}
		c.ResetTrace()
	}
}
