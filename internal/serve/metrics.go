package serve

import (
	"expvar"
	"fmt"
	"strings"
	"sync"
	"time"

	"hyperap/internal/obs"
)

// metrics is the server's counter set, built on stdlib expvar types. The
// vars live in a private expvar.Map rather than the process-global expvar
// namespace so that several servers (tests, embedded uses) never collide
// on Publish; GET /metrics serialises the map, whose String method is
// already the expvar JSON encoding.
type metrics struct {
	root *expvar.Map

	requests *expvar.Map // per "<endpoint> <status>" response counts

	cacheHits      expvar.Int
	cacheMisses    expvar.Int
	cacheEvictions expvar.Int

	flushes           expvar.Int
	coalescedRequests expvar.Int  // run requests that shared a pass with ≥1 other
	occupancy         *expvar.Map // flushes by requests-per-pass bucket
	rejectedQueueFull expvar.Int
	rejectedDraining  expvar.Int

	queueDepthSlots expvar.Int // gauge: slots admitted and not yet run
	queueWaitNS     expvar.Int // total submit→flush wait
	runNS           expvar.Int // total RunBatch wall time

	// Deadline-propagation accounting (DESIGN.md §15): requests that
	// arrived with an X-Hyperap-Deadline header, waiters the coalescer
	// shed because their deadline expired before dispatch, and requests
	// whose caller vanished while still queued (slots reclaimed).
	deadlinePropagated expvar.Int
	deadlineShed       expvar.Int
	canceledInQueue    expvar.Int

	// Log-bucketed latency histograms (internal/obs): the percentile
	// views of the totals above, plus end-to-end request latency. The
	// totals stay for rate computation; the histograms carry
	// p50/p95/p99.
	queueWaitHist *obs.Histogram // submit → pass start, per request
	runHist       *obs.Histogram // RunBatch wall time, per pass
	requestHist   *obs.Histogram // end-to-end HTTP latency, per request

	// Aggregated simulator accounting across every completed pass.
	searches expvar.Int
	writes   expvar.Int
	energyJ  expvar.Float

	// Fault-model activity summed across passes (each pass builds a
	// fresh chip, so per-chip counters add), plus the healthy-PE
	// fraction of the most recent pass as a gauge.
	faultDetected     expvar.Int   // write-verify mismatches
	faultRepairs      expvar.Int   // rows remapped onto spares
	transientUpsets   expvar.Int   // silent match-line flips
	spareRetries      expvar.Int   // shards replayed on spare PEs
	faultErrors       expvar.Int   // runs failed with a FaultError (503)
	healthyPEFraction expvar.Float // gauge: non-failed PEs / total, last pass

	// Persistence (internal/store) activity: the on-disk program store
	// and the chip-state checkpoint. compiles counts actual pipeline
	// runs, so on a persistence-enabled server
	// store_program_hits + compiles == cache_misses.
	compiles             expvar.Int
	storeProgramHits     expvar.Int // cache misses answered from disk
	storeProgramMisses   expvar.Int // cache misses that went to the compiler
	storeProgramWrites   expvar.Int // write-throughs that landed
	storeWriteErrors     expvar.Int
	storeWriteCancels    expvar.Int // write-throughs canceled by eviction
	storeCorruptions     expvar.Int // records quarantined on read
	storePeerHits        expvar.Int // misses answered by a peer's store record
	storePeerMisses      expvar.Int // peer fan-outs that found no copy anywhere
	storePeerErrors      expvar.Int // peer fetches that failed or failed verification
	storeRecordsServed   expvar.Int // store records served to fetching peers
	checkpointSaves      expvar.Int
	checkpointSaveErrors expvar.Int
	checkpointRestores   expvar.Int // checkpoints restored at startup (0 or 1)
	checkpointStale      expvar.Int // checkpoints/slots rejected as incompatible

	// Durable chip-state gauges derived from the wear ledger.
	chipWearMaxPulses expvar.Int // worst per-cell programming-pulse count
	chipSparesUsed    expvar.Int // spare rows consumed across all virtual PEs
	chipRetiredPEs    expvar.Int // virtual PEs taken out of rotation

	mu               sync.Mutex
	maxBatchRequests expvar.Int // high-water requests per pass
	maxBatchSlots    expvar.Int // high-water slot occupancy per pass

	// Cluster-observability layer (DESIGN.md §14): rolling request/error
	// rate windows, the per-fingerprint hot-program table, and the
	// Prometheus-format view of everything above (GET /metrics/prometheus).
	reqWindow *obs.RateWindow
	errWindow *obs.RateWindow
	hot       *obs.HotPrograms
	prom      *obs.PromRegistry
}

// hotProgramTopK bounds the hot-program gauge families per scrape.
const hotProgramTopK = 10

func newMetrics() *metrics {
	m := &metrics{
		root:          new(expvar.Map).Init(),
		requests:      new(expvar.Map).Init(),
		occupancy:     new(expvar.Map).Init(),
		queueWaitHist: obs.NewHistogram(),
		runHist:       obs.NewHistogram(),
		requestHist:   obs.NewHistogram(),
	}
	m.root.Set("requests", m.requests)
	m.root.Set("cache_hits", &m.cacheHits)
	m.root.Set("cache_misses", &m.cacheMisses)
	m.root.Set("cache_evictions", &m.cacheEvictions)
	m.root.Set("batch_flushes", &m.flushes)
	m.root.Set("batch_coalesced_requests", &m.coalescedRequests)
	m.root.Set("batch_occupancy", m.occupancy)
	m.root.Set("batch_max_requests", &m.maxBatchRequests)
	m.root.Set("batch_max_slots", &m.maxBatchSlots)
	m.root.Set("rejected_queue_full", &m.rejectedQueueFull)
	m.root.Set("rejected_draining", &m.rejectedDraining)
	m.root.Set("queue_depth_slots", &m.queueDepthSlots)
	m.root.Set("deadline_propagated", &m.deadlinePropagated)
	m.root.Set("deadline_shed", &m.deadlineShed)
	m.root.Set("canceled_in_queue", &m.canceledInQueue)
	m.root.Set("queue_wait_ns", &m.queueWaitNS)
	m.root.Set("run_ns", &m.runNS)
	m.root.Set("queue_wait", expvar.Func(m.queueWaitHist.Summary))
	m.root.Set("run", expvar.Func(m.runHist.Summary))
	m.root.Set("request_latency", expvar.Func(m.requestHist.Summary))
	m.root.Set("sim_searches", &m.searches)
	m.root.Set("sim_writes", &m.writes)
	m.root.Set("sim_energy_j", &m.energyJ)
	m.root.Set("fault_detected", &m.faultDetected)
	m.root.Set("fault_repairs", &m.faultRepairs)
	m.root.Set("fault_transient_upsets", &m.transientUpsets)
	m.root.Set("fault_spare_retries", &m.spareRetries)
	m.root.Set("fault_errors", &m.faultErrors)
	m.healthyPEFraction.Set(1)
	m.root.Set("healthy_pe_fraction", &m.healthyPEFraction)
	m.root.Set("compiles", &m.compiles)
	m.root.Set("store_program_hits", &m.storeProgramHits)
	m.root.Set("store_program_misses", &m.storeProgramMisses)
	m.root.Set("store_program_writes", &m.storeProgramWrites)
	m.root.Set("store_write_errors", &m.storeWriteErrors)
	m.root.Set("store_write_cancels", &m.storeWriteCancels)
	m.root.Set("store_corruptions", &m.storeCorruptions)
	m.root.Set("store_peer_hits", &m.storePeerHits)
	m.root.Set("store_peer_misses", &m.storePeerMisses)
	m.root.Set("store_peer_errors", &m.storePeerErrors)
	m.root.Set("store_records_served", &m.storeRecordsServed)
	m.root.Set("checkpoint_saves", &m.checkpointSaves)
	m.root.Set("checkpoint_save_errors", &m.checkpointSaveErrors)
	m.root.Set("checkpoint_restores", &m.checkpointRestores)
	m.root.Set("checkpoint_stale", &m.checkpointStale)
	m.root.Set("chip_wear_max_pulses", &m.chipWearMaxPulses)
	m.root.Set("chip_spares_used", &m.chipSparesUsed)
	m.root.Set("chip_retired_pes", &m.chipRetiredPEs)
	m.reqWindow = obs.NewRateWindow(5*time.Minute, 5*time.Second)
	m.errWindow = obs.NewRateWindow(5*time.Minute, 5*time.Second)
	m.hot = obs.NewHotPrograms(0, 0)
	m.prom = buildPromRegistry("hyperap_", m.root, m)
	return m
}

// buildPromRegistry renders the expvar counter set above as Prometheus
// families plus the observability extras that have no expvar form: the
// native histogram series, the rolling 1m/5m rates and the top-K
// hot-program table. prefix distinguishes binaries (hyperap_ here,
// hyperap_coord_ on the coordinator). The expvar ints whose value can go
// down (or is a level, not an accumulation) are declared as gauges; the
// requests and batch_occupancy maps are skipped and re-registered by
// hand with real label names instead of the generic "key".
func buildPromRegistry(prefix string, root *expvar.Map, m *metrics) *obs.PromRegistry {
	reg := obs.NewPromRegistry()
	gauges := map[string]bool{
		"queue_depth_slots":    true,
		"healthy_pe_fraction":  true,
		"batch_max_requests":   true,
		"batch_max_slots":      true,
		"chip_wear_max_pulses": true,
		"chip_spares_used":     true,
		"chip_retired_pes":     true,
	}
	skip := map[string]bool{"requests": true, "batch_occupancy": true}
	reg.RegisterExpvarMap(prefix, root, gauges, skip)
	reg.CounterVec(prefix+"requests_total", "HTTP responses by endpoint and status", func() []obs.PromSample {
		var out []obs.PromSample
		m.requests.Do(func(kv expvar.KeyValue) {
			iv, ok := kv.Value.(*expvar.Int)
			endpoint, status, found := strings.Cut(kv.Key, " ")
			if !ok || !found {
				return
			}
			out = append(out, obs.PromSample{
				Labels: []obs.PromLabel{{Key: "endpoint", Value: endpoint}, {Key: "status", Value: status}},
				Value:  float64(iv.Value()),
			})
		})
		return out
	})
	reg.CounterVec(prefix+"batch_occupancy_total", "coalescer flushes by requests-per-pass bucket", func() []obs.PromSample {
		var out []obs.PromSample
		m.occupancy.Do(func(kv expvar.KeyValue) {
			if iv, ok := kv.Value.(*expvar.Int); ok {
				out = append(out, obs.PromSample{
					Labels: []obs.PromLabel{{Key: "bucket", Value: kv.Key}},
					Value:  float64(iv.Value()),
				})
			}
		})
		return out
	})
	reg.Histogram(prefix+"queue_wait_duration_ns", "submit-to-pass-start wait per request (ns)", m.queueWaitHist)
	reg.Histogram(prefix+"run_duration_ns", "RunBatch wall time per pass (ns)", m.runHist)
	reg.Histogram(prefix+"request_duration_ns", "end-to-end HTTP latency per request (ns)", m.requestHist)
	obs.RegisterRatesAndHot(reg, prefix, m.reqWindow, m.errWindow, m.hot, hotProgramTopK)
	return reg
}

// occupancyBucket buckets a pass by how many requests it carried.
func occupancyBucket(requests int) string {
	switch {
	case requests <= 1:
		return "1"
	case requests <= 4:
		return "2-4"
	case requests <= 16:
		return "5-16"
	case requests <= 64:
		return "17-64"
	default:
		return "65+"
	}
}

// recordFlush accounts one completed coalescer pass.
func (m *metrics) recordFlush(requests, slots int) {
	m.flushes.Add(1)
	m.occupancy.Add(occupancyBucket(requests), 1)
	if requests > 1 {
		m.coalescedRequests.Add(int64(requests))
	}
	m.mu.Lock()
	if int64(requests) > m.maxBatchRequests.Value() {
		m.maxBatchRequests.Set(int64(requests))
	}
	if int64(slots) > m.maxBatchSlots.Value() {
		m.maxBatchSlots.Set(int64(slots))
	}
	m.mu.Unlock()
}

// recordResponse counts one HTTP response by endpoint and status code,
// and feeds the rolling request/error rate windows (errors = 5xx).
func (m *metrics) recordResponse(endpoint string, status int) {
	m.requests.Add(fmt.Sprintf("%s %d", endpoint, status), 1)
	m.reqWindow.Add(1)
	if status >= 500 {
		m.errWindow.Add(1)
	}
}
