package serve

import (
	"fmt"
	"hash/crc32"
	"net/http"
	"strconv"
	"time"
)

// This file is the wire-integrity contract between the coordinator and
// its workers (DESIGN.md §15): an end-to-end deadline header so doomed
// work is shed as early as possible, and a cheap content checksum on
// relayed bodies so a payload corrupted anywhere on the wire (or by a
// chaos proxy in tests) is detected and converted into a failover —
// never returned to a client as a plausible-looking answer.

const (
	// DeadlineHeader carries the request's absolute deadline as unix
	// nanoseconds. The coordinator derives it from its own request
	// context on every forward; a worker intersects it with its local
	// request timeout, so the whole retry tree shares one end-to-end
	// budget and nobody computes past the moment the client stops
	// listening.
	DeadlineHeader = "X-Hyperap-Deadline"

	// ChecksumHeader carries a CRC32-Castagnoli checksum of the exact
	// response body bytes, formatted by BodyChecksum. The coordinator
	// verifies it after buffering a worker response and treats a mismatch
	// like a transport error (failover), so a corrupted relay can cost a
	// retry but never a wrong result.
	ChecksumHeader = "X-Hyperap-Checksum"
)

// castagnoli is the CRC32c table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// BodyChecksum renders the checksum-header value for a body.
func BodyChecksum(body []byte) string {
	return fmt.Sprintf("crc32c=%08x", crc32.Checksum(body, castagnoli))
}

// VerifyChecksum checks a body against a checksum-header value. An
// unknown scheme verifies trivially (forward compatibility: an old
// coordinator must not fail over on a header a newer worker added).
func VerifyChecksum(value string, body []byte) bool {
	var sum uint32
	if _, err := fmt.Sscanf(value, "crc32c=%08x", &sum); err != nil {
		return true
	}
	return crc32.Checksum(body, castagnoli) == sum
}

// FormatDeadline renders an absolute deadline for DeadlineHeader.
func FormatDeadline(t time.Time) string {
	return strconv.FormatInt(t.UnixNano(), 10)
}

// ParseDeadline extracts the propagated absolute deadline from a request
// header set (ok=false when absent or malformed — a bad header is
// ignored, not an error: deadline propagation is an optimization, and
// the local request timeout still bounds the work).
func ParseDeadline(h http.Header) (time.Time, bool) {
	v := h.Get(DeadlineHeader)
	if v == "" {
		return time.Time{}, false
	}
	ns, err := strconv.ParseInt(v, 10, 64)
	if err != nil || ns <= 0 {
		return time.Time{}, false
	}
	return time.Unix(0, ns), true
}
