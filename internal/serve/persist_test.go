package serve

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hyperap/internal/tcam"
)

// metNum reads one numeric metric from a test server's /metrics.
func metNum(t *testing.T, url, name string) float64 {
	t.Helper()
	var met map[string]any
	if code := get(t, url+"/metrics", &met); code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	v, _ := met[name].(float64)
	return v
}

// stateDir honors HYPERAP_E2E_STATE_DIR so CI can upload the state
// directory as an artifact; otherwise the test uses its own temp dir.
func stateDir(t *testing.T) string {
	t.Helper()
	if env := os.Getenv("HYPERAP_E2E_STATE_DIR"); env != "" {
		dir := filepath.Join(env, t.Name())
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	return t.TempDir()
}

// persistCfg is the shared config of the restart pair: a sparse
// stuck-at defect map plus spare rows, so write-verify repairs burn
// spares and leave the chip visibly (and durably) degraded, while wear
// accumulates pass over pass.
func persistCfg(dir string, seed int64) Config {
	return Config{
		StateDir:         dir,
		SnapshotInterval: -1, // drain-time snapshot only: the SIGTERM path
		Faults:           tcam.FaultConfig{Seed: seed, StuckAtRate: 3e-5, SpareRows: 8},
	}
}

// TestWarmRestartE2E is the durable-state acceptance path: a server
// accumulates wear until spare rows burn, drains (the SIGTERM path
// writes the final checkpoint), and a second server on the same state
// dir comes back with the wear, the burned spares, the degraded /readyz
// — and zero recompiles.
func TestWarmRestartE2E(t *testing.T) {
	base := stateDir(t)
	inputs, want := faultBatch()

	// The defect map is seed-deterministic, but whether a stuck cell
	// lands under a written column depends on layout — scan seeds (as
	// the fault tests do) for one whose defects get detected and
	// repaired during a short wear-heavy phase. Each candidate gets its
	// own state dir so the winner's checkpoint is unpolluted.
	var (
		dir  string
		s1   *Server
		ts1  *httptest.Server
		comp CompileResponse
	)
	for seed := int64(1); seed <= 64 && s1 == nil; seed++ {
		d := filepath.Join(base, fmt.Sprintf("seed-%d", seed))
		s := New(persistCfg(d, seed))
		ts := httptest.NewServer(s)
		var c CompileResponse
		if code := post(t, ts.URL+"/v1/compile", CompileRequest{Source: addSrc}, &c); code != 200 {
			t.Fatalf("compile status %d", code)
		}
		if c.Cached {
			t.Fatal("first-ever compile reported cached")
		}
		ok := true
		for pass := 0; pass < 8 && ok; pass++ {
			in := make([][]uint64, len(inputs))
			wantp := make([]uint64, len(inputs))
			for i := range in {
				a := uint64(i*7+3+pass*5) & 31
				b := uint64(i*13+1+pass*3) & 31
				in[i] = []uint64{a, b}
				wantp[i] = a + b
			}
			var run RunResponse
			code := post(t, ts.URL+"/v1/run", RunRequest{Program: c.Program, Inputs: in, NoCoalesce: true}, &run)
			if code != 200 {
				ok = false // this seed's defects were unrepairable: loud, not wrong
				break
			}
			for i, out := range run.Outputs {
				if len(out) != 1 || out[0] != wantp[i] {
					t.Fatalf("seed %d pass %d slot %d = %v, want [%d] (silent corruption)", seed, pass, i, out, wantp[i])
				}
			}
		}
		if ok && metNum(t, ts.URL, "chip_spares_used") > 0 {
			dir, s1, ts1, comp = d, s, ts, c
			break
		}
		ts.Close()
	}
	if s1 == nil {
		t.Fatal("no seed in 1..64 produced a repaired run; rate/layout drifted")
	}
	seed := s1.cfg.Faults.Seed
	if n := metNum(t, ts1.URL, "compiles"); n != 1 {
		t.Fatalf("compiles = %v, want 1", n)
	}
	wear := metNum(t, ts1.URL, "chip_wear_max_pulses")
	spares := metNum(t, ts1.URL, "chip_spares_used")
	if wear <= 0 || spares <= 0 {
		t.Fatalf("wear-heavy phase ended with wear=%v spares=%v", wear, spares)
	}
	var ready1 map[string]any
	get(t, ts1.URL+"/readyz", &ready1)
	if ready1["status"] != "degraded" {
		t.Fatalf("server 1 readyz = %v, want degraded", ready1["status"])
	}
	// Wait for the async program write-through before "SIGTERM".
	deadline := time.Now().Add(5 * time.Second)
	for metNum(t, ts1.URL, "store_program_writes") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("program write-through never landed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := s1.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if n := metNum(t, ts1.URL, "checkpoint_saves"); n != 1 {
		t.Fatalf("checkpoint_saves = %v, want 1 (drain-time snapshot)", n)
	}
	ts1.Close()

	// Warm restart: same state dir, same config, fresh process.
	s2 := New(persistCfg(dir, seed))
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	if n := metNum(t, ts2.URL, "checkpoint_restores"); n != 1 {
		t.Fatalf("checkpoint_restores = %v, want 1", n)
	}
	// Before ANY pass: the node that died degraded is back degraded,
	// with the wear and burned spares it died with.
	var ready2 map[string]any
	get(t, ts2.URL+"/readyz", &ready2)
	if ready2["status"] != "degraded" {
		t.Errorf("restarted readyz = %v, want degraded before any pass", ready2["status"])
	}
	if got := metNum(t, ts2.URL, "chip_wear_max_pulses"); got != wear {
		t.Errorf("restored wear = %v, want %v", got, wear)
	}
	if got := metNum(t, ts2.URL, "chip_spares_used"); got != spares {
		t.Errorf("restored spares = %v, want %v", got, spares)
	}

	// Zero recompiles: the same source is a program-store hit.
	var comp2 CompileResponse
	if code := post(t, ts2.URL+"/v1/compile", CompileRequest{Source: addSrc}, &comp2); code != 200 {
		t.Fatalf("warm compile status %d", code)
	}
	if !comp2.Cached {
		t.Error("warm restart recompiled a stored program")
	}
	if comp2.Program != comp.Program {
		t.Errorf("fingerprint changed across restart: %s vs %s", comp2.Program, comp.Program)
	}
	if n := metNum(t, ts2.URL, "compiles"); n != 0 {
		t.Errorf("compiles after warm restart = %v, want 0", n)
	}
	if n := metNum(t, ts2.URL, "store_program_hits"); n != 1 {
		t.Errorf("store_program_hits = %v, want 1", n)
	}

	// The restored chip keeps aging from where it left off: one more
	// pass must not reset wear below the restored value.
	var run RunResponse
	if code := post(t, ts2.URL+"/v1/run", RunRequest{Program: comp2.Program, Inputs: inputs, NoCoalesce: true}, &run); code != 200 {
		t.Fatalf("warm run status %d", code)
	}
	for i, out := range run.Outputs {
		if len(out) != 1 || out[0] != want[i] {
			t.Fatalf("warm slot %d = %v, want [%d]", i, out, want[i])
		}
	}
	if got := metNum(t, ts2.URL, "chip_wear_max_pulses"); got < wear {
		t.Errorf("wear after warm pass = %v, below restored %v", got, wear)
	}
	if err := s2.Drain(context.Background()); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

// TestStaleCheckpointIgnored: a checkpoint from a different fault
// configuration must not seed the ledger.
func TestStaleCheckpointIgnored(t *testing.T) {
	dir := t.TempDir()
	inputs, _ := faultBatch()
	s1 := New(persistCfg(dir, 5))
	ts1 := httptest.NewServer(s1)
	var comp CompileResponse
	post(t, ts1.URL+"/v1/compile", CompileRequest{Source: addSrc}, &comp)
	post(t, ts1.URL+"/v1/run", RunRequest{Program: comp.Program, Inputs: inputs, NoCoalesce: true}, nil)
	if err := s1.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	cfg := persistCfg(dir, 99) // different defect universe: the state is stale
	s2 := New(cfg)
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	if n := metNum(t, ts2.URL, "checkpoint_restores"); n != 0 {
		t.Errorf("stale checkpoint restored (restores = %v)", n)
	}
	if n := metNum(t, ts2.URL, "checkpoint_stale"); n != 1 {
		t.Errorf("checkpoint_stale = %v, want 1", n)
	}
	if n := metNum(t, ts2.URL, "chip_wear_max_pulses"); n != 0 {
		t.Errorf("stale wear leaked into fresh ledger: %v", n)
	}
}

// TestEvictionCancelsWriteThrough: evicting a program from the LRU
// releases its in-flight store write — whatever the race outcome, no
// temp file may remain and all write-throughs must resolve.
func TestEvictionCancelsWriteThrough(t *testing.T) {
	dir := t.TempDir()
	cfg := persistCfg(dir, 1)
	cfg.MaxPrograms = 1
	s := New(cfg)
	ts := httptest.NewServer(s)
	defer ts.Close()

	srcB := `unsigned int(6) main(unsigned int(5) a, unsigned int(5) b){ return a - b; }`
	if code := post(t, ts.URL+"/v1/compile", CompileRequest{Source: addSrc}, nil); code != 200 {
		t.Fatalf("compile A status %d", code)
	}
	if code := post(t, ts.URL+"/v1/compile", CompileRequest{Source: srcB}, nil); code != 200 {
		t.Fatalf("compile B status %d", code)
	}
	if n := metNum(t, ts.URL, "cache_evictions"); n != 1 {
		t.Fatalf("cache_evictions = %v, want 1", n)
	}
	// Both write-throughs must settle: landed, canceled or errored.
	deadline := time.Now().Add(5 * time.Second)
	for {
		done := metNum(t, ts.URL, "store_program_writes") +
			metNum(t, ts.URL, "store_write_cancels") +
			metNum(t, ts.URL, "store_write_errors")
		if done >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("write-throughs never settled (done=%v)", done)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The satellite invariant: no orphaned temp files, however the
	// eviction/write race resolved.
	tmps, err := filepath.Glob(filepath.Join(dir, "programs", ".tmp-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tmps) != 0 {
		t.Errorf("eviction left temp files: %v", tmps)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestStoreWriteBarredAfterEviction pins the program-side semantics:
// once released, a write-through can no longer begin.
func TestStoreWriteBarredAfterEviction(t *testing.T) {
	p := &program{handle: "sha256:x"}
	ctx, ok := p.beginStoreWrite()
	if !ok || ctx.Err() != nil {
		t.Fatal("first write must be admitted with a live context")
	}
	p.releaseStoreWrite()
	if ctx.Err() == nil {
		t.Error("release must cancel the in-flight context")
	}
	p.endStoreWrite()
	if _, ok := p.beginStoreWrite(); ok {
		t.Error("write admitted after eviction")
	}
}
