package serve

import (
	"context"
	"errors"
	"log/slog"
	"sync"
	"time"

	"hyperap/internal/arch"
	"hyperap/internal/compile"
	"hyperap/internal/store"
	"hyperap/internal/tcam"
	"hyperap/internal/tech"
)

// persistence makes chip lifetime state durable. Two problems meet
// here:
//
// First, every coalesced pass builds a fresh chip inside RunBatch, so
// nothing physical survives from one pass to the next. The ledger below
// maintains a pool of *virtual PE slots*: a pass leases one slot per
// shard, the slot's accumulated state (wear, stuck cells, burned
// spares, remaps) is imported into the pass chip before data loads
// (compile.WithChipInit), and the chip's exported state replaces the
// slot's after the pass. Concurrent passes lease disjoint slots — the
// model of a chip with more PEs than any one pass uses — so no delta
// arithmetic or cross-pass locking is needed and wear is conserved
// exactly. A slot whose PE fails is retired, never leased again, and
// still counted by health reporting.
//
// Second, the ledger itself must survive restarts: snapshot() writes it
// through internal/store (periodically, on drain, and therefore on
// SIGTERM, which the CLI turns into a drain), and restore() verifies a
// checkpoint against the current geometry and fault configuration
// before seeding the ledger and the /readyz health state from it — a
// node that died degraded comes back degraded before its first pass.
type persistence struct {
	st  *store.Store
	met *metrics
	log *slog.Logger

	// Canonical pass-chip geometry. Only executables matching it are
	// aged (WithFullRows pins the row count; WordBits and the array
	// design come from the target). Passes for exotic targets still run
	// — they just bypass the ledger.
	rows, bits int
	mono       bool
	faults     tcam.FaultConfig

	mu        sync.Mutex
	entries   []*ledgerEntry // live virtual PE slots
	retired   []arch.PEState // failed slots, kept for health accounting
	retries   int64
	snapshots uint64

	loopStop chan struct{}
	loopDone chan struct{}
	stopOnce sync.Once
}

// ledgerEntry is one virtual PE slot. state is nil until the slot's
// first pass completes (a fresh, never-aged PE).
type ledgerEntry struct {
	state  *arch.PEState
	leased bool
}

// newPersistence opens the state directory and restores any compatible
// checkpoint. Open errors disable persistence (returned as error);
// checkpoint corruption or staleness falls back to fresh state.
func newPersistence(dir string, faults tcam.FaultConfig, met *metrics, log *slog.Logger) (*persistence, error) {
	st, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	p := &persistence{
		st:     st,
		met:    met,
		log:    log,
		rows:   tech.PERows,
		bits:   tech.PEBits,
		mono:   false,
		faults: faults,
	}
	p.restore()
	return p, nil
}

// matches reports whether an executable's pass chips have the canonical
// geometry the ledger ages.
func (p *persistence) matches(tgt compile.Target) bool {
	return tgt.WordBits == p.bits && tgt.Monolithic == p.mono
}

// restore loads the checkpoint, verifying compatibility; anything wrong
// means fresh state, never partial or mismatched state.
func (p *persistence) restore() {
	cp, err := p.st.LoadCheckpoint()
	switch {
	case errors.Is(err, store.ErrNotFound):
		return
	case errors.Is(err, store.ErrCorrupt):
		p.met.storeCorruptions.Add(1)
		p.log.Warn("chip checkpoint corrupt; starting with fresh chip state", "err", err)
		return
	case err != nil:
		p.log.Warn("chip checkpoint unreadable; starting with fresh chip state", "err", err)
		return
	}
	if !cp.Compatible(p.rows, p.bits, p.mono, p.faults) {
		p.met.checkpointStale.Add(1)
		p.log.Warn("chip checkpoint is for a different geometry or fault config; starting fresh",
			"ckpt_rows", cp.Rows, "ckpt_bits", cp.Bits)
		return
	}
	p.mu.Lock()
	for i := range cp.PEs {
		ps := cp.PEs[i]
		p.entries = append(p.entries, &ledgerEntry{state: &ps})
	}
	p.retired = append(p.retired, cp.Retired...)
	p.retries = cp.Retries
	p.snapshots = cp.Snapshots
	p.mu.Unlock()
	p.met.checkpointRestores.Add(1)
	p.updateGauges()
	h := p.healthSummary()
	p.log.Info("restored chip state",
		"virtual_pes", len(cp.PEs), "retired_pes", len(cp.Retired),
		"degraded", h.Degraded, "failed", h.Failed, "snapshots", cp.Snapshots)
}

// passLease is the slice of slots one pass aged; it carries the chip
// hooks handed to RunBatch.
type passLease struct {
	p       *persistence
	entries []*ledgerEntry
}

// lease reserves shards virtual PE slots, growing the ledger when the
// pool runs dry. Retired slots are never handed out.
func (p *persistence) lease(shards int) *passLease {
	p.mu.Lock()
	defer p.mu.Unlock()
	l := &passLease{p: p}
	for _, e := range p.entries {
		if len(l.entries) == shards {
			break
		}
		if !e.leased {
			e.leased = true
			l.entries = append(l.entries, e)
		}
	}
	for len(l.entries) < shards {
		e := &ledgerEntry{leased: true}
		p.entries = append(p.entries, e)
		l.entries = append(l.entries, e)
	}
	return l
}

// init pre-ages the freshly built pass chip with each leased slot's
// accumulated state: data planes erased (programs assume an erased
// chip), activity counters cleared (per-pass metrics must not re-count
// history), structure — wear, stuck cells, remaps, consumed spares —
// imported as-is. A slot whose state no longer imports is skipped and
// left fresh rather than failing the pass.
func (l *passLease) init(chip *arch.Chip) error {
	for i, e := range l.entries {
		if e.state == nil {
			continue
		}
		d := e.state.Design.Clone()
		d.ClearData()
		d.ClearActivity()
		if err := chip.ImportPEState(i, arch.PEState{Design: d}); err != nil {
			l.p.met.checkpointStale.Add(1)
			l.p.log.Warn("virtual PE state no longer imports; slot runs fresh", "slot", i, "err", err)
		}
	}
	return nil
}

// finish folds the pass chip's exported state back into the leased
// slots and releases them. chip is nil when the pass failed before
// producing a chip — the slots keep their pre-pass state (that pass's
// wear is lost, which under-counts damage rather than inventing it).
// Spare-tail PEs that were touched (burned trying a replay, or a
// failed PE parked there by a swap) join the retired list.
func (l *passLease) finish(chip *arch.Chip) {
	p := l.p
	if chip == nil {
		p.mu.Lock()
		for _, e := range l.entries {
			e.leased = false
		}
		p.mu.Unlock()
		return
	}
	st := chip.ExportState()
	p.mu.Lock()
	for i, e := range l.entries {
		if i >= len(st.Active) {
			break
		}
		ex := st.Active[i]
		if e.state != nil {
			ex.Design.AccumulateActivity(&e.state.Design)
		}
		e.state = &ex
		e.leased = false
	}
	var live []*ledgerEntry
	for _, e := range p.entries {
		if e.state != nil && e.state.Failed {
			p.retired = append(p.retired, *e.state)
			continue
		}
		live = append(live, e)
	}
	p.entries = live
	for i := range st.Spare {
		sp := st.Spare[i]
		if sp.Failed || sp.Design.MaxWear() > 0 || sp.Design.Degraded() {
			p.retired = append(p.retired, sp)
		}
	}
	p.retries += st.Retries
	p.mu.Unlock()
	p.updateGauges()
}

// healthSummary derives the chip health from the ledger: live slots by
// their structural state, retired slots as failed (or degraded, for
// burned spares that never carried a logical row).
func (p *persistence) healthSummary() arch.HealthSummary {
	p.mu.Lock()
	defer p.mu.Unlock()
	var h arch.HealthSummary
	for _, e := range p.entries {
		h.Total++
		if e.state == nil {
			h.Healthy++
			continue
		}
		switch e.state.Health() {
		case arch.Healthy:
			h.Healthy++
		case arch.Degraded:
			h.Degraded++
		case arch.Failed:
			h.Failed++
		}
	}
	for i := range p.retired {
		h.Total++
		if p.retired[i].Failed {
			h.Failed++
		} else {
			h.Degraded++
		}
	}
	return h
}

// updateGauges refreshes the chip-state gauges in /metrics.
func (p *persistence) updateGauges() {
	p.mu.Lock()
	var maxWear uint32
	spares := 0
	for _, e := range p.entries {
		if e.state == nil {
			continue
		}
		if w := e.state.Design.MaxWear(); w > maxWear {
			maxWear = w
		}
		spares += e.state.Design.SparesUsed()
	}
	for i := range p.retired {
		if w := p.retired[i].Design.MaxWear(); w > maxWear {
			maxWear = w
		}
		spares += p.retired[i].Design.SparesUsed()
	}
	retired := len(p.retired)
	p.mu.Unlock()
	p.met.chipWearMaxPulses.Set(int64(maxWear))
	p.met.chipSparesUsed.Set(int64(spares))
	p.met.chipRetiredPEs.Set(int64(retired))
}

// snapshot writes the ledger through to the chip-state checkpoint.
// Leased slots serialize their pre-pass state (the last returned one) —
// a periodic snapshot taken mid-pass is simply a slightly older
// consistent state; the drain snapshot runs after the queue is empty
// and captures everything.
func (p *persistence) snapshot(ctx context.Context) error {
	p.mu.Lock()
	cp := &store.Checkpoint{
		Rows: p.rows, Bits: p.bits, Monolithic: p.mono, Faults: p.faults,
		Retries: p.retries, Snapshots: p.snapshots + 1,
	}
	for _, e := range p.entries {
		if e.state != nil {
			cp.PEs = append(cp.PEs, *e.state)
		}
	}
	cp.Retired = append(cp.Retired, p.retired...)
	p.mu.Unlock()
	err := p.st.SaveCheckpoint(ctx, cp)
	if err != nil {
		p.met.checkpointSaveErrors.Add(1)
		return err
	}
	p.mu.Lock()
	p.snapshots = cp.Snapshots
	p.mu.Unlock()
	p.met.checkpointSaves.Add(1)
	return nil
}

// startLoop begins periodic snapshots; stopLoop (idempotent) halts them
// and is followed by the drain path's final snapshot.
func (p *persistence) startLoop(interval time.Duration) {
	p.loopStop = make(chan struct{})
	p.loopDone = make(chan struct{})
	go func() {
		defer close(p.loopDone)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-p.loopStop:
				return
			case <-t.C:
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				if err := p.snapshot(ctx); err != nil {
					p.log.Warn("periodic chip snapshot failed", "err", err)
				}
				cancel()
			}
		}
	}()
}

func (p *persistence) stopLoop() {
	p.stopOnce.Do(func() {
		if p.loopStop != nil {
			close(p.loopStop)
			<-p.loopDone
		}
	})
}

// loadProgram checks the on-disk program store for a fingerprint,
// counting hits, misses and quarantined corruption.
func (p *persistence) loadProgram(handle, src string, tgt compile.Target) (*compile.Executable, bool) {
	ex, err := p.st.LoadProgram(handle, src, tgt)
	switch {
	case err == nil:
		p.met.storeProgramHits.Add(1)
		return ex, true
	case errors.Is(err, store.ErrNotFound):
		p.met.storeProgramMisses.Add(1)
	case errors.Is(err, store.ErrCorrupt):
		p.met.storeCorruptions.Add(1)
		p.met.storeProgramMisses.Add(1)
		p.log.Warn("stored program quarantined; recompiling", "program", handle, "err", err)
	default:
		p.met.storeProgramMisses.Add(1)
		p.log.Warn("program store read failed; recompiling", "program", handle, "err", err)
	}
	return nil, false
}

// writeThrough persists a freshly compiled program asynchronously. The
// write is registered on the program entry so cache eviction can cancel
// it mid-flight (no orphaned temp files for programs nobody can look up
// anymore).
func (p *persistence) writeThrough(pr *program) {
	ctx, ok := pr.beginStoreWrite()
	if !ok {
		return // already evicted: nothing to persist
	}
	go func() {
		defer pr.endStoreWrite()
		err := p.st.SaveProgram(ctx, pr.handle, pr.ex)
		switch {
		case err == nil:
			p.met.storeProgramWrites.Add(1)
		case errors.Is(err, context.Canceled):
			p.met.storeWriteCancels.Add(1)
		default:
			p.met.storeWriteErrors.Add(1)
			p.log.Warn("program write-through failed", "program", pr.handle, "err", err)
		}
	}()
}
