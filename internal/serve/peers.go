package serve

import (
	"context"
	"errors"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"

	"hyperap/internal/compile"
	"hyperap/internal/store"
)

// The cluster-shareable half of the program store. Each worker exposes
// its compiled programs as raw self-verifying store records
// (GET /v1/store/program), and a worker that misses both its cache and
// its local disk store asks its peers for the record before running the
// compile pipeline. The record's layered verification (envelope
// checksum, schema version, canonical-target check, DFG cross-check
// against the source the fingerprint covers) makes the exchange safe by
// construction: a bad record from any peer degrades to a recompile,
// never to a wrong program. Net effect across a fingerprint-routed
// cluster: each distinct program compiles on exactly one node, ever.

// JitteredRetryAfter sets a Retry-After header randomized over 1..3
// seconds. Serve's backpressure (429) and fault-window (503) responses
// use it so a cluster of coordinators and clients retrying against a
// recovering worker spreads out instead of synchronizing into a retry
// storm; the coordinator's own draining/empty-ring rejections reuse it.
func JitteredRetryAfter(h http.Header) {
	h.Set("Retry-After", strconv.Itoa(1+rand.IntN(3)))
}

// handleStoreProgram serves GET /v1/store/program?program=<handle>: the
// raw store record for a fingerprint, as application/octet-stream. The
// record comes from the local disk store when present, else is encoded
// from the resident cache entry (covering the async write-through
// window and store-less nodes). 404 means "I don't have it" — the
// fetching peer compiles.
func (s *Server) handleStoreProgram(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, "store_program", http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	handle := r.URL.Query().Get("program")
	if handle == "" {
		s.writeError(w, "store_program", http.StatusBadRequest, errors.New("program query parameter is required"))
		return
	}
	if s.persist != nil {
		raw, err := s.persist.st.LoadProgramRecord(handle)
		switch {
		case err == nil:
			s.serveRecord(w, raw)
			return
		case errors.Is(err, store.ErrCorrupt):
			s.met.storeCorruptions.Add(1)
			s.log.Warn("stored program quarantined during peer serve", "program", handle, "err", err)
		case !errors.Is(err, store.ErrNotFound):
			s.log.Warn("program store read failed during peer serve", "program", handle, "err", err)
		}
	}
	// Not on disk (or no state dir): a resident, successfully compiled
	// entry can still be served — encode it into the same record bytes.
	if p, ok := s.cache.peek(handle); ok {
		select {
		case <-p.ready:
			if p.err == nil {
				if raw, err := store.EncodeProgramRecord(p.ex); err == nil {
					s.serveRecord(w, raw)
					return
				}
			}
		default:
			// Still compiling; the peer can compile concurrently (the
			// fingerprint router makes this window rare) rather than
			// block a cross-node request on our pipeline.
		}
	}
	s.writeError(w, "store_program", http.StatusNotFound, errors.New("program record not available"))
}

func (s *Server) serveRecord(w http.ResponseWriter, raw []byte) {
	s.met.recordResponse("store_program", http.StatusOK)
	s.met.storeRecordsServed.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(raw)
}

// fetchFromPeers asks each configured peer for the fingerprint's store
// record, returning the first one that verifies and decodes for this
// (source, target). Peers answer from disk or cache in microseconds, so
// the fan-out is sequential with a short per-peer timeout — simple, and
// a miss everywhere just means we compile like a standalone node.
func (s *Server) fetchFromPeers(ctx context.Context, handle, src string, tgt compile.Target) (*compile.Executable, bool) {
	for _, peer := range s.cfg.Peers {
		if peer == "" {
			continue
		}
		raw, status, err := s.fetchRecord(ctx, peer, handle)
		switch {
		case err != nil:
			s.met.storePeerErrors.Add(1)
			s.log.Warn("peer store fetch failed", "peer", peer, "program", handle, "err", err)
			continue
		case status == http.StatusNotFound:
			continue
		case status != http.StatusOK:
			s.met.storePeerErrors.Add(1)
			s.log.Warn("peer store fetch rejected", "peer", peer, "program", handle, "status", status)
			continue
		}
		ex, err := store.DecodeProgramRecord(raw, src, tgt)
		if err != nil {
			// The record failed verification: wrong bytes from a buggy or
			// stale peer. Never run it; try the next peer or compile.
			s.met.storePeerErrors.Add(1)
			s.log.Warn("peer store record failed verification; ignoring",
				"peer", peer, "program", handle, "err", err)
			continue
		}
		s.met.storePeerHits.Add(1)
		return ex, true
	}
	s.met.storePeerMisses.Add(1)
	return nil, false
}

// fetchRecord runs one bounded peer round trip.
func (s *Server) fetchRecord(ctx context.Context, peer, handle string) ([]byte, int, error) {
	fctx, cancel := context.WithTimeout(ctx, s.cfg.PeerFetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(fctx, http.MethodGet,
		peer+"/v1/store/program?program="+handle, nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := s.peerClient.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		return nil, resp.StatusCode, nil
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		return nil, 0, err
	}
	return raw, resp.StatusCode, nil
}

// peerClientFor builds the HTTP client used for peer store fetches.
func peerClientFor(cfg Config) *http.Client {
	if cfg.PeerClient != nil {
		return cfg.PeerClient
	}
	return &http.Client{
		Transport: &http.Transport{MaxIdleConnsPerHost: 2},
		Timeout:   2 * cfg.PeerFetchTimeout,
	}
}
