package serve

import (
	"context"
	"sync"
	"time"
)

// waiter is one in-flight run request parked in a coalescer. The runner
// fills outs/report/err and closes done exactly once; a caller whose
// context expires first simply abandons the waiter (the shared pass still
// completes for the other requests in it).
type waiter struct {
	inputs [][]uint64
	enq    time.Time

	// deadline is the request's effective deadline (local timeout
	// intersected with any propagated X-Hyperap-Deadline). A waiter whose
	// deadline has already passed when its batch reaches the runner is
	// shed before the pass executes: the caller stopped listening, so
	// computing its slice would only burn PE time.
	deadline time.Time

	// Phase timestamps for the request span: when the batch left the
	// coalescer, when its pass began executing (worker-pool slot
	// acquired) and how long the RunBatch call took. Written by the
	// runner before done closes; read by the handler after.
	dispatched time.Time
	passStart  time.Time
	runDur     time.Duration

	done   chan struct{}
	outs   [][]uint64
	report *Report
	err    error
}

// coalescer queues run requests against one compiled program and flushes
// them through a single RunBatch pass when the pending slots fill a
// 256-slot PE shard (Config.FlushSlots) or the coalescing window elapses,
// whichever comes first. Requests keep their submission order inside the
// pass, so each waiter's outputs are a contiguous slice of the pass
// outputs.
type coalescer struct {
	s *Server
	p *program

	mu    sync.Mutex
	pend  []*waiter
	slots int
	timer *time.Timer
}

func newCoalescer(s *Server, p *program) *coalescer {
	return &coalescer{s: s, p: p}
}

// submit parks a waiter for the next pass. With immediate set (the
// request opted out of coalescing) everything pending flushes at once.
// Admission control (queue depth, draining) already happened in the
// handler.
func (c *coalescer) submit(w *waiter, immediate bool) {
	c.mu.Lock()
	c.pend = append(c.pend, w)
	c.slots += len(w.inputs)
	if immediate || c.slots >= c.s.cfg.FlushSlots {
		batch, slots := c.takeLocked()
		c.mu.Unlock()
		c.dispatch(batch, slots)
		return
	}
	if c.timer == nil {
		c.timer = time.AfterFunc(c.s.cfg.CoalesceWindow, c.flushNow)
	}
	c.mu.Unlock()
}

// flushNow flushes whatever is pending (window expiry, or drain).
func (c *coalescer) flushNow() {
	c.mu.Lock()
	batch, slots := c.takeLocked()
	c.mu.Unlock()
	if len(batch) > 0 {
		c.dispatch(batch, slots)
	}
}

// abandon removes a still-queued waiter from the pending batch, returning
// whether the waiter was found (and therefore its queue slots are now the
// caller's to release). A waiter whose batch already dispatched is not
// found: the running pass owns its slots and releases them on completion.
func (c *coalescer) abandon(w *waiter) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, pw := range c.pend {
		if pw == w {
			c.pend = append(c.pend[:i], c.pend[i+1:]...)
			c.slots -= len(w.inputs)
			if len(c.pend) == 0 && c.timer != nil {
				c.timer.Stop()
				c.timer = nil
			}
			return true
		}
	}
	return false
}

// takeLocked detaches the pending batch and disarms the window timer.
func (c *coalescer) takeLocked() ([]*waiter, int) {
	batch, slots := c.pend, c.slots
	c.pend, c.slots = nil, 0
	if c.timer != nil {
		c.timer.Stop()
		c.timer = nil
	}
	return batch, slots
}

// dispatch hands a detached batch to the server's bounded worker pool.
// The goroutine is tracked by the in-flight waitgroup so drain can wait
// for it; queue slots are released only after the pass completes, so the
// backpressure limit covers queued plus running work.
func (c *coalescer) dispatch(batch []*waiter, slots int) {
	now := time.Now()
	for _, w := range batch {
		w.dispatched = now
	}
	c.s.inflight.Add(1)
	go func() {
		defer c.s.inflight.Done()
		c.s.sem <- struct{}{}
		defer func() { <-c.s.sem }()
		defer c.s.releaseSlots(slots)
		c.runPass(batch, slots)
	}()
}

// runPass executes one coalesced pass through RunBatch and fans the
// outputs back to every waiter.
func (c *coalescer) runPass(batch []*waiter, slots int) {
	met := c.s.met
	start := time.Now()
	// Shed waiters whose deadline already passed: their caller has (or is
	// about to) stop listening, so executing their slice would waste PE
	// time the live requests in this pass could use. The shed waiter's
	// handler observes ctx.Done() and writes its own 504; closing done
	// with a deadline error keeps the accounting correct either way.
	live := batch[:0]
	for _, w := range batch {
		if !w.deadline.IsZero() && !start.Before(w.deadline) {
			slots -= len(w.inputs)
			met.deadlineShed.Add(1)
			w.err = context.DeadlineExceeded
			close(w.done)
			continue
		}
		live = append(live, w)
	}
	batch = live
	if len(batch) == 0 {
		return
	}
	for _, w := range batch {
		w.passStart = start
		wait := start.Sub(w.enq).Nanoseconds()
		met.queueWaitNS.Add(wait)
		met.queueWaitHist.Observe(wait)
	}
	inputs := make([][]uint64, 0, slots)
	for _, w := range batch {
		inputs = append(inputs, w.inputs...)
	}
	// The pass serves several callers, so it runs under the server's own
	// deadline rather than any single request's context: a waiter whose
	// context expires abandons its slice while the pass completes for the
	// rest.
	ctx, cancel := context.WithTimeout(context.Background(), c.s.cfg.RequestTimeout)
	defer cancel()
	opts, finishPass := c.s.passOpts(c.p)
	outs, chip, err := c.p.ex.RunBatchContext(ctx, inputs, opts...)
	runDur := time.Since(start)
	met.runNS.Add(runDur.Nanoseconds())
	met.runHist.Observe(runDur.Nanoseconds())
	for _, w := range batch {
		w.runDur = runDur
	}
	if err != nil {
		finishPass(nil)
		for _, w := range batch {
			w.err = err
			close(w.done)
		}
		return
	}
	finishPass(chip)
	r := chip.Report()
	report := passReport(chip, r, slots, len(batch))
	met.searches.Add(r.Searches)
	met.writes.Add(r.Writes)
	met.energyJ.Add(r.Energy.TotalJ())
	met.recordFlush(len(batch), slots)
	c.s.observeHealth(r)
	off := 0
	for _, w := range batch {
		w.outs = outs[off : off+len(w.inputs)]
		w.report = report
		off += len(w.inputs)
		close(w.done)
	}
}
