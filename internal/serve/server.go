package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hyperap/internal/compile"
	"hyperap/internal/tech"
)

// Config tunes the server. The zero value means "use the default" for
// every field.
type Config struct {
	// MaxPrograms is the LRU program-cache capacity (default 64).
	MaxPrograms int
	// CoalesceWindow is how long a run request may wait for co-batched
	// requests before its pass flushes anyway (default 1ms).
	CoalesceWindow time.Duration
	// FlushSlots flushes a pending pass as soon as it reaches this many
	// slots (default tech.PERows, one full PE shard).
	FlushSlots int
	// MaxQueueSlots bounds the slots admitted but not yet completed;
	// beyond it new runs are rejected with 429 (default 16×tech.PERows).
	MaxQueueSlots int
	// Workers bounds the RunBatch passes executing concurrently
	// (default GOMAXPROCS).
	Workers int
	// RequestTimeout is the per-request deadline; a run that cannot
	// complete in time returns 504 (default 60s).
	RequestTimeout time.Duration
	// Parallelism is passed to RunBatch as WithParallelism for the
	// intra-pass shard pool (default 0 = GOMAXPROCS).
	Parallelism int
	// MaxBodyBytes bounds a request body (default 8 MiB).
	MaxBodyBytes int64
}

func (c Config) withDefaults() Config {
	if c.MaxPrograms <= 0 {
		c.MaxPrograms = 64
	}
	if c.CoalesceWindow <= 0 {
		c.CoalesceWindow = time.Millisecond
	}
	if c.FlushSlots <= 0 {
		c.FlushSlots = tech.PERows
	}
	if c.MaxQueueSlots <= 0 {
		c.MaxQueueSlots = 16 * tech.PERows
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	return c
}

// Server is the hyperap-serve HTTP handler: an LRU compiled-program
// cache in front of per-program micro-batching coalescers, with bounded
// concurrency and queue-depth backpressure. Create with New, mount as an
// http.Handler, and call Drain before process exit.
type Server struct {
	cfg     Config
	cache   *programCache
	met     *metrics
	runOpts []compile.RunOption

	sem      chan struct{} // worker-pool slots for RunBatch passes
	inflight sync.WaitGroup
	queued   atomic.Int64
	draining atomic.Bool

	mux *http.ServeMux
}

// New builds a server with the given configuration.
func New(cfg Config) *Server {
	s := &Server{
		cfg:     cfg.withDefaults(),
		met:     newMetrics(),
		runOpts: []compile.RunOption{},
	}
	s.cache = newProgramCache(s.cfg.MaxPrograms)
	s.sem = make(chan struct{}, s.cfg.Workers)
	if s.cfg.Parallelism > 0 {
		s.runOpts = append(s.runOpts, compile.WithParallelism(s.cfg.Parallelism))
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/compile", s.handleCompile)
	s.mux.HandleFunc("/v1/run", s.handleRun)
	s.mux.HandleFunc("/v1/programs", s.handlePrograms)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Drain stops admitting new runs, flushes every coalescer and waits for
// all admitted work to complete (or the context to expire). healthz
// reports "draining" from the first call on.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	for {
		// A request admitted just before draining flipped may still be
		// parked behind a window timer; keep flushing until the queue is
		// empty (slots are released only when their pass completes).
		s.cache.each(func(p *program) {
			if p.co != nil {
				p.co.flushNow()
			}
		})
		if s.queued.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("serve: drain: %d slots still in flight: %w", s.queued.Load(), ctx.Err())
		case <-time.After(time.Millisecond):
		}
	}
}

// admitSlots reserves queue capacity for a run request.
func (s *Server) admitSlots(n int) error {
	if s.draining.Load() {
		s.met.rejectedDraining.Add(1)
		return errDraining
	}
	if s.queued.Add(int64(n)) > int64(s.cfg.MaxQueueSlots) {
		s.queued.Add(int64(-n))
		s.met.rejectedQueueFull.Add(1)
		return errQueueFull
	}
	s.met.queueDepthSlots.Set(s.queued.Load())
	return nil
}

func (s *Server) releaseSlots(n int) {
	s.queued.Add(int64(-n))
	s.met.queueDepthSlots.Set(s.queued.Load())
}

var (
	errQueueFull = errors.New("serve: run queue is full")
	errDraining  = errors.New("serve: server is draining")
)

// compileProgram resolves (source, options) to a resident program,
// compiling at most once per fingerprint. cached reports whether the
// compile pipeline was skipped.
func (s *Server) compileProgram(ctx context.Context, src string, opts Options) (*program, bool, error) {
	tgt, err := opts.Target()
	if err != nil {
		return nil, false, err
	}
	handle := compile.Fingerprint(src, tgt)
	p, created, evicted := s.cache.getOrCreate(handle, src, tgt, s)
	if evicted > 0 {
		s.met.cacheEvictions.Add(int64(evicted))
	}
	if created {
		s.met.cacheMisses.Add(1)
		ex, err := compile.CompileSource(src, tgt)
		s.cache.finish(p, ex, err)
		return p, false, err
	}
	s.met.cacheHits.Add(1)
	select {
	case <-p.ready:
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
	return p, p.err == nil, p.err
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	var req CompileRequest
	if !s.decode(w, r, "compile", &req, http.MethodPost) {
		return
	}
	if req.Source == "" {
		s.writeError(w, "compile", http.StatusBadRequest, errors.New("source is required"))
		return
	}
	p, cached, err := s.compileProgram(ctx, req.Source, req.Options)
	if err != nil {
		s.writeError(w, "compile", compileStatus(err), err)
		return
	}
	s.writeJSON(w, "compile", http.StatusOK, CompileResponse{
		Program:   p.handle,
		Cached:    cached,
		Inputs:    componentNames(p.ex.Inputs),
		Outputs:   componentNames(p.ex.Outputs),
		Stats:     statsJSON(p.ex.Stats),
		LatencyNS: p.ex.LatencyNS(),
	})
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	var req RunRequest
	if !s.decode(w, r, "run", &req, http.MethodPost) {
		return
	}
	var p *program
	switch {
	case req.Program != "" && req.Source != "":
		s.writeError(w, "run", http.StatusBadRequest, errors.New("set either program or source, not both"))
		return
	case req.Program != "":
		var ok bool
		p, ok = s.cache.lookup(req.Program)
		if !ok {
			s.writeError(w, "run", http.StatusNotFound,
				fmt.Errorf("unknown program %s (it may have been evicted; POST /v1/compile again)", req.Program))
			return
		}
		select {
		case <-p.ready:
		case <-ctx.Done():
			s.writeError(w, "run", http.StatusGatewayTimeout, ctx.Err())
			return
		}
		if p.err != nil {
			s.writeError(w, "run", http.StatusBadRequest, p.err)
			return
		}
	case req.Source != "":
		var err error
		p, _, err = s.compileProgram(ctx, req.Source, req.Options)
		if err != nil {
			s.writeError(w, "run", compileStatus(err), err)
			return
		}
	default:
		s.writeError(w, "run", http.StatusBadRequest, errors.New("program or source is required"))
		return
	}
	if len(req.Inputs) == 0 {
		s.writeError(w, "run", http.StatusBadRequest, errors.New("inputs must hold at least one slot"))
		return
	}
	for i, row := range req.Inputs {
		if len(row) != len(p.ex.Inputs) {
			s.writeError(w, "run", http.StatusBadRequest,
				fmt.Errorf("slot %d has %d values; program takes %d (%v)",
					i, len(row), len(p.ex.Inputs), componentNames(p.ex.Inputs)))
			return
		}
	}
	if err := s.admitSlots(len(req.Inputs)); err != nil {
		s.writeError(w, "run", rejectStatus(err), err)
		return
	}
	wtr := &waiter{inputs: req.Inputs, enq: time.Now(), done: make(chan struct{})}
	p.co.submit(wtr, req.NoCoalesce)
	select {
	case <-wtr.done:
	case <-ctx.Done():
		// The pass still completes for the other coalesced requests; this
		// caller just stops waiting for its slice.
		s.writeError(w, "run", http.StatusGatewayTimeout, ctx.Err())
		return
	}
	if wtr.err != nil {
		s.writeError(w, "run", http.StatusInternalServerError, wtr.err)
		return
	}
	s.writeJSON(w, "run", http.StatusOK, RunResponse{
		Program:     p.handle,
		OutputNames: componentNames(p.ex.Outputs),
		Outputs:     wtr.outs,
		Report:      wtr.report,
	})
}

func (s *Server) handlePrograms(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, "programs", http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	infos := []ProgramInfo{}
	for _, p := range s.cache.snapshot() {
		select {
		case <-p.ready:
		default:
			continue // still compiling
		}
		if p.err != nil {
			continue
		}
		infos = append(infos, ProgramInfo{
			Program:     p.handle,
			Inputs:      componentNames(p.ex.Inputs),
			Outputs:     componentNames(p.ex.Outputs),
			Stats:       statsJSON(p.ex.Stats),
			SourceBytes: len(p.source),
			Hits:        p.hits.Load(),
		})
	}
	s.writeJSON(w, "programs", http.StatusOK, map[string]any{"programs": infos})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeJSON(w, "healthz", http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	s.writeJSON(w, "healthz", http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.met.recordResponse("metrics", http.StatusOK)
	io.WriteString(w, s.met.root.String())
	io.WriteString(w, "\n")
}

// decode parses a JSON request body, enforcing the method and body limit.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, endpoint string, into any, method string) bool {
	if r.Method != method {
		s.writeError(w, endpoint, http.StatusMethodNotAllowed, fmt.Errorf("use %s", method))
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		s.writeError(w, endpoint, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func (s *Server) writeJSON(w http.ResponseWriter, endpoint string, status int, v any) {
	s.met.recordResponse(endpoint, status)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, endpoint string, status int, err error) {
	s.writeJSON(w, endpoint, status, ErrorResponse{Error: err.Error()})
}

// compileStatus maps a compileProgram error to an HTTP status: context
// expiry is a timeout, anything else is a bad program or bad options.
func compileStatus(err error) int {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return http.StatusGatewayTimeout
	}
	return http.StatusBadRequest
}

// rejectStatus maps an admission error: queue overflow is 429 (retry
// later), draining is 503 (go elsewhere).
func rejectStatus(err error) int {
	if errors.Is(err, errQueueFull) {
		return http.StatusTooManyRequests
	}
	return http.StatusServiceUnavailable
}
