package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hyperap/internal/arch"
	"hyperap/internal/buildinfo"
	"hyperap/internal/compile"
	"hyperap/internal/obs"
	"hyperap/internal/tcam"
	"hyperap/internal/tech"
)

// Config tunes the server. The zero value means "use the default" for
// every field.
type Config struct {
	// MaxPrograms is the LRU program-cache capacity (default 64).
	MaxPrograms int
	// CoalesceWindow is how long a run request may wait for co-batched
	// requests before its pass flushes anyway (default 1ms).
	CoalesceWindow time.Duration
	// FlushSlots flushes a pending pass as soon as it reaches this many
	// slots (default tech.PERows, one full PE shard).
	FlushSlots int
	// MaxQueueSlots bounds the slots admitted but not yet completed;
	// beyond it new runs are rejected with 429 (default 16×tech.PERows).
	MaxQueueSlots int
	// Workers bounds the RunBatch passes executing concurrently
	// (default GOMAXPROCS).
	Workers int
	// RequestTimeout is the per-request deadline; a run that cannot
	// complete in time returns 504 (default 60s).
	RequestTimeout time.Duration
	// DeadlineGrace is added to a propagated X-Hyperap-Deadline before it
	// tightens the local request deadline, absorbing clock skew between
	// the coordinator and this worker (default 0: same-host clusters and
	// NTP-disciplined fleets need none). The local RequestTimeout still
	// applies regardless.
	DeadlineGrace time.Duration
	// Parallelism is passed to RunBatch as WithParallelism for the
	// intra-pass shard pool (default 0 = GOMAXPROCS).
	Parallelism int
	// MaxBodyBytes bounds a request body (default 8 MiB).
	MaxBodyBytes int64
	// Faults activates the RRAM fault model on every chip the server
	// builds (see tcam.FaultConfig). The zero value keeps the simulator
	// fault-free.
	Faults tcam.FaultConfig
	// SparePEs provisions spare subarrays per pass chip; a shard whose
	// PE dies mid-pass is replayed on a spare instead of failing the
	// whole batch.
	SparePEs int
	// StateDir, when set, makes chip state durable (internal/store):
	// compiled programs are written through to a content-addressed
	// on-disk store and reloaded on cache misses, and lifetime chip
	// state (wear, stuck cells, burned spares, remaps, PE health) is
	// checkpointed and restored across restarts. Empty disables
	// persistence (the default, and the pre-persistence behavior).
	StateDir string
	// SnapshotInterval is the period between chip-state checkpoints
	// when StateDir is set (default 30s). Negative disables periodic
	// snapshots; Drain still writes a final one.
	SnapshotInterval time.Duration
	// Peers are sibling worker base URLs in the same cluster. On a
	// program-cache miss that also misses the local disk store, the
	// server asks each peer for the fingerprint's self-verifying store
	// record before running the compile pipeline, so a fingerprint-routed
	// cluster compiles each distinct program once, ever. Empty keeps the
	// standalone behavior.
	Peers []string
	// PeerFetchTimeout bounds one peer store round trip (default 2s).
	PeerFetchTimeout time.Duration
	// PeerClient overrides the HTTP client used for peer fetches
	// (tests; default: a small dedicated client).
	PeerClient *http.Client
	// Logger receives one structured line per request (request id,
	// status, per-phase durations) and drain progress. Default: discard.
	Logger *slog.Logger
	// TraceSampleRate samples requests without an incoming Traceparent
	// into the span store ([0,1]; default 0 = only explicit ?trace=1 or
	// upstream-sampled requests record spans, keeping the hot path free
	// of tracing cost).
	TraceSampleRate float64
	// TraceBufferSpans bounds the in-memory span ring served at
	// GET /v1/trace/{trace-id} (default obs.DefaultSpanStoreCap).
	TraceBufferSpans int
	// ProcessName labels this node's track in stitched cluster timelines
	// (default "hyperap-serve").
	ProcessName string
}

func (c Config) withDefaults() Config {
	if c.MaxPrograms <= 0 {
		c.MaxPrograms = 64
	}
	if c.CoalesceWindow <= 0 {
		c.CoalesceWindow = time.Millisecond
	}
	if c.FlushSlots <= 0 {
		c.FlushSlots = tech.PERows
	}
	if c.MaxQueueSlots <= 0 {
		c.MaxQueueSlots = 16 * tech.PERows
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.StateDir != "" && c.SnapshotInterval == 0 {
		c.SnapshotInterval = 30 * time.Second
	}
	if c.PeerFetchTimeout <= 0 {
		c.PeerFetchTimeout = 2 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.ProcessName == "" {
		c.ProcessName = "hyperap-serve"
	}
	return c
}

// Server is the hyperap-serve HTTP handler: an LRU compiled-program
// cache in front of per-program micro-batching coalescers, with bounded
// concurrency and queue-depth backpressure. Create with New, mount as an
// http.Handler, and call Drain before process exit.
type Server struct {
	cfg     Config
	cache   *programCache
	met     *metrics
	log     *slog.Logger
	runOpts []compile.RunOption

	// spans is the bounded ring of recorded trace spans this process
	// contributes to stitched cluster timelines (GET /v1/trace/{id}).
	spans *obs.SpanStore

	// persist is non-nil when Config.StateDir named a usable directory:
	// the program store, the virtual-PE wear ledger and the checkpoint
	// loop (persist.go).
	persist *persistence

	// peerClient fetches program store records from cluster siblings
	// (peers.go).
	peerClient *http.Client

	sem      chan struct{} // worker-pool slots for RunBatch passes
	inflight sync.WaitGroup
	queued   atomic.Int64
	draining atomic.Bool

	// reqStarts tracks admitted run requests still in flight, so drain
	// progress can report what the 503 window is actually waiting on
	// (slot count alone says nothing about how stale the work is).
	reqMu     sync.Mutex
	reqSeq    uint64
	reqStarts map[uint64]time.Time

	// lastHealth is the PE health summary of the most recent completed
	// pass; /readyz serves it so a chip running degraded (spare rows or
	// spare PEs in use) is visible to load balancers before it fails.
	healthMu   sync.Mutex
	lastHealth *arch.HealthSummary

	mux *http.ServeMux
}

// New builds a server with the given configuration.
func New(cfg Config) *Server {
	s := &Server{
		cfg:       cfg.withDefaults(),
		met:       newMetrics(),
		runOpts:   []compile.RunOption{},
		reqStarts: map[uint64]time.Time{},
	}
	s.log = s.cfg.Logger
	s.spans = obs.NewSpanStore(s.cfg.ProcessName, s.cfg.TraceBufferSpans)
	s.cache = newProgramCache(s.cfg.MaxPrograms)
	s.sem = make(chan struct{}, s.cfg.Workers)
	if s.cfg.Parallelism > 0 {
		s.runOpts = append(s.runOpts, compile.WithParallelism(s.cfg.Parallelism))
	}
	if s.cfg.Faults.Enabled() {
		s.runOpts = append(s.runOpts, compile.WithFaults(s.cfg.Faults))
	}
	if s.cfg.SparePEs > 0 {
		s.runOpts = append(s.runOpts, compile.WithSparePEs(s.cfg.SparePEs))
	}
	if s.cfg.StateDir != "" {
		pst, err := newPersistence(s.cfg.StateDir, s.cfg.Faults, s.met, s.log)
		if err != nil {
			// A server that can run but not persist is better than one
			// that refuses to start: log loudly and serve memory-only.
			s.log.Error("state dir unusable; persistence disabled", "dir", s.cfg.StateDir, "err", err)
		} else {
			s.persist = pst
			if h := pst.healthSummary(); h.Total > 0 {
				// A node that died degraded comes back degraded: /readyz
				// reports the restored ledger's health before any pass runs.
				s.lastHealth = &h
				s.met.healthyPEFraction.Set(h.HealthyFraction())
			}
			if s.cfg.SnapshotInterval > 0 {
				pst.startLoop(s.cfg.SnapshotInterval)
			}
		}
	}
	s.peerClient = peerClientFor(s.cfg)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/compile", s.handleCompile)
	s.mux.HandleFunc("/v1/run", s.handleRun)
	s.mux.HandleFunc("/v1/programs", s.handlePrograms)
	s.mux.HandleFunc("/v1/store/program", s.handleStoreProgram)
	s.mux.HandleFunc("/v1/trace/", s.handleTrace)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/metrics/prometheus", s.handleMetricsProm)
	s.mux.HandleFunc("/version", s.handleVersion)
	return s
}

// handleVersion reports the build that is running — what rolling
// cluster upgrades and bench artifacts record.
func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	s.met.recordResponse("version", http.StatusOK)
	w.Header().Set("Content-Type", "application/json")
	w.Write(buildinfo.Get().JSON())
}

// ServeHTTP wraps every endpoint in a request span: a request id (taken
// from X-Request-Id or generated), the end-to-end latency histogram, and
// one structured log line carrying the id, status and per-phase
// durations recorded by the handler. When the request carries a sampled
// Traceparent (or sampling turns on locally) the span and its phases are
// exported into the span store under that trace, parented on the
// caller's span — the worker half of the cluster's stitched timeline.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	id := r.Header.Get("X-Request-Id")
	if id == "" {
		id = obs.NewRequestID()
	}
	span := obs.StartSpan(id)
	tc, parent := s.traceContext(r)
	w.Header().Set("X-Request-Id", id)
	w.Header().Set("Traceparent", tc.Traceparent())
	ctx := obs.WithSpan(r.Context(), span)
	ctx = obs.WithTraceContext(ctx, tc)
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	s.mux.ServeHTTP(sw, r.WithContext(ctx))
	total := time.Since(span.Start)
	s.met.requestHist.Observe(total.Nanoseconds())
	if tc.Sampled {
		s.spans.Add(span.Export(tc, parent, r.Method+" "+r.URL.Path)...)
	}
	attrs := append([]slog.Attr{
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", sw.status),
		slog.String("trace_id", tc.TraceID),
	}, span.Attrs()...)
	s.log.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
}

// traceContext resolves the request's trace identity: an incoming
// Traceparent is honored (its span id becomes the exported parent and
// its sampled flag decides recording — the coordinator already made the
// sampling decision); otherwise a fresh trace starts here, sampled when
// the caller asked for a trace explicitly (?trace=1) or the configured
// sample rate fires. With sampling off and no header, the only cost on
// the hot path is generating ids nothing will record.
func (s *Server) traceContext(r *http.Request) (tc obs.TraceContext, parent string) {
	if up, ok := obs.ParseTraceparent(r.Header.Get("Traceparent")); ok {
		return up.Child(), up.SpanID
	}
	sampled := r.URL.Query().Get("trace") == "1" ||
		(s.cfg.TraceSampleRate > 0 && rand.Float64() < s.cfg.TraceSampleRate)
	return obs.NewTraceContext(sampled), ""
}

// handleTrace serves one trace's spans from this process's span store:
// GET /v1/trace/{trace-id}. The coordinator calls this on every worker
// to stitch the cluster-wide timeline; it is also directly curl-able.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, "trace", http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/trace/")
	if id == "" || strings.Contains(id, "/") {
		s.writeError(w, "trace", http.StatusBadRequest, errors.New("GET /v1/trace/{trace-id}"))
		return
	}
	s.writeJSON(w, "trace", http.StatusOK, s.spans.Dump(id))
}

// handleMetricsProm serves the Prometheus text exposition
// (GET /metrics/prometheus); /metrics keeps the expvar JSON form.
func (s *Server) handleMetricsProm(w http.ResponseWriter, r *http.Request) {
	s.met.recordResponse("metrics_prometheus", http.StatusOK)
	s.met.prom.ServeHTTP(w, r)
}

// statusWriter captures the response status for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// requestCtx derives a handler context from the local request timeout
// intersected with the propagated X-Hyperap-Deadline (plus the
// configured grace): when the coordinator's client has a tighter budget
// than this worker's default, work doomed to be discarded upstream is
// cancelled — and shed from the coalescer — as early as possible.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	deadline := time.Now().Add(s.cfg.RequestTimeout)
	if hd, ok := ParseDeadline(r.Header); ok {
		s.met.deadlinePropagated.Add(1)
		if hd = hd.Add(s.cfg.DeadlineGrace); hd.Before(deadline) {
			deadline = hd
		}
	}
	return context.WithDeadline(r.Context(), deadline)
}

// trackRequest registers an admitted run request for drain reporting;
// the returned func unregisters it.
func (s *Server) trackRequest() func() {
	s.reqMu.Lock()
	id := s.reqSeq
	s.reqSeq++
	s.reqStarts[id] = time.Now()
	s.reqMu.Unlock()
	return func() {
		s.reqMu.Lock()
		delete(s.reqStarts, id)
		s.reqMu.Unlock()
	}
}

// RequestLatencyQuantile returns the q-quantile of the end-to-end
// request latency histogram, in nanoseconds (0 before any request has
// completed). The bench perf harness reads p50/p95/p99 from here after
// driving a workload through the handler.
func (s *Server) RequestLatencyQuantile(q float64) float64 {
	return s.met.requestHist.Quantile(q)
}

// DrainStats reports what a draining (or loaded) server is waiting on:
// admitted-but-uncompleted slots and the age of the oldest in-flight run
// request.
func (s *Server) DrainStats() (queuedSlots int64, oldest time.Duration) {
	queuedSlots = s.queued.Load()
	s.reqMu.Lock()
	for _, t := range s.reqStarts {
		if a := time.Since(t); a > oldest {
			oldest = a
		}
	}
	s.reqMu.Unlock()
	return queuedSlots, oldest
}

// Drain stops admitting new runs, flushes every coalescer and waits for
// all admitted work to complete (or the context to expire). healthz
// reports "draining" from the first call on; progress lines name the
// queued-slot count and the oldest in-flight request's age so operators
// can see what the 503 window is waiting on.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	logStats := func(msg string) {
		slots, oldest := s.DrainStats()
		s.log.LogAttrs(ctx, slog.LevelInfo, msg,
			slog.Int64("queued_slots", slots),
			slog.Duration("oldest_request_age", oldest))
	}
	logStats("draining")
	lastLog := time.Now()
	for {
		// A request admitted just before draining flipped may still be
		// parked behind a window timer; keep flushing until the queue is
		// empty (slots are released only when their pass completes).
		s.cache.each(func(p *program) {
			if p.co != nil {
				p.co.flushNow()
			}
		})
		if s.queued.Load() == 0 {
			return s.finalSnapshot(ctx)
		}
		if time.Since(lastLog) >= time.Second {
			logStats("draining")
			lastLog = time.Now()
		}
		select {
		case <-ctx.Done():
			slots, oldest := s.DrainStats()
			return fmt.Errorf("serve: drain: %d slots still in flight (oldest request %v): %w",
				slots, oldest.Round(time.Millisecond), ctx.Err())
		case <-time.After(time.Millisecond):
		}
	}
}

// finalSnapshot ends the checkpoint loop and writes the drain-time
// checkpoint — the one SIGTERM lands on, taken after the queue emptied
// so every completed pass's wear is in it.
func (s *Server) finalSnapshot(ctx context.Context) error {
	if s.persist == nil {
		return nil
	}
	s.persist.stopLoop()
	if err := s.persist.snapshot(ctx); err != nil {
		return fmt.Errorf("serve: drain-time chip snapshot: %w", err)
	}
	s.log.Info("chip state checkpointed", "dir", s.cfg.StateDir)
	return nil
}

// passOpts assembles the run options for one pass over program p and
// returns the hook to call with the completed pass chip (nil when the
// pass failed). With persistence active and a canonical-geometry
// target, the pass leases virtual PE slots from the wear ledger: the
// chip is built full-height (fixed physical geometry regardless of
// batch size), pre-aged with the slots' accumulated state, and its
// exported state folds back on finish. Exotic targets still run — they
// just bypass the ledger.
func (s *Server) passOpts(p *program, extra ...compile.RunOption) ([]compile.RunOption, func(*arch.Chip)) {
	opts := append(append([]compile.RunOption{}, s.runOpts...), extra...)
	if s.persist == nil || !s.persist.matches(p.ex.Target) {
		return opts, func(*arch.Chip) {}
	}
	var lease *passLease
	opts = append(opts, compile.WithFullRows(), compile.WithChipInit(func(chip *arch.Chip) error {
		lease = s.persist.lease(chip.NumPEs())
		return lease.init(chip)
	}))
	return opts, func(chip *arch.Chip) {
		if lease != nil {
			lease.finish(chip)
		}
	}
}

// admitSlots reserves queue capacity for a run request.
func (s *Server) admitSlots(n int) error {
	if s.draining.Load() {
		s.met.rejectedDraining.Add(1)
		return errDraining
	}
	if s.queued.Add(int64(n)) > int64(s.cfg.MaxQueueSlots) {
		s.queued.Add(int64(-n))
		s.met.rejectedQueueFull.Add(1)
		return errQueueFull
	}
	s.met.queueDepthSlots.Set(s.queued.Load())
	return nil
}

func (s *Server) releaseSlots(n int) {
	s.queued.Add(int64(-n))
	s.met.queueDepthSlots.Set(s.queued.Load())
}

var (
	errQueueFull = errors.New("serve: run queue is full")
	errDraining  = errors.New("serve: server is draining")
)

// compileProgram resolves (source, options) to a resident program,
// compiling at most once per fingerprint — and, with persistence, at
// most once per fingerprint *ever*: a cache miss checks the on-disk
// program store before running the pipeline, and a fresh compilation is
// written through asynchronously. cached reports whether the compile
// pipeline was skipped (resident entry or store hit).
func (s *Server) compileProgram(ctx context.Context, src string, opts Options) (*program, bool, error) {
	tgt, err := opts.Target()
	if err != nil {
		return nil, false, err
	}
	handle := compile.Fingerprint(src, tgt)
	p, created, evicted := s.cache.getOrCreate(handle, src, tgt, s)
	for _, ev := range evicted {
		ev.releaseStoreWrite()
	}
	if len(evicted) > 0 {
		s.met.cacheEvictions.Add(int64(len(evicted)))
	}
	if created {
		s.met.cacheMisses.Add(1)
		if s.persist != nil {
			if ex, ok := s.persist.loadProgram(handle, src, tgt); ok {
				s.cache.finish(p, ex, nil)
				return p, true, nil
			}
		}
		if len(s.cfg.Peers) > 0 {
			// Miss on memory and disk: ask cluster siblings for the
			// record before compiling. A verified peer record installs
			// like a compile (including the local write-through), so a
			// cluster compiles each fingerprint once globally.
			if ex, ok := s.fetchFromPeers(ctx, handle, src, tgt); ok {
				s.cache.finish(p, ex, nil)
				if s.persist != nil {
					s.persist.writeThrough(p)
				}
				return p, true, nil
			}
		}
		s.met.compiles.Add(1)
		ex, err := compile.CompileSource(src, tgt)
		s.cache.finish(p, ex, err)
		if err == nil && s.persist != nil {
			s.persist.writeThrough(p)
		}
		return p, false, err
	}
	s.met.cacheHits.Add(1)
	select {
	case <-p.ready:
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
	return p, p.err == nil, p.err
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	var req CompileRequest
	if !s.decode(w, r, "compile", &req, http.MethodPost) {
		return
	}
	if req.Source == "" {
		s.writeError(w, "compile", http.StatusBadRequest, errors.New("source is required"))
		return
	}
	stop := obs.SpanFrom(ctx).Time("compile")
	p, cached, err := s.compileProgram(ctx, req.Source, req.Options)
	stop()
	if err != nil {
		s.writeError(w, "compile", compileStatus(err), err)
		return
	}
	s.writeJSON(w, "compile", http.StatusOK, CompileResponse{
		Program:   p.handle,
		Cached:    cached,
		Inputs:    componentNames(p.ex.Inputs),
		Outputs:   componentNames(p.ex.Outputs),
		Stats:     statsJSON(p.ex.Stats),
		LatencyNS: p.ex.LatencyNS(),
	})
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	span := obs.SpanFrom(ctx)
	var req RunRequest
	if !s.decode(w, r, "run", &req, http.MethodPost) {
		return
	}
	var p *program
	switch {
	case req.Program != "" && req.Source != "":
		s.writeError(w, "run", http.StatusBadRequest, errors.New("set either program or source, not both"))
		return
	case req.Program != "":
		var ok bool
		p, ok = s.cache.lookup(req.Program)
		if !ok {
			s.writeError(w, "run", http.StatusNotFound,
				fmt.Errorf("unknown program %s (it may have been evicted; POST /v1/compile again)", req.Program))
			return
		}
		// A by-handle run is a cache hit too; the hit/miss ratio was
		// blind to this (the most common) path.
		s.met.cacheHits.Add(1)
		stop := span.Time("compile")
		select {
		case <-p.ready:
		case <-ctx.Done():
			stop()
			s.writeError(w, "run", http.StatusGatewayTimeout, ctx.Err())
			return
		}
		stop()
		if p.err != nil {
			s.writeError(w, "run", http.StatusBadRequest, p.err)
			return
		}
	case req.Source != "":
		stop := span.Time("compile")
		var err error
		p, _, err = s.compileProgram(ctx, req.Source, req.Options)
		stop()
		if err != nil {
			s.writeError(w, "run", compileStatus(err), err)
			return
		}
	default:
		s.writeError(w, "run", http.StatusBadRequest, errors.New("program or source is required"))
		return
	}
	if len(req.Inputs) == 0 {
		s.writeError(w, "run", http.StatusBadRequest, errors.New("inputs must hold at least one slot"))
		return
	}
	for i, row := range req.Inputs {
		if len(row) != len(p.ex.Inputs) {
			s.writeError(w, "run", http.StatusBadRequest,
				fmt.Errorf("slot %d has %d values; program takes %d (%v)",
					i, len(row), len(p.ex.Inputs), componentNames(p.ex.Inputs)))
			return
		}
	}
	if err := s.admitSlots(len(req.Inputs)); err != nil {
		// Both rejection causes are transient (queue drains in
		// milliseconds, drain hands off to a replacement): tell clients
		// when to come back, with jitter so a cluster of retrying
		// coordinators does not synchronize against a recovering node.
		JitteredRetryAfter(w.Header())
		s.writeError(w, "run", rejectStatus(err), err)
		return
	}
	untrack := s.trackRequest()
	defer untrack()
	if r.URL.Query().Get("trace") == "1" {
		// Debug knob: execute this request in its own traced pass and
		// return the Chrome/Perfetto trace alongside the outputs.
		s.runTraced(ctx, w, span, p, req)
		return
	}
	wtr := &waiter{inputs: req.Inputs, enq: time.Now(), done: make(chan struct{})}
	wtr.deadline, _ = ctx.Deadline()
	p.co.submit(wtr, req.NoCoalesce)
	select {
	case <-wtr.done:
	case <-ctx.Done():
		// The caller is gone (client disconnect) or out of budget. If the
		// waiter is still parked in the coalescer, pull it out and free its
		// slot budget right now — its work would be discarded anyway. If
		// its pass already dispatched, the pass completes for the other
		// coalesced requests and releases the slots itself.
		if p.co.abandon(wtr) {
			s.releaseSlots(len(req.Inputs))
			s.met.canceledInQueue.Add(1)
		}
		s.writeError(w, "run", http.StatusGatewayTimeout, ctx.Err())
		return
	}
	if wtr.err != nil {
		s.writeError(w, "run", s.runStatus(w, wtr.err), wtr.err)
		return
	}
	// Span phases from the pass the slots rode in: window wait in the
	// coalescer, worker-pool wait, the shared RunBatch, and the fan-out
	// back to this handler — each with its true wall-clock start so the
	// exported spans line up on stitched timelines.
	span.PhaseAt("coalesce", wtr.enq, wtr.dispatched.Sub(wtr.enq))
	span.PhaseAt("queue_wait", wtr.dispatched, wtr.passStart.Sub(wtr.dispatched))
	span.PhaseAt("run", wtr.passStart, wtr.runDur)
	runEnd := wtr.passStart.Add(wtr.runDur)
	span.PhaseAt("fanout", runEnd, time.Since(runEnd))
	s.met.hot.Record(p.handle, len(req.Inputs), time.Since(span.Start).Nanoseconds())
	s.writeJSON(w, "run", http.StatusOK, RunResponse{
		Program:     p.handle,
		OutputNames: componentNames(p.ex.Outputs),
		Outputs:     wtr.outs,
		Report:      wtr.report,
	})
}

// runTraced executes one request's slots as a dedicated traced pass
// (bypassing the coalescer: a trace of a pass shared with other callers
// would leak their activity) and attaches the Chrome trace-event JSON to
// the response. Admission control already happened in the handler.
func (s *Server) runTraced(ctx context.Context, w http.ResponseWriter, span *obs.Span, p *program, req RunRequest) {
	slots := len(req.Inputs)
	defer s.releaseSlots(slots)
	s.inflight.Add(1)
	defer s.inflight.Done()
	stop := span.Time("queue_wait")
	s.sem <- struct{}{}
	stop()
	defer func() { <-s.sem }()
	tc := obs.TraceContextFrom(ctx)
	runStart := time.Now()
	extra := []compile.RunOption{compile.WithTrace()}
	if tc.Valid() {
		extra = append(extra, compile.WithTraceID(tc.TraceID))
	}
	opts, finishPass := s.passOpts(p, extra...)
	outs, chip, err := p.ex.RunBatchContext(ctx, req.Inputs, opts...)
	runDur := time.Since(runStart)
	span.PhaseAt("run", runStart, runDur)
	s.met.runNS.Add(runDur.Nanoseconds())
	s.met.runHist.Observe(runDur.Nanoseconds())
	if err != nil {
		finishPass(nil)
		s.writeError(w, "run", s.runStatus(w, err), err)
		return
	}
	finishPass(chip)
	rep := chip.Report()
	s.met.searches.Add(rep.Searches)
	s.met.writes.Add(rep.Writes)
	s.met.energyJ.Add(rep.Energy.TotalJ())
	s.met.recordFlush(1, slots)
	s.met.hot.Record(p.handle, slots, time.Since(span.Start).Nanoseconds())
	s.observeHealth(rep)
	if tc.Sampled {
		s.chipSpans(span, chip, runStart, runDur)
	}
	trace, err := obs.ChromeTrace(chip.TraceEvents(), obs.TraceMeta{
		Program:       p.handle,
		CyclePeriodNS: p.ex.Target.Tech.CyclePeriodNS(),
		TraceID:       chip.TraceID,
	})
	if err != nil {
		s.writeError(w, "run", http.StatusInternalServerError, err)
		return
	}
	s.writeJSON(w, "run", http.StatusOK, RunResponse{
		Program:     p.handle,
		OutputNames: componentNames(p.ex.Outputs),
		Outputs:     outs,
		Report:      passReport(chip, rep, slots, 1),
		Trace:       trace,
	})
}

// maxChipSpans bounds how many per-PE spans one traced pass contributes
// to the distributed trace (the full instruction stream stays in the
// chip-level Perfetto export; these spans are the cluster-timeline
// summary).
const maxChipSpans = 32

// chipSpans derives one child span per PE from the traced pass's event
// stream and nests them under the handler's "run" phase. Simulated
// cycles are scaled onto the pass's wall-clock interval (every PE span
// starts at runStart and covers its share of the critical path), so
// children always fit inside the run span on the stitched timeline.
func (s *Server) chipSpans(span *obs.Span, chip *arch.Chip, runStart time.Time, runDur time.Duration) {
	type peAgg struct {
		cum    int64
		instrs int64
	}
	perPE := map[int]*peAgg{}
	var order []int
	var maxCum int64
	for _, ev := range chip.TraceEvents() {
		if ev.PE < 0 {
			continue
		}
		a := perPE[ev.PE]
		if a == nil {
			a = &peAgg{}
			perPE[ev.PE] = a
			order = append(order, ev.PE)
		}
		if ev.CumCycles > a.cum {
			a.cum = ev.CumCycles
		}
		a.instrs++
		if ev.CumCycles > maxCum {
			maxCum = ev.CumCycles
		}
	}
	if maxCum == 0 {
		return
	}
	if len(order) > maxChipSpans {
		order = order[:maxChipSpans]
	}
	for _, pe := range order {
		a := perPE[pe]
		dur := time.Duration(float64(runDur) * float64(a.cum) / float64(maxCum))
		span.PhaseFull(fmt.Sprintf("chip pe%d", pe), runStart, dur, "run", "", map[string]string{
			"pe":     strconv.Itoa(pe),
			"cycles": strconv.FormatInt(a.cum, 10),
			"instrs": strconv.FormatInt(a.instrs, 10),
		})
	}
}

func (s *Server) handlePrograms(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, "programs", http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	infos := []ProgramInfo{}
	for _, p := range s.cache.snapshot() {
		select {
		case <-p.ready:
		default:
			continue // still compiling
		}
		if p.err != nil {
			continue
		}
		infos = append(infos, ProgramInfo{
			Program:     p.handle,
			Inputs:      componentNames(p.ex.Inputs),
			Outputs:     componentNames(p.ex.Outputs),
			Stats:       statsJSON(p.ex.Stats),
			SourceBytes: len(p.source),
			Hits:        p.hits.Load(),
		})
	}
	s.writeJSON(w, "programs", http.StatusOK, map[string]any{"programs": infos})
}

// observeHealth folds one completed pass's chip report into the fault
// metrics and remembers its PE health summary for /readyz. Each pass
// runs on a fresh chip, so the per-chip fault counters add across
// passes while the health summary (a property of the defect map the
// seed reproduces every pass) is last-writer-wins. With persistence
// the summary comes from the wear ledger instead — lifetime damage,
// including restored and retired PEs, never a single pass's view.
func (s *Server) observeHealth(rep arch.Report) {
	s.met.faultDetected.Add(rep.Faults.Detected)
	s.met.faultRepairs.Add(int64(rep.Faults.Repairs))
	s.met.transientUpsets.Add(rep.Faults.TransientUpsets)
	s.met.spareRetries.Add(rep.Retries)
	h := rep.Health
	if s.persist != nil {
		h = s.persist.healthSummary()
	}
	s.met.healthyPEFraction.Set(h.HealthyFraction())
	s.healthMu.Lock()
	s.lastHealth = &h
	s.healthMu.Unlock()
}

// healthSnapshot returns the last observed PE health (nil before the
// first completed pass).
func (s *Server) healthSnapshot() *arch.HealthSummary {
	s.healthMu.Lock()
	defer s.healthMu.Unlock()
	return s.lastHealth
}

// handleHealthz is pure liveness: the process is up and serving, so it
// always answers 200. Draining and degraded states are reported in the
// body for humans but do not fail the probe — readiness decisions
// belong to /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body := map[string]any{"status": "ok"}
	if s.draining.Load() {
		body["status"] = "draining"
	}
	if h := s.healthSnapshot(); h != nil {
		body["healthyPeFraction"] = h.HealthyFraction()
		if h.Degraded > 0 || h.Failed > 0 {
			body["degraded"] = true
		}
	}
	s.writeJSON(w, "healthz", http.StatusOK, body)
}

// handleReadyz is the readiness probe load balancers should watch: 503
// while draining (stop sending traffic), 200 with status "degraded"
// plus the healthy-PE fraction when the fault model has consumed spare
// resources (still correct, but nearer to failure), 200 "ready"
// otherwise.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		JitteredRetryAfter(w.Header())
		s.writeJSON(w, "readyz", http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	body := map[string]any{"status": "ready"}
	if h := s.healthSnapshot(); h != nil {
		body["healthyPeFraction"] = h.HealthyFraction()
		body["pes"] = map[string]int{
			"healthy": h.Healthy, "degraded": h.Degraded, "failed": h.Failed, "total": h.Total,
		}
		if h.Degraded > 0 || h.Failed > 0 {
			body["status"] = "degraded"
		}
	}
	s.writeJSON(w, "readyz", http.StatusOK, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.met.recordResponse("metrics", http.StatusOK)
	io.WriteString(w, s.met.root.String())
	io.WriteString(w, "\n")
}

// decode parses a JSON request body, enforcing the method and body limit.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, endpoint string, into any, method string) bool {
	if r.Method != method {
		s.writeError(w, endpoint, http.StatusMethodNotAllowed, fmt.Errorf("use %s", method))
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		s.writeError(w, endpoint, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func (s *Server) writeJSON(w http.ResponseWriter, endpoint string, status int, v any) {
	s.met.recordResponse(endpoint, status)
	buf, err := json.Marshal(v)
	if err != nil {
		// Wire types always marshal; guard anyway so a future type error
		// is a 500, not a panic.
		s.met.recordResponse(endpoint, http.StatusInternalServerError)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	buf = append(buf, '\n')
	w.Header().Set("Content-Type", "application/json")
	// Checksum the exact body bytes so the coordinator (or any relay) can
	// prove the payload crossed the wire intact; see integrity.go.
	w.Header().Set(ChecksumHeader, BodyChecksum(buf))
	w.WriteHeader(status)
	w.Write(buf)
}

func (s *Server) writeError(w http.ResponseWriter, endpoint string, status int, err error) {
	s.writeJSON(w, endpoint, status, ErrorResponse{Error: err.Error()})
}

// compileStatus maps a compileProgram error to an HTTP status: context
// expiry is a timeout, anything else is a bad program or bad options.
func compileStatus(err error) int {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return http.StatusGatewayTimeout
	}
	return http.StatusBadRequest
}

// rejectStatus maps an admission error: queue overflow is 429 (retry
// later), draining is 503 (go elsewhere).
func rejectStatus(err error) int {
	if errors.Is(err, errQueueFull) {
		return http.StatusTooManyRequests
	}
	return http.StatusServiceUnavailable
}

// runStatus maps a pass-execution error to an HTTP status. An unmasked
// hardware fault (spare rows and spare PEs exhausted, or repair
// disabled) is 503 + Retry-After: the request was never answered
// wrongly, and a retry lands on a fresh pass chip whose spares are
// unconsumed. Context expiry is the caller's deadline; everything else
// is a server error.
func (s *Server) runStatus(w http.ResponseWriter, err error) int {
	var afe *arch.FaultError
	var tfe *tcam.FaultError
	if errors.As(err, &afe) || errors.As(err, &tfe) {
		s.met.faultErrors.Add(1)
		JitteredRetryAfter(w.Header())
		return http.StatusServiceUnavailable
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return http.StatusGatewayTimeout
	}
	return http.StatusInternalServerError
}

// passReport renders the wire report of one completed pass, including
// the fault-model activity when any occurred.
func passReport(chip *arch.Chip, rep arch.Report, slots, requests int) *Report {
	r := &Report{
		PEs:           chip.NumPEs(),
		Cycles:        rep.Cycles,
		EnergyJ:       rep.Energy.TotalJ(),
		MaxCellWrites: rep.MaxCellWrites,
		BatchSlots:    slots,
		BatchRequests: requests,
	}
	if rep.Faults != (tcam.FaultReport{}) || rep.Retries > 0 {
		r.FaultsDetected = rep.Faults.Detected
		r.FaultRepairs = rep.Faults.Repairs
		r.TransientUpsets = rep.Faults.TransientUpsets
		r.SpareRetries = rep.Retries
		r.HealthyPEFraction = rep.Health.HealthyFraction()
	}
	return r
}
