package serve

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"hyperap/internal/compile"
)

// TestServeE2EConcurrentClients is the acceptance gate for the serving
// layer (run under -race by `make check`): 48 concurrent clients hammer
// a live httptest server with small batches of the same program, and
// every client must get outputs bit-identical to calling RunBatch
// directly. Afterwards the coalescer must have been observed packing
// several requests into one pass, and a second identical compile must be
// a cache hit.
func TestServeE2EConcurrentClients(t *testing.T) {
	const clients = 48

	s := New(Config{CoalesceWindow: 20 * time.Millisecond})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Golden outputs straight from RunBatch on the same target the
	// server compiles for.
	tgt, err := Options{}.Target()
	if err != nil {
		t.Fatal(err)
	}
	ex, err := compile.CompileSource(addSrc, tgt)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	clientInputs := make([][][]uint64, clients)
	golden := make([][][]uint64, clients)
	for c := range clientInputs {
		slots := 1 + rng.Intn(8)
		in := make([][]uint64, slots)
		for i := range in {
			in[i] = []uint64{rng.Uint64() & 31, rng.Uint64() & 31}
		}
		clientInputs[c] = in
		outs, _, err := ex.RunBatch(in)
		if err != nil {
			t.Fatal(err)
		}
		golden[c] = outs
	}

	// Fire every client at once so their requests land inside one
	// coalescing window.
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(clients)
	got := make([]RunResponse, clients)
	codes := make([]int, clients)
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer done.Done()
			start.Wait()
			codes[c], errs[c] = postClient(ts.URL+"/v1/run",
				RunRequest{Source: addSrc, Inputs: clientInputs[c]}, &got[c])
		}(c)
	}
	start.Done()
	done.Wait()

	occupied := false
	for c := 0; c < clients; c++ {
		if errs[c] != nil || codes[c] != 200 {
			t.Fatalf("client %d: status %d err %v", c, codes[c], errs[c])
		}
		if !reflect.DeepEqual(got[c].Outputs, golden[c]) {
			t.Fatalf("client %d outputs diverge from RunBatch:\n  got  %v\n  want %v",
				c, got[c].Outputs, golden[c])
		}
		if got[c].Report == nil {
			t.Fatalf("client %d: no report", c)
		}
		if got[c].Report.BatchRequests > 1 {
			occupied = true
		}
	}
	if !occupied {
		t.Error("no client rode a coalesced pass (every report has batchRequests == 1)")
	}
	if s.met.maxBatchRequests.Value() <= 1 {
		t.Errorf("batch_max_requests = %d, want > 1 (coalescer never packed a multi-request pass)",
			s.met.maxBatchRequests.Value())
	}
	if s.met.flushes.Value() == 0 || s.met.searches.Value() == 0 {
		t.Errorf("pass metrics empty: flushes=%d searches=%d",
			s.met.flushes.Value(), s.met.searches.Value())
	}

	// All 48 clients ran the same source: exactly one compile, the rest
	// cache hits; a fresh identical compile must also be a hit.
	if s.met.cacheMisses.Value() != 1 {
		t.Errorf("cache_misses = %d, want 1 (one compile for 48 clients)", s.met.cacheMisses.Value())
	}
	var comp CompileResponse
	if code := post(t, ts.URL+"/v1/compile", CompileRequest{Source: addSrc}, &comp); code != 200 {
		t.Fatalf("compile status %d", code)
	}
	if !comp.Cached || comp.Program != compile.Fingerprint(addSrc, tgt) {
		t.Errorf("second identical compile: cached=%t program=%s", comp.Cached, comp.Program)
	}
}

// postClient is the goroutine-safe flavor of post: it returns errors
// instead of calling t.Fatal off the test goroutine.
func postClient(url string, body RunRequest, into *RunResponse) (int, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == 200 {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}
