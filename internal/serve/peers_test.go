package serve

import (
	"context"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestPeerFetchRacesWriteThrough pins the shared-program-store contract
// under concurrency (run with -race): a worker whose cache misses can
// fetch the compiled record from a peer while its own async
// write-through and LRU eviction churn underneath. The fetching worker
// must never compile (the cluster compiles each fingerprint once,
// ever), must never leave orphaned .tmp-* files in its store, and every
// answer must be correct.
func TestPeerFetchRacesWriteThrough(t *testing.T) {
	progs := make([]string, 4)
	for i := range progs {
		w := 3 + i
		progs[i] = fmt.Sprintf(
			"unsigned int(%d) main(unsigned int(%d) a, unsigned int(%d) b){ return a + b; }",
			w+1, w, w)
	}

	// Worker A owns every program: compile them all up front so its
	// store has the records.
	a := New(Config{CoalesceWindow: time.Millisecond, StateDir: t.TempDir(), SnapshotInterval: -1})
	ats := httptest.NewServer(a)
	defer ats.Close()
	for _, src := range progs {
		var cr CompileResponse
		if code := post(t, ats.URL+"/v1/compile", CompileRequest{Source: src}, &cr); code != 200 {
			t.Fatalf("seed compile: status %d", code)
		}
	}

	// Worker B: cache capacity 1 forces an eviction on almost every
	// request, so peer fetches, the async write-through of the fetched
	// record, and eviction-cancelled write-throughs all race.
	bdir := t.TempDir()
	b := New(Config{
		MaxPrograms:      1,
		CoalesceWindow:   time.Millisecond,
		StateDir:         bdir,
		SnapshotInterval: -1,
		Peers:            []string{ats.URL},
	})
	bts := httptest.NewServer(b)
	defer bts.Close()

	const goroutines = 8
	const rounds = 12
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*rounds)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (g + r) % len(progs)
				width := 3 + i
				mask := uint64(1)<<width - 1
				in := [][]uint64{{uint64(g) & mask, uint64(r) & mask}}
				want := [][]uint64{{(in[0][0] + in[0][1]) & (uint64(1)<<(width+1) - 1)}}
				var rr RunResponse
				code, err := postClient(bts.URL+"/v1/run", RunRequest{Source: progs[i], Inputs: in}, &rr)
				if err != nil || code != 200 {
					errs <- fmt.Errorf("g%d r%d: status %d err %v", g, r, code, err)
					continue
				}
				if !reflect.DeepEqual(rr.Outputs, want) {
					errs <- fmt.Errorf("g%d r%d: got %v want %v", g, r, rr.Outputs, want)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// B never ran the compile pipeline: every miss was answered by its
	// own store (write-through of an earlier fetch) or by peer A.
	if got := b.met.compiles.Value(); got != 0 {
		t.Errorf("worker B compiled %d times; peer fetch should have made that 0", got)
	}
	if b.met.storePeerHits.Value() == 0 {
		t.Error("worker B recorded no peer store hits")
	}

	// Drain B so in-flight write-throughs settle, then check its store
	// directory for orphaned temp files (store.Open would sweep them on
	// restart, so inspect the live directory instead of reopening).
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := b.Drain(ctx); err != nil {
		t.Fatalf("drain B: %v", err)
	}
	temps, err := filepath.Glob(filepath.Join(bdir, "*", ".tmp-*"))
	if err != nil {
		t.Fatal(err)
	}
	moreTemps, err := filepath.Glob(filepath.Join(bdir, ".tmp-*"))
	if err != nil {
		t.Fatal(err)
	}
	if temps = append(temps, moreTemps...); len(temps) != 0 {
		t.Errorf("orphaned temp files after drain: %v", temps)
	}
	if err := a.Drain(ctx); err != nil {
		t.Fatalf("drain A: %v", err)
	}
}
