package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hyperap/internal/compile"
	"hyperap/internal/lut"
)

const addSrc = `unsigned int(6) main(unsigned int(5) a, unsigned int(5) b){ return a + b; }`

// post sends a JSON body and decodes the JSON response, returning the
// status code.
func post(t *testing.T, url string, body, into any) int {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp.StatusCode
}

// postHdr is post, also returning the response headers (for Retry-After
// assertions).
func postHdr(t *testing.T, url string, body, into any) (int, http.Header) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp.StatusCode, resp.Header
}

func get(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp.StatusCode
}

func TestOptionsTarget(t *testing.T) {
	tgt, err := Options{}.Target()
	if err != nil {
		t.Fatal(err)
	}
	if tgt.Tech.Name != "RRAM" || tgt.Mode != lut.ModeHyper || tgt.K != lut.MaxInputs {
		t.Errorf("zero options = %+v, want the stock Hyper-AP target", tgt)
	}
	tgt, err = Options{Tech: "cmos", Traditional: true, LUTInputs: 4}.Target()
	if err != nil {
		t.Fatal(err)
	}
	if tgt.Tech.Name != "CMOS" || tgt.Mode != lut.ModeTraditional || !tgt.Monolithic || tgt.K != 4 {
		t.Errorf("options not applied: %+v", tgt)
	}
	if _, err := (Options{Tech: "nvm"}).Target(); err == nil {
		t.Error("unknown tech must error")
	}
	if _, err := (Options{LUTInputs: 1}).Target(); err == nil {
		t.Error("lutInputs below 2 must error")
	}
	// Distinct options must produce distinct fingerprints; equal options
	// must not.
	a, _ := Options{}.Target()
	b, _ := Options{Tech: "cmos"}.Target()
	if compile.Fingerprint(addSrc, a) == compile.Fingerprint(addSrc, b) {
		t.Error("different tech, same fingerprint")
	}
	if compile.Fingerprint(addSrc, a) != compile.Fingerprint(addSrc, a) {
		t.Error("fingerprint not deterministic")
	}
}

func TestCompileCacheAndPrograms(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	var first, second CompileResponse
	if code := post(t, ts.URL+"/v1/compile", CompileRequest{Source: addSrc}, &first); code != 200 {
		t.Fatalf("compile status %d", code)
	}
	if first.Cached {
		t.Error("first compile cannot be a cache hit")
	}
	if !strings.HasPrefix(first.Program, "sha256:") || first.Stats.Searches == 0 {
		t.Errorf("compile response incomplete: %+v", first)
	}
	if code := post(t, ts.URL+"/v1/compile", CompileRequest{Source: addSrc}, &second); code != 200 {
		t.Fatalf("recompile status %d", code)
	}
	if !second.Cached || second.Program != first.Program {
		t.Errorf("identical source must be a cache hit with the same handle: %+v", second)
	}
	if s.met.cacheHits.Value() == 0 || s.met.cacheMisses.Value() != 1 {
		t.Errorf("cache metrics: hits=%d misses=%d", s.met.cacheHits.Value(), s.met.cacheMisses.Value())
	}
	// Different options are a different program.
	var cmos CompileResponse
	post(t, ts.URL+"/v1/compile", CompileRequest{Source: addSrc, Options: Options{Tech: "cmos"}}, &cmos)
	if cmos.Program == first.Program || cmos.Cached {
		t.Errorf("cmos target must compile a distinct program: %+v", cmos)
	}

	var progs struct {
		Programs []ProgramInfo `json:"programs"`
	}
	if code := get(t, ts.URL+"/v1/programs", &progs); code != 200 {
		t.Fatalf("programs status %d", code)
	}
	if len(progs.Programs) != 2 {
		t.Fatalf("programs lists %d entries, want 2", len(progs.Programs))
	}
	// Most recently used first; the RRAM program has one hit.
	if progs.Programs[0].Program != cmos.Program {
		t.Errorf("MRU order wrong: %v", progs.Programs)
	}

	var health map[string]any
	if code := get(t, ts.URL+"/healthz", &health); code != 200 || health["status"] != "ok" {
		t.Errorf("healthz = %d %v", code, health)
	}
	var ready map[string]any
	if code := get(t, ts.URL+"/readyz", &ready); code != 200 || ready["status"] != "ready" {
		t.Errorf("readyz = %d %v", code, ready)
	}
	var met map[string]any
	if code := get(t, ts.URL+"/metrics", &met); code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	if _, ok := met["cache_hits"]; !ok {
		t.Errorf("metrics missing cache_hits: %v", met)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	s := New(Config{MaxPrograms: 2})
	ts := httptest.NewServer(s)
	defer ts.Close()

	srcs := []string{
		`unsigned int(4) main(unsigned int(3) a){ return a + 1; }`,
		`unsigned int(4) main(unsigned int(3) a){ return a + 2; }`,
		`unsigned int(4) main(unsigned int(3) a){ return a + 3; }`,
	}
	var handles []string
	for _, src := range srcs {
		var resp CompileResponse
		if code := post(t, ts.URL+"/v1/compile", CompileRequest{Source: src}, &resp); code != 200 {
			t.Fatalf("compile status %d", code)
		}
		handles = append(handles, resp.Program)
	}
	if s.met.cacheEvictions.Value() != 1 {
		t.Errorf("evictions = %d, want 1", s.met.cacheEvictions.Value())
	}
	// The first program was evicted: running by handle 404s, recompiling
	// is a miss.
	var errResp ErrorResponse
	code := post(t, ts.URL+"/v1/run", RunRequest{Program: handles[0], Inputs: [][]uint64{{1}}}, &errResp)
	if code != http.StatusNotFound || !strings.Contains(errResp.Error, "evicted") {
		t.Errorf("evicted handle: status %d, %v", code, errResp)
	}
	var resp CompileResponse
	post(t, ts.URL+"/v1/compile", CompileRequest{Source: srcs[0]}, &resp)
	if resp.Cached {
		t.Error("evicted program recompile cannot be a cache hit")
	}
}

func TestRunByHandleAndInline(t *testing.T) {
	s := New(Config{CoalesceWindow: time.Millisecond})
	ts := httptest.NewServer(s)
	defer ts.Close()

	var comp CompileResponse
	if code := post(t, ts.URL+"/v1/compile", CompileRequest{Source: addSrc}, &comp); code != 200 {
		t.Fatal("compile failed")
	}
	var run RunResponse
	if code := post(t, ts.URL+"/v1/run",
		RunRequest{Program: comp.Program, Inputs: [][]uint64{{3, 4}, {31, 31}}}, &run); code != 200 {
		t.Fatalf("run status %d", code)
	}
	if len(run.Outputs) != 2 || run.Outputs[0][0] != 7 || run.Outputs[1][0] != 62 {
		t.Errorf("outputs = %v, want [[7] [62]]", run.Outputs)
	}
	if run.Report == nil || run.Report.Cycles == 0 || run.Report.EnergyJ <= 0 || run.Report.BatchSlots < 2 {
		t.Errorf("report incomplete: %+v", run.Report)
	}
	if run.Program != comp.Program || len(run.OutputNames) != 1 {
		t.Errorf("response incomplete: %+v", run)
	}
	// Inline source takes the same path through the cache.
	var inline RunResponse
	if code := post(t, ts.URL+"/v1/run",
		RunRequest{Source: addSrc, Inputs: [][]uint64{{5, 6}}}, &inline); code != 200 {
		t.Fatalf("inline run status %d", code)
	}
	if inline.Program != comp.Program || inline.Outputs[0][0] != 11 {
		t.Errorf("inline run = %+v", inline)
	}
}

func TestRunValidation(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	cases := []struct {
		name string
		req  RunRequest
		code int
	}{
		{"neither", RunRequest{Inputs: [][]uint64{{1, 2}}}, 400},
		{"both", RunRequest{Program: "sha256:x", Source: addSrc, Inputs: [][]uint64{{1, 2}}}, 400},
		{"unknown handle", RunRequest{Program: "sha256:nope", Inputs: [][]uint64{{1, 2}}}, 404},
		{"empty inputs", RunRequest{Source: addSrc}, 400},
		{"arity", RunRequest{Source: addSrc, Inputs: [][]uint64{{1, 2, 3}}}, 400},
		{"bad tech", RunRequest{Source: addSrc, Options: Options{Tech: "nvm"}, Inputs: [][]uint64{{1, 2}}}, 400},
		{"bad program", RunRequest{Source: "nope", Inputs: [][]uint64{{1}}}, 400},
	}
	for _, c := range cases {
		var errResp ErrorResponse
		if code := post(t, ts.URL+"/v1/run", c.req, &errResp); code != c.code {
			t.Errorf("%s: status %d, want %d (%v)", c.name, code, c.code, errResp)
		}
	}
	// Malformed JSON and wrong method.
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("malformed JSON: status %d", resp.StatusCode)
	}
	if code := get(t, ts.URL+"/v1/run", nil); code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/run: status %d", code)
	}
	var errResp ErrorResponse
	if code := post(t, ts.URL+"/v1/compile", CompileRequest{}, &errResp); code != 400 {
		t.Errorf("empty compile: status %d", code)
	}
}

// TestNoCoalesceFlushesImmediately: with a window far longer than the
// test, a noCoalesce run must not wait for co-batched requests.
func TestNoCoalesceFlushesImmediately(t *testing.T) {
	s := New(Config{CoalesceWindow: time.Hour})
	ts := httptest.NewServer(s)
	defer ts.Close()

	var run RunResponse
	done := make(chan error, 1)
	go func() {
		code, err := postClient(ts.URL+"/v1/run",
			RunRequest{Source: addSrc, Inputs: [][]uint64{{1, 2}}, NoCoalesce: true}, &run)
		if err == nil && code != 200 {
			err = fmt.Errorf("run status %d", code)
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("noCoalesce run waited for the window")
	}
	if run.Report == nil || run.Report.BatchRequests != 1 {
		t.Errorf("report = %+v, want a single-request pass", run.Report)
	}
}

// TestRequestTimeout: a run parked behind an hour-long window must come
// back as 504 when the per-request deadline is shorter, without tearing
// down the server.
func TestRequestTimeout(t *testing.T) {
	s := New(Config{CoalesceWindow: time.Hour, RequestTimeout: 50 * time.Millisecond})
	ts := httptest.NewServer(s)
	defer ts.Close()

	var errResp ErrorResponse
	if code := post(t, ts.URL+"/v1/run",
		RunRequest{Source: addSrc, Inputs: [][]uint64{{1, 2}}}, &errResp); code != http.StatusGatewayTimeout {
		t.Fatalf("parked run: status %d (%v), want 504", code, errResp)
	}
	var health map[string]any
	if code := get(t, ts.URL+"/healthz", &health); code != 200 {
		t.Errorf("server unhealthy after a request timeout: %d", code)
	}
}

// TestBackpressureAndDrain fills the queue behind a long coalescing
// window, checks that the next request is rejected with 429, then drains:
// the parked work must still complete, and post-drain requests get 503.
func TestBackpressureAndDrain(t *testing.T) {
	s := New(Config{MaxQueueSlots: 4, CoalesceWindow: time.Hour})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Warm the cache so the parked run doesn't hold the compile path.
	var comp CompileResponse
	if code := post(t, ts.URL+"/v1/compile", CompileRequest{Source: addSrc}, &comp); code != 200 {
		t.Fatal("compile failed")
	}

	type result struct {
		code int
		run  RunResponse
	}
	parked := make(chan result, 1)
	go func() {
		var run RunResponse
		code, err := postClient(ts.URL+"/v1/run",
			RunRequest{Program: comp.Program, Inputs: [][]uint64{{1, 1}, {2, 2}, {3, 3}, {4, 4}}}, &run)
		if err != nil {
			code = -1
		}
		parked <- result{code, run}
	}()
	// Wait until the four slots are admitted and parked in the coalescer.
	deadline := time.Now().Add(30 * time.Second)
	for s.queued.Load() != 4 {
		if time.Now().After(deadline) {
			t.Fatalf("parked run never admitted (queued=%d)", s.queued.Load())
		}
		time.Sleep(time.Millisecond)
	}

	var errResp ErrorResponse
	code, hdr := postHdr(t, ts.URL+"/v1/run",
		RunRequest{Program: comp.Program, Inputs: [][]uint64{{5, 5}}}, &errResp)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-limit run: status %d (%v), want 429", code, errResp)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
	if s.met.rejectedQueueFull.Value() != 1 {
		t.Errorf("rejected_queue_full = %d, want 1", s.met.rejectedQueueFull.Value())
	}

	// Drain: the parked pass must flush and complete, not be dropped.
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	res := <-parked
	if res.code != 200 || len(res.run.Outputs) != 4 || res.run.Outputs[3][0] != 8 {
		t.Fatalf("parked run after drain: status %d outputs %v", res.code, res.run.Outputs)
	}

	// Post-drain: runs rejected with 503 + Retry-After, readyz pulls the
	// server out of rotation, healthz stays alive (liveness must not
	// restart a cleanly draining process).
	code, hdr = postHdr(t, ts.URL+"/v1/run",
		RunRequest{Program: comp.Program, Inputs: [][]uint64{{1, 2}}}, &errResp)
	if code != http.StatusServiceUnavailable {
		t.Errorf("post-drain run: status %d, want 503", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("post-drain 503 missing Retry-After")
	}
	var ready map[string]any
	if code := get(t, ts.URL+"/readyz", &ready); code != http.StatusServiceUnavailable || ready["status"] != "draining" {
		t.Errorf("post-drain readyz = %d %v", code, ready)
	}
	var health map[string]any
	if code := get(t, ts.URL+"/healthz", &health); code != 200 || health["status"] != "draining" {
		t.Errorf("post-drain healthz = %d %v (liveness must stay 200)", code, health)
	}
}
