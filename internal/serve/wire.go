// Package serve implements hyperap-serve: a long-lived HTTP/JSON
// compile-and-execute service over the Hyper-AP simulator. It amortizes
// the expensive compile pipeline with a content-hash-keyed LRU program
// cache and aggregates small run requests into full 256-slot PE shards
// with a micro-batching coalescer, so that independent callers share the
// SIMD width of the hardware (the throughput condition of the AP model:
// searches only pay off when every word row carries live data).
//
// Endpoints:
//
//	POST /v1/compile   source + options → program handle + Stats
//	POST /v1/run       handle or inline source + input batch → outputs + report
//	GET  /v1/programs  the cached programs
//	GET  /healthz      liveness (always 200; reports draining/degraded)
//	GET  /readyz       readiness: 503 draining | 200 ready/degraded + healthy-PE fraction
//	GET  /metrics      expvar-style JSON counters
//
// See DESIGN.md §8 for the cache key, coalescing window and backpressure
// semantics.
package serve

import (
	"encoding/json"
	"fmt"

	"hyperap/internal/compile"
	"hyperap/internal/lut"
	"hyperap/internal/tech"
)

// Options is the wire form of the compilation options, mirroring the
// public hyperap.Option set. The zero value is the paper's main
// configuration (RRAM Hyper-AP, 12-input LUTs).
type Options struct {
	// Tech selects the TCAM technology: "" or "rram" (default), "cmos".
	Tech string `json:"tech,omitempty"`
	// Traditional targets the traditional associative processor
	// (Single-Search-Single-Pattern, monolithic array).
	Traditional bool `json:"traditional,omitempty"`
	// Monolithic uses the single-crossbar array design (writes are twice
	// as slow).
	Monolithic bool `json:"monolithic,omitempty"`
	// NoAccumulation disables the accumulation unit.
	NoAccumulation bool `json:"noAccumulation,omitempty"`
	// LUTInputs overrides the lookup-table input limit (2..12; 0 = the
	// default 12).
	LUTInputs int `json:"lutInputs,omitempty"`
}

// Target resolves the wire options to a compiler target.
func (o Options) Target() (compile.Target, error) {
	tgt := compile.HyperTarget()
	switch o.Tech {
	case "", "rram":
	case "cmos":
		tgt.Tech = tech.CMOS()
	default:
		return compile.Target{}, fmt.Errorf("unknown tech %q (want \"rram\" or \"cmos\")", o.Tech)
	}
	if o.Traditional {
		tgt.Mode = lut.ModeTraditional
		tgt.Monolithic = true
	}
	if o.Monolithic {
		tgt.Monolithic = true
	}
	if o.NoAccumulation {
		tgt.NoAccumulation = true
	}
	if o.LUTInputs != 0 {
		if o.LUTInputs < 2 || o.LUTInputs > lut.MaxInputs {
			return compile.Target{}, fmt.Errorf("lutInputs %d outside 2..%d", o.LUTInputs, lut.MaxInputs)
		}
		tgt.K = o.LUTInputs
	}
	return tgt, nil
}

// CompileRequest is the body of POST /v1/compile.
type CompileRequest struct {
	Source  string  `json:"source"`
	Options Options `json:"options"`
}

// Stats is the wire form of the compilation statistics.
type Stats struct {
	Searches      int   `json:"searches"`
	Writes        int   `json:"writes"`
	EncodedWrites int   `json:"encodedWrites"`
	SetKeys       int   `json:"setKeys"`
	LUTs          int   `json:"luts"`
	Patterns      int   `json:"patterns"`
	Cycles        int64 `json:"cycles"`
	PeakColumns   int   `json:"peakColumns"`
	AIGNodes      int   `json:"aigNodes"`
}

func statsJSON(s compile.Stats) Stats {
	return Stats{
		Searches:      s.Searches,
		Writes:        s.Writes,
		EncodedWrites: s.EncodedWrites,
		SetKeys:       s.SetKeys,
		LUTs:          s.LUTs,
		Patterns:      s.Patterns,
		Cycles:        s.Cycles,
		PeakColumns:   s.PeakColumns,
		AIGNodes:      s.AIGNodes,
	}
}

// CompileResponse is the body of a successful POST /v1/compile: the
// content-hashed program handle plus the compilation statistics. Cached
// reports whether the program was already resident (the compile pipeline
// did not run again).
type CompileResponse struct {
	Program   string   `json:"program"`
	Cached    bool     `json:"cached"`
	Inputs    []string `json:"inputs"`
	Outputs   []string `json:"outputs"`
	Stats     Stats    `json:"stats"`
	LatencyNS float64  `json:"latencyNs"`
}

// RunRequest is the body of POST /v1/run. Exactly one of Program (a
// handle from /v1/compile) or Source must be set; Options only applies
// with inline Source. Inputs holds one row per SIMD slot, each with one
// value per program input (masked to the declared width, like RunBatch).
type RunRequest struct {
	Program string     `json:"program,omitempty"`
	Source  string     `json:"source,omitempty"`
	Options Options    `json:"options"`
	Inputs  [][]uint64 `json:"inputs"`
	// NoCoalesce flushes this request through its own RunBatch
	// immediately instead of waiting out the coalescing window.
	NoCoalesce bool `json:"noCoalesce,omitempty"`
}

// Report is the wire form of the physical accounting for the RunBatch
// pass the request's slots rode in. When the coalescer packed several
// requests into one pass, BatchSlots/BatchRequests cover the whole pass
// (energy and operation counts are properties of the shared pass, not of
// one caller's slice of it).
type Report struct {
	PEs           int     `json:"pes"`
	Cycles        int64   `json:"cycles"`
	EnergyJ       float64 `json:"energyJ"`
	MaxCellWrites uint32  `json:"maxCellWrites"`
	// BatchSlots is the total slot occupancy of the flushed pass;
	// BatchRequests is how many coalesced requests shared it.
	BatchSlots    int `json:"batchSlots"`
	BatchRequests int `json:"batchRequests"`
	// Fault-model activity of the pass chip, present when the server
	// runs with fault injection enabled: write-verify detections,
	// spare-row repairs, silent transient upsets, shards replayed on
	// spare PEs, and the fraction of PEs still healthy afterwards.
	FaultsDetected    int64   `json:"faultsDetected,omitempty"`
	FaultRepairs      int     `json:"faultRepairs,omitempty"`
	TransientUpsets   int64   `json:"transientUpsets,omitempty"`
	SpareRetries      int64   `json:"spareRetries,omitempty"`
	HealthyPEFraction float64 `json:"healthyPeFraction,omitempty"`
}

// RunResponse is the body of a successful POST /v1/run. The same
// encoding is emitted by `hyperap-run -json`. Trace is present only for
// `POST /v1/run?trace=1`: the Chrome trace-event JSON of the request's
// dedicated traced pass, saveable as-is and loadable at ui.perfetto.dev.
type RunResponse struct {
	Program     string          `json:"program"`
	OutputNames []string        `json:"outputNames"`
	Outputs     [][]uint64      `json:"outputs"`
	Report      *Report         `json:"report,omitempty"`
	Trace       json.RawMessage `json:"trace,omitempty"`
}

// ProgramInfo is one entry of GET /v1/programs.
type ProgramInfo struct {
	Program     string   `json:"program"`
	Inputs      []string `json:"inputs"`
	Outputs     []string `json:"outputs"`
	Stats       Stats    `json:"stats"`
	SourceBytes int      `json:"sourceBytes"`
	Hits        int64    `json:"hits"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// componentNames renders "name:width" for each input or output component
// (the same form as hyperap.Executable.InputNames).
func componentNames(comps []compile.Component) []string {
	names := make([]string, len(comps))
	for i, c := range comps {
		names[i] = fmt.Sprintf("%s:%d", c.Name, c.Width)
	}
	return names
}
