package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"hyperap/internal/tcam"
)

// faultBatch is a deterministic 32-slot input batch for the add kernel.
func faultBatch() ([][]uint64, []uint64) {
	in := make([][]uint64, 32)
	want := make([]uint64, 32)
	for i := range in {
		a, b := uint64(i*7+3)&31, uint64(i*13+1)&31
		in[i] = []uint64{a, b}
		want[i] = a + b
	}
	return in, want
}

// TestFaultDegradedServing is the serve-layer acceptance path: a chip
// with injected defects answers runs correctly (write-verify + spare-row
// repair), reports the repair in the run's report, and flips /readyz to
// "degraded" with the healthy-PE fraction — while staying ready.
func TestFaultDegradedServing(t *testing.T) {
	inputs, want := faultBatch()
	// The defect map is seed-deterministic but whether one lands under a
	// written cell depends on layout; scan a few seeds for one that is
	// detected and repaired rather than hard-coding a layout-sensitive
	// seed.
	for seed := int64(1); seed <= 64; seed++ {
		s := New(Config{
			Faults:   tcam.FaultConfig{Seed: seed, StuckAtRate: 2e-3, SpareRows: 8},
			SparePEs: 1,
		})
		ts := httptest.NewServer(s)
		var run RunResponse
		code := post(t, ts.URL+"/v1/run", RunRequest{Source: addSrc, Inputs: inputs, NoCoalesce: true}, &run)
		if code != 200 {
			ts.Close()
			continue // this seed's defects were unrepairable: loud, not wrong
		}
		for i, out := range run.Outputs {
			if len(out) != 1 || out[0] != want[i] {
				t.Fatalf("seed %d: slot %d = %v, want [%d] (silent corruption)", seed, i, out, want[i])
			}
		}
		if run.Report == nil || run.Report.FaultsDetected < 1 || run.Report.FaultRepairs < 1 {
			ts.Close()
			continue // completed fault-free under this seed
		}

		var ready map[string]any
		if code := get(t, ts.URL+"/readyz", &ready); code != 200 {
			t.Fatalf("degraded server not ready: %d (%v)", code, ready)
		}
		if ready["status"] != "degraded" {
			t.Errorf("readyz status = %v, want degraded", ready["status"])
		}
		frac, ok := ready["healthyPeFraction"].(float64)
		if !ok || frac <= 0 || frac > 1 {
			t.Errorf("readyz healthyPeFraction = %v, want (0,1]", ready["healthyPeFraction"])
		}
		var health map[string]any
		if code := get(t, ts.URL+"/healthz", &health); code != 200 {
			t.Errorf("liveness failed on a degraded (still correct) server: %d", code)
		}
		var met map[string]any
		if code := get(t, ts.URL+"/metrics", &met); code != 200 {
			t.Fatalf("metrics: %d", code)
		}
		if d, _ := met["fault_detected"].(float64); d < 1 {
			t.Errorf("metrics fault_detected = %v, want >= 1", met["fault_detected"])
		}
		if r, _ := met["fault_repairs"].(float64); r < 1 {
			t.Errorf("metrics fault_repairs = %v, want >= 1", met["fault_repairs"])
		}
		ts.Close()
		return
	}
	t.Fatal("no seed in 1..64 produced a repaired run; rate/layout drifted")
}

// TestFaultExhaustion503: when defects exhaust every repair resource the
// run must come back 503 + Retry-After (a retriable fault, not a wrong
// answer), and runs that do complete must be correct. The server itself
// stays alive throughout.
func TestFaultExhaustion503(t *testing.T) {
	inputs, want := faultBatch()
	saw503 := false
	for seed := int64(1); seed <= 32 && !saw503; seed++ {
		s := New(Config{
			// High defect rate, no spare rows, no spare PEs: faults are
			// detected by write-verify but nothing can absorb them.
			Faults: tcam.FaultConfig{Seed: seed, StuckAtRate: 1e-2},
		})
		ts := httptest.NewServer(s)
		var run RunResponse
		code, hdr := postHdr(t, ts.URL+"/v1/run", RunRequest{Source: addSrc, Inputs: inputs, NoCoalesce: true}, &run)
		switch code {
		case http.StatusServiceUnavailable:
			saw503 = true
			if hdr.Get("Retry-After") == "" {
				t.Error("fault 503 without Retry-After")
			}
			var health map[string]any
			if hc := get(t, ts.URL+"/healthz", &health); hc != 200 {
				t.Errorf("server dead after a fault 503: %d", hc)
			}
		case http.StatusOK:
			for i, out := range run.Outputs {
				if len(out) != 1 || out[0] != want[i] {
					t.Fatalf("seed %d: slot %d = %v, want [%d] (silent corruption)", seed, i, out, want[i])
				}
			}
		default:
			t.Fatalf("seed %d: unexpected status %d", seed, code)
		}
		ts.Close()
	}
	if !saw503 {
		t.Fatal("no seed in 1..32 exhausted repair at rate 1e-2; rate/layout drifted")
	}
}
