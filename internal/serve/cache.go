package serve

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"

	"hyperap/internal/compile"
)

// program is one cached compiled program plus its coalescer. The
// executable is immutable after compilation (see the concurrency note on
// compile.Executable), so any number of in-flight runs may keep using a
// program after it is evicted from the cache; eviction only stops new
// handle lookups from finding it.
type program struct {
	handle string
	source string
	tgt    compile.Target

	// ready is closed once the compile pipeline finished (ex or err set).
	// Concurrent requests for the same fingerprint share one compilation.
	ready chan struct{}
	ex    *compile.Executable
	err   error

	co *coalescer

	hits atomic.Int64 // lookups served from cache

	// storeMu guards the program-store write-through registration.
	// Eviction cancels an in-flight write and bars a not-yet-started
	// one, so no temp file (or fresh record) outlives the entry it was
	// persisting for.
	storeMu      sync.Mutex
	storeCancel  context.CancelFunc
	storeEvicted bool
}

// beginStoreWrite registers an asynchronous write-through and returns
// its cancelable context; ok is false when the entry was already
// evicted and the write must not start.
func (p *program) beginStoreWrite() (ctx context.Context, ok bool) {
	p.storeMu.Lock()
	defer p.storeMu.Unlock()
	if p.storeEvicted {
		return nil, false
	}
	ctx, p.storeCancel = context.WithCancel(context.Background())
	return ctx, true
}

// endStoreWrite deregisters a finished write-through.
func (p *program) endStoreWrite() {
	p.storeMu.Lock()
	if p.storeCancel != nil {
		p.storeCancel()
		p.storeCancel = nil
	}
	p.storeMu.Unlock()
}

// releaseStoreWrite cancels any write-through still in flight and
// prevents future ones; called when the entry falls out of the cache.
func (p *program) releaseStoreWrite() {
	p.storeMu.Lock()
	p.storeEvicted = true
	if p.storeCancel != nil {
		p.storeCancel()
		p.storeCancel = nil
	}
	p.storeMu.Unlock()
}

// programCache is an LRU map from content fingerprint to compiled
// program. Capacity counts programs, not bytes: an Executable is
// dominated by its instruction stream, which is bounded by the PE
// geometry, so a program count is a faithful size proxy.
type programCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used; values are *program
	m   map[string]*list.Element
}

func newProgramCache(capacity int) *programCache {
	return &programCache{cap: capacity, ll: list.New(), m: map[string]*list.Element{}}
}

// lookup returns the cached program for a handle, refreshing its LRU
// position. The caller must still wait on ready before using it.
func (c *programCache) lookup(handle string) (*program, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[handle]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	p := el.Value.(*program)
	p.hits.Add(1)
	return p, true
}

// peek returns the cached program without refreshing its LRU position
// or counting a hit — for peer store serves, which are cross-node
// bookkeeping, not client demand for this node's cache.
func (c *programCache) peek(handle string) (*program, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[handle]
	if !ok {
		return nil, false
	}
	return el.Value.(*program), true
}

// getOrCreate returns the resident program for the fingerprint, or
// inserts a new placeholder entry (evicting the LRU program beyond
// capacity) that the caller must compile and publish with finish. created
// reports which case happened; when false the caller must wait on
// p.ready. The evicted programs are returned (not just counted) so the
// caller can release their in-flight store write-throughs.
func (c *programCache) getOrCreate(handle, src string, tgt compile.Target, s *Server) (p *program, created bool, evicted []*program) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[handle]; ok {
		c.ll.MoveToFront(el)
		p = el.Value.(*program)
		p.hits.Add(1)
		return p, false, nil
	}
	p = &program{handle: handle, source: src, tgt: tgt, ready: make(chan struct{})}
	p.co = newCoalescer(s, p)
	c.m[handle] = c.ll.PushFront(p)
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		ev := last.Value.(*program)
		delete(c.m, ev.handle)
		evicted = append(evicted, ev)
	}
	return p, true, evicted
}

// finish publishes the result of compiling a placeholder entry. Failed
// compilations are removed so a corrected resubmission recompiles.
func (c *programCache) finish(p *program, ex *compile.Executable, err error) {
	p.ex, p.err = ex, err
	if err != nil {
		c.mu.Lock()
		if el, ok := c.m[p.handle]; ok && el.Value.(*program) == p {
			c.ll.Remove(el)
			delete(c.m, p.handle)
		}
		c.mu.Unlock()
	}
	close(p.ready)
}

// snapshot lists the resident programs, most recently used first.
func (c *programCache) snapshot() []*program {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*program, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*program))
	}
	return out
}

// each calls fn on every resident program (used by drain to flush every
// coalescer).
func (c *programCache) each(fn func(*program)) {
	for _, p := range c.snapshot() {
		fn(p)
	}
}
