package serve

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestMetricsConcurrent hammers the lock-protected high-water-mark path
// and the atomic histograms from 32 goroutines at once. Run under -race
// (make check) it proves the metrics set needs no external
// synchronisation; the assertions below pin the aggregate results.
func TestMetricsConcurrent(t *testing.T) {
	m := newMetrics()
	const goroutines = 32
	const perG = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				m.recordFlush(g+1, (g+1)*4)
				m.queueWaitHist.Observe(int64(g*perG + i))
				m.runHist.Observe(int64(i))
				m.requestHist.Observe(int64(g))
				m.recordResponse("run", 200)
			}
			// Concurrent readers of the same state.
			_ = m.queueWaitHist.Summary()
			_ = m.root.String()
		}(g)
	}
	wg.Wait()
	if got := m.flushes.Value(); got != goroutines*perG {
		t.Errorf("flushes = %d, want %d", got, goroutines*perG)
	}
	if got := m.maxBatchRequests.Value(); got != goroutines {
		t.Errorf("maxBatchRequests = %d, want %d", got, goroutines)
	}
	if got := m.maxBatchSlots.Value(); got != goroutines*4 {
		t.Errorf("maxBatchSlots = %d, want %d", got, goroutines*4)
	}
	sum := m.queueWaitHist.Summary().(map[string]any)
	if sum["count"].(int64) != goroutines*perG {
		t.Errorf("histogram count = %v, want %d", sum["count"], goroutines*perG)
	}
	// The expvar map must serialise to valid JSON mid-flight state.
	var parsed map[string]any
	if err := json.Unmarshal([]byte(m.root.String()), &parsed); err != nil {
		t.Fatalf("metrics JSON invalid: %v", err)
	}
}

// lockedBuffer is a race-safe bytes.Buffer for capturing slog output
// written from handler goroutines.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestObservabilityEndToEnd drives a real request through the server and
// checks the three observability surfaces the issue names: percentile
// fields in /metrics, the request ID on the response and in the log line
// with per-phase durations, and the ?trace=1 debug knob.
func TestObservabilityEndToEnd(t *testing.T) {
	var logs lockedBuffer
	s := New(Config{Logger: slog.New(slog.NewJSONHandler(&logs, nil))})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// One normal (coalesced-path) run populates the latency histograms.
	body, _ := json.Marshal(RunRequest{Source: addSrc, Inputs: [][]uint64{{3, 4}, {10, 20}}})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/run", bytes.NewReader(body))
	req.Header.Set("X-Request-Id", "test-req-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var run RunResponse
	if err := json.NewDecoder(resp.Body).Decode(&run); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("run status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "test-req-1" {
		t.Errorf("X-Request-Id = %q, want the caller's id echoed back", got)
	}
	if run.Outputs[0][0] != 7 || run.Outputs[1][0] != 30 {
		t.Errorf("outputs = %v", run.Outputs)
	}
	if run.Trace != nil {
		t.Error("untraced run must not carry a trace payload")
	}

	// A second run without a caller-supplied ID must get a generated one.
	resp2, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.Header.Get("X-Request-Id") == "" {
		t.Error("server must generate an X-Request-Id when the caller sends none")
	}

	// /metrics surfaces p50/p95/p99 for all three histograms.
	var met map[string]any
	if code := get(t, ts.URL+"/metrics", &met); code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	for _, key := range []string{"queue_wait", "run", "request_latency"} {
		h, ok := met[key].(map[string]any)
		if !ok {
			t.Fatalf("metrics missing histogram %q: %v", key, met[key])
		}
		if h["count"].(float64) < 1 {
			t.Errorf("%s.count = %v, want ≥1", key, h["count"])
		}
		for _, q := range []string{"p50_ns", "p95_ns", "p99_ns"} {
			if _, ok := h[q]; !ok {
				t.Errorf("%s missing %s: %v", key, q, h)
			}
		}
	}

	// The request log line carries the request ID and per-phase timings.
	logged := logs.String()
	if !strings.Contains(logged, `"req_id":"test-req-1"`) {
		t.Errorf("log missing req_id: %s", logged)
	}
	for _, phase := range []string{"compile", "queue_wait", "run"} {
		if !strings.Contains(logged, `"`+phase+`"`) {
			t.Errorf("log missing phase %q: %s", phase, logged)
		}
	}

	// ?trace=1 returns a dedicated traced pass with Chrome trace JSON.
	var traced RunResponse
	if code := post(t, ts.URL+"/v1/run?trace=1", RunRequest{Source: addSrc, Inputs: [][]uint64{{1, 2}}}, &traced); code != 200 {
		t.Fatalf("traced run status %d", code)
	}
	if traced.Outputs[0][0] != 3 {
		t.Errorf("traced outputs = %v", traced.Outputs)
	}
	if len(traced.Trace) == 0 {
		t.Fatal("traced run returned no trace payload")
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(traced.Trace, &doc); err != nil {
		t.Fatalf("trace payload is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("trace payload has no events")
	}
	if traced.Report == nil || traced.Report.BatchRequests != 1 {
		t.Errorf("traced pass must be dedicated to the request: %+v", traced.Report)
	}
}

// TestDrainStats checks the queued-slot count and oldest-request age that
// the drain log line reports.
func TestDrainStats(t *testing.T) {
	s := New(Config{})
	if slots, oldest := s.DrainStats(); slots != 0 || oldest != 0 {
		t.Errorf("idle DrainStats = %d, %v", slots, oldest)
	}
	s.queued.Add(7)
	done := s.trackRequest()
	time.Sleep(5 * time.Millisecond)
	slots, oldest := s.DrainStats()
	if slots != 7 {
		t.Errorf("queuedSlots = %d, want 7", slots)
	}
	if oldest < 5*time.Millisecond {
		t.Errorf("oldest = %v, want ≥5ms", oldest)
	}
	done()
	if _, oldest := s.DrainStats(); oldest != 0 {
		t.Errorf("after untrack oldest = %v, want 0", oldest)
	}
}
