package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// postDeadline is post with an X-Hyperap-Deadline header attached.
func postDeadline(t *testing.T, url string, deadline time.Time, body, into any) int {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(DeadlineHeader, FormatDeadline(deadline))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp.StatusCode
}

func TestChecksumRoundTrip(t *testing.T) {
	body := []byte(`{"outputs":[[3]]}` + "\n")
	sum := BodyChecksum(body)
	if !VerifyChecksum(sum, body) {
		t.Fatalf("checksum %q does not verify its own body", sum)
	}
	corrupt := bytes.Clone(body)
	corrupt[3] ^= 0x20
	if VerifyChecksum(sum, corrupt) {
		t.Error("corrupted body verified")
	}
	// Unknown schemes verify trivially (forward compatibility).
	if !VerifyChecksum("sha999=deadbeef", body) {
		t.Error("unknown checksum scheme must not fail verification")
	}
}

func TestDeadlineHeaderRoundTrip(t *testing.T) {
	want := time.Unix(0, 1754600000123456789)
	h := http.Header{}
	h.Set(DeadlineHeader, FormatDeadline(want))
	got, ok := ParseDeadline(h)
	if !ok || !got.Equal(want) {
		t.Fatalf("ParseDeadline = %v, %v; want %v, true", got, ok, want)
	}
	for _, bad := range []string{"", "soon", "-5", "0"} {
		h.Set(DeadlineHeader, bad)
		if _, ok := ParseDeadline(h); ok {
			t.Errorf("ParseDeadline accepted %q", bad)
		}
	}
}

// TestResponsesCarryChecksum: every JSON response announces a crc32c of
// its exact body bytes, so relays can detect wire corruption.
func TestResponsesCarryChecksum(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	buf, _ := json.Marshal(RunRequest{Source: addSrc, Inputs: [][]uint64{{1, 2}}})
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	sum := resp.Header.Get(ChecksumHeader)
	if sum == "" {
		t.Fatal("run response missing checksum header")
	}
	if !VerifyChecksum(sum, body.Bytes()) {
		t.Fatalf("checksum %q does not match body %q", sum, body.String())
	}
}

// TestDeadlineHeaderShortensTimeout: a propagated deadline tighter than
// the server's own request timeout wins, so a doomed request parked
// behind a long coalescing window 504s at the propagated deadline rather
// than the local one.
func TestDeadlineHeaderShortensTimeout(t *testing.T) {
	s := New(Config{CoalesceWindow: time.Hour, RequestTimeout: time.Hour})
	ts := httptest.NewServer(s)
	defer ts.Close()

	start := time.Now()
	var errResp ErrorResponse
	code := postDeadline(t, ts.URL+"/v1/run", start.Add(50*time.Millisecond),
		RunRequest{Source: addSrc, Inputs: [][]uint64{{1, 2}}}, &errResp)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%v), want 504", code, errResp)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("request took %v; the propagated deadline did not shorten the hour-long timeout", elapsed)
	}
	if got := s.met.deadlinePropagated.Value(); got != 1 {
		t.Errorf("deadline_propagated = %d, want 1", got)
	}
}

// TestCoalescerShedsExpiredWaiters drives a pass whose batch holds one
// expired and one live waiter: the expired one is shed (no outputs, a
// deadline error) while the live one completes normally.
func TestCoalescerShedsExpiredWaiters(t *testing.T) {
	s := New(Config{CoalesceWindow: time.Hour})
	p, _, err := s.compileProgram(context.Background(), addSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	expired := &waiter{
		inputs:   [][]uint64{{1, 2}},
		enq:      time.Now(),
		deadline: time.Now().Add(-time.Second),
		done:     make(chan struct{}),
	}
	live := &waiter{
		inputs:   [][]uint64{{3, 4}},
		enq:      time.Now(),
		deadline: time.Now().Add(time.Minute),
		done:     make(chan struct{}),
	}
	if err := s.admitSlots(2); err != nil {
		t.Fatal(err)
	}
	p.co.submit(expired, false)
	p.co.submit(live, false)
	p.co.flushNow()
	<-expired.done
	<-live.done
	if !errors.Is(expired.err, context.DeadlineExceeded) {
		t.Errorf("expired waiter err = %v, want DeadlineExceeded", expired.err)
	}
	if live.err != nil || len(live.outs) != 1 || live.outs[0][0] != 7 {
		t.Errorf("live waiter: err=%v outs=%v, want [[7]]", live.err, live.outs)
	}
	if got := s.met.deadlineShed.Value(); got != 1 {
		t.Errorf("deadline_shed = %d, want 1", got)
	}
}

// TestCanceledRequestFreesSlots (run under -race): a client that
// disconnects while its request is still parked in the coalescer must
// give its slot budget back immediately — the queue must not stay
// poisoned by departed callers.
func TestCanceledRequestFreesSlots(t *testing.T) {
	s := New(Config{CoalesceWindow: time.Hour, MaxQueueSlots: 4})
	ts := httptest.NewServer(s)
	defer ts.Close()

	buf, _ := json.Marshal(RunRequest{Source: addSrc, Inputs: [][]uint64{{1, 1}, {2, 2}, {3, 3}, {4, 4}}})
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/run", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	// Wait for all four slots to be admitted and parked, then hang up.
	deadline := time.Now().Add(30 * time.Second)
	for s.queued.Load() != 4 {
		if time.Now().After(deadline) {
			t.Fatalf("run never admitted (queued=%d)", s.queued.Load())
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("canceled request returned a response")
	}
	for s.queued.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("slots never released after cancel (queued=%d)", s.queued.Load())
		}
		time.Sleep(time.Millisecond)
	}
	if got := s.met.canceledInQueue.Value(); got != 1 {
		t.Errorf("canceled_in_queue = %d, want 1", got)
	}
	// The freed budget must be reusable: the same four slots again.
	var run RunResponse
	if code := post(t, ts.URL+"/v1/run",
		RunRequest{Source: addSrc, Inputs: [][]uint64{{1, 2}, {3, 4}, {5, 6}, {7, 8}}, NoCoalesce: true}, &run); code != 200 {
		t.Fatalf("post-cancel run status %d", code)
	}
	if len(run.Outputs) != 4 || run.Outputs[0][0] != 3 {
		t.Errorf("post-cancel outputs %v", run.Outputs)
	}
}
