// Package chaos is the deterministic fault-injection layer used to
// harden the cluster (DESIGN.md §15). A Schedule maps a (seed, salt,
// request-index) triple to a fault decision with no other state, so a
// failing chaos campaign is reproducible bit-for-bit from its seed:
// the same seed always yields the same fault sequence on each proxy.
//
// Three injection points wrap the same Schedule:
//
//	Proxy     an HTTP man-in-the-middle between coordinator and worker
//	Transport an http.RoundTripper wrapper (client-side injection)
//	Listener  a net.Listener wrapper (accept-time connection resets)
package chaos

import (
	"hash/fnv"
	"time"
)

// Kind enumerates the injectable faults.
type Kind int

const (
	None      Kind = iota // forward untouched
	Latency               // delay the forward by a drawn duration
	Reset                 // TCP RST before any response bytes
	Blackhole             // accept, then stall silently (capped) and RST
	SlowLoris             // dribble the response body over SlowLorisDur
	Truncate              // advertise the full Content-Length, send half
	BitFlip               // flip one payload bit after worker checksumming
)

var kindNames = [...]string{"none", "latency", "reset", "blackhole", "slowloris", "truncate", "bitflip"}

func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return "unknown"
	}
	return kindNames[k]
}

// Fault is one request's drawn fate.
type Fault struct {
	Kind    Kind
	Latency time.Duration // populated for Kind == Latency
	BitPos  uint64        // populated for Kind == BitFlip (body-relative, modulo length)
}

// Schedule is a pure function from request index to Fault. Probabilities
// are independent per request except inside the storm window, where
// every request is reset — the storm is what reliably trips a circuit
// breaker mid-campaign so its recovery cycle is exercised too.
type Schedule struct {
	Seed int64
	// Salt disambiguates proxies sharing a seed (conventionally the
	// worker name); two proxies with different salts draw independent
	// fault sequences from the same campaign seed.
	Salt string

	PLatency   float64
	PReset     float64
	PBlackhole float64
	PSlowLoris float64
	PTruncate  float64
	PBitFlip   float64

	LatencyMin   time.Duration
	LatencyMax   time.Duration
	SlowLorisDur time.Duration
	// MaxStall caps a blackhole so an injected fault can never hold a
	// connection longer than the victim's own attempt timeout should.
	MaxStall time.Duration

	// [StormStart, StormStart+StormLen) is the forced-reset window in
	// request-index space; StormLen == 0 disables it.
	StormStart uint64
	StormLen   uint64

	// Exempt paths are forwarded untouched and do not consume a request
	// index (health probes must see the true worker state, or chaos
	// would test the membership prober instead of the request path).
	Exempt map[string]bool
}

// Default is the canonical campaign schedule for one proxy: ~20% of
// requests faulted, plus a short reset storm at a seed-drawn index.
// The storm is sized to trip a breaker (3 consecutive resets at the
// campaign's BreakerConsecutive=3) and then be burned through by a
// couple of half-open trials, so the recovery cycle is reachable within
// one seed; storm starts are spread over [12, 60) so three proxies
// sharing a seed rarely storm at the same moment.
func Default(seed int64, salt string) Schedule {
	r := newRng(seed, salt, 1<<62) // schedule-level draws, outside the per-request index space
	return Schedule{
		Seed:         seed,
		Salt:         salt,
		PLatency:     0.10,
		PReset:       0.04,
		PBlackhole:   0.02,
		PSlowLoris:   0.02,
		PTruncate:    0.02,
		PBitFlip:     0.02,
		LatencyMin:   10 * time.Millisecond,
		LatencyMax:   120 * time.Millisecond,
		SlowLorisDur: 250 * time.Millisecond,
		MaxStall:     2 * time.Second,
		StormStart:   12 + r.next()%48,
		StormLen:     5,
		Exempt:       map[string]bool{"/readyz": true, "/healthz": true, "/metrics": true},
	}
}

// LatencyOnly is the benchmark schedule: a pure latency-spike injector
// (no errors, no storm) at the given probability, for measuring how
// hedged requests cut the tail (BENCH chaos_tail section).
func LatencyOnly(seed int64, salt string, p float64, min, max time.Duration) Schedule {
	return Schedule{
		Seed:       seed,
		Salt:       salt,
		PLatency:   p,
		LatencyMin: min,
		LatencyMax: max,
		Exempt:     map[string]bool{"/readyz": true, "/healthz": true, "/metrics": true},
	}
}

// ForIndex draws request n's fault. Pure: same (Seed, Salt, n) in, same
// Fault out, independent of call order or wall clock.
func (s Schedule) ForIndex(n uint64) Fault {
	if s.StormLen > 0 && n >= s.StormStart && n < s.StormStart+s.StormLen {
		return Fault{Kind: Reset}
	}
	r := newRng(s.Seed, s.Salt, n)
	u := r.float()
	cum := 0.0
	pick := func(p float64) bool {
		cum += p
		return u < cum
	}
	switch {
	case pick(s.PLatency):
		span := s.LatencyMax - s.LatencyMin
		d := s.LatencyMin
		if span > 0 {
			d += time.Duration(r.float() * float64(span))
		}
		return Fault{Kind: Latency, Latency: d}
	case pick(s.PReset):
		return Fault{Kind: Reset}
	case pick(s.PBlackhole):
		return Fault{Kind: Blackhole}
	case pick(s.PSlowLoris):
		return Fault{Kind: SlowLoris}
	case pick(s.PTruncate):
		return Fault{Kind: Truncate}
	case pick(s.PBitFlip):
		return Fault{Kind: BitFlip, BitPos: r.next()}
	}
	return Fault{Kind: None}
}

// rng is a splitmix64 stream keyed by (seed, salt, index): cheap,
// stateless across requests, and stable across Go versions — unlike
// math/rand, whose stream is not part of any compatibility promise.
type rng struct{ s uint64 }

func newRng(seed int64, salt string, n uint64) *rng {
	h := fnv.New64a()
	h.Write([]byte(salt))
	r := &rng{s: uint64(seed) ^ h.Sum64() ^ (n * 0x9E3779B97F4A7C15)}
	r.next() // decorrelate nearby indices
	return r
}

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// float returns a uniform draw in [0, 1).
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }
