package chaos

import (
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestScheduleDeterministic(t *testing.T) {
	s := Default(42, "w0")
	for n := uint64(0); n < 200; n++ {
		a, b := s.ForIndex(n), s.ForIndex(n)
		if a != b {
			t.Fatalf("index %d: two draws differ: %+v vs %+v", n, a, b)
		}
	}
	// Different salts must draw independent sequences (same seed).
	other := Default(42, "w1")
	same := 0
	for n := uint64(0); n < 400; n++ {
		if s.ForIndex(n).Kind == other.ForIndex(n).Kind {
			same++
		}
	}
	if same == 400 {
		t.Fatal("salts w0 and w1 drew identical fault sequences")
	}
	// The storm window forces resets.
	for n := s.StormStart; n < s.StormStart+s.StormLen; n++ {
		if f := s.ForIndex(n); f.Kind != Reset {
			t.Fatalf("storm index %d drew %v, want reset", n, f.Kind)
		}
	}
}

func TestScheduleProbabilities(t *testing.T) {
	s := Schedule{Seed: 7, Salt: "p", PLatency: 0.2, PReset: 0.1,
		LatencyMin: time.Millisecond, LatencyMax: 2 * time.Millisecond}
	const draws = 20000
	counts := map[Kind]int{}
	for n := uint64(0); n < draws; n++ {
		f := s.ForIndex(n)
		counts[f.Kind]++
		if f.Kind == Latency && (f.Latency < s.LatencyMin || f.Latency > s.LatencyMax) {
			t.Fatalf("latency draw %v outside [%v, %v]", f.Latency, s.LatencyMin, s.LatencyMax)
		}
	}
	within := func(kind Kind, want float64) {
		got := float64(counts[kind]) / draws
		if got < want-0.03 || got > want+0.03 {
			t.Errorf("%v fraction = %.3f, want %.2f ± 0.03", kind, got, want)
		}
	}
	within(Latency, 0.2)
	within(Reset, 0.1)
	within(None, 0.7)
}

// uniform builds a schedule that applies exactly one fault kind to
// every request.
func uniform(k Kind) Schedule {
	s := Schedule{Seed: 1, Salt: "t",
		LatencyMin: 30 * time.Millisecond, LatencyMax: 30 * time.Millisecond,
		SlowLorisDur: 80 * time.Millisecond, MaxStall: 60 * time.Millisecond,
		Exempt: map[string]bool{"/readyz": true}}
	switch k {
	case Latency:
		s.PLatency = 1
	case Reset:
		s.PReset = 1
	case Blackhole:
		s.PBlackhole = 1
	case SlowLoris:
		s.PSlowLoris = 1
	case Truncate:
		s.PTruncate = 1
	case BitFlip:
		s.PBitFlip = 1
	}
	return s
}

func chaosProxyFor(t *testing.T, k Kind) (*Proxy, string) {
	t.Helper()
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		io.WriteString(w, "the quick brown fox jumps over the lazy dog")
	}))
	t.Cleanup(backend.Close)
	px, err := NewProxy(backend.URL, uniform(k))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { px.Close() })
	return px, "the quick brown fox jumps over the lazy dog"
}

func TestProxyPassthroughAndExempt(t *testing.T) {
	px, want := chaosProxyFor(t, None)
	for _, path := range []string{"/anything", "/readyz"} {
		resp, err := http.Get(px.URL() + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if string(body) != want {
			t.Fatalf("%s: body %q, want %q", path, body, want)
		}
	}
	// The exempt path must not have consumed a schedule index.
	if n := px.n.Load(); n != 1 {
		t.Fatalf("index counter = %d after 1 non-exempt + 1 exempt request, want 1", n)
	}
}

func TestProxyReset(t *testing.T) {
	px, _ := chaosProxyFor(t, Reset)
	_, err := http.Get(px.URL() + "/x")
	if err == nil {
		t.Fatal("reset fault produced a clean response")
	}
	if c := px.Counts()["reset"]; c != 1 {
		t.Fatalf("reset count = %d, want 1", c)
	}
}

func TestProxyLatency(t *testing.T) {
	px, want := chaosProxyFor(t, Latency)
	t0 := time.Now()
	resp, err := http.Get(px.URL() + "/x")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if took := time.Since(t0); took < 30*time.Millisecond {
		t.Fatalf("latency fault took %v, want >= 30ms", took)
	}
	if string(body) != want {
		t.Fatalf("body %q corrupted by latency fault", body)
	}
}

func TestProxyBlackholeCapped(t *testing.T) {
	px, _ := chaosProxyFor(t, Blackhole)
	t0 := time.Now()
	_, err := http.Get(px.URL() + "/x")
	took := time.Since(t0)
	if err == nil {
		t.Fatal("blackhole produced a response")
	}
	if took < 50*time.Millisecond || took > 3*time.Second {
		t.Fatalf("blackhole stalled %v, want ~MaxStall (60ms)", took)
	}
}

func TestProxyTruncate(t *testing.T) {
	px, want := chaosProxyFor(t, Truncate)
	resp, err := http.Get(px.URL() + "/x")
	if err != nil {
		t.Fatal(err)
	}
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr == nil && len(body) == len(want) {
		t.Fatalf("truncate fault delivered the whole body (%d bytes)", len(body))
	}
}

func TestProxyBitFlip(t *testing.T) {
	px, want := chaosProxyFor(t, BitFlip)
	resp, err := http.Get(px.URL() + "/x")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if len(body) != len(want) {
		t.Fatalf("bit flip changed length: %d vs %d", len(body), len(want))
	}
	diffBits := 0
	for i := range body {
		for b := body[i] ^ want[i]; b != 0; b &= b - 1 {
			diffBits++
		}
	}
	if diffBits != 1 {
		t.Fatalf("bit flip changed %d bits, want exactly 1", diffBits)
	}
}

func TestProxySlowLorisCompletes(t *testing.T) {
	px, want := chaosProxyFor(t, SlowLoris)
	t0 := time.Now()
	resp, err := http.Get(px.URL() + "/x")
	if err != nil {
		t.Fatal(err)
	}
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil {
		t.Fatal(rerr)
	}
	if string(body) != want {
		t.Fatalf("slow-loris corrupted the body: %q", body)
	}
	if took := time.Since(t0); took < 40*time.Millisecond {
		t.Fatalf("slow-loris finished in %v, want >= ~SlowLorisDur/2", took)
	}
}

func TestTransportFaults(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "payload-payload-payload")
	}))
	defer backend.Close()

	get := func(k Kind) (string, error) {
		tr := &Transport{Sched: uniform(k)}
		client := &http.Client{Transport: tr, Timeout: 2 * time.Second}
		resp, err := client.Get(backend.URL)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		return string(b), err
	}

	if _, err := get(Reset); err == nil || !strings.Contains(err.Error(), "reset") {
		t.Fatalf("reset: err = %v, want connection reset", err)
	}
	if body, err := get(None); err != nil || body != "payload-payload-payload" {
		t.Fatalf("none: %q, %v", body, err)
	}
	if body, err := get(BitFlip); err != nil || body == "payload-payload-payload" {
		t.Fatalf("bitflip: body unchanged (%q, %v)", body, err)
	}
	if body, err := get(Truncate); err == nil && len(body) == len("payload-payload-payload") {
		t.Fatal("truncate: full body delivered")
	}
}

func TestListenerResets(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl := &Listener{Listener: ln, Sched: uniform(Reset)}
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})}
	go srv.Serve(cl)
	defer srv.Close()

	client := &http.Client{Timeout: time.Second}
	if _, err := client.Get("http://" + ln.Addr().String()); err == nil {
		t.Fatal("listener with all-reset schedule served a request")
	}
	if cl.Resets() == 0 {
		t.Fatal("no resets recorded")
	}
}
