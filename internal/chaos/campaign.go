package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"hyperap/internal/cluster"
	"hyperap/internal/serve"
)

// CampaignConfig tunes one chaos campaign: for each seed, a fresh
// 3-worker cluster is stood up with a fault-injecting proxy in front of
// every worker, hammered with verifiable run requests, and torn down.
type CampaignConfig struct {
	// Seeds are the chaos schedules to run (one cluster each). Required.
	Seeds []int64
	// Workers per cluster (default 3).
	Workers int
	// Requests per seed (default 120).
	Requests int
	// Concurrency is the number of client goroutines (default 4).
	Concurrency int
	// Programs is how many distinct adder programs the load cycles
	// through (default 4) — distinct fingerprints, distinct ring owners.
	Programs int
	// Warmup requests are sent sequentially before the measured load and
	// excluded from every stat (default 0). Benchmarks use this to get
	// first-touch compiles out of the latency tail.
	Warmup int
	// Hedge enables hedged requests on the coordinator under test;
	// HedgeDelay overrides the stagger (0 = p95-derived).
	Hedge      bool
	HedgeDelay time.Duration
	// RequestTimeout is the coordinator's end-to-end budget (default 8s);
	// AttemptTimeout bounds one worker forward (default 1s).
	RequestTimeout time.Duration
	AttemptTimeout time.Duration
	// HungGrace on top of RequestTimeout is the client's patience: any
	// request still unanswered past RequestTimeout+HungGrace counts as
	// hung — the failure mode the whole campaign exists to rule out.
	HungGrace time.Duration
	// Schedule builds each proxy's schedule (default Default). The salt
	// passed in is the worker's stable name ("w0", "w1", ...).
	Schedule func(seed int64, salt string) Schedule
	// Logger receives per-seed progress lines (default: discard).
	Logger *slog.Logger
}

func (c CampaignConfig) withDefaults() CampaignConfig {
	if c.Workers <= 0 {
		c.Workers = 3
	}
	if c.Requests <= 0 {
		c.Requests = 120
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 4
	}
	if c.Programs <= 0 {
		c.Programs = 4
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 8 * time.Second
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = time.Second
	}
	if c.HungGrace <= 0 {
		c.HungGrace = 2 * time.Second
	}
	if c.Schedule == nil {
		c.Schedule = Default
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}

// SeedResult is one seed's outcome. Wrong and Hung must both be zero
// for the campaign to pass: a 5xx inside the deadline is an honest
// failure, but a 200 with bad outputs or a request that outlives its
// propagated deadline is a resilience bug.
type SeedResult struct {
	Seed     int64 `json:"seed"`
	Requests int   `json:"requests"`
	OK       int   `json:"ok"`
	Wrong    int   `json:"wrong"`
	Hung     int   `json:"hung"`
	Rejected int   `json:"rejected"` // honest 5xx within the deadline

	Faults        map[string]int64 `json:"faults"` // injected, by kind, summed over proxies
	BreakerTrips  int64            `json:"breakerTrips"`
	BreakerCycles int64            `json:"breakerCycles"`
	Hedges        int64            `json:"hedges"`
	HedgeWins     int64            `json:"hedgeWins"`
	Failovers     int64            `json:"failovers"`
	ChecksumFails int64            `json:"checksumFailures"`
	P50NS         float64          `json:"p50Ns"`
	P99NS         float64          `json:"p99Ns"`
	ElapsedMS     int64            `json:"elapsedMs"`
}

// Report is the campaign rollup written to chaos-report.json.
type Report struct {
	Seeds     []SeedResult `json:"seeds"`
	Requests  int          `json:"requests"`
	Wrong     int          `json:"wrong"`
	Hung      int          `json:"hung"`
	CycleSeen bool         `json:"breakerCycleSeen"` // ≥1 open→half-open→closed recovery observed
	Hedge     bool         `json:"hedge"`
}

// Passed reports whether the campaign met the acceptance bar: zero
// wrong results, zero hung requests, and at least one full breaker
// recovery cycle observed somewhere in the run.
func (r *Report) Passed() bool {
	return r.Wrong == 0 && r.Hung == 0 && r.CycleSeen
}

// RunCampaign executes every seed sequentially and aggregates.
func RunCampaign(cfg CampaignConfig) (*Report, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Seeds) == 0 {
		return nil, errors.New("chaos: no seeds")
	}
	rep := &Report{Hedge: cfg.Hedge}
	for _, seed := range cfg.Seeds {
		res, err := runSeed(cfg, seed)
		if err != nil {
			return nil, fmt.Errorf("chaos: seed %d: %w", seed, err)
		}
		rep.Seeds = append(rep.Seeds, *res)
		rep.Requests += res.Requests
		rep.Wrong += res.Wrong
		rep.Hung += res.Hung
		if res.BreakerCycles > 0 {
			rep.CycleSeen = true
		}
		cfg.Logger.Info("chaos seed done",
			"seed", seed, "ok", res.OK, "wrong", res.Wrong, "hung", res.Hung,
			"rejected", res.Rejected, "trips", res.BreakerTrips, "cycles", res.BreakerCycles)
	}
	return rep, nil
}

// seedCluster is one seed's cluster under test: workers on real
// listeners, a chaos proxy in front of each, and a coordinator that
// only knows the proxy URLs.
type seedCluster struct {
	workers []*serve.Server
	wsrvs   []*http.Server
	proxies []*Proxy
	coord   *cluster.Coordinator
	csrv    *http.Server
	curl    string
}

func startSeedCluster(cfg CampaignConfig, seed int64) (*seedCluster, error) {
	sc := &seedCluster{}
	for i := 0; i < cfg.Workers; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			sc.close()
			return nil, err
		}
		s := serve.New(serve.Config{
			CoalesceWindow:   time.Millisecond,
			RequestTimeout:   cfg.RequestTimeout,
			SnapshotInterval: -1,
		})
		hs := &http.Server{Handler: s}
		go hs.Serve(ln)
		sc.workers = append(sc.workers, s)
		sc.wsrvs = append(sc.wsrvs, hs)
		px, err := NewProxy("http://"+ln.Addr().String(), cfg.Schedule(seed, fmt.Sprintf("w%d", i)))
		if err != nil {
			sc.close()
			return nil, err
		}
		sc.proxies = append(sc.proxies, px)
	}
	urls := make([]string, len(sc.proxies))
	for i, px := range sc.proxies {
		urls[i] = px.URL()
	}
	sc.coord = cluster.New(cluster.Config{
		Workers:            urls,
		ProbeInterval:      25 * time.Millisecond,
		ProbeTimeout:       time.Second,
		FailAfter:          3,
		RequestTimeout:     cfg.RequestTimeout,
		AttemptTimeout:     cfg.AttemptTimeout,
		Hedge:              cfg.Hedge,
		HedgeDelay:         cfg.HedgeDelay,
		BreakerOpenTimeout: 300 * time.Millisecond,
		BreakerConsecutive: 3,
	})
	cln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		sc.close()
		return nil, err
	}
	sc.csrv = &http.Server{Handler: sc.coord}
	go sc.csrv.Serve(cln)
	sc.curl = "http://" + cln.Addr().String()
	return sc, nil
}

func (sc *seedCluster) close() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if sc.csrv != nil {
		sc.csrv.Close()
	}
	if sc.coord != nil {
		sc.coord.Drain(ctx)
	}
	for _, px := range sc.proxies {
		px.Close()
	}
	for _, hs := range sc.wsrvs {
		hs.Close()
	}
	for _, s := range sc.workers {
		s.Drain(ctx)
	}
}

// adder is the verifiable workload: width-w addition, whose expected
// outputs the campaign computes independently of the cluster.
type adder struct{ width int }

func campaignPrograms(n int) []adder {
	out := make([]adder, n)
	for i := range out {
		out[i] = adder{width: 3 + i}
	}
	return out
}

func (a adder) source() string {
	return fmt.Sprintf(
		"unsigned int(%d) main(unsigned int(%d) a, unsigned int(%d) b){ return a + b; }",
		a.width+1, a.width, a.width)
}

func (a adder) inputs(i int) [][]uint64 {
	mask := uint64(1)<<a.width - 1
	rows := make([][]uint64, 4)
	for r := range rows {
		rows[r] = []uint64{uint64(i*5+r) & mask, uint64(i*3+2*r+1) & mask}
	}
	return rows
}

func (a adder) expected(in [][]uint64) [][]uint64 {
	mask := uint64(1)<<(a.width+1) - 1
	out := make([][]uint64, len(in))
	for i, row := range in {
		out[i] = []uint64{(row[0] + row[1]) & mask}
	}
	return out
}

func runSeed(cfg CampaignConfig, seed int64) (*SeedResult, error) {
	sc, err := startSeedCluster(cfg, seed)
	if err != nil {
		return nil, err
	}
	defer sc.close()

	progs := campaignPrograms(cfg.Programs)
	client := &http.Client{Timeout: cfg.RequestTimeout + cfg.HungGrace}
	res := &SeedResult{Seed: seed, Requests: cfg.Requests, Faults: map[string]int64{}}

	// Warmup (uncounted): get first-touch compiles and connection setup
	// out of the measured tail. Chaos faults still apply — warmup is
	// about cache state, not a fault holiday.
	for i := 0; i < cfg.Warmup; i++ {
		p := progs[i%len(progs)]
		oneRequest(client, sc.curl, p, p.inputs(1_000_000+i), cfg.RequestTimeout+cfg.HungGrace)
	}
	start := time.Now()

	var durations []time.Duration
	classify := func(o outcome, took time.Duration) {
		durations = append(durations, took)
		switch o {
		case outcomeOK:
			res.OK++
		case outcomeWrong:
			res.Wrong++
		case outcomeHung:
			res.Hung++
		case outcomeRejected:
			res.Rejected++
		}
	}

	var mu sync.Mutex
	var wg sync.WaitGroup
	next := make(chan int)
	go func() {
		for i := 0; i < cfg.Requests; i++ {
			next <- i
		}
		close(next)
	}()
	for g := 0; g < cfg.Concurrency; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				p := progs[i%len(progs)]
				in := p.inputs(i)
				o, took := oneRequest(client, sc.curl, p, in, cfg.RequestTimeout+cfg.HungGrace)
				mu.Lock()
				classify(o, took)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	// Recovery drive: a tripped breaker must be observed healing, not
	// just tripping — the open→half-open→closed cycle is part of the
	// acceptance bar. The fixed-count loop often finishes while breakers
	// are still open (rejections resolve instantly, so the request budget
	// drains fast mid-storm), so keep nudging gentle load until a cycle
	// completes or a hard cap expires. Each nudge is a real classified
	// request; half-open trials fire as the open timeouts lapse.
	met := sc.coord.Metrics()
	if expvarInt64(met.Root(), "breaker_trips") > 0 {
		hardCap := time.Now().Add(15 * time.Second)
		for i := cfg.Requests; expvarInt64(met.Root(), "breaker_cycles") == 0 && time.Now().Before(hardCap); i++ {
			p := progs[i%len(progs)]
			o, took := oneRequest(client, sc.curl, p, p.inputs(i), cfg.RequestTimeout+cfg.HungGrace)
			classify(o, took)
			res.Requests++
			time.Sleep(20 * time.Millisecond)
		}
	}
	res.ElapsedMS = time.Since(start).Milliseconds()

	for _, px := range sc.proxies {
		for k, v := range px.Counts() {
			if k != "none" {
				res.Faults[k] += v
			}
		}
	}
	res.BreakerTrips = expvarInt64(met.Root(), "breaker_trips")
	res.BreakerCycles = expvarInt64(met.Root(), "breaker_cycles")
	res.Hedges = expvarInt64(met.Root(), "hedges")
	res.HedgeWins = expvarInt64(met.Root(), "hedge_wins")
	res.Failovers = expvarInt64(met.Root(), "failovers")
	res.ChecksumFails = expvarInt64(met.Root(), "checksum_failures")
	// Latency quantiles are measured client-side over the counted
	// requests only, so warmup and recovery-phase pacing never skew them.
	sort.Slice(durations, func(i, j int) bool { return durations[i] < durations[j] })
	res.P50NS = quantileNS(durations, 0.50)
	res.P99NS = quantileNS(durations, 0.99)
	return res, nil
}

// quantileNS reads quantile q off a sorted duration slice.
func quantileNS(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i].Nanoseconds())
}

type outcome int

const (
	outcomeOK outcome = iota
	outcomeWrong
	outcomeHung
	outcomeRejected
)

// oneRequest sends one verifiable run and classifies the result,
// returning the classification and the request's wall-clock duration.
// The wall-clock check is belt-and-braces on top of the client timeout:
// however the request failed, taking longer than budget+grace is a
// hang, the one unforgivable outcome.
func oneRequest(client *http.Client, base string, p adder, in [][]uint64, hungAfter time.Duration) (outcome, time.Duration) {
	body, _ := json.Marshal(serve.RunRequest{Source: p.source(), Inputs: in})
	t0 := time.Now()
	resp, err := client.Post(base+"/v1/run", "application/json", bytes.NewReader(body))
	took := time.Since(t0)
	if err != nil {
		if took >= hungAfter {
			return outcomeHung, took
		}
		// Client-side transport error inside the budget: the coordinator
		// never answers with garbage, so treat as an honest rejection.
		return outcomeRejected, took
	}
	defer resp.Body.Close()
	raw, rerr := io.ReadAll(resp.Body)
	if took = time.Since(t0); took >= hungAfter {
		return outcomeHung, took
	}
	if rerr != nil {
		return outcomeRejected, took
	}
	if resp.StatusCode != http.StatusOK {
		if resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests {
			return outcomeRejected, took
		}
		return outcomeWrong, took // 4xx on a well-formed request: a routing/validation bug
	}
	var rr serve.RunResponse
	if err := json.Unmarshal(raw, &rr); err != nil {
		return outcomeWrong, took
	}
	want := p.expected(in)
	if len(rr.Outputs) != len(want) {
		return outcomeWrong, took
	}
	for i := range want {
		if len(rr.Outputs[i]) != len(want[i]) || rr.Outputs[i][0] != want[i][0] {
			return outcomeWrong, took
		}
	}
	return outcomeOK, took
}

// expvarInt64 reads an int-valued expvar (plain Int or Func) off a map.
func expvarInt64(m *expvar.Map, key string) int64 {
	switch v := m.Get(key).(type) {
	case *expvar.Int:
		return v.Value()
	case expvar.Func:
		if n, ok := v().(int64); ok {
			return n
		}
	}
	return 0
}
