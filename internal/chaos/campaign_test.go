package chaos

import (
	"testing"
	"time"
)

// TestMiniCampaign runs one short seeded campaign against a real
// 2-worker cluster: the full acceptance bar (zero wrong, zero hung) at
// CI-friendly scale. The full 5-seed campaign lives behind
// `make chaos-e2e` / cmd/hyperap-chaos.
func TestMiniCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos campaign is slow")
	}
	rep, err := RunCampaign(CampaignConfig{
		Seeds:          []int64{1},
		Workers:        2,
		Requests:       30,
		Concurrency:    3,
		Programs:       2,
		RequestTimeout: 6 * time.Second,
		AttemptTimeout: time.Second,
		HungGrace:      2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := rep.Seeds[0]
	t.Logf("seed %d: ok=%d wrong=%d hung=%d rejected=%d faults=%v trips=%d cycles=%d failovers=%d checksum=%d",
		res.Seed, res.OK, res.Wrong, res.Hung, res.Rejected, res.Faults,
		res.BreakerTrips, res.BreakerCycles, res.Failovers, res.ChecksumFails)
	if res.Wrong != 0 {
		t.Errorf("wrong results = %d, want 0", res.Wrong)
	}
	if res.Hung != 0 {
		t.Errorf("hung requests = %d, want 0", res.Hung)
	}
	if res.OK == 0 {
		t.Error("no request succeeded at all; the chaos level should leave most requests intact")
	}
	var injected int64
	for _, v := range res.Faults {
		injected += v
	}
	if injected == 0 {
		t.Error("no faults injected; the campaign tested nothing")
	}
}
